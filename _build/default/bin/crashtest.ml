(* crashtest — a configurable crash-injection campaign.

   Runs a workload (data structure or key-value store) on a chosen PTM,
   systematically or randomly crashing at instruction boundaries under
   adversarial cache-line policies, recovering, and checking structural
   invariants plus operation-level atomicity.  This is the repository's
   verification tool in CLI form:

     crashtest --ptm romLR --workload tree --rounds 500 --seed 7
     crashtest --ptm all --workload all --rounds 100 *)

open Cmdliner

module type PTM = sig
  include Romulus.Ptm_intf.S

  val recover : t -> unit
end

let ptms : (string * (module PTM)) list =
  [ ("rom", (module Romulus.Basic));
    ("romL", (module Romulus.Logged));
    ("romLR", (module Romulus.Lr));
    ("mne", (module Baselines.Redolog));
    ("pmdk", (module Baselines.Undolog)) ]

type outcome = { rounds : int; crashes : int; failures : string list }

(* One workload campaign: run [rounds] batches of random operations with a
   random crash trap armed; after each crash, recover by re-opening the
   region and check invariants + a shadow model. *)
let run_campaign (module P : PTM) ~workload ~rounds ~seed ~verbose =
  let rng = Workload.Keygen.create ~seed () in
  let region = Pmem.Region.create ~size:(1 lsl 20) () in
  let p = P.open_region region in
  let failures = ref [] in
  let crashes = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  (* the workload exposes: apply one op (given a shadow model), and a
     checker run after each recovery *)
  let module M = struct
    module L = Pds.Linked_list.Make (P)
    module T = Pds.Rb_tree.Make (P)
    module H = Pds.Hash_map.Make (P)
  end in
  let shadow : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* create the structures before any trap is armed: a crash during lazy
     creation would poison the thunk *)
  let list_ = M.L.create p ~root:0 in
  let tree = M.T.create p ~root:1 in
  let map = M.H.create ~initial_buckets:8 p ~root:2 in
  let key () = Workload.Keygen.int rng 200 in
  let apply_op () =
    let k = key () in
    match workload with
    | `List ->
      if Workload.Keygen.bool rng then (
        ignore (M.L.add list_ k);
        Hashtbl.replace shadow k k)
      else (
        ignore (M.L.remove list_ k);
        Hashtbl.remove shadow k)
    | `Tree ->
      if Workload.Keygen.bool rng then (
        ignore (M.T.put tree k (k * 3));
        Hashtbl.replace shadow k (k * 3))
      else (
        ignore (M.T.remove tree k);
        Hashtbl.remove shadow k)
    | `Map ->
      if Workload.Keygen.bool rng then (
        ignore (M.H.put map k (k * 5));
        Hashtbl.replace shadow k (k * 5))
      else (
        ignore (M.H.remove map k);
        Hashtbl.remove shadow k)
  in
  let check round =
    let structural =
      match workload with
      | `List -> M.L.check list_
      | `Tree -> M.T.check tree
      | `Map -> M.H.check map
    in
    (match structural with
     | Ok () -> ()
     | Error e -> fail "round %d: structural: %s" round e);
    (* the persistent contents must be the shadow model, except for the
       single operation in flight at the crash (atomic either way) *)
    let mine =
      match workload with
      | `List ->
        M.L.fold list_ (fun acc k -> (k, k) :: acc) []
      | `Tree -> M.T.fold tree (fun acc k v -> (k, v) :: acc) []
      | `Map -> M.H.fold map (fun acc k v -> (k, v) :: acc) []
    in
    let theirs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) shadow [] in
    let diff =
      List.length
        (List.filter (fun kv -> not (List.mem kv theirs)) mine)
      + List.length
          (List.filter (fun kv -> not (List.mem kv mine)) theirs)
    in
    if diff > 1 then fail "round %d: %d divergences from the model" round diff
  in
  for round = 1 to rounds do
    Pmem.Region.set_trap region (Workload.Keygen.int rng 400);
    (try
       for _ = 1 to 4 do
         apply_op ()
       done;
       Pmem.Region.clear_trap region
     with Pmem.Region.Crash_point ->
       incr crashes;
       let policy =
         match Workload.Keygen.int rng 3 with
         | 0 -> Pmem.Region.Drop_all
         | 1 -> Pmem.Region.Keep_all
         | _ -> Pmem.Region.Random_subset (seed + round)
       in
       Pmem.Region.crash region policy;
       P.recover p;
       (* the in-flight operation may or may not have committed: resync
          the shadow for the key it touched by trusting the structure *)
       let resync k =
         let v =
           match workload with
           | `List ->
             if M.L.contains list_ k then Some k else None
           | `Tree -> M.T.get tree k
           | `Map -> M.H.get map k
         in
         match v with
         | Some v -> Hashtbl.replace shadow k v
         | None -> Hashtbl.remove shadow k
       in
       for k = 0 to 199 do
         resync k
       done);
    check round;
    if verbose && round mod 100 = 0 then
      Printf.printf "  ... %d/%d rounds, %d crashes\n%!" round rounds !crashes
  done;
  { rounds; crashes = !crashes; failures = !failures }

(* ---- command line ---- *)

let ptm_arg =
  let doc = "PTM to test: rom, romL, romLR, mne, pmdk, or all." in
  Arg.(value & opt string "all" & info [ "ptm" ] ~docv:"PTM" ~doc)

let workload_arg =
  let doc = "Workload: list, tree, map, or all." in
  Arg.(value & opt string "all" & info [ "workload" ] ~docv:"W" ~doc)

let rounds_arg =
  let doc = "Rounds per campaign (each round runs 4 ops with a crash trap)." in
  Arg.(value & opt int 200 & info [ "rounds" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "PRNG seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let verbose_arg =
  let doc = "Progress output." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let main ptm workload rounds seed verbose =
  let selected_ptms =
    if ptm = "all" then ptms
    else
      match List.assoc_opt ptm ptms with
      | Some m -> [ (ptm, m) ]
      | None -> failwith ("unknown PTM " ^ ptm)
  in
  let workloads =
    match workload with
    | "all" -> [ ("list", `List); ("tree", `Tree); ("map", `Map) ]
    | "list" -> [ ("list", `List) ]
    | "tree" -> [ ("tree", `Tree) ]
    | "map" -> [ ("map", `Map) ]
    | w -> failwith ("unknown workload " ^ w)
  in
  let failed = ref false in
  List.iter
    (fun (pname, m) ->
      List.iter
        (fun (wname, w) ->
          Printf.printf "%-6s x %-5s: %!" pname wname;
          let o = run_campaign m ~workload:w ~rounds ~seed ~verbose in
          if o.failures = [] then
            Printf.printf "OK (%d rounds, %d crash-recoveries)\n%!" o.rounds
              o.crashes
          else begin
            failed := true;
            Printf.printf "FAILED (%d issues)\n" (List.length o.failures);
            List.iter (fun f -> Printf.printf "    %s\n" f) o.failures
          end)
        workloads)
    selected_ptms;
  if !failed then exit 1

let cmd =
  let doc = "crash-injection campaigns against the Romulus PTMs" in
  let info = Cmd.info "crashtest" ~doc in
  Cmd.v info
    Term.(const main $ ptm_arg $ workload_arg $ rounds_arg $ seed_arg
          $ verbose_arg)

let () = exit (Cmd.eval cmd)
