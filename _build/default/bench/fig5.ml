(* Figure 5: update-only speedup relative to single-thread PMDK on a
   statically-dimensioned hash map (2,048 buckets, 100 entries) for value
   sizes of 8/64/256/1024 bytes.

   This is the experiment the paper built to reproduce Mnemosyne's
   original scalability: without the resizable map's shared counter,
   fine-grained STM conflicts are rare and Mnemosyne scales again, while
   the flat-combining Romulus variants stay flat-but-high. *)

let value_sizes = [ 8; 64; 256; 1024 ]
let threads = [ 1; 2; 4; 8; 16; 24; 30 ]
let keys = 100
let ptms = [ "romL"; "mne"; "pmdk" ]

let fence = Pmem.Fence.stt
let conflict = (0.01, 0.001) (* no shared counter: conflicts are rare *)

let updates_per_sec ~scale ~ptm ~costs n =
  let conflict_p, read_conflict_p = conflict in
  let model = Ds_bench.model_for ~ptm ~conflict_p ~read_conflict_p ~costs in
  let c = Ds_bench.sim_costs costs ~for_model:(Ds_bench.kind_for ptm) in
  let r =
    Simsched.Sync_model.run
      { Simsched.Sync_model.model; costs = c; readers = 0; writers = n;
        duration_ns = Common.sim_duration_ns scale; seed = 11 }
  in
  Simsched.Sync_model.updates_per_sec r

let run scale =
  Common.section
    "Figure 5: fixed hash map (2,048 buckets, 100 entries), speedup vs \
     1-thread PMDK";
  let ops = Common.measure_ops scale in
  List.iter
    (fun value_bytes ->
      let calibrated =
        List.map
          (fun ptm ->
            let b =
              Ds_bench.make_hash_map (Common.ptm_named ptm) ~fence ~keys
                ~resizable:false ~initial_buckets:2048 ~value_bytes
                ~region_size:(1 lsl 22) ()
            in
            (ptm, Ds_bench.calibrate ~ops b))
          ptms
      in
      let baseline =
        let pmdk = List.assoc "pmdk" calibrated in
        updates_per_sec ~scale ~ptm:"pmdk" ~costs:pmdk 1
      in
      Common.subsection
        (Printf.sprintf "%d-byte values (speedup vs PMDK@1 = %s TX/s)"
           value_bytes
           (Common.si (2. *. baseline)));
      Common.table ~header:"threads" ~cols:ptms
        ~rows:
          (List.map
             (fun n ->
               ( string_of_int n,
                 List.map
                   (fun ptm ->
                     let costs = List.assoc ptm calibrated in
                     updates_per_sec ~scale ~ptm ~costs n /. baseline)
                   ptms ))
             threads)
        (fun v -> Printf.sprintf "%.2f" v))
    value_sizes
