(* Ablations for the design choices DESIGN.md calls out:

   (a) the volatile redo log (RomulusLog) vs whole-span replication
       (basic Romulus) as the data grows — the log's benefit is the
       difference between copying O(tx) and O(heap) bytes per commit;
   (b) flat-combining batch amortization — the per-update cost and the
       per-update persistence-fence count as the batch grows;
   (c) cache-line size — replication and pwb traffic at 64/128/256-byte
       lines. *)

(* ---- (a) volatile log vs whole-span copy ---- *)

let swap_array (module P : Common.PTM) ~fence ~words ~txs =
  let r = Pmem.Region.create ~fence ~size:((words * 32) + (1 lsl 20)) () in
  let p = P.open_region r in
  let arr =
    P.update_tx p (fun () ->
        let a = P.alloc p (8 * words) in
        P.set_root p 0 a;
        a)
  in
  let chunk = 1_024 in
  let i = ref 0 in
  while !i < words do
    let stop = min words (!i + chunk) in
    let start = !i in
    P.update_tx p (fun () ->
        for j = start to stop - 1 do
          P.store p (arr + (8 * j)) j
        done);
    i := stop
  done;
  let rng = Workload.Keygen.create ~seed:3 () in
  let tx () =
    P.update_tx p (fun () ->
        for _ = 1 to 4 do
          let i = arr + (8 * Workload.Keygen.int rng words) in
          let j = arr + (8 * Workload.Keygen.int rng words) in
          let a = P.load p i and b = P.load p j in
          P.store p i b;
          P.store p j a
        done)
  in
  for _ = 1 to 20 do
    tx ()
  done;
  Gc.full_major ();
  let s = Pmem.Region.stats r in
  let before = Pmem.Stats.snapshot s in
  let ns = Workload.Bench_clock.ns_per_op ~region:r ~ops:txs tx in
  let d = Pmem.Stats.since ~now:s ~past:before in
  (ns, float_of_int d.Pmem.Stats.nvm_bytes /. float_of_int txs)

let log_vs_copy scale =
  Common.subsection
    "(a) volatile redo log vs whole-span copy (4-swap transactions)";
  let txs = match scale with Common.Quick -> 400 | Common.Full -> 4_000 in
  Printf.printf "%-12s %14s %14s %16s %16s\n" "array words" "rom ns/tx"
    "romL ns/tx" "rom NVM B/tx" "romL NVM B/tx";
  List.iter
    (fun words ->
      let rom_ns, rom_b =
        swap_array (module Romulus.Basic) ~fence:Pmem.Fence.dram ~words ~txs
      in
      let log_ns, log_b =
        swap_array (module Romulus.Logged) ~fence:Pmem.Fence.dram ~words ~txs
      in
      Printf.printf "%-12d %14.0f %14.0f %16.0f %16.0f\n%!" words rom_ns
        log_ns rom_b log_b)
    [ 1_000; 10_000; 100_000 ]

(* ---- (b) flat-combining batch amortization ---- *)

let fc_batching scale =
  Common.subsection
    "(b) flat combining: per-update cost and fences vs batch size (rb-tree)";
  let ops = Common.measure_ops scale in
  let b =
    Ds_bench.make_tree (module Romulus.Logged) ~fence:Pmem.Fence.stt
      ~keys:1_000 ~region_size:(1 lsl 20) ()
  in
  (* warm up *)
  for _ = 1 to 100 do
    b.Ds_bench.update_pair ()
  done;
  Printf.printf "%-12s %14s %16s\n" "batch size" "ns/update" "fences/update";
  List.iter
    (fun batch ->
      let s = Pmem.Region.stats b.Ds_bench.region in
      let before = Pmem.Stats.snapshot s in
      let iters = max 4 (ops / (8 * batch)) in
      let ns =
        Workload.Bench_clock.ns_per_op ~region:b.Ds_bench.region ~ops:iters
          (fun () -> b.Ds_bench.update_batch batch)
      in
      let d = Pmem.Stats.since ~now:s ~past:before in
      Printf.printf "%-12d %14.0f %16.2f\n%!" batch
        (ns /. float_of_int batch)
        (float_of_int (Pmem.Stats.fences d)
        /. float_of_int (iters * batch)))
    [ 1; 2; 4; 8; 16; 32 ]

(* ---- (c) cache-line size ---- *)

let line_size scale =
  Common.subsection "(c) cache-line size: replication traffic (rb-tree)";
  let ops = Common.measure_ops scale / 2 in
  Printf.printf "%-12s %14s %14s %14s\n" "line bytes" "ns/pair" "NVM B/pair"
    "pwb/pair";
  List.iter
    (fun line ->
      let r = Pmem.Region.create ~line_size:line ~size:(1 lsl 20) () in
      let p = Romulus.Logged.open_region r in
      let module T = Pds.Rb_tree.Make (Romulus.Logged) in
      let t = T.create p ~root:0 in
      for i = 0 to 999 do
        ignore (T.put t ((i * 7919) mod 1_000) i)
      done;
      let rng = Workload.Keygen.create ~seed:8 () in
      let s = Pmem.Region.stats r in
      let before = Pmem.Stats.snapshot s in
      let ns =
        Workload.Bench_clock.ns_per_op ~region:r ~ops (fun () ->
            let k = Workload.Keygen.int rng 1_000 in
            ignore (T.remove t k);
            ignore (T.put t k k))
      in
      let d = Pmem.Stats.since ~now:s ~past:before in
      Printf.printf "%-12d %14.0f %14.0f %14.1f\n%!" line ns
        (float_of_int d.Pmem.Stats.nvm_bytes /. float_of_int ops)
        (float_of_int d.Pmem.Stats.pwbs /. float_of_int ops))
    [ 64; 128; 256 ]

(* ---- (d) redo-log word deduplication ---- *)

let log_dedup _scale =
  Common.subsection
    "(d) redo-log deduplication: N stores to one word inside one tx";
  let r = Pmem.Region.create ~size:(1 lsl 18) () in
  let p = Romulus.Logged.open_region r in
  let obj =
    Romulus.Logged.update_tx p (fun () -> Romulus.Logged.alloc p 16)
  in
  Printf.printf "%-12s %14s %16s\n" "stores" "log ranges" "replicated B";
  List.iter
    (fun n ->
      let s = Pmem.Region.stats r in
      let entries = ref 0 in
      let before = Pmem.Stats.snapshot s in
      Romulus.Logged.update_tx p (fun () ->
          for i = 1 to n do
            Romulus.Logged.store p obj i
          done;
          entries := Romulus.Engine.log_entries (Romulus.Logged.engine p));
      let d = Pmem.Stats.since ~now:s ~past:before in
      (* replicated bytes = total nvm bytes minus the n in-place stores *)
      Printf.printf "%-12d %14d %16d\n%!" n !entries
        (d.Pmem.Stats.nvm_bytes - (8 * n)))
    [ 1; 10; 100; 1_000 ]

(* ---- (e) concurrency machinery tax on single-threaded code ---- *)

(* §5.1 argues for a separate single-threaded API because concurrent
   synchronization "must be paid for every transaction even in
   single-threaded applications".  Romulus.Seq_front is that API: same
   engine, no flat combining, no reader-writer lock. *)
let seq_vs_fc scale =
  Common.subsection
    "(e) single-threaded API vs flat-combining API (same engine)";
  let ops = Common.measure_ops scale in
  let cost (module P : Common.PTM) =
    let r = Pmem.Region.create ~size:(1 lsl 18) () in
    let p = P.open_region r in
    let obj = P.update_tx p (fun () -> P.alloc p 64) in
    for _ = 1 to 100 do
      P.update_tx p (fun () -> P.store p obj 1)
    done;
    Gc.full_major ();
    let upd =
      Workload.Bench_clock.median_ns_per_op ~region:r ~ops (fun () ->
          P.update_tx p (fun () -> P.store p obj 2))
    in
    let rd =
      Workload.Bench_clock.median_ns_per_op ~region:r ~ops (fun () ->
          P.read_tx p (fun () -> ignore (P.load p obj)))
    in
    (upd, rd)
  in
  let fc_u, fc_r = cost (module Romulus.Logged) in
  let sq_u, sq_r = cost (module Romulus.Seq_front) in
  Printf.printf "%-22s %14s %14s\n" "API" "update ns/tx" "read ns/tx";
  Printf.printf "%-22s %14.0f %14.0f\n" "RomulusLog (FC+CRWWP)" fc_u fc_r;
  Printf.printf "%-22s %14.0f %14.0f\n" "RomulusSeq (none)" sq_u sq_r;
  Printf.printf "synchronization tax: %.0f ns per update, %.0f ns per read\n%!"
    (fc_u -. sq_u) (fc_r -. sq_r)

let run scale =
  Common.section "Ablations";
  log_vs_copy scale;
  fc_batching scale;
  line_size scale;
  log_dedup scale;
  seq_vs_fc scale
