(* Figure 6: update-only throughput on the resizable hash map with 10K,
   100K (and, with --full, 1M) keys.  The point of the figure: every
   log-based PTM is insensitive to the structure size, while basic
   Romulus collapses — its commit replicates the whole used span, which
   grows with the data set.

   Mnemosyne is omitted as in the paper (footnote 2: its public
   implementation cannot allocate large enough data sets; for us, its
   bounded persistent log has the same effect on the populate phase). *)

let ptms = [ "rom"; "romL"; "romLR"; "pmdk" ]
let conflict = (1.0, 0.02)
let fence = Pmem.Fence.stt

let sizes = function
  | Common.Quick -> [ 10_000; 100_000 ]
  | Common.Full -> [ 10_000; 100_000; 1_000_000 ]

let region_size_for keys = (keys * 128) + (1 lsl 23)

let updates_per_sec ~scale ~ptm ~costs n =
  let conflict_p, read_conflict_p = conflict in
  let model = Ds_bench.model_for ~ptm ~conflict_p ~read_conflict_p ~costs in
  let c = Ds_bench.sim_costs costs ~for_model:(Ds_bench.kind_for ptm) in
  let r =
    Simsched.Sync_model.run
      { Simsched.Sync_model.model; costs = c; readers = 0; writers = n;
        duration_ns = Common.sim_duration_ns scale; seed = 13 }
  in
  2. *. Simsched.Sync_model.updates_per_sec r

let run scale =
  Common.section
    "Figure 6: resizable hash map, update-only, growing key counts (TX/s)";
  let threads = Common.threads_axis scale in
  List.iter
    (fun keys ->
      Common.subsection (Printf.sprintf "%d keys" keys);
      let calibrated =
        List.map
          (fun ptm ->
            let b =
              Ds_bench.make_hash_map (Common.ptm_named ptm) ~fence ~keys
                ~resizable:true ~initial_buckets:64 ~value_bytes:8
                ~region_size:(region_size_for keys) ()
            in
            (* the span copy makes basic Romulus expensive: scale the
               measurement effort down with the structure size *)
            let ops = max 60 (Common.measure_ops scale * 1_000 / keys) in
            (ptm, Ds_bench.calibrate ~ops b))
          ptms
      in
      Common.table ~header:"threads" ~cols:ptms
        ~rows:
          (List.map
             (fun n ->
               ( string_of_int n,
                 List.map
                   (fun ptm ->
                     updates_per_sec ~scale ~ptm
                       ~costs:(List.assoc ptm calibrated) n)
                   ptms ))
             threads)
        Common.si)
    (sizes scale)
