(* Figure 4: update-only and read-only throughput on a linked list, a
   resizable hash map and a red-black tree holding 1,000 keys, for 1-64
   threads and all five PTMs.

   Single-thread costs are measured from the real data-structure code
   (including calibration of the flat-combining batch amortization); the
   thread axis is produced by the discrete-event models (DESIGN.md). *)

type ds = { name : string; build : (module Common.PTM) -> Ds_bench.ops;
            conflict : float * float }

let keys = 1_000
let region_size = 1 lsl 20

(* Persistence costs are emulated with the STT profile so they are
   visible above OCaml's interposition overhead; §6.2 reports that the
   STT-emulated results are "highly similar" to the DRAM ones. *)
let fence = Pmem.Fence.stt

let structures =
  [ { name = "linked list";
      build = (fun m -> Ds_bench.make_list m ~fence ~keys ~region_size ());
      conflict = (0.02, 0.002) };
    { name = "hash map";
      build =
        (fun m ->
          Ds_bench.make_hash_map m ~fence ~keys ~resizable:true
            ~initial_buckets:64 ~value_bytes:8 ~region_size ());
      (* the shared element counter makes every pair of concurrent update
         transactions conflict under fine-grained STM (§6.2) *)
      conflict = (1.0, 0.02) };
    { name = "rb tree";
      build = (fun m -> Ds_bench.make_tree m ~fence ~keys ~region_size ());
      conflict = (0.05, 0.005) } ]

let throughput ~scale ~ptm ~costs ~conflict ~readers ~writers =
  let conflict_p, read_conflict_p = conflict in
  let model = Ds_bench.model_for ~ptm ~conflict_p ~read_conflict_p ~costs in
  let c = Ds_bench.sim_costs costs ~for_model:(Ds_bench.kind_for ptm) in
  let r =
    Simsched.Sync_model.run
      { Simsched.Sync_model.model; costs = c; readers; writers;
        duration_ns = Common.sim_duration_ns scale; seed = 7 }
  in
  (* one op-pair = two transactions, as in §6.2 *)
  ( 2. *. Simsched.Sync_model.reads_per_sec r,
    2. *. Simsched.Sync_model.updates_per_sec r )

let run scale =
  Common.section
    "Figure 4: throughput on 1,000-key structures (TX/s; measured 1-thread \
     costs, DES thread axis)";
  let threads = Common.threads_axis scale in
  let ops = Common.measure_ops scale in
  List.iter
    (fun s ->
      let calibrated =
        List.map
          (fun (name, m) ->
            let b = s.build m in
            (name, Ds_bench.calibrate ~ops b))
          Common.all_ptms
      in
      Common.subsection (Printf.sprintf "%s: update-only workload" s.name);
      Common.table ~header:"threads"
        ~cols:(List.map fst calibrated)
        ~rows:
          (List.map
             (fun n ->
               ( string_of_int n,
                 List.map
                   (fun (ptm, costs) ->
                     snd
                       (throughput ~scale ~ptm ~costs ~conflict:s.conflict
                          ~readers:0 ~writers:n))
                   calibrated ))
             threads)
        Common.si;
      Common.subsection (Printf.sprintf "%s: read-only workload" s.name);
      Common.table ~header:"threads"
        ~cols:(List.map fst calibrated)
        ~rows:
          (List.map
             (fun n ->
               ( string_of_int n,
                 List.map
                   (fun (ptm, costs) ->
                     fst
                       (throughput ~scale ~ptm ~costs ~conflict:s.conflict
                          ~readers:n ~writers:0))
                   calibrated ))
             threads)
        Common.si)
    structures
