(* Per-(PTM, data-structure) benchmark operations and cost calibration.

   Every workload follows §6.2: an update operation is a removal followed
   by an insertion of a random existing key (two transactions), a read
   operation is two searches for random existing keys (two read-only
   transactions).  [update_batch] executes n update pairs inside one
   enclosing transaction — that is exactly what the flat-combining
   combiner does with a queue of n published updates, and it is how the
   batch cost model (fixed + n * work) is calibrated from real code. *)

type ops = {
  ds : string;
  ptm : string;
  region : Pmem.Region.t;
  read_pair : unit -> unit;
  update_pair : unit -> unit;
  update_batch : int -> unit;
}

(* measured costs, per *pair* (the unit threads execute in the DES) *)
type costs = {
  read_pair_ns : float;
  update_pair_ns : float;   (* one pair in its own transaction(s) *)
  pair_work_ns : float;     (* marginal cost of a pair inside a batch *)
  batch_fixed_ns : float;   (* per-transaction fixed cost *)
}

(* Population strategy (see each maker): the basic (full-copy) Romulus
   replicates the whole used span on every commit, so populating with one
   transaction per element would copy O(n^2) bytes — it gets a single
   enclosing transaction (one replication).  The log-based PTMs have
   bounded persistent logs, so they populate one transaction per
   element. *)

let make_list (module P : Common.PTM) ?fence ~keys ~region_size () =
  let r = Pmem.Region.create ?fence ~size:region_size () in
  let p = P.open_region r in
  let module L = Pds.Linked_list.Make (P) in
  let l = L.create p ~root:0 in
  let populate f = if P.name = "rom" then P.update_tx p f else f () in
  let rng = Workload.Keygen.create ~seed:42 () in
  (* distinct keys, shuffled insertion order *)
  populate (fun () ->
      for i = 0 to keys - 1 do
        ignore (L.add l (((i * 7919) mod keys * 2) + 1))
      done);
  let random_key () = ((Workload.Keygen.int rng keys * 7919) mod keys * 2) + 1 in
  let read_pair () =
    ignore (L.contains l (random_key ()));
    ignore (L.contains l (random_key ()))
  in
  let update_one () =
    let k = random_key () in
    ignore (L.remove l k);
    ignore (L.add l k)
  in
  let update_batch n =
    P.update_tx p (fun () ->
        for _ = 1 to n do
          update_one ()
        done)
  in
  { ds = "linked-list"; ptm = P.name; region = r; read_pair;
    update_pair = update_one; update_batch }

let make_hash_map (module P : Common.PTM) ?fence ~keys ~resizable
    ~initial_buckets ~value_bytes ~region_size () =
  let r = Pmem.Region.create ?fence ~size:region_size () in
  let p = P.open_region r in
  let module M = Pds.Hash_map.Make (P) in
  let m = M.create ~resizable ~initial_buckets p ~root:0 in
  let rng = Workload.Keygen.create ~seed:43 () in
  let payload = Workload.Keygen.fixed_value (max 8 value_bytes) in
  (* value = pointer to a payload blob when value_bytes > 8, else inline *)
  let alloc_value () =
    if value_bytes <= 8 then 7
    else begin
      let b = P.alloc p value_bytes in
      P.store_bytes p b payload;
      b
    end
  in
  let free_value v = if value_bytes > 8 then P.free p v in
  let populate f = if P.name = "rom" then P.update_tx p f else f () in
  populate (fun () ->
      for k = 0 to keys - 1 do
        P.update_tx p (fun () -> ignore (M.put m k (alloc_value ())))
      done);
  let random_key () = Workload.Keygen.int rng keys in
  let read_pair () =
    ignore (M.get m (random_key ()));
    ignore (M.get m (random_key ()))
  in
  (* removal then insertion, two transactions (§6.2); the value blob is
     freed with the removal and re-allocated with the insertion *)
  let update_one () =
    let k = random_key () in
    P.update_tx p (fun () ->
        match M.get m k with
        | Some v ->
          ignore (M.remove m k);
          free_value v
        | None -> ());
    P.update_tx p (fun () -> ignore (M.put m k (alloc_value ())))
  in
  let update_batch n =
    P.update_tx p (fun () ->
        for _ = 1 to n do
          update_one ()
        done)
  in
  { ds = (if resizable then "hash-map" else "hash-map-fixed");
    ptm = P.name; region = r; read_pair; update_pair = update_one;
    update_batch }

let make_tree (module P : Common.PTM) ?fence ~keys ~region_size () =
  let r = Pmem.Region.create ?fence ~size:region_size () in
  let p = P.open_region r in
  let module T = Pds.Rb_tree.Make (P) in
  let t = T.create p ~root:0 in
  let populate f = if P.name = "rom" then P.update_tx p f else f () in
  let rng = Workload.Keygen.create ~seed:44 () in
  populate (fun () ->
      for i = 0 to keys - 1 do
        ignore (T.put t ((i * 7919) mod keys) i)
      done);
  let random_key () = Workload.Keygen.int rng keys in
  let read_pair () =
    ignore (T.get t (random_key ()));
    ignore (T.get t (random_key ()))
  in
  let update_one () =
    let k = random_key () in
    ignore (T.remove t k);
    ignore (T.put t k k)
  in
  let update_batch n =
    P.update_tx p (fun () ->
        for _ = 1 to n do
          update_one ()
        done)
  in
  { ds = "rb-tree"; ptm = P.name; region = r; read_pair;
    update_pair = update_one; update_batch }

(* ---- calibration ---- *)

let calibrate ?(ops = 2_000) t =
  (* warm up, then measure medians on a quiet heap *)
  for _ = 1 to 50 do
    t.update_pair ();
    t.read_pair ()
  done;
  Gc.full_major ();
  let median f ~ops =
    Workload.Bench_clock.median_ns_per_op ~region:t.region ~runs:3 ~ops f
  in
  let read_pair_ns = median t.read_pair ~ops in
  let update_pair_ns = median t.update_pair ~ops in
  let batches = max 8 (ops / 16) in
  let batch1 = median (fun () -> t.update_batch 1) ~ops:batches in
  let batch16 =
    median (fun () -> t.update_batch 16) ~ops:(max 4 (batches / 16))
  in
  let pair_work_ns =
    let w = (batch16 -. batch1) /. 15. in
    (* batching can only help; clamp measurement noise *)
    if w <= 0. || w > update_pair_ns then update_pair_ns
    else w
  in
  let batch_fixed_ns = max 0. (batch1 -. pair_work_ns) in
  { read_pair_ns; update_pair_ns; pair_work_ns; batch_fixed_ns }

(* Between operations, a benchmark thread spends time in its own loop
   (key generation, result checks): model it as a fraction of the read
   cost.  This is what lets a writer slip into a reader-preference lock
   when few readers run, while starving once many do (Figure 7). *)
let think_of c = Float.max Common.think_ns (0.5 *. c.read_pair_ns)

(* DES cost records for each PTM family, from a calibration *)
let sim_costs c ~for_model =
  let open Simsched.Sync_model in
  match for_model with
  | `Fc (* rom, romL, romLR *) ->
    { read_ns = c.read_pair_ns;
      update_work_ns = c.pair_work_ns;
      batch_fixed_ns = c.batch_fixed_ns;
      think_ns = think_of c }
  | `Single_tx (* mne, pmdk: no combining *) ->
    { read_ns = c.read_pair_ns;
      update_work_ns = c.update_pair_ns;
      batch_fixed_ns = 0.;
      think_ns = think_of c }

(* Serialized cost of one RMW on a contended cache line (the PMDK
   wrapper's shared reader counter). *)
let rw_atomic_ns = 40.

(* Mnemosyne persists its redo log into per-thread log areas, so durable
   commits proceed in parallel; the serialized resource that remains is
   the global version clock (one contended RMW per commit).  Our port
   simplifies to one shared log, but the model follows the paper's
   system. *)
let stm_commit_serial_ns = 100.

(* the synchronization model each PTM uses, with workload-dependent STM
   conflict probabilities (DESIGN.md) *)
let model_for ~ptm ~conflict_p ~read_conflict_p ~costs =
  let open Simsched.Sync_model in
  ignore costs;
  match ptm with
  | "rom" | "romL" -> Fc_crwwp
  | "romLR" -> Fc_left_right
  | "pmdk" -> Rw_reader_pref { atomic_ns = rw_atomic_ns }
  | "mne" ->
    Stm
      { conflict_p; read_conflict_p;
        commit_serial_ns = stm_commit_serial_ns }
  | other -> failwith ("no sync model for " ^ other)

let kind_for = function
  | "rom" | "romL" | "romLR" -> `Fc
  | _ -> `Single_tx
