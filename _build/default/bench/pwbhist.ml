(* §6.2's instrumentation finding: the linked list executes ~10 pwb per
   transaction, while the red-black tree's histogram is dispersed with
   two peaks (recolour-only vs rotation-heavy transactions), and most of
   the stores inside transactions come from the memory allocator.

   This experiment reproduces the histograms from live counters. *)

module P = Romulus.Logged
module L = Pds.Linked_list.Make (Romulus.Logged)
module T = Pds.Rb_tree.Make (Romulus.Logged)

let txs = 2_000
let keys = 1_000

let histogram name per_tx =
  let counts = Hashtbl.create 32 in
  List.iter
    (fun c ->
      (* bucket by 5 *)
      let b = c / 5 * 5 in
      Hashtbl.replace counts b (1 + Option.value ~default:0 (Hashtbl.find_opt counts b)))
    per_tx;
  let sorted = List.sort compare (List.of_seq (Hashtbl.to_seq counts)) in
  let n = List.length per_tx in
  let mean =
    float_of_int (List.fold_left ( + ) 0 per_tx) /. float_of_int n
  in
  let sorted_vals = List.sort compare per_tx in
  let pct p = List.nth sorted_vals (p * (n - 1) / 100) in
  Common.subsection
    (Printf.sprintf "%s: pwb/tx mean %.1f, p50 %d, p90 %d, max %d" name mean
       (pct 50) (pct 90) (pct 100));
  List.iter
    (fun (bucket, freq) ->
      let bar = String.make (min 60 (freq * 120 / n)) '#' in
      Printf.printf "%4d-%-4d %6d %s\n" bucket (bucket + 4) freq bar)
    sorted;
  flush stdout

let collect_list () =
  let r = Pmem.Region.create ~size:(1 lsl 20) () in
  let p = P.open_region r in
  let l = L.create p ~root:0 in
  for i = 0 to keys - 1 do
    ignore (L.add l ((2 * i) + 1))
  done;
  let rng = Workload.Keygen.create ~seed:5 () in
  let s = Pmem.Region.stats r in
  let samples = ref [] in
  for _ = 1 to txs / 2 do
    let k = (2 * Workload.Keygen.int rng keys) + 1 in
    let before = Pmem.Stats.snapshot s in
    ignore (L.remove l k);
    let mid = Pmem.Stats.snapshot s in
    ignore (L.add l k);
    samples :=
      (Pmem.Stats.since ~now:mid ~past:before).Pmem.Stats.pwbs
      :: (Pmem.Stats.since ~now:s ~past:mid).Pmem.Stats.pwbs
      :: !samples
  done;
  !samples

let collect_tree () =
  let r = Pmem.Region.create ~size:(1 lsl 20) () in
  let p = P.open_region r in
  let t = T.create p ~root:0 in
  for i = 0 to keys - 1 do
    ignore (T.put t ((i * 7919) mod keys) i)
  done;
  let rng = Workload.Keygen.create ~seed:6 () in
  let s = Pmem.Region.stats r in
  let samples = ref [] in
  for _ = 1 to txs / 2 do
    let k = Workload.Keygen.int rng keys in
    let before = Pmem.Stats.snapshot s in
    ignore (T.remove t k);
    let mid = Pmem.Stats.snapshot s in
    ignore (T.put t k k);
    samples :=
      (Pmem.Stats.since ~now:mid ~past:before).Pmem.Stats.pwbs
      :: (Pmem.Stats.since ~now:s ~past:mid).Pmem.Stats.pwbs
      :: !samples
  done;
  !samples

(* §6.2: "most of the stores inside transactions are triggered by the
   memory allocator" — separate user-credited stores (the data-structure
   fields) from the rest (allocator metadata, twin-copy replication). *)
let allocator_share () =
  let r = Pmem.Region.create ~size:(1 lsl 20) () in
  let p = P.open_region r in
  let l = L.create p ~root:0 in
  for i = 0 to keys - 1 do
    ignore (L.add l ((2 * i) + 1))
  done;
  let rng = Workload.Keygen.create ~seed:7 () in
  let s = Pmem.Region.stats r in
  let before = Pmem.Stats.snapshot s in
  let n = 1_000 in
  for _ = 1 to n / 2 do
    let k = (2 * Workload.Keygen.int rng keys) + 1 in
    ignore (L.remove l k);
    ignore (L.add l k)
  done;
  let d = Pmem.Stats.since ~now:s ~past:before in
  let user_stores = d.Pmem.Stats.user_bytes / 8 in
  Common.subsection "store breakdown per linked-list transaction";
  Printf.printf
    "stores/tx %.1f, of which data-structure fields %.1f (%.0f%%) — the \
     rest is allocator metadata and twin-copy replication\n%!"
    (float_of_int d.Pmem.Stats.stores /. float_of_int n)
    (float_of_int user_stores /. float_of_int n)
    (100. *. float_of_int user_stores /. float_of_int d.Pmem.Stats.stores)

let run _scale =
  Common.section
    "pwb histograms (6.2): RomulusLog, remove/insert transactions, 1,000 keys";
  histogram "linked list" (collect_list ());
  histogram "red-black tree" (collect_tree ());
  allocator_share ()
