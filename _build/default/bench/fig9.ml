(* Figure 9: the SPS microbenchmark — an array of 10,000 integers in
   persistent memory, transactions that swap randomly chosen pairs, with
   the transaction size swept from 1 to 1,024 swaps and the persistence
   primitives mapped to CLWB+SFENCE / CLFLUSHOPT+SFENCE / CLFLUSH /
   emulated STT-RAM / emulated PCM.

   No allocation happens during the benchmark, so this isolates the
   fence/flush cost profile of each PTM.  The headline shape: RomulusLog
   and RomulusLR lead everywhere except at 1,024 swaps/tx, where copying
   the whole array once (basic Romulus) becomes cheaper than replicating
   2,048 logged ranges. *)

let array_words = 10_000

let tx_sizes = [ 1; 4; 8; 16; 32; 64; 128; 256; 1024 ]

let profiles =
  [ Pmem.Fence.clwb; Pmem.Fence.clflushopt; Pmem.Fence.clflush;
    Pmem.Fence.stt; Pmem.Fence.pcm ]

let swap_budget = function Common.Quick -> 8_192 | Common.Full -> 131_072

let swaps_per_us (module P : Common.PTM) ~fence ~swaps_per_tx ~budget =
  let r = Pmem.Region.create ~fence ~size:(1 lsl 21) () in
  let p = P.open_region r in
  let arr =
    P.update_tx p (fun () ->
        let a = P.alloc p (8 * array_words) in
        P.set_root p 0 a;
        a)
  in
  (* populate in bounded chunks: the STM baseline's persistent log and
     the undo log are bounded *)
  let chunk = 1_024 in
  let i = ref 0 in
  while !i < array_words do
    let stop = min array_words (!i + chunk) in
    let start = !i in
    P.update_tx p (fun () ->
        for j = start to stop - 1 do
          P.store p (arr + (8 * j)) j
        done);
    i := stop
  done;
  let rng = Workload.Keygen.create ~seed:99 () in
  let tx () =
    P.update_tx p (fun () ->
        for _ = 1 to swaps_per_tx do
          let i = arr + (8 * Workload.Keygen.int rng array_words) in
          let j = arr + (8 * Workload.Keygen.int rng array_words) in
          let a = P.load p i and b = P.load p j in
          P.store p i b;
          P.store p j a
        done)
  in
  (* warm up *)
  tx ();
  let ntx = max 2 (budget / swaps_per_tx) in
  let ns = Workload.Bench_clock.ns_per_op ~region:r ~ops:ntx tx in
  float_of_int swaps_per_tx /. (ns /. 1e3)

let run scale =
  Common.section
    "Figure 9: SPS benchmark, swaps/us vs transaction size, per fence type";
  let budget = swap_budget scale in
  List.iter
    (fun fence ->
      Common.subsection
        (Printf.sprintf "pwb = %s (%d/%d/%d ns)" fence.Pmem.Fence.name
           fence.Pmem.Fence.pwb_ns fence.Pmem.Fence.pfence_ns
           fence.Pmem.Fence.psync_ns);
      Common.table ~header:"swaps/tx"
        ~cols:(List.map fst Common.all_ptms)
        ~rows:
          (List.map
             (fun swaps_per_tx ->
               ( string_of_int swaps_per_tx,
                 List.map
                   (fun (_, m) -> swaps_per_us m ~fence ~swaps_per_tx ~budget)
                   Common.all_ptms ))
             tx_sizes)
        (fun v -> Printf.sprintf "%.3f" v))
    profiles
