bench/fig5.ml: Common Ds_bench List Pmem Printf Simsched
