bench/fig6.ml: Common Ds_bench List Pmem Printf Simsched
