bench/fig7.ml: Common Ds_bench List Pmem Simsched
