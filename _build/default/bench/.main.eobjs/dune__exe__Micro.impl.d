bench/micro.ml: Analyze Bechamel Benchmark Common Hashtbl Instance List Measure Palloc Pmem Printf Romulus Staged Test Time Toolkit
