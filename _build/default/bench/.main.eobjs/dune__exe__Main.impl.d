bench/main.ml: Ablation Array Commit_path Common Fig4 Fig5 Fig6 Fig7 Fig8 Fig9 List Micro Printf Pwbhist Recovery Sys Table1
