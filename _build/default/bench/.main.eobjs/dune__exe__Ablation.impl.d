bench/ablation.ml: Common Ds_bench Gc List Pds Pmem Printf Romulus Workload
