bench/pwbhist.ml: Common Hashtbl List Option Pds Pmem Printf Romulus String Workload
