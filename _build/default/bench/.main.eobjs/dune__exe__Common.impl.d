bench/common.ml: Baselines Float List Printf Romulus
