bench/commit_path.ml: Buffer Common Fun Gc List Pds Pmem Printf Romulus Workload
