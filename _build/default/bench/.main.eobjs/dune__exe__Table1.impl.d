bench/table1.ml: Common List Pmem Printf Romulus
