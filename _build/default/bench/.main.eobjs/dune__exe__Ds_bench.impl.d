bench/ds_bench.ml: Common Float Gc Pds Pmem Simsched Workload
