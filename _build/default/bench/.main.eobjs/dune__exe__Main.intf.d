bench/main.mli:
