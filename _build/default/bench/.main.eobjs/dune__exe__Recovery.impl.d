bench/recovery.ml: Common List Pds Pmem Printf Romulus Workload
