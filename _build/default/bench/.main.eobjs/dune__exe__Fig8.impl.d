bench/fig8.ml: Common Float Gc Kv List Pmem Printf Simsched Workload
