bench/fig4.ml: Common Ds_bench List Pmem Printf Simsched
