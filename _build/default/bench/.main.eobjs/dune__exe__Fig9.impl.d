bench/fig9.ml: Common List Pmem Printf Workload
