(* Table 1: comparison of transactional persistence techniques — log
   type, persistent log footprint, fences per transaction, interposition
   and write amplification.  For the five implemented PTMs the numbers
   are measured live from the region instrumentation on a canonical
   transaction (8 word stores, no allocation); Vista / Atlas / JustDo are
   not implemented (Vista needs the Rio file cache, JustDo persistent
   CPU caches), so their rows reproduce the paper's analytic values,
   marked with *. *)

let canonical_tx (module P : Common.PTM) =
  let r = Pmem.Region.create ~size:(1 lsl 16) () in
  let p = P.open_region r in
  let arr = P.update_tx p (fun () -> P.alloc p 512) in
  (* warm-up transaction so lazily-created structures exist *)
  P.update_tx p (fun () -> P.store p arr 0);
  let s = Pmem.Region.stats r in
  let before = Pmem.Stats.snapshot s in
  let n = 50 in
  for i = 1 to n do
    P.update_tx p (fun () ->
        for j = 0 to 7 do
          P.store p (arr + (8 * j)) ((i * 8) + j)
        done)
  done;
  let d = Pmem.Stats.since ~now:s ~past:before in
  let per_tx x = float_of_int x /. float_of_int n in
  ( per_tx (Pmem.Stats.fences d),
    per_tx d.Pmem.Stats.pwbs,
    Pmem.Stats.write_amplification d )

let run _scale =
  Common.section
    "Table 1: transactional persistence techniques (8-store transaction)";
  Printf.printf "%-10s %-14s %12s %10s %8s  %-15s\n" "technique" "log type"
    "fences/tx" "pwb/tx" "amplif." "interposition";
  let static name log fences pwb amp interp =
    Printf.printf "%-10s %-14s %12s %10s %8s  %-15s\n" name log fences pwb amp
      interp
  in
  static "Vista*" "undo" "n/a" "n/a" "300%" "stores";
  static "Atlas*" "undo" "2+3/range" "n/a" "400%" "stores";
  static "JustDo*" "done-to-here" "2+3/store" "n/a" "400%" "stores";
  let measured (name, m) =
    let fences, pwbs, amp = canonical_tx m in
    let log_type, interp =
      match name with
      | "rom" -> ("none (copy)", "stores")
      | "romL" | "romLR" -> ("volatile redo", "stores")
      | "mne" -> ("redo (pm)", "loads+stores")
      | "pmdk" -> ("undo (pm)", "stores")
      | _ -> ("?", "?")
    in
    static name log_type
      (Printf.sprintf "%.1f" fences)
      (Printf.sprintf "%.1f" pwbs)
      (Printf.sprintf "%.0f%%" ((amp -. 1.) *. 100.))
      interp
  in
  List.iter measured Common.all_ptms;
  (let fences, pwbs, amp = canonical_tx (module Romulus.Seq_front) in
   static "romSeq" "volatile redo"
     (Printf.sprintf "%.1f" fences)
     (Printf.sprintf "%.1f" pwbs)
     (Printf.sprintf "%.0f%%" ((amp -. 1.) *. 100.))
     "stores");
  print_string
    "(* = analytic values from the paper; these systems need hardware we\n\
    \   cannot simulate faithfully: Rio file cache, persistent CPU caches.\n\
    \   amplif. = extra persistent bytes per user byte, line-granularity\n\
    \   replication included for the Romulus variants.)\n"
