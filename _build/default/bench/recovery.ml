(* §6.5 recovery cost: populate a hash map, crash in the middle of a
   transaction, and time the recovery procedure.  The paper reports
   ~114 us for 1,000 key-value pairs, ~127 ms for 1,000,000 and about
   1 s/GB, linear in the used span, dominated by the pwb calls (their
   machine used CLFLUSH — so does this experiment). *)

module P = Romulus.Logged
module M = Pds.Hash_map.Make (Romulus.Logged)

let sizes = function
  | Common.Quick -> [ 1_000; 10_000; 100_000 ]
  | Common.Full -> [ 1_000; 10_000; 100_000; 1_000_000 ]

(* per key: a 32-byte node chunk + a 112-byte value-blob chunk + bucket
   array share (with the doubled transient during a resize) *)
let region_size_for keys = (keys * 448) + (1 lsl 23)

let recover_time keys =
  let r =
    Pmem.Region.create ~fence:Pmem.Fence.clflush
      ~size:(region_size_for keys) ()
  in
  let p = P.open_region r in
  let m = M.create ~initial_buckets:64 p ~root:0 in
  (* 100-byte values via blobs, as in the paper's key-value recovery *)
  let payload = Workload.Keygen.fixed_value 100 in
  for k = 0 to keys - 1 do
    P.update_tx p (fun () ->
        let b = P.alloc p 100 in
        P.store_bytes p b payload;
        ignore (M.put m k b))
  done;
  let span = Romulus.Engine.used_span (P.engine p) in
  (* crash mid-transaction so that recovery has real work to do *)
  Pmem.Region.set_trap r 10;
  (match P.update_tx p (fun () -> ignore (M.remove m 1); ignore (M.put m 1 1))
   with
   | _ -> failwith "trap did not fire"
   | exception Pmem.Region.Crash_point -> ());
  Pmem.Region.crash r Pmem.Region.Drop_all;
  let ns = Workload.Bench_clock.time_ns ~region:r (fun () -> P.recover p) in
  (* sanity: the data survived *)
  let m = M.attach p ~root:0 in
  assert (M.mem m 0);
  (span, ns)

let run scale =
  Common.section "Recovery cost (6.5): crash mid-transaction, CLFLUSH pwbs";
  Printf.printf "%-12s %14s %14s %12s\n" "key-values" "used span" "recovery"
    "throughput";
  let last = ref 0. in
  List.iter
    (fun keys ->
      let span, ns = recover_time keys in
      let gbps = float_of_int span /. ns in
      last := gbps;
      Printf.printf "%-12d %14s %14s %9.2f GB/s\n%!" keys
        (Common.si (float_of_int span) ^ "B")
        (Common.ns ns) gbps)
    (sizes scale);
  Printf.printf "extrapolated 1 GB region recovery: ~%s\n"
    (Common.ns (1e9 /. !last))
