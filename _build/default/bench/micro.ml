(* Bechamel microbenchmarks of the core primitives: region accesses,
   allocator operations, transaction overheads per variant.  These are
   the building-block latencies behind every figure. *)

open Bechamel
open Toolkit

let make_tests () =
  let r = Pmem.Region.create ~size:(1 lsl 20) () in
  let rl = Pmem.Region.create ~size:(1 lsl 20) () in
  let p = Romulus.Logged.open_region rl in
  let obj =
    Romulus.Logged.update_tx p (fun () -> Romulus.Logged.alloc p 256)
  in
  let rlr = Pmem.Region.create ~size:(1 lsl 20) () in
  let plr = Romulus.Lr.open_region rlr in
  let obj_lr = Romulus.Lr.update_tx plr (fun () -> Romulus.Lr.alloc plr 64) in
  Romulus.Lr.update_tx plr (fun () -> Romulus.Lr.store plr obj_lr 1);
  let module Mem = struct
    type t = Pmem.Region.t

    let load = Pmem.Region.load
    let store = Pmem.Region.store
  end in
  let module A = Palloc.Make (Mem) in
  let arena_region = Pmem.Region.create ~size:(1 lsl 20) () in
  let arena = A.init arena_region ~base:64 ~size:((1 lsl 20) - 64) in
  Test.make_grouped ~name:"romulus"
    [ Test.make ~name:"region load"
        (Staged.stage (fun () -> ignore (Pmem.Region.load r 4096)));
      Test.make ~name:"region store+pwb"
        (Staged.stage (fun () ->
             Pmem.Region.store r 4096 42;
             Pmem.Region.pwb r 4096));
      Test.make ~name:"region pfence"
        (Staged.stage (fun () -> Pmem.Region.pfence r));
      Test.make ~name:"palloc alloc+free"
        (Staged.stage (fun () ->
             let c = A.alloc arena 48 in
             A.free arena c));
      Test.make ~name:"romL empty update_tx"
        (Staged.stage (fun () -> Romulus.Logged.update_tx p (fun () -> ())));
      Test.make ~name:"romL 8-store tx"
        (Staged.stage (fun () ->
             Romulus.Logged.update_tx p (fun () ->
                 for i = 0 to 7 do
                   Romulus.Logged.store p (obj + (8 * i)) i
                 done)));
      Test.make ~name:"romL read_tx load"
        (Staged.stage (fun () ->
             Romulus.Logged.read_tx p (fun () ->
                 ignore (Romulus.Logged.load p obj))));
      Test.make ~name:"romLR wait-free read"
        (Staged.stage (fun () ->
             Romulus.Lr.read_tx plr (fun () ->
                 ignore (Romulus.Lr.load plr obj_lr)))) ]

let run _scale =
  Common.section "Microbenchmarks (bechamel, ns/op by OLS)";
  let tests = make_tests () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:None
      ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, res) ->
      let est =
        match Analyze.OLS.estimates res with
        | Some (e :: _) -> Printf.sprintf "%10.1f ns" e
        | _ -> "?"
      in
      Printf.printf "%-28s %s\n" name est)
    (List.sort compare rows);
  flush stdout
