(* Shared benchmark infrastructure: the PTM roster, run parameters
   (quick vs full/paper-scale), and table formatting. *)

module type PTM = Romulus.Ptm_intf.S

let all_ptms : (string * (module PTM)) list =
  [ ("rom", (module Romulus.Basic));
    ("romL", (module Romulus.Logged));
    ("romLR", (module Romulus.Lr));
    ("mne", (module Baselines.Redolog));
    ("pmdk", (module Baselines.Undolog)) ]

let ptm_named name =
  match List.assoc_opt name all_ptms with
  | Some m -> m
  | None -> failwith ("unknown PTM " ^ name)

type scale = Quick | Full

let threads_axis = function
  | Quick -> [ 1; 2; 4; 8; 16; 32; 64 ]
  | Full -> [ 1; 2; 4; 8; 16; 24; 32; 48; 64 ]

(* measurement effort *)
let measure_ops = function Quick -> 2_000 | Full -> 20_000
let measure_runs = function Quick -> 3 | Full -> 5

let sim_duration_ns = function Quick -> 2e7 | Full -> 2e8

(* ---- output ---- *)

let section title = Printf.printf "\n== %s ==\n%!" title

let subsection title = Printf.printf "\n-- %s --\n%!" title

(* print a table: a header cell + one column per [cols]; rows are
   (label, value list); values rendered with [fmt] *)
let table ~header ~cols ~rows fmt =
  Printf.printf "%-14s" header;
  List.iter (fun c -> Printf.printf "%12s" c) cols;
  print_newline ();
  List.iter
    (fun (label, values) ->
      Printf.printf "%-14s" label;
      List.iter (fun v -> Printf.printf "%12s" (fmt v)) values;
      print_newline ())
    rows;
  flush stdout

let si v =
  if Float.is_nan v then "-"
  else if v >= 1e9 then Printf.sprintf "%.2fG" (v /. 1e9)
  else if v >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
  else Printf.sprintf "%.1f" v

let ns v =
  if Float.is_nan v then "-"
  else if v >= 1e6 then Printf.sprintf "%.2fms" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.2fus" (v /. 1e3)
  else Printf.sprintf "%.0fns" v

(* per-thread think time between operations in the simulator *)
let think_ns = 25.
