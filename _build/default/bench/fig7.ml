(* Figure 7: read-dominated workloads on the 1,000-key hash map.
   Left: 2 concurrent writers and a growing number of reader threads
   (both read and write TX/s are reported) — only RomulusLR keeps scaling
   its readers, and PMDK's reader-preference lock starves its writers
   once ~16 readers are running.  Right: read-only, no writer. *)

let keys = 1_000
let conflict = (1.0, 0.02)
let fence = Pmem.Fence.stt

let rates ~scale ~ptm ~costs ~readers ~writers =
  let conflict_p, read_conflict_p = conflict in
  let model = Ds_bench.model_for ~ptm ~conflict_p ~read_conflict_p ~costs in
  let c = Ds_bench.sim_costs costs ~for_model:(Ds_bench.kind_for ptm) in
  let r =
    Simsched.Sync_model.run
      { Simsched.Sync_model.model; costs = c; readers; writers;
        duration_ns = Common.sim_duration_ns scale; seed = 17 }
  in
  ( 2. *. Simsched.Sync_model.reads_per_sec r,
    2. *. Simsched.Sync_model.updates_per_sec r )

let run scale =
  Common.section "Figure 7: read-dominated workloads, 1,000-key hash map";
  let threads = Common.threads_axis scale in
  let ops = Common.measure_ops scale in
  let calibrated =
    List.map
      (fun (name, m) ->
        let b =
          Ds_bench.make_hash_map m ~fence ~keys ~resizable:true
            ~initial_buckets:64 ~value_bytes:8 ~region_size:(1 lsl 20) ()
        in
        (name, Ds_bench.calibrate ~ops b))
      Common.all_ptms
  in
  let names = List.map fst calibrated in
  let table pick ~writers title =
    Common.subsection title;
    Common.table ~header:"readers" ~cols:names
      ~rows:
        (List.map
           (fun n ->
             ( string_of_int n,
               List.map
                 (fun ptm ->
                   pick
                     (rates ~scale ~ptm ~costs:(List.assoc ptm calibrated)
                        ~readers:n ~writers))
                 names ))
           threads)
      Common.si
  in
  table fst ~writers:2 "read TX/s with 2 concurrent writers";
  table snd ~writers:2 "write TX/s with 2 concurrent writers";
  table fst ~writers:0 "read TX/s with no writer"
