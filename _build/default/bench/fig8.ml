(* Figure 8: RomulusDB vs LevelDB on the LevelDB benchmark suite (§6.4):
   fillseq / fillsync / fillrandom / overwrite (µs/op), readseq /
   readreverse (µs/op), and fill-100k (ms/op, 100 kB values).

   Keys are 16 bytes, values 100 bytes, as in LevelDB's db_bench.
   Single-thread latencies are measured from the real stores; the thread
   axis uses the flat-combining model for RomulusDB writes (scaling
   readers), while LevelDB writes serialize on its internal mutex, so
   per-operation latency grows linearly with the thread count. *)

module Db = Kv.Romulus_db.Default

type params = {
  n_fill : int;
  n_sync : int;
  n_100k : int;
  fill_region : int;
  blob_region : int;
}

let params = function
  | Common.Quick ->
    { n_fill = 10_000; n_sync = 1_000; n_100k = 128;
      fill_region = 1 lsl 25; blob_region = 1 lsl 26 }
  | Common.Full ->
    { n_fill = 1_000_000; n_sync = 1_000; n_100k = 1_000;
      fill_region = 700_000_000; blob_region = 300_000_000 }

let value_bytes = 100
let threads = [ 1; 2; 4; 8; 16; 32; 64 ]

(* measured per-op latencies in ns, as (romdb, leveldb, batch-amortized
   romdb work for the FC model) *)
type measured = { rom_ns : float; lvl_ns : float; rom_work_ns : float }

let fc_latency_us ~scale m n =
  (* per-thread op latency under flat combining = n / aggregate rate *)
  let costs =
    { Simsched.Sync_model.read_ns = m.rom_ns;
      update_work_ns = m.rom_work_ns;
      batch_fixed_ns = Float.max 0. (m.rom_ns -. m.rom_work_ns);
      think_ns = Common.think_ns }
  in
  let r =
    Simsched.Sync_model.run
      { Simsched.Sync_model.model = Simsched.Sync_model.Fc_crwwp; costs;
        readers = 0; writers = n;
        duration_ns = Common.sim_duration_ns scale; seed = 23 }
  in
  let rate = Simsched.Sync_model.updates_per_sec r in
  float_of_int n /. rate *. 1e6

let print_fill_table ~scale name m =
  Common.subsection (Printf.sprintf "%s (us/operation)" name);
  Common.table ~header:"threads" ~cols:[ "RomDB"; "LevelDB" ]
    ~rows:
      (List.map
         (fun n ->
           ( string_of_int n,
             [ fc_latency_us ~scale m n;
               (* LevelDB writes serialize on the db mutex *)
               float_of_int n *. m.lvl_ns /. 1e3 ] ))
         threads)
    (fun v -> Printf.sprintf "%.2f" v)

let print_read_table name ~rom_ns ~lvl_ns =
  Common.subsection (Printf.sprintf "%s (us/operation, scales with threads)" name);
  Common.table ~header:"threads" ~cols:[ "RomDB"; "LevelDB" ]
    ~rows:
      (List.map
         (fun n ->
           (* concurrent scans do not contend in either system *)
           (string_of_int n, [ rom_ns /. 1e3; lvl_ns /. 1e3 ]))
         threads)
    (fun v -> Printf.sprintf "%.3f" v)

let measure_rom_fill ~region_size ~n ~value ~keyfn ~batch () =
  let r = Pmem.Region.create ~size:region_size () in
  let db = Db.open_db r in
  let i = ref 0 in
  let one () =
    Db.put db (keyfn !i) value;
    incr i
  in
  Gc.full_major ();
  let t1 =
    Workload.Bench_clock.ns_per_op ~region:r ~ops:n (fun () -> one ())
  in
  let work =
    if not batch then t1
    else begin
      (* amortized in-batch work, calibrated with real write batches *)
      let b16 =
        Workload.Bench_clock.ns_per_op ~region:r ~ops:(max 4 (n / 64))
          (fun () ->
            Db.write_batch db (fun db ->
                for _ = 1 to 16 do
                  Db.put db (keyfn !i) value;
                  incr i
                done))
      in
      Float.min t1 (b16 /. 16.)
    end
  in
  (t1, work, db, r)

let run scale =
  Common.section "Figure 8: RomulusDB vs LevelDB (LevelDB benchmark suite)";
  let p = params scale in
  let rng = Workload.Keygen.create ~seed:77 () in
  let value = Workload.Keygen.value rng value_bytes in
  let seq_key i = Workload.Keygen.level_key i in
  let rnd_key_space = 2 * p.n_fill in
  let rnd_key _ = Workload.Keygen.level_key (Workload.Keygen.int rng rnd_key_space) in

  (* ---- fillseq ---- *)
  let rom1, romw, seq_db, _seq_r =
    measure_rom_fill ~region_size:p.fill_region ~n:p.n_fill ~value
      ~keyfn:seq_key ~batch:true ()
  in
  let lvl = Kv.Level_db.create () in
  let lvl_ns =
    let d = Kv.Level_db.disk lvl in
    Gc.full_major ();
    Kv.Disk_sim.reset_vtime d;
    let i = ref 0 in
    let wall =
      Workload.Bench_clock.ns_per_op ~ops:p.n_fill (fun () ->
          Kv.Level_db.put lvl (seq_key !i) value;
          incr i)
    in
    wall +. (float_of_int (Kv.Disk_sim.vtime_ns d) /. float_of_int p.n_fill)
  in
  print_fill_table ~scale "fillseq"
    { rom_ns = rom1; lvl_ns; rom_work_ns = romw };

  (* ---- fillsync: durable on both sides ---- *)
  let roms1, romsw, _, _ =
    measure_rom_fill ~region_size:(1 lsl 23) ~n:p.n_sync ~value
      ~keyfn:seq_key ~batch:false ()
  in
  let lvl_sync = Kv.Level_db.create () in
  let lvl_sync_ns =
    let d = Kv.Level_db.disk lvl_sync in
    Gc.full_major ();
    Kv.Disk_sim.reset_vtime d;
    let i = ref 0 in
    let wall =
      Workload.Bench_clock.ns_per_op ~ops:p.n_sync (fun () ->
          Kv.Level_db.put ~sync:true lvl_sync (seq_key !i) value;
          incr i)
    in
    wall +. (float_of_int (Kv.Disk_sim.vtime_ns d) /. float_of_int p.n_sync)
  in
  print_fill_table ~scale "fillsync (WriteOptions.sync = true)"
    { rom_ns = roms1; lvl_ns = lvl_sync_ns; rom_work_ns = romsw };

  (* ---- fillrandom ---- *)
  let romr1, romrw, rnd_db, rnd_r =
    measure_rom_fill ~region_size:p.fill_region ~n:p.n_fill ~value
      ~keyfn:rnd_key ~batch:true ()
  in
  let lvl_rnd = Kv.Level_db.create () in
  let lvl_rnd_ns =
    let d = Kv.Level_db.disk lvl_rnd in
    Gc.full_major ();
    Kv.Disk_sim.reset_vtime d;
    let wall =
      Workload.Bench_clock.ns_per_op ~ops:p.n_fill (fun () ->
          Kv.Level_db.put lvl_rnd (rnd_key 0) value)
    in
    wall +. (float_of_int (Kv.Disk_sim.vtime_ns d) /. float_of_int p.n_fill)
  in
  print_fill_table ~scale "fillrandom"
    { rom_ns = romr1; lvl_ns = lvl_rnd_ns; rom_work_ns = romrw };

  (* ---- overwrite (pre-populated database) ---- *)
  let romo =
    (match Db.check rnd_db with
     | Ok () -> ()
     | Error e -> failwith ("fig8: fillrandom left a broken db: " ^ e));
    Gc.full_major ();
    Workload.Bench_clock.ns_per_op ~region:rnd_r ~ops:(p.n_fill / 2)
      (fun () -> Db.put rnd_db (rnd_key 0) value)
  in
  let lvl_ovw_ns =
    let d = Kv.Level_db.disk lvl_rnd in
    Gc.full_major ();
    Kv.Disk_sim.reset_vtime d;
    let wall =
      Workload.Bench_clock.ns_per_op ~ops:(p.n_fill / 2) (fun () ->
          Kv.Level_db.put lvl_rnd (rnd_key 0) value)
    in
    wall
    +. (float_of_int (Kv.Disk_sim.vtime_ns d) /. float_of_int (p.n_fill / 2))
  in
  print_fill_table ~scale "overwrite"
    { rom_ns = romo; lvl_ns = lvl_ovw_ns; rom_work_ns = romo };

  (* ---- readseq / readreverse: full scans over the fillseq database ---- *)
  let scan ~reverse db n =
    let count = ref 0 in
    let total =
      Workload.Bench_clock.time_ns (fun () ->
          if reverse then Db.iter_reverse db (fun _ _ -> incr count)
          else Db.iter db (fun _ _ -> incr count))
    in
    ignore n;
    total /. float_of_int (max 1 !count)
  in
  let lscan ~reverse db =
    let d = Kv.Level_db.disk db in
    Kv.Disk_sim.reset_vtime d;
    let count = ref 0 in
    let total =
      Workload.Bench_clock.time_ns (fun () ->
          if reverse then Kv.Level_db.iter_reverse db (fun _ _ -> incr count)
          else Kv.Level_db.iter db (fun _ _ -> incr count))
    in
    (total +. float_of_int (Kv.Disk_sim.vtime_ns d))
    /. float_of_int (max 1 !count)
  in
  print_read_table "readseq" ~rom_ns:(scan ~reverse:false seq_db p.n_fill)
    ~lvl_ns:(lscan ~reverse:false lvl);
  print_read_table "readreverse" ~rom_ns:(scan ~reverse:true seq_db p.n_fill)
    ~lvl_ns:(lscan ~reverse:true lvl);

  (* ---- fill-100k: 100 kB values ---- *)
  let big = Workload.Keygen.fixed_value 100_000 in
  let romb1, rombw, _, _ =
    measure_rom_fill ~region_size:p.blob_region ~n:p.n_100k ~value:big
      ~keyfn:seq_key ~batch:false ()
  in
  let lvl_big = Kv.Level_db.create () in
  let lvl_big_ns =
    let d = Kv.Level_db.disk lvl_big in
    Gc.full_major ();
    Kv.Disk_sim.reset_vtime d;
    let i = ref 0 in
    let wall =
      Workload.Bench_clock.ns_per_op ~ops:p.n_100k (fun () ->
          Kv.Level_db.put lvl_big (seq_key !i) big;
          incr i)
    in
    wall +. (float_of_int (Kv.Disk_sim.vtime_ns d) /. float_of_int p.n_100k)
  in
  Common.subsection "fill-100k (ms/operation, 100 kB values)";
  Common.table ~header:"threads" ~cols:[ "RomDB"; "LevelDB" ]
    ~rows:
      (List.map
         (fun n ->
           ( string_of_int n,
             [ fc_latency_us ~scale
                 { rom_ns = romb1; lvl_ns = lvl_big_ns; rom_work_ns = rombw }
                 n
               /. 1e3;
               float_of_int n *. lvl_big_ns /. 1e6 ] ))
         [ 2; 8; 16; 32; 64 ])
    (fun v -> Printf.sprintf "%.2f" v)
