module P = Romulus.Logged
module Q = Pds.Pqueue.Make (P)

let trial n seed =
  Random.init seed;
  let ops = List.init n (fun _ -> if Random.int 3 > 0 then Some (Random.int 100) else None) in
  ignore (Unix.alarm 8);
  Sys.set_signal Sys.sigalrm (Sys.Signal_handle (fun _ ->
    Printf.printf "HANG n=%d seed=%d\n%!" n seed; exit 2));
  let r = Pmem.Region.create ~size:(1 lsl 18) () in
  let p = P.open_region r in
  let q = Q.create p ~root:0 in
  (try
    List.iter (fun op -> match op with
      | Some v -> Q.enqueue q v
      | None -> ignore (Q.dequeue q)) ops
  with e -> Printf.printf "n=%d seed=%d raised %s\n%!" n seed (Printexc.to_string e));
  ignore (Unix.alarm 0)

let () =
  List.iter (fun n -> List.iter (fun s -> trial n s) [1;2;3;4;5]) [1000; 3000; 5000; 8000];
  print_endline "long-queue trials done"
