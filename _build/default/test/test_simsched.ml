(* Tests for the discrete-event simulator and the synchronization models:
   the DES must be deterministic and honour timing, and each model must
   reproduce the qualitative behaviour the paper attributes to its PTM
   (these shapes are what the multi-thread figures are built from). *)

open Simsched

(* ---- DES engine ---- *)

let test_des_ordering () =
  let sim = Des.create () in
  let log = ref [] in
  Des.schedule sim 30. (fun () -> log := 3 :: !log);
  Des.schedule sim 10. (fun () -> log := 1 :: !log);
  Des.schedule sim 20. (fun () -> log := 2 :: !log);
  Des.run sim ~until:100.;
  Alcotest.(check (list int)) "events fire in time order" [ 1; 2; 3 ]
    (List.rev !log);
  Alcotest.(check (float 0.001)) "clock advanced to until" 100. (Des.now sim)

let test_des_ties_fifo () =
  let sim = Des.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Des.schedule sim 10. (fun () -> log := i :: !log)
  done;
  Des.run sim ~until:100.;
  Alcotest.(check (list int)) "same-time events fire FIFO" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_des_cascading () =
  let sim = Des.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 50 then Des.schedule sim 5. tick
  in
  Des.schedule sim 5. tick;
  Des.run sim ~until:1_000.;
  Alcotest.(check int) "cascaded events all ran" 50 !count

let test_des_until_cuts_off () =
  let sim = Des.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    Des.schedule sim 10. tick
  in
  Des.schedule sim 10. tick;
  Des.run sim ~until:105.;
  Alcotest.(check int) "only events within the horizon" 10 !count

let test_des_random_deterministic () =
  let draw seed =
    let sim = Des.create ~seed () in
    List.init 10 (fun _ -> Des.random sim)
  in
  Alcotest.(check bool) "same seed, same stream" true (draw 7 = draw 7);
  Alcotest.(check bool) "different seed, different stream" true
    (draw 7 <> draw 8);
  List.iter
    (fun x ->
      Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.))
    (draw 42)

(* ---- model shapes ---- *)

let costs = Sync_model.default_costs

let run ?(seed = 1) ?(duration = 5e7) model ~readers ~writers =
  Sync_model.run
    { Sync_model.model; costs; readers; writers; duration_ns = duration; seed }

let test_model_determinism () =
  let a = run Sync_model.Fc_crwwp ~readers:4 ~writers:4 in
  let b = run Sync_model.Fc_crwwp ~readers:4 ~writers:4 in
  Alcotest.(check bool) "same config, same counts" true
    (a.Sync_model.reads_done = b.Sync_model.reads_done
     && a.Sync_model.updates_done = b.Sync_model.updates_done)

let test_single_thread_throughput_sanity () =
  (* one writer, no contention: throughput ~ 1 / (think + fixed + work) *)
  let r = run Sync_model.Fc_crwwp ~readers:0 ~writers:1 in
  let expected =
    5e7
    /. (costs.Sync_model.think_ns +. costs.Sync_model.batch_fixed_ns
        +. costs.Sync_model.update_work_ns)
  in
  let got = float_of_int r.Sync_model.updates_done in
  Alcotest.(check bool)
    (Printf.sprintf "within 5%% of analytic (%f vs %f)" got expected)
    true
    (abs_float (got -. expected) /. expected < 0.05)

let test_left_right_readers_scale_linearly () =
  let reads n =
    (run Sync_model.Fc_left_right ~readers:n ~writers:0).Sync_model.reads_done
  in
  let r1 = reads 1 and r16 = reads 16 in
  let ratio = float_of_int r16 /. float_of_int r1 in
  Alcotest.(check bool)
    (Printf.sprintf "16 readers ~ 16x one reader (ratio %.2f)" ratio)
    true
    (ratio > 14. && ratio < 16.5)

let test_left_right_readers_unaffected_by_writers () =
  let no_w =
    (run Sync_model.Fc_left_right ~readers:8 ~writers:0).Sync_model.reads_done
  in
  let with_w =
    (run Sync_model.Fc_left_right ~readers:8 ~writers:2).Sync_model.reads_done
  in
  let ratio = float_of_int with_w /. float_of_int no_w in
  Alcotest.(check bool)
    (Printf.sprintf "wait-free reads keep >90%% throughput (%.2f)" ratio)
    true
    (ratio > 0.9)

let test_crwwp_readers_blocked_by_writers () =
  let no_w =
    (run Sync_model.Fc_crwwp ~readers:8 ~writers:0).Sync_model.reads_done
  in
  let with_w =
    (run Sync_model.Fc_crwwp ~readers:8 ~writers:4).Sync_model.reads_done
  in
  let ratio = float_of_int with_w /. float_of_int no_w in
  Alcotest.(check bool)
    (Printf.sprintf "blocking readers lose throughput (%.2f)" ratio)
    true
    (ratio < 0.8)

let test_flat_combining_updates_do_not_collapse () =
  (* aggregated updates: more writers must not reduce total throughput
     much below the single-writer rate (starvation-free batching) *)
  let u n =
    (run Sync_model.Fc_crwwp ~readers:0 ~writers:n).Sync_model.updates_done
  in
  let u1 = u 1 and u32 = u 32 in
  let ratio = float_of_int u32 /. float_of_int u1 in
  Alcotest.(check bool)
    (Printf.sprintf "32 writers >= 80%% of 1 writer (%.2f)" ratio)
    true
    (ratio > 0.8)

let test_reader_pref_starves_writers () =
  (* Figure 7's left panel: 2 writers against a growing reader pack *)
  let updates n_readers =
    (run (Sync_model.Rw_reader_pref { atomic_ns = 40. }) ~readers:n_readers
       ~writers:2)
      .Sync_model.updates_done
  in
  let few = updates 2 and many = updates 32 in
  Alcotest.(check bool)
    (Printf.sprintf "writers starve under readers (%d -> %d)" few many)
    true
    (many < few / 10)

let test_stm_conflicts_collapse_throughput () =
  let u p =
    (run
       (Sync_model.Stm
          { conflict_p = p; read_conflict_p = 0.; commit_serial_ns = 0. })
       ~readers:0 ~writers:8)
      .Sync_model.updates_done
  in
  let disjoint = u 0.0 and shared_counter = u 1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "conflicts collapse throughput (%d -> %d)" disjoint
       shared_counter)
    true
    (shared_counter < disjoint / 2)

let test_stm_disjoint_scales () =
  let u n =
    (run
       (Sync_model.Stm
          { conflict_p = 0.0; read_conflict_p = 0.; commit_serial_ns = 0. })
       ~readers:0 ~writers:n)
      .Sync_model.updates_done
  in
  let u1 = u 1 and u8 = u 8 in
  let ratio = float_of_int u8 /. float_of_int u1 in
  Alcotest.(check bool)
    (Printf.sprintf "disjoint STM updates scale (%.2f)" ratio)
    true
    (ratio > 6.)

let suite =
  let tc = Alcotest.test_case in
  [ tc "des: time ordering" `Quick test_des_ordering;
    tc "des: FIFO ties" `Quick test_des_ties_fifo;
    tc "des: cascading events" `Quick test_des_cascading;
    tc "des: horizon cutoff" `Quick test_des_until_cuts_off;
    tc "des: deterministic rng" `Quick test_des_random_deterministic;
    tc "model: determinism" `Quick test_model_determinism;
    tc "model: single-thread sanity" `Quick
      test_single_thread_throughput_sanity;
    tc "LR: readers scale linearly" `Quick
      test_left_right_readers_scale_linearly;
    tc "LR: writers do not hurt readers" `Quick
      test_left_right_readers_unaffected_by_writers;
    tc "C-RW-WP: writers block readers" `Quick
      test_crwwp_readers_blocked_by_writers;
    tc "FC: updates do not collapse" `Quick
      test_flat_combining_updates_do_not_collapse;
    tc "reader-pref: writer starvation" `Quick
      test_reader_pref_starves_writers;
    tc "STM: conflicts collapse" `Quick test_stm_conflicts_collapse_throughput;
    tc "STM: disjoint scales" `Quick test_stm_disjoint_scales ]


(* shapes of the two serialized resources in the models *)
let test_stm_serial_commit_caps_updates () =
  let u serial =
    (run
       (Sync_model.Stm
          { conflict_p = 0.0; read_conflict_p = 0.; commit_serial_ns = serial })
       ~readers:0 ~writers:16)
      .Sync_model.updates_done
  in
  let free = u 0. and capped = u 500. in
  (* 500ns serialized commit caps total updates near 2M/s over 50ms *)
  Alcotest.(check bool)
    (Printf.sprintf "serial commit caps throughput (%d -> %d)" free capped)
    true
    (capped < free / 2 && capped <= 110_000)

let test_reader_pref_atomic_caps_reads () =
  let reads n =
    (run (Sync_model.Rw_reader_pref { atomic_ns = 40. }) ~readers:n ~writers:0)
      .Sync_model.reads_done
  in
  let r8 = reads 8 and r64 = reads 64 in
  (* the shared counter saturates: 64 readers gain little over 8 *)
  Alcotest.(check bool)
    (Printf.sprintf "shared counter caps read scaling (%d -> %d)" r8 r64)
    true
    (float_of_int r64 /. float_of_int r8 < 2.5)

let () =
  Alcotest.run "simsched"
    [ ("simsched", suite);
      ( "resources",
        [ Alcotest.test_case "stm serial commit" `Quick
            test_stm_serial_commit_caps_updates;
          Alcotest.test_case "reader-pref atomic cap" `Quick
            test_reader_pref_atomic_caps_reads ] ) ]
