(* Model-based and crash-recovery tests for the persistent data structures,
   run over every PTM in the repository (3 Romulus variants + 2 baselines),
   the same cross-product the paper benchmarks. *)

module R = Pmem.Region

module type PTM = sig
  include Romulus.Ptm_intf.S

  val recover : t -> unit
end

let region ?(size = 1 lsl 18) () = R.create ~size ()

module Make (P : PTM) = struct
  module List_set = Pds.Linked_list.Make (P)
  module Map_ = Pds.Hash_map.Make (P)
  module Tree = Pds.Rb_tree.Make (P)

  (* ---- linked list ---- *)

  let test_list_basics () =
    let r = region () in
    let p = P.open_region r in
    let s = List_set.create p ~root:0 in
    Alcotest.(check bool) "add 33" true (List_set.add s 33);
    Alcotest.(check bool) "add 11" true (List_set.add s 11);
    Alcotest.(check bool) "add 22" true (List_set.add s 22);
    Alcotest.(check bool) "re-add 22" false (List_set.add s 22);
    Alcotest.(check bool) "contains 22" true (List_set.contains s 22);
    Alcotest.(check bool) "not contains 44" false (List_set.contains s 44);
    Alcotest.(check (list int)) "sorted" [ 11; 22; 33 ] (List_set.to_list s);
    Alcotest.(check bool) "remove 22" true (List_set.remove s 22);
    Alcotest.(check bool) "re-remove 22" false (List_set.remove s 22);
    Alcotest.(check (list int)) "after remove" [ 11; 33 ]
      (List_set.to_list s);
    match List_set.check s with
    | Ok () -> ()
    | Error e -> Alcotest.failf "list invariant: %s" e

  let prop_list_model =
    let open QCheck in
    Test.make ~count:30 ~name:(P.name ^ ": list vs model")
      (list (pair bool (int_bound 50)))
      (fun ops ->
        let r = region () in
        let p = P.open_region r in
        let s = List_set.create p ~root:0 in
        let model = Hashtbl.create 64 in
        List.iter
          (fun (is_add, k) ->
            if is_add then begin
              let fresh = not (Hashtbl.mem model k) in
              if List_set.add s k <> fresh then
                QCheck.Test.fail_reportf "add %d disagreed" k;
              Hashtbl.replace model k ()
            end
            else begin
              let present = Hashtbl.mem model k in
              if List_set.remove s k <> present then
                QCheck.Test.fail_reportf "remove %d disagreed" k;
              Hashtbl.remove model k
            end)
          ops;
        let expect =
          List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) model [])
        in
        (match List_set.check s with
         | Ok () -> ()
         | Error e -> QCheck.Test.fail_reportf "invariant: %s" e);
        List_set.to_list s = expect)

  (* ---- hash map ---- *)

  let test_map_basics () =
    let r = region () in
    let p = P.open_region r in
    let m = Map_.create p ~root:0 in
    Alcotest.(check bool) "put new" true (Map_.put m 1 100);
    Alcotest.(check bool) "put overwrite" false (Map_.put m 1 111);
    Alcotest.(check (option int)) "get" (Some 111) (Map_.get m 1);
    Alcotest.(check (option int)) "get absent" None (Map_.get m 2);
    Alcotest.(check bool) "remove" true (Map_.remove m 1);
    Alcotest.(check (option int)) "get after remove" None (Map_.get m 1);
    Alcotest.(check int) "length" 0 (Map_.length m)

  let test_map_resize () =
    let r = region () in
    let p = P.open_region r in
    let m = Map_.create ~initial_buckets:4 p ~root:0 in
    for k = 1 to 200 do
      ignore (Map_.put m k (k * 10))
    done;
    Alcotest.(check int) "all kept through resizes" 200 (Map_.length m);
    Alcotest.(check bool) "buckets grew" true
      (P.read_tx p (fun () -> Map_.nbuckets m) > 4);
    for k = 1 to 200 do
      Alcotest.(check (option int))
        (Printf.sprintf "get %d" k)
        (Some (k * 10))
        (Map_.get m k)
    done;
    match Map_.check m with
    | Ok () -> ()
    | Error e -> Alcotest.failf "map invariant: %s" e

  let test_map_fixed_no_resize () =
    let r = region () in
    let p = P.open_region r in
    let m = Map_.create ~resizable:false ~initial_buckets:8 p ~root:0 in
    for k = 1 to 100 do
      ignore (Map_.put m k k)
    done;
    Alcotest.(check int) "buckets unchanged" 8
      (P.read_tx p (fun () -> Map_.nbuckets m));
    Alcotest.(check int) "length by fold" 100 (Map_.length m)

  let prop_map_model =
    let open QCheck in
    Test.make ~count:30 ~name:(P.name ^ ": hash map vs model")
      (list (pair (int_bound 2) (int_bound 100)))
      (fun ops ->
        let r = region () in
        let p = P.open_region r in
        let m = Map_.create ~initial_buckets:4 p ~root:0 in
        let model = Hashtbl.create 64 in
        List.iter
          (fun (op, k) ->
            match op with
            | 0 ->
              ignore (Map_.put m k (k * 7));
              Hashtbl.replace model k (k * 7)
            | 1 ->
              ignore (Map_.remove m k);
              Hashtbl.remove model k
            | _ ->
              if Map_.get m k <> Hashtbl.find_opt model k then
                QCheck.Test.fail_reportf "get %d disagreed" k)
          ops;
        (match Map_.check m with
         | Ok () -> ()
         | Error e -> QCheck.Test.fail_reportf "invariant: %s" e);
        let mine = Map_.fold m (fun acc k v -> (k, v) :: acc) [] in
        let theirs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [] in
        List.sort compare mine = List.sort compare theirs)

  (* ---- red-black tree ---- *)

  let test_tree_basics () =
    let r = region () in
    let p = P.open_region r in
    let t = Tree.create p ~root:0 in
    Alcotest.(check bool) "put" true (Tree.put t 5 50);
    Alcotest.(check bool) "overwrite" false (Tree.put t 5 55);
    ignore (Tree.put t 3 30);
    ignore (Tree.put t 8 80);
    ignore (Tree.put t 1 10);
    Alcotest.(check (option int)) "get 5" (Some 55) (Tree.get t 5);
    Alcotest.(check (option int)) "get absent" None (Tree.get t 9);
    Alcotest.(check (list (pair int int)))
      "ascending" [ (1, 10); (3, 30); (5, 55); (8, 80) ] (Tree.to_list t);
    Alcotest.(check bool) "remove 3" true (Tree.remove t 3);
    Alcotest.(check bool) "re-remove 3" false (Tree.remove t 3);
    Alcotest.(check int) "length" 3 (Tree.length t);
    match Tree.check t with
    | Ok () -> ()
    | Error e -> Alcotest.failf "tree invariant: %s" e

  let test_tree_sequential_insert_balance () =
    let r = region () in
    let p = P.open_region r in
    let t = Tree.create p ~root:0 in
    (* ascending inserts are the classic worst case for unbalanced trees *)
    for k = 1 to 500 do
      ignore (Tree.put t k k)
    done;
    (match Tree.check t with
     | Ok () -> ()
     | Error e -> Alcotest.failf "tree invariant: %s" e);
    for k = 1 to 500 do
      if Tree.get t k <> Some k then Alcotest.failf "lost key %d" k
    done

  let test_tree_range_queries () =
    let r = region () in
    let p = P.open_region r in
    let t = Tree.create p ~root:0 in
    for k = 0 to 99 do
      ignore (Tree.put t (2 * k) (2 * k))
    done;
    let range lo hi =
      List.rev (Tree.fold_range t ~lo ~hi (fun acc k _ -> k :: acc) [])
    in
    Alcotest.(check (list int)) "inclusive bounds" [ 10; 12; 14 ]
      (range 10 14);
    Alcotest.(check (list int)) "bounds between keys" [ 10; 12; 14 ]
      (range 9 15);
    Alcotest.(check (list int)) "empty range" [] (range 11 11);
    Alcotest.(check int) "full range" 100 (List.length (range min_int max_int));
    Alcotest.(check (option (pair int int))) "find_first exact" (Some (10, 10))
      (Tree.find_first t 10);
    Alcotest.(check (option (pair int int))) "find_first between"
      (Some (12, 12)) (Tree.find_first t 11);
    Alcotest.(check (option (pair int int))) "find_first beyond" None
      (Tree.find_first t 199)

  let prop_tree_range_model =
    let open QCheck in
    Test.make ~count:30 ~name:(P.name ^ ": rb-tree range vs model")
      (triple (list (int_bound 100)) (int_bound 100) (int_bound 100))
      (fun (keys, a, b) ->
        let lo = min a b and hi = max a b in
        let r = region () in
        let p = P.open_region r in
        let t = Tree.create p ~root:0 in
        List.iter (fun k -> ignore (Tree.put t k k)) keys;
        let mine =
          List.rev (Tree.fold_range t ~lo ~hi (fun acc k _ -> k :: acc) [])
        in
        let theirs =
          List.sort_uniq compare (List.filter (fun k -> lo <= k && k <= hi) keys)
        in
        mine = theirs)

  let prop_tree_model =
    let open QCheck in
    Test.make ~count:30 ~name:(P.name ^ ": rb-tree vs model")
      (list (pair (int_bound 2) (int_bound 60)))
      (fun ops ->
        let r = region () in
        let p = P.open_region r in
        let t = Tree.create p ~root:0 in
        let model = Hashtbl.create 64 in
        List.iter
          (fun (op, k) ->
            match op with
            | 0 ->
              ignore (Tree.put t k (k * 3));
              Hashtbl.replace model k (k * 3)
            | 1 ->
              ignore (Tree.remove t k);
              Hashtbl.remove model k
            | _ ->
              if Tree.get t k <> Hashtbl.find_opt model k then
                QCheck.Test.fail_reportf "get %d disagreed" k)
          ops;
        (match Tree.check t with
         | Ok () -> ()
         | Error e -> QCheck.Test.fail_reportf "invariant: %s" e);
        let theirs =
          List.sort compare
            (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [])
        in
        Tree.to_list t = theirs)

  (* ---- crash recovery through a data structure ---- *)

  (* Interrupt a batch of tree updates at a random point, crash with an
     adversarial policy, recover: the tree must satisfy its invariants and
     contain a prefix-consistent set of the operations. *)
  let prop_tree_crash_recovery =
    let open QCheck in
    Test.make ~count:25 ~name:(P.name ^ ": rb-tree crash recovery")
      (pair small_nat (int_bound 3))
      (fun (trap, pol) ->
        let r = region () in
        let p = P.open_region r in
        let t = Tree.create p ~root:0 in
        for k = 1 to 20 do
          ignore (Tree.put t k k)
        done;
        R.set_trap r (20 + trap);
        (try
           for k = 21 to 60 do
             ignore (Tree.put t k k)
           done;
           R.clear_trap r
         with R.Crash_point -> ());
        let policy =
          match pol with
          | 0 -> R.Drop_all
          | 1 -> R.Keep_all
          | n -> R.Random_subset (n + trap)
        in
        R.crash r policy;
        P.recover p;
        let t = Tree.attach p ~root:0 in
        (match Tree.check t with
         | Ok () -> ()
         | Error e -> QCheck.Test.fail_reportf "invariant after crash: %s" e);
        (* keys 1..20 committed before the trap was armed; each later put
           is atomic, so the surviving keys must be a prefix 1..m *)
        let keys = List.map fst (Tree.to_list t) in
        let expected_prefix = List.init (List.length keys) (fun i -> i + 1) in
        keys = expected_prefix && List.length keys >= 20)

  let suite =
    let tc = Alcotest.test_case in
    [ tc "list basics" `Quick test_list_basics;
      tc "map basics" `Quick test_map_basics;
      tc "map resize" `Quick test_map_resize;
      tc "map fixed size" `Quick test_map_fixed_no_resize;
      tc "tree basics" `Quick test_tree_basics;
      tc "tree balance (sequential)" `Quick
        test_tree_sequential_insert_balance;
      tc "tree range queries" `Quick test_tree_range_queries ]
    @ List.map QCheck_alcotest.to_alcotest
        [ prop_list_model; prop_map_model; prop_tree_model;
          prop_tree_range_model; prop_tree_crash_recovery ]
end

module On_basic = Make (Romulus.Basic)
module On_logged = Make (Romulus.Logged)
module On_lr = Make (Romulus.Lr)
module On_undolog = Make (Baselines.Undolog)
module On_redolog = Make (Baselines.Redolog)

let () =
  Alcotest.run "pds"
    [ ("on Rom", On_basic.suite);
      ("on RomL", On_logged.suite);
      ("on RomLR", On_lr.suite);
      ("on PMDK-like", On_undolog.suite);
      ("on Mnemosyne-like", On_redolog.suite) ]
