(* Tests for the extension containers (cell/array/string box, stack,
   queue, skiplist): model-based behaviour, structural invariants, and
   crash atomicity.  Run over RomulusLog, RomulusLR and the aborting STM
   baseline (which additionally exercises closure re-execution). *)

module R = Pmem.Region

module type PTM = sig
  include Romulus.Ptm_intf.S

  val recover : t -> unit
end

let region ?(size = 1 lsl 18) () = R.create ~size ()

module Make (P : PTM) = struct
  module B = Pds.Pbox.Make (P)
  module S = Pds.Pstack.Make (P)
  module Q = Pds.Pqueue.Make (P)
  module Sk = Pds.Skiplist.Make (P)
  module Bt = Pds.Bptree.Make (P)

  (* ---- Pbox ---- *)

  let test_cell () =
    let r = region () in
    let p = P.open_region r in
    let c = B.Cell.create p ~root:0 41 in
    Alcotest.(check int) "initial" 41 (B.Cell.get c);
    B.Cell.set c 7;
    Alcotest.(check int) "set" 7 (B.Cell.get c);
    Alcotest.(check int) "incr returns new" 8 (B.Cell.incr c);
    Alcotest.(check int) "update" 16 (B.Cell.update c (fun v -> v * 2));
    (* durability *)
    R.crash r R.Drop_all;
    P.recover p;
    let c = B.Cell.attach p ~root:0 in
    Alcotest.(check int) "survives crash" 16 (B.Cell.get c)

  let test_array () =
    let r = region () in
    let p = P.open_region r in
    let a = B.Array_.create p ~root:0 10 in
    Alcotest.(check int) "length" 10 (B.Array_.length a);
    Alcotest.(check int) "zero initialized" 0 (B.Array_.get a 3);
    B.Array_.set a 3 33;
    B.Array_.set a 7 77;
    B.Array_.swap a 3 7;
    Alcotest.(check int) "swapped 3" 77 (B.Array_.get a 3);
    Alcotest.(check int) "swapped 7" 33 (B.Array_.get a 7);
    Alcotest.check_raises "bounds"
      (Invalid_argument "Pbox.Array_: index 10 out of bounds [0, 10)")
      (fun () -> ignore (B.Array_.get a 10));
    B.Array_.fill a 5;
    Alcotest.(check (list int)) "filled" (List.init 10 (fun _ -> 5))
      (B.Array_.to_list a);
    R.crash r R.Drop_all;
    P.recover p;
    let a = B.Array_.attach p ~root:0 in
    Alcotest.(check int) "length after attach" 10 (B.Array_.length a);
    Alcotest.(check int) "contents survive" 5 (B.Array_.get a 9)

  let test_str_box () =
    let r = region () in
    let p = P.open_region r in
    let s = B.Str.create p ~root:0 "hello" in
    Alcotest.(check string) "initial" "hello" (B.Str.get s);
    B.Str.set s "a much longer replacement string";
    Alcotest.(check string) "replaced" "a much longer replacement string"
      (B.Str.get s);
    B.Str.set s "";
    Alcotest.(check string) "empty" "" (B.Str.get s);
    B.Str.set s "final";
    R.crash r R.Drop_all;
    P.recover p;
    let s = B.Str.attach p ~root:0 in
    Alcotest.(check string) "survives crash" "final" (B.Str.get s)

  (* ---- stack ---- *)

  let test_stack () =
    let r = region () in
    let p = P.open_region r in
    let s = S.create p ~root:0 in
    Alcotest.(check bool) "empty" true (S.is_empty s);
    Alcotest.(check (option int)) "pop empty" None (S.pop s);
    S.push s 1;
    S.push s 2;
    S.push s 3;
    Alcotest.(check (option int)) "peek" (Some 3) (S.peek s);
    Alcotest.(check (list int)) "lifo order" [ 3; 2; 1 ] (S.to_list s);
    Alcotest.(check (option int)) "pop" (Some 3) (S.pop s);
    Alcotest.(check int) "length" 2 (S.length s);
    (match S.check s with Ok () -> () | Error e -> Alcotest.fail e);
    R.crash r R.Drop_all;
    P.recover p;
    let s = S.attach p ~root:0 in
    Alcotest.(check (list int)) "survives crash" [ 2; 1 ] (S.to_list s)

  (* ---- queue ---- *)

  let test_queue () =
    let r = region () in
    let p = P.open_region r in
    let q = Q.create p ~root:0 in
    Alcotest.(check (option int)) "dequeue empty" None (Q.dequeue q);
    Q.enqueue q 1;
    Q.enqueue q 2;
    Q.enqueue q 3;
    Alcotest.(check (list int)) "fifo order" [ 1; 2; 3 ] (Q.to_list q);
    Alcotest.(check (option int)) "dequeue" (Some 1) (Q.dequeue q);
    Alcotest.(check (option int)) "peek" (Some 2) (Q.peek q);
    (match Q.check q with Ok () -> () | Error e -> Alcotest.fail e);
    (* drain to empty and refill: tail handling *)
    ignore (Q.dequeue q);
    ignore (Q.dequeue q);
    Alcotest.(check bool) "drained" true (Q.is_empty q);
    (match Q.check q with Ok () -> () | Error e -> Alcotest.fail e);
    Q.enqueue q 9;
    Alcotest.(check (list int)) "refilled" [ 9 ] (Q.to_list q);
    R.crash r R.Drop_all;
    P.recover p;
    let q = Q.attach p ~root:0 in
    Alcotest.(check (list int)) "survives crash" [ 9 ] (Q.to_list q)

  let prop_queue_model =
    let open QCheck in
    Test.make ~count:30 ~name:(P.name ^ ": queue vs model")
      (* the queue grows with the op count (unlike the key-bounded
         structures), so bound the list size to keep a net-enqueue run
         within the arena — an overflow would make QCheck shrink a
         multi-thousand-element list, which takes effectively forever *)
      (list_of_size (Gen.int_bound 250) (option (int_bound 100)))
      (fun ops ->
        let r = region ~size:(1 lsl 20) () in
        let p = P.open_region r in
        let q = Q.create p ~root:0 in
        let model = Queue.create () in
        List.iter
          (fun op ->
            match op with
            | Some v ->
              Q.enqueue q v;
              Queue.add v model
            | None ->
              let mine = Q.dequeue q in
              let theirs = Queue.take_opt model in
              if mine <> theirs then
                QCheck.Test.fail_reportf "dequeue disagreed")
          ops;
        (match Q.check q with
         | Ok () -> ()
         | Error e -> QCheck.Test.fail_reportf "invariant: %s" e);
        Q.to_list q = List.of_seq (Queue.to_seq model))

  (* ---- skiplist ---- *)

  let test_skiplist_basics () =
    let r = region () in
    let p = P.open_region r in
    let s = Sk.create p ~root:0 in
    Alcotest.(check bool) "add 5" true (Sk.add s 5);
    Alcotest.(check bool) "add 1" true (Sk.add s 1);
    Alcotest.(check bool) "add 9" true (Sk.add s 9);
    Alcotest.(check bool) "re-add 5" false (Sk.add s 5);
    Alcotest.(check bool) "contains 5" true (Sk.contains s 5);
    Alcotest.(check bool) "not contains 4" false (Sk.contains s 4);
    Alcotest.(check (list int)) "sorted" [ 1; 5; 9 ] (Sk.to_list s);
    Alcotest.(check bool) "remove 5" true (Sk.remove s 5);
    Alcotest.(check bool) "re-remove 5" false (Sk.remove s 5);
    Alcotest.(check int) "length" 2 (Sk.length s);
    match Sk.check s with Ok () -> () | Error e -> Alcotest.fail e

  let test_skiplist_towers_used () =
    (* with enough keys, some nodes must rise above level 0; the check
       validates the sublist property for every level *)
    let r = region ~size:(1 lsl 20) () in
    let p = P.open_region r in
    let s = Sk.create p ~root:0 in
    for k = 1 to 500 do
      ignore (Sk.add s k)
    done;
    (match Sk.check s with Ok () -> () | Error e -> Alcotest.fail e);
    Alcotest.(check int) "all present" 500 (Sk.length s);
    for k = 1 to 500 do
      if not (Sk.contains s k) then Alcotest.failf "lost %d" k
    done

  let prop_skiplist_model =
    let open QCheck in
    Test.make ~count:30 ~name:(P.name ^ ": skiplist vs model")
      (list (pair bool (int_bound 80)))
      (fun ops ->
        let r = region () in
        let p = P.open_region r in
        let s = Sk.create p ~root:0 in
        let model = Hashtbl.create 64 in
        List.iter
          (fun (is_add, k) ->
            if is_add then begin
              let fresh = not (Hashtbl.mem model k) in
              if Sk.add s k <> fresh then
                QCheck.Test.fail_reportf "add %d disagreed" k;
              Hashtbl.replace model k ()
            end
            else begin
              let present = Hashtbl.mem model k in
              if Sk.remove s k <> present then
                QCheck.Test.fail_reportf "remove %d disagreed" k;
              Hashtbl.remove model k
            end)
          ops;
        (match Sk.check s with
         | Ok () -> ()
         | Error e -> QCheck.Test.fail_reportf "invariant: %s" e);
        Sk.to_list s
        = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) model []))

  let prop_skiplist_crash =
    let open QCheck in
    Test.make ~count:25 ~name:(P.name ^ ": skiplist crash recovery")
      (pair small_nat (int_bound 2))
      (fun (trap, pol) ->
        let r = region () in
        let p = P.open_region r in
        let s = Sk.create p ~root:0 in
        for k = 1 to 30 do
          ignore (Sk.add s k)
        done;
        R.set_trap r (10 + trap);
        (try
           for k = 31 to 60 do
             ignore (Sk.add s k)
           done;
           R.clear_trap r
         with R.Crash_point -> ());
        let policy =
          match pol with
          | 0 -> R.Drop_all
          | 1 -> R.Keep_all
          | n -> R.Random_subset (n + trap)
        in
        R.crash r policy;
        P.recover p;
        let s = Sk.attach p ~root:0 in
        (match Sk.check s with
         | Ok () -> ()
         | Error e -> QCheck.Test.fail_reportf "invariant after crash: %s" e);
        (* adds are atomic and sequential: the survivors are a prefix *)
        let keys = Sk.to_list s in
        keys = List.init (List.length keys) (fun i -> i + 1)
        && List.length keys >= 30)

  (* ---- B+tree ---- *)

  let test_bptree_basics () =
    let r = region () in
    let p = P.open_region r in
    let b = Bt.create p ~root:0 in
    Alcotest.(check (option int)) "get empty" None (Bt.get b 5);
    Alcotest.(check bool) "put" true (Bt.put b 5 50);
    Alcotest.(check bool) "overwrite" false (Bt.put b 5 55);
    Alcotest.(check (option int)) "get" (Some 55) (Bt.get b 5);
    Alcotest.(check bool) "remove" true (Bt.remove b 5);
    Alcotest.(check bool) "re-remove" false (Bt.remove b 5);
    Alcotest.(check int) "empty again" 0 (Bt.length b);
    match Bt.check b with Ok () -> () | Error e -> Alcotest.fail e

  let test_bptree_splits_and_order () =
    let r = region ~size:(1 lsl 20) () in
    let p = P.open_region r in
    let b = Bt.create p ~root:0 in
    (* enough keys to force several levels of splits (fanout 8) *)
    for i = 0 to 999 do
      ignore (Bt.put b ((i * 7919) mod 1_000) i)
    done;
    (match Bt.check b with Ok () -> () | Error e -> Alcotest.fail e);
    Alcotest.(check int) "all keys" 1_000 (Bt.length b);
    let keys = List.map fst (Bt.to_list b) in
    Alcotest.(check (list int)) "sorted scan" (List.init 1_000 Fun.id) keys;
    (* range scan via the leaf chain *)
    let range =
      List.rev (Bt.fold_range b ~lo:100 ~hi:110 (fun acc k _ -> k :: acc) [])
    in
    Alcotest.(check (list int)) "range" (List.init 11 (fun i -> 100 + i)) range

  let test_bptree_delete_heavy () =
    let r = region ~size:(1 lsl 20) () in
    let p = P.open_region r in
    let b = Bt.create p ~root:0 in
    for i = 0 to 499 do
      ignore (Bt.put b i i)
    done;
    (* delete in an awkward order: evens, then all *)
    for i = 0 to 249 do
      ignore (Bt.remove b (2 * i))
    done;
    (match Bt.check b with Ok () -> () | Error e -> Alcotest.fail e);
    Alcotest.(check int) "odds remain" 250 (Bt.length b);
    for i = 0 to 499 do
      Alcotest.(check bool)
        (Printf.sprintf "mem %d" i)
        (i land 1 = 1) (Bt.mem b i)
    done;
    for i = 0 to 249 do
      ignore (Bt.remove b ((2 * i) + 1))
    done;
    (match Bt.check b with Ok () -> () | Error e -> Alcotest.fail e);
    Alcotest.(check int) "empty" 0 (Bt.length b);
    (* still usable after total drain *)
    ignore (Bt.put b 42 42);
    Alcotest.(check (option int)) "reusable" (Some 42) (Bt.get b 42)

  let prop_bptree_model =
    let open QCheck in
    Test.make ~count:30 ~name:(P.name ^ ": b+tree vs model")
      (list (pair (int_bound 2) (int_bound 120)))
      (fun ops ->
        let r = region ~size:(1 lsl 20) () in
        let p = P.open_region r in
        let b = Bt.create p ~root:0 in
        let model = Hashtbl.create 64 in
        List.iter
          (fun (op, k) ->
            match op with
            | 0 ->
              ignore (Bt.put b k (k * 3));
              Hashtbl.replace model k (k * 3)
            | 1 ->
              ignore (Bt.remove b k);
              Hashtbl.remove model k
            | _ ->
              if Bt.get b k <> Hashtbl.find_opt model k then
                QCheck.Test.fail_reportf "get %d disagreed" k)
          ops;
        (match Bt.check b with
         | Ok () -> ()
         | Error e -> QCheck.Test.fail_reportf "invariant: %s" e);
        Bt.to_list b
        = List.sort compare
            (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []))

  let prop_bptree_crash =
    let open QCheck in
    Test.make ~count:25 ~name:(P.name ^ ": b+tree crash recovery")
      (pair small_nat (int_bound 2))
      (fun (trap, pol) ->
        let r = region ~size:(1 lsl 20) () in
        let p = P.open_region r in
        let b = Bt.create p ~root:0 in
        for k = 1 to 40 do
          ignore (Bt.put b k k)
        done;
        R.set_trap r (15 + trap);
        (try
           for k = 41 to 90 do
             ignore (Bt.put b k k)
           done;
           R.clear_trap r
         with R.Crash_point -> ());
        let policy =
          match pol with
          | 0 -> R.Drop_all
          | 1 -> R.Keep_all
          | n -> R.Random_subset (n + trap)
        in
        R.crash r policy;
        P.recover p;
        let b = Bt.attach p ~root:0 in
        (match Bt.check b with
         | Ok () -> ()
         | Error e -> QCheck.Test.fail_reportf "invariant after crash: %s" e);
        let keys = List.map fst (Bt.to_list b) in
        keys = List.init (List.length keys) (fun i -> i + 1)
        && List.length keys >= 40)

  let suite =
    let tc = Alcotest.test_case in
    [ tc "b+tree basics" `Quick test_bptree_basics;
      tc "b+tree splits and scans" `Quick test_bptree_splits_and_order;
      tc "b+tree delete heavy" `Quick test_bptree_delete_heavy;
      tc "cell" `Quick test_cell;
      tc "array" `Quick test_array;
      tc "string box" `Quick test_str_box;
      tc "stack" `Quick test_stack;
      tc "queue" `Quick test_queue;
      tc "skiplist basics" `Quick test_skiplist_basics;
      tc "skiplist towers" `Quick test_skiplist_towers_used ]
    @ List.map QCheck_alcotest.to_alcotest
        [ prop_queue_model; prop_skiplist_model; prop_skiplist_crash;
          prop_bptree_model; prop_bptree_crash ]
end

module On_logged = Make (Romulus.Logged)
module On_lr = Make (Romulus.Lr)
module On_redolog = Make (Baselines.Redolog)

let () =
  Alcotest.run "pds-extra"
    [ ("on RomL", On_logged.suite);
      ("on RomLR", On_lr.suite);
      ("on Mnemosyne-like", On_redolog.suite) ]
