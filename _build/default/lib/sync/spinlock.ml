(* Test-and-test-and-set spinlock with exponential backoff.  The paper's
   C-RW-WP variant replaces the cohort lock by exactly this kind of simple
   spin lock (§5.2); flat combining keeps update transactions
   starvation-free on top of it. *)

type t = { locked : bool Atomic.t }

let create () = { locked = Atomic.make false }

let try_lock t =
  (not (Atomic.get t.locked)) && Atomic.compare_and_set t.locked false true

let lock t =
  let backoff = ref 1 in
  while not (try_lock t) do
    for _ = 1 to !backoff do
      Domain.cpu_relax ()
    done;
    if !backoff < 1024 then backoff := !backoff * 2
  done

let unlock t = Atomic.set t.locked false

let is_locked t = Atomic.get t.locked
