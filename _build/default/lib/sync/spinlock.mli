(** Test-and-test-and-set spinlock with exponential backoff. *)

type t

val create : unit -> t
val try_lock : t -> bool
val lock : t -> unit
val unlock : t -> unit
val is_locked : t -> bool
