(* Reader-preference reader-writer lock, modelling the
   std::shared_timed_mutex the paper's evaluation wraps around PMDK
   (§6.1): readers never defer to waiting writers, so with enough
   concurrent readers a writer can starve (visible in Figure 7). *)

type t = {
  readers : int Atomic.t;
  writer : bool Atomic.t;
}

let create () = { readers = Atomic.make 0; writer = Atomic.make false }

let read_lock t =
  let rec attempt () =
    Atomic.incr t.readers;
    if Atomic.get t.writer then begin
      (* a writer already holds the lock: back out and wait for it, but do
         not yield to merely-waiting writers (reader preference) *)
      Atomic.decr t.readers;
      while Atomic.get t.writer do
        Domain.cpu_relax ()
      done;
      attempt ()
    end
  in
  attempt ()

let read_unlock t = Atomic.decr t.readers

let write_lock t =
  while not (Atomic.compare_and_set t.writer false true) do
    Domain.cpu_relax ()
  done;
  while Atomic.get t.readers > 0 do
    Domain.cpu_relax ()
  done

let write_unlock t = Atomic.set t.writer false

let with_read_lock t f =
  read_lock t;
  Fun.protect ~finally:(fun () -> read_unlock t) f

let with_write_lock t f =
  write_lock t;
  Fun.protect ~finally:(fun () -> write_unlock t) f
