(* The C-RW-WP "read indicator": one entry statically assigned per thread
   (§5.2).  The paper pads each entry over two cache lines to avoid false
   sharing; in OCaml each [Atomic.t] is its own heap block, so entries never
   share a line.  Entries are counters, which makes reader arrival
   re-entrant (useful for nested read-only sections). *)

type t = { states : int Atomic.t array }

let create () =
  { states = Array.init Tid.max_threads (fun _ -> Atomic.make 0) }

let arrive t tid = Atomic.incr t.states.(tid)

let depart t tid = Atomic.decr t.states.(tid)

let is_empty t =
  let rec scan i =
    i >= Tid.max_threads || (Atomic.get t.states.(i) = 0 && scan (i + 1))
  in
  scan 0

let wait_empty t =
  while not (is_empty t) do
    Domain.cpu_relax ()
  done
