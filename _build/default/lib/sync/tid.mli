(** Dense per-domain thread ids for statically-sized per-thread arrays. *)

val max_threads : int

exception Too_many_threads

(** Run [f tid] with a slot reserved for the current domain, releasing it
    afterwards (unless the domain was already registered). *)
val with_slot : (int -> 'a) -> 'a

(** The current domain's slot, lazily acquired and kept. *)
val current : unit -> int
