(* The Left-Right universal construct (Ramalhete & Correia): two instances
   of the data, a control variable telling readers which instance to read,
   and two read indicators so the single writer can wait for readers to
   drain from the instance it is about to modify.  Read operations are
   wait-free population-oblivious: arrive, read, depart — never blocked.

   This module is the raw mechanism; RomulusLR composes it with the
   twin-copy persistence engine (the two "instances" are main and back,
   read through synthetic pointers). *)

type t = {
  lr : int Atomic.t;   (* instance readers should use: 0 or 1 *)
  vi : int Atomic.t;   (* which read indicator new readers announce on *)
  ri : Read_indicator.t array;
  wlock : Spinlock.t;
}

let create ?(initial_lr = 0) () =
  { lr = Atomic.make initial_lr;
    vi = Atomic.make 0;
    ri = [| Read_indicator.create (); Read_indicator.create () |];
    wlock = Spinlock.create () }

(* ---- reader side (wait-free) ---- *)

let arrive t tid =
  let v = Atomic.get t.vi in
  Read_indicator.arrive t.ri.(v) tid;
  v

let depart t tid v = Read_indicator.depart t.ri.(v) tid

let which_instance t = Atomic.get t.lr

let read t tid f =
  let v = arrive t tid in
  Fun.protect
    ~finally:(fun () -> depart t tid v)
    (fun () -> f (which_instance t))

(* ---- writer side ---- *)

let write_lock t = Spinlock.lock t.wlock
let try_write_lock t = Spinlock.try_lock t.wlock
let write_unlock t = Spinlock.unlock t.wlock

let set_lr t v = Atomic.set t.lr v

let toggle_lr t = Atomic.set t.lr (1 - Atomic.get t.lr)

(* Classic LR "toggleVersionAndScan": after this returns, every reader that
   arrived before the lr change has departed, so the instance the writer is
   about to modify has no readers. *)
let toggle_version_and_wait t =
  let prev = Atomic.get t.vi in
  let next = 1 - prev in
  Read_indicator.wait_empty t.ri.(next);
  Atomic.set t.vi next;
  Read_indicator.wait_empty t.ri.(prev)

(* Classic LR update: apply the mutation to the instance readers are not
   using, expose it, wait out old readers, then repeat the mutation on the
   other instance.  [apply] must be deterministic (applied twice). *)
let write t apply =
  write_lock t;
  Fun.protect ~finally:(fun () -> write_unlock t) @@ fun () ->
  let cur = Atomic.get t.lr in
  let opposite = 1 - cur in
  apply opposite;
  toggle_lr t;
  toggle_version_and_wait t;
  apply cur
