(** Per-thread reader-presence array (the C-RW-WP read indicator). *)

type t

val create : unit -> t

(** Announce the reader with slot [tid].  Re-entrant (counting). *)
val arrive : t -> int -> unit

val depart : t -> int -> unit
val is_empty : t -> bool

(** Spin until no reader is announced. *)
val wait_empty : t -> unit
