(** The Left-Right universal construct: wait-free readers over two instances
    of the data, a single blocking writer (§5.3). *)

type t

(** [create ~initial_lr ()] — [initial_lr] is the instance readers start
    on. *)
val create : ?initial_lr:int -> unit -> t

(** [read t tid f] runs [f instance] wait-free; [instance] is 0 or 1. *)
val read : t -> int -> (int -> 'a) -> 'a

(** Low-level reader protocol, for composition: announce and get the
    version index to pass back to {!depart}. *)
val arrive : t -> int -> int

val depart : t -> int -> int -> unit

(** Instance current readers are directed to. *)
val which_instance : t -> int

val write_lock : t -> unit
val try_write_lock : t -> bool
val write_unlock : t -> unit
val set_lr : t -> int -> unit
val toggle_lr : t -> unit

(** Wait until no reader can still be observing the instance readers were
    directed to before the last {!toggle_lr}. *)
val toggle_version_and_wait : t -> unit

(** Classic LR update: apply the mutation to the idle instance, publish,
    drain readers, apply to the other instance.  [apply] receives the
    instance index and must be deterministic. *)
val write : t -> (int -> unit) -> unit
