lib/sync/left_right.mli:
