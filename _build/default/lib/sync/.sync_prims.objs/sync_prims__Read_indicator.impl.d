lib/sync/read_indicator.ml: Array Atomic Domain Tid
