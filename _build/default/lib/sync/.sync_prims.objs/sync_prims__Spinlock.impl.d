lib/sync/spinlock.ml: Atomic Domain
