lib/sync/read_indicator.mli:
