lib/sync/rwlock_rp.ml: Atomic Domain Fun
