lib/sync/rwlock_rp.mli:
