lib/sync/crwwp.mli:
