lib/sync/flat_combining.mli:
