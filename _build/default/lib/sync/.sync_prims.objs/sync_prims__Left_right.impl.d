lib/sync/left_right.ml: Array Atomic Fun Read_indicator Spinlock
