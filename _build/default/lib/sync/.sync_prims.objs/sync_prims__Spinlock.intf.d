lib/sync/spinlock.mli:
