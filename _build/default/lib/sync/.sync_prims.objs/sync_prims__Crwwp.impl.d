lib/sync/crwwp.ml: Domain Fun Read_indicator Spinlock
