lib/sync/tid.mli:
