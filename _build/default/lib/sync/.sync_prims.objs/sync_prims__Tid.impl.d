lib/sync/tid.ml: Array Atomic Domain Fun
