lib/sync/flat_combining.ml: Array Atomic Domain Fun List Spinlock Tid
