(** Reader-preference reader-writer lock (the unfair
    std::shared_timed_mutex used around PMDK in the paper's evaluation).
    Readers never defer to waiting writers, so writers can starve. *)

type t

val create : unit -> t
val read_lock : t -> unit
val read_unlock : t -> unit
val write_lock : t -> unit
val write_unlock : t -> unit
val with_read_lock : t -> (unit -> 'a) -> 'a
val with_write_lock : t -> (unit -> 'a) -> 'a
