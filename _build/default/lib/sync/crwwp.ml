(* C-RW-WP reader-writer lock (Calciu et al.), writer-preference flavour:
   a reader that sees the writer lock taken (or being taken) departs and
   waits, so writers are never starved by a stream of readers.  Writers
   serialize on a spinlock and then wait for the read indicator to drain. *)

type t = {
  wlock : Spinlock.t;
  ri : Read_indicator.t;
}

let create () = { wlock = Spinlock.create (); ri = Read_indicator.create () }

let read_lock t tid =
  let rec attempt () =
    Read_indicator.arrive t.ri tid;
    if Spinlock.is_locked t.wlock then begin
      (* a writer is active or waiting: step aside (writer preference) *)
      Read_indicator.depart t.ri tid;
      while Spinlock.is_locked t.wlock do
        Domain.cpu_relax ()
      done;
      attempt ()
    end
  in
  attempt ()

let read_unlock t tid = Read_indicator.depart t.ri tid

let write_lock t =
  Spinlock.lock t.wlock;
  Read_indicator.wait_empty t.ri

let try_write_lock t =
  if Spinlock.try_lock t.wlock then begin
    Read_indicator.wait_empty t.ri;
    true
  end
  else false

let write_unlock t = Spinlock.unlock t.wlock

let with_read_lock t tid f =
  read_lock t tid;
  Fun.protect ~finally:(fun () -> read_unlock t tid) f

let with_write_lock t f =
  write_lock t;
  Fun.protect ~finally:(fun () -> write_unlock t) f
