(* Thread-slot registry.

   The read-indicator array and the flat-combining array are statically
   sized (one entry per thread, as in the paper's C-RW-WP implementation),
   so every participating domain needs a small dense id.  Slots are taken
   from a shared pool; [with_slot] bounds the lifetime so that domains
   spawned in a loop do not exhaust the pool. *)

let max_threads = 128

let pool = Array.init max_threads (fun _ -> Atomic.make false)

let key : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

exception Too_many_threads

let acquire_slot () =
  let rec scan i =
    if i >= max_threads then raise Too_many_threads
    else if Atomic.compare_and_set pool.(i) false true then i
    else scan (i + 1)
  in
  scan 0

let release_slot i = Atomic.set pool.(i) false

let with_slot f =
  match Domain.DLS.get key with
  | Some tid -> f tid (* already registered: reuse, do not release *)
  | None ->
    let tid = acquire_slot () in
    Domain.DLS.set key (Some tid);
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set key None;
        release_slot tid)
      (fun () -> f tid)

(* The current domain's slot; the main domain (and any domain that calls
   this outside [with_slot]) lazily takes a slot it keeps forever. *)
let current () =
  match Domain.DLS.get key with
  | Some tid -> tid
  | None ->
    let tid = acquire_slot () in
    Domain.DLS.set key (Some tid);
    tid
