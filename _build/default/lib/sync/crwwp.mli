(** C-RW-WP scalable reader-writer lock with writer preference (§5.2). *)

type t

val create : unit -> t

(** [read_lock t tid] announces the reader in its read-indicator slot; if a
    writer holds or is acquiring the lock the reader backs off first. *)
val read_lock : t -> int -> unit

val read_unlock : t -> int -> unit

(** Acquire the writer spinlock, then wait for all readers to drain. *)
val write_lock : t -> unit

(** Non-blocking writer-lock attempt; on success readers have drained. *)
val try_write_lock : t -> bool

val write_unlock : t -> unit

val with_read_lock : t -> int -> (unit -> 'a) -> 'a
val with_write_lock : t -> (unit -> 'a) -> 'a
