(** Flat-combining array: aggregate update operations under one lock
    acquisition (and, for a PTM, one durable transaction). *)

type t

val create : unit -> t

(** [apply t f ~exec] publishes [f] and returns once some combiner has
    executed it durably.  The combiner calls [exec run_batch] exactly once
    per batch; [exec] must call [run_batch ()] (e.g. between
    begin-transaction and end-transaction).  Exceptions raised by [f] are
    re-raised at its requester; an exception escaping [exec] itself is
    raised at every requester of the batch. *)
val apply : t -> (unit -> unit) -> exec:((unit -> unit) -> unit) -> unit

(** Number of batches executed so far. *)
val batches : t -> int

(** Total requests served across all batches. *)
val requests_served : t -> int

(** Current combiner scan length: 1 + the highest thread slot that ever
    published a request — combiners scan only this prefix of the slot
    array, not all [Tid.max_threads] entries. *)
val scan_length : t -> int

(** Total slots examined across all batches. *)
val slots_scanned : t -> int
