(* A small discrete-event simulator: a binary min-heap of timestamped
   events with a deterministic PRNG.  Used to extrapolate multi-thread
   throughput figures from measured single-thread costs — this container
   has one CPU, so the paper's 64-thread scalability shapes cannot be
   reproduced with wall-clock runs (see DESIGN.md).

   Events scheduled at equal times fire in scheduling order (a sequence
   number breaks ties), which keeps runs fully deterministic. *)

type event = {
  time : float;
  seq : int;
  action : unit -> unit;
}

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable rng : int;
}

let dummy = { time = 0.; seq = 0; action = ignore }

let create ?(seed = 0x5EED) () =
  { heap = Array.make 256 dummy;
    size = 0;
    clock = 0.;
    next_seq = 0;
    rng = (if seed = 0 then 1 else seed) }

let now t = t.clock

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let push t e =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- e;
  t.size <- t.size + 1;
  (* sift up *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let p = (!i - 1) / 2 in
    before t.heap.(!i) t.heap.(p)
  do
    let p = (!i - 1) / 2 in
    let tmp = t.heap.(p) in
    t.heap.(p) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := p
  done

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  (* sift down *)
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = t.heap.(!smallest) in
      t.heap.(!smallest) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done;
  top

let schedule t delay action =
  if delay < 0. then invalid_arg "Des.schedule: negative delay";
  let e = { time = t.clock +. delay; seq = t.next_seq; action } in
  t.next_seq <- t.next_seq + 1;
  push t e

(* Run events until the queue drains or the clock passes [until]. *)
let run t ~until =
  let continue = ref true in
  while !continue && t.size > 0 do
    if t.heap.(0).time > until then continue := false
    else begin
      let e = pop t in
      t.clock <- e.time;
      e.action ()
    end
  done;
  t.clock <- max t.clock until

(* xorshift64*; uniform in [0, 1) *)
let random t =
  let x = ref t.rng in
  x := !x lxor (!x lsl 13);
  x := !x lxor (!x lsr 7);
  x := !x lxor (!x lsl 17);
  t.rng <- !x;
  float_of_int (!x land max_int) /. float_of_int max_int
