(** Discrete-event simulator: a timestamped event queue with a
    deterministic PRNG, used to extrapolate multi-thread throughput from
    measured single-thread costs (this container has one CPU core; see
    DESIGN.md). *)

type t

val create : ?seed:int -> unit -> t

(** Current virtual time (nanoseconds by convention). *)
val now : t -> float

(** [schedule t delay f] fires [f] at [now t +. delay].  Events with equal
    times fire in scheduling order. *)
val schedule : t -> float -> (unit -> unit) -> unit

(** Run events until the queue drains or the clock passes [until]; the
    clock ends at [max now until]. *)
val run : t -> until:float -> unit

(** Deterministic uniform draw in [0, 1). *)
val random : t -> float
