lib/simsched/sync_model.mli:
