lib/simsched/sync_model.ml: Des Queue
