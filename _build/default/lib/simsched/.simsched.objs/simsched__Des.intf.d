lib/simsched/des.mli:
