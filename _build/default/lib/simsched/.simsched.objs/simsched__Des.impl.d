lib/simsched/des.ml: Array
