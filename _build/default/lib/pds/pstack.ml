(* Persistent LIFO stack: a singly-linked list of [value; next] nodes with
   the top pointer in a fixed cell.  Push and pop are single transactions;
   a crash leaves the stack exactly before or after the operation. *)

module Make (P : Romulus.Ptm_intf.S) = struct
  type t = { p : P.t; top_slot : int (* cell holding the top pointer *) }

  let n_value = 0
  let n_next = 8
  let node_bytes = 16

  let create p ~root =
    P.update_tx p (fun () ->
        let slot = P.alloc p 16 in
        P.store p slot 0; (* top *)
        P.store p (slot + 8) 0; (* length *)
        P.set_root p root slot;
        { p; top_slot = slot })

  let attach p ~root =
    match P.read_tx p (fun () -> P.get_root p root) with
    | 0 -> invalid_arg "Pstack.attach: empty root"
    | slot -> { p; top_slot = slot }

  let length t = P.read_tx t.p (fun () -> P.load t.p (t.top_slot + 8))

  let is_empty t = length t = 0

  let push t v =
    P.update_tx t.p (fun () ->
        let n = P.alloc t.p node_bytes in
        P.store t.p (n + n_value) v;
        P.store t.p (n + n_next) (P.load t.p t.top_slot);
        P.store t.p t.top_slot n;
        P.store t.p (t.top_slot + 8) (P.load t.p (t.top_slot + 8) + 1))

  let pop t =
    P.update_tx t.p (fun () ->
        match P.load t.p t.top_slot with
        | 0 -> None
        | n ->
          let v = P.load t.p (n + n_value) in
          P.store t.p t.top_slot (P.load t.p (n + n_next));
          P.store t.p (t.top_slot + 8) (P.load t.p (t.top_slot + 8) - 1);
          P.free t.p n;
          Some v)

  let peek t =
    P.read_tx t.p (fun () ->
        match P.load t.p t.top_slot with
        | 0 -> None
        | n -> Some (P.load t.p (n + n_value)))

  (* top-first *)
  let to_list t =
    P.read_tx t.p (fun () ->
        let rec walk n acc =
          if n = 0 then List.rev acc
          else walk (P.load t.p (n + n_next)) (P.load t.p (n + n_value) :: acc)
        in
        walk (P.load t.p t.top_slot) [])

  let check t =
    P.read_tx t.p (fun () ->
        let rec count n acc =
          if n = 0 then acc
          else if acc > 1_000_000 then -1 (* cycle guard *)
          else count (P.load t.p (n + n_next)) (acc + 1)
        in
        let walked = count (P.load t.p t.top_slot) 0 in
        let recorded = P.load t.p (t.top_slot + 8) in
        if walked = -1 then Error "cycle in stack"
        else if walked <> recorded then
          Error (Printf.sprintf "length %d but %d nodes" recorded walked)
        else Ok ())
end
