(* Persistent hash map with chaining: integer keys and word values.

   Two flavours behind one implementation, as in the paper's evaluation:
   - resizable (§6.2): a shared element counter drives resizing — the
     counter is exactly the contention point that makes fine-grained STMs
     abort (Figure 5's discussion);
   - fixed-size (2,048 buckets, no counter updates on the hot path),
     the statically-dimensioned variant built to reproduce Mnemosyne's
     original scalability results (Figure 5).

   Layout:

     map object:  [0] buckets (ptr to array)  [8] nbuckets  [16] count
     node:        [0] key  [8] value  [16] next *)

module Make (P : Romulus.Ptm_intf.S) = struct
  type t = {
    p : P.t;
    map : int;
    resizable : bool;
  }

  let o_buckets = 0
  let o_nbuckets = 8
  let o_count = 16
  let map_bytes = 24

  let n_key = 0
  let n_value = 8
  let n_next = 16
  let node_bytes = 24

  let hash_key k = (k * 0x2545F4914F6CDD1D) land max_int

  let buckets t = P.load t.p (t.map + o_buckets)
  let nbuckets t = P.load t.p (t.map + o_nbuckets)
  let count t = P.load t.p (t.map + o_count)

  let bucket_addr _t ~buckets ~nbuckets k =
    buckets + (8 * (hash_key k mod nbuckets))

  let create ?(resizable = true) ?(initial_buckets = 16) p ~root =
    P.update_tx p (fun () ->
        let buckets = P.alloc p (8 * initial_buckets) in
        for i = 0 to initial_buckets - 1 do
          P.store p (buckets + (8 * i)) 0
        done;
        let map = P.alloc p map_bytes in
        P.store p (map + o_buckets) buckets;
        P.store p (map + o_nbuckets) initial_buckets;
        P.store p (map + o_count) 0;
        P.set_root p root map;
        { p; map; resizable })

  let attach ?(resizable = true) p ~root =
    match P.read_tx p (fun () -> P.get_root p root) with
    | 0 -> invalid_arg "Hash_map.attach: empty root"
    | map -> { p; map; resizable }

  (* find the node with [k] in its bucket; returns (pred, node) where node
     is 0 when absent and pred is the address of the pointer to update *)
  let find_in_bucket t slot_addr k =
    let rec walk pred node =
      if node = 0 then (pred, 0)
      else if P.load t.p (node + n_key) = k then (pred, node)
      else walk (node + n_next) (P.load t.p (node + n_next))
    in
    walk slot_addr (P.load t.p slot_addr)

  let get t k =
    P.read_tx t.p (fun () ->
        let slot = bucket_addr t ~buckets:(buckets t) ~nbuckets:(nbuckets t) k in
        let _, node = find_in_bucket t slot k in
        if node = 0 then None else Some (P.load t.p (node + n_value)))

  let mem t k = get t k <> None

  (* double the bucket array and rehash (one big transaction) *)
  let resize t =
    let old_buckets = buckets t in
    let old_n = nbuckets t in
    let new_n = 2 * old_n in
    let new_buckets = P.alloc t.p (8 * new_n) in
    for i = 0 to new_n - 1 do
      P.store t.p (new_buckets + (8 * i)) 0
    done;
    for i = 0 to old_n - 1 do
      let rec move node =
        if node <> 0 then begin
          let succ = P.load t.p (node + n_next) in
          let k = P.load t.p (node + n_key) in
          let slot =
            bucket_addr t ~buckets:new_buckets ~nbuckets:new_n k
          in
          P.store t.p (node + n_next) (P.load t.p slot);
          P.store t.p slot node;
          move succ
        end
      in
      move (P.load t.p (old_buckets + (8 * i)))
    done;
    P.store t.p (t.map + o_buckets) new_buckets;
    P.store t.p (t.map + o_nbuckets) new_n;
    P.free t.p old_buckets

  (* insert or overwrite; returns true when the key was new *)
  let put t k v =
    P.update_tx t.p (fun () ->
        let slot = bucket_addr t ~buckets:(buckets t) ~nbuckets:(nbuckets t) k in
        let _, node = find_in_bucket t slot k in
        if node <> 0 then begin
          P.store t.p (node + n_value) v;
          false
        end
        else begin
          let n = P.alloc t.p node_bytes in
          P.store t.p (n + n_key) k;
          P.store t.p (n + n_value) v;
          P.store t.p (n + n_next) (P.load t.p slot);
          P.store t.p slot n;
          if t.resizable then begin
            let c = count t + 1 in
            P.store t.p (t.map + o_count) c;
            if c > 2 * nbuckets t then resize t
          end;
          true
        end)

  let remove t k =
    P.update_tx t.p (fun () ->
        let slot = bucket_addr t ~buckets:(buckets t) ~nbuckets:(nbuckets t) k in
        let pred, node = find_in_bucket t slot k in
        if node = 0 then false
        else begin
          P.store t.p pred (P.load t.p (node + n_next));
          P.free t.p node;
          if t.resizable then
            P.store t.p (t.map + o_count) (count t - 1);
          true
        end)

  (* fold over all (key, value) bindings, bucket by bucket *)
  let fold t f init =
    P.read_tx t.p (fun () ->
        let buckets = buckets t and n = nbuckets t in
        let acc = ref init in
        for i = 0 to n - 1 do
          let rec walk node =
            if node <> 0 then begin
              acc :=
                f !acc (P.load t.p (node + n_key)) (P.load t.p (node + n_value));
              walk (P.load t.p (node + n_next))
            end
          in
          walk (P.load t.p (buckets + (8 * i)))
        done;
        !acc)

  let length t =
    if t.resizable then P.read_tx t.p (fun () -> count t)
    else fold t (fun acc _ _ -> acc + 1) 0

  (* structural check: every node hashes to the bucket that holds it, no
     duplicate keys, counter consistent when maintained *)
  let check t =
    P.read_tx t.p (fun () ->
        let buckets = buckets t and n = nbuckets t in
        let seen = Hashtbl.create 64 in
        let errors = ref [] in
        for i = 0 to n - 1 do
          let rec walk node =
            if node <> 0 then begin
              let k = P.load t.p (node + n_key) in
              if hash_key k mod n <> i then
                errors :=
                  Printf.sprintf "key %d in wrong bucket %d" k i :: !errors;
              if Hashtbl.mem seen k then
                errors := Printf.sprintf "duplicate key %d" k :: !errors;
              Hashtbl.replace seen k ();
              walk (P.load t.p (node + n_next))
            end
          in
          walk (P.load t.p (buckets + (8 * i)))
        done;
        if t.resizable && count t <> Hashtbl.length seen then
          errors :=
            Printf.sprintf "count %d but %d nodes" (count t)
              (Hashtbl.length seen)
            :: !errors;
        match !errors with
        | [] -> Ok ()
        | es -> Error (String.concat "; " es))
end
