(* Persistent red-black tree map (CLRS-style, with parent pointers and an
   allocated nil sentinel), integer keys to word values.  The paper's
   evaluation uses a red-black tree as its "many stores per transaction"
   structure: an update transaction touches O(log n) nodes plus rotation
   and recolouring stores (the two pwb-histogram peaks of §6.2).

   Layout:

     tree object:  [0] root  [8] nil  [16] count
     node:         [0] key  [8] value  [16] left  [24] right
                   [32] parent  [40] color (0 = red, 1 = black)

   The nil sentinel is a real allocated node (offset 0 cannot be written
   through the PTM): it is always black, and delete-fixup may temporarily
   write its parent field, exactly as in CLRS. *)

module Make (P : Romulus.Ptm_intf.S) = struct
  type t = { p : P.t; tree : int }

  let o_root = 0
  let o_nil = 8
  let o_count = 16
  let tree_bytes = 24

  let n_key = 0
  let n_value = 8
  let n_left = 16
  let n_right = 24
  let n_parent = 32
  let n_color = 40
  let node_bytes = 48

  let red = 0
  let black = 1

  (* field accessors *)
  let root t = P.load t.p (t.tree + o_root)
  let nil t = P.load t.p (t.tree + o_nil)
  let set_root_node t n = P.store t.p (t.tree + o_root) n
  let key t n = P.load t.p (n + n_key)
  let value t n = P.load t.p (n + n_value)
  let set_value t n v = P.store t.p (n + n_value) v
  let left t n = P.load t.p (n + n_left)
  let right t n = P.load t.p (n + n_right)
  let parent t n = P.load t.p (n + n_parent)
  let color t n = P.load t.p (n + n_color)
  let set_left t n v = P.store t.p (n + n_left) v
  let set_right t n v = P.store t.p (n + n_right) v
  let set_parent t n v = P.store t.p (n + n_parent) v
  let set_color t n v = P.store t.p (n + n_color) v

  let create p ~root:root_slot =
    P.update_tx p (fun () ->
        let nil = P.alloc p node_bytes in
        P.store p (nil + n_key) 0;
        P.store p (nil + n_value) 0;
        P.store p (nil + n_left) nil;
        P.store p (nil + n_right) nil;
        P.store p (nil + n_parent) nil;
        P.store p (nil + n_color) black;
        let tree = P.alloc p tree_bytes in
        P.store p (tree + o_root) nil;
        P.store p (tree + o_nil) nil;
        P.store p (tree + o_count) 0;
        P.set_root p root_slot tree;
        { p; tree })

  let attach p ~root:root_slot =
    match P.read_tx p (fun () -> P.get_root p root_slot) with
    | 0 -> invalid_arg "Rb_tree.attach: empty root"
    | tree -> { p; tree }

  let find_node t k =
    let nil = nil t in
    let rec walk n =
      if n = nil then nil
      else
        let nk = key t n in
        if k = nk then n else if k < nk then walk (left t n) else walk (right t n)
    in
    walk (root t)

  let get t k =
    P.read_tx t.p (fun () ->
        let n = find_node t k in
        if n = nil t then None else Some (value t n))

  let mem t k = get t k <> None

  let length t = P.read_tx t.p (fun () -> P.load t.p (t.tree + o_count))

  (* ---- rotations ---- *)

  let rotate_left t x =
    let nil = nil t in
    let y = right t x in
    set_right t x (left t y);
    if left t y <> nil then set_parent t (left t y) x;
    set_parent t y (parent t x);
    if parent t x = nil then set_root_node t y
    else if x = left t (parent t x) then set_left t (parent t x) y
    else set_right t (parent t x) y;
    set_left t y x;
    set_parent t x y

  let rotate_right t x =
    let nil = nil t in
    let y = left t x in
    set_left t x (right t y);
    if right t y <> nil then set_parent t (right t y) x;
    set_parent t y (parent t x);
    if parent t x = nil then set_root_node t y
    else if x = right t (parent t x) then set_right t (parent t x) y
    else set_left t (parent t x) y;
    set_right t y x;
    set_parent t x y

  (* ---- insert ---- *)

  let insert_fixup t z0 =
    let z = ref z0 in
    while color t (parent t !z) = red do
      let zp = parent t !z in
      let zpp = parent t zp in
      if zp = left t zpp then begin
        let y = right t zpp in
        if color t y = red then begin
          set_color t zp black;
          set_color t y black;
          set_color t zpp red;
          z := zpp
        end
        else begin
          if !z = right t zp then begin
            z := zp;
            rotate_left t !z
          end;
          let zp = parent t !z in
          let zpp = parent t zp in
          set_color t zp black;
          set_color t zpp red;
          rotate_right t zpp
        end
      end
      else begin
        let y = left t zpp in
        if color t y = red then begin
          set_color t zp black;
          set_color t y black;
          set_color t zpp red;
          z := zpp
        end
        else begin
          if !z = left t zp then begin
            z := zp;
            rotate_right t !z
          end;
          let zp = parent t !z in
          let zpp = parent t zp in
          set_color t zp black;
          set_color t zpp red;
          rotate_left t zpp
        end
      end
    done;
    set_color t (root t) black

  (* insert or overwrite; returns true when the key was new *)
  let put t k v =
    P.update_tx t.p (fun () ->
        let nil = nil t in
        let rec descend n p =
          if n = nil then `Attach p
          else
            let nk = key t n in
            if k = nk then `Found n
            else if k < nk then descend (left t n) n
            else descend (right t n) n
        in
        match descend (root t) nil with
        | `Found n ->
          set_value t n v;
          false
        | `Attach p ->
          let z = P.alloc t.p node_bytes in
          P.store t.p (z + n_key) k;
          P.store t.p (z + n_value) v;
          set_left t z nil;
          set_right t z nil;
          set_parent t z p;
          set_color t z red;
          if p = nil then set_root_node t z
          else if k < key t p then set_left t p z
          else set_right t p z;
          insert_fixup t z;
          P.store t.p (t.tree + o_count) (P.load t.p (t.tree + o_count) + 1);
          true)

  (* ---- delete ---- *)

  let transplant t u v =
    let nil = nil t in
    let up = parent t u in
    if up = nil then set_root_node t v
    else if u = left t up then set_left t up v
    else set_right t up v;
    set_parent t v up

  let minimum t n =
    let nil = nil t in
    let rec walk n = if left t n = nil then n else walk (left t n) in
    walk n

  let delete_fixup t x0 =
    let x = ref x0 in
    while !x <> root t && color t !x = black do
      let xp = parent t !x in
      if !x = left t xp then begin
        let w = ref (right t xp) in
        if color t !w = red then begin
          set_color t !w black;
          set_color t xp red;
          rotate_left t xp;
          w := right t (parent t !x)
        end;
        if color t (left t !w) = black && color t (right t !w) = black then begin
          set_color t !w red;
          x := parent t !x
        end
        else begin
          if color t (right t !w) = black then begin
            set_color t (left t !w) black;
            set_color t !w red;
            rotate_right t !w;
            w := right t (parent t !x)
          end;
          let xp = parent t !x in
          set_color t !w (color t xp);
          set_color t xp black;
          set_color t (right t !w) black;
          rotate_left t xp;
          x := root t
        end
      end
      else begin
        let w = ref (left t xp) in
        if color t !w = red then begin
          set_color t !w black;
          set_color t xp red;
          rotate_right t xp;
          w := left t (parent t !x)
        end;
        if color t (right t !w) = black && color t (left t !w) = black then begin
          set_color t !w red;
          x := parent t !x
        end
        else begin
          if color t (left t !w) = black then begin
            set_color t (right t !w) black;
            set_color t !w red;
            rotate_left t !w;
            w := left t (parent t !x)
          end;
          let xp = parent t !x in
          set_color t !w (color t xp);
          set_color t xp black;
          set_color t (left t !w) black;
          rotate_right t xp;
          x := root t
        end
      end
    done;
    set_color t !x black

  let remove t k =
    P.update_tx t.p (fun () ->
        let nil = nil t in
        let z = find_node t k in
        if z = nil then false
        else begin
          let y = ref z in
          let y_color = ref (color t z) in
          let x =
            if left t z = nil then begin
              let x = right t z in
              transplant t z x;
              x
            end
            else if right t z = nil then begin
              let x = left t z in
              transplant t z x;
              x
            end
            else begin
              y := minimum t (right t z);
              y_color := color t !y;
              let x = right t !y in
              if parent t !y = z then set_parent t x !y
              else begin
                transplant t !y (right t !y);
                set_right t !y (right t z);
                set_parent t (right t !y) !y
              end;
              transplant t z !y;
              set_left t !y (left t z);
              set_parent t (left t !y) !y;
              set_color t !y (color t z);
              x
            end
          in
          if !y_color = black then delete_fixup t x;
          P.free t.p z;
          P.store t.p (t.tree + o_count) (P.load t.p (t.tree + o_count) - 1);
          true
        end)

  (* ascending fold *)
  let fold t f init =
    P.read_tx t.p (fun () ->
        let nil = nil t in
        let rec walk n acc =
          if n = nil then acc
          else
            let acc = walk (left t n) acc in
            let acc = f acc (key t n) (value t n) in
            walk (right t n) acc
        in
        walk (root t) init)

  (* ascending fold over the bindings with lo <= key <= hi, visiting only
     the O(log n + answer) relevant subtrees *)
  let fold_range t ~lo ~hi f init =
    P.read_tx t.p (fun () ->
        let nil = nil t in
        let rec walk n acc =
          if n = nil then acc
          else begin
            let k = key t n in
            let acc = if k > lo then walk (left t n) acc else acc in
            let acc = if lo <= k && k <= hi then f acc k (value t n) else acc in
            if k < hi then walk (right t n) acc else acc
          end
        in
        walk (root t) init)

  (* smallest binding with key >= k *)
  let find_first t k =
    P.read_tx t.p (fun () ->
        let nil = nil t in
        let rec walk n best =
          if n = nil then best
          else
            let nk = key t n in
            if nk >= k then walk (left t n) (Some (nk, value t n))
            else walk (right t n) best
        in
        walk (root t) None)

  let to_list t = List.rev (fold t (fun acc k v -> (k, v) :: acc) [])

  (* ---- invariant check (for property tests) ----
     1. BST order; 2. root is black; 3. no red node has a red child;
     4. every root-to-leaf path has the same black height;
     5. parent pointers are consistent; 6. count matches. *)
  let check t =
    P.read_tx t.p (fun () ->
        let nil = nil t in
        let errors = ref [] in
        let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
        if color t (root t) <> black then err "root is not black";
        if color t nil <> black then err "nil is not black";
        let count = ref 0 in
        let rec walk n lo hi =
          if n = nil then 1 (* black height of a leaf *)
          else begin
            incr count;
            let k = key t n in
            if k <= lo || k >= hi then err "BST violation at key %d" k;
            if color t n = red then begin
              if color t (left t n) = red || color t (right t n) = red then
                err "red node %d has red child" k
            end;
            if left t n <> nil && parent t (left t n) <> n then
              err "bad parent pointer below %d (left)" k;
            if right t n <> nil && parent t (right t n) <> n then
              err "bad parent pointer below %d (right)" k;
            let bl = walk (left t n) lo k in
            let br = walk (right t n) k hi in
            if bl <> br then err "black-height mismatch at %d" k;
            bl + (if color t n = black then 1 else 0)
          end
        in
        ignore (walk (root t) min_int max_int);
        if P.load t.p (t.tree + o_count) <> !count then
          err "count %d but %d nodes" (P.load t.p (t.tree + o_count)) !count;
        match !errors with
        | [] -> Ok ()
        | es -> Error (String.concat "; " es))
end
