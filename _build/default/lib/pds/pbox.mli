(** Small persistent containers: a single word cell, a fixed word array,
    and a string box — crash-atomic veneers over the PTM accesses. *)

module Make (P : Romulus.Ptm_intf.S) : sig
  (** A single persistent word. *)
  module Cell : sig
    type t

    val create : P.t -> root:int -> int -> t
    val attach : P.t -> root:int -> t
    val get : t -> int
    val set : t -> int -> unit

    (** Atomic read-modify-write; returns the new value. *)
    val update : t -> (int -> int) -> int

    val incr : t -> int
  end

  (** A fixed-size persistent word array (bounds-checked). *)
  module Array_ : sig
    type t

    val create : P.t -> root:int -> int -> t
    val attach : P.t -> root:int -> t
    val length : t -> int
    val get : t -> int -> int
    val set : t -> int -> int -> unit

    (** Atomically exchange two slots. *)
    val swap : t -> int -> int -> unit

    val to_list : t -> int list
    val fill : t -> int -> unit
  end

  (** A persistent string, replaced wholesale on set. *)
  module Str : sig
    type t

    val create : P.t -> root:int -> string -> t
    val attach : P.t -> root:int -> t
    val get : t -> string
    val set : t -> string -> unit
  end
end
