(** Persistent B+tree map: integer keys to word values, values in chained
    leaves (ordered scans and range queries), proactive splits on insert,
    lazy deletion (only an empty root collapses). *)

module Make (P : Romulus.Ptm_intf.S) : sig
  type t

  val create : P.t -> root:int -> t
  val attach : P.t -> root:int -> t

  (** Insert or overwrite; true when the key was new. *)
  val put : t -> int -> int -> bool

  val get : t -> int -> int option
  val mem : t -> int -> bool
  val remove : t -> int -> bool
  val length : t -> int

  (** Ascending fold over all bindings (leaf chain). *)
  val fold : t -> ('a -> int -> int -> 'a) -> 'a -> 'a

  val to_list : t -> (int * int) list

  (** Ascending fold over bindings with [lo <= key <= hi]. *)
  val fold_range : t -> lo:int -> hi:int -> ('a -> int -> int -> 'a) -> 'a -> 'a

  (** Structural check: key ordering, separator ranges, leaf chain
      consistency, count. *)
  val check : t -> (unit, string) result
end
