(* Persistent B+tree map: integer keys to word values, fixed fanout,
   values only in leaves, leaves chained for range scans.

   Layout (fanout F = 8):

     tree object:  [0] root  [8] height (0 = root is a leaf)  [16] count
     leaf:         [0] nkeys  [8] next-leaf
                   [16..]            F keys
                   [16+8F..]         F values
     internal:     [0] nkeys
                   [8..]             F-1 separator keys
                   [8+8(F-1)..]      F children

   Insertion splits full nodes on the way down (proactive splitting, so a
   split never propagates upward mid-transaction).  Deletion is lazy:
   nodes may underflow (only an empty root collapses) — the approach of
   many production stores; the structural check therefore validates
   ordering, height uniformity, separator correctness and the leaf chain,
   but not minimum occupancy. *)

module Make (P : Romulus.Ptm_intf.S) = struct
  type t = { p : P.t; obj : int }

  let fanout = 8

  let o_root = 0
  let o_height = 8
  let o_count = 16
  let obj_bytes = 24

  (* common header *)
  let n_nkeys = 0

  (* leaf fields *)
  let l_next = 8
  let l_keys = 16
  let l_vals = l_keys + (8 * fanout)
  let leaf_bytes = l_vals + (8 * fanout)

  (* internal fields *)
  let i_keys = 8
  let i_children = i_keys + (8 * (fanout - 1))
  let internal_bytes = i_children + (8 * fanout)

  let nkeys t n = P.load t.p (n + n_nkeys)
  let set_nkeys t n v = P.store t.p (n + n_nkeys) v

  let lkey t n i = P.load t.p (n + l_keys + (8 * i))
  let set_lkey t n i v = P.store t.p (n + l_keys + (8 * i)) v
  let lval t n i = P.load t.p (n + l_vals + (8 * i))
  let set_lval t n i v = P.store t.p (n + l_vals + (8 * i)) v
  let lnext t n = P.load t.p (n + l_next)
  let set_lnext t n v = P.store t.p (n + l_next) v

  let ikey t n i = P.load t.p (n + i_keys + (8 * i))
  let set_ikey t n i v = P.store t.p (n + i_keys + (8 * i)) v
  let child t n i = P.load t.p (n + i_children + (8 * i))
  let set_child t n i v = P.store t.p (n + i_children + (8 * i)) v

  let root t = P.load t.p (t.obj + o_root)
  let height t = P.load t.p (t.obj + o_height)

  let new_leaf t =
    let n = P.alloc t.p leaf_bytes in
    set_nkeys t n 0;
    set_lnext t n 0;
    n

  let new_internal t =
    let n = P.alloc t.p internal_bytes in
    set_nkeys t n 0;
    n

  let create p ~root =
    P.update_tx p (fun () ->
        let obj = P.alloc p obj_bytes in
        let t = { p; obj } in
        let leaf = new_leaf t in
        P.store p (obj + o_root) leaf;
        P.store p (obj + o_height) 0;
        P.store p (obj + o_count) 0;
        P.set_root p root obj;
        t)

  let attach p ~root =
    match P.read_tx p (fun () -> P.get_root p root) with
    | 0 -> invalid_arg "Bptree.attach: empty root"
    | obj -> { p; obj }

  let length t = P.read_tx t.p (fun () -> P.load t.p (t.obj + o_count))

  (* index of the child to follow for key [k] in internal node [n] *)
  let child_index t n k =
    let nk = nkeys t n in
    let rec scan i = if i < nk && k >= ikey t n i then scan (i + 1) else i in
    scan 0

  (* position of [k] in leaf [n]: [Found i] or [Insert_at i] *)
  let leaf_position t n k =
    let nk = nkeys t n in
    let rec scan i =
      if i >= nk then `Insert_at i
      else
        let ki = lkey t n i in
        if ki = k then `Found i
        else if ki > k then `Insert_at i
        else scan (i + 1)
    in
    scan 0

  let rec descend_to_leaf t n level k =
    if level = 0 then n
    else descend_to_leaf t (child t n (child_index t n k)) (level - 1) k

  let get t k =
    P.read_tx t.p (fun () ->
        let leaf = descend_to_leaf t (root t) (height t) k in
        match leaf_position t leaf k with
        | `Found i -> Some (lval t leaf i)
        | `Insert_at _ -> None)

  let mem t k = get t k <> None

  (* ---- insertion with proactive splitting ---- *)

  (* split the full child [ci] of internal node [parent] (or the root).
     Returns unit; the caller re-examines the parent afterwards. *)
  let split_leaf t leaf =
    (* returns (separator, right) *)
    let half = fanout / 2 in
    let right = new_leaf t in
    for j = 0 to fanout - half - 1 do
      set_lkey t right j (lkey t leaf (half + j));
      set_lval t right j (lval t leaf (half + j))
    done;
    set_nkeys t right (fanout - half);
    set_nkeys t leaf half;
    set_lnext t right (lnext t leaf);
    set_lnext t leaf right;
    (lkey t right 0, right)

  let split_internal t node =
    (* full internal node has fanout-1 keys; middle key moves up *)
    let total = fanout - 1 in
    let mid = total / 2 in
    let right = new_internal t in
    let moved = total - mid - 1 in
    for j = 0 to moved - 1 do
      set_ikey t right j (ikey t node (mid + 1 + j))
    done;
    for j = 0 to moved do
      set_child t right j (child t node (mid + 1 + j))
    done;
    set_nkeys t right moved;
    let sep = ikey t node mid in
    set_nkeys t node mid;
    (sep, right)

  (* insert (sep, right) into internal node [n] at position [i] *)
  let insert_into_internal t n i sep right =
    let nk = nkeys t n in
    for j = nk - 1 downto i do
      set_ikey t n (j + 1) (ikey t n j)
    done;
    for j = nk downto i + 1 do
      set_child t n (j + 1) (child t n j)
    done;
    set_ikey t n i sep;
    set_child t n (i + 1) right;
    set_nkeys t n (nk + 1)

  let node_full t n ~leaf = nkeys t n >= if leaf then fanout else fanout - 1

  let grow_root t sep left right =
    let nr = new_internal t in
    set_ikey t nr 0 sep;
    set_child t nr 0 left;
    set_child t nr 1 right;
    set_nkeys t nr 1;
    P.store t.p (t.obj + o_root) nr;
    P.store t.p (t.obj + o_height) (height t + 1)

  (* insert or overwrite; true when the key was new *)
  let put t k v =
    P.update_tx t.p (fun () ->
        (* split a full root first *)
        (if height t = 0 then begin
           if node_full t (root t) ~leaf:true then begin
             let sep, right = split_leaf t (root t) in
             grow_root t sep (root t) right
           end
         end
         else if node_full t (root t) ~leaf:false then begin
           let sep, right = split_internal t (root t) in
           grow_root t sep (root t) right
         end);
        (* descend, splitting any full child before entering it *)
        let rec walk n level =
          if level = 0 then begin
            match leaf_position t n k with
            | `Found i ->
              set_lval t n i v;
              false
            | `Insert_at i ->
              let nk = nkeys t n in
              for j = nk - 1 downto i do
                set_lkey t n (j + 1) (lkey t n j);
                set_lval t n (j + 1) (lval t n j)
              done;
              set_lkey t n i k;
              set_lval t n i v;
              set_nkeys t n (nk + 1);
              P.store t.p (t.obj + o_count)
                (P.load t.p (t.obj + o_count) + 1);
              true
          end
          else begin
            let ci = child_index t n k in
            let c = child t n ci in
            if node_full t c ~leaf:(level = 1) then begin
              let sep, right =
                if level = 1 then split_leaf t c else split_internal t c
              in
              insert_into_internal t n ci sep right;
              (* re-pick the child: k may belong right of the separator *)
              let ci = child_index t n k in
              walk (child t n ci) (level - 1)
            end
            else walk c (level - 1)
          end
        in
        walk (root t) (height t))

  (* ---- deletion (lazy: no rebalancing below the root) ---- *)

  let remove t k =
    P.update_tx t.p (fun () ->
        let rec walk n level =
          if level = 0 then begin
            match leaf_position t n k with
            | `Insert_at _ -> false
            | `Found i ->
              let nk = nkeys t n in
              for j = i to nk - 2 do
                set_lkey t n j (lkey t n (j + 1));
                set_lval t n j (lval t n (j + 1))
              done;
              set_nkeys t n (nk - 1);
              P.store t.p (t.obj + o_count)
                (P.load t.p (t.obj + o_count) - 1);
              true
          end
          else walk (child t n (child_index t n k)) (level - 1)
        in
        let removed = walk (root t) (height t) in
        (* collapse an empty internal root *)
        let rec shrink () =
          if height t > 0 && nkeys t (root t) = 0 then begin
            let old = root t in
            P.store t.p (t.obj + o_root) (child t old 0);
            P.store t.p (t.obj + o_height) (height t - 1);
            P.free t.p old;
            shrink ()
          end
        in
        shrink ();
        removed)

  (* ---- scans ---- *)

  let leftmost_leaf t =
    let rec walk n level = if level = 0 then n else walk (child t n 0) (level - 1) in
    walk (root t) (height t)

  let fold t f init =
    P.read_tx t.p (fun () ->
        let rec leaves n acc =
          if n = 0 then acc
          else begin
            let nk = nkeys t n in
            let acc = ref acc in
            for i = 0 to nk - 1 do
              acc := f !acc (lkey t n i) (lval t n i)
            done;
            leaves (lnext t n) !acc
          end
        in
        leaves (leftmost_leaf t) init)

  let to_list t = List.rev (fold t (fun acc k v -> (k, v) :: acc) [])

  (* ascending fold over lo <= key <= hi using the leaf chain *)
  let fold_range t ~lo ~hi f init =
    P.read_tx t.p (fun () ->
        let start = descend_to_leaf t (root t) (height t) lo in
        let rec leaves n acc =
          if n = 0 then acc
          else begin
            let nk = nkeys t n in
            let acc = ref acc in
            let beyond = ref false in
            for i = 0 to nk - 1 do
              let k = lkey t n i in
              if k > hi then beyond := true
              else if k >= lo then acc := f !acc k (lval t n i)
            done;
            if !beyond then !acc else leaves (lnext t n) !acc
          end
        in
        leaves start init)

  (* ---- structural check ---- *)

  let check t =
    P.read_tx t.p (fun () ->
        let errors = ref [] in
        let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
        let leaves_seen = ref [] in
        let count = ref 0 in
        (* returns the (min, max) key range of the subtree *)
        let rec walk n level lo hi =
          if level = 0 then begin
            leaves_seen := n :: !leaves_seen;
            let nk = nkeys t n in
            if nk < 0 || nk > fanout then err "leaf %d bad nkeys %d" n nk;
            count := !count + nk;
            for i = 0 to nk - 1 do
              let k = lkey t n i in
              if k < lo || k >= hi then
                err "leaf key %d outside separator range [%d,%d)" k lo hi;
              if i > 0 && lkey t n (i - 1) >= k then
                err "leaf %d keys not ascending" n
            done
          end
          else begin
            let nk = nkeys t n in
            if nk < 1 || nk > fanout - 1 then
              err "internal %d bad nkeys %d" n nk;
            for i = 0 to nk - 1 do
              let k = ikey t n i in
              if k < lo || k >= hi then
                err "separator %d outside range [%d,%d)" k lo hi;
              if i > 0 && ikey t n (i - 1) >= k then
                err "internal %d separators not ascending" n
            done;
            for i = 0 to nk do
              let clo = if i = 0 then lo else ikey t n (i - 1) in
              let chi = if i = nk then hi else ikey t n i in
              walk (child t n i) (level - 1) clo chi
            done
          end
        in
        walk (root t) (height t) min_int max_int;
        (* leaf chain must visit exactly the tree's leaves, in order *)
        let chain = ref [] in
        let rec follow n guard =
          if n <> 0 then
            if guard > 1_000_000 then err "leaf chain cycle"
            else begin
              chain := n :: !chain;
              follow (lnext t n) (guard + 1)
            end
        in
        follow (leftmost_leaf t) 0;
        if List.sort compare !chain <> List.sort compare !leaves_seen then
          err "leaf chain does not match tree leaves";
        if !count <> P.load t.p (t.obj + o_count) then
          err "count %d but %d keys" (P.load t.p (t.obj + o_count)) !count;
        let sorted = to_list t in
        if List.sort compare sorted <> sorted then err "scan not sorted";
        match !errors with
        | [] -> Ok ()
        | es -> Error (String.concat "; " es))
end
