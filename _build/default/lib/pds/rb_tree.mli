(** Persistent red-black tree map (CLRS-style with parent pointers and an
    allocated nil sentinel), integer keys to word values — the paper's
    "many stores per transaction" structure. *)

module Make (P : Romulus.Ptm_intf.S) : sig
  type t

  val create : P.t -> root:int -> t
  val attach : P.t -> root:int -> t

  (** Insert or overwrite; true when the key was new. *)
  val put : t -> int -> int -> bool

  val get : t -> int -> int option
  val mem : t -> int -> bool
  val remove : t -> int -> bool

  (** Ascending fold over the bindings. *)
  val fold : t -> ('a -> int -> int -> 'a) -> 'a -> 'a

  (** Ascending fold over the bindings with [lo <= key <= hi]; visits only
      the relevant subtrees. *)
  val fold_range : t -> lo:int -> hi:int -> ('a -> int -> int -> 'a) -> 'a -> 'a

  (** Smallest binding with key >= the argument. *)
  val find_first : t -> int -> (int * int) option

  val to_list : t -> (int * int) list
  val length : t -> int

  (** Full red-black invariant check: BST order, black root, no red-red
      edges, equal black heights, parent consistency, count. *)
  val check : t -> (unit, string) result
end
