(* Small persistent containers: a single typed cell, a fixed array and a
   length-prefixed string box.  These are the ergonomic building blocks a
   user reaches for before writing a full data structure — each one is a
   thin, crash-atomic veneer over the PTM's word/blob accesses. *)

module Make (P : Romulus.Ptm_intf.S) = struct
  (* ---- a single persistent word ---- *)
  module Cell = struct
    type t = { p : P.t; addr : int }

    let create p ~root v =
      P.update_tx p (fun () ->
          let addr = P.alloc p 8 in
          P.store p addr v;
          P.set_root p root addr;
          { p; addr })

    let attach p ~root =
      match P.read_tx p (fun () -> P.get_root p root) with
      | 0 -> invalid_arg "Pbox.Cell.attach: empty root"
      | addr -> { p; addr }

    let get t = P.read_tx t.p (fun () -> P.load t.p t.addr)

    let set t v = P.update_tx t.p (fun () -> P.store t.p t.addr v)

    (* atomic read-modify-write *)
    let update t f =
      P.update_tx t.p (fun () ->
          let v = f (P.load t.p t.addr) in
          P.store t.p t.addr v;
          v)

    let incr t = update t (fun v -> v + 1)
  end

  (* ---- a fixed-size persistent word array ---- *)
  module Array_ = struct
    type t = { p : P.t; base : int; length : int }

    let header_bytes = 8 (* the length, for attach *)

    let create p ~root n =
      if n < 0 then invalid_arg "Pbox.Array_.create: negative length";
      P.update_tx p (fun () ->
          let base = P.alloc p (header_bytes + (8 * n)) in
          P.store p base n;
          for i = 0 to n - 1 do
            P.store p (base + header_bytes + (8 * i)) 0
          done;
          P.set_root p root base;
          { p; base; length = n })

    let attach p ~root =
      match P.read_tx p (fun () -> P.get_root p root) with
      | 0 -> invalid_arg "Pbox.Array_.attach: empty root"
      | base ->
        let length = P.read_tx p (fun () -> P.load p base) in
        { p; base; length }

    let length t = t.length

    let addr t i =
      if i < 0 || i >= t.length then
        invalid_arg
          (Printf.sprintf "Pbox.Array_: index %d out of bounds [0, %d)" i
             t.length);
      t.base + header_bytes + (8 * i)

    let get t i = P.read_tx t.p (fun () -> P.load t.p (addr t i))

    let set t i v = P.update_tx t.p (fun () -> P.store t.p (addr t i) v)

    (* atomically swap two slots (the SPS kernel) *)
    let swap t i j =
      P.update_tx t.p (fun () ->
          let a = P.load t.p (addr t i) and b = P.load t.p (addr t j) in
          P.store t.p (addr t i) b;
          P.store t.p (addr t j) a)

    let to_list t =
      P.read_tx t.p (fun () ->
          List.init t.length (fun i -> P.load t.p (addr t i)))

    let fill t v =
      P.update_tx t.p (fun () ->
          for i = 0 to t.length - 1 do
            P.store t.p (addr t i) v
          done)
  end

  (* ---- a persistent string box (replaced wholesale on set) ---- *)
  module Str = struct
    type t = { p : P.t; slot : int (* holds a pointer to the blob *) }

    let blob_of p s =
      let b = P.alloc p (8 + String.length s) in
      P.store p b (String.length s);
      if String.length s > 0 then P.store_bytes p (b + 8) s;
      b

    let create p ~root s =
      P.update_tx p (fun () ->
          let slot = P.alloc p 8 in
          P.store p slot (blob_of p s);
          P.set_root p root slot;
          { p; slot })

    let attach p ~root =
      match P.read_tx p (fun () -> P.get_root p root) with
      | 0 -> invalid_arg "Pbox.Str.attach: empty root"
      | slot -> { p; slot }

    let get t =
      P.read_tx t.p (fun () ->
          let b = P.load t.p t.slot in
          let len = P.load t.p b in
          if len = 0 then "" else P.load_bytes t.p (b + 8) len)

    let set t s =
      P.update_tx t.p (fun () ->
          let old = P.load t.p t.slot in
          P.store t.p t.slot (blob_of t.p s);
          P.free t.p old)
  end
end
