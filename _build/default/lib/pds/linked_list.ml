(* Persistent sorted linked-list set (Algorithm 2 of the paper): integer
   keys, ascending order, head/tail sentinels.  A functor over the PTM
   signature: the same sequential code runs on every PTM in the
   repository.

   Layout (byte offsets within an allocation):

     set object:  [0] head   [8] tail
     node:        [0] key    [8] next

   Each public operation runs in its own transaction; operations compose
   into larger transactions through nested-transaction flattening.
   Closures only write locals they first initialize, so they are safe to
   re-execute under the aborting (STM) baseline. *)

module Make (P : Romulus.Ptm_intf.S) = struct
  type t = { p : P.t; set : int (* offset of the set object *) }

  let o_head = 0
  let o_tail = 8
  let n_key = 0
  let n_next = 8
  let node_bytes = 16

  let head t = P.load t.p (t.set + o_head)
  let tail t = P.load t.p (t.set + o_tail)
  let key t n = P.load t.p (n + n_key)
  let next t n = P.load t.p (n + n_next)
  let set_next t n v = P.store t.p (n + n_next) v

  let create p ~root =
    P.update_tx p (fun () ->
        let tail = P.alloc p node_bytes in
        P.store p (tail + n_key) max_int;
        P.store p (tail + n_next) 0;
        let head = P.alloc p node_bytes in
        P.store p (head + n_key) min_int;
        P.store p (head + n_next) tail;
        let set = P.alloc p 16 in
        P.store p (set + o_head) head;
        P.store p (set + o_tail) tail;
        P.set_root p root set;
        { p; set })

  let attach p ~root =
    match P.read_tx p (fun () -> P.get_root p root) with
    | 0 -> invalid_arg "Linked_list.attach: empty root"
    | set -> { p; set }

  (* walk to the first node with key >= [k]; returns (prev, node) *)
  let find t k =
    let tail = tail t in
    let rec walk prev node =
      if node = tail || key t node >= k then (prev, node)
      else walk node (next t node)
    in
    let head = head t in
    walk head (next t head)

  let contains t k =
    P.read_tx t.p (fun () ->
        let _, node = find t k in
        node <> tail t && key t node = k)

  let add t k =
    P.update_tx t.p (fun () ->
        let prev, node = find t k in
        if node <> tail t && key t node = k then false
        else begin
          let n = P.alloc t.p node_bytes in
          P.store t.p (n + n_key) k;
          P.store t.p (n + n_next) node;
          set_next t prev n;
          true
        end)

  let remove t k =
    P.update_tx t.p (fun () ->
        let prev, node = find t k in
        if node = tail t || key t node <> k then false
        else begin
          set_next t prev (next t node);
          P.free t.p node;
          true
        end)

  (* ascending fold over the keys *)
  let fold t f init =
    P.read_tx t.p (fun () ->
        let tail = tail t in
        let rec walk node acc =
          if node = tail then acc else walk (next t node) (f acc (key t node))
        in
        walk (next t (head t)) init)

  let to_list t = List.rev (fold t (fun acc k -> k :: acc) [])

  let length t = fold t (fun acc _ -> acc + 1) 0

  (* structural check: strictly ascending keys, proper sentinels *)
  let check t =
    P.read_tx t.p (fun () ->
        let tail = tail t in
        let rec walk prev_key node =
          if node = 0 then Error "null node before tail"
          else if node = tail then Ok ()
          else
            let k = key t node in
            if k <= prev_key then
              Error (Printf.sprintf "keys not ascending: %d after %d" k prev_key)
            else walk k (next t node)
        in
        walk min_int (next t (head t)))
end
