(* Persistent FIFO queue: a singly-linked list with head and tail
   pointers.  Enqueue links at the tail, dequeue unlinks at the head;
   both are single crash-atomic transactions. *)

module Make (P : Romulus.Ptm_intf.S) = struct
  type t = { p : P.t; obj : int }

  let o_head = 0
  let o_tail = 8
  let o_length = 16
  let obj_bytes = 24

  let n_value = 0
  let n_next = 8
  let node_bytes = 16

  let create p ~root =
    P.update_tx p (fun () ->
        let obj = P.alloc p obj_bytes in
        P.store p (obj + o_head) 0;
        P.store p (obj + o_tail) 0;
        P.store p (obj + o_length) 0;
        P.set_root p root obj;
        { p; obj })

  let attach p ~root =
    match P.read_tx p (fun () -> P.get_root p root) with
    | 0 -> invalid_arg "Pqueue.attach: empty root"
    | obj -> { p; obj }

  let length t = P.read_tx t.p (fun () -> P.load t.p (t.obj + o_length))

  let is_empty t = length t = 0

  let enqueue t v =
    P.update_tx t.p (fun () ->
        let n = P.alloc t.p node_bytes in
        P.store t.p (n + n_value) v;
        P.store t.p (n + n_next) 0;
        (match P.load t.p (t.obj + o_tail) with
         | 0 -> P.store t.p (t.obj + o_head) n
         | tail -> P.store t.p (tail + n_next) n);
        P.store t.p (t.obj + o_tail) n;
        P.store t.p (t.obj + o_length) (P.load t.p (t.obj + o_length) + 1))

  let dequeue t =
    P.update_tx t.p (fun () ->
        match P.load t.p (t.obj + o_head) with
        | 0 -> None
        | n ->
          let v = P.load t.p (n + n_value) in
          let next = P.load t.p (n + n_next) in
          P.store t.p (t.obj + o_head) next;
          if next = 0 then P.store t.p (t.obj + o_tail) 0;
          P.store t.p (t.obj + o_length) (P.load t.p (t.obj + o_length) - 1);
          P.free t.p n;
          Some v)

  let peek t =
    P.read_tx t.p (fun () ->
        match P.load t.p (t.obj + o_head) with
        | 0 -> None
        | n -> Some (P.load t.p (n + n_value)))

  (* head-first (dequeue order) *)
  let to_list t =
    P.read_tx t.p (fun () ->
        let rec walk n acc =
          if n = 0 then List.rev acc
          else walk (P.load t.p (n + n_next)) (P.load t.p (n + n_value) :: acc)
        in
        walk (P.load t.p (t.obj + o_head)) [])

  let check t =
    P.read_tx t.p (fun () ->
        let head = P.load t.p (t.obj + o_head) in
        let tail = P.load t.p (t.obj + o_tail) in
        let rec walk n last acc =
          if n = 0 then Ok (last, acc)
          else if acc > 1_000_000 then Error "cycle in queue"
          else walk (P.load t.p (n + n_next)) n (acc + 1)
        in
        match walk head 0 0 with
        | Error e -> Error e
        | Ok (last, count) ->
          if count <> P.load t.p (t.obj + o_length) then
            Error
              (Printf.sprintf "length %d but %d nodes"
                 (P.load t.p (t.obj + o_length))
                 count)
          else if last <> tail then Error "tail pointer does not match walk"
          else if (head = 0) <> (tail = 0) then Error "head/tail null mismatch"
          else Ok ())
end
