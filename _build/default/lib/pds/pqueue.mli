(** Persistent FIFO queue; enqueue/dequeue are single crash-atomic
    transactions. *)

module Make (P : Romulus.Ptm_intf.S) : sig
  type t

  val create : P.t -> root:int -> t
  val attach : P.t -> root:int -> t
  val enqueue : t -> int -> unit
  val dequeue : t -> int option
  val peek : t -> int option
  val length : t -> int
  val is_empty : t -> bool

  (** Dequeue-order contents. *)
  val to_list : t -> int list

  val check : t -> (unit, string) result
end
