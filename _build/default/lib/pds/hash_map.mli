(** Persistent hash map with chaining, integer keys and word values.
    The resizable flavour maintains a shared element counter that drives
    bucket doubling (the contention point of §6.2); the fixed flavour is
    the statically-dimensioned variant of Figure 5. *)

module Make (P : Romulus.Ptm_intf.S) : sig
  type t

  val create :
    ?resizable:bool -> ?initial_buckets:int -> P.t -> root:int -> t

  val attach : ?resizable:bool -> P.t -> root:int -> t

  (** Insert or overwrite; true when the key was new. *)
  val put : t -> int -> int -> bool

  val get : t -> int -> int option
  val mem : t -> int -> bool
  val remove : t -> int -> bool
  val fold : t -> ('a -> int -> int -> 'a) -> 'a -> 'a
  val length : t -> int

  (** Current bucket count (tests). *)
  val nbuckets : t -> int

  (** Structural invariant check. *)
  val check : t -> (unit, string) result
end
