(** Persistent LIFO stack; push/pop are single crash-atomic
    transactions. *)

module Make (P : Romulus.Ptm_intf.S) : sig
  type t

  val create : P.t -> root:int -> t
  val attach : P.t -> root:int -> t
  val push : t -> int -> unit
  val pop : t -> int option
  val peek : t -> int option
  val length : t -> int
  val is_empty : t -> bool

  (** Top-first contents. *)
  val to_list : t -> int list

  val check : t -> (unit, string) result
end
