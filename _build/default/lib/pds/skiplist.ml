(* Persistent skiplist set: integer keys in ascending order, towers of
   forward pointers.  Levels are derived deterministically from a hash of
   the key (the number of trailing zero bits, capped), which keeps the
   structure identical across re-executions — important because the
   aborting STM baseline may run an insert closure more than once.

   Layout:

     set object:  [0] head (tower of max_level pointers)  [8] count
     node:        [0] key  [8] level  [16..16+8*level) forward pointers

   The head tower's pointers are the roots of each level; level 0 links
   every node, exactly like the sorted linked list. *)

module Make (P : Romulus.Ptm_intf.S) = struct
  type t = { p : P.t; obj : int; head : int }

  let max_level = 16

  let o_head = 0
  let o_count = 8
  let obj_bytes = 16

  let n_key = 0
  let n_level = 8
  let n_fwd = 16

  let node_bytes level = n_fwd + (8 * level)

  (* deterministic tower height in [1, max_level] *)
  let level_for key =
    let h = (key * 0x2545F4914F6CDD1D) land max_int in
    let rec count l h =
      if l >= max_level || h land 1 = 1 then l else count (l + 1) (h lsr 1)
    in
    count 1 h

  let fwd t n i = P.load t.p (n + n_fwd + (8 * i))
  let set_fwd t n i v = P.store t.p (n + n_fwd + (8 * i)) v
  let key t n = P.load t.p (n + n_key)

  let create p ~root =
    P.update_tx p (fun () ->
        let head = P.alloc p (node_bytes max_level) in
        P.store p (head + n_key) min_int;
        P.store p (head + n_level) max_level;
        for i = 0 to max_level - 1 do
          P.store p (head + n_fwd + (8 * i)) 0
        done;
        let obj = P.alloc p obj_bytes in
        P.store p (obj + o_head) head;
        P.store p (obj + o_count) 0;
        P.set_root p root obj;
        { p; obj; head })

  let attach p ~root =
    match P.read_tx p (fun () -> P.get_root p root) with
    | 0 -> invalid_arg "Skiplist.attach: empty root"
    | obj ->
      let head = P.read_tx p (fun () -> P.load p (obj + o_head)) in
      { p; obj; head }

  (* the update array: at each level, the rightmost node < k *)
  let find_predecessors t k =
    let preds = Array.make max_level t.head in
    let node = ref t.head in
    for i = max_level - 1 downto 0 do
      let rec advance () =
        let next = fwd t !node i in
        if next <> 0 && key t next < k then begin
          node := next;
          advance ()
        end
      in
      advance ();
      preds.(i) <- !node
    done;
    preds

  let contains t k =
    P.read_tx t.p (fun () ->
        let preds = find_predecessors t k in
        let candidate = fwd t preds.(0) 0 in
        candidate <> 0 && key t candidate = k)

  let add t k =
    P.update_tx t.p (fun () ->
        let preds = find_predecessors t k in
        let candidate = fwd t preds.(0) 0 in
        if candidate <> 0 && key t candidate = k then false
        else begin
          let level = level_for k in
          let n = P.alloc t.p (node_bytes level) in
          P.store t.p (n + n_key) k;
          P.store t.p (n + n_level) level;
          for i = 0 to level - 1 do
            set_fwd t n i (fwd t preds.(i) i);
            set_fwd t preds.(i) i n
          done;
          P.store t.p (t.obj + o_count) (P.load t.p (t.obj + o_count) + 1);
          true
        end)

  let remove t k =
    P.update_tx t.p (fun () ->
        let preds = find_predecessors t k in
        let victim = fwd t preds.(0) 0 in
        if victim = 0 || key t victim <> k then false
        else begin
          let level = P.load t.p (victim + n_level) in
          for i = 0 to level - 1 do
            if fwd t preds.(i) i = victim then
              set_fwd t preds.(i) i (fwd t victim i)
          done;
          P.free t.p victim;
          P.store t.p (t.obj + o_count) (P.load t.p (t.obj + o_count) - 1);
          true
        end)

  let length t = P.read_tx t.p (fun () -> P.load t.p (t.obj + o_count))

  (* ascending fold over the keys (level-0 walk) *)
  let fold t f init =
    P.read_tx t.p (fun () ->
        let rec walk n acc =
          if n = 0 then acc else walk (fwd t n 0) (f acc (key t n))
        in
        walk (fwd t t.head 0) init)

  let to_list t = List.rev (fold t (fun acc k -> k :: acc) [])

  (* invariants: each level is a sorted sublist of the level below, node
     levels match their tower heights, and the count is right *)
  let check t =
    P.read_tx t.p (fun () ->
        let errors = ref [] in
        let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
        (* level 0: sorted, count *)
        let level0 = ref [] in
        let rec walk0 n prev count =
          if n = 0 then count
          else begin
            let k = key t n in
            if k <= prev then err "level 0 not ascending at %d" k;
            level0 := k :: !level0;
            if count > 1_000_000 then (
              err "cycle at level 0";
              count)
            else walk0 (fwd t n 0) k (count + 1)
          end
        in
        let n0 = walk0 (fwd t t.head 0) min_int 0 in
        if n0 <> P.load t.p (t.obj + o_count) then
          err "count %d but %d nodes" (P.load t.p (t.obj + o_count)) n0;
        let keys0 = !level0 in
        (* upper levels: sorted sublists of level 0, towers tall enough *)
        for i = 1 to max_level - 1 do
          let rec walk n prev =
            if n <> 0 then begin
              let k = key t n in
              if k <= prev then err "level %d not ascending at %d" i k;
              if P.load t.p (n + n_level) <= i then
                err "node %d linked above its level" k;
              if not (List.mem k keys0) then
                err "key %d at level %d missing from level 0" k i;
              walk (fwd t n i) k
            end
          in
          walk (fwd t t.head i) min_int
        done;
        match !errors with
        | [] -> Ok ()
        | es -> Error (String.concat "; " es))
end
