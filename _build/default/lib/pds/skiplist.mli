(** Persistent skiplist set: integer keys in ascending order.  Tower
    heights derive deterministically from a key hash, so the structure is
    identical across transaction re-executions (safe on the aborting STM
    baseline). *)

module Make (P : Romulus.Ptm_intf.S) : sig
  type t

  val create : P.t -> root:int -> t
  val attach : P.t -> root:int -> t

  (** Insert; false when the key was already present. *)
  val add : t -> int -> bool

  val remove : t -> int -> bool
  val contains : t -> int -> bool
  val length : t -> int

  (** Ascending fold over the keys. *)
  val fold : t -> ('a -> int -> 'a) -> 'a -> 'a

  val to_list : t -> int list

  (** Invariants: every level is a sorted sublist of level 0, tower
      heights honoured, count consistent. *)
  val check : t -> (unit, string) result
end
