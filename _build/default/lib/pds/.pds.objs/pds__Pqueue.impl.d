lib/pds/pqueue.ml: List Printf Romulus
