lib/pds/pbox.mli: Romulus
