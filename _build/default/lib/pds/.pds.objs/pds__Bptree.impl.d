lib/pds/bptree.ml: List Printf Romulus String
