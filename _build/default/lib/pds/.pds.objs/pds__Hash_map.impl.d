lib/pds/hash_map.ml: Hashtbl Printf Romulus String
