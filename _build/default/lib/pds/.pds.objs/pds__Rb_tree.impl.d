lib/pds/rb_tree.ml: List Printf Romulus String
