lib/pds/skiplist.ml: Array List Printf Romulus String
