lib/pds/linked_list.mli: Romulus
