lib/pds/pstack.mli: Romulus
