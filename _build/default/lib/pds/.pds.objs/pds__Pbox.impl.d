lib/pds/pbox.ml: List Printf Romulus String
