lib/pds/pqueue.mli: Romulus
