lib/pds/pstack.ml: List Printf Romulus
