lib/pds/bptree.mli: Romulus
