lib/pds/linked_list.ml: List Printf Romulus
