lib/pds/rb_tree.mli: Romulus
