lib/pds/skiplist.mli: Romulus
