lib/pds/hash_map.mli: Romulus
