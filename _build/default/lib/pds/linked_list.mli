(** Persistent sorted linked-list set (Algorithm 2 of the paper): integer
    keys, head/tail sentinels.  The same sequential code runs on every
    PTM in the repository. *)

module Make (P : Romulus.Ptm_intf.S) : sig
  type t

  (** Allocate an empty set and store it in the given root slot. *)
  val create : P.t -> root:int -> t

  (** Re-attach to a set created earlier (after a restart). *)
  val attach : P.t -> root:int -> t

  (** Insert; false when the key was already present. *)
  val add : t -> int -> bool

  (** Delete; false when the key was absent. *)
  val remove : t -> int -> bool

  val contains : t -> int -> bool

  (** Ascending fold over the keys. *)
  val fold : t -> ('a -> int -> 'a) -> 'a -> 'a

  val to_list : t -> int list
  val length : t -> int

  (** Structural check: strictly ascending keys, proper sentinels. *)
  val check : t -> (unit, string) result
end
