lib/kv/romulus_db.mli: Pmem Romulus
