lib/kv/str_hash_map.mli: Romulus
