lib/kv/disk_sim.ml:
