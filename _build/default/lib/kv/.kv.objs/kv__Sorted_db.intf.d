lib/kv/sorted_db.mli: Pmem Romulus
