lib/kv/level_db.ml: Buffer Disk_sim Int32 List Map String
