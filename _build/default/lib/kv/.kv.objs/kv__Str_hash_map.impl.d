lib/kv/str_hash_map.ml: Char Hashtbl Printf Romulus String
