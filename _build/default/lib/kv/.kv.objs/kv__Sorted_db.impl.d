lib/kv/sorted_db.ml: Romulus Str_bptree
