lib/kv/romulus_db.ml: Romulus Str_hash_map
