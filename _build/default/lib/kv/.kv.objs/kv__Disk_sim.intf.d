lib/kv/disk_sim.mli:
