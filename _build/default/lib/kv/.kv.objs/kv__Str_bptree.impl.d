lib/kv/str_bptree.ml: List Printf Romulus String
