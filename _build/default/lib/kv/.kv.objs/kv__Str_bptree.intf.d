lib/kv/str_bptree.mli: Romulus
