lib/kv/level_db.mli: Disk_sim
