(* Persistent hash map with string keys and string values — the backing
   structure of RomulusDB (§6.4).  Keys and values are stored as
   length-prefixed blobs; values are reallocated on overwrite.

   Layout:

     map object:  [0] buckets  [8] nbuckets  [16] count
     node:        [0] next  [8] key blob  [16] value blob
     blob:        [0] length  [8..] bytes *)

module Make (P : Romulus.Ptm_intf.S) = struct
  type t = { p : P.t; map : int }

  let o_buckets = 0
  let o_nbuckets = 8
  let o_count = 16
  let map_bytes = 24

  let n_next = 0
  let n_key = 8
  let n_value = 16
  let node_bytes = 24

  (* FNV-1a over the key bytes; deterministic across runs *)
  let hash_str s =
    let h = ref 0x4bf29ce484222325 (* FNV offset basis, truncated to 63 bits *) in
    String.iter
      (fun c ->
        h := (!h lxor Char.code c) * 0x100000001b3)
      s;
    !h land max_int

  let create ?(initial_buckets = 64) p ~root =
    P.update_tx p (fun () ->
        let buckets = P.alloc p (8 * initial_buckets) in
        for i = 0 to initial_buckets - 1 do
          P.store p (buckets + (8 * i)) 0
        done;
        let map = P.alloc p map_bytes in
        P.store p (map + o_buckets) buckets;
        P.store p (map + o_nbuckets) initial_buckets;
        P.store p (map + o_count) 0;
        P.set_root p root map;
        { p; map })

  let attach p ~root =
    match P.read_tx p (fun () -> P.get_root p root) with
    | 0 -> invalid_arg "Str_hash_map.attach: empty root"
    | map -> { p; map }

  let open_or_create ?initial_buckets p ~root =
    match P.read_tx p (fun () -> P.get_root p root) with
    | 0 -> create ?initial_buckets p ~root
    | _ -> attach p ~root

  let buckets t = P.load t.p (t.map + o_buckets)
  let nbuckets t = P.load t.p (t.map + o_nbuckets)
  let count t = P.load t.p (t.map + o_count)

  (* ---- blobs ---- *)

  let alloc_blob t s =
    let b = P.alloc t.p (8 + String.length s) in
    P.store t.p b (String.length s);
    if String.length s > 0 then P.store_bytes t.p (b + 8) s;
    b

  let blob_string t b =
    let len = P.load t.p b in
    if len = 0 then "" else P.load_bytes t.p (b + 8) len

  let blob_equals t b s =
    P.load t.p b = String.length s && blob_string t b = s

  (* ---- buckets ---- *)

  let slot_for _t ~buckets ~nbuckets k = buckets + (8 * (hash_str k mod nbuckets))

  (* (pred_field_addr, node | 0) *)
  let find_in_bucket t slot k =
    let rec walk pred node =
      if node = 0 then (pred, 0)
      else if blob_equals t (P.load t.p (node + n_key)) k then (pred, node)
      else walk (node + n_next) (P.load t.p (node + n_next))
    in
    walk slot (P.load t.p slot)

  let get t k =
    P.read_tx t.p (fun () ->
        let slot = slot_for t ~buckets:(buckets t) ~nbuckets:(nbuckets t) k in
        let _, node = find_in_bucket t slot k in
        if node = 0 then None
        else Some (blob_string t (P.load t.p (node + n_value))))

  let mem t k = get t k <> None

  let resize t =
    let old_buckets = buckets t in
    let old_n = nbuckets t in
    let new_n = 2 * old_n in
    let new_buckets = P.alloc t.p (8 * new_n) in
    for i = 0 to new_n - 1 do
      P.store t.p (new_buckets + (8 * i)) 0
    done;
    for i = 0 to old_n - 1 do
      let rec move node =
        if node <> 0 then begin
          let succ = P.load t.p (node + n_next) in
          let k = blob_string t (P.load t.p (node + n_key)) in
          let slot = slot_for t ~buckets:new_buckets ~nbuckets:new_n k in
          P.store t.p (node + n_next) (P.load t.p slot);
          P.store t.p slot node;
          move succ
        end
      in
      move (P.load t.p (old_buckets + (8 * i)))
    done;
    P.store t.p (t.map + o_buckets) new_buckets;
    P.store t.p (t.map + o_nbuckets) new_n;
    P.free t.p old_buckets

  (* insert or overwrite; returns true when the key was new *)
  let put t k v =
    P.update_tx t.p (fun () ->
        let slot = slot_for t ~buckets:(buckets t) ~nbuckets:(nbuckets t) k in
        let _, node = find_in_bucket t slot k in
        if node <> 0 then begin
          P.free t.p (P.load t.p (node + n_value));
          P.store t.p (node + n_value) (alloc_blob t v);
          false
        end
        else begin
          let n = P.alloc t.p node_bytes in
          P.store t.p (n + n_key) (alloc_blob t k);
          P.store t.p (n + n_value) (alloc_blob t v);
          P.store t.p (n + n_next) (P.load t.p slot);
          P.store t.p slot n;
          let c = count t + 1 in
          P.store t.p (t.map + o_count) c;
          if c > 2 * nbuckets t then resize t;
          true
        end)

  let remove t k =
    P.update_tx t.p (fun () ->
        let slot = slot_for t ~buckets:(buckets t) ~nbuckets:(nbuckets t) k in
        let pred, node = find_in_bucket t slot k in
        if node = 0 then false
        else begin
          P.store t.p pred (P.load t.p (node + n_next));
          P.free t.p (P.load t.p (node + n_key));
          P.free t.p (P.load t.p (node + n_value));
          P.free t.p node;
          P.store t.p (t.map + o_count) (count t - 1);
          true
        end)

  (* fold in bucket order; [reverse] walks the buckets backwards (the
     traversal order is irrelevant for a hash map, which is the point the
     paper makes about readseq vs readreverse on RomulusDB) *)
  let fold ?(reverse = false) t f init =
    P.read_tx t.p (fun () ->
        let buckets = buckets t and n = nbuckets t in
        let acc = ref init in
        let visit i =
          let rec walk node =
            if node <> 0 then begin
              acc :=
                f !acc
                  (blob_string t (P.load t.p (node + n_key)))
                  (blob_string t (P.load t.p (node + n_value)));
              walk (P.load t.p (node + n_next))
            end
          in
          walk (P.load t.p (buckets + (8 * i)))
        in
        if reverse then
          for i = n - 1 downto 0 do visit i done
        else
          for i = 0 to n - 1 do visit i done;
        !acc)

  let iter ?reverse t f = fold ?reverse t (fun () k v -> f k v) ()

  let length t = P.read_tx t.p (fun () -> count t)

  let check t =
    P.read_tx t.p (fun () ->
        let n = nbuckets t in
        let seen = Hashtbl.create 64 in
        let errors = ref [] in
        let bks = buckets t in
        for i = 0 to n - 1 do
          let rec walk node =
            if node <> 0 then begin
              let k = blob_string t (P.load t.p (node + n_key)) in
              if hash_str k mod n <> i then
                errors := Printf.sprintf "key %S in wrong bucket" k :: !errors;
              if Hashtbl.mem seen k then
                errors := Printf.sprintf "duplicate key %S" k :: !errors;
              Hashtbl.replace seen k ();
              walk (P.load t.p (node + n_next))
            end
          in
          walk (P.load t.p (bks + (8 * i)))
        done;
        if count t <> Hashtbl.length seen then
          errors :=
            Printf.sprintf "count %d but %d nodes" (count t)
              (Hashtbl.length seen)
            :: !errors;
        match !errors with
        | [] -> Ok ()
        | es -> Error (String.concat "; " es))
end
