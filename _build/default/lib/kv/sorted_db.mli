(** Sorted RomulusDB: the LevelDB interface over a persistent string
    B+tree — key-ordered iteration and range scans, unlike the
    hash-ordered RomulusDB of §6.4. *)

module Make (P : Romulus.Ptm_intf.S) : sig
  type t

  val open_db : Pmem.Region.t -> t
  val put : t -> string -> string -> unit
  val get : t -> string -> string option
  val delete : t -> string -> bool
  val count : t -> int

  (** All-or-nothing batch: one transaction, one set of fences. *)
  val write_batch : t -> (t -> unit) -> unit

  (** Ascending-key iteration. *)
  val iter : t -> (string -> string -> unit) -> unit

  (** Inclusive range scan, ascending. *)
  val iter_range :
    t -> lo:string -> hi:string -> (string -> string -> unit) -> unit

  val check : t -> (unit, string) result
end

module Default : module type of Make (Romulus.Logged)
