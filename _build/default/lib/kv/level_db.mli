(** LevelDB-like baseline (§6.4): a sorted in-memory table plus a
    write-ahead journal on a simulated block device.

    Durability model: by default writes are buffered and the journal is
    fdatasync'ed roughly every [sync_every_bytes] (~1000 kB) — a crash
    loses every write since the last sync.  With [~sync:true]
    (WriteOptions.sync) every write pays a full fdatasync. *)

type t

val create :
  ?sync_every_bytes:int ->
  ?get_ns:int ->
  ?scan_entry_ns:int ->
  ?put_ns:int ->
  ?disk:Disk_sim.t ->
  unit ->
  t

val disk : t -> Disk_sim.t
val put : ?sync:bool -> t -> string -> string -> unit
val delete : ?sync:bool -> t -> string -> unit
val get : t -> string -> string option
val count : t -> int

(** Ascending-key iteration. *)
val iter : t -> (string -> string -> unit) -> unit

val iter_reverse : t -> (string -> string -> unit) -> unit

(** Simulated power failure: rebuild the memtable by replaying the synced
    journal prefix. *)
val crash : t -> unit
