(** Persistent hash map with string keys and values — RomulusDB's backing
    structure.  Keys and values are length-prefixed blobs; values are
    reallocated on overwrite; the bucket array doubles under load. *)

module Make (P : Romulus.Ptm_intf.S) : sig
  type t

  val create : ?initial_buckets:int -> P.t -> root:int -> t
  val attach : P.t -> root:int -> t
  val open_or_create : ?initial_buckets:int -> P.t -> root:int -> t

  (** Insert or overwrite; true when the key was new. *)
  val put : t -> string -> string -> bool

  val get : t -> string -> string option
  val mem : t -> string -> bool
  val remove : t -> string -> bool

  (** Fold in bucket order; [reverse] walks the buckets backwards. *)
  val fold : ?reverse:bool -> t -> ('a -> string -> string -> 'a) -> 'a -> 'a

  val iter : ?reverse:bool -> t -> (string -> string -> unit) -> unit
  val length : t -> int

  (** Structural invariant check. *)
  val check : t -> (unit, string) result
end
