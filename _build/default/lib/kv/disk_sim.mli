(** Simulated block device with an OS page cache for the LevelDB-like
    baseline: appends accumulate in the cache until an [fdatasync] makes
    them durable.  All costs are virtual nanoseconds, so benchmark runs
    are deterministic. *)

type t

val create :
  ?write_ns_base:int ->
  ?write_ns_per_16bytes:int ->
  ?fdatasync_ns:int ->
  unit ->
  t

(** Append [n] bytes; returns the end offset. *)
val write : t -> int -> int

val fdatasync : t -> unit

(** Charge an arbitrary virtual cost (modelled read paths). *)
val charge : t -> int -> unit

(** Simulated power failure: drop everything beyond the synced prefix;
    returns the durable byte count. *)
val crash : t -> int

val appended : t -> int
val synced : t -> int
val vtime_ns : t -> int
val syncs : t -> int
val reset_vtime : t -> unit
