(* Sorted RomulusDB: the LevelDB interface over a persistent string
   B+tree instead of the paper's hash map.  Scans run in key order (and
   support ranges), matching LevelDB's iterator semantics that the
   hash-ordered RomulusDB of §6.4 deliberately traded away. *)

module Make (P : Romulus.Ptm_intf.S) = struct
  module T = Str_bptree.Make (P)

  type t = { p : P.t; tree : T.t }

  let db_root = 0

  let open_db region =
    let p = P.open_region region in
    let tree = T.open_or_create p ~root:db_root in
    { p; tree }

  let put t k v = ignore (T.put t.tree k v)
  let get t k = T.get t.tree k
  let delete t k = T.remove t.tree k
  let count t = T.length t.tree

  (* all-or-nothing batch, one set of persistence fences *)
  let write_batch t f = P.update_tx t.p (fun () -> f t)

  (* ascending-key scans, as LevelDB iterators produce them *)
  let iter t f = T.iter t.tree f

  (* inclusive range scan *)
  let iter_range t ~lo ~hi f =
    T.fold_range t.tree ~lo ~hi (fun () k v -> f k v) ()

  let check t = T.check t.tree
end

(* the default instance matches RomulusDB's PTM *)
module Default = Make (Romulus.Logged)
