(* A simulated block device with an OS page cache, for the LevelDB-like
   baseline: appended bytes sit in the page cache until an [fdatasync],
   which makes them durable at a fixed (large) cost.  All costs are
   virtual time, accounted in nanoseconds, so benchmark runs are
   deterministic.

   The cost constants are calibrated to the paper's setup (§6.1: a
   memory-mapped file in /dev/shm, so "disk" writes are cheap but the
   fdatasync system call is not). *)

type t = {
  mutable appended : int;   (* bytes written (page cache) *)
  mutable synced : int;     (* durable prefix of [appended] *)
  mutable vtime_ns : int;   (* accumulated virtual cost *)
  mutable syncs : int;      (* fdatasync calls *)
  write_ns_base : int;      (* per-write syscall overhead *)
  write_ns_per_byte : int;  (* ns per 16 bytes: journal append + memtable flush + first compaction pass *)
  fdatasync_ns : int;
}

let create ?(write_ns_base = 150) ?(write_ns_per_16bytes = 12)
    ?(fdatasync_ns = 400_000) () =
  { appended = 0; synced = 0; vtime_ns = 0; syncs = 0;
    write_ns_base; write_ns_per_byte = write_ns_per_16bytes; fdatasync_ns }

(* Append [n] bytes; returns the end offset of the write. *)
let write t n =
  t.appended <- t.appended + n;
  t.vtime_ns <- t.vtime_ns + t.write_ns_base + (n / 16 * t.write_ns_per_byte);
  t.appended

let fdatasync t =
  if t.synced < t.appended then begin
    t.synced <- t.appended;
    t.vtime_ns <- t.vtime_ns + t.fdatasync_ns;
    t.syncs <- t.syncs + 1
  end
  else begin
    (* LevelDB still pays the syscall *)
    t.vtime_ns <- t.vtime_ns + t.fdatasync_ns;
    t.syncs <- t.syncs + 1
  end

(* Simulated power failure: everything beyond the synced prefix is lost.
   Returns the durable byte count the journal can be replayed up to. *)
let crash t =
  t.appended <- t.synced;
  t.synced

(* Charge an arbitrary virtual cost (e.g. the LevelDB read path: block
   cache, index lookups, decompression). *)
let charge t ns = t.vtime_ns <- t.vtime_ns + ns

let appended t = t.appended
let synced t = t.synced
let vtime_ns t = t.vtime_ns
let syncs t = t.syncs

let reset_vtime t = t.vtime_ns <- 0
