(** Persistent B+tree with string keys and values (length-prefixed
    blobs): ordered scans and range queries for {!Sorted_db}.  Same
    structural properties as {!Pds.Bptree}. *)

module Make (P : Romulus.Ptm_intf.S) : sig
  type t

  val create : P.t -> root:int -> t
  val attach : P.t -> root:int -> t
  val open_or_create : P.t -> root:int -> t

  (** Insert or overwrite; true when the key was new. *)
  val put : t -> string -> string -> bool

  val get : t -> string -> string option
  val mem : t -> string -> bool
  val remove : t -> string -> bool
  val length : t -> int

  (** Ascending-key fold / iteration over all bindings. *)
  val fold : t -> ('a -> string -> string -> 'a) -> 'a -> 'a

  val iter : t -> (string -> string -> unit) -> unit
  val to_list : t -> (string * string) list

  (** Ascending fold over bindings with [lo <= key <= hi]. *)
  val fold_range :
    t -> lo:string -> hi:string -> ('a -> string -> string -> 'a) -> 'a -> 'a

  val check : t -> (unit, string) result
end
