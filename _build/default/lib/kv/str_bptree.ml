(* Persistent B+tree with string keys and string values — the ordered
   index behind {!Sorted_db}.  Same structure as {!Pds.Bptree} (fanout 8,
   values in chained leaves, proactive splits, lazy deletion), with keys
   and values stored as length-prefixed blobs.

   Blob ownership: a leaf owns its key and value blobs (freed when the
   entry is removed or the value overwritten).  Internal separators own
   *copies* of the keys they were split on, so leaf deletions can never
   dangle a separator.  Lazy deletion never removes separators except
   when an empty root collapses, which frees the node but leaks its
   separator copies — bounded by tree height and acceptable for a store
   whose deletes are rare relative to its inserts (the same trade
   LevelDB's tombstones make). *)

module Make (P : Romulus.Ptm_intf.S) = struct
  type t = { p : P.t; obj : int }

  let fanout = 8

  let o_root = 0
  let o_height = 8
  let o_count = 16
  let obj_bytes = 24

  let n_nkeys = 0
  let l_next = 8
  let l_keys = 16
  let l_vals = l_keys + (8 * fanout)
  let leaf_bytes = l_vals + (8 * fanout)

  let i_keys = 8
  let i_children = i_keys + (8 * (fanout - 1))
  let internal_bytes = i_children + (8 * fanout)

  (* ---- blobs ---- *)

  let alloc_blob t s =
    let b = P.alloc t.p (8 + String.length s) in
    P.store t.p b (String.length s);
    if String.length s > 0 then P.store_bytes t.p (b + 8) s;
    b

  let blob_str t b =
    let len = P.load t.p b in
    if len = 0 then "" else P.load_bytes t.p (b + 8) len

  let free_blob t b = P.free t.p b

  (* ---- node accessors ---- *)

  let nkeys t n = P.load t.p (n + n_nkeys)
  let set_nkeys t n v = P.store t.p (n + n_nkeys) v
  let lkey t n i = P.load t.p (n + l_keys + (8 * i))
  let set_lkey t n i v = P.store t.p (n + l_keys + (8 * i)) v
  let lval t n i = P.load t.p (n + l_vals + (8 * i))
  let set_lval t n i v = P.store t.p (n + l_vals + (8 * i)) v
  let lnext t n = P.load t.p (n + l_next)
  let set_lnext t n v = P.store t.p (n + l_next) v
  let ikey t n i = P.load t.p (n + i_keys + (8 * i))
  let set_ikey t n i v = P.store t.p (n + i_keys + (8 * i)) v
  let child t n i = P.load t.p (n + i_children + (8 * i))
  let set_child t n i v = P.store t.p (n + i_children + (8 * i)) v

  let root t = P.load t.p (t.obj + o_root)
  let height t = P.load t.p (t.obj + o_height)

  let new_leaf t =
    let n = P.alloc t.p leaf_bytes in
    set_nkeys t n 0;
    set_lnext t n 0;
    n

  let new_internal t =
    let n = P.alloc t.p internal_bytes in
    set_nkeys t n 0;
    n

  let create p ~root =
    P.update_tx p (fun () ->
        let obj = P.alloc p obj_bytes in
        let t = { p; obj } in
        let leaf = new_leaf t in
        P.store p (obj + o_root) leaf;
        P.store p (obj + o_height) 0;
        P.store p (obj + o_count) 0;
        P.set_root p root obj;
        t)

  let attach p ~root =
    match P.read_tx p (fun () -> P.get_root p root) with
    | 0 -> invalid_arg "Str_bptree.attach: empty root"
    | obj -> { p; obj }

  let open_or_create p ~root =
    match P.read_tx p (fun () -> P.get_root p root) with
    | 0 -> create p ~root
    | _ -> attach p ~root

  let length t = P.read_tx t.p (fun () -> P.load t.p (t.obj + o_count))

  (* ---- search ---- *)

  let child_index t n k =
    let nk = nkeys t n in
    let rec scan i =
      if i < nk && String.compare k (blob_str t (ikey t n i)) >= 0 then
        scan (i + 1)
      else i
    in
    scan 0

  let leaf_position t n k =
    let nk = nkeys t n in
    let rec scan i =
      if i >= nk then `Insert_at i
      else
        let c = String.compare (blob_str t (lkey t n i)) k in
        if c = 0 then `Found i
        else if c > 0 then `Insert_at i
        else scan (i + 1)
    in
    scan 0

  let rec descend_to_leaf t n level k =
    if level = 0 then n
    else descend_to_leaf t (child t n (child_index t n k)) (level - 1) k

  let get t k =
    P.read_tx t.p (fun () ->
        let leaf = descend_to_leaf t (root t) (height t) k in
        match leaf_position t leaf k with
        | `Found i -> Some (blob_str t (lval t leaf i))
        | `Insert_at _ -> None)

  let mem t k = get t k <> None

  (* ---- splits ---- *)

  let split_leaf t leaf =
    let half = fanout / 2 in
    let right = new_leaf t in
    for j = 0 to fanout - half - 1 do
      set_lkey t right j (lkey t leaf (half + j));
      set_lval t right j (lval t leaf (half + j))
    done;
    set_nkeys t right (fanout - half);
    set_nkeys t leaf half;
    set_lnext t right (lnext t leaf);
    set_lnext t leaf right;
    (* the separator gets its own copy of the key *)
    (alloc_blob t (blob_str t (lkey t right 0)), right)

  let split_internal t node =
    let total = fanout - 1 in
    let mid = total / 2 in
    let right = new_internal t in
    let moved = total - mid - 1 in
    for j = 0 to moved - 1 do
      set_ikey t right j (ikey t node (mid + 1 + j))
    done;
    for j = 0 to moved do
      set_child t right j (child t node (mid + 1 + j))
    done;
    set_nkeys t right moved;
    let sep = ikey t node mid in
    set_nkeys t node mid;
    (sep, right)

  let insert_into_internal t n i sep right =
    let nk = nkeys t n in
    for j = nk - 1 downto i do
      set_ikey t n (j + 1) (ikey t n j)
    done;
    for j = nk downto i + 1 do
      set_child t n (j + 1) (child t n j)
    done;
    set_ikey t n i sep;
    set_child t n (i + 1) right;
    set_nkeys t n (nk + 1)

  let node_full t n ~leaf = nkeys t n >= if leaf then fanout else fanout - 1

  let grow_root t sep left right =
    let nr = new_internal t in
    set_ikey t nr 0 sep;
    set_child t nr 0 left;
    set_child t nr 1 right;
    set_nkeys t nr 1;
    P.store t.p (t.obj + o_root) nr;
    P.store t.p (t.obj + o_height) (height t + 1)

  (* insert or overwrite; true when the key was new *)
  let put t k v =
    P.update_tx t.p (fun () ->
        (if height t = 0 then begin
           if node_full t (root t) ~leaf:true then begin
             let sep, right = split_leaf t (root t) in
             grow_root t sep (root t) right
           end
         end
         else if node_full t (root t) ~leaf:false then begin
           let sep, right = split_internal t (root t) in
           grow_root t sep (root t) right
         end);
        let rec walk n level =
          if level = 0 then begin
            match leaf_position t n k with
            | `Found i ->
              free_blob t (lval t n i);
              set_lval t n i (alloc_blob t v);
              false
            | `Insert_at i ->
              let nk = nkeys t n in
              for j = nk - 1 downto i do
                set_lkey t n (j + 1) (lkey t n j);
                set_lval t n (j + 1) (lval t n j)
              done;
              set_lkey t n i (alloc_blob t k);
              set_lval t n i (alloc_blob t v);
              set_nkeys t n (nk + 1);
              P.store t.p (t.obj + o_count)
                (P.load t.p (t.obj + o_count) + 1);
              true
          end
          else begin
            let ci = child_index t n k in
            let c = child t n ci in
            if node_full t c ~leaf:(level = 1) then begin
              let sep, right =
                if level = 1 then split_leaf t c else split_internal t c
              in
              insert_into_internal t n ci sep right;
              let ci = child_index t n k in
              walk (child t n ci) (level - 1)
            end
            else walk c (level - 1)
          end
        in
        walk (root t) (height t))

  (* ---- deletion (lazy) ---- *)

  let remove t k =
    P.update_tx t.p (fun () ->
        let rec walk n level =
          if level = 0 then begin
            match leaf_position t n k with
            | `Insert_at _ -> false
            | `Found i ->
              free_blob t (lkey t n i);
              free_blob t (lval t n i);
              let nk = nkeys t n in
              for j = i to nk - 2 do
                set_lkey t n j (lkey t n (j + 1));
                set_lval t n j (lval t n (j + 1))
              done;
              set_nkeys t n (nk - 1);
              P.store t.p (t.obj + o_count)
                (P.load t.p (t.obj + o_count) - 1);
              true
          end
          else walk (child t n (child_index t n k)) (level - 1)
        in
        let removed = walk (root t) (height t) in
        let rec shrink () =
          if height t > 0 && nkeys t (root t) = 0 then begin
            let old = root t in
            P.store t.p (t.obj + o_root) (child t old 0);
            P.store t.p (t.obj + o_height) (height t - 1);
            P.free t.p old;
            shrink ()
          end
        in
        shrink ();
        removed)

  (* ---- scans ---- *)

  let leftmost_leaf t =
    let rec walk n level =
      if level = 0 then n else walk (child t n 0) (level - 1)
    in
    walk (root t) (height t)

  let fold t f init =
    P.read_tx t.p (fun () ->
        let rec leaves n acc =
          if n = 0 then acc
          else begin
            let nk = nkeys t n in
            let acc = ref acc in
            for i = 0 to nk - 1 do
              acc := f !acc (blob_str t (lkey t n i)) (blob_str t (lval t n i))
            done;
            leaves (lnext t n) !acc
          end
        in
        leaves (leftmost_leaf t) init)

  let iter t f = fold t (fun () k v -> f k v) ()

  let to_list t = List.rev (fold t (fun acc k v -> (k, v) :: acc) [])

  (* ascending fold over lo <= key <= hi *)
  let fold_range t ~lo ~hi f init =
    P.read_tx t.p (fun () ->
        let start = descend_to_leaf t (root t) (height t) lo in
        let rec leaves n acc =
          if n = 0 then acc
          else begin
            let nk = nkeys t n in
            let acc = ref acc in
            let beyond = ref false in
            for i = 0 to nk - 1 do
              let k = blob_str t (lkey t n i) in
              if String.compare k hi > 0 then beyond := true
              else if String.compare k lo >= 0 then
                acc := f !acc k (blob_str t (lval t n i))
            done;
            if !beyond then !acc else leaves (lnext t n) !acc
          end
        in
        leaves start init)

  (* ---- structural check ---- *)

  let check t =
    P.read_tx t.p (fun () ->
        let errors = ref [] in
        let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
        let count = ref 0 in
        let leaves_seen = ref [] in
        let in_range k lo hi =
          (match lo with None -> true | Some l -> String.compare k l >= 0)
          && match hi with None -> true | Some h -> String.compare k h < 0
        in
        let rec walk n level lo hi =
          if level = 0 then begin
            leaves_seen := n :: !leaves_seen;
            let nk = nkeys t n in
            if nk < 0 || nk > fanout then err "leaf %d bad nkeys %d" n nk;
            count := !count + nk;
            for i = 0 to nk - 1 do
              let k = blob_str t (lkey t n i) in
              if not (in_range k lo hi) then
                err "leaf key %S outside separator range" k;
              if i > 0 && String.compare (blob_str t (lkey t n (i - 1))) k >= 0
              then err "leaf %d keys not ascending" n
            done
          end
          else begin
            let nk = nkeys t n in
            if nk < 1 || nk > fanout - 1 then
              err "internal %d bad nkeys %d" n nk;
            for i = 0 to nk do
              let clo = if i = 0 then lo else Some (blob_str t (ikey t n (i - 1))) in
              let chi = if i = nk then hi else Some (blob_str t (ikey t n i)) in
              walk (child t n i) (level - 1) clo chi
            done
          end
        in
        walk (root t) (height t) None None;
        let chain = ref [] in
        let rec follow n guard =
          if n <> 0 then
            if guard > 1_000_000 then err "leaf chain cycle"
            else begin
              chain := n :: !chain;
              follow (lnext t n) (guard + 1)
            end
        in
        follow (leftmost_leaf t) 0;
        if List.sort compare !chain <> List.sort compare !leaves_seen then
          err "leaf chain does not match tree leaves";
        if !count <> P.load t.p (t.obj + o_count) then
          err "count %d but %d keys" (P.load t.p (t.obj + o_count)) !count;
        let sorted = List.map fst (to_list t) in
        if List.sort compare sorted <> sorted then err "scan not sorted";
        match !errors with
        | [] -> Ok ()
        | es -> Error (String.concat "; " es))
end
