(* RomulusLog: twin-copy engine with the volatile redo log of §4.7 — only
   the ranges modified by the transaction are replicated to back — with
   flat combining + C-RW-WP (the paper's "RomL"). *)

include Crwwp_front.Make (struct
  let mode = Engine.Logged
  let name = "romL"
end)
