lib/core/redo_log.mli:
