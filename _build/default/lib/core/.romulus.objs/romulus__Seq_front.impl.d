lib/core/seq_front.ml: Engine Fun Pmem
