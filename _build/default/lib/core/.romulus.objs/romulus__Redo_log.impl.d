lib/core/redo_log.ml: Array Hashtbl
