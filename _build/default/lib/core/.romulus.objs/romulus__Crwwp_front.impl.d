lib/core/crwwp_front.ml: Crwwp Domain Engine Flat_combining Fun Sync_prims Tid
