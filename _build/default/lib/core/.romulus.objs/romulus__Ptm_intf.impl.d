lib/core/ptm_intf.ml: Pmem
