lib/core/seq_front.mli: Engine Ptm_intf
