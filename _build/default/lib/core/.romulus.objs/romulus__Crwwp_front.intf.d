lib/core/crwwp_front.mli: Engine Ptm_intf
