lib/core/logged.ml: Crwwp_front Engine
