lib/core/lr.mli: Engine Ptm_intf
