lib/core/logged.mli: Engine Ptm_intf
