lib/core/basic.mli: Engine Ptm_intf
