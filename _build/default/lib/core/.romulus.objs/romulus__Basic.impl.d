lib/core/basic.ml: Crwwp_front Engine
