lib/core/engine.mli: Pmem
