lib/core/engine.ml: Palloc Pmem Printf Ptm_intf Redo_log String
