lib/core/engine.ml: Option Palloc Pmem Printf Ptm_intf Redo_log String
