lib/core/lr.ml: Domain Engine Flat_combining Fun Left_right Sync_prims Tid
