(** Volatile redo log: modified (offset, length) ranges of the current
    transaction (§4.7).  Stored in DRAM, unbounded, never persisted. *)

type t

val create : unit -> t
val clear : t -> unit

(** Record a modified range; 8-byte entries are deduplicated. *)
val add : t -> off:int -> len:int -> unit

val iter : t -> (off:int -> len:int -> unit) -> unit

(** Merge the logged ranges, in place, into maximal sorted intervals:
    after [coalesce], the entries are sorted by offset and pairwise
    neither overlapping nor adjacent, and cover exactly the union of the
    ranges added since the last {!clear}. *)
val coalesce : t -> unit
val entries : t -> int
val is_empty : t -> bool

(** Total bytes covered by the logged ranges (duplicates from blob stores
    counted as appended). *)
val bytes : t -> int
