(** Volatile redo log: modified (offset, length) ranges of the current
    transaction (§4.7).  Stored in DRAM, unbounded, never persisted. *)

type t

val create : unit -> t
val clear : t -> unit

(** Record a modified range; 8-byte entries are deduplicated. *)
val add : t -> off:int -> len:int -> unit

val iter : t -> (off:int -> len:int -> unit) -> unit
val entries : t -> int
val is_empty : t -> bool

(** Total bytes covered by the logged ranges (duplicates from blob stores
    counted as appended). *)
val bytes : t -> int
