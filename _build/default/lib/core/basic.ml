(* Romulus (basic): twin-copy engine with whole-span replication at commit,
   concurrent access via flat combining + C-RW-WP (the paper's "Rom"). *)

include Crwwp_front.Make (struct
  let mode = Engine.Full_copy
  let name = "rom"
end)
