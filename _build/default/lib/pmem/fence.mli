(** Cost/ordering models for the persistence primitives (pwb/pfence/psync). *)

type profile = {
  name : string;
  pwb_ns : int;      (** virtual latency of one persist write-back *)
  pfence_ns : int;   (** virtual latency of one persist fence *)
  psync_ns : int;    (** virtual latency of one persist sync *)
  ordered_pwb : bool;
  (** CLFLUSH semantics: pwbs persist immediately and in order, and
      pfence/psync are no-ops. *)
}

(** Supercap-backed DRAM, zero added latency. *)
val dram : profile

(** CLWB + SFENCE. *)
val clwb : profile

(** CLFLUSHOPT + SFENCE. *)
val clflushopt : profile

(** CLFLUSH; fences are no-ops (the paper's testbed). *)
val clflush : profile

(** Emulated STT-RAM: 140/200/200 ns. *)
val stt : profile

(** Emulated PCM: 340/500/500 ns. *)
val pcm : profile

val all : profile list

(** Look up a profile by name; raises [Invalid_argument] if unknown. *)
val by_name : string -> profile
