(* Fence profiles model the cost and ordering semantics of the persistence
   primitives on different hardware (§4.1 and §6.6 of the paper).

   [ordered_pwb = true] models CLFLUSH: write-backs are totally ordered with
   respect to each other, so pfence/psync degenerate to no-ops (the paper's
   Broadwell testbed).  With [ordered_pwb = false] (CLWB/CLFLUSHOPT and the
   emulated STT-RAM/PCM media) a pwb only becomes durable at the next
   pfence/psync, which is what makes crash-injection interesting. *)

type profile = {
  name : string;
  pwb_ns : int;
  pfence_ns : int;
  psync_ns : int;
  ordered_pwb : bool;
}

let dram =
  { name = "dram"; pwb_ns = 0; pfence_ns = 0; psync_ns = 0;
    ordered_pwb = false }

let clwb =
  { name = "clwb"; pwb_ns = 10; pfence_ns = 15; psync_ns = 15;
    ordered_pwb = false }

let clflushopt =
  { name = "clflushopt"; pwb_ns = 30; pfence_ns = 15; psync_ns = 15;
    ordered_pwb = false }

let clflush =
  { name = "clflush"; pwb_ns = 60; pfence_ns = 0; psync_ns = 0;
    ordered_pwb = true }

(* Injected delays for emulated media, taken from NVMOVE (Chauhan et al.),
   the same constants the paper uses in §6.1. *)
let stt =
  { name = "stt"; pwb_ns = 140; pfence_ns = 200; psync_ns = 200;
    ordered_pwb = false }

let pcm =
  { name = "pcm"; pwb_ns = 340; pfence_ns = 500; psync_ns = 500;
    ordered_pwb = false }

let all = [ dram; clwb; clflushopt; clflush; stt; pcm ]

let by_name name =
  match List.find_opt (fun p -> p.name = name) all with
  | Some p -> p
  | None -> invalid_arg ("Fence.by_name: unknown profile " ^ name)
