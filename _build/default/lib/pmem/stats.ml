(* Instrumentation counters for a persistent-memory region.

   [nvm_bytes] counts every byte stored into the region (user data, logs,
   allocator metadata, twin-copy replication), while [user_bytes] is
   credited explicitly by a PTM for the payload the user asked to store.
   Write amplification is [nvm_bytes / user_bytes].

   [delay_ns] accumulates the virtual latency injected by the active fence
   profile; benchmark harnesses add it to wall-clock time so that emulated
   STT-RAM / PCM latencies are deterministic rather than spin-waited. *)

type t = {
  mutable pwbs : int;
  mutable pfences : int;
  mutable psyncs : int;
  mutable loads : int;
  mutable stores : int;
  mutable nvm_bytes : int;
  mutable user_bytes : int;
  mutable delay_ns : int;
  mutable crashes : int;
}

let create () =
  { pwbs = 0; pfences = 0; psyncs = 0; loads = 0; stores = 0;
    nvm_bytes = 0; user_bytes = 0; delay_ns = 0; crashes = 0 }

let reset t =
  t.pwbs <- 0; t.pfences <- 0; t.psyncs <- 0; t.loads <- 0; t.stores <- 0;
  t.nvm_bytes <- 0; t.user_bytes <- 0; t.delay_ns <- 0; t.crashes <- 0

let snapshot t = { t with pwbs = t.pwbs }

(* Counters accumulated between [past] and [now]. *)
let since ~now ~past =
  { pwbs = now.pwbs - past.pwbs;
    pfences = now.pfences - past.pfences;
    psyncs = now.psyncs - past.psyncs;
    loads = now.loads - past.loads;
    stores = now.stores - past.stores;
    nvm_bytes = now.nvm_bytes - past.nvm_bytes;
    user_bytes = now.user_bytes - past.user_bytes;
    delay_ns = now.delay_ns - past.delay_ns;
    crashes = now.crashes - past.crashes }

let fences t = t.pfences + t.psyncs

let write_amplification t =
  if t.user_bytes = 0 then nan
  else float_of_int t.nvm_bytes /. float_of_int t.user_bytes

let pp ppf t =
  Format.fprintf ppf
    "pwb=%d pfence=%d psync=%d loads=%d stores=%d nvm=%dB user=%dB amp=%.2f \
     delay=%dns crashes=%d"
    t.pwbs t.pfences t.psyncs t.loads t.stores t.nvm_bytes t.user_bytes
    (write_amplification t) t.delay_ns t.crashes
