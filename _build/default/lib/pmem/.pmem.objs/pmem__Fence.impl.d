lib/pmem/fence.ml: List
