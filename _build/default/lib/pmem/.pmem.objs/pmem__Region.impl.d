lib/pmem/region.ml: Bytes Fence Fun Int64 Line_set Printf Stats String
