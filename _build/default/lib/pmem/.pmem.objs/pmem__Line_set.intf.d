lib/pmem/line_set.mli:
