lib/pmem/line_set.ml: Array Bytes
