lib/pmem/region.mli: Fence Stats
