lib/pmem/stats.ml: Format
