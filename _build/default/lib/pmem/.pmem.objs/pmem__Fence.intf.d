lib/pmem/fence.mli:
