(* Timing helper for the benchmark harness: wall-clock time plus the
   virtual latency injected by the region's fence profile (and any disk
   simulation), so that runs under emulated STT-RAM/PCM report the
   latency they would have on that medium while remaining deterministic
   and fast. *)

let now_ns () = Unix.gettimeofday () *. 1e9

(* [time_ns ?region f] runs [f ()] and returns elapsed nanoseconds,
   including the virtual delay the region accumulated during the call. *)
let time_ns ?region f =
  let delay_before =
    match region with
    | Some r -> (Pmem.Region.stats r).Pmem.Stats.delay_ns
    | None -> 0
  in
  let t0 = now_ns () in
  f ();
  let wall = now_ns () -. t0 in
  let delay_after =
    match region with
    | Some r -> (Pmem.Region.stats r).Pmem.Stats.delay_ns
    | None -> 0
  in
  wall +. float_of_int (delay_after - delay_before)

(* [ns_per_op ?region ~ops f] runs [f] [ops] times and returns the mean
   cost of one call in nanoseconds. *)
let ns_per_op ?region ~ops f =
  if ops <= 0 then invalid_arg "Bench_clock.ns_per_op";
  let total = time_ns ?region (fun () -> for _ = 1 to ops do f () done) in
  total /. float_of_int ops

(* median of [runs] measurements (the paper reports the median of 5) *)
let median_ns_per_op ?region ?(runs = 3) ~ops f =
  let samples = List.init runs (fun _ -> ns_per_op ?region ~ops f) in
  let sorted = List.sort compare samples in
  List.nth sorted (runs / 2)
