lib/workload/keygen.mli:
