lib/workload/bench_clock.mli: Pmem
