lib/workload/keygen.ml: Char Printf String
