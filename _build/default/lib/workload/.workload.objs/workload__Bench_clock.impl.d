lib/workload/bench_clock.ml: List Pmem Unix
