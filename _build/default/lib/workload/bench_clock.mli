(** Timing for the benchmark harness: wall clock plus the virtual latency
    injected by a region's fence profile, so emulated STT-RAM/PCM costs
    are reported deterministically. *)

val now_ns : unit -> float

(** Elapsed nanoseconds of [f ()], including the region's virtual
    delays. *)
val time_ns : ?region:Pmem.Region.t -> (unit -> unit) -> float

(** Mean cost of one call over [ops] iterations. *)
val ns_per_op : ?region:Pmem.Region.t -> ops:int -> (unit -> unit) -> float

(** Median of [runs] measurements of {!ns_per_op} (the paper reports the
    median of 5 runs). *)
val median_ns_per_op :
  ?region:Pmem.Region.t -> ?runs:int -> ops:int -> (unit -> unit) -> float
