(* Deterministic workload generation: a xorshift64* PRNG plus the key and
   value shapes the paper's benchmarks use (uniform random integer keys,
   LevelDB's 16-byte keys and 100-byte values, fixed-size payloads). *)

type t = { mutable state : int }

let create ?(seed = 0x12345) () = { state = (if seed = 0 then 1 else seed) }

let next t =
  let x = ref t.state in
  x := !x lxor (!x lsl 13);
  x := !x lxor (!x lsr 7);
  x := !x lxor (!x lsl 17);
  t.state <- !x;
  !x land max_int

(* uniform in [0, n) *)
let int t n =
  if n <= 0 then invalid_arg "Keygen.int: bound must be positive";
  next t mod n

let bool t = next t land 1 = 0

(* LevelDB-style 16-byte key for an index *)
let level_key i = Printf.sprintf "%016d" i

(* payload of [n] printable bytes, deterministic in the seed *)
let value t n = String.init n (fun _ -> Char.chr (97 + int t 26))

(* a fixed (non-random) payload of [n] bytes *)
let fixed_value n = String.make n 'v'
