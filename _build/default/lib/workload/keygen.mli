(** Deterministic workload generation (the xorshift64-star PRNG). *)

type t

val create : ?seed:int -> unit -> t

(** Next raw 63-bit value. *)
val next : t -> int

(** Uniform in [0, n). *)
val int : t -> int -> int

val bool : t -> bool

(** LevelDB-style 16-byte key for an index. *)
val level_key : int -> string

(** Random printable payload of [n] bytes. *)
val value : t -> int -> string

(** Fixed payload of [n] bytes. *)
val fixed_value : int -> string
