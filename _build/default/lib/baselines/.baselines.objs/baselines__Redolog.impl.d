lib/baselines/redolog.ml: Array Bytes Domain Fun Hashtbl Int64 List Palloc Pmem Romulus Spinlock String Sync_prims Tid Tinystm
