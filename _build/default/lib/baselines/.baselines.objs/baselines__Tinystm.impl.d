lib/baselines/tinystm.ml: Array Atomic
