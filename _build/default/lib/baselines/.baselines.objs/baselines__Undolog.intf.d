lib/baselines/undolog.mli: Romulus
