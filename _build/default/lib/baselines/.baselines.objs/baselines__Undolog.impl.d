lib/baselines/undolog.ml: Domain Fun Hashtbl Palloc Pmem Romulus Rwlock_rp String Sync_prims
