lib/baselines/redolog.mli: Romulus
