lib/baselines/tinystm.mli:
