(* A crash-proof job queue built from the extension containers: jobs are
   enqueued durably, workers dequeue and process them, and a power
   failure at any point loses no job and duplicates no completed job —
   because "take the job" and "record its result" happen in ONE
   transaction.

     dune exec examples/job_queue.exe *)

module P = Romulus.Logged
module Q = Pds.Pqueue.Make (P)
module B = Pds.Pbox.Make (P)

let () =
  let region = Pmem.Region.create ~size:(1 lsl 20) () in
  let ptm = P.open_region region in
  let jobs = Q.create ptm ~root:0 in
  let processed_sum = B.Cell.create ptm ~root:1 0 in
  let processed_count = B.Cell.create ptm ~root:2 0 in

  (* producer: enqueue 200 jobs (job i has payload i) *)
  for i = 1 to 200 do
    Q.enqueue jobs i
  done;
  Printf.printf "enqueued %d jobs\n" (Q.length jobs);

  let rng = Workload.Keygen.create ~seed:11 () in
  let crashes = ref 0 in

  (* worker loop: take a job and fold it into the results, atomically —
     randomly crashing in the middle of everything *)
  let process_one () =
    P.update_tx ptm (fun () ->
        match Q.dequeue jobs with
        | None -> false
        | Some job ->
          B.Cell.set processed_sum (B.Cell.get processed_sum + job);
          ignore (B.Cell.incr processed_count);
          true)
  in
  let continue = ref true in
  while !continue do
    Pmem.Region.set_trap region (Workload.Keygen.int rng 600);
    (try
       while process_one () do
         ()
       done;
       Pmem.Region.clear_trap region;
       continue := false
     with Pmem.Region.Crash_point ->
       incr crashes;
       Pmem.Region.crash region
         (Pmem.Region.Random_subset (!crashes * 31));
       P.recover ptm)
  done;

  let sum = B.Cell.get processed_sum in
  let count = B.Cell.get processed_count in
  Printf.printf
    "survived %d power failures; processed %d jobs, checksum %d\n" !crashes
    count sum;
  (* every job processed exactly once: sum 1..200 = 20100 *)
  assert (count = 200);
  assert (sum = 200 * 201 / 2);
  assert (Q.length jobs = 0);
  print_endline "no job lost, none processed twice."
