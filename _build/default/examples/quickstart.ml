(* Quickstart: durable transactions over simulated persistent memory.

   Mirrors Algorithm 3 of the paper: create a persistent linked-list set
   inside a region, mutate it transactionally, crash the machine at an
   arbitrary point, recover, and observe that committed transactions
   survived while the interrupted one rolled back.

     dune exec examples/quickstart.exe *)

module P = Romulus.Logged (* = RomulusLog, the paper's default *)
module Set = Pds.Linked_list.Make (P)

let () =
  (* a 1 MiB "NVM" region; main and back twin copies live inside *)
  let region = Pmem.Region.create ~size:(1 lsl 20) () in
  let ptm = P.open_region region in

  (* -- create the set and insert some keys, durably ----------------- *)
  let set = Set.create ptm ~root:0 in
  ignore (Set.add set 33);
  ignore (Set.add set 11);
  ignore (Set.add set 22);
  assert (Set.contains set 33);
  Printf.printf "after three adds: %s\n"
    (String.concat ", " (List.map string_of_int (Set.to_list set)));

  (* -- crash in the middle of a transaction ------------------------- *)
  (* the 12th persistence-relevant instruction from now will fail *)
  Pmem.Region.set_trap region 12;
  (match Set.add set 44 with
   | _ -> assert false
   | exception Pmem.Region.Crash_point ->
     print_endline "power failed in the middle of `add 44`!");
  (* the machine dies; any un-fenced cache line may or may not reach
     the medium — Random_subset decides line by line *)
  Pmem.Region.crash region (Pmem.Region.Random_subset 7);

  (* -- restart: open the same region again -------------------------- *)
  let ptm = P.open_region region in
  (* open_region found the Romulus magic and ran recovery *)
  let set = Set.attach ptm ~root:0 in
  Printf.printf "after crash + recovery: %s\n"
    (String.concat ", " (List.map string_of_int (Set.to_list set)));
  assert (Set.contains set 11);
  assert (Set.contains set 22);
  assert (Set.contains set 33);
  assert (not (Set.contains set 44));

  (* -- the interrupted operation can simply be retried --------------- *)
  ignore (Set.add set 44);
  Printf.printf "retried the insert: %s\n"
    (String.concat ", " (List.map string_of_int (Set.to_list set)));

  (* fence accounting: 4 persistence fences per transaction, whatever
     its size (the headline property of the paper) *)
  let stats = Pmem.Region.stats region in
  let before = Pmem.Stats.snapshot stats in
  P.update_tx ptm (fun () ->
      for i = 100 to 199 do
        ignore (Set.add set i)
      done);
  let d = Pmem.Stats.since ~now:stats ~past:before in
  Printf.printf "a 100-insert transaction used %d persistence fences\n"
    (Pmem.Stats.fences d);
  print_endline "quickstart done."
