examples/bank.mli:
