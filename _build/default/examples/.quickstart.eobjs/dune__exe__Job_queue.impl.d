examples/job_queue.ml: Pds Pmem Printf Romulus Workload
