examples/bank.ml: Pmem Printf Romulus Workload
