examples/kvstore.ml: Filename Kv List Pmem Printf Sys
