examples/concurrent_readers.ml: Atomic Domain List Pmem Printf Romulus Sync_prims
