examples/quickstart.ml: List Pds Pmem Printf Romulus String
