examples/kvstore.mli:
