examples/quickstart.mli:
