(* RomulusDB (§6.4): a persistent key-value store with the LevelDB
   interface, durable on every write — contrasted with a LevelDB-style
   store whose buffered durability loses recent writes on a crash.

     dune exec examples/kvstore.exe *)

module Db = Kv.Romulus_db.Default

let () =
  (* ---- RomulusDB: every put is a durable transaction ---- *)
  let region = Pmem.Region.create ~size:(1 lsl 22) () in
  let db = Db.open_db region in
  Db.put db "user:1" "ada";
  Db.put db "user:2" "barbara";
  Db.put db "user:3" "grace";
  Printf.printf "RomulusDB holds %d entries\n" (Db.count db);

  (* a write batch is a real transaction: all-or-nothing *)
  Db.write_batch db (fun db ->
      Db.put db "user:4" "katherine";
      Db.put db "user:5" "frances");
  assert (Db.count db = 5);

  (* power failure... *)
  Pmem.Region.crash region Pmem.Region.Drop_all;

  (* ...and everything is still there after reopening *)
  let db = Db.open_db region in
  Printf.printf "after crash + reopen: %d entries survived\n" (Db.count db);
  assert (Db.get db "user:3" = Some "grace");
  Db.iter db (fun k v -> Printf.printf "  %s -> %s\n" k v);

  (* ---- the sorted variant: key-ordered iteration + range scans ---- *)
  let sregion = Pmem.Region.create ~size:(1 lsl 21) () in
  let sdb = Kv.Sorted_db.Default.open_db sregion in
  List.iter
    (fun (k, v) -> Kv.Sorted_db.Default.put sdb k v)
    [ ("cherry", "3"); ("apple", "1"); ("banana", "2"); ("damson", "4") ];
  print_endline "\nSortedDB iterates in key order:";
  Kv.Sorted_db.Default.iter sdb (fun k v -> Printf.printf "  %s -> %s\n" k v);
  print_endline "range [banana, cherry]:";
  Kv.Sorted_db.Default.iter_range sdb ~lo:"banana" ~hi:"cherry" (fun k _ ->
      Printf.printf "  %s\n" k);

  (* ---- real file persistence: the region survives the process ---- *)
  let path = Filename.temp_file "romulusdb" ".pmem" in
  Pmem.Region.save_to_file region path;
  let region2 = Pmem.Region.load_from_file path in
  let db2 = Db.open_db region2 in
  Printf.printf "\nreloaded the region from %s: %d entries intact\n"
    (Filename.basename path) (Db.count db2);
  assert (Db.get db2 "user:3" = Some "grace");
  Sys.remove path;

  (* ---- the LevelDB baseline: buffered durability ---- *)
  let lvl = Kv.Level_db.create () in
  for i = 1 to 1_000 do
    Kv.Level_db.put lvl (Printf.sprintf "key%04d" i) "value"
  done;
  Printf.printf "\nLevelDB-like store holds %d entries before the crash\n"
    (Kv.Level_db.count lvl);
  Kv.Level_db.crash lvl;
  Printf.printf
    "after the crash it holds %d: the journal was never fdatasync'ed\n"
    (Kv.Level_db.count lvl);

  (* with WriteOptions.sync every operation pays a full fdatasync *)
  let lvl = Kv.Level_db.create () in
  let d = Kv.Level_db.disk lvl in
  for i = 1 to 100 do
    Kv.Level_db.put ~sync:true lvl (Printf.sprintf "key%04d" i) "value"
  done;
  Kv.Level_db.crash lvl;
  Printf.printf
    "\nwith sync=true, %d/100 survive, but at %d fdatasync calls (%.1f ms \
     of simulated disk time)\n"
    (Kv.Level_db.count lvl) (Kv.Disk_sim.syncs d)
    (float_of_int (Kv.Disk_sim.vtime_ns d) /. 1e6);
  print_endline "kvstore demo done."
