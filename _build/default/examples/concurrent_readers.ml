(* Wait-free readers with RomulusLR (§5.3).

   A writer domain continuously updates a pair of persistent counters
   (keeping them equal inside each transaction) while reader domains
   audit the pair.  Readers on RomulusLR never block — they read the
   back copy through synthetic pointers while the writer mutates main —
   and must never observe a torn pair.

     dune exec examples/concurrent_readers.exe *)

module P = Romulus.Lr

let () =
  let region = Pmem.Region.create ~size:(1 lsl 18) () in
  let ptm = P.open_region region in
  let obj =
    P.update_tx ptm (fun () ->
        let o = P.alloc ptm 16 in
        P.store ptm o 0;
        P.store ptm (o + 8) 0;
        P.set_root ptm 0 o;
        o)
  in
  let stop = Atomic.make false in
  let torn = Atomic.make 0 in
  let reads = Atomic.make 0 in

  let writer () =
    Sync_prims.Tid.with_slot (fun _ ->
        for i = 1 to 2_000 do
          P.update_tx ptm (fun () ->
              P.store ptm obj i;
              P.store ptm (obj + 8) i)
        done;
        Atomic.set stop true)
  in
  let reader () =
    Sync_prims.Tid.with_slot (fun _ ->
        let n = ref 0 in
        while not (Atomic.get stop) do
          P.read_tx ptm (fun () ->
              let a = P.load ptm obj in
              let b = P.load ptm (obj + 8) in
              if a <> b then Atomic.incr torn);
          incr n
        done;
        ignore (Atomic.fetch_and_add reads !n))
  in
  let domains = Domain.spawn writer :: List.init 3 (fun _ -> Domain.spawn reader) in
  List.iter Domain.join domains;

  let final = P.read_tx ptm (fun () -> P.load ptm obj) in
  Printf.printf
    "writer committed 2000 transactions (final counter = %d)\n" final;
  Printf.printf "3 wait-free readers performed %d reads, %d torn\n"
    (Atomic.get reads) (Atomic.get torn);
  assert (Atomic.get torn = 0);
  assert (final = 2_000);

  (* read-only transactions issue no persistence fences at all *)
  let s = Pmem.Region.stats region in
  let before = Pmem.Stats.snapshot s in
  P.read_tx ptm (fun () -> ignore (P.load ptm obj));
  let d = Pmem.Stats.since ~now:s ~past:before in
  Printf.printf "fences per read-only transaction: %d\n" (Pmem.Stats.fences d);
  print_endline "concurrent readers demo done."
