(* Failure-atomic money transfers: the canonical PTM correctness demo.

   A fixed set of accounts lives in persistent memory.  Transfers move
   random amounts between random accounts inside update transactions.
   The machine is crashed at random instruction boundaries with random
   cache-line-fate policies, recovered, and the invariant — the total
   balance never changes — is checked after every recovery.

     dune exec examples/bank.exe *)

module P = Romulus.Lr (* wait-free readers audit the books *)

let accounts = 64
let initial = 1_000
let rounds = 300

let () =
  let region = Pmem.Region.create ~size:(1 lsl 20) () in
  let ptm = P.open_region region in
  let rng = Workload.Keygen.create ~seed:2024 () in

  (* the accounts array, offset stored in root 0 *)
  let base =
    P.update_tx ptm (fun () ->
        let a = P.alloc ptm (8 * accounts) in
        for i = 0 to accounts - 1 do
          P.store ptm (a + (8 * i)) initial
        done;
        P.set_root ptm 0 a;
        a)
  in
  let audit () =
    P.read_tx ptm (fun () ->
        let total = ref 0 in
        for i = 0 to accounts - 1 do
          total := !total + P.load ptm (base + (8 * i))
        done;
        !total)
  in
  let transfer src dst amount =
    P.update_tx ptm (fun () ->
        let s = P.load ptm (base + (8 * src)) in
        let d = P.load ptm (base + (8 * dst)) in
        P.store ptm (base + (8 * src)) (s - amount);
        P.store ptm (base + (8 * dst)) (d + amount))
  in

  let expected = accounts * initial in
  assert (audit () = expected);

  let crashes = ref 0 in
  for round = 1 to rounds do
    (* arm a crash at a random point within the next few transfers *)
    Pmem.Region.set_trap region (Workload.Keygen.int rng 120);
    (try
       for _ = 1 to 8 do
         (* distinct accounts: a self-transfer would read the same balance
            twice and mint money with its second store *)
         let src = Workload.Keygen.int rng accounts in
         let dst = (src + 1 + Workload.Keygen.int rng (accounts - 1))
                   mod accounts in
         transfer src dst (Workload.Keygen.int rng 100)
       done;
       Pmem.Region.clear_trap region
     with Pmem.Region.Crash_point ->
       incr crashes;
       let policy =
         match round mod 3 with
         | 0 -> Pmem.Region.Drop_all
         | 1 -> Pmem.Region.Keep_all
         | _ -> Pmem.Region.Random_subset round
       in
       Pmem.Region.crash region policy;
       P.recover ptm);
    let total = audit () in
    if total <> expected then (
      Printf.printf "ROUND %d: INVARIANT BROKEN: %d <> %d\n" round total
        expected;
      exit 1)
  done;
  Printf.printf
    "%d rounds, %d mid-transfer power failures, every audit balanced: %d\n"
    rounds !crashes expected;
  print_endline "no money was created or destroyed."
