(* crashtest — a configurable crash-injection campaign.

   Runs a workload (data structure or key-value store) on a chosen PTM,
   systematically or randomly crashing at instruction boundaries under
   adversarial cache-line policies, recovering, and checking structural
   invariants plus operation-level atomicity.  This is the repository's
   verification tool in CLI form:

     crashtest --ptm romLR --workload tree --rounds 500 --seed 7
     crashtest --ptm all --workload all --rounds 100
     crashtest --policy torn --rounds 200          # torn-word adversary
     crashtest --recovery-crashes 3                # crash recovery itself
     crashtest --ptm romL --failpoint engine.commit.cpy_published
     crashtest --list-failpoints *)

open Cmdliner

module type PTM = sig
  include Romulus.Ptm_intf.S

  val recover : t -> unit
end

let ptms : (string * (module PTM)) list =
  [ ("rom", (module Romulus.Basic));
    ("romL", (module Romulus.Logged));
    ("romLR", (module Romulus.Lr));
    ("mne", (module Baselines.Redolog));
    ("pmdk", (module Baselines.Undolog)) ]

type outcome = {
  rounds : int;
  crashes : int;
  recovery_crashes : int;
  failures : string list;
}

(* One workload campaign: run [rounds] batches of random operations with a
   random crash trap (or a named failpoint) armed; after each crash,
   recover — optionally crashing the recovery itself, [recovery_crashes]
   levels deep — and check invariants + a shadow model. *)
let run_campaign (module P : PTM) ~workload ~rounds ~seed ~verbose ~policy
    ~recovery_crashes ~failpoint =
  let rng = Workload.Keygen.create ~seed () in
  let region = Pmem.Region.create ~size:(1 lsl 20) () in
  let p = P.open_region region in
  let failures = ref [] in
  let crashes = ref 0 in
  let rec_crashes = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let pick_policy salt =
    match policy with
    | `Drop -> Pmem.Region.Drop_all
    | `Keep -> Pmem.Region.Keep_all
    | `Random -> Pmem.Region.Random_subset (seed + salt)
    | `Torn -> Pmem.Region.Torn_words (seed + salt)
    | `Mix -> (
      match Workload.Keygen.int rng 4 with
      | 0 -> Pmem.Region.Drop_all
      | 1 -> Pmem.Region.Keep_all
      | 2 -> Pmem.Region.Torn_words (seed + salt)
      | _ -> Pmem.Region.Random_subset (seed + salt))
  in
  (* the workload exposes: apply one op (given a shadow model), and a
     checker run after each recovery *)
  let module M = struct
    module L = Pds.Linked_list.Make (P)
    module T = Pds.Rb_tree.Make (P)
    module H = Pds.Hash_map.Make (P)
  end in
  let shadow : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* create the structures before any trap is armed: a crash during lazy
     creation would poison the thunk *)
  let list_ = M.L.create p ~root:0 in
  let tree = M.T.create p ~root:1 in
  let map = M.H.create ~initial_buckets:8 p ~root:2 in
  let key () = Workload.Keygen.int rng 200 in
  let apply_op () =
    let k = key () in
    match workload with
    | `List ->
      if Workload.Keygen.bool rng then (
        ignore (M.L.add list_ k);
        Hashtbl.replace shadow k k)
      else (
        ignore (M.L.remove list_ k);
        Hashtbl.remove shadow k)
    | `Tree ->
      if Workload.Keygen.bool rng then (
        ignore (M.T.put tree k (k * 3));
        Hashtbl.replace shadow k (k * 3))
      else (
        ignore (M.T.remove tree k);
        Hashtbl.remove shadow k)
    | `Map ->
      if Workload.Keygen.bool rng then (
        ignore (M.H.put map k (k * 5));
        Hashtbl.replace shadow k (k * 5))
      else (
        ignore (M.H.remove map k);
        Hashtbl.remove shadow k)
  in
  let check round =
    let structural =
      match workload with
      | `List -> M.L.check list_
      | `Tree -> M.T.check tree
      | `Map -> M.H.check map
    in
    (match structural with
     | Ok () -> ()
     | Error e -> fail "round %d: structural: %s" round e);
    (* the persistent contents must be the shadow model, except for the
       single operation in flight at the crash (atomic either way) *)
    let mine =
      match workload with
      | `List ->
        M.L.fold list_ (fun acc k -> (k, k) :: acc) []
      | `Tree -> M.T.fold tree (fun acc k v -> (k, v) :: acc) []
      | `Map -> M.H.fold map (fun acc k v -> (k, v) :: acc) []
    in
    let theirs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) shadow [] in
    let diff =
      List.length
        (List.filter (fun kv -> not (List.mem kv theirs)) mine)
      + List.length
          (List.filter (fun kv -> not (List.mem kv mine)) theirs)
    in
    if diff > 1 then fail "round %d: %d divergences from the model" round diff
  in
  (* Recover, crashing the recovery itself up to [recovery_crashes] levels
     deep: each level arms a fresh trap inside the running recovery, the
     injected crash is resolved under an adversarial policy, and recovery
     restarts — the final attempt runs to completion untrapped.  Recovery
     idempotence is exactly what makes this converge. *)
  let rec recover_nested round level =
    if level < recovery_crashes then begin
      Pmem.Region.set_trap region (Workload.Keygen.int rng 60);
      match P.recover p with
      | () -> Pmem.Region.clear_trap region
      | exception Pmem.Region.Crash_point ->
        incr rec_crashes;
        Pmem.Region.crash region (pick_policy ((round * 17) + level));
        recover_nested round (level + 1)
    end
    else P.recover p
  in
  for round = 1 to rounds do
    (match failpoint with
     | None -> Pmem.Region.set_trap region (Workload.Keygen.int rng 400)
     | Some site ->
       Fault.arm ~skip:(Workload.Keygen.int rng 8) site (fun () ->
           Pmem.Region.kill region));
    (try
       (try
          for _ = 1 to 4 do
            apply_op ()
          done;
          Pmem.Region.clear_trap region;
          Fault.disarm ()
        with Pmem.Region.Crash_point ->
          incr crashes;
          Fault.disarm ();
          Pmem.Region.crash region (pick_policy round);
          recover_nested round 0;
          (* the in-flight operation may or may not have committed: resync
             the shadow for the key it touched by trusting the structure *)
          let resync k =
            let v =
              match workload with
              | `List ->
                if M.L.contains list_ k then Some k else None
              | `Tree -> M.T.get tree k
              | `Map -> M.H.get map k
            in
            match v with
            | Some v -> Hashtbl.replace shadow k v
            | None -> Hashtbl.remove shadow k
          in
          for k = 0 to 199 do
            resync k
          done);
       check round
     with Romulus.Engine.Recovery_error e ->
       fail "round %d: recovery refused a legitimate crash state: %s" round e);
    if verbose && round mod 100 = 0 then
      Printf.printf "  ... %d/%d rounds, %d crashes (%d during recovery)\n%!"
        round rounds !crashes !rec_crashes
  done;
  { rounds;
    crashes = !crashes;
    recovery_crashes = !rec_crashes;
    failures = !failures }

(* ---- command line ---- *)

let ptm_arg =
  let doc = "PTM to test: rom, romL, romLR, mne, pmdk, or all." in
  Arg.(value & opt string "all" & info [ "ptm" ] ~docv:"PTM" ~doc)

let workload_arg =
  let doc = "Workload: list, tree, map, or all." in
  Arg.(value & opt string "all" & info [ "workload" ] ~docv:"W" ~doc)

let rounds_arg =
  let doc = "Rounds per campaign (each round runs 4 ops with a crash trap)." in
  Arg.(value & opt int 200 & info [ "rounds" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "PRNG seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let policy_arg =
  let doc =
    "Cache-line fate policy at each crash: drop (no unfenced line \
     persists), keep (every one does), random (per-line coin), torn \
     (per-8-byte-word coin — the torn-word adversary), or mix (rotate \
     through all of them)."
  in
  Arg.(
    value
    & opt (enum [ ("drop", `Drop); ("keep", `Keep); ("random", `Random);
                  ("torn", `Torn); ("mix", `Mix) ])
        `Mix
    & info [ "policy" ] ~docv:"POLICY" ~doc)

let recovery_crashes_arg =
  let doc =
    "Crash the recovery itself up to $(docv) levels deep after every \
     injected crash (recovery must be idempotent)."
  in
  Arg.(value & opt int 0 & info [ "recovery-crashes" ] ~docv:"K" ~doc)

let failpoint_arg =
  let doc =
    "Arm the named failpoint site instead of the instruction-counting \
     trap; see --list-failpoints for the registered names."
  in
  Arg.(
    value & opt (some string) None & info [ "failpoint" ] ~docv:"SITE" ~doc)

let list_failpoints_arg =
  let doc = "Print every registered failpoint site and exit." in
  Arg.(value & flag & info [ "list-failpoints" ] ~doc)

let verbose_arg =
  let doc = "Progress output." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let main ptm workload rounds seed policy recovery_crashes failpoint
    list_failpoints verbose =
  if list_failpoints then begin
    List.iter print_endline (Fault.sites ());
    exit 0
  end;
  (match failpoint with
   | Some site when not (Fault.is_site site) ->
     Printf.eprintf "unknown failpoint %S; registered sites:\n" site;
     List.iter (Printf.eprintf "  %s\n") (Fault.sites ());
     exit 2
   | _ -> ());
  let selected_ptms =
    if ptm = "all" then ptms
    else
      match List.assoc_opt ptm ptms with
      | Some m -> [ (ptm, m) ]
      | None -> failwith ("unknown PTM " ^ ptm)
  in
  let workloads =
    match workload with
    | "all" -> [ ("list", `List); ("tree", `Tree); ("map", `Map) ]
    | "list" -> [ ("list", `List) ]
    | "tree" -> [ ("tree", `Tree) ]
    | "map" -> [ ("map", `Map) ]
    | w -> failwith ("unknown workload " ^ w)
  in
  let failed = ref false in
  List.iter
    (fun (pname, m) ->
      List.iter
        (fun (wname, w) ->
          Printf.printf "%-6s x %-5s: %!" pname wname;
          let o =
            run_campaign m ~workload:w ~rounds ~seed ~verbose ~policy
              ~recovery_crashes ~failpoint
          in
          if o.failures = [] then begin
            Printf.printf "OK (%d rounds, %d crash-recoveries" o.rounds
              o.crashes;
            if o.recovery_crashes > 0 then
              Printf.printf ", %d crashes inside recovery" o.recovery_crashes;
            Printf.printf ")\n%!"
          end
          else begin
            failed := true;
            Printf.printf "FAILED (%d issues)\n" (List.length o.failures);
            List.iter (fun f -> Printf.printf "    %s\n" f) o.failures
          end)
        workloads)
    selected_ptms;
  if !failed then exit 1

let cmd =
  let doc = "crash-injection campaigns against the Romulus PTMs" in
  let info = Cmd.info "crashtest" ~doc in
  Cmd.v info
    Term.(const main $ ptm_arg $ workload_arg $ rounds_arg $ seed_arg
          $ policy_arg $ recovery_crashes_arg $ failpoint_arg
          $ list_failpoints_arg $ verbose_arg)

let () = exit (Cmd.eval cmd)
