(* crashtest — a configurable crash-injection campaign.

   Runs a workload (data structure or key-value store) on a chosen PTM,
   systematically or randomly crashing at instruction boundaries under
   adversarial cache-line policies, recovering, and checking structural
   invariants plus operation-level atomicity.  This is the repository's
   verification tool in CLI form:

     crashtest --ptm romLR --workload tree --rounds 500 --seed 7
     crashtest --ptm all --workload all --rounds 100
     crashtest --policy torn --rounds 200          # torn-word adversary
     crashtest --recovery-crashes 3                # crash recovery itself
     crashtest --ptm romL --failpoint engine.commit.cpy_published
     crashtest --inject-exn --rounds 25            # exception injection
     crashtest --list-failpoints

   --inject-exn switches from crash injection to exception injection:
   every raise-capable failpoint site reachable from the selected PTM is
   armed, per round, to raise Fault.Injected instead of powering the
   machine off, and the campaign asserts the abort contract — a typed
   Engine.Tx_aborted at the caller, the aborted transaction invisible
   against the sequential oracle, allocator metadata intact, recovery a
   byte-level no-op, and a follow-up transaction from another thread
   slot committing. *)

open Cmdliner

module type PTM = sig
  include Romulus.Ptm_intf.S

  val recover : t -> unit
  val recover_salvage : t -> (int * string) list
  val allocator_check : t -> (unit, string) result
  val scrub : t -> Romulus.Engine.scrub_report
  val scrub_salvage : t -> Romulus.Engine.scrub_report
  val media_spans : t -> (int * int) list
end

let ptms : (string * (module PTM)) list =
  [ ("rom", (module Romulus.Basic));
    ("romL", (module Romulus.Logged));
    ("romLR", (module Romulus.Lr));
    ("mne", (module Baselines.Redolog));
    ("pmdk", (module Baselines.Undolog)) ]

type outcome = {
  rounds : int;
  crashes : int;
  recovery_crashes : int;
  failures : string list;
}

(* One workload campaign: run [rounds] batches of random operations with a
   random crash trap (or a named failpoint) armed; after each crash,
   recover — optionally crashing the recovery itself, [recovery_crashes]
   levels deep — and check invariants + a shadow model. *)
let run_campaign (module P : PTM) ~workload ~rounds ~seed ~verbose ~policy
    ~recovery_crashes ~failpoint =
  let rng = Workload.Keygen.create ~seed () in
  let region = Pmem.Region.create ~size:(1 lsl 20) () in
  let p = P.open_region region in
  let failures = ref [] in
  let crashes = ref 0 in
  let rec_crashes = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let pick_policy salt =
    match policy with
    | `Drop -> Pmem.Region.Drop_all
    | `Keep -> Pmem.Region.Keep_all
    | `Random -> Pmem.Region.Random_subset (seed + salt)
    | `Torn -> Pmem.Region.Torn_words (seed + salt)
    | `Mix -> (
      match Workload.Keygen.int rng 4 with
      | 0 -> Pmem.Region.Drop_all
      | 1 -> Pmem.Region.Keep_all
      | 2 -> Pmem.Region.Torn_words (seed + salt)
      | _ -> Pmem.Region.Random_subset (seed + salt))
  in
  (* the workload exposes: apply one op (given a shadow model), and a
     checker run after each recovery *)
  let module M = struct
    module L = Pds.Linked_list.Make (P)
    module T = Pds.Rb_tree.Make (P)
    module H = Pds.Hash_map.Make (P)
  end in
  let shadow : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* create the structures before any trap is armed: a crash during lazy
     creation would poison the thunk *)
  let list_ = M.L.create p ~root:0 in
  let tree = M.T.create p ~root:1 in
  let map = M.H.create ~initial_buckets:8 p ~root:2 in
  let key () = Workload.Keygen.int rng 200 in
  let apply_op () =
    let k = key () in
    match workload with
    | `List ->
      if Workload.Keygen.bool rng then (
        ignore (M.L.add list_ k);
        Hashtbl.replace shadow k k)
      else (
        ignore (M.L.remove list_ k);
        Hashtbl.remove shadow k)
    | `Tree ->
      if Workload.Keygen.bool rng then (
        ignore (M.T.put tree k (k * 3));
        Hashtbl.replace shadow k (k * 3))
      else (
        ignore (M.T.remove tree k);
        Hashtbl.remove shadow k)
    | `Map ->
      if Workload.Keygen.bool rng then (
        ignore (M.H.put map k (k * 5));
        Hashtbl.replace shadow k (k * 5))
      else (
        ignore (M.H.remove map k);
        Hashtbl.remove shadow k)
  in
  let check round =
    let structural =
      match workload with
      | `List -> M.L.check list_
      | `Tree -> M.T.check tree
      | `Map -> M.H.check map
    in
    (match structural with
     | Ok () -> ()
     | Error e -> fail "round %d: structural: %s" round e);
    (* the persistent contents must be the shadow model, except for the
       single operation in flight at the crash (atomic either way) *)
    let mine =
      match workload with
      | `List ->
        M.L.fold list_ (fun acc k -> (k, k) :: acc) []
      | `Tree -> M.T.fold tree (fun acc k v -> (k, v) :: acc) []
      | `Map -> M.H.fold map (fun acc k v -> (k, v) :: acc) []
    in
    let theirs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) shadow [] in
    let diff =
      List.length
        (List.filter (fun kv -> not (List.mem kv theirs)) mine)
      + List.length
          (List.filter (fun kv -> not (List.mem kv mine)) theirs)
    in
    if diff > 1 then fail "round %d: %d divergences from the model" round diff
  in
  (* Recover, crashing the recovery itself up to [recovery_crashes] levels
     deep: each level arms a fresh trap inside the running recovery, the
     injected crash is resolved under an adversarial policy, and recovery
     restarts — the final attempt runs to completion untrapped.  Recovery
     idempotence is exactly what makes this converge. *)
  let rec recover_nested round level =
    if level < recovery_crashes then begin
      Pmem.Region.set_trap region (Workload.Keygen.int rng 60);
      match P.recover p with
      | () -> Pmem.Region.clear_trap region
      | exception Pmem.Region.Crash_point ->
        incr rec_crashes;
        Pmem.Region.crash region (pick_policy ((round * 17) + level));
        recover_nested round (level + 1)
    end
    else P.recover p
  in
  for round = 1 to rounds do
    (match failpoint with
     | None -> Pmem.Region.set_trap region (Workload.Keygen.int rng 400)
     | Some site ->
       Fault.arm ~skip:(Workload.Keygen.int rng 8) site (fun () ->
           Pmem.Region.kill region));
    (try
       (try
          for _ = 1 to 4 do
            apply_op ()
          done;
          Pmem.Region.clear_trap region;
          Fault.disarm ()
        with Pmem.Region.Crash_point ->
          incr crashes;
          Fault.disarm ();
          Pmem.Region.crash region (pick_policy round);
          recover_nested round 0;
          (* the in-flight operation may or may not have committed: resync
             the shadow for the key it touched by trusting the structure *)
          let resync k =
            let v =
              match workload with
              | `List ->
                if M.L.contains list_ k then Some k else None
              | `Tree -> M.T.get tree k
              | `Map -> M.H.get map k
            in
            match v with
            | Some v -> Hashtbl.replace shadow k v
            | None -> Hashtbl.remove shadow k
          in
          for k = 0 to 199 do
            resync k
          done);
       check round
     with Romulus.Engine.Recovery_error e ->
       fail "round %d: recovery refused a legitimate crash state: %s" round e);
    if verbose && round mod 100 = 0 then
      Printf.printf "  ... %d/%d rounds, %d crashes (%d during recovery)\n%!"
        round rounds !crashes !rec_crashes
  done;
  { rounds;
    crashes = !crashes;
    recovery_crashes = !rec_crashes;
    failures = !failures }

(* ---- exception-injection campaign ---- *)

(* Which raise-capable sites a PTM can actually reach: the engine and
   combiner sites belong to the Romulus variants, the STM/undo-log sites
   to their baselines, and the allocator sites to everyone. *)
let site_applicable ~ptm site =
  let prefixes =
    match ptm with
    | "rom" -> [ "engine."; "rom."; "palloc." ]
    | "romL" -> [ "engine."; "romL."; "palloc." ]
    | "romLR" -> [ "engine."; "palloc." ]
    | "mne" -> [ "mne."; "palloc." ]
    | "pmdk" -> [ "pmdk."; "palloc." ]
    | _ -> []
  in
  List.exists (fun prefix -> String.starts_with ~prefix site) prefixes

(* One exception-injection campaign: [site] is armed each round to raise
   [Fault.Injected] (after a random number of skipped visits) while a
   batch of random update operations runs.  The abort contract checked
   after every round:

     (a) the caller observed a typed Engine.Tx_aborted whose cause is
         the injected exception — never a bare Injected, Failure or
         Invalid_argument;
     (b) the structure agrees with the sequential shadow oracle
         *exactly* (no crash happened, so not even one in-flight
         operation may diverge) and the allocator is structurally sound;
     (c) recovery right after an abort is a byte-level no-op on the
         persistent image (the abort already restored everything);
     (d) a follow-up update transaction from a different thread slot
         commits and is visible — no lock is still held, no combiner
         slot stranded. *)
let run_inject_campaign (module P : PTM) ~workload ~rounds ~seed ~verbose
    ~site =
  let rng = Workload.Keygen.create ~seed () in
  let region = Pmem.Region.create ~size:(1 lsl 20) () in
  let p = P.open_region region in
  let failures = ref [] in
  let injected = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let module M = struct
    module L = Pds.Linked_list.Make (P)
    module T = Pds.Rb_tree.Make (P)
    module H = Pds.Hash_map.Make (P)
  end in
  let shadow : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let list_ = M.L.create p ~root:0 in
  let tree = M.T.create p ~root:1 in
  let map = M.H.create ~initial_buckets:8 p ~root:2 in
  let key () = Workload.Keygen.int rng 200 in
  let apply_op () =
    let k = key () in
    match workload with
    | `List ->
      if Workload.Keygen.bool rng then (
        ignore (M.L.add list_ k);
        Hashtbl.replace shadow k k)
      else (
        ignore (M.L.remove list_ k);
        Hashtbl.remove shadow k)
    | `Tree ->
      if Workload.Keygen.bool rng then (
        ignore (M.T.put tree k (k * 3));
        Hashtbl.replace shadow k (k * 3))
      else (
        ignore (M.T.remove tree k);
        Hashtbl.remove shadow k)
    | `Map ->
      if Workload.Keygen.bool rng then (
        ignore (M.H.put map k (k * 5));
        Hashtbl.replace shadow k (k * 5))
      else (
        ignore (M.H.remove map k);
        Hashtbl.remove shadow k)
  in
  let check_exact round =
    (match
       match workload with
       | `List -> M.L.check list_
       | `Tree -> M.T.check tree
       | `Map -> M.H.check map
     with
     | Ok () -> ()
     | Error e -> fail "round %d: structural: %s" round e);
    let mine =
      match workload with
      | `List -> M.L.fold list_ (fun acc k -> (k, k) :: acc) []
      | `Tree -> M.T.fold tree (fun acc k v -> (k, v) :: acc) []
      | `Map -> M.H.fold map (fun acc k v -> (k, v) :: acc) []
    in
    let theirs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) shadow [] in
    let diff =
      List.length (List.filter (fun kv -> not (List.mem kv theirs)) mine)
      + List.length (List.filter (fun kv -> not (List.mem kv mine)) theirs)
    in
    if diff > 0 then
      fail "round %d: aborted transaction visible: %d divergences" round diff
  in
  (* warm-up, un-armed: populate the structures so that removes actually
     free chunks and allocations are served from the bins — otherwise
     the allocator sites are unreachable in early rounds *)
  for _ = 1 to 32 do
    apply_op ()
  done;
  (* A round counts only when the armed site actually fired (frees, bin
     reuse and batch shapes are workload-dependent); attempts are capped
     so a genuinely unreachable site still fails loudly. *)
  let round = ref 0 in
  let attempts = ref 0 in
  let max_attempts = rounds * 50 in
  while !round < rounds && !attempts < max_attempts do
    incr attempts;
    Fault.arm ~skip:(Workload.Keygen.int rng 2) site (fun () ->
        raise (Fault.Injected site));
    let before_fires = !injected in
    for _ = 1 to 4 do
      match apply_op () with
      | () -> ()
      | exception Romulus.Engine.Tx_aborted { cause = Fault.Injected s; _ }
        when String.equal s site ->
        incr injected
      | exception e ->
        fail "attempt %d: fault at %s escaped untyped: %s" !attempts site
          (Printexc.to_string e)
    done;
    Fault.disarm ();
    if !injected > before_fires then begin
      incr round;
      let round = !round in
      check_exact round;
      (match P.allocator_check p with
       | Ok () -> ()
       | Error e -> fail "round %d: allocator: %s" round e);
      let before = Pmem.Region.persistent_snapshot region in
      P.recover p;
      let after = Pmem.Region.persistent_snapshot region in
      if not (String.equal before after) then
        fail "round %d: recovery after an abort changed the persistent image"
          round;
      (* a fresh domain takes a different thread slot: its commit proves
         no lock is still held and no combiner request is stranded *)
      (match
         Domain.join
           (Domain.spawn (fun () ->
                Sync_prims.Tid.with_slot (fun _ ->
                    P.update_tx p (fun () -> P.set_root p 63 round))))
       with
       | () -> ()
       | exception e ->
         fail "round %d: follow-up commit failed: %s" round
           (Printexc.to_string e));
      if P.read_tx p (fun () -> P.get_root p 63) <> round then
        fail "round %d: follow-up transaction not visible" round;
      if verbose && round mod 50 = 0 then
        Printf.printf "  ... %d/%d rounds, %d injected aborts\n%!" round
          rounds !injected
    end
  done;
  if !round < rounds then
    fail "site %s fired only %d/%d times in %d attempts" site !round rounds
      !attempts;
  { rounds = !round;
    crashes = !injected;
    recovery_crashes = 0;
    failures = !failures }

(* ---- media-rot scrub campaign ---- *)

(* Differential scrub-and-repair campaign.  A victim and a control PTM
   run the same deterministic workload and settle to identical durable
   images; rot is injected into the victim's used persistent spans; then
   the victim restarts.  Twin-copy designs must come back byte-identical
   to the control; single-image baselines must surface every fault as a
   typed error — silently returning corrupt data is the only sin.  A
   sub-campaign crashes *inside the repair window* (failpoint kills on
   engine.scrub.* plus an instruction-trap sweep over recovery) under
   all four line-fate policies and requires convergence all the same. *)
let run_scrub_campaign (module P : PTM) ~workload ~rounds ~seed ~verbose
    ~rot_rates =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let repaired_total = ref 0 in
  let detections = ref 0 in
  let window_crashes = ref 0 in
  let module L = Pds.Linked_list.Make (P) in
  let module T = Pds.Rb_tree.Make (P) in
  let module H = Pds.Hash_map.Make (P) in
  (* Build a region, run [ops] deterministic update operations, and
     return readers.  Identical [wseed] => byte-identical images. *)
  let build ~wseed =
    let region = Pmem.Region.create ~size:(1 lsl 20) () in
    let p = P.open_region region in
    let list_ = L.create p ~root:0 in
    let tree = T.create p ~root:1 in
    let map = H.create ~initial_buckets:8 p ~root:2 in
    let rng = Workload.Keygen.create ~seed:wseed () in
    let shadow : (int, int) Hashtbl.t = Hashtbl.create 64 in
    for _ = 1 to 64 do
      let k = Workload.Keygen.int rng 200 in
      match workload with
      | `List ->
        if Workload.Keygen.bool rng then (
          ignore (L.add list_ k);
          Hashtbl.replace shadow k k)
        else (
          ignore (L.remove list_ k);
          Hashtbl.remove shadow k)
      | `Tree ->
        if Workload.Keygen.bool rng then (
          ignore (T.put tree k (k * 3));
          Hashtbl.replace shadow k (k * 3))
        else (
          ignore (T.remove tree k);
          Hashtbl.remove shadow k)
      | `Map ->
        if Workload.Keygen.bool rng then (
          ignore (H.put map k (k * 5));
          Hashtbl.replace shadow k (k * 5))
        else (
          ignore (H.remove map k);
          Hashtbl.remove shadow k)
    done;
    let readback () =
      List.sort compare
        (match workload with
         | `List -> L.fold list_ (fun acc k -> (k, k) :: acc) []
         | `Tree -> T.fold tree (fun acc k v -> (k, v) :: acc) []
         | `Map -> H.fold map (fun acc k v -> (k, v) :: acc) [])
    in
    let structural () =
      match workload with
      | `List -> L.check list_
      | `Tree -> T.check tree
      | `Map -> H.check map
    in
    let expected =
      List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) shadow [])
    in
    (region, p, readback, structural, expected)
  in
  (* Settle to a durable resting image with every line clean: power off,
     recover, power off again (the second recovery below then starts
     from rot at rest, exactly the deployment scenario). *)
  let settle region p =
    Pmem.Region.crash region Pmem.Region.Drop_all;
    P.recover p;
    Pmem.Region.crash region Pmem.Region.Drop_all
  in
  (* Corrupt back-copy lines only where the main-copy twin is still
     sound: rotting both twins of one line is unrepairable by design and
     not what this campaign asserts. *)
  let corrupt_back_unpaired region spans ~salt =
    match spans with
    | [ (mbase, mspan); (bbase, _) ] when mspan > 0 ->
      let line_size = Pmem.Region.line_size region in
      let twin_d = (bbase - mbase) / line_size in
      let bl = (bbase + mspan - 1) / line_size in
      if Pmem.Region.media_ok region ~line:(bl - twin_d) then
        Pmem.Region.corrupt_line ~seed:salt region ~line:bl;
      let bl2 = bbase / line_size in
      if bl2 <> bl && Pmem.Region.media_ok region ~line:(bl2 - twin_d) then
        Pmem.Region.corrupt_bits region ~seed:salt ~off:(bl2 * line_size)
          ~len:line_size ~flips:3
    | _ -> ()
  in
  let snapshot = Pmem.Region.persistent_snapshot in
  for round = 1 to rounds do
    let wseed = seed + (1009 * round) in
    (* ---- rot differential, one run per rate ---- *)
    List.iteri
      (fun ri rate ->
        let salt = wseed + (97 * ri) in
        let vregion, victim, vread, vcheck, expected = build ~wseed in
        let cregion, control, _, _, _ = build ~wseed in
        settle vregion victim;
        settle cregion control;
        if not (String.equal (snapshot vregion) (snapshot cregion)) then
          fail "round %d: victim and control diverged before injection"
            round;
        let spans = P.media_spans victim in
        let twin = List.length spans = 2 in
        let rotted =
          match spans with
          | (base, span) :: _ when span > 0 ->
            Pmem.Region.inject_rot ~off:base ~len:span vregion
              (Pmem.Region.Media_rot { seed = salt; rate })
          | _ -> 0
        in
        if twin then corrupt_back_unpaired vregion spans ~salt;
        P.recover control;
        if twin then begin
          (* twin-copy: restart must repair everything and come back
             byte-identical to the never-rotted control *)
          match P.recover victim with
          | exception e ->
            fail "round %d rate %g: recovery refused repairable rot: %s"
              round rate (Printexc.to_string e)
          | () ->
            let s = Pmem.Region.stats vregion in
            repaired_total := !repaired_total + s.Pmem.Stats.repaired_lines;
            if not (String.equal (snapshot vregion) (snapshot cregion))
            then
              fail "round %d rate %g: image differs from control after \
                    scrub (%d lines rotted)"
                round rate rotted;
            (match vcheck () with
             | Ok () -> ()
             | Error e ->
               fail "round %d rate %g: structural: %s" round rate e);
            if vread () <> expected then
              fail "round %d rate %g: data differs from the oracle" round
                rate;
            let rep = P.scrub victim in
            if rep.Romulus.Engine.repaired <> 0 then
              fail "round %d rate %g: second scrub repaired %d more lines"
                round rate rep.Romulus.Engine.repaired
        end
        else begin
          (* single image: every fault must surface typed — recovery,
             scrub, or the reads themselves — never as silent garbage *)
          match P.recover victim with
          | exception Pmem.Region.Media_error _ -> incr detections
          | exception Romulus.Engine.Unrepairable _ -> incr detections
          | () ->
            (match P.scrub victim with
             | exception Romulus.Engine.Unrepairable _ -> incr detections
             | (_ : Romulus.Engine.scrub_report) -> ());
            (match vread () with
             | exception Pmem.Region.Media_error _ -> incr detections
             | got ->
               if got <> expected then
                 fail "round %d rate %g: SILENT corruption: %d rotted \
                       lines, reads diverged with no typed error"
                   round rate rotted)
        end)
      rot_rates;
    (* ---- crashes inside the repair window (twin-copy designs) ---- *)
    let vregion, victim, _, _, _ = build ~wseed in
    let cregion, control, _, _, _ = build ~wseed in
    settle vregion victim;
    settle cregion control;
    P.recover victim;
    P.recover control;
    if List.length (P.media_spans victim) = 2 then begin
      let oracle = snapshot cregion in
      let mbase, mspan = List.hd (P.media_spans victim) in
      let line = (mbase + mspan - 1) / Pmem.Region.line_size vregion in
      let converged what policy =
        if not (String.equal (snapshot vregion) oracle) then
          fail "round %d: %s under %s left a diverged image" round what
            policy
      in
      List.iter
        (fun (pname, policy) ->
          (* failpoint kills: power off right at the detection point and
             right after the repairing fence *)
          List.iter
            (fun site ->
              Pmem.Region.corrupt_line vregion ~line;
              Fault.arm site (fun () -> Pmem.Region.kill vregion);
              (match P.recover victim with
               | () -> fail "round %d: %s did not fire" round site
               | exception Pmem.Region.Crash_point ->
                 incr window_crashes;
                 Pmem.Region.crash vregion policy;
                 P.recover victim);
              Fault.disarm ();
              converged site pname)
            [ "engine.scrub.bad_line"; "engine.scrub.repaired" ];
          (* instruction-trap sweep over the whole repairing recovery *)
          let k = ref 0 in
          let completed = ref false in
          while not !completed do
            Pmem.Region.corrupt_line vregion ~line;
            Pmem.Region.set_trap vregion !k;
            (match P.recover victim with
             | () ->
               Pmem.Region.clear_trap vregion;
               completed := true
             | exception Pmem.Region.Crash_point ->
               incr window_crashes;
               Pmem.Region.crash vregion policy;
               P.recover victim);
            converged (Printf.sprintf "trap %d" !k) pname;
            incr k;
            if !k > 5_000 then begin
              fail "round %d: repair-window sweep did not terminate" round;
              completed := true
            end
          done)
        [ ("drop_all", Pmem.Region.Drop_all);
          ("keep_all", Pmem.Region.Keep_all);
          ("random", Pmem.Region.Random_subset (wseed + 5));
          ("torn_words", Pmem.Region.Torn_words (wseed + 131)) ]
    end;
    if verbose then
      Printf.printf
        "  ... %d/%d seeds, %d repaired, %d detections, %d window crashes\n%!"
        round rounds !repaired_total !detections !window_crashes
  done;
  { rounds;
    crashes = !repaired_total;
    recovery_crashes = !window_crashes;
    failures = !failures }

(* ---- sharded cross-shard commit campaign ---- *)

(* Differential all-or-nothing campaign for the sharded store's
   cross-shard commit protocols.  Each round builds fresh
   [nshards]-shard stores over the selected PTM, seeds them, then
   crashes a cross-shard write batch several ways — an instruction trap
   at a random point on every shard's region in turn, failpoint kills
   inside each protocol window, and a crash inside the parallel
   recovery fan-out — resolving every power-off under the selected
   line-fate policy.  After each reopen the oracle requires the batch
   to be exactly all-or-nothing, untouched committed keys to survive,
   and every shard to pass its structural and allocator checks.

   Without [decentralized] the campaign drives the legacy centralized
   protocol (windows: intent PREPARED, between per-shard commits, after
   the COMMIT flip, killing shard 0).  With [decentralized] it drives
   the presumed-abort protocol, alternating lazy and eager CLEAR per
   round: kills after each mirror+apply (expect presumed abort), after
   the coordinator flip (expect roll-forward), inside the lazy CLEAR
   piggyback of a *second* batch (the first batch must stay applied),
   and inside recovery's mirror-resolution loop (reconciliation must be
   idempotent) — always killing the coordinator's own region for the
   flip windows, the adversarial case.  The Stats protocol counters are
   asserted so the campaign proves the protocol actually ran. *)
let run_sharded_campaign (module P : PTM) ~nshards ~rounds ~seed ~verbose
    ~policy ~decentralized =
  let module SD = Kv.Sharded_db.Make (P) in
  let rng = Workload.Keygen.create ~seed () in
  let failures = ref [] in
  let crashes = ref 0 in
  let rec_crashes = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let pick_policy salt =
    match policy with
    | `Drop -> Pmem.Region.Drop_all
    | `Keep -> Pmem.Region.Keep_all
    | `Random -> Pmem.Region.Random_subset (seed + salt)
    | `Torn -> Pmem.Region.Torn_words (seed + salt)
    | `Mix -> (
      match Workload.Keygen.int rng 4 with
      | 0 -> Pmem.Region.Drop_all
      | 1 -> Pmem.Region.Keep_all
      | 2 -> Pmem.Region.Torn_words (seed + salt)
      | _ -> Pmem.Region.Random_subset (seed + salt))
  in
  let key i = Printf.sprintf "key%03d" i in
  let value i = Printf.sprintf "value-%04d" i in
  (* enough distinct keys that the batch always spans several shards *)
  let batch_ops =
    [ ("batch-a", Some "A"); ("batch-b", Some "B"); ("batch-c", Some "C");
      ("batch-d", Some "D"); ("batch-e", Some "E"); ("batch-f", Some "F");
      (key 1, Some "overwritten"); (key 2, None) ]
  in
  let fresh ?(protocol = Kv.Sharded_db.Centralized) () =
    let rs =
      Array.init nshards (fun _ -> Pmem.Region.create ~size:(1 lsl 19) ())
    in
    let db = SD.open_db ~protocol ~initial_buckets:8 rs in
    for i = 0 to 11 do
      SD.put db (key i) (value i)
    done;
    (rs, db)
  in
  (* lazy and eager CLEAR alternate across rounds of the decentralized
     campaign so both reclamation paths face every policy *)
  let proto_for round =
    if decentralized then
      Kv.Sharded_db.Decentralized { lazy_clear = round mod 2 = 0 }
    else Kv.Sharded_db.Centralized
  in
  let crash_all rs p = Array.iter (fun r -> Pmem.Region.crash r p) rs in
  let run_batch db =
    SD.write_batch db (fun b ->
        List.iter
          (fun (k, v) ->
            match v with
            | Some v -> SD.put b k v
            | None -> ignore (SD.delete b k))
          batch_ops)
  in
  (* all-or-nothing oracle; [expect] pins the outcome where the protocol
     makes it deterministic (kills before the COMMIT flip roll back,
     kills after it roll forward) *)
  let oracle what db ~expect =
    (match SD.check db with
     | Ok () -> ()
     | Error e -> fail "%s: check: %s" what e);
    let applied = SD.get db "batch-a" = Some "A" in
    (match expect with
     | Some want when want <> applied ->
       fail "%s: expected the batch %s, found it %s" what
         (if want then "applied" else "rolled back")
         (if applied then "applied" else "rolled back")
     | _ -> ());
    List.iter
      (fun (k, v) ->
        let got = SD.get db k in
        let want =
          if applied then v
          else if k = key 1 then Some (value 1)
          else if k = key 2 then Some (value 2)
          else None
        in
        if got <> want then fail "%s: half-applied batch at %s" what k)
      batch_ops;
    for i = 3 to 11 do
      if SD.get db (key i) <> Some (value i) then
        fail "%s: lost committed key %s" what (key i)
    done
  in
  (* sanity once per campaign: the batch really is cross-shard, and a
     clean run ticks the protocol counters *)
  let coordinator =
    let _, db = fresh ~protocol:(proto_for 0) () in
    let groups =
      List.sort_uniq compare
        (List.map (fun (k, _) -> SD.shard_of_key db k) batch_ops)
    in
    if List.length groups < 2 then
      fail "batch spans %d shard(s); campaign needs a cross-shard batch"
        (List.length groups);
    run_batch db;
    let st = SD.stats db in
    if st.Pmem.Stats.intent_prepares = 0 then
      fail "clean batch ticked no intent PREPAREs";
    if st.Pmem.Stats.coordinator_flips = 0 then
      fail "clean batch ticked no COMMIT flips";
    List.hd groups
  in
  for round = 1 to rounds do
    let salt = round * 31 in
    let protocol = proto_for round in
    (* (a) instruction trap at a random point on each shard's region *)
    for t = 0 to nshards - 1 do
      let rs, db = fresh ~protocol () in
      Pmem.Region.set_trap rs.(t) (1 + Workload.Keygen.int rng 400);
      (match run_batch db with
       | () -> Pmem.Region.clear_trap rs.(t)
       | exception Pmem.Region.Crash_point -> incr crashes);
      crash_all rs (pick_policy (salt + t));
      let db = SD.open_db ~protocol ~initial_buckets:8 rs in
      oracle (Printf.sprintf "round %d trap shard %d" round t) db
        ~expect:None
    done;
    (* (b) failpoint kills in each protocol window.  [prep] runs before
       the site is armed (the lazy-CLEAR window needs a committed batch
       already parked); [victim] picks the killed region — the
       centralized windows kill shard 0 (the intent's home), the
       decentralized ones the batch coordinator.  [check_stats] asserts
       the reopened store's protocol counters. *)
    let windows =
      if decentralized then
        [ ( "sharded.d.mirror_applied",
            Some (Workload.Keygen.int rng 2),
            (fun _ -> ()), coordinator, Some false,
            fun st -> st.Pmem.Stats.rolled_back > 0 );
          ( "sharded.d.flip_written", None,
            (fun _ -> ()), coordinator, Some true,
            fun st -> st.Pmem.Stats.rolled_forward > 0 );
          ( "sharded.d.mirror_cleared", None,
            (* park a committed batch first, then kill inside the next
               batch's piggybacked (or eager) reclamation: the committed
               batch must stay applied *)
            (fun db -> run_batch db), coordinator, Some true,
            fun st -> st.Pmem.Stats.intent_prepares > 0 ) ]
      else
        [ ( "sharded.batch.intent_published", None,
            (fun _ -> ()), 0, Some false,
            fun st -> st.Pmem.Stats.rolled_back > 0 );
          ( "sharded.batch.shard_applied",
            Some (Workload.Keygen.int rng 2),
            (fun _ -> ()), 0, Some false,
            fun st -> st.Pmem.Stats.rolled_back > 0 );
          ( "sharded.batch.committed", None,
            (fun _ -> ()), 0, Some true,
            fun st -> st.Pmem.Stats.rolled_forward > 0 ) ]
    in
    List.iter
      (fun (site, skip, prep, victim, expect, check_stats) ->
        let rs, db = fresh ~protocol () in
        prep db;
        let fired = ref false in
        Fault.arm ?skip site (fun () ->
            fired := true;
            Pmem.Region.kill rs.(victim));
        let completed =
          match run_batch db with
          | () ->
            Fault.disarm ();
            true
          | exception Pmem.Region.Crash_point ->
            incr crashes;
            Fault.disarm ();
            false
        in
        if not !fired then
          fail "round %d: %s did not fire" round site
        else begin
          (* a post-durability-point kill may let run_batch return
             normally (the lazy flip window ends the protocol on the
             coordinator); the power-off still happened, so the same
             crash + reopen + oracle applies *)
          ignore completed;
          crash_all rs (pick_policy (salt + 7));
          let db = SD.open_db ~protocol ~initial_buckets:8 rs in
          oracle (Printf.sprintf "round %d %s" round site) db ~expect;
          if SD.pending_intents db <> 0 then
            fail "round %d %s: records left hooked after recovery" round
              site;
          if not (check_stats (SD.stats db)) then
            fail "round %d %s: protocol counters did not move" round site
        end)
      windows;
    (* (c) crash inside the parallel recovery fan-out *)
    let rs, db = fresh ~protocol () in
    Pmem.Region.set_trap rs.(0) (1 + Workload.Keygen.int rng 300);
    (match run_batch db with
     | () -> Pmem.Region.clear_trap rs.(0)
     | exception Pmem.Region.Crash_point -> incr crashes);
    crash_all rs (pick_policy (salt + 11));
    let t = Workload.Keygen.int rng nshards in
    Pmem.Region.set_trap rs.(t) (1 + Workload.Keygen.int rng 40);
    (match SD.recover ~parallel:true db with
     | () -> Pmem.Region.clear_trap rs.(t)
     | exception Pmem.Region.Crash_point ->
       incr rec_crashes;
       crash_all rs (pick_policy (salt + 13));
       SD.recover ~parallel:true db);
    oracle (Printf.sprintf "round %d parallel recovery" round) db
      ~expect:None;
    (* (d) crash inside the reconciliation pass itself: wreck a batch,
       then kill a shard right as recovery resolves a mirror; the next
       recovery must converge (decentralized only — the centralized
       reconciliation is a single shard-0 transaction) *)
    if decentralized then begin
      let rs, db = fresh ~protocol () in
      Pmem.Region.set_trap rs.(coordinator) (1 + Workload.Keygen.int rng 300);
      (match run_batch db with
       | () -> Pmem.Region.clear_trap rs.(coordinator)
       | exception Pmem.Region.Crash_point -> incr crashes);
      crash_all rs (pick_policy (salt + 17));
      let t = Workload.Keygen.int rng nshards in
      Fault.arm "sharded.recover.mirror_resolved" (fun () ->
          Pmem.Region.kill rs.(t));
      (match SD.recover ~parallel:false db with
       | () -> Fault.disarm ()
       | exception Pmem.Region.Crash_point ->
         incr rec_crashes;
         Fault.disarm ();
         crash_all rs (pick_policy (salt + 19));
         SD.recover ~parallel:false db);
      oracle (Printf.sprintf "round %d reconciliation crash" round) db
        ~expect:None;
      if SD.pending_intents db <> 0 then
        fail "round %d: reconciliation crash left records hooked" round
    end;
    if verbose then
      Printf.printf "  ... %d/%d rounds, %d crashes (%d during recovery)\n%!"
        round rounds !crashes !rec_crashes
  done;
  { rounds;
    crashes = !crashes;
    recovery_crashes = !rec_crashes;
    failures = !failures }

(* ---- chunked intent-streaming campaign ---- *)

(* Crash campaign for the chunked mirror chains.  Stores run with
   deliberately small [chunk_bytes]/[spill_threshold] and the cross-shard
   batch overwrites ~700-byte values with ~900-byte ones, so every
   PREPARE streams a multi-chunk CRC-protected chain and spills every
   undo image.  Per round (lazy and eager CLEAR alternating): an
   instruction trap at a random point on every shard in turn; failpoint
   kills mid-chain, at a spill, in the seal window (a complete but
   unsealed chain must be collected as presumed-abort garbage), and
   after the coordinator flip (roll-forward with parked chains); and a
   kill inside recovery's chain GC itself, which must converge when
   recovery is crashed and rerun.  The oracle requires the batch to be
   exactly all-or-nothing — a torn large value is the failure this
   campaign exists to catch — and every reopen to leave zero hooked
   records.  A sanity pass per campaign asserts the degradation
   counters actually move: chunks_written, chunks_spilled,
   clear_flushes (via an explicit drain) and overload_rejections (via
   an undersized admission budget refusing the batch with the typed
   Overloaded and no persistent effect). *)
let run_chunked_campaign (module P : PTM) ~nshards ~rounds ~seed ~verbose
    ~policy =
  let module SD = Kv.Sharded_db.Make (P) in
  let rng = Workload.Keygen.create ~seed () in
  let failures = ref [] in
  let crashes = ref 0 in
  let rec_crashes = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let pick_policy salt =
    match policy with
    | `Drop -> Pmem.Region.Drop_all
    | `Keep -> Pmem.Region.Keep_all
    | `Random -> Pmem.Region.Random_subset (seed + salt)
    | `Torn -> Pmem.Region.Torn_words (seed + salt)
    | `Mix -> (
      match Workload.Keygen.int rng 4 with
      | 0 -> Pmem.Region.Drop_all
      | 1 -> Pmem.Region.Keep_all
      | 2 -> Pmem.Region.Torn_words (seed + salt)
      | _ -> Pmem.Region.Random_subset (seed + salt))
  in
  let chunk_bytes = 256 in
  let spill_threshold = 192 in
  let nkeys = 8 in
  let key i = Printf.sprintf "blob%02d" i in
  let big tag len =
    String.init len (fun i -> Char.chr ((tag + (7 * i)) land 0xff))
  in
  let old_v i = big (3 + i) 700 in
  let new_v i = big (101 + i) 900 in
  let fresh_v = big 77 700 in
  let fresh ?admission_budget ~protocol () =
    let rs =
      Array.init nshards (fun _ -> Pmem.Region.create ~size:(1 lsl 19) ())
    in
    let db =
      SD.open_db ~protocol ~initial_buckets:8 ~chunk_bytes ~spill_threshold
        ?admission_budget rs
    in
    for i = 0 to nkeys - 1 do
      SD.put db (key i) (old_v i)
    done;
    (rs, db)
  in
  let reopen ~protocol rs =
    SD.open_db ~protocol ~initial_buckets:8 ~chunk_bytes ~spill_threshold rs
  in
  let crash_all rs p = Array.iter (fun r -> Pmem.Region.crash r p) rs in
  let run_batch db =
    SD.write_batch db (fun b ->
        for i = 0 to nkeys - 1 do
          SD.put b (key i) (new_v i)
        done;
        SD.put b "fresh-blob" fresh_v)
  in
  let proto_for round =
    Kv.Sharded_db.Decentralized { lazy_clear = round mod 2 = 0 }
  in
  (* all-or-nothing over large values: any torn byte fails the equality *)
  let oracle what db ~expect =
    (match SD.check db with
     | Ok () -> ()
     | Error e -> fail "%s: check: %s" what e);
    let applied = SD.get db (key 0) = Some (new_v 0) in
    (match expect with
     | Some want when want <> applied ->
       fail "%s: expected the batch %s, found it %s" what
         (if want then "applied" else "rolled back")
         (if applied then "applied" else "rolled back")
     | _ -> ());
    for i = 0 to nkeys - 1 do
      let want = if applied then new_v i else old_v i in
      if SD.get db (key i) <> Some want then
        fail "%s: torn or half-applied value at %s" what (key i)
    done;
    (match (SD.get db "fresh-blob", applied) with
     | Some v, true when v = fresh_v -> ()
     | None, false -> ()
     | _, _ -> fail "%s: fresh key disagrees with the batch outcome" what);
    if SD.pending_intents db <> 0 then
      fail "%s: records left hooked after recovery" what
  in
  (* sanity once per campaign: the batch crosses shards, chains really
     stream and spill, an explicit drain ticks clear_flushes, and an
     undersized admission budget refuses the batch typed and untouched *)
  let coordinator =
    let _, db = fresh ~protocol:(proto_for 0) () in
    let groups =
      List.sort_uniq compare
        (SD.shard_of_key db "fresh-blob"
         :: List.init nkeys (fun i -> SD.shard_of_key db (key i)))
    in
    if List.length groups < 2 then
      fail "batch spans %d shard(s); campaign needs a cross-shard batch"
        (List.length groups);
    run_batch db;
    let st = SD.stats db in
    if st.Pmem.Stats.chunks_written < 2 * List.length groups then
      fail "clean batch streamed only %d chunks over %d shards"
        st.Pmem.Stats.chunks_written (List.length groups);
    if st.Pmem.Stats.chunks_spilled < nkeys then
      fail "clean batch spilled only %d undo images (want >= %d)"
        st.Pmem.Stats.chunks_spilled nkeys;
    SD.flush_clears db;
    let st = SD.stats db in
    if st.Pmem.Stats.clear_flushes = 0 then
      fail "explicit drain ticked no clear_flushes";
    if SD.pending_intents db <> 0 then
      fail "flush_clears left %d records parked" (SD.pending_intents db);
    for i = 0 to nkeys - 1 do
      if SD.get db (key i) <> Some (new_v i) then
        fail "clean chunked batch lost %s" (key i)
    done;
    let _, db = fresh ~admission_budget:256 ~protocol:(proto_for 0) () in
    (match run_batch db with
     | () -> fail "a 256-byte admission budget admitted a multi-KB batch"
     | exception Kv.Sharded_db.Overloaded _ -> ()
     | exception e ->
       fail "admission refusal escaped untyped: %s" (Printexc.to_string e));
    if (SD.stats db).Pmem.Stats.overload_rejections = 0 then
      fail "refused batch ticked no overload_rejections";
    for i = 0 to nkeys - 1 do
      if SD.get db (key i) <> Some (old_v i) then
        fail "refused batch touched %s" (key i)
    done;
    if SD.pending_intents db <> 0 then
      fail "refused batch left records hooked";
    List.hd groups
  in
  for round = 1 to rounds do
    let salt = round * 41 in
    let protocol = proto_for round in
    (* (a) instruction trap at a random point on each shard's region *)
    for t = 0 to nshards - 1 do
      let rs, db = fresh ~protocol () in
      Pmem.Region.set_trap rs.(t) (1 + Workload.Keygen.int rng 1200);
      (match run_batch db with
       | () -> Pmem.Region.clear_trap rs.(t)
       | exception Pmem.Region.Crash_point -> incr crashes);
      crash_all rs (pick_policy (salt + t));
      let db = reopen ~protocol rs in
      oracle (Printf.sprintf "round %d trap shard %d" round t) db
        ~expect:None
    done;
    (* (b) failpoint kills: the coordinator's region is powered off from
       inside the window; every pre-flip kill must roll back, the
       post-flip one must roll forward.  The skip on the streaming sites
       moves the kill along the chain (and across participants — the
       counter is global), so torn chains of every length face every
       policy over the rounds. *)
    let windows =
      [ ( "sharded.chunk.written", Some (Workload.Keygen.int rng 4),
          Some false, fun st -> st.Pmem.Stats.rolled_back > 0 );
        ( "sharded.chunk.spilled", Some (Workload.Keygen.int rng 3),
          Some false, fun st -> st.Pmem.Stats.rolled_back > 0 );
        ( "sharded.chunk.seal_window", Some (Workload.Keygen.int rng 2),
          Some false, fun st -> st.Pmem.Stats.rolled_back > 0 );
        ( "sharded.d.flip_written", None, Some true,
          fun st -> st.Pmem.Stats.rolled_forward > 0 ) ]
    in
    List.iter
      (fun (site, skip, expect, check_stats) ->
        let rs, db = fresh ~protocol () in
        let fired = ref false in
        Fault.arm ?skip site (fun () ->
            fired := true;
            Pmem.Region.kill rs.(coordinator));
        (match run_batch db with
         | () -> Fault.disarm ()
         | exception Pmem.Region.Crash_point ->
           incr crashes;
           Fault.disarm ());
        if not !fired then fail "round %d: %s did not fire" round site
        else begin
          crash_all rs (pick_policy (salt + 7));
          let db = reopen ~protocol rs in
          oracle (Printf.sprintf "round %d %s" round site) db ~expect;
          if not (check_stats (SD.stats db)) then
            fail "round %d %s: protocol counters did not move" round site
        end)
      windows;
    (* (c) a complete-but-unsealed chain (seal-window kill), then a
       crash inside recovery's chain GC itself: the rerun must converge
       on the rolled-back image — collection is idempotent *)
    let rs, db = fresh ~protocol () in
    Fault.arm "sharded.chunk.seal_window" (fun () ->
        Pmem.Region.kill rs.(coordinator));
    (match run_batch db with
     | () ->
       Fault.disarm ();
       fail "round %d: seal-window kill did not fire" round
     | exception Pmem.Region.Crash_point ->
       incr crashes;
       Fault.disarm ());
    crash_all rs (pick_policy (salt + 11));
    let gc_fired = ref false in
    let t = Workload.Keygen.int rng nshards in
    Fault.arm "sharded.chunk.gc" (fun () ->
        gc_fired := true;
        Pmem.Region.kill rs.(t));
    let db =
      match reopen ~protocol rs with
      | db ->
        Fault.disarm ();
        db
      | exception Pmem.Region.Crash_point ->
        incr rec_crashes;
        Fault.disarm ();
        crash_all rs (pick_policy (salt + 13));
        reopen ~protocol rs
    in
    if not !gc_fired then
      fail "round %d: chain-GC window did not fire" round;
    oracle (Printf.sprintf "round %d chain-GC crash" round) db
      ~expect:(Some false);
    if verbose then
      Printf.printf "  ... %d/%d rounds, %d crashes (%d during recovery)\n%!"
        round rounds !crashes !rec_crashes
  done;
  { rounds;
    crashes = !crashes;
    recovery_crashes = !rec_crashes;
    failures = !failures }

(* ---- the elastic-sharding migration campaign ----

   Crash-safe online split/merge: every round seeds an [nshards]-store,
   then kills it mid-resize — with an instruction trap at a random
   primitive on every region (including the split's target), with
   failpoint kills inside each sharded.migrate.* window (intent durable,
   after a move batch's source transaction — the keys' only home is the
   CRC-protected cursor — after its target transaction, after the epoch
   flip, and after reclamation), with a second crash inside recovery's
   migration resume, and with a racing single-key write fired between
   the two halves of a move batch.  The oracle after every reopen:
   [check] passes, every seeded key is present exactly once (the raced
   key at the racing value), no migration intent is left hooked, and a
   durable intent implies the resize completed (epoch advanced,
   exactly one completion ever counted). *)

let run_migrate_campaign (module P : PTM) ~nshards ~rounds ~seed ~verbose
    ~policy =
  let module SD = Kv.Sharded_db.Make (P) in
  let rng = Workload.Keygen.create ~seed () in
  let failures = ref [] in
  let crashes = ref 0 in
  let rec_crashes = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let pick_policy salt =
    match policy with
    | `Drop -> Pmem.Region.Drop_all
    | `Keep -> Pmem.Region.Keep_all
    | `Random -> Pmem.Region.Random_subset (seed + salt)
    | `Torn -> Pmem.Region.Torn_words (seed + salt)
    | `Mix -> (
      match Workload.Keygen.int rng 4 with
      | 0 -> Pmem.Region.Drop_all
      | 1 -> Pmem.Region.Keep_all
      | 2 -> Pmem.Region.Torn_words (seed + salt)
      | _ -> Pmem.Region.Random_subset (seed + salt))
  in
  let nkeys = 48 in
  let key i = Printf.sprintf "mig%03d" i in
  let value i = Printf.sprintf "v-%04d-%s" i (String.make (i mod 40) 'x') in
  (* the chunk floor forces every split into a multi-batch move stream *)
  let chunk_bytes = Kv.Sharded_db.min_chunk_bytes in
  let region () = Pmem.Region.create ~size:(1 lsl 19) () in
  let fresh () =
    let rs = Array.init nshards (fun _ -> region ()) in
    let db = SD.open_db ~initial_buckets:8 ~chunk_bytes rs in
    for i = 0 to nkeys - 1 do
      SD.put db (key i) (value i)
    done;
    (rs, db)
  in
  let reopen rs = SD.open_db ~initial_buckets:8 ~chunk_bytes rs in
  let crash_all rs p = Array.iter (fun r -> Pmem.Region.crash r p) rs in
  (* [racing]: the raced key and the value its durable racing write must
     have pinned; [epoch]: the exact post-recovery epoch when the crash
     window guarantees one (a trap may land before the intent commits,
     so trap sweeps accept either outcome) *)
  let oracle what db ?epoch ?racing () =
    (match SD.check db with
     | Ok () -> ()
     | Error e -> fail "%s: check: %s" what e);
    let seen = Hashtbl.create 64 in
    SD.iter db (fun k v ->
        if Hashtbl.mem seen k then fail "%s: key %s present twice" what k;
        Hashtbl.replace seen k v);
    for i = 0 to nkeys - 1 do
      let want =
        match racing with
        | Some (rk, rv) when rk = key i -> rv
        | _ -> Some (value i)
      in
      match (want, Hashtbl.find_opt seen (key i)) with
      | Some w, Some got when got = w -> ()
      | None, None -> ()
      | Some _, None -> fail "%s: lost key %s" what (key i)
      | None, Some _ -> fail "%s: raced delete of %s resurrected" what (key i)
      | Some _, Some got ->
        fail "%s: wrong value at %s (%d bytes)" what (key i)
          (String.length got)
    done;
    if SD.migration_pending db then
      fail "%s: migration intent left hooked after recovery" what;
    (match epoch with
     | Some e when SD.epoch db <> e ->
       fail "%s: epoch %d after recovery, want %d" what (SD.epoch db) e
     | _ ->
       if SD.epoch db < 0 || SD.migration_pending db then
         fail "%s: inconsistent routing after recovery" what)
  in
  let mig_sites =
    [ "sharded.migrate.intent_open"; "sharded.migrate.batch_moved";
      "sharded.migrate.batch_applied"; "sharded.migrate.epoch_flip";
      "sharded.migrate.reclaimed" ]
  in
  (* kill inside the named window of [resize ()]; the victim region is
     the one every pre-reclaim phase touches promptly, so arming it is
     guaranteed to land — the reclaimed site is the resize's last region
     access and crashes at the site itself *)
  let kill_in_window ~site ~skip ~victim resize =
    let fired = ref false in
    if site = "sharded.migrate.reclaimed" then
      Fault.arm ~skip:0 site (fun () ->
          fired := true;
          raise Pmem.Region.Crash_point)
    else
      Fault.arm ~skip site (fun () ->
          fired := true;
          Pmem.Region.kill victim);
    (match resize () with
     | () -> Fault.disarm ()
     | exception Pmem.Region.Crash_point -> incr crashes);
    !fired
  in
  for round = 1 to rounds do
    let salt = round * 53 in
    (* (a) instruction trap at a random primitive on every region, the
       split's freshly-formatted target included *)
    for t = 0 to nshards do
      let rs, db = fresh () in
      let r2 = region () in
      let all = Array.append rs [| r2 |] in
      let src = Workload.Keygen.int rng nshards in
      Pmem.Region.set_trap all.(t) (1 + Workload.Keygen.int rng 2500);
      (match SD.split_shard db ~source:src r2 with
       | (_ : int) -> Pmem.Region.clear_trap all.(t)
       | exception Pmem.Region.Crash_point -> incr crashes);
      crash_all all (pick_policy (salt + t));
      let db = reopen all in
      oracle (Printf.sprintf "round %d trap region %d" round t) db ()
    done;
    (* (b) failpoint kills across the migration windows, with a skip
       that walks the kill along the move stream; pre-flip windows also
       face a second crash inside recovery's resume.  The stream's
       length depends on how many keys sit on the source's moving
       slots, so when a batch-site skip outlives the stream the split
       just completes — hold it to the clean-split oracle and re-arm
       shallower (then on other sources) instead of failing; the
       unconditional windows must still fire first try *)
    List.iter
      (fun site ->
        let batch_site =
          site = "sharded.migrate.batch_moved"
          || site = "sharded.migrate.batch_applied"
        in
        let rec attempt skip tries =
        let rs, db = fresh () in
        let r2 = region () in
        let all = Array.append rs [| r2 |] in
        let src = Workload.Keygen.int rng nshards in
        let fired =
          kill_in_window ~site ~skip ~victim:all.(src) (fun () ->
              ignore (SD.split_shard db ~source:src r2 : int))
        in
        if not fired then begin
          oracle
            (Printf.sprintf "round %d %s unfired at skip %d" round site skip)
            db ~epoch:1 ();
          if skip > 0 then attempt (skip - 1) tries
          else if batch_site && tries < nshards then attempt 0 (tries + 1)
          else fail "round %d: %s did not fire" round site
        end
        else begin
          crash_all all (pick_policy (salt + 7));
          let resumes =
            site = "sharded.migrate.intent_open"
            || site = "sharded.migrate.batch_moved"
            || site = "sharded.migrate.batch_applied"
          in
          let crash_recovery = resumes && Workload.Keygen.int rng 2 = 0 in
          let db =
            if crash_recovery then begin
              Fault.arm "sharded.migrate.resumed" (fun () ->
                  Pmem.Region.kill all.(src));
              match reopen all with
              | db ->
                Fault.disarm ();
                fail "round %d %s: recovery resume window did not fire"
                  round site;
                db
              | exception Pmem.Region.Crash_point ->
                incr rec_crashes;
                Fault.disarm ();
                crash_all all (pick_policy (salt + 9));
                reopen all
            end
            else reopen all
          in
          let what = Printf.sprintf "round %d %s" round site in
          oracle what db ~epoch:1 ();
          let st = SD.stats db in
          if resumes && st.Pmem.Stats.migrations_resumed < 1 then
            fail "%s: recovery never resumed the migration" what;
          if st.Pmem.Stats.migrations_completed <> 1 then
            fail "%s: %d completions counted, want exactly 1" what
              st.Pmem.Stats.migrations_completed;
          if st.Pmem.Stats.keys_migrated = 0 then
            fail "%s: no keys counted as migrated" what
        end
        in
        let skip = if batch_site then Workload.Keygen.int rng 3 else 0 in
        attempt skip 0)
      mig_sites;
    (* (c) a racing single-key write fired between the two halves of a
       move batch — durable before the (optional) kill, so it must
       survive the stream, the crash, and the resumed migration.  As in
       (b), a stream shorter than the skip (or a source with no moving
       keys) leaves the window unfired: retry shallower, then on other
       sources *)
    let kill_after = Workload.Keygen.int rng 2 = 0 in
    let delete_race = Workload.Keygen.int rng 3 = 0 in
    let rec race_attempt skip tries =
      let rs, db = fresh () in
      let r2 = region () in
      let all = Array.append rs [| r2 |] in
      let src = Workload.Keygen.int rng nshards in
      let raced = ref None in
      Fault.arm ~skip "sharded.migrate.batch_moved" (fun () ->
          (* prefer a key the open window routes to the new shard: its
             write takes the forwarding path.  The seeded keys spread
             over every slot, so one almost always exists; any key
             keeps the race meaningful otherwise. *)
          let target = nshards in
          let rec pick i =
            if i >= nkeys then key (Workload.Keygen.int rng nkeys)
            else if SD.shard_of_key db (key i) = target then key i
            else pick (i + 1)
          in
          let rk = pick 0 in
          if delete_race then begin
            ignore (SD.delete db rk : bool);
            raced := Some (rk, None)
          end
          else begin
            SD.put db rk "raced";
            raced := Some (rk, Some "raced")
          end;
          if kill_after then Pmem.Region.kill all.(src));
      (match SD.split_shard db ~source:src r2 with
       | (_ : int) -> Fault.disarm ()
       | exception Pmem.Region.Crash_point ->
         incr crashes;
         Fault.disarm ());
      match !raced with
      | None ->
        if skip > 0 then race_attempt (skip - 1) tries
        else if tries < nshards then race_attempt 0 (tries + 1)
        else fail "round %d: racing window did not fire" round
      | Some racing ->
        crash_all all (pick_policy (salt + 11));
        let db = reopen all in
        oracle
          (Printf.sprintf "round %d racing %s%s" round
             (if delete_race then "delete" else "put")
             (if kill_after then "+kill" else ""))
          db ~epoch:1 ~racing ()
    in
    race_attempt (Workload.Keygen.int rng 2) 0;
    (* (d) merge: grow, then kill inside a random window of the shrink;
       recovery must land on epoch 2 with the merged shard empty *)
    let rs, db = fresh () in
    let r2 = region () in
    let all = Array.append rs [| r2 |] in
    let src = Workload.Keygen.int rng nshards in
    let born = SD.split_shard db ~source:src r2 in
    let site = List.nth mig_sites (Workload.Keygen.int rng 5) in
    let back = Workload.Keygen.int rng nshards in
    let fired =
      kill_in_window ~site ~skip:0 ~victim:all.(born) (fun () ->
          SD.merge_shards db ~source:born ~target:back)
    in
    let merge_checks what db =
      oracle what db ~epoch:2 ();
      for s = 0 to SD.route_slots db - 1 do
        if SD.shard_of_slot db s = born then
          fail "%s: merged shard still owns slot %d" what s
      done;
      if (SD.stats db).Pmem.Stats.migrations_completed <> 2 then
        fail "%s: %d completions counted, want exactly 2" what
          (SD.stats db).Pmem.Stats.migrations_completed
    in
    if not fired then begin
      (* only the batch windows can go unvisited, and only when the
         split moved no keys, so the merge streams none back — the
         merge then completed clean and its post-state must hold live *)
      if site = "sharded.migrate.batch_moved"
         || site = "sharded.migrate.batch_applied"
      then merge_checks (Printf.sprintf "round %d merge %s unfired" round site) db
      else fail "round %d: merge %s did not fire" round site
    end
    else begin
      crash_all all (pick_policy (salt + 13));
      merge_checks (Printf.sprintf "round %d merge %s" round site) (reopen all)
    end;
    if verbose then
      Printf.printf "  ... %d/%d rounds, %d crashes (%d during recovery)\n%!"
        round rounds !crashes !rec_crashes
  done;
  { rounds;
    crashes = !crashes;
    recovery_crashes = !rec_crashes;
    failures = !failures }

(* ---- quarantine / self-healing campaign ---- *)

(* Differential fault-isolation campaign for the per-shard health
   machinery.  Every scenario seeds and settles a victim store plus an
   undamaged control with identical content, rots both twins of a line
   deep inside one shard (never shard 0) at rest, and reopens: the
   classification must file the sick shard as Degraded or Quarantined
   while every healthy slot serves byte-identical to the control, and
   every operation the verdict forbids fails with the typed
   Shard_unavailable naming the sick shard — never a wrong value, never
   a leaked Tx_aborted, never a silent miss.  Repair must then
   converge: with a snapshot on disk the shard is restored and the
   store returns to all-Healthy; without one the supervisor evacuates
   the salvageable keys onto a healthy shard, after which every
   survivor is served exactly once (scan and point reads agree) and the
   retired verdict survives further crash-recoveries.  A third scenario
   kills a region at the sharded.health.* failpoints — inside open's
   classification, before the evacuation copies anything, and after its
   epoch flip but before reclamation — resolves the power-off under the
   selected --policy, and requires the rerun to reach the same end
   state. *)
let run_quarantine_campaign (module P : PTM) ~nshards ~rounds ~seed ~verbose
    ~policy =
  let module SD = Kv.Sharded_db.Make (P) in
  let rng = Workload.Keygen.create ~seed () in
  let failures = ref [] in
  let crashes = ref 0 in
  let rec_crashes = ref 0 in
  let evacs = ref 0 in
  let restores = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let pick_policy salt =
    match policy with
    | `Drop -> Pmem.Region.Drop_all
    | `Keep -> Pmem.Region.Keep_all
    | `Random -> Pmem.Region.Random_subset (seed + salt)
    | `Torn -> Pmem.Region.Torn_words (seed + salt)
    | `Mix -> (
      match Workload.Keygen.int rng 4 with
      | 0 -> Pmem.Region.Drop_all
      | 1 -> Pmem.Region.Keep_all
      | 2 -> Pmem.Region.Torn_words (seed + salt)
      | _ -> Pmem.Region.Random_subset (seed + salt))
  in
  let nkeys = 48 in
  let key i = Printf.sprintf "qkey%03d" i in
  let value i = Printf.sprintf "qvalue-%04d" i in
  let crash_all rs p = Array.iter (fun r -> Pmem.Region.crash r p) rs in
  (* a settled store: seeded, crashed clean and reopened, so every line
     is durably fenced and at-rest rot is the only damage *)
  let fresh () =
    let rs =
      Array.init nshards (fun _ -> Pmem.Region.create ~size:(1 lsl 19) ())
    in
    let db = SD.open_db ~initial_buckets:8 rs in
    for i = 0 to nkeys - 1 do
      SD.put db (key i) (value i)
    done;
    crash_all rs Pmem.Region.Drop_all;
    (rs, SD.open_db ~initial_buckets:8 rs)
  in
  (* the undamaged control; its routing doubles as the pre-damage
     routing oracle (the victim is built identically) *)
  let _, control = fresh () in
  let sick_of round = 1 + ((seed + round) mod (nshards - 1)) in
  (* rot the deepest used line of [sick] — both twins for a twin-copy
     engine, the single image otherwise: unrepairable damage that still
     leaves the engine mountable *)
  let rot db rs sick =
    match (SD.media_spans db).(sick) with
    | (mbase, mspan) :: rest ->
      let ls = Pmem.Region.line_size rs.(sick) in
      let delta = mspan - ls in
      Pmem.Region.corrupt_line rs.(sick) ~line:((mbase + delta) / ls);
      (match rest with
       | (bbase, _) :: _ ->
         Pmem.Region.corrupt_line rs.(sick) ~seed:99
           ~line:((bbase + delta) / ls)
       | [] -> ())
    | [] -> fail "shard %d reported no media spans" sick
  in
  (* (a)+(b): healthy slots byte-identical to the control; operations
     the sick shard's verdict forbids refused with the typed error *)
  let availability what db ~sick =
    (match SD.health db sick with
     | Kv.Sharded_db.Healthy ->
       fail "%s: rot left shard %d Healthy" what sick
     | _ -> ());
    for i = 0 to nkeys - 1 do
      let k = key i in
      let want = SD.get control k in
      if SD.shard_of_key db k <> sick then begin
        match SD.get db k with
        | got ->
          if got <> want then fail "%s: healthy slot %s diverged" what k
        | exception e ->
          fail "%s: healthy slot %s raised %s" what k (Printexc.to_string e)
      end
      else begin
        (match SD.get db k with
         | got -> (
           match SD.health db sick with
           | Kv.Sharded_db.Quarantined _ ->
             fail "%s: quarantined slot %s served %s" what k
               (match got with None -> "a miss" | Some _ -> "a value")
           | _ ->
             if got <> want then fail "%s: degraded read %s diverged" what k)
         | exception Kv.Sharded_db.Shard_unavailable { shard; _ } -> (
           if shard <> sick then
             fail "%s: %s blamed shard %d, not %d" what k shard sick;
           match SD.health db sick with
           | Kv.Sharded_db.Degraded _ ->
             fail "%s: degraded read %s refused" what k
           | _ -> ())
         | exception Pmem.Region.Media_error _ -> (
           (* a Degraded shard surfaces an actually lost line as the
              typed media error; a Quarantined one must not be read *)
           match SD.health db sick with
           | Kv.Sharded_db.Quarantined _ ->
             fail "%s: quarantined slot %s leaked Media_error" what k
           | _ -> ())
         | exception e ->
           fail "%s: sick slot %s leaked %s" what k (Printexc.to_string e));
        match SD.put db k "must-not-land" with
        | () -> fail "%s: write to sick shard %d was accepted" what sick
        | exception Kv.Sharded_db.Shard_unavailable { shard; _ } ->
          if shard <> sick then
            fail "%s: write to %s blamed shard %d" what k shard
        | exception e ->
          fail "%s: write to sick shard leaked %s" what (Printexc.to_string e)
      end
    done;
    (* a healthy-slot write must still land (and is restored, so later
       byte-identity checks stay meaningful) *)
    (match
       let wk = ref None in
       for i = nkeys - 1 downto 0 do
         if SD.shard_of_key db (key i) <> sick then wk := Some (key i)
       done;
       !wk
     with
     | Some k -> (
       SD.put db k "touched";
       if SD.get db k <> Some "touched" then
         fail "%s: healthy-slot write did not land" what;
       match SD.get control k with
       | Some v -> SD.put db k v
       | None -> ignore (SD.delete db k : bool))
     | None -> fail "%s: every key routed to the sick shard" what);
    if (SD.stats db).Pmem.Stats.unavailable_rejections = 0 then
      fail "%s: probes ticked no unavailable_rejections" what
  in
  (* (c): the end state after repair — either all-Healthy with full
     byte-identity, or a retired (evacuated) shard with every survivor
     served exactly once *)
  let converged what db ~sick =
    (match SD.check db with
     | Ok () -> ()
     | Error e -> fail "%s: check: %s" what e);
    match SD.health db sick with
    | Kv.Sharded_db.Healthy ->
      for i = 0 to nkeys - 1 do
        let k = key i in
        if SD.get db k <> SD.get control k then
          fail "%s: repaired store diverged at %s" what k
      done
    | Kv.Sharded_db.Quarantined (Kv.Sharded_db.Evacuated { target }) -> (
      for s = 0 to SD.route_slots db - 1 do
        if SD.shard_of_slot db s = sick then
          fail "%s: slot %d still routed to the evacuated shard" what s
      done;
      (match SD.health db target with
       | Kv.Sharded_db.Healthy -> ()
       | _ -> fail "%s: evacuation target %d is not healthy" what target);
      let seen = Hashtbl.create 64 in
      SD.iter db (fun k _ ->
          if Hashtbl.mem seen k then fail "%s: scan served %s twice" what k;
          Hashtbl.replace seen k ());
      for i = 0 to nkeys - 1 do
        let k = key i in
        match SD.get db k with
        | Some v ->
          if Some v <> SD.get control k then
            fail "%s: survivor %s diverged" what k;
          if not (Hashtbl.mem seen k) then
            fail "%s: get serves %s but the scan missed it" what k
        | None ->
          (* lost to the rotten line: acceptable only for a key that
             lived on the evacuated shard *)
          if SD.shard_of_key control k <> sick then
            fail "%s: lost healthy-shard key %s" what k;
          if Hashtbl.mem seen k then
            fail "%s: scan serves the dropped key %s" what k
        | exception e ->
          fail "%s: %s raised %s after evacuation" what k
            (Printexc.to_string e)
      done;
      (* a write to a formerly-sick key lands on the adopting shard *)
      let k = key 0 in
      SD.put db k "post-evac";
      if SD.get db k <> Some "post-evac" then
        fail "%s: post-evacuation write lost" what;
      match SD.get control k with
      | Some v -> SD.put db k v
      | None -> ignore (SD.delete db k : bool))
    | _ -> fail "%s: repair did not converge (shard %d still sick)" what sick
  in
  for round = 1 to rounds do
    let salt = round * 31 in
    let sick = sick_of round in
    (* (A) degraded shard with a snapshot on disk: restore, all-Healthy *)
    let rs, db = fresh () in
    let base =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "crashtest-quarantine-%d-%d" seed round)
    in
    SD.save_to_files db base;
    rot db rs sick;
    crash_all rs (pick_policy salt);
    let db = SD.open_db ~initial_buckets:8 rs in
    let what = Printf.sprintf "round %d restore" round in
    availability what db ~sick;
    let outcomes = SD.repair ~seed:(seed + salt) ~snapshot_base:base db in
    (match List.assoc_opt sick outcomes with
     | Some SD.Snapshot_restored -> incr restores
     | Some SD.Scrub_repaired -> ()
     | o ->
       fail "%s: repair returned %s" what
         (match o with
          | None -> "no verdict for the sick shard"
          | Some (SD.Evacuated_keys _) -> "an evacuation, snapshot ignored"
          | _ -> "Unrepaired"));
    converged what db ~sick;
    Array.iteri
      (fun i _ ->
        let path = Pmem.Region.shard_snapshot_path base ~shard:i in
        if Sys.file_exists path then Sys.remove path)
      rs;
    (* (B) same damage, no snapshot: the supervisor evacuates *)
    let rs, db = fresh () in
    rot db rs sick;
    crash_all rs (pick_policy (salt + 7));
    let db = SD.open_db ~initial_buckets:8 rs in
    let what = Printf.sprintf "round %d evacuate" round in
    availability what db ~sick;
    (match List.assoc_opt sick (SD.repair ~seed:(seed + salt + 1) db) with
     | Some (SD.Evacuated_keys { target = _; moved }) ->
       incr evacs;
       let st = SD.stats db in
       if st.Pmem.Stats.shards_evacuated = 0 then
         fail "%s: shards_evacuated did not tick" what;
       if st.Pmem.Stats.keys_evacuated <> moved then
         fail "%s: keys_evacuated=%d but the verdict moved %d" what
           st.Pmem.Stats.keys_evacuated moved
     | Some SD.Scrub_repaired -> ()
     | Some SD.Snapshot_restored ->
       fail "%s: restored without a snapshot" what
     | Some (SD.Unrepaired _) | None ->
       fail "%s: supervisor gave up on an evacuable shard" what);
    converged what db ~sick;
    if SD.pending_intents db <> 0 then
      fail "%s: records left hooked after evacuation" what;
    (* the retired verdict and the surviving keys are durable *)
    crash_all rs (pick_policy (salt + 9));
    let db = SD.open_db ~initial_buckets:8 rs in
    converged (what ^ " reopened") db ~sick;
    (* (C) kill a region at the sharded.health.* failpoints, then rerun *)
    let rs, db = fresh () in
    rot db rs sick;
    crash_all rs (pick_policy (salt + 11));
    (* c1: crash while open_db files the shard's verdict (the kill takes
       out shard 0, the anchor the verdict is being persisted to) *)
    Fault.arm "sharded.health.degraded" (fun () -> Pmem.Region.kill rs.(0));
    let db =
      match SD.open_db ~initial_buckets:8 rs with
      | db ->
        Fault.disarm ();
        db
      | exception Pmem.Region.Crash_point ->
        incr crashes;
        Fault.disarm ();
        crash_all rs (pick_policy (salt + 12));
        SD.open_db ~initial_buckets:8 rs
    in
    availability (Printf.sprintf "round %d health crash" round) db ~sick;
    (* c2/c3: crash before the evacuation copies anything durable, or
       after its epoch flip but before reclamation *)
    let site =
      if round mod 2 = 0 then "sharded.health.evacuate_start"
      else "sharded.health.evacuated"
    in
    let victim = Workload.Keygen.int rng nshards in
    Fault.arm site (fun () -> Pmem.Region.kill rs.(victim));
    (match SD.repair ~seed:(seed + salt + 2) db with
     | (_ : (int * SD.repair_outcome) list) -> Fault.disarm ()
     | exception Pmem.Region.Crash_point ->
       incr crashes;
       incr rec_crashes;
       Fault.disarm ());
    crash_all rs (pick_policy (salt + 13));
    let db = SD.open_db ~initial_buckets:8 rs in
    let what = Printf.sprintf "round %d %s" round site in
    (match SD.health db sick with
     | Kv.Sharded_db.Healthy -> fail "%s: reopen lost the verdict" what
     | Kv.Sharded_db.Quarantined (Kv.Sharded_db.Evacuated _) ->
       (* the flip landed before the kill; recovery finished the job *)
       ()
     | _ -> (
       (* nothing durable yet: the rerun must converge *)
       match
         List.assoc_opt sick (SD.repair ~seed:(seed + salt + 3) db)
       with
       | Some (SD.Evacuated_keys _) | Some SD.Scrub_repaired -> ()
       | _ -> fail "%s: rerun repair did not converge" what));
    converged what db ~sick;
    if SD.pending_intents db <> 0 then
      fail "%s: records left hooked after a crashed repair" what;
    if verbose then
      Printf.printf "  ... %d/%d rounds, %d crashes (%d during repair)\n%!"
        round rounds !crashes !rec_crashes
  done;
  if !restores = 0 then fail "snapshot-restore path never exercised";
  if !evacs = 0 then fail "evacuation path never exercised";
  { rounds;
    crashes = !crashes;
    recovery_crashes = !rec_crashes;
    failures = !failures }

(* ---- group-commit front-end campaign ---- *)

(* Crash campaign for the async group-commit front-end (Group_commit):
   per round and per ack mode (Sync / Batch_sync / Async, window 4 so a
   short stream spans several drain windows), a stream of single-key
   puts runs with an instruction trap armed on a random shard's region,
   then the machine powers off under the selected --policy and the raw
   sharded store is reopened.  The oracle: every entry below the
   front-end's durability watermark (read after the crash — the
   watermark only advances once a window's engine transaction has
   committed) must survive with its exact value, the survivors on every
   shard queue must form a clean prefix of the submission order (a
   window settles as one engine transaction, so a lost entry can never
   be followed by a durable one), and no key may ever come back torn.
   In Sync mode every put that returned is below the watermark, which
   is the "acked-Sync writes survive any crash" guarantee.  Cross-shard
   batches get the same treatment on the cross queue, plus a clean-path
   determinism check per round: three batches submitted back-to-back
   must settle as ONE shared intent (one coordinator flip, two merged
   intents) in the deferred-ack modes and as three separate flips under
   per-tx Sync. *)
let run_group_campaign (module P : PTM) ~nshards ~rounds ~seed ~verbose
    ~policy =
  let module SD = Kv.Sharded_db.Make (P) in
  let module F = Kv.Group_commit.Make (P) in
  let rng = Workload.Keygen.create ~seed () in
  let failures = ref [] in
  let crashes = ref 0 in
  let rec_crashes = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let pick_policy salt =
    match policy with
    | `Drop -> Pmem.Region.Drop_all
    | `Keep -> Pmem.Region.Keep_all
    | `Random -> Pmem.Region.Random_subset (seed + salt)
    | `Torn -> Pmem.Region.Torn_words (seed + salt)
    | `Mix -> (
      match Workload.Keygen.int rng 4 with
      | 0 -> Pmem.Region.Drop_all
      | 1 -> Pmem.Region.Keep_all
      | 2 -> Pmem.Region.Torn_words (seed + salt)
      | _ -> Pmem.Region.Random_subset (seed + salt))
  in
  let base_key i = Printf.sprintf "base%02d" i in
  let skey i = Printf.sprintf "g%03d" i in
  let crash_all rs p = Array.iter (fun r -> Pmem.Region.crash r p) rs in
  let window = 4 in
  let modes =
    [ ("sync", Kv.Group_commit.Sync);
      ("batch", Kv.Group_commit.Batch_sync { txs = 3; bytes = 1 lsl 16 });
      ("async", Kv.Group_commit.Async) ]
  in
  let fresh protocol =
    let rs =
      Array.init nshards (fun _ -> Pmem.Region.create ~size:(1 lsl 19) ())
    in
    let db = SD.open_db ~protocol ~initial_buckets:8 rs in
    for i = 0 to 7 do
      SD.put db (base_key i) "settled"
    done;
    (rs, db)
  in
  (* Survivors of [subs] (submission order) must be a prefix no shorter
     than the durable floor, with exact values — never a torn or
     re-ordered suffix.  The floor is the queue's watermark minus its
     settled-with-failure entries: the watermark counts every settled
     entry, and on the dead region a whole window settles as failures,
     but everything that settled with a value committed its engine
     transaction before the power-off and must come back. *)
  let check_prefix what ~floor db subs =
    let n = Array.length subs in
    let rec cut i =
      if i >= n then n
      else if SD.get db (fst subs.(i)) = Some (snd subs.(i)) then cut (i + 1)
      else i
    in
    let c = cut 0 in
    if c < floor then
      fail "%s: %d entries durable before the crash but only %d survived"
        what floor c;
    for i = c to n - 1 do
      let k, _ = subs.(i) in
      match SD.get db k with
      | None -> ()
      | Some got ->
        fail "%s: suffix entry %s survived (%S) beyond the cut %d" what k
          got c
    done;
    for i = 0 to 7 do
      if SD.get db (base_key i) <> Some "settled" then
        fail "%s: lost settled key %s" what (base_key i)
    done
  in
  let reopen what protocol rs =
    let db = SD.open_db ~protocol ~initial_buckets:8 rs in
    (match SD.check db with
     | Ok () -> ()
     | Error e -> fail "%s: check: %s" what e);
    if SD.pending_intents db <> 0 then
      fail "%s: records left hooked after recovery" what;
    db
  in
  (* three keys on one shard and three on another, so every cross batch
     really spans two participants *)
  let cross_keys db =
    let probe i = Printf.sprintf "x%03d" i in
    let sa = SD.shard_of_key db (probe 0) in
    let rec collect i ~on n acc =
      if n = 0 then List.rev acc
      else if i > 999 then failwith "group campaign: key space too small"
      else if (SD.shard_of_key db (probe i) = sa) = on then
        collect (i + 1) ~on (n - 1) (probe i :: acc)
      else collect (i + 1) ~on n acc
    in
    (collect 0 ~on:true 3 [], collect 0 ~on:false 3 [])
  in
  for round = 1 to rounds do
    let salt = round * 37 in
    let protocol =
      Kv.Sharded_db.Decentralized { lazy_clear = round mod 2 = 0 }
    in
    List.iteri
      (fun mi (mname, ack) ->
        let what = Printf.sprintf "round %d %s" round mname in
        (* (a) single-key stream crashed mid-drain.  [failed] counts the
           settled-with-failure entries per queue: deferred failures
           from {!F.failures} (retained when the drain raised) plus, in
           Sync mode, the raising put itself (its failure is answered
           to the submitter, never deferred). *)
        let rs, db = fresh protocol in
        let fe = F.attach ~window ~ack db in
        let t = Workload.Keygen.int rng nshards in
        let subs = Array.make nshards [] in
        let failed = Array.make (nshards + 1) 0 in
        let last_shard = ref 0 in
        Pmem.Region.set_trap rs.(t)
          (1 + Workload.Keygen.int rng 600);
        let stream () =
          for i = 0 to 23 do
            let k = skey i in
            let v = Printf.sprintf "sv%d-%d" round i in
            let s = SD.shard_of_key db k in
            subs.(s) <- (k, v) :: subs.(s);
            last_shard := s;
            F.put fe k v
          done;
          F.flush fe
        in
        (match stream () with
         | () -> Pmem.Region.clear_trap rs.(t)
         | exception Pmem.Region.Crash_point ->
           incr crashes;
           if ack = Kv.Group_commit.Sync then
             failed.(!last_shard) <- failed.(!last_shard) + 1);
        List.iter
          (fun (qi, _, _) -> failed.(qi) <- failed.(qi) + 1)
          (F.failures fe);
        let floors =
          Array.init nshards (fun s ->
              max 0 (F.watermark fe s - failed.(s)))
        in
        crash_all rs (pick_policy (salt + mi));
        let db = reopen (what ^ " stream") protocol rs in
        for s = 0 to nshards - 1 do
          check_prefix
            (Printf.sprintf "%s stream shard %d" what s)
            ~floor:floors.(s) db
            (Array.of_list (List.rev subs.(s)))
        done;
        (* (b) clean cross-batch merge: the shared-intent determinism *)
        let _rs, db = fresh protocol in
        let fe = F.attach ~window ~ack db in
        let ka, kb = cross_keys db in
        let st0 = Pmem.Stats.snapshot (SD.stats db) in
        List.iteri
          (fun j (a, b') ->
            F.write_batch fe (fun db ->
                SD.put db a (Printf.sprintf "ca%d" j);
                SD.put db b' (Printf.sprintf "cb%d" j)))
          (List.combine ka kb);
        F.flush fe;
        let d = Pmem.Stats.since ~now:(SD.stats db) ~past:st0 in
        let flips = d.Pmem.Stats.coordinator_flips in
        let merged = d.Pmem.Stats.merged_intents in
        (match ack with
         | Kv.Group_commit.Sync ->
           if flips <> 3 || merged <> 0 then
             fail "%s: per-tx sync batches flips=%d merged=%d (want 3/0)"
               what flips merged
         | _ ->
           if flips <> 1 || merged <> 2 then
             fail "%s: merged batches flips=%d merged=%d (want 1/2)" what
               flips merged);
        List.iteri
          (fun j (a, b') ->
            if SD.get db a <> Some (Printf.sprintf "ca%d" j)
               || SD.get db b' <> Some (Printf.sprintf "cb%d" j)
            then fail "%s: clean cross batch %d not applied" what j)
          (List.combine ka kb);
        (* (c) cross batches crashed mid-protocol: all-or-nothing per
           batch, prefix over the cross queue *)
        let rs, db = fresh protocol in
        let fe = F.attach ~window ~ack db in
        let ka, kb = cross_keys db in
        let t = Workload.Keygen.int rng nshards in
        Pmem.Region.set_trap rs.(t)
          (1 + Workload.Keygen.int rng 400);
        let run () =
          List.iteri
            (fun j (a, b') ->
              F.write_batch fe (fun db ->
                  SD.put db a (Printf.sprintf "ka%d-%d" round j);
                  SD.put db b' (Printf.sprintf "kb%d-%d" round j)))
            (List.combine ka kb);
          F.flush fe
        in
        let cross_failed = ref 0 in
        (match run () with
         | () -> Pmem.Region.clear_trap rs.(t)
         | exception Pmem.Region.Crash_point ->
           incr crashes;
           if ack = Kv.Group_commit.Sync then incr cross_failed);
        List.iter
          (fun (qi, _, _) -> if qi = nshards then incr cross_failed)
          (F.failures fe);
        let cfloor = max 0 (F.watermark fe nshards - !cross_failed) in
        crash_all rs (pick_policy (salt + mi + 5));
        let db = reopen (what ^ " cross") protocol rs in
        let applied =
          List.mapi
            (fun j (a, b') ->
              let ga = SD.get db a = Some (Printf.sprintf "ka%d-%d" round j)
              and gb =
                SD.get db b' = Some (Printf.sprintf "kb%d-%d" round j)
              in
              if ga <> gb then
                fail "%s: cross batch %d half-applied" what j;
              ga && gb)
            (List.combine ka kb)
        in
        let rec cut i = function
          | true :: rest -> cut (i + 1) rest
          | rest ->
            if List.mem true rest then
              fail "%s: cross suffix batch survived beyond the cut" what;
            i
        in
        let c = cut 0 applied in
        if c < cfloor then
          fail "%s: %d cross batches durable before the crash but only %d \
                survived"
            what cfloor c)
      modes;
    (* (d) crash the recovery of a crashed stream itself: reopening after
       a second power-off must converge to the same prefix contract *)
    let protocol = Kv.Sharded_db.Centralized in
    let rs, db = fresh protocol in
    let fe = F.attach ~window ~ack:Kv.Group_commit.Async db in
    let t = Workload.Keygen.int rng nshards in
    Pmem.Region.set_trap rs.(t) (1 + Workload.Keygen.int rng 300);
    let subs = Array.make nshards [] in
    (match
       for i = 0 to 15 do
         let k = skey i in
         let v = Printf.sprintf "rv%d-%d" round i in
         let s = SD.shard_of_key db k in
         subs.(s) <- (k, v) :: subs.(s);
         F.put fe k v
       done;
       F.flush fe
     with
     | () -> Pmem.Region.clear_trap rs.(t)
     | exception Pmem.Region.Crash_point -> incr crashes);
    let failed = Array.make (nshards + 1) 0 in
    List.iter
      (fun (qi, _, _) -> failed.(qi) <- failed.(qi) + 1)
      (F.failures fe);
    let floors =
      Array.init nshards (fun s -> max 0 (F.watermark fe s - failed.(s)))
    in
    crash_all rs (pick_policy (salt + 23));
    let u = Workload.Keygen.int rng nshards in
    Pmem.Region.set_trap rs.(u) (1 + Workload.Keygen.int rng 60);
    let db =
      match SD.open_db ~protocol ~initial_buckets:8 rs with
      | db ->
        Pmem.Region.clear_trap rs.(u);
        db
      | exception Pmem.Region.Crash_point ->
        incr rec_crashes;
        crash_all rs (pick_policy (salt + 29));
        reopen (Printf.sprintf "round %d rec-crash" round) protocol rs
    in
    for s = 0 to nshards - 1 do
      check_prefix
        (Printf.sprintf "round %d rec-crash shard %d" round s)
        ~floor:floors.(s) db
        (Array.of_list (List.rev subs.(s)))
    done;
    if verbose then
      Printf.printf "  ... %d/%d rounds, %d crashes (%d during recovery)\n%!"
        round rounds !crashes !rec_crashes
  done;
  { rounds;
    crashes = !crashes;
    recovery_crashes = !rec_crashes;
    failures = !failures }

(* ---- command line ---- *)

let ptm_arg =
  let doc = "PTM to test: rom, romL, romLR, mne, pmdk, or all." in
  Arg.(value & opt string "all" & info [ "ptm" ] ~docv:"PTM" ~doc)

let workload_arg =
  let doc = "Workload: list, tree, map, or all." in
  Arg.(value & opt string "all" & info [ "workload" ] ~docv:"W" ~doc)

let rounds_arg =
  let doc = "Rounds per campaign (each round runs 4 ops with a crash trap)." in
  Arg.(value & opt int 200 & info [ "rounds" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "PRNG seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let policy_arg =
  let doc =
    "Cache-line fate policy at each crash: drop (no unfenced line \
     persists), keep (every one does), random (per-line coin), torn \
     (per-8-byte-word coin — the torn-word adversary), or mix (rotate \
     through all of them)."
  in
  Arg.(
    value
    & opt (enum [ ("drop", `Drop); ("keep", `Keep); ("random", `Random);
                  ("torn", `Torn); ("mix", `Mix) ])
        `Mix
    & info [ "policy" ] ~docv:"POLICY" ~doc)

let recovery_crashes_arg =
  let doc =
    "Crash the recovery itself up to $(docv) levels deep after every \
     injected crash (recovery must be idempotent)."
  in
  Arg.(value & opt int 0 & info [ "recovery-crashes" ] ~docv:"K" ~doc)

let failpoint_arg =
  let doc =
    "Arm the named failpoint site instead of the instruction-counting \
     trap; see --list-failpoints for the registered names."
  in
  Arg.(
    value & opt (some string) None & info [ "failpoint" ] ~docv:"SITE" ~doc)

let inject_exn_arg =
  let doc =
    "Exception-injection mode: instead of crashing, every raise-capable \
     failpoint site reachable from the selected PTMs raises a typed \
     Fault.Injected, and each round asserts the abort contract (typed \
     error, aborted transaction invisible, allocator sound, recovery a \
     byte-level no-op, follow-up transaction from another thread slot \
     commits).  Combine with --failpoint to sweep a single site."
  in
  Arg.(value & flag & info [ "inject-exn" ] ~doc)

let scrub_arg =
  let doc =
    "Media-rot scrub campaign: inject silent corruption at rest into the \
     used persistent spans, restart, and require twin-copy PTMs to \
     recover byte-identical to an uncorrupted control while single-image \
     baselines surface every fault as a typed error.  Also crashes \
     inside the repair window (engine.scrub.* failpoints plus a trap \
     sweep) under every line-fate policy.  --rounds is the number of \
     seeds swept."
  in
  Arg.(value & flag & info [ "scrub" ] ~doc)

let rot_rates_arg =
  let doc =
    "Comma-separated per-line rot probabilities for the scrub campaign."
  in
  Arg.(
    value
    & opt string "0.002,0.01,0.05"
    & info [ "rot-rates" ] ~docv:"R1,R2,.." ~doc)

let shards_arg =
  let doc =
    "Sharded-store campaign over $(docv) hash shards (0 disables): crash \
     a cross-shard write batch with instruction traps on every shard, \
     failpoint kills inside each batch-intent window (intent PREPARED, \
     between per-shard commits, after the COMMIT flip), and a crash \
     inside the parallel recovery fan-out, resolving each power-off \
     under the selected --policy.  The oracle requires every batch to \
     be all-or-nothing.  --rounds is the number of seeds swept."
  in
  Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N" ~doc)

let decentralized_arg =
  let doc =
    "With --shards, drive the decentralized presumed-abort commit \
     protocol instead of the legacy centralized batch intent: per-round \
     windows kill the coordinator's region after a participant's \
     mirror+apply (expect presumed abort), after the COMMIT flip \
     (expect roll-forward), inside the lazy-CLEAR piggyback of a second \
     batch (the first must stay applied), and inside recovery's \
     mirror-resolution loop (reconciliation must converge when crashed \
     and rerun).  Lazy and eager CLEAR alternate across rounds."
  in
  Arg.(value & flag & info [ "decentralized" ] ~doc)

let chunked_arg =
  let doc =
    "With --shards, drive the chunked intent-streaming campaign instead: \
     stores run with deliberately small chunk/spill knobs so every \
     cross-shard PREPARE streams a multi-chunk CRC-protected mirror \
     chain and spills its undo images, and the windows kill mid-chain, \
     at a spill, in the seal window (a complete but unsealed chain is \
     presumed-abort garbage), after the coordinator flip (roll-forward \
     with parked chains), and inside recovery's chain GC itself.  \
     Implies the decentralized protocol; lazy and eager CLEAR \
     alternate across rounds."
  in
  Arg.(value & flag & info [ "chunked" ] ~doc)

let quarantine_arg =
  let doc =
    "With --shards (>= 2), drive the fault-isolation campaign instead: \
     rot both twins of a line inside one shard of a settled store at \
     rest, reopen, and require every healthy slot to serve \
     byte-identical to an undamaged control while the operations the \
     sick shard's verdict forbids fail with the typed Shard_unavailable \
     naming that shard — never a wrong value, never a leaked abort.  \
     Repair must converge: snapshot restore back to all-Healthy when a \
     snapshot exists, evacuation of every salvageable key exactly once \
     otherwise, with kills at the sharded.health.* failpoints (inside \
     open's classification and both evacuation windows) crash-resolved \
     under --policy and rerun to the same end state."
  in
  Arg.(value & flag & info [ "quarantine" ] ~doc)

let migrate_arg =
  let doc =
    "With --shards (>= 2), drive the elastic-sharding migration campaign \
     instead: every round crashes an online shard split/merge with \
     instruction traps on every region (the split's freshly-formatted \
     target included), failpoint kills inside each sharded.migrate.* \
     window (intent open, after a move batch's source and target \
     transactions, after the epoch flip, after reclamation), a second \
     crash inside recovery's migration resume, and a racing single-key \
     write fired between the two halves of a move batch.  The oracle \
     requires every key present exactly once after recovery, the raced \
     key at the racing value, and a durable intent to always complete \
     (resume, never roll back)."
  in
  Arg.(value & flag & info [ "migrate" ] ~doc)

let group_arg =
  let doc =
    "With --shards (>= 2), drive the async group-commit front-end \
     campaign instead: streams of single-key puts and cross-shard \
     batches run through the Group_commit submission queues in every \
     ack mode (per-tx Sync, Batch_sync, Async; window 4), crashed with \
     instruction traps mid-drain and during recovery, each power-off \
     resolved under --policy.  The oracle: every entry below the \
     durability watermark survives with its exact value (in Sync mode \
     that is every acknowledged write), survivors on every queue form \
     a clean prefix of submission order — a loss is always a watermark \
     suffix, never a torn or re-ordered one — and three back-to-back \
     cross batches settle as ONE shared intent (one coordinator flip, \
     two merged intents) in the deferred-ack modes versus three flips \
     under per-tx Sync."
  in
  Arg.(value & flag & info [ "group" ] ~doc)

let list_failpoints_arg =
  let doc =
    "Print every registered failpoint site (raise-capable ones marked) \
     and exit."
  in
  Arg.(value & flag & info [ "list-failpoints" ] ~doc)

let verbose_arg =
  let doc = "Progress output." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let main ptm workload rounds seed policy recovery_crashes failpoint
    inject_exn scrub rot_rates_str nshards decentralized chunked quarantine
    migrate group list_failpoints verbose =
  if list_failpoints then begin
    List.iter
      (fun s ->
        if Fault.can_raise s then Printf.printf "%s  [raise-capable]\n" s
        else print_endline s)
      (Fault.sites ());
    exit 0
  end;
  (match failpoint with
   | Some site when not (Fault.is_site site) ->
     Printf.eprintf "unknown failpoint %S; registered sites:\n" site;
     List.iter (Printf.eprintf "  %s\n") (Fault.sites ());
     exit 2
   | _ -> ());
  let selected_ptms =
    if ptm = "all" then ptms
    else
      match List.assoc_opt ptm ptms with
      | Some m -> [ (ptm, m) ]
      | None -> failwith ("unknown PTM " ^ ptm)
  in
  let workloads =
    match workload with
    | "all" -> [ ("list", `List); ("tree", `Tree); ("map", `Map) ]
    | "list" -> [ ("list", `List) ]
    | "tree" -> [ ("tree", `Tree) ]
    | "map" -> [ ("map", `Map) ]
    | w -> failwith ("unknown workload " ^ w)
  in
  if migrate && nshards < 2 then begin
    Printf.eprintf "--migrate needs --shards >= 2 (a 1-shard store has no \
                    pre-pinned routing table to resume from)\n";
    exit 2
  end;
  if quarantine && nshards < 2 then begin
    Printf.eprintf "--quarantine needs --shards >= 2 (quarantining the \
                    only shard leaves nothing to keep serving)\n";
    exit 2
  end;
  if group && nshards < 2 then begin
    Printf.eprintf "--group needs --shards >= 2 (the cross-queue merge \
                    needs at least two participants)\n";
    exit 2
  end;
  let failed = ref false in
  if nshards > 0 then
    (* the sharded campaign has its own cross-shard workload; the
       --workload selection does not apply *)
    List.iter
      (fun (pname, m) ->
        let o =
          if group then begin
            Printf.printf "%-6s x %d-shard group-commit: %!" pname nshards;
            run_group_campaign m ~nshards ~rounds ~seed ~verbose ~policy
          end
          else if migrate then begin
            Printf.printf "%-6s x %d-shard elastic-migrate: %!" pname nshards;
            run_migrate_campaign m ~nshards ~rounds ~seed ~verbose ~policy
          end
          else if quarantine then begin
            Printf.printf "%-6s x %d-shard fault-isolation: %!" pname nshards;
            run_quarantine_campaign m ~nshards ~rounds ~seed ~verbose ~policy
          end
          else if chunked then begin
            Printf.printf "%-6s x %d-shard chunked-stream: %!" pname nshards;
            run_chunked_campaign m ~nshards ~rounds ~seed ~verbose ~policy
          end
          else begin
            Printf.printf "%-6s x %d-shard %s: %!" pname nshards
              (if decentralized then "presumed-abort" else "batch-intent");
            run_sharded_campaign m ~nshards ~rounds ~seed ~verbose ~policy
              ~decentralized
          end
        in
        if o.failures = [] then
          Printf.printf "OK (%d seeds, %d crash-recoveries, %d crashes \
                         inside recovery)\n%!"
            o.rounds o.crashes o.recovery_crashes
        else begin
          failed := true;
          Printf.printf "FAILED (%d issues)\n" (List.length o.failures);
          List.iter (fun f -> Printf.printf "    %s\n" f) o.failures
        end)
      selected_ptms
  else if scrub then begin
    let rot_rates =
      try
        List.map float_of_string
          (List.filter
             (fun s -> s <> "")
             (String.split_on_char ',' rot_rates_str))
      with Failure _ ->
        Printf.eprintf "unparsable --rot-rates %S\n" rot_rates_str;
        exit 2
    in
    if rot_rates = [] then begin
      Printf.eprintf "--rot-rates must name at least one rate\n";
      exit 2
    end;
    List.iter
      (fun (pname, m) ->
        List.iter
          (fun (wname, w) ->
            Printf.printf "%-6s x %-5s x scrub: %!" pname wname;
            let o =
              run_scrub_campaign m ~workload:w ~rounds ~seed ~verbose
                ~rot_rates
            in
            if o.failures = [] then
              Printf.printf
                "OK (%d seeds x %d rates, %d lines repaired, %d \
                 repair-window crashes)\n%!"
                o.rounds (List.length rot_rates) o.crashes
                o.recovery_crashes
            else begin
              failed := true;
              Printf.printf "FAILED (%d issues)\n" (List.length o.failures);
              List.iter (fun f -> Printf.printf "    %s\n" f) o.failures
            end)
          workloads)
      selected_ptms
  end
  else if inject_exn then
    (* exception-injection sweep: PTMs x workloads x raise-capable sites *)
    let sweep_sites =
      match failpoint with
      | Some site ->
        if not (Fault.can_raise site) then begin
          Printf.eprintf "site %S is not raise-capable; sweepable sites:\n"
            site;
          List.iter (Printf.eprintf "  %s\n") (Fault.raise_sites ());
          exit 2
        end;
        [ site ]
      | None -> Fault.raise_sites ()
    in
    List.iter
      (fun (pname, m) ->
        List.iter
          (fun (wname, w) ->
            List.iter
              (fun site ->
                if site_applicable ~ptm:pname site then begin
                  Printf.printf "%-6s x %-5s x %-28s: %!" pname wname site;
                  let o =
                    run_inject_campaign m ~workload:w ~rounds ~seed ~verbose
                      ~site
                  in
                  if o.failures = [] then
                    Printf.printf "OK (%d rounds, %d injected aborts)\n%!"
                      o.rounds o.crashes
                  else begin
                    failed := true;
                    Printf.printf "FAILED (%d issues)\n"
                      (List.length o.failures);
                    List.iter (fun f -> Printf.printf "    %s\n" f) o.failures
                  end
                end)
              sweep_sites)
          workloads)
      selected_ptms
  else
    List.iter
      (fun (pname, m) ->
        List.iter
          (fun (wname, w) ->
            Printf.printf "%-6s x %-5s: %!" pname wname;
            let o =
              run_campaign m ~workload:w ~rounds ~seed ~verbose ~policy
                ~recovery_crashes ~failpoint
            in
            if o.failures = [] then begin
              Printf.printf "OK (%d rounds, %d crash-recoveries" o.rounds
                o.crashes;
              if o.recovery_crashes > 0 then
                Printf.printf ", %d crashes inside recovery"
                  o.recovery_crashes;
              Printf.printf ")\n%!"
            end
            else begin
              failed := true;
              Printf.printf "FAILED (%d issues)\n" (List.length o.failures);
              List.iter (fun f -> Printf.printf "    %s\n" f) o.failures
            end)
          workloads)
      selected_ptms;
  if !failed then exit 1

let cmd =
  let doc = "crash-injection campaigns against the Romulus PTMs" in
  let info = Cmd.info "crashtest" ~doc in
  Cmd.v info
    Term.(const main $ ptm_arg $ workload_arg $ rounds_arg $ seed_arg
          $ policy_arg $ recovery_crashes_arg $ failpoint_arg
          $ inject_exn_arg $ scrub_arg $ rot_rates_arg $ shards_arg
          $ decentralized_arg $ chunked_arg $ quarantine_arg $ migrate_arg
          $ group_arg $ list_failpoints_arg $ verbose_arg)

let () =
  Printexc.register_printer (function
    | Kv.Sharded_db.Shard_open_failed { shard; cause } ->
      Some
        (Printf.sprintf "Sharded_db.Shard_open_failed { shard = %d; cause = %s }"
           shard (Printexc.to_string cause))
    | Kv.Sharded_db.Shard_unavailable { shard; _ } ->
      Some (Printf.sprintf "Sharded_db.Shard_unavailable { shard = %d }" shard)
    | _ -> None);
  exit (Cmd.eval cmd)
