(* crashtest — a configurable crash-injection campaign.

   Runs a workload (data structure or key-value store) on a chosen PTM,
   systematically or randomly crashing at instruction boundaries under
   adversarial cache-line policies, recovering, and checking structural
   invariants plus operation-level atomicity.  This is the repository's
   verification tool in CLI form:

     crashtest --ptm romLR --workload tree --rounds 500 --seed 7
     crashtest --ptm all --workload all --rounds 100
     crashtest --policy torn --rounds 200          # torn-word adversary
     crashtest --recovery-crashes 3                # crash recovery itself
     crashtest --ptm romL --failpoint engine.commit.cpy_published
     crashtest --inject-exn --rounds 25            # exception injection
     crashtest --list-failpoints

   --inject-exn switches from crash injection to exception injection:
   every raise-capable failpoint site reachable from the selected PTM is
   armed, per round, to raise Fault.Injected instead of powering the
   machine off, and the campaign asserts the abort contract — a typed
   Engine.Tx_aborted at the caller, the aborted transaction invisible
   against the sequential oracle, allocator metadata intact, recovery a
   byte-level no-op, and a follow-up transaction from another thread
   slot committing. *)

open Cmdliner

module type PTM = sig
  include Romulus.Ptm_intf.S

  val recover : t -> unit
  val allocator_check : t -> (unit, string) result
end

let ptms : (string * (module PTM)) list =
  [ ("rom", (module Romulus.Basic));
    ("romL", (module Romulus.Logged));
    ("romLR", (module Romulus.Lr));
    ("mne", (module Baselines.Redolog));
    ("pmdk", (module Baselines.Undolog)) ]

type outcome = {
  rounds : int;
  crashes : int;
  recovery_crashes : int;
  failures : string list;
}

(* One workload campaign: run [rounds] batches of random operations with a
   random crash trap (or a named failpoint) armed; after each crash,
   recover — optionally crashing the recovery itself, [recovery_crashes]
   levels deep — and check invariants + a shadow model. *)
let run_campaign (module P : PTM) ~workload ~rounds ~seed ~verbose ~policy
    ~recovery_crashes ~failpoint =
  let rng = Workload.Keygen.create ~seed () in
  let region = Pmem.Region.create ~size:(1 lsl 20) () in
  let p = P.open_region region in
  let failures = ref [] in
  let crashes = ref 0 in
  let rec_crashes = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let pick_policy salt =
    match policy with
    | `Drop -> Pmem.Region.Drop_all
    | `Keep -> Pmem.Region.Keep_all
    | `Random -> Pmem.Region.Random_subset (seed + salt)
    | `Torn -> Pmem.Region.Torn_words (seed + salt)
    | `Mix -> (
      match Workload.Keygen.int rng 4 with
      | 0 -> Pmem.Region.Drop_all
      | 1 -> Pmem.Region.Keep_all
      | 2 -> Pmem.Region.Torn_words (seed + salt)
      | _ -> Pmem.Region.Random_subset (seed + salt))
  in
  (* the workload exposes: apply one op (given a shadow model), and a
     checker run after each recovery *)
  let module M = struct
    module L = Pds.Linked_list.Make (P)
    module T = Pds.Rb_tree.Make (P)
    module H = Pds.Hash_map.Make (P)
  end in
  let shadow : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* create the structures before any trap is armed: a crash during lazy
     creation would poison the thunk *)
  let list_ = M.L.create p ~root:0 in
  let tree = M.T.create p ~root:1 in
  let map = M.H.create ~initial_buckets:8 p ~root:2 in
  let key () = Workload.Keygen.int rng 200 in
  let apply_op () =
    let k = key () in
    match workload with
    | `List ->
      if Workload.Keygen.bool rng then (
        ignore (M.L.add list_ k);
        Hashtbl.replace shadow k k)
      else (
        ignore (M.L.remove list_ k);
        Hashtbl.remove shadow k)
    | `Tree ->
      if Workload.Keygen.bool rng then (
        ignore (M.T.put tree k (k * 3));
        Hashtbl.replace shadow k (k * 3))
      else (
        ignore (M.T.remove tree k);
        Hashtbl.remove shadow k)
    | `Map ->
      if Workload.Keygen.bool rng then (
        ignore (M.H.put map k (k * 5));
        Hashtbl.replace shadow k (k * 5))
      else (
        ignore (M.H.remove map k);
        Hashtbl.remove shadow k)
  in
  let check round =
    let structural =
      match workload with
      | `List -> M.L.check list_
      | `Tree -> M.T.check tree
      | `Map -> M.H.check map
    in
    (match structural with
     | Ok () -> ()
     | Error e -> fail "round %d: structural: %s" round e);
    (* the persistent contents must be the shadow model, except for the
       single operation in flight at the crash (atomic either way) *)
    let mine =
      match workload with
      | `List ->
        M.L.fold list_ (fun acc k -> (k, k) :: acc) []
      | `Tree -> M.T.fold tree (fun acc k v -> (k, v) :: acc) []
      | `Map -> M.H.fold map (fun acc k v -> (k, v) :: acc) []
    in
    let theirs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) shadow [] in
    let diff =
      List.length
        (List.filter (fun kv -> not (List.mem kv theirs)) mine)
      + List.length
          (List.filter (fun kv -> not (List.mem kv mine)) theirs)
    in
    if diff > 1 then fail "round %d: %d divergences from the model" round diff
  in
  (* Recover, crashing the recovery itself up to [recovery_crashes] levels
     deep: each level arms a fresh trap inside the running recovery, the
     injected crash is resolved under an adversarial policy, and recovery
     restarts — the final attempt runs to completion untrapped.  Recovery
     idempotence is exactly what makes this converge. *)
  let rec recover_nested round level =
    if level < recovery_crashes then begin
      Pmem.Region.set_trap region (Workload.Keygen.int rng 60);
      match P.recover p with
      | () -> Pmem.Region.clear_trap region
      | exception Pmem.Region.Crash_point ->
        incr rec_crashes;
        Pmem.Region.crash region (pick_policy ((round * 17) + level));
        recover_nested round (level + 1)
    end
    else P.recover p
  in
  for round = 1 to rounds do
    (match failpoint with
     | None -> Pmem.Region.set_trap region (Workload.Keygen.int rng 400)
     | Some site ->
       Fault.arm ~skip:(Workload.Keygen.int rng 8) site (fun () ->
           Pmem.Region.kill region));
    (try
       (try
          for _ = 1 to 4 do
            apply_op ()
          done;
          Pmem.Region.clear_trap region;
          Fault.disarm ()
        with Pmem.Region.Crash_point ->
          incr crashes;
          Fault.disarm ();
          Pmem.Region.crash region (pick_policy round);
          recover_nested round 0;
          (* the in-flight operation may or may not have committed: resync
             the shadow for the key it touched by trusting the structure *)
          let resync k =
            let v =
              match workload with
              | `List ->
                if M.L.contains list_ k then Some k else None
              | `Tree -> M.T.get tree k
              | `Map -> M.H.get map k
            in
            match v with
            | Some v -> Hashtbl.replace shadow k v
            | None -> Hashtbl.remove shadow k
          in
          for k = 0 to 199 do
            resync k
          done);
       check round
     with Romulus.Engine.Recovery_error e ->
       fail "round %d: recovery refused a legitimate crash state: %s" round e);
    if verbose && round mod 100 = 0 then
      Printf.printf "  ... %d/%d rounds, %d crashes (%d during recovery)\n%!"
        round rounds !crashes !rec_crashes
  done;
  { rounds;
    crashes = !crashes;
    recovery_crashes = !rec_crashes;
    failures = !failures }

(* ---- exception-injection campaign ---- *)

(* Which raise-capable sites a PTM can actually reach: the engine and
   combiner sites belong to the Romulus variants, the STM/undo-log sites
   to their baselines, and the allocator sites to everyone. *)
let site_applicable ~ptm site =
  let prefixes =
    match ptm with
    | "rom" -> [ "engine."; "rom."; "palloc." ]
    | "romL" -> [ "engine."; "romL."; "palloc." ]
    | "romLR" -> [ "engine."; "palloc." ]
    | "mne" -> [ "mne."; "palloc." ]
    | "pmdk" -> [ "pmdk."; "palloc." ]
    | _ -> []
  in
  List.exists (fun prefix -> String.starts_with ~prefix site) prefixes

(* One exception-injection campaign: [site] is armed each round to raise
   [Fault.Injected] (after a random number of skipped visits) while a
   batch of random update operations runs.  The abort contract checked
   after every round:

     (a) the caller observed a typed Engine.Tx_aborted whose cause is
         the injected exception — never a bare Injected, Failure or
         Invalid_argument;
     (b) the structure agrees with the sequential shadow oracle
         *exactly* (no crash happened, so not even one in-flight
         operation may diverge) and the allocator is structurally sound;
     (c) recovery right after an abort is a byte-level no-op on the
         persistent image (the abort already restored everything);
     (d) a follow-up update transaction from a different thread slot
         commits and is visible — no lock is still held, no combiner
         slot stranded. *)
let run_inject_campaign (module P : PTM) ~workload ~rounds ~seed ~verbose
    ~site =
  let rng = Workload.Keygen.create ~seed () in
  let region = Pmem.Region.create ~size:(1 lsl 20) () in
  let p = P.open_region region in
  let failures = ref [] in
  let injected = ref 0 in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let module M = struct
    module L = Pds.Linked_list.Make (P)
    module T = Pds.Rb_tree.Make (P)
    module H = Pds.Hash_map.Make (P)
  end in
  let shadow : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let list_ = M.L.create p ~root:0 in
  let tree = M.T.create p ~root:1 in
  let map = M.H.create ~initial_buckets:8 p ~root:2 in
  let key () = Workload.Keygen.int rng 200 in
  let apply_op () =
    let k = key () in
    match workload with
    | `List ->
      if Workload.Keygen.bool rng then (
        ignore (M.L.add list_ k);
        Hashtbl.replace shadow k k)
      else (
        ignore (M.L.remove list_ k);
        Hashtbl.remove shadow k)
    | `Tree ->
      if Workload.Keygen.bool rng then (
        ignore (M.T.put tree k (k * 3));
        Hashtbl.replace shadow k (k * 3))
      else (
        ignore (M.T.remove tree k);
        Hashtbl.remove shadow k)
    | `Map ->
      if Workload.Keygen.bool rng then (
        ignore (M.H.put map k (k * 5));
        Hashtbl.replace shadow k (k * 5))
      else (
        ignore (M.H.remove map k);
        Hashtbl.remove shadow k)
  in
  let check_exact round =
    (match
       match workload with
       | `List -> M.L.check list_
       | `Tree -> M.T.check tree
       | `Map -> M.H.check map
     with
     | Ok () -> ()
     | Error e -> fail "round %d: structural: %s" round e);
    let mine =
      match workload with
      | `List -> M.L.fold list_ (fun acc k -> (k, k) :: acc) []
      | `Tree -> M.T.fold tree (fun acc k v -> (k, v) :: acc) []
      | `Map -> M.H.fold map (fun acc k v -> (k, v) :: acc) []
    in
    let theirs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) shadow [] in
    let diff =
      List.length (List.filter (fun kv -> not (List.mem kv theirs)) mine)
      + List.length (List.filter (fun kv -> not (List.mem kv mine)) theirs)
    in
    if diff > 0 then
      fail "round %d: aborted transaction visible: %d divergences" round diff
  in
  (* warm-up, un-armed: populate the structures so that removes actually
     free chunks and allocations are served from the bins — otherwise
     the allocator sites are unreachable in early rounds *)
  for _ = 1 to 32 do
    apply_op ()
  done;
  (* A round counts only when the armed site actually fired (frees, bin
     reuse and batch shapes are workload-dependent); attempts are capped
     so a genuinely unreachable site still fails loudly. *)
  let round = ref 0 in
  let attempts = ref 0 in
  let max_attempts = rounds * 50 in
  while !round < rounds && !attempts < max_attempts do
    incr attempts;
    Fault.arm ~skip:(Workload.Keygen.int rng 2) site (fun () ->
        raise (Fault.Injected site));
    let before_fires = !injected in
    for _ = 1 to 4 do
      match apply_op () with
      | () -> ()
      | exception Romulus.Engine.Tx_aborted { cause = Fault.Injected s; _ }
        when String.equal s site ->
        incr injected
      | exception e ->
        fail "attempt %d: fault at %s escaped untyped: %s" !attempts site
          (Printexc.to_string e)
    done;
    Fault.disarm ();
    if !injected > before_fires then begin
      incr round;
      let round = !round in
      check_exact round;
      (match P.allocator_check p with
       | Ok () -> ()
       | Error e -> fail "round %d: allocator: %s" round e);
      let before = Pmem.Region.persistent_snapshot region in
      P.recover p;
      let after = Pmem.Region.persistent_snapshot region in
      if not (String.equal before after) then
        fail "round %d: recovery after an abort changed the persistent image"
          round;
      (* a fresh domain takes a different thread slot: its commit proves
         no lock is still held and no combiner request is stranded *)
      (match
         Domain.join
           (Domain.spawn (fun () ->
                Sync_prims.Tid.with_slot (fun _ ->
                    P.update_tx p (fun () -> P.set_root p 63 round))))
       with
       | () -> ()
       | exception e ->
         fail "round %d: follow-up commit failed: %s" round
           (Printexc.to_string e));
      if P.read_tx p (fun () -> P.get_root p 63) <> round then
        fail "round %d: follow-up transaction not visible" round;
      if verbose && round mod 50 = 0 then
        Printf.printf "  ... %d/%d rounds, %d injected aborts\n%!" round
          rounds !injected
    end
  done;
  if !round < rounds then
    fail "site %s fired only %d/%d times in %d attempts" site !round rounds
      !attempts;
  { rounds = !round;
    crashes = !injected;
    recovery_crashes = 0;
    failures = !failures }

(* ---- command line ---- *)

let ptm_arg =
  let doc = "PTM to test: rom, romL, romLR, mne, pmdk, or all." in
  Arg.(value & opt string "all" & info [ "ptm" ] ~docv:"PTM" ~doc)

let workload_arg =
  let doc = "Workload: list, tree, map, or all." in
  Arg.(value & opt string "all" & info [ "workload" ] ~docv:"W" ~doc)

let rounds_arg =
  let doc = "Rounds per campaign (each round runs 4 ops with a crash trap)." in
  Arg.(value & opt int 200 & info [ "rounds" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "PRNG seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let policy_arg =
  let doc =
    "Cache-line fate policy at each crash: drop (no unfenced line \
     persists), keep (every one does), random (per-line coin), torn \
     (per-8-byte-word coin — the torn-word adversary), or mix (rotate \
     through all of them)."
  in
  Arg.(
    value
    & opt (enum [ ("drop", `Drop); ("keep", `Keep); ("random", `Random);
                  ("torn", `Torn); ("mix", `Mix) ])
        `Mix
    & info [ "policy" ] ~docv:"POLICY" ~doc)

let recovery_crashes_arg =
  let doc =
    "Crash the recovery itself up to $(docv) levels deep after every \
     injected crash (recovery must be idempotent)."
  in
  Arg.(value & opt int 0 & info [ "recovery-crashes" ] ~docv:"K" ~doc)

let failpoint_arg =
  let doc =
    "Arm the named failpoint site instead of the instruction-counting \
     trap; see --list-failpoints for the registered names."
  in
  Arg.(
    value & opt (some string) None & info [ "failpoint" ] ~docv:"SITE" ~doc)

let inject_exn_arg =
  let doc =
    "Exception-injection mode: instead of crashing, every raise-capable \
     failpoint site reachable from the selected PTMs raises a typed \
     Fault.Injected, and each round asserts the abort contract (typed \
     error, aborted transaction invisible, allocator sound, recovery a \
     byte-level no-op, follow-up transaction from another thread slot \
     commits).  Combine with --failpoint to sweep a single site."
  in
  Arg.(value & flag & info [ "inject-exn" ] ~doc)

let list_failpoints_arg =
  let doc =
    "Print every registered failpoint site (raise-capable ones marked) \
     and exit."
  in
  Arg.(value & flag & info [ "list-failpoints" ] ~doc)

let verbose_arg =
  let doc = "Progress output." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let main ptm workload rounds seed policy recovery_crashes failpoint
    inject_exn list_failpoints verbose =
  if list_failpoints then begin
    List.iter
      (fun s ->
        if Fault.can_raise s then Printf.printf "%s  [raise-capable]\n" s
        else print_endline s)
      (Fault.sites ());
    exit 0
  end;
  (match failpoint with
   | Some site when not (Fault.is_site site) ->
     Printf.eprintf "unknown failpoint %S; registered sites:\n" site;
     List.iter (Printf.eprintf "  %s\n") (Fault.sites ());
     exit 2
   | _ -> ());
  let selected_ptms =
    if ptm = "all" then ptms
    else
      match List.assoc_opt ptm ptms with
      | Some m -> [ (ptm, m) ]
      | None -> failwith ("unknown PTM " ^ ptm)
  in
  let workloads =
    match workload with
    | "all" -> [ ("list", `List); ("tree", `Tree); ("map", `Map) ]
    | "list" -> [ ("list", `List) ]
    | "tree" -> [ ("tree", `Tree) ]
    | "map" -> [ ("map", `Map) ]
    | w -> failwith ("unknown workload " ^ w)
  in
  let failed = ref false in
  if inject_exn then
    (* exception-injection sweep: PTMs x workloads x raise-capable sites *)
    let sweep_sites =
      match failpoint with
      | Some site ->
        if not (Fault.can_raise site) then begin
          Printf.eprintf "site %S is not raise-capable; sweepable sites:\n"
            site;
          List.iter (Printf.eprintf "  %s\n") (Fault.raise_sites ());
          exit 2
        end;
        [ site ]
      | None -> Fault.raise_sites ()
    in
    List.iter
      (fun (pname, m) ->
        List.iter
          (fun (wname, w) ->
            List.iter
              (fun site ->
                if site_applicable ~ptm:pname site then begin
                  Printf.printf "%-6s x %-5s x %-28s: %!" pname wname site;
                  let o =
                    run_inject_campaign m ~workload:w ~rounds ~seed ~verbose
                      ~site
                  in
                  if o.failures = [] then
                    Printf.printf "OK (%d rounds, %d injected aborts)\n%!"
                      o.rounds o.crashes
                  else begin
                    failed := true;
                    Printf.printf "FAILED (%d issues)\n"
                      (List.length o.failures);
                    List.iter (fun f -> Printf.printf "    %s\n" f) o.failures
                  end
                end)
              sweep_sites)
          workloads)
      selected_ptms
  else
    List.iter
      (fun (pname, m) ->
        List.iter
          (fun (wname, w) ->
            Printf.printf "%-6s x %-5s: %!" pname wname;
            let o =
              run_campaign m ~workload:w ~rounds ~seed ~verbose ~policy
                ~recovery_crashes ~failpoint
            in
            if o.failures = [] then begin
              Printf.printf "OK (%d rounds, %d crash-recoveries" o.rounds
                o.crashes;
              if o.recovery_crashes > 0 then
                Printf.printf ", %d crashes inside recovery"
                  o.recovery_crashes;
              Printf.printf ")\n%!"
            end
            else begin
              failed := true;
              Printf.printf "FAILED (%d issues)\n" (List.length o.failures);
              List.iter (fun f -> Printf.printf "    %s\n" f) o.failures
            end)
          workloads)
      selected_ptms;
  if !failed then exit 1

let cmd =
  let doc = "crash-injection campaigns against the Romulus PTMs" in
  let info = Cmd.info "crashtest" ~doc in
  Cmd.v info
    Term.(const main $ ptm_arg $ workload_arg $ rounds_arg $ seed_arg
          $ policy_arg $ recovery_crashes_arg $ failpoint_arg
          $ inject_exn_arg $ list_failpoints_arg $ verbose_arg)

let () = exit (Cmd.eval cmd)
