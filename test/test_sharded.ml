(* Conformance matrix for the sharded RomulusDB, mirroring the PTM
   suite's categories at the KV level: abort semantics, crash sweeps at
   every instruction boundary under all four crash policies, recovery
   idempotence (including crashes during recovery), scrub
   repair-or-refuse — against shards=1 (which must be bit-for-bit
   equivalent to Romulus_db over the same operations) and shards=4 —
   plus the cross-shard commit protocols' own crash windows: the legacy
   centralized batch-intent record (pinned with ~protocol:Centralized)
   and the default decentralized presumed-abort protocol (per-shard
   intent mirrors, coordinator flip, lazy CLEAR), including the
   CORRECTNESS.md §10 lost-update regression where a single-key write
   races an aborting batch on the same key. *)

module R = Pmem.Region
module Db = Kv.Romulus_db.Default
module Sd = Kv.Sharded_db.Default

let region ?(size = 1 lsl 18) () = R.create ~size ()

let regions ?size n = Array.init n (fun _ -> region ?size ())

let open_sharded ?protocol ?(shards = 4) ?(initial_buckets = 8) ?size () =
  let rs = regions ?size shards in
  (rs, Sd.open_db ?protocol ~initial_buckets rs)

let crash_all rs policy = Array.iter (fun r -> R.crash r policy) rs

(* every test must leave the global failpoint registry clean *)
let with_disarm f =
  Fun.protect ~finally:(fun () -> Fault.disarm ()) f

let check_ok what db =
  match Sd.check db with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" what e

let key i = Printf.sprintf "key%03d" i
let value i = Printf.sprintf "value-%04d" i

(* seed [n] keys through individual durable puts *)
let seed db n =
  for i = 0 to n - 1 do
    Sd.put db (key i) (value i)
  done

(* a batch guaranteed to span several shards: enough distinct keys that
   4 shards cannot all collide *)
let batch_ops =
  [ ("batch-a", Some "A"); ("batch-b", Some "B"); ("batch-c", Some "C");
    ("batch-d", Some "D"); (key 1, Some "overwritten"); (key 2, None) ]

let run_batch db =
  Sd.write_batch db (fun b ->
      List.iter
        (fun (k, v) ->
          match v with
          | Some v -> Sd.put b k v
          | None -> ignore (Sd.delete b k))
        batch_ops)

(* all-or-nothing oracle after a crashed [run_batch] over [seed db 12] *)
let assert_all_or_nothing what db =
  check_ok what db;
  let applied = Sd.get db "batch-a" = Some "A" in
  List.iter
    (fun (k, v) ->
      let got = Sd.get db k in
      let want =
        if applied then v
        else if k = key 1 then Some (value 1)
        else if k = key 2 then Some (value 2)
        else None
      in
      if got <> want then
        Alcotest.failf "%s: half-applied batch at %s (%s)" what k
          (if applied then "expected applied" else "expected rolled back"))
    batch_ops;
  (* untouched committed keys always survive *)
  for i = 3 to 11 do
    if Sd.get db (key i) <> Some (value i) then
      Alcotest.failf "%s: lost committed key %s" what (key i)
  done;
  applied

(* ---- basics ---- *)

let test_basics () =
  let _, db = open_sharded () in
  Alcotest.(check int) "shards" 4 (Sd.shards db);
  seed db 100;
  Alcotest.(check int) "count" 100 (Sd.count db);
  (* the route must actually spread keys over all four shards *)
  let used = Array.make 4 0 in
  for i = 0 to 99 do
    let s = Sd.shard_of_key db (key i) in
    used.(s) <- used.(s) + 1
  done;
  Array.iteri
    (fun i n ->
      if n = 0 then Alcotest.failf "shard %d received no keys" i)
    used;
  Alcotest.(check (option string)) "get" (Some (value 42)) (Sd.get db (key 42));
  Alcotest.(check bool) "delete" true (Sd.delete db (key 42));
  Alcotest.(check (option string)) "gone" None (Sd.get db (key 42));
  Alcotest.(check int) "count after delete" 99 (Sd.count db);
  let fwd = ref [] and rev = ref [] in
  Sd.iter db (fun k v -> fwd := (k, v) :: !fwd);
  Sd.iter_reverse db (fun k v -> rev := (k, v) :: !rev);
  Alcotest.(check int) "iter complete" 99 (List.length !fwd);
  Alcotest.(check bool) "iter orders agree" true
    (List.sort compare !fwd = List.sort compare !rev);
  check_ok "basics" db

let test_invalid_args () =
  (* satellite fix: non-positive initial_buckets is a typed error in both
     stores, and an empty shard array is one too *)
  let check_invalid name f =
    match f () with
    | _ -> Alcotest.failf "%s: accepted invalid argument" name
    | exception Kv.Romulus_db.Invalid_buckets b ->
      Alcotest.(check bool) (name ^ " reports the bad value") true (b <= 0)
  in
  check_invalid "romulus_db zero buckets" (fun () ->
      Db.open_db ~initial_buckets:0 (region ()));
  check_invalid "romulus_db negative buckets" (fun () ->
      Db.open_db ~initial_buckets:(-3) (region ()));
  check_invalid "sharded zero buckets" (fun () ->
      Sd.open_db ~initial_buckets:0 (regions 2));
  check_invalid "sharded negative buckets" (fun () ->
      Sd.open_db ~initial_buckets:(-1) (regions 2));
  (match Sd.open_db [||] with
   | _ -> Alcotest.fail "accepted an empty shard array"
   | exception Kv.Sharded_db.Invalid_shards 0 -> ());
  (* the boundary value works *)
  let db = Sd.open_db ~initial_buckets:1 (regions 2) in
  Sd.put db "k" "v";
  Alcotest.(check (option string)) "buckets=1 usable" (Some "v")
    (Sd.get db "k")

(* ---- shards=1: bit-for-bit Romulus_db equivalence ---- *)

(* The same operation script drives a plain RomulusDB and a 1-shard
   sharded store over separate fresh regions; the persistent images must
   be byte-identical at every synchronisation point.  With one shard no
   batch can be cross-shard, so the intent machinery must never touch
   the region. *)
let test_shard1_bitwise_equivalence () =
  let ra = region () and rb = region () in
  let a = Db.open_db ~initial_buckets:8 ra in
  let b = Sd.open_db ~initial_buckets:8 [| rb |] in
  let sync what =
    Alcotest.(check bool)
      (what ^ ": persistent images identical") true
      (String.equal (R.persistent_snapshot ra) (R.persistent_snapshot rb))
  in
  sync "after open";
  for i = 0 to 30 do
    Db.put a (key i) (value i);
    Sd.put b (key i) (value i)
  done;
  sync "after puts";
  ignore (Db.delete a (key 7));
  ignore (Sd.delete b (key 7));
  Db.put a (key 3) "overwrite";
  Sd.put b (key 3) "overwrite";
  sync "after delete+overwrite";
  (* a write batch with read-your-writes inside *)
  let saw_a = ref [] and saw_b = ref [] in
  Db.write_batch a (fun d ->
      Db.put d "wb1" "x";
      saw_a := [ Db.get d "wb1"; Db.get d (key 5) ];
      ignore (Db.delete d (key 5));
      Db.put d "wb2" "y");
  Sd.write_batch b (fun d ->
      Sd.put d "wb1" "x";
      saw_b := [ Sd.get d "wb1"; Sd.get d (key 5) ];
      ignore (Sd.delete d (key 5));
      Sd.put d "wb2" "y");
  Alcotest.(check (list (option string)))
    "batch read-your-writes agree" !saw_a !saw_b;
  sync "after write batch";
  (* a raising batch aborts with the same typed error and no effects *)
  let abort_of f =
    match f () with
    | () -> Alcotest.fail "raising batch did not raise"
    | exception Romulus.Engine.Tx_aborted { cause = Failure m; _ } -> m
    | exception e -> Alcotest.failf "wrong abort: %s" (Printexc.to_string e)
  in
  let ma =
    abort_of (fun () ->
        Db.write_batch a (fun d ->
            Db.put d "doomed" "1";
            failwith "poison"))
  in
  let mb =
    abort_of (fun () ->
        Sd.write_batch b (fun d ->
            Sd.put d "doomed" "1";
            failwith "poison"))
  in
  Alcotest.(check string) "same abort cause" ma mb;
  Alcotest.(check (option string)) "abort left nothing (db)" None
    (Db.get a "doomed");
  Alcotest.(check (option string)) "abort left nothing (sharded)" None
    (Sd.get b "doomed");
  (* Immediately after the aborted batch the images differ in exactly the
     lazily-published state word: Romulus_db ran begin+abort (forcing a
     durable IDL), the sharded store never started an engine transaction.
     The divergence is transient — the next crash/recovery converges both
     sides, which the sync below witnesses. *)
  (* a crash replays identically *)
  R.crash ra R.Drop_all;
  R.crash rb R.Drop_all;
  let a = Db.open_db ra and b = Sd.open_db [| rb |] in
  sync "after crash+reopen";
  Alcotest.(check int) "same count" (Db.count a) (Sd.count b);
  Db.iter a (fun k v ->
      if Sd.get b k <> Some v then Alcotest.failf "diverged at %s" k)

(* ---- abort semantics (shards=4) ---- *)

let test_cross_shard_runtime_abort () =
  with_disarm @@ fun () ->
  let _, db = open_sharded ~protocol:Kv.Sharded_db.Centralized () in
  seed db 12;
  (* inject a software fault after the first per-shard transaction of a
     cross-shard batch commits: the batch must roll back to the pre-batch
     image, surface a typed abort, and leave no intent behind *)
  Fault.arm "sharded.batch.shard_applied" (fun () ->
      raise (Fault.Injected "sharded.batch.shard_applied"));
  (match run_batch db with
   | () -> Alcotest.fail "injected fault did not surface"
   | exception Romulus.Engine.Tx_aborted { cause = Fault.Injected _; _ } -> ()
   | exception e ->
     Alcotest.failf "expected Tx_aborted(Injected), got %s"
       (Printexc.to_string e));
  let applied = assert_all_or_nothing "runtime abort" db in
  Alcotest.(check bool) "rolled back, not applied" false applied;
  (* the store keeps working, and recovery finds nothing to reconcile *)
  Sd.recover ~parallel:false db;
  let applied = assert_all_or_nothing "after recover" db in
  Alcotest.(check bool) "still rolled back" false applied;
  run_batch db;
  Alcotest.(check bool) "batch applies cleanly afterwards" true
    (assert_all_or_nothing "clean retry" db)

let test_raising_closure_discards_buffer () =
  let _, db = open_sharded () in
  seed db 4;
  (match
     Sd.write_batch db (fun b ->
         Sd.put b "x" "1";
         raise Exit)
   with
   | () -> Alcotest.fail "no raise"
   | exception Romulus.Engine.Tx_aborted { cause = Exit; _ } -> ());
  Alcotest.(check (option string)) "buffered op discarded" None
    (Sd.get db "x");
  check_ok "raising closure" db

(* ---- crash sweeps: every instruction boundary, all 4 policies ---- *)

(* Sweep a trap over every instruction of every shard's region while a
   cross-shard batch runs, under each crash policy; after the crash, a
   reopened store must show the batch all-or-nothing and pass its
   checks.  This is the KV-level analogue of the PTM suite's
   crash_at_every_point. *)
let crash_sweep_policy policy =
  let crashes = ref 0 in
  for target = 0 to 3 do
    let continue = ref true in
    let trap = ref 1 in
    while !continue do
      let rs, db = open_sharded () in
      seed db 12;
      R.set_trap rs.(target) !trap;
      (match run_batch db with
       | () ->
         R.clear_trap rs.(target);
         continue := false
       | exception R.Crash_point -> incr crashes);
      crash_all rs policy;
      let db = Sd.open_db ~initial_buckets:8 rs in
      ignore (assert_all_or_nothing "crash sweep" db : bool);
      trap := !trap + 1
    done
  done;
  !crashes

let test_crash_sweep_drop_all () =
  let n = crash_sweep_policy R.Drop_all in
  Alcotest.(check bool) "sweep crossed the batch" true (n > 50)

let test_crash_sweep_keep_all () =
  ignore (crash_sweep_policy R.Keep_all : int)

let test_crash_sweep_random_subset () =
  ignore (crash_sweep_policy (R.Random_subset 41) : int)

let test_crash_sweep_torn_words () =
  ignore (crash_sweep_policy (R.Torn_words 17) : int)

(* ---- the centralized intent protocol's own windows (legacy) ---- *)

let test_intent_window_rollback () =
  with_disarm @@ fun () ->
  let rs, db = open_sharded ~protocol:Kv.Sharded_db.Centralized () in
  seed db 12;
  (* power off right after the intent record becomes durable: no shard
     has applied anything, recovery must roll the batch back *)
  Fault.arm "sharded.batch.intent_published" (fun () -> R.kill rs.(0));
  (match run_batch db with
   | () -> Alcotest.fail "kill did not fire"
   | exception R.Crash_point -> ());
  crash_all rs R.Drop_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  Alcotest.(check bool) "rolled back from PREPARED" false
    (assert_all_or_nothing "intent window" db)

let test_inter_commit_window () =
  with_disarm @@ fun () ->
  let rs, db = open_sharded ~protocol:Kv.Sharded_db.Centralized () in
  seed db 12;
  (* power off between two per-shard commits: some shards applied, the
     intent is still PREPARED, recovery must roll every shard back *)
  Fault.arm ~skip:1 "sharded.batch.shard_applied" (fun () -> R.kill rs.(0));
  (match run_batch db with
   | () -> Alcotest.fail "kill did not fire"
   | exception R.Crash_point -> ());
  crash_all rs R.Keep_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  Alcotest.(check bool) "half-applied batch rolled back" false
    (assert_all_or_nothing "inter-commit window" db)

let test_committed_window_rolls_forward () =
  with_disarm @@ fun () ->
  let rs, db = open_sharded ~protocol:Kv.Sharded_db.Centralized () in
  seed db 12;
  (* power off after the COMMITTED flip but before the record is cleared:
     the batch reached its durability point, recovery must roll forward *)
  Fault.arm "sharded.batch.committed" (fun () -> R.kill rs.(0));
  (match run_batch db with
   | () -> Alcotest.fail "kill did not fire"
   | exception R.Crash_point -> ());
  crash_all rs R.Keep_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  Alcotest.(check bool) "rolled forward from COMMITTED" true
    (assert_all_or_nothing "committed window" db);
  (* the intent was cleared: another reconciliation changes nothing *)
  Sd.recover ~parallel:false db;
  Alcotest.(check bool) "idempotent after roll-forward" true
    (assert_all_or_nothing "post-recover" db)

(* ---- the decentralized presumed-abort protocol's windows ---- *)

(* participant shards of [batch_ops], ascending; the coordinator is the
   minimum (first) participant *)
let d_participants db =
  List.sort_uniq compare
    (List.map (fun (k, _) -> Sd.shard_of_key db k) batch_ops)

let test_d_runtime_abort () =
  with_disarm @@ fun () ->
  let _, db = open_sharded () in
  seed db 12;
  (* software fault after the first mirror+apply transaction: the batch
     must roll back from its own mirrors and leave no record hooked *)
  Fault.arm "sharded.d.mirror_applied" (fun () ->
      raise (Fault.Injected "sharded.d.mirror_applied"));
  (match run_batch db with
   | () -> Alcotest.fail "injected fault did not surface"
   | exception Romulus.Engine.Tx_aborted { cause = Fault.Injected _; _ } -> ()
   | exception e ->
     Alcotest.failf "expected Tx_aborted(Injected), got %s"
       (Printexc.to_string e));
  let applied = assert_all_or_nothing "d runtime abort" db in
  Alcotest.(check bool) "rolled back, not applied" false applied;
  Alcotest.(check int) "no record left hooked" 0 (Sd.pending_intents db);
  let st = Sd.stats db in
  Alcotest.(check bool) "prepares counted" true
    (st.Pmem.Stats.intent_prepares > 0);
  Alcotest.(check bool) "rollbacks counted" true
    (st.Pmem.Stats.rolled_back > 0);
  run_batch db;
  Alcotest.(check bool) "batch applies cleanly afterwards" true
    (assert_all_or_nothing "clean retry" db)

(* kill the coordinator before its flip is written — after the first
   mirror and after the last: surviving mirrors with a clean coordinator
   flip list are a presumed abort, recovery rolls them back *)
let test_d_preflip_presumed_abort () =
  with_disarm @@ fun () ->
  let parts = snd (open_sharded ()) |> d_participants in
  let nparts = List.length parts in
  Alcotest.(check bool) "batch spans shards" true (nparts >= 2);
  List.iter
    (fun skip ->
      let rs, db = open_sharded () in
      seed db 12;
      let coord = List.hd (d_participants db) in
      Fault.arm ~skip "sharded.d.mirror_applied" (fun () ->
          R.kill rs.(coord));
      (match run_batch db with
       | () -> Alcotest.fail "kill did not fire"
       | exception R.Crash_point -> ());
      crash_all rs R.Keep_all;
      let db = Sd.open_db ~initial_buckets:8 rs in
      Alcotest.(check bool)
        (Printf.sprintf "presumed abort (skip=%d)" skip)
        false
        (assert_all_or_nothing "preflip window" db);
      Alcotest.(check int) "mirrors reclaimed" 0 (Sd.pending_intents db);
      Alcotest.(check bool) "rollbacks counted" true
        ((Sd.stats db).Pmem.Stats.rolled_back > 0))
    [ 0; nparts - 1 ]

let test_d_postflip_rolls_forward () =
  with_disarm @@ fun () ->
  let rs, db = open_sharded () in
  seed db 12;
  (* power off the coordinator right after the flip becomes durable: the
     batch reached its durability point with every mirror still hooked
     (lazy CLEAR), recovery must keep the applied slices *)
  let coord = List.hd (d_participants db) in
  Fault.arm "sharded.d.flip_written" (fun () -> R.kill rs.(coord));
  (match run_batch db with
   | () -> ()
   | exception R.Crash_point -> ());
  crash_all rs R.Drop_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  Alcotest.(check bool) "rolled forward from the flip" true
    (assert_all_or_nothing "postflip window" db);
  Alcotest.(check int) "mirrors and flip reclaimed" 0 (Sd.pending_intents db);
  Alcotest.(check bool) "roll-forwards counted" true
    ((Sd.stats db).Pmem.Stats.rolled_forward > 0);
  (* reconciliation already converged: another pass changes nothing *)
  Sd.recover ~parallel:false db;
  Alcotest.(check bool) "idempotent after roll-forward" true
    (assert_all_or_nothing "post-recover" db)

(* lazy CLEAR: a committed batch parks its mirrors and flip; the next
   batch over the same shards reclaims all of them piggybacked on its
   own protocol transactions *)
let test_d_lazy_clear_reclamation () =
  let _, db = open_sharded () in
  seed db 12;
  let footprint = List.length (d_participants db) + 1 in
  run_batch db;
  Alcotest.(check int) "committed batch parks its records" footprint
    (Sd.pending_intents db);
  run_batch db;
  (* batch 1's mirrors rode batch 2's PREPAREs, its flip batch 2's flip
     transaction: only batch 2's own records remain *)
  Alcotest.(check int) "previous batch fully reclaimed" footprint
    (Sd.pending_intents db);
  Alcotest.(check bool) "lazy clears counted" true
    ((Sd.stats db).Pmem.Stats.lazy_clears >= footprint);
  Alcotest.(check bool) "batch applied" true
    (assert_all_or_nothing "lazy clear" db);
  (* recovery reclaims the rest without touching data *)
  Sd.recover ~parallel:false db;
  Alcotest.(check int) "recovery drains the parked records" 0
    (Sd.pending_intents db);
  Alcotest.(check bool) "data untouched" true
    (assert_all_or_nothing "after drain" db)

let test_d_eager_clear () =
  let _, db =
    open_sharded ~protocol:(Kv.Sharded_db.Decentralized { lazy_clear = false })
      ()
  in
  seed db 12;
  run_batch db;
  Alcotest.(check bool) "batch applied" true
    (assert_all_or_nothing "eager clear" db);
  Alcotest.(check int) "eager CLEAR leaves nothing hooked" 0
    (Sd.pending_intents db)

(* crash in the middle of the reconciliation pass itself: the next
   recovery must converge to the same all-or-nothing verdict *)
let test_d_crash_during_reconciliation () =
  with_disarm @@ fun () ->
  let rs, db = open_sharded () in
  seed db 12;
  let target = Sd.shard_of_key db "batch-a" in
  R.set_trap rs.(target) 40;
  (match run_batch db with
   | () -> Alcotest.fail "trap did not fire"
   | exception R.Crash_point -> ());
  crash_all rs R.Drop_all;
  (* kill a shard right after recovery resolves the first mirror *)
  Fault.arm "sharded.recover.mirror_resolved" (fun () -> R.kill rs.(target));
  (match Sd.open_db ~initial_buckets:8 rs with
   | (_ : Sd.t) -> ()
   | exception R.Crash_point -> ());
  Fault.disarm ();
  crash_all rs R.Drop_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  ignore (assert_all_or_nothing "crashed reconciliation" db : bool);
  Alcotest.(check int) "reconciliation converged" 0 (Sd.pending_intents db)

(* ---- §10 regression: a single-key write racing an aborting batch ----

   The racing put durably invalidates the batch's undo image for the key
   inside its own transaction, so neither the inline rollback (runtime
   abort) nor recovery (crash) may overwrite it with the stale
   pre-image. *)

let assert_raced_rollback what db =
  check_ok what db;
  Alcotest.(check (option string)) (what ^ ": racing write survives")
    (Some "raced") (Sd.get db (key 1));
  List.iter
    (fun (k, _) ->
      if k <> key 1 then begin
        let want = if k = key 2 then Some (value 2) else None in
        if Sd.get db k <> want then
          Alcotest.failf "%s: batch key %s not rolled back" what k
      end)
    batch_ops;
  for i = 3 to 11 do
    if Sd.get db (key i) <> Some (value i) then
      Alcotest.failf "%s: lost committed key %s" what (key i)
  done

let test_d_lost_update_runtime_abort () =
  with_disarm @@ fun () ->
  let _, db = open_sharded () in
  seed db 12;
  let nparts = List.length (d_participants db) in
  (* once every mirror is hooked (all undo images pending), overwrite
     key 1 from outside the batch, then poison the batch *)
  Fault.arm ~skip:(nparts - 1) "sharded.d.mirror_applied" (fun () ->
      Sd.put db (key 1) "raced";
      raise (Fault.Injected "raced"));
  (match run_batch db with
   | () -> Alcotest.fail "injected fault did not surface"
   | exception Romulus.Engine.Tx_aborted { cause = Fault.Injected _; _ } -> ());
  assert_raced_rollback "lost-update (runtime abort)" db;
  Alcotest.(check int) "no record left hooked" 0 (Sd.pending_intents db)

let test_d_lost_update_crash_recovery () =
  with_disarm @@ fun () ->
  let rs, db = open_sharded () in
  seed db 12;
  let nparts = List.length (d_participants db) in
  let coord = List.hd (d_participants db) in
  (* same race, but the batch dies before its flip: recovery's presumed
     abort must honor the invalidated undo entry *)
  Fault.arm ~skip:(nparts - 1) "sharded.d.mirror_applied" (fun () ->
      Sd.put db (key 1) "raced";
      R.kill rs.(coord));
  (match run_batch db with
   | () -> Alcotest.fail "kill did not fire"
   | exception R.Crash_point -> ());
  crash_all rs R.Drop_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  assert_raced_rollback "lost-update (crash recovery)" db;
  Alcotest.(check int) "mirrors reclaimed" 0 (Sd.pending_intents db)

(* ---- recovery: parallel fan-out, idempotence, crashes within ---- *)

let test_parallel_recovery () =
  let rs, db = open_sharded () in
  seed db 12;
  (* leave a mid-commit wreck on one shard and a PREPARED intent *)
  R.set_trap rs.(2) 40;
  (match run_batch db with
   | () -> Alcotest.fail "trap did not fire"
   | exception R.Crash_point -> ());
  crash_all rs (R.Random_subset 7);
  let db = Sd.open_db ~initial_buckets:8 rs in
  ignore (assert_all_or_nothing "after reopen" db : bool);
  (* recovery over an already-consistent store, parallel and sequential,
     is a no-op — run both and compare full contents *)
  let dump db =
    let l = ref [] in
    Sd.iter db (fun k v -> l := (k, v) :: !l);
    List.sort compare !l
  in
  let before = dump db in
  Sd.recover ~parallel:true db;
  Alcotest.(check bool) "parallel recover is idempotent" true
    (dump db = before);
  Sd.recover ~parallel:false db;
  Alcotest.(check bool) "sequential recover agrees" true (dump db = before);
  check_ok "parallel recovery" db

let test_crash_during_recovery () =
  let rs, db = open_sharded () in
  seed db 12;
  (* shard 0 always participates in a cross-shard batch (intent record) *)
  R.set_trap rs.(0) 30;
  (match run_batch db with
   | () -> Alcotest.fail "trap did not fire"
   | exception R.Crash_point -> ());
  crash_all rs R.Drop_all;
  (* now crash again in the middle of recovery itself: the second
     recovery must still converge (recovery is idempotent) *)
  R.set_trap rs.(3) 10;
  (match Sd.open_db ~initial_buckets:8 rs with
   | _ -> R.clear_trap rs.(3)
   | exception R.Crash_point -> ());
  crash_all rs R.Drop_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  ignore (assert_all_or_nothing "crashed recovery" db : bool)

(* ---- scrub: repair-or-refuse per shard, aggregated report ---- *)

let test_scrub_repairs_shard () =
  let rs, db = open_sharded () in
  seed db 24;
  (* settle to durably-IDL (the engine publishes IDL lazily) *)
  crash_all rs R.Drop_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  let clean = Array.map R.persistent_snapshot rs in
  (* rot one line deep in shard 2's used span *)
  let spans = Sd.media_spans db in
  let base, span = List.hd spans.(2) in
  let line = (base + span - 1) / R.line_size rs.(2) in
  R.corrupt_line rs.(2) ~line;
  let rep = Sd.scrub db in
  Alcotest.(check bool) "scrub repaired the rot" true
    (rep.Romulus.Engine.repaired >= 1);
  Alcotest.(check bool) "scrub walked every shard" true
    (rep.Romulus.Engine.scrubbed > 0);
  Array.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d image restored" i)
        true
        (String.equal clean.(i) (R.persistent_snapshot r)))
    rs;
  Alcotest.(check int) "second scrub finds nothing" 0
    (Sd.scrub db).Romulus.Engine.repaired;
  check_ok "scrub repair" db

(* rot the same line in both twins of one shard: no copy can vouch *)
let test_scrub_refuses_double_fault () =
  let rs, db = open_sharded () in
  seed db 24;
  crash_all rs R.Drop_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  let spans = (Sd.media_spans db).(1) in
  (match spans with
   | (mbase, mspan) :: (bbase, _) :: _ ->
     let delta = mspan - R.line_size rs.(1) in
     R.corrupt_line rs.(1) ~line:((mbase + delta) / R.line_size rs.(1));
     R.corrupt_line rs.(1) ~seed:99 ~line:((bbase + delta) / R.line_size rs.(1))
   | _ -> Alcotest.fail "expected twin spans");
  match Sd.scrub db with
  | exception Romulus.Engine.Unrepairable _ -> ()
  | (_ : Romulus.Engine.scrub_report) ->
    Alcotest.fail "both twins rotten: scrub must refuse"

(* ---- qcheck: random crash points over cross-shard batches ---- *)

let prop_sharded_crash_batch =
  let open QCheck in
  Test.make ~count:40 ~name:"sharded: crashed cross-shard batch is atomic"
    (triple small_nat (int_bound 3) (int_bound 3))
    (fun (trap, pol, target) ->
      let rs, db = open_sharded () in
      seed db 12;
      R.set_trap rs.(target) (trap + 1);
      (match run_batch db with
       | () -> R.clear_trap rs.(target)
       | exception R.Crash_point -> ());
      let policy =
        match pol with
        | 0 -> R.Drop_all
        | 1 -> R.Keep_all
        | 2 -> R.Random_subset (trap + 3)
        | _ -> R.Torn_words (trap + 13)
      in
      crash_all rs policy;
      let db = Sd.open_db ~initial_buckets:8 rs in
      ignore (assert_all_or_nothing "qcheck sweep" db : bool);
      true)

(* Mixing a racing single-key write with a crashing cross-shard batch
   under all four policies: the coordinator is killed in a random mirror
   window (so the batch always presumed-aborts), optionally after a
   single-key put to key 1 from outside the batch.  Whatever the
   interleaving, the raced key must end up at the racing value (the put
   committed durably before the kill) and every other batch key must
   roll back; the seed keys must survive untouched. *)
let prop_d_racing_mix =
  let open QCheck in
  Test.make ~count:40
    ~name:"sharded: racing write vs crashed decentralized batch"
    (triple small_nat (int_bound 3) bool)
    (fun (skip, pol, raced) ->
      with_disarm @@ fun () ->
      let rs, db = open_sharded () in
      seed db 12;
      let parts = d_participants db in
      let coord = List.hd parts in
      Fault.arm ~skip:(skip mod List.length parts) "sharded.d.mirror_applied"
        (fun () ->
          if raced then Sd.put db (key 1) "raced";
          R.kill rs.(coord));
      (match run_batch db with
       | () -> Alcotest.fail "kill did not fire"
       | exception R.Crash_point -> ());
      let policy =
        match pol with
        | 0 -> R.Drop_all
        | 1 -> R.Keep_all
        | 2 -> R.Random_subset (skip + 3)
        | _ -> R.Torn_words (skip + 13)
      in
      crash_all rs policy;
      let db = Sd.open_db ~initial_buckets:8 rs in
      check_ok "racing mix" db;
      let want_key1 = if raced then Some "raced" else Some (value 1) in
      if Sd.get db (key 1) <> want_key1 then
        Alcotest.failf "raced key diverged (raced=%b)" raced;
      List.iter
        (fun (k, _) ->
          if k <> key 1 then begin
            let want = if k = key 2 then Some (value 2) else None in
            if Sd.get db k <> want then
              Alcotest.failf "batch key %s not rolled back" k
          end)
        batch_ops;
      for i = 3 to 11 do
        if Sd.get db (key i) <> Some (value i) then
          Alcotest.failf "lost committed key %s" (key i)
      done;
      Alcotest.(check int) "reconciled clean" 0 (Sd.pending_intents db);
      true)

(* ---- snapshots ---- *)

let test_snapshot_roundtrip () =
  let dir = Filename.temp_file "sharded" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let _, db = open_sharded () in
      seed db 30;
      run_batch db;
      let base = Filename.concat dir "db" in
      Sd.save_to_files db base;
      let db2 = Sd.open_from_files ~shards:4 base in
      Alcotest.(check int) "count survives" (Sd.count db) (Sd.count db2);
      Sd.iter db (fun k v ->
          if Sd.get db2 k <> Some v then
            Alcotest.failf "snapshot diverged at %s" k);
      check_ok "snapshot" db2)

let suite =
  let tc = Alcotest.test_case in
  [ tc "sharded basics" `Quick test_basics;
    tc "invalid arguments typed" `Quick test_invalid_args;
    tc "shards=1 bitwise equivalence" `Quick test_shard1_bitwise_equivalence;
    tc "cross-shard runtime abort" `Quick test_cross_shard_runtime_abort;
    tc "raising closure discards buffer" `Quick
      test_raising_closure_discards_buffer;
    tc "crash sweep drop-all" `Slow test_crash_sweep_drop_all;
    tc "crash sweep keep-all" `Slow test_crash_sweep_keep_all;
    tc "crash sweep random-subset" `Slow test_crash_sweep_random_subset;
    tc "crash sweep torn-words" `Slow test_crash_sweep_torn_words;
    tc "intent window rollback" `Quick test_intent_window_rollback;
    tc "inter-commit window rollback" `Quick test_inter_commit_window;
    tc "committed window rolls forward" `Quick
      test_committed_window_rolls_forward;
    tc "decentralized runtime abort" `Quick test_d_runtime_abort;
    tc "decentralized pre-flip presumed abort" `Quick
      test_d_preflip_presumed_abort;
    tc "decentralized post-flip rolls forward" `Quick
      test_d_postflip_rolls_forward;
    tc "lazy CLEAR reclamation" `Quick test_d_lazy_clear_reclamation;
    tc "eager CLEAR leaves nothing" `Quick test_d_eager_clear;
    tc "crash during reconciliation" `Quick
      test_d_crash_during_reconciliation;
    tc "lost update: runtime abort race" `Quick
      test_d_lost_update_runtime_abort;
    tc "lost update: crash recovery race" `Quick
      test_d_lost_update_crash_recovery;
    tc "parallel recovery" `Quick test_parallel_recovery;
    tc "crash during recovery" `Quick test_crash_during_recovery;
    tc "scrub repairs a shard" `Quick test_scrub_repairs_shard;
    tc "scrub refuses double fault" `Quick test_scrub_refuses_double_fault;
    tc "snapshot round trip" `Quick test_snapshot_roundtrip ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_sharded_crash_batch; prop_d_racing_mix ]

let () = Alcotest.run "sharded" [ ("sharded", suite) ]
