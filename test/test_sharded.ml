(* Conformance matrix for the sharded RomulusDB, mirroring the PTM
   suite's categories at the KV level: abort semantics, crash sweeps at
   every instruction boundary under all four crash policies, recovery
   idempotence (including crashes during recovery), scrub
   repair-or-refuse — against shards=1 (which must be bit-for-bit
   equivalent to Romulus_db over the same operations) and shards=4 —
   plus the cross-shard commit protocols' own crash windows: the legacy
   centralized batch-intent record (pinned with ~protocol:Centralized)
   and the default decentralized presumed-abort protocol (per-shard
   intent mirrors, coordinator flip, lazy CLEAR), including the
   CORRECTNESS.md §10 lost-update regression where a single-key write
   races an aborting batch on the same key. *)

module R = Pmem.Region
module Db = Kv.Romulus_db.Default
module Sd = Kv.Sharded_db.Default

let region ?(size = 1 lsl 18) () = R.create ~size ()

let regions ?size n = Array.init n (fun _ -> region ?size ())

let open_sharded ?protocol ?(shards = 4) ?(initial_buckets = 8) ?size
    ?chunk_bytes ?spill_threshold ?admission_budget ?clear_flush_threshold () =
  let rs = regions ?size shards in
  ( rs,
    Sd.open_db ?protocol ~initial_buckets ?chunk_bytes ?spill_threshold
      ?admission_budget ?clear_flush_threshold rs )

let crash_all rs policy = Array.iter (fun r -> R.crash r policy) rs

(* every test must leave the global failpoint registry clean *)
let with_disarm f =
  Fun.protect ~finally:(fun () -> Fault.disarm ()) f

let check_ok what db =
  match Sd.check db with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" what e

let key i = Printf.sprintf "key%03d" i
let value i = Printf.sprintf "value-%04d" i

(* seed [n] keys through individual durable puts *)
let seed db n =
  for i = 0 to n - 1 do
    Sd.put db (key i) (value i)
  done

(* a batch guaranteed to span several shards: enough distinct keys that
   4 shards cannot all collide *)
let batch_ops =
  [ ("batch-a", Some "A"); ("batch-b", Some "B"); ("batch-c", Some "C");
    ("batch-d", Some "D"); (key 1, Some "overwritten"); (key 2, None) ]

let run_batch db =
  Sd.write_batch db (fun b ->
      List.iter
        (fun (k, v) ->
          match v with
          | Some v -> Sd.put b k v
          | None -> ignore (Sd.delete b k))
        batch_ops)

(* all-or-nothing oracle after a crashed [run_batch] over [seed db 12] *)
let assert_all_or_nothing what db =
  check_ok what db;
  let applied = Sd.get db "batch-a" = Some "A" in
  List.iter
    (fun (k, v) ->
      let got = Sd.get db k in
      let want =
        if applied then v
        else if k = key 1 then Some (value 1)
        else if k = key 2 then Some (value 2)
        else None
      in
      if got <> want then
        Alcotest.failf "%s: half-applied batch at %s (%s)" what k
          (if applied then "expected applied" else "expected rolled back"))
    batch_ops;
  (* untouched committed keys always survive *)
  for i = 3 to 11 do
    if Sd.get db (key i) <> Some (value i) then
      Alcotest.failf "%s: lost committed key %s" what (key i)
  done;
  applied

(* ---- basics ---- *)

let test_basics () =
  let _, db = open_sharded () in
  Alcotest.(check int) "shards" 4 (Sd.shards db);
  seed db 100;
  Alcotest.(check int) "count" 100 (Sd.count db);
  (* the route must actually spread keys over all four shards *)
  let used = Array.make 4 0 in
  for i = 0 to 99 do
    let s = Sd.shard_of_key db (key i) in
    used.(s) <- used.(s) + 1
  done;
  Array.iteri
    (fun i n ->
      if n = 0 then Alcotest.failf "shard %d received no keys" i)
    used;
  Alcotest.(check (option string)) "get" (Some (value 42)) (Sd.get db (key 42));
  Alcotest.(check bool) "delete" true (Sd.delete db (key 42));
  Alcotest.(check (option string)) "gone" None (Sd.get db (key 42));
  Alcotest.(check int) "count after delete" 99 (Sd.count db);
  let fwd = ref [] and rev = ref [] in
  Sd.iter db (fun k v -> fwd := (k, v) :: !fwd);
  Sd.iter_reverse db (fun k v -> rev := (k, v) :: !rev);
  Alcotest.(check int) "iter complete" 99 (List.length !fwd);
  Alcotest.(check bool) "iter orders agree" true
    (List.sort compare !fwd = List.sort compare !rev);
  check_ok "basics" db

let test_invalid_args () =
  (* satellite fix: non-positive initial_buckets is a typed error in both
     stores, and an empty shard array is one too *)
  let check_invalid name f =
    match f () with
    | _ -> Alcotest.failf "%s: accepted invalid argument" name
    | exception Kv.Romulus_db.Invalid_buckets b ->
      Alcotest.(check bool) (name ^ " reports the bad value") true (b <= 0)
  in
  check_invalid "romulus_db zero buckets" (fun () ->
      Db.open_db ~initial_buckets:0 (region ()));
  check_invalid "romulus_db negative buckets" (fun () ->
      Db.open_db ~initial_buckets:(-3) (region ()));
  check_invalid "sharded zero buckets" (fun () ->
      Sd.open_db ~initial_buckets:0 (regions 2));
  check_invalid "sharded negative buckets" (fun () ->
      Sd.open_db ~initial_buckets:(-1) (regions 2));
  (match Sd.open_db [||] with
   | _ -> Alcotest.fail "accepted an empty shard array"
   | exception Kv.Sharded_db.Invalid_shards 0 -> ());
  (* the boundary value works *)
  let db = Sd.open_db ~initial_buckets:1 (regions 2) in
  Sd.put db "k" "v";
  Alcotest.(check (option string)) "buckets=1 usable" (Some "v")
    (Sd.get db "k")

(* ---- shards=1: bit-for-bit Romulus_db equivalence ---- *)

(* The same operation script drives a plain RomulusDB and a 1-shard
   sharded store over separate fresh regions; the persistent images must
   be byte-identical at every synchronisation point.  With one shard no
   batch can be cross-shard, so the intent machinery must never touch
   the region. *)
let test_shard1_bitwise_equivalence () =
  let ra = region () and rb = region () in
  let a = Db.open_db ~initial_buckets:8 ra in
  let b = Sd.open_db ~initial_buckets:8 [| rb |] in
  let sync what =
    Alcotest.(check bool)
      (what ^ ": persistent images identical") true
      (String.equal (R.persistent_snapshot ra) (R.persistent_snapshot rb))
  in
  sync "after open";
  for i = 0 to 30 do
    Db.put a (key i) (value i);
    Sd.put b (key i) (value i)
  done;
  sync "after puts";
  ignore (Db.delete a (key 7));
  ignore (Sd.delete b (key 7));
  Db.put a (key 3) "overwrite";
  Sd.put b (key 3) "overwrite";
  sync "after delete+overwrite";
  (* a write batch with read-your-writes inside *)
  let saw_a = ref [] and saw_b = ref [] in
  Db.write_batch a (fun d ->
      Db.put d "wb1" "x";
      saw_a := [ Db.get d "wb1"; Db.get d (key 5) ];
      ignore (Db.delete d (key 5));
      Db.put d "wb2" "y");
  Sd.write_batch b (fun d ->
      Sd.put d "wb1" "x";
      saw_b := [ Sd.get d "wb1"; Sd.get d (key 5) ];
      ignore (Sd.delete d (key 5));
      Sd.put d "wb2" "y");
  Alcotest.(check (list (option string)))
    "batch read-your-writes agree" !saw_a !saw_b;
  sync "after write batch";
  (* a raising batch aborts with the same typed error and no effects *)
  let abort_of f =
    match f () with
    | () -> Alcotest.fail "raising batch did not raise"
    | exception Romulus.Engine.Tx_aborted { cause = Failure m; _ } -> m
    | exception e -> Alcotest.failf "wrong abort: %s" (Printexc.to_string e)
  in
  let ma =
    abort_of (fun () ->
        Db.write_batch a (fun d ->
            Db.put d "doomed" "1";
            failwith "poison"))
  in
  let mb =
    abort_of (fun () ->
        Sd.write_batch b (fun d ->
            Sd.put d "doomed" "1";
            failwith "poison"))
  in
  Alcotest.(check string) "same abort cause" ma mb;
  Alcotest.(check (option string)) "abort left nothing (db)" None
    (Db.get a "doomed");
  Alcotest.(check (option string)) "abort left nothing (sharded)" None
    (Sd.get b "doomed");
  (* Immediately after the aborted batch the images differ in exactly the
     lazily-published state word: Romulus_db ran begin+abort (forcing a
     durable IDL), the sharded store never started an engine transaction.
     The divergence is transient — the next crash/recovery converges both
     sides, which the sync below witnesses. *)
  (* a crash replays identically *)
  R.crash ra R.Drop_all;
  R.crash rb R.Drop_all;
  let a = Db.open_db ra and b = Sd.open_db [| rb |] in
  sync "after crash+reopen";
  Alcotest.(check int) "same count" (Db.count a) (Sd.count b);
  Db.iter a (fun k v ->
      if Sd.get b k <> Some v then Alcotest.failf "diverged at %s" k)

(* ---- abort semantics (shards=4) ---- *)

let test_cross_shard_runtime_abort () =
  with_disarm @@ fun () ->
  let _, db = open_sharded ~protocol:Kv.Sharded_db.Centralized () in
  seed db 12;
  (* inject a software fault after the first per-shard transaction of a
     cross-shard batch commits: the batch must roll back to the pre-batch
     image, surface a typed abort, and leave no intent behind *)
  Fault.arm "sharded.batch.shard_applied" (fun () ->
      raise (Fault.Injected "sharded.batch.shard_applied"));
  (match run_batch db with
   | () -> Alcotest.fail "injected fault did not surface"
   | exception Romulus.Engine.Tx_aborted { cause = Fault.Injected _; _ } -> ()
   | exception e ->
     Alcotest.failf "expected Tx_aborted(Injected), got %s"
       (Printexc.to_string e));
  let applied = assert_all_or_nothing "runtime abort" db in
  Alcotest.(check bool) "rolled back, not applied" false applied;
  (* the store keeps working, and recovery finds nothing to reconcile *)
  Sd.recover ~parallel:false db;
  let applied = assert_all_or_nothing "after recover" db in
  Alcotest.(check bool) "still rolled back" false applied;
  run_batch db;
  Alcotest.(check bool) "batch applies cleanly afterwards" true
    (assert_all_or_nothing "clean retry" db)

let test_raising_closure_discards_buffer () =
  let _, db = open_sharded () in
  seed db 4;
  (match
     Sd.write_batch db (fun b ->
         Sd.put b "x" "1";
         raise Exit)
   with
   | () -> Alcotest.fail "no raise"
   | exception Romulus.Engine.Tx_aborted { cause = Exit; _ } -> ());
  Alcotest.(check (option string)) "buffered op discarded" None
    (Sd.get db "x");
  check_ok "raising closure" db

(* ---- crash sweeps: every instruction boundary, all 4 policies ---- *)

(* Sweep a trap over every instruction of every shard's region while a
   cross-shard batch runs, under each crash policy; after the crash, a
   reopened store must show the batch all-or-nothing and pass its
   checks.  This is the KV-level analogue of the PTM suite's
   crash_at_every_point. *)
let crash_sweep_policy policy =
  let crashes = ref 0 in
  for target = 0 to 3 do
    let continue = ref true in
    let trap = ref 1 in
    while !continue do
      let rs, db = open_sharded () in
      seed db 12;
      R.set_trap rs.(target) !trap;
      (match run_batch db with
       | () ->
         R.clear_trap rs.(target);
         continue := false
       | exception R.Crash_point -> incr crashes);
      crash_all rs policy;
      let db = Sd.open_db ~initial_buckets:8 rs in
      ignore (assert_all_or_nothing "crash sweep" db : bool);
      trap := !trap + 1
    done
  done;
  !crashes

let test_crash_sweep_drop_all () =
  let n = crash_sweep_policy R.Drop_all in
  Alcotest.(check bool) "sweep crossed the batch" true (n > 50)

let test_crash_sweep_keep_all () =
  ignore (crash_sweep_policy R.Keep_all : int)

let test_crash_sweep_random_subset () =
  ignore (crash_sweep_policy (R.Random_subset 41) : int)

let test_crash_sweep_torn_words () =
  ignore (crash_sweep_policy (R.Torn_words 17) : int)

(* ---- the centralized intent protocol's own windows (legacy) ---- *)

let test_intent_window_rollback () =
  with_disarm @@ fun () ->
  let rs, db = open_sharded ~protocol:Kv.Sharded_db.Centralized () in
  seed db 12;
  (* power off right after the intent record becomes durable: no shard
     has applied anything, recovery must roll the batch back *)
  Fault.arm "sharded.batch.intent_published" (fun () -> R.kill rs.(0));
  (match run_batch db with
   | () -> Alcotest.fail "kill did not fire"
   | exception R.Crash_point -> ());
  crash_all rs R.Drop_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  Alcotest.(check bool) "rolled back from PREPARED" false
    (assert_all_or_nothing "intent window" db)

let test_inter_commit_window () =
  with_disarm @@ fun () ->
  let rs, db = open_sharded ~protocol:Kv.Sharded_db.Centralized () in
  seed db 12;
  (* power off between two per-shard commits: some shards applied, the
     intent is still PREPARED, recovery must roll every shard back *)
  Fault.arm ~skip:1 "sharded.batch.shard_applied" (fun () -> R.kill rs.(0));
  (match run_batch db with
   | () -> Alcotest.fail "kill did not fire"
   | exception R.Crash_point -> ());
  crash_all rs R.Keep_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  Alcotest.(check bool) "half-applied batch rolled back" false
    (assert_all_or_nothing "inter-commit window" db)

let test_committed_window_rolls_forward () =
  with_disarm @@ fun () ->
  let rs, db = open_sharded ~protocol:Kv.Sharded_db.Centralized () in
  seed db 12;
  (* power off after the COMMITTED flip but before the record is cleared:
     the batch reached its durability point, recovery must roll forward *)
  Fault.arm "sharded.batch.committed" (fun () -> R.kill rs.(0));
  (match run_batch db with
   | () -> Alcotest.fail "kill did not fire"
   | exception R.Crash_point -> ());
  crash_all rs R.Keep_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  Alcotest.(check bool) "rolled forward from COMMITTED" true
    (assert_all_or_nothing "committed window" db);
  (* the intent was cleared: another reconciliation changes nothing *)
  Sd.recover ~parallel:false db;
  Alcotest.(check bool) "idempotent after roll-forward" true
    (assert_all_or_nothing "post-recover" db)

(* ---- the decentralized presumed-abort protocol's windows ---- *)

(* participant shards of [batch_ops], ascending; the coordinator is the
   minimum (first) participant *)
let d_participants db =
  List.sort_uniq compare
    (List.map (fun (k, _) -> Sd.shard_of_key db k) batch_ops)

let test_d_runtime_abort () =
  with_disarm @@ fun () ->
  let _, db = open_sharded () in
  seed db 12;
  (* software fault after the first mirror+apply transaction: the batch
     must roll back from its own mirrors and leave no record hooked *)
  Fault.arm "sharded.d.mirror_applied" (fun () ->
      raise (Fault.Injected "sharded.d.mirror_applied"));
  (match run_batch db with
   | () -> Alcotest.fail "injected fault did not surface"
   | exception Romulus.Engine.Tx_aborted { cause = Fault.Injected _; _ } -> ()
   | exception e ->
     Alcotest.failf "expected Tx_aborted(Injected), got %s"
       (Printexc.to_string e));
  let applied = assert_all_or_nothing "d runtime abort" db in
  Alcotest.(check bool) "rolled back, not applied" false applied;
  Alcotest.(check int) "no record left hooked" 0 (Sd.pending_intents db);
  let st = Sd.stats db in
  Alcotest.(check bool) "prepares counted" true
    (st.Pmem.Stats.intent_prepares > 0);
  Alcotest.(check bool) "rollbacks counted" true
    (st.Pmem.Stats.rolled_back > 0);
  run_batch db;
  Alcotest.(check bool) "batch applies cleanly afterwards" true
    (assert_all_or_nothing "clean retry" db)

(* kill the coordinator before its flip is written — after the first
   mirror and after the last: surviving mirrors with a clean coordinator
   flip list are a presumed abort, recovery rolls them back *)
let test_d_preflip_presumed_abort () =
  with_disarm @@ fun () ->
  let parts = snd (open_sharded ()) |> d_participants in
  let nparts = List.length parts in
  Alcotest.(check bool) "batch spans shards" true (nparts >= 2);
  List.iter
    (fun skip ->
      let rs, db = open_sharded () in
      seed db 12;
      let coord = List.hd (d_participants db) in
      Fault.arm ~skip "sharded.d.mirror_applied" (fun () ->
          R.kill rs.(coord));
      (match run_batch db with
       | () -> Alcotest.fail "kill did not fire"
       | exception R.Crash_point -> ());
      crash_all rs R.Keep_all;
      let db = Sd.open_db ~initial_buckets:8 rs in
      Alcotest.(check bool)
        (Printf.sprintf "presumed abort (skip=%d)" skip)
        false
        (assert_all_or_nothing "preflip window" db);
      Alcotest.(check int) "mirrors reclaimed" 0 (Sd.pending_intents db);
      Alcotest.(check bool) "rollbacks counted" true
        ((Sd.stats db).Pmem.Stats.rolled_back > 0))
    [ 0; nparts - 1 ]

let test_d_postflip_rolls_forward () =
  with_disarm @@ fun () ->
  let rs, db = open_sharded () in
  seed db 12;
  (* power off the coordinator right after the flip becomes durable: the
     batch reached its durability point with every mirror still hooked
     (lazy CLEAR), recovery must keep the applied slices *)
  let coord = List.hd (d_participants db) in
  Fault.arm "sharded.d.flip_written" (fun () -> R.kill rs.(coord));
  (match run_batch db with
   | () -> ()
   | exception R.Crash_point -> ());
  crash_all rs R.Drop_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  Alcotest.(check bool) "rolled forward from the flip" true
    (assert_all_or_nothing "postflip window" db);
  Alcotest.(check int) "mirrors and flip reclaimed" 0 (Sd.pending_intents db);
  Alcotest.(check bool) "roll-forwards counted" true
    ((Sd.stats db).Pmem.Stats.rolled_forward > 0);
  (* reconciliation already converged: another pass changes nothing *)
  Sd.recover ~parallel:false db;
  Alcotest.(check bool) "idempotent after roll-forward" true
    (assert_all_or_nothing "post-recover" db)

(* lazy CLEAR: a committed batch parks its mirrors and flip; the next
   batch over the same shards reclaims all of them piggybacked on its
   own protocol transactions *)
let test_d_lazy_clear_reclamation () =
  let _, db = open_sharded () in
  seed db 12;
  let footprint = List.length (d_participants db) + 1 in
  run_batch db;
  Alcotest.(check int) "committed batch parks its records" footprint
    (Sd.pending_intents db);
  run_batch db;
  (* batch 1's mirrors rode batch 2's PREPAREs, its flip batch 2's flip
     transaction: only batch 2's own records remain *)
  Alcotest.(check int) "previous batch fully reclaimed" footprint
    (Sd.pending_intents db);
  Alcotest.(check bool) "lazy clears counted" true
    ((Sd.stats db).Pmem.Stats.lazy_clears >= footprint);
  Alcotest.(check bool) "batch applied" true
    (assert_all_or_nothing "lazy clear" db);
  (* recovery reclaims the rest without touching data *)
  Sd.recover ~parallel:false db;
  Alcotest.(check int) "recovery drains the parked records" 0
    (Sd.pending_intents db);
  Alcotest.(check bool) "data untouched" true
    (assert_all_or_nothing "after drain" db)

let test_d_eager_clear () =
  let _, db =
    open_sharded ~protocol:(Kv.Sharded_db.Decentralized { lazy_clear = false })
      ()
  in
  seed db 12;
  run_batch db;
  Alcotest.(check bool) "batch applied" true
    (assert_all_or_nothing "eager clear" db);
  Alcotest.(check int) "eager CLEAR leaves nothing hooked" 0
    (Sd.pending_intents db)

(* crash in the middle of the reconciliation pass itself: the next
   recovery must converge to the same all-or-nothing verdict *)
let test_d_crash_during_reconciliation () =
  with_disarm @@ fun () ->
  let rs, db = open_sharded () in
  seed db 12;
  let target = Sd.shard_of_key db "batch-a" in
  R.set_trap rs.(target) 40;
  (match run_batch db with
   | () -> Alcotest.fail "trap did not fire"
   | exception R.Crash_point -> ());
  crash_all rs R.Drop_all;
  (* kill a shard right after recovery resolves the first mirror *)
  Fault.arm "sharded.recover.mirror_resolved" (fun () -> R.kill rs.(target));
  (match Sd.open_db ~initial_buckets:8 rs with
   | (_ : Sd.t) -> ()
   | exception R.Crash_point -> ());
  Fault.disarm ();
  crash_all rs R.Drop_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  ignore (assert_all_or_nothing "crashed reconciliation" db : bool);
  Alcotest.(check int) "reconciliation converged" 0 (Sd.pending_intents db)

(* ---- §10 regression: a single-key write racing an aborting batch ----

   The racing put durably invalidates the batch's undo image for the key
   inside its own transaction, so neither the inline rollback (runtime
   abort) nor recovery (crash) may overwrite it with the stale
   pre-image. *)

let assert_raced_rollback what db =
  check_ok what db;
  Alcotest.(check (option string)) (what ^ ": racing write survives")
    (Some "raced") (Sd.get db (key 1));
  List.iter
    (fun (k, _) ->
      if k <> key 1 then begin
        let want = if k = key 2 then Some (value 2) else None in
        if Sd.get db k <> want then
          Alcotest.failf "%s: batch key %s not rolled back" what k
      end)
    batch_ops;
  for i = 3 to 11 do
    if Sd.get db (key i) <> Some (value i) then
      Alcotest.failf "%s: lost committed key %s" what (key i)
  done

let test_d_lost_update_runtime_abort () =
  with_disarm @@ fun () ->
  let _, db = open_sharded () in
  seed db 12;
  let nparts = List.length (d_participants db) in
  (* once every mirror is hooked (all undo images pending), overwrite
     key 1 from outside the batch, then poison the batch *)
  Fault.arm ~skip:(nparts - 1) "sharded.d.mirror_applied" (fun () ->
      Sd.put db (key 1) "raced";
      raise (Fault.Injected "raced"));
  (match run_batch db with
   | () -> Alcotest.fail "injected fault did not surface"
   | exception Romulus.Engine.Tx_aborted { cause = Fault.Injected _; _ } -> ());
  assert_raced_rollback "lost-update (runtime abort)" db;
  Alcotest.(check int) "no record left hooked" 0 (Sd.pending_intents db)

let test_d_lost_update_crash_recovery () =
  with_disarm @@ fun () ->
  let rs, db = open_sharded () in
  seed db 12;
  let nparts = List.length (d_participants db) in
  let coord = List.hd (d_participants db) in
  (* same race, but the batch dies before its flip: recovery's presumed
     abort must honor the invalidated undo entry *)
  Fault.arm ~skip:(nparts - 1) "sharded.d.mirror_applied" (fun () ->
      Sd.put db (key 1) "raced";
      R.kill rs.(coord));
  (match run_batch db with
   | () -> Alcotest.fail "kill did not fire"
   | exception R.Crash_point -> ());
  crash_all rs R.Drop_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  assert_raced_rollback "lost-update (crash recovery)" db;
  Alcotest.(check int) "mirrors reclaimed" 0 (Sd.pending_intents db)

(* ---- recovery: parallel fan-out, idempotence, crashes within ---- *)

let test_parallel_recovery () =
  let rs, db = open_sharded () in
  seed db 12;
  (* leave a mid-commit wreck on one shard and a PREPARED intent *)
  R.set_trap rs.(2) 40;
  (match run_batch db with
   | () -> Alcotest.fail "trap did not fire"
   | exception R.Crash_point -> ());
  crash_all rs (R.Random_subset 7);
  let db = Sd.open_db ~initial_buckets:8 rs in
  ignore (assert_all_or_nothing "after reopen" db : bool);
  (* recovery over an already-consistent store, parallel and sequential,
     is a no-op — run both and compare full contents *)
  let dump db =
    let l = ref [] in
    Sd.iter db (fun k v -> l := (k, v) :: !l);
    List.sort compare !l
  in
  let before = dump db in
  Sd.recover ~parallel:true db;
  Alcotest.(check bool) "parallel recover is idempotent" true
    (dump db = before);
  Sd.recover ~parallel:false db;
  Alcotest.(check bool) "sequential recover agrees" true (dump db = before);
  check_ok "parallel recovery" db

let test_crash_during_recovery () =
  let rs, db = open_sharded () in
  seed db 12;
  (* shard 0 always participates in a cross-shard batch (intent record) *)
  R.set_trap rs.(0) 30;
  (match run_batch db with
   | () -> Alcotest.fail "trap did not fire"
   | exception R.Crash_point -> ());
  crash_all rs R.Drop_all;
  (* now crash again in the middle of recovery itself: the second
     recovery must still converge (recovery is idempotent) *)
  R.set_trap rs.(3) 10;
  (match Sd.open_db ~initial_buckets:8 rs with
   | _ -> R.clear_trap rs.(3)
   | exception R.Crash_point -> ());
  crash_all rs R.Drop_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  ignore (assert_all_or_nothing "crashed recovery" db : bool)

(* ---- scrub: repair-or-refuse per shard, aggregated report ---- *)

let test_scrub_repairs_shard () =
  let rs, db = open_sharded () in
  seed db 24;
  (* settle to durably-IDL (the engine publishes IDL lazily) *)
  crash_all rs R.Drop_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  let clean = Array.map R.persistent_snapshot rs in
  (* rot one line deep in shard 2's used span *)
  let spans = Sd.media_spans db in
  let base, span = List.hd spans.(2) in
  let line = (base + span - 1) / R.line_size rs.(2) in
  R.corrupt_line rs.(2) ~line;
  let rep = Sd.scrub db in
  Alcotest.(check bool) "scrub repaired the rot" true
    (rep.Romulus.Engine.repaired >= 1);
  Alcotest.(check bool) "scrub walked every shard" true
    (rep.Romulus.Engine.scrubbed > 0);
  Array.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d image restored" i)
        true
        (String.equal clean.(i) (R.persistent_snapshot r)))
    rs;
  Alcotest.(check int) "second scrub finds nothing" 0
    (Sd.scrub db).Romulus.Engine.repaired;
  check_ok "scrub repair" db

(* rot the same line in both twins of one shard: no copy can vouch.
   The salvage scrub tolerates the loss under IDL — it reports the
   unrepairable line instead of refusing, and the per-shard view
   attributes the loss to the sick shard alone. *)
let test_scrub_salvages_double_fault () =
  let rs, db = open_sharded () in
  seed db 24;
  crash_all rs R.Drop_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  let spans = (Sd.media_spans db).(1) in
  (match spans with
   | (mbase, mspan) :: (bbase, _) :: _ ->
     let delta = mspan - R.line_size rs.(1) in
     R.corrupt_line rs.(1) ~line:((mbase + delta) / R.line_size rs.(1));
     R.corrupt_line rs.(1) ~seed:99 ~line:((bbase + delta) / R.line_size rs.(1))
   | _ -> Alcotest.fail "expected twin spans");
  let rep = Sd.scrub db in
  Alcotest.(check bool) "double fault reported as data loss" true
    (List.length rep.Romulus.Engine.unrepairable >= 1);
  List.iter
    (fun (i, r) ->
      let n = List.length r.Romulus.Engine.unrepairable in
      if i = 1 then
        Alcotest.(check bool) "sick shard owns the loss" true (n >= 1)
      else
        Alcotest.(check int) (Printf.sprintf "shard %d stays clean" i) 0 n)
    (Sd.scrub_shards db)

(* ---- qcheck: random crash points over cross-shard batches ---- *)

let prop_sharded_crash_batch =
  let open QCheck in
  Test.make ~count:40 ~name:"sharded: crashed cross-shard batch is atomic"
    (triple small_nat (int_bound 3) (int_bound 3))
    (fun (trap, pol, target) ->
      let rs, db = open_sharded () in
      seed db 12;
      R.set_trap rs.(target) (trap + 1);
      (match run_batch db with
       | () -> R.clear_trap rs.(target)
       | exception R.Crash_point -> ());
      let policy =
        match pol with
        | 0 -> R.Drop_all
        | 1 -> R.Keep_all
        | 2 -> R.Random_subset (trap + 3)
        | _ -> R.Torn_words (trap + 13)
      in
      crash_all rs policy;
      let db = Sd.open_db ~initial_buckets:8 rs in
      ignore (assert_all_or_nothing "qcheck sweep" db : bool);
      true)

(* Mixing a racing single-key write with a crashing cross-shard batch
   under all four policies: the coordinator is killed in a random mirror
   window (so the batch always presumed-aborts), optionally after a
   single-key put to key 1 from outside the batch.  Whatever the
   interleaving, the raced key must end up at the racing value (the put
   committed durably before the kill) and every other batch key must
   roll back; the seed keys must survive untouched. *)
let prop_d_racing_mix =
  let open QCheck in
  Test.make ~count:40
    ~name:"sharded: racing write vs crashed decentralized batch"
    (triple small_nat (int_bound 3) bool)
    (fun (skip, pol, raced) ->
      with_disarm @@ fun () ->
      let rs, db = open_sharded () in
      seed db 12;
      let parts = d_participants db in
      let coord = List.hd parts in
      Fault.arm ~skip:(skip mod List.length parts) "sharded.d.mirror_applied"
        (fun () ->
          if raced then Sd.put db (key 1) "raced";
          R.kill rs.(coord));
      (match run_batch db with
       | () -> Alcotest.fail "kill did not fire"
       | exception R.Crash_point -> ());
      let policy =
        match pol with
        | 0 -> R.Drop_all
        | 1 -> R.Keep_all
        | 2 -> R.Random_subset (skip + 3)
        | _ -> R.Torn_words (skip + 13)
      in
      crash_all rs policy;
      let db = Sd.open_db ~initial_buckets:8 rs in
      check_ok "racing mix" db;
      let want_key1 = if raced then Some "raced" else Some (value 1) in
      if Sd.get db (key 1) <> want_key1 then
        Alcotest.failf "raced key diverged (raced=%b)" raced;
      List.iter
        (fun (k, _) ->
          if k <> key 1 then begin
            let want = if k = key 2 then Some (value 2) else None in
            if Sd.get db k <> want then
              Alcotest.failf "batch key %s not rolled back" k
          end)
        batch_ops;
      for i = 3 to 11 do
        if Sd.get db (key i) <> Some (value i) then
          Alcotest.failf "lost committed key %s" (key i)
      done;
      Alcotest.(check int) "reconciled clean" 0 (Sd.pending_intents db);
      true)

(* ---- snapshots ---- *)

let test_snapshot_roundtrip () =
  let dir = Filename.temp_file "sharded" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let _, db = open_sharded () in
      seed db 30;
      run_batch db;
      let base = Filename.concat dir "db" in
      Sd.save_to_files db base;
      let db2 = Sd.open_from_files ~shards:4 base in
      Alcotest.(check int) "count survives" (Sd.count db) (Sd.count db2);
      Sd.iter db (fun k v ->
          if Sd.get db2 k <> Some v then
            Alcotest.failf "snapshot diverged at %s" k);
      check_ok "snapshot" db2)

(* ---- chunked mirror streaming, spills, admission control ---- *)

module Ck = Kv.Sharded_db.Chunk

let big_value tag n = String.init n (fun i -> Char.chr ((tag + i) land 0xff))

(* two keys guaranteed to route to different shards of [shard_of_key] *)
let span_keys shard_of_key =
  let k0 = "span000" in
  let s0 = shard_of_key k0 in
  let rec find i =
    let k = Printf.sprintf "span%03d" i in
    if shard_of_key k <> s0 then k else find (i + 1)
  in
  (k0, find 1)

let prop_chunk_roundtrip =
  let open QCheck in
  let sizes = [| 1; 2; 3; 7; 64; 256; 4096 |] in
  Test.make ~count:200
    ~name:"chunk codec: split/join round-trips at every chunk size"
    (pair (string_of_size Gen.(0 -- 1024)) (int_bound (Array.length sizes - 1)))
    (fun (payload, si) ->
      let chunk_bytes = sizes.(si) in
      let pieces = Ck.split ~chunk_bytes payload in
      List.iter
        (fun p ->
          if String.length p > chunk_bytes then
            Test.fail_reportf "piece of %d bytes exceeds chunk_bytes %d"
              (String.length p) chunk_bytes)
        pieces;
      if payload = "" && pieces <> [ "" ] then
        Test.fail_reportf "empty payload is not one empty piece";
      if String.concat "" pieces <> payload then
        Test.fail_reportf "pieces lost bytes";
      match
        Ck.join ~expect_len:(String.length payload)
          (List.map (fun p -> (p, Ck.crc p)) pieces)
      with
      | Ok p -> String.equal p payload
      | Error e -> Test.fail_reportf "join rejected a clean chain: %s" e)

let test_chunk_chain_rejections () =
  let payload = String.init 1000 (fun i -> Char.chr (i * 7 land 0xff)) in
  let plen = String.length payload in
  let chain () =
    List.map (fun p -> (p, Ck.crc p)) (Ck.split ~chunk_bytes:64 payload)
  in
  let expect_reject what pieces =
    match Ck.join ~expect_len:plen pieces with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: corrupt chain accepted" what
  in
  (match Ck.join ~expect_len:plen (chain ()) with
   | Ok p -> Alcotest.(check string) "clean chain reassembles" payload p
   | Error e -> Alcotest.failf "clean chain rejected: %s" e);
  expect_reject "missing head chunk" (List.tl (chain ()));
  expect_reject "truncated tail"
    (List.filteri (fun i _ -> i < 15) (chain ()));
  expect_reject "flipped CRC word"
    (match chain () with
     | (p, c) :: rest -> (p, c lxor 1) :: rest
     | [] -> assert false);
  expect_reject "corrupted payload byte"
    (match chain () with
     | (p, c) :: rest ->
       (String.map (fun ch -> Char.chr (Char.code ch lxor 0x40)) p, c) :: rest
     | [] -> assert false);
  expect_reject "over-long chain" (chain () @ [ ("extra", Ck.crc "extra") ]);
  (match Ck.join ~expect_len:(plen - 1) (chain ()) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "declared-length mismatch accepted");
  match Ck.split ~chunk_bytes:0 payload with
  | _ -> Alcotest.fail "chunk_bytes = 0 accepted"
  | exception Invalid_argument _ -> ()

(* six keys whose 700-byte pre-images force both streaming (payload >
   chunk_bytes) and spilling (undo image > spill_threshold) at the
   256/128 test configuration *)
let big_keys = List.init 6 (fun i -> Printf.sprintf "big%02d" i)

let seed_big db = List.iter (fun k -> Sd.put db k (big_value 3 700)) big_keys

let overwrite_big_batch db =
  Sd.write_batch db (fun b ->
      List.iter (fun k -> Sd.put b k (big_value 9 900)) big_keys)

let big_participants db =
  List.sort_uniq compare (List.map (Sd.shard_of_key db) big_keys)

let test_chunked_batch_commits () =
  let _, db = open_sharded ~chunk_bytes:256 ~spill_threshold:128 () in
  seed db 12;
  seed_big db;
  let parts = big_participants db in
  Alcotest.(check bool) "big keys span shards" true (List.length parts >= 2);
  overwrite_big_batch db;
  List.iter
    (fun k ->
      Alcotest.(check (option string)) k (Some (big_value 9 900))
        (Sd.get db k))
    big_keys;
  let st = Sd.stats db in
  Alcotest.(check bool) "payloads streamed as multiple chunks" true
    (st.Pmem.Stats.chunks_written > List.length parts);
  Alcotest.(check bool) "every oversized undo image spilled" true
    (st.Pmem.Stats.chunks_spilled >= List.length big_keys);
  check_ok "chunked batch" db;
  (* chains, spills, mirrors and the flip are all reclaimable *)
  Sd.flush_clears db;
  Alcotest.(check int) "records reclaimed" 0 (Sd.pending_intents db);
  for i = 0 to 11 do
    if Sd.get db (key i) <> Some (value i) then
      Alcotest.failf "lost committed key %s" (key i)
  done

(* a racing single-key write invalidates an undo entry that lives inside
   a CRC-protected chunk: the invalidation must refresh the chunk's CRC
   or the rollback's chain read would reject its own mirror *)
let test_chunked_racing_invalidation () =
  with_disarm @@ fun () ->
  let _, db = open_sharded ~chunk_bytes:256 ~spill_threshold:128 () in
  seed db 12;
  seed_big db;
  let parts = big_participants db in
  let raced = List.hd big_keys in
  Fault.arm ~skip:(List.length parts - 1) "sharded.d.mirror_applied"
    (fun () ->
      Sd.put db raced "raced";
      raise (Fault.Injected "raced"));
  (match overwrite_big_batch db with
   | () -> Alcotest.fail "injected fault did not surface"
   | exception Romulus.Engine.Tx_aborted { cause = Fault.Injected _; _ } -> ());
  Alcotest.(check (option string)) "racing write survives the rollback"
    (Some "raced") (Sd.get db raced);
  List.iter
    (fun k ->
      if k <> raced && Sd.get db k <> Some (big_value 3 700) then
        Alcotest.failf "%s not restored from its spilled image" k)
    big_keys;
  check_ok "chunked racing invalidation" db;
  Alcotest.(check int) "no record left hooked" 0 (Sd.pending_intents db)

(* a batch of fresh 700-byte values at chunk_bytes=256: every
   participant streams a multi-chunk chain *)
let fresh_big_batch db =
  Sd.write_batch db (fun b ->
      for i = 0 to 7 do
        Sd.put b (Printf.sprintf "cb%02d" i) (big_value 5 700)
      done)

let fresh_big_coord db =
  List.fold_left min max_int
    (List.init 8 (fun i -> Sd.shard_of_key db (Printf.sprintf "cb%02d" i)))

let assert_fresh_big_rolled_back what db =
  for i = 0 to 7 do
    if Sd.get db (Printf.sprintf "cb%02d" i) <> None then
      Alcotest.failf "%s: cb%02d leaked from an unsealed chain" what i
  done;
  for i = 0 to 11 do
    if Sd.get db (key i) <> Some (value i) then
      Alcotest.failf "%s: lost committed key %s" what (key i)
  done;
  Alcotest.(check int) (what ^ ": nothing left hooked") 0
    (Sd.pending_intents db);
  check_ok what db

let test_chunk_midchain_kill () =
  with_disarm @@ fun () ->
  let rs, db = open_sharded ~chunk_bytes:256 () in
  seed db 12;
  let coord = fresh_big_coord db in
  (* power off after the second streamed chunk commits: the crash leaves
     an unsealed chain for recovery to collect as presumed abort *)
  Fault.arm ~skip:1 "sharded.chunk.written" (fun () -> R.kill rs.(coord));
  (match fresh_big_batch db with
   | () -> Alcotest.fail "kill did not fire"
   | exception R.Crash_point -> ());
  crash_all rs R.Keep_all;
  let db = Sd.open_db ~initial_buckets:8 ~chunk_bytes:256 rs in
  assert_fresh_big_rolled_back "mid-chain kill" db;
  Alcotest.(check bool) "chain GC counted as presumed abort" true
    ((Sd.stats db).Pmem.Stats.rolled_back > 0)

let test_chunk_seal_window_kill () =
  with_disarm @@ fun () ->
  let rs, db = open_sharded ~chunk_bytes:256 () in
  seed db 12;
  let coord = fresh_big_coord db in
  (* the whole chain is durable but the seal never runs: without the
     seal the chain is invalid and must be collected, not replayed *)
  Fault.arm "sharded.chunk.seal_window" (fun () -> R.kill rs.(coord));
  (match fresh_big_batch db with
   | () -> Alcotest.fail "kill did not fire"
   | exception R.Crash_point -> ());
  crash_all rs R.Keep_all;
  let db = Sd.open_db ~initial_buckets:8 ~chunk_bytes:256 rs in
  assert_fresh_big_rolled_back "seal-window kill" db

let test_crash_during_chain_gc () =
  with_disarm @@ fun () ->
  let rs, db = open_sharded ~chunk_bytes:256 () in
  seed db 12;
  let coord = fresh_big_coord db in
  Fault.arm "sharded.chunk.seal_window" (fun () -> R.kill rs.(coord));
  (match fresh_big_batch db with
   | () -> Alcotest.fail "kill did not fire"
   | exception R.Crash_point -> ());
  crash_all rs R.Keep_all;
  (* recovery dies right after collecting the unsealed chain; the next
     recovery must converge on the same verdict *)
  Fault.arm "sharded.chunk.gc" (fun () -> R.kill rs.(coord));
  (match Sd.open_db ~initial_buckets:8 ~chunk_bytes:256 rs with
   | (_ : Sd.t) -> Alcotest.fail "chain-GC kill did not fire"
   | exception R.Crash_point -> ());
  Fault.disarm ();
  crash_all rs R.Keep_all;
  let db = Sd.open_db ~initial_buckets:8 ~chunk_bytes:256 rs in
  assert_fresh_big_rolled_back "crash during chain GC" db

let test_admission_overload_immediate () =
  let _, db = open_sharded ~admission_budget:256 () in
  seed db 12;
  let ka, kb = span_keys (Sd.shard_of_key db) in
  (* a batch whose charge alone exceeds the budget is refused before any
     persistent effect, with the typed error raised raw *)
  (match
     Sd.write_batch db (fun b ->
         Sd.put b ka (big_value 1 400);
         Sd.put b kb (big_value 1 400))
   with
   | () -> Alcotest.fail "over-budget batch admitted"
   | exception Kv.Sharded_db.Overloaded { in_flight; budget; _ } ->
     Alcotest.(check int) "budget reported" 256 budget;
     Alcotest.(check int) "shard was idle" 0 in_flight
   | exception e ->
     Alcotest.failf "expected Overloaded, got %s" (Printexc.to_string e));
  Alcotest.(check (option string)) "nothing applied" None (Sd.get db ka);
  Alcotest.(check int) "nothing hooked" 0 (Sd.pending_intents db);
  Alcotest.(check bool) "rejection counted" true
    ((Sd.stats db).Pmem.Stats.overload_rejections > 0);
  (* a batch under the budget is unaffected *)
  run_batch db;
  Alcotest.(check bool) "small batch commits" true
    (assert_all_or_nothing "post-overload" db);
  check_ok "overload" db

let test_admission_overload_concurrent () =
  with_disarm @@ fun () ->
  let _, db = open_sharded ~admission_budget:2048 () in
  seed db 12;
  let ka, kb = span_keys (Sd.shard_of_key db) in
  let inner = ref None in
  (* while the outer batch holds ~650 in-flight bytes per shard, a
     second batch needing ~1650 more must be refused after its bounded
     backoff — typed Overloaded, never Out_of_memory *)
  Fault.arm "sharded.d.mirror_applied" (fun () ->
      (match
         Sd.write_batch db (fun b ->
             Sd.put b ka (big_value 2 1600);
             Sd.put b kb (big_value 2 1600))
       with
       | () -> Alcotest.fail "inner batch admitted over the budget"
       | exception Kv.Sharded_db.Overloaded { in_flight; budget; _ } ->
         inner := Some (in_flight, budget));
      raise (Fault.Injected "after inner"));
  (match
     Sd.write_batch db (fun b ->
         Sd.put b ka (big_value 1 600);
         Sd.put b kb (big_value 1 600))
   with
   | () -> Alcotest.fail "outer batch survived the injected fault"
   | exception Romulus.Engine.Tx_aborted { cause = Fault.Injected _; _ } -> ());
  (match !inner with
   | None -> Alcotest.fail "inner batch never ran"
   | Some (in_flight, budget) ->
     Alcotest.(check int) "budget reported" 2048 budget;
     Alcotest.(check bool) "outer charge visible to the inner batch" true
       (in_flight > 0));
  Alcotest.(check bool) "rejection counted" true
    ((Sd.stats db).Pmem.Stats.overload_rejections > 0);
  (* the aborted outer batch released its charge: the big batch fits now *)
  Sd.write_batch db (fun b ->
      Sd.put b ka (big_value 2 1600);
      Sd.put b kb (big_value 2 1600));
  Alcotest.(check (option string)) "charge released after the abort"
    (Some (big_value 2 1600)) (Sd.get db ka);
  check_ok "concurrent overload" db

(* Two identical stores whose arenas are filled and then fragmented
   (every other key freed): plenty of total free space, no large
   contiguous run.  A monolithic mirror (huge chunk_bytes) needs one
   contiguous allocation for the whole payload and dies with the
   allocator's typed Out_of_memory; bounded chunks drop into the freed
   bins and the same batch commits. *)
let test_chunking_survives_fragmentation () =
  let fragmented chunk_bytes =
    let rs = regions ~size:(1 lsl 18) 2 in
    let db = Sd.open_db ~initial_buckets:256 ~chunk_bytes rs in
    let filled = ref [] in
    let try_put k v =
      match Sd.put db k v with
      | () -> true
      | exception Romulus.Engine.Tx_aborted
          { cause = Palloc.Out_of_memory _; _ } ->
        false
    in
    (* fill with 2 KB values until the first shard's bump frontier is
       exhausted, then keep trying so the other shard fills too *)
    (try
       for i = 0 to 4096 do
         let k = Printf.sprintf "frag%04d" i in
         Sd.put db k (big_value 4 2048);
         filled := k :: !filled
       done
     with Romulus.Engine.Tx_aborted { cause = Palloc.Out_of_memory _; _ } ->
       ());
    for i = 0 to 95 do
      let k = Printf.sprintf "fragx%03d" i in
      if try_put k (big_value 4 2048) then filled := k :: !filled
    done;
    (* pack the remaining slack with ever smaller values: no shard keeps
       a usable contiguous run at its frontier *)
    List.iter
      (fun size ->
        for i = 0 to 95 do
          ignore
            (try_put (Printf.sprintf "pack%d-%03d" size i) (big_value 4 size)
              : bool)
        done)
      [ 512; 128; 32 ];
    if List.length !filled < 16 then
      Alcotest.fail "fragmentation seed too small";
    List.iteri
      (fun i k -> if i mod 2 = 0 then ignore (Sd.delete db k : bool))
      !filled;
    db
  in
  let batch db =
    Sd.write_batch db (fun b ->
        for i = 0 to 11 do
          Sd.put b (Printf.sprintf "post%02d" i) (big_value 6 2048)
        done)
  in
  let db = fragmented (1 lsl 22) in
  (match batch db with
   | () -> Alcotest.fail "monolithic mirror fit a fragmented arena"
   | exception Romulus.Engine.Tx_aborted
       { cause = Palloc.Out_of_memory _; _ } ->
     ());
  check_ok "monolithic abort left the store consistent" db;
  (* chunks comparable to the freed bins: each drops into one hole *)
  let db = fragmented 1024 in
  (match batch db with
   | () -> ()
   | exception e ->
     Alcotest.failf "chunked batch failed on the same arena: %s"
       (Printexc.to_string e));
  for i = 0 to 11 do
    let k = Printf.sprintf "post%02d" i in
    if Sd.get db k <> Some (big_value 6 2048) then
      Alcotest.failf "%s lost after the chunked commit" k
  done;
  check_ok "chunked commit on a fragmented arena" db

(* a redo-log overflow surfacing mid-PREPARE is retried with smaller
   chunks instead of reaching the caller — here injected once, so the
   first attempt aborts (and rolls back) and the retry commits *)
let test_overflow_retry_injected () =
  with_disarm @@ fun () ->
  let _, db = open_sharded () in
  seed db 12;
  Fault.arm "sharded.d.mirror_applied" (fun () ->
      raise (Romulus.Redo_log.Overflow { capacity = 42 }));
  run_batch db;
  Alcotest.(check bool) "batch committed through the retry" true
    (assert_all_or_nothing "overflow retry" db);
  Alcotest.(check int) "nothing stranded by the aborted attempt"
    (List.length (d_participants db) + 1)
    (Sd.pending_intents db)

(* the same degradation against a genuinely tight redo log: the
   single-transaction fast path exceeds the capacity, the streamed
   chunks fit *)
module TightLogged = struct
  include Romulus.Logged

  let tight_capacity = 24

  let open_region r =
    let t = open_region r in
    Romulus.Engine.configure ~redo_capacity:tight_capacity (engine t);
    t
end

module Tsd = Kv.Sharded_db.Make (TightLogged)

let test_overflow_retry_real () =
  let rs = regions 2 in
  let db = Tsd.open_db ~initial_buckets:8 rs in
  let ka, kb = span_keys (Tsd.shard_of_key db) in
  Tsd.write_batch db (fun b ->
      Tsd.put b ka (big_value 1 600);
      Tsd.put b kb (big_value 1 600));
  Alcotest.(check (option string)) "first key committed"
    (Some (big_value 1 600)) (Tsd.get db ka);
  Alcotest.(check (option string)) "second key committed"
    (Some (big_value 1 600)) (Tsd.get db kb);
  let st = Tsd.stats db in
  Alcotest.(check bool) "fast path overflowed and aborted" true
    (st.Pmem.Stats.tx_aborts > 0);
  Alcotest.(check bool) "payload streamed in bounded chunks" true
    (st.Pmem.Stats.chunks_written > 2);
  (match Tsd.check db with
   | Ok () -> ()
   | Error e -> Alcotest.failf "tight redo log: %s" e);
  (* the store stays usable at the shrunken chunk size *)
  Tsd.write_batch db (fun b ->
      Tsd.put b ka "small";
      Tsd.put b kb "small");
  Alcotest.(check (option string)) "later batch fine" (Some "small")
    (Tsd.get db ka)

let test_flush_clears () =
  (* explicit flush: a committed batch parks mirrors + flip; flush_clears
     reclaims them in dedicated transactions without waiting for the
     next batch *)
  let _, db = open_sharded () in
  seed db 12;
  run_batch db;
  let footprint = List.length (d_participants db) + 1 in
  Alcotest.(check int) "committed batch parks its records" footprint
    (Sd.pending_intents db);
  Sd.flush_clears db;
  Alcotest.(check int) "explicit flush reclaims everything" 0
    (Sd.pending_intents db);
  Alcotest.(check bool) "flush transactions counted" true
    ((Sd.stats db).Pmem.Stats.clear_flushes >= 1);
  Alcotest.(check bool) "data intact" true
    (assert_all_or_nothing "flush_clears" db);
  (* threshold 1: every parked mirror is drained right after the commit;
     only the flip (released by the last mirror's drain, behind the
     sweep) can remain, and an explicit flush clears it too *)
  let _, db2 = open_sharded ~clear_flush_threshold:1 () in
  seed db2 12;
  run_batch db2;
  Alcotest.(check int) "threshold 1 leaves at most the flip" 1
    (Sd.pending_intents db2);
  Sd.flush_clears db2;
  Alcotest.(check int) "flip flushed" 0 (Sd.pending_intents db2);
  Alcotest.(check bool) "auto-flushes counted" true
    ((Sd.stats db2).Pmem.Stats.clear_flushes
     >= List.length (d_participants db2));
  Alcotest.(check bool) "data intact after auto-flush" true
    (assert_all_or_nothing "auto flush" db2)

(* random crash points over a chunked+spilled cross-shard batch: the
   chain-level all-or-nothing must hold under every policy *)
let prop_chunked_crash_batch =
  let open QCheck in
  Test.make ~count:25
    ~name:"sharded: crashed chunked batch is atomic"
    (triple small_nat (int_bound 3) (int_bound 3))
    (fun (trap, pol, target) ->
      let rs, db = open_sharded ~chunk_bytes:256 ~spill_threshold:128 () in
      seed db 12;
      seed_big db;
      R.set_trap rs.(target) ((trap * 7) + 1);
      (match overwrite_big_batch db with
       | () -> R.clear_trap rs.(target)
       | exception R.Crash_point -> ());
      let policy =
        match pol with
        | 0 -> R.Drop_all
        | 1 -> R.Keep_all
        | 2 -> R.Random_subset (trap + 3)
        | _ -> R.Torn_words (trap + 13)
      in
      crash_all rs policy;
      let db =
        Sd.open_db ~initial_buckets:8 ~chunk_bytes:256 ~spill_threshold:128 rs
      in
      check_ok "chunked qcheck" db;
      let applied = Sd.get db (List.hd big_keys) = Some (big_value 9 900) in
      List.iter
        (fun k ->
          let want = if applied then big_value 9 900 else big_value 3 700 in
          if Sd.get db k <> Some want then
            Alcotest.failf "half-applied chunked batch at %s (applied=%b)" k
              applied)
        big_keys;
      for i = 0 to 11 do
        if Sd.get db (key i) <> Some (value i) then
          Alcotest.failf "lost committed key %s" (key i)
      done;
      true)

(* ---- elastic sharding: online split/merge with live migration ---- *)

(* every seeded key present exactly once, value intact *)
let assert_exactly_once what db n =
  check_ok what db;
  let seen = Hashtbl.create 64 in
  Sd.iter db (fun k v ->
      if Hashtbl.mem seen k then Alcotest.failf "%s: duplicate key %s" what k;
      Hashtbl.add seen k v);
  for i = 0 to n - 1 do
    match Hashtbl.find_opt seen (key i) with
    | Some v when v = value i -> ()
    | Some v -> Alcotest.failf "%s: %s has value %s" what (key i) v
    | None -> Alcotest.failf "%s: lost key %s" what (key i)
  done;
  if Sd.migration_pending db then
    Alcotest.failf "%s: migration intent still hooked" what

let test_split_basic () =
  let _, db = open_sharded ~shards:2 () in
  seed db 100;
  Alcotest.(check int) "epoch 0" 0 (Sd.epoch db);
  Alcotest.(check int) "slots" (2 * Kv.Sharded_db.slots_per_shard)
    (Sd.route_slots db);
  let target = Sd.split_shard db ~source:0 (region ()) in
  Alcotest.(check int) "target index" 2 target;
  Alcotest.(check int) "shards grew" 3 (Sd.shards db);
  Alcotest.(check int) "epoch flipped" 1 (Sd.epoch db);
  Alcotest.(check int) "count stable" 100 (Sd.count db);
  assert_exactly_once "split" db 100;
  (* the target actually owns slots and receives routes *)
  let owns = ref 0 in
  for s = 0 to Sd.route_slots db - 1 do
    if Sd.shard_of_slot db s = target then incr owns
  done;
  Alcotest.(check int) "target owns half the source's slots"
    (Kv.Sharded_db.slots_per_shard / 2) !owns;
  let st = Sd.stats db in
  Alcotest.(check int) "started" 1 st.Pmem.Stats.migrations_started;
  Alcotest.(check int) "completed" 1 st.Pmem.Stats.migrations_completed;
  Alcotest.(check int) "nothing resumed" 0 st.Pmem.Stats.migrations_resumed;
  Alcotest.(check bool) "keys migrated" true
    (st.Pmem.Stats.keys_migrated > 0);
  (* the store keeps working across the new route *)
  Sd.put db "post-split" "psv";
  Alcotest.(check (option string)) "post-split put" (Some "psv")
    (Sd.get db "post-split")

let test_merge_basic () =
  let _, db = open_sharded ~shards:2 () in
  seed db 80;
  let target = Sd.split_shard db ~source:0 (region ()) in
  Sd.merge_shards db ~source:target ~target:1;
  Alcotest.(check int) "epoch 2" 2 (Sd.epoch db);
  Alcotest.(check int) "source stays attached" 3 (Sd.shards db);
  for s = 0 to Sd.route_slots db - 1 do
    if Sd.shard_of_slot db s = target then
      Alcotest.failf "merged shard still owns slot %d" s
  done;
  assert_exactly_once "merge" db 80;
  let st = Sd.stats db in
  Alcotest.(check int) "two migrations" 2 st.Pmem.Stats.migrations_completed;
  (* merging the last slots out of shard 0 is fine too; merging a
     slotless shard is a typed error *)
  (match Sd.merge_shards db ~source:target ~target:0 with
   | () -> Alcotest.fail "merged a slotless shard"
   | exception Invalid_argument _ -> ());
  Sd.merge_shards db ~source:1 ~target:0;
  assert_exactly_once "merge all" db 80

let test_resize_persists () =
  (* the flipped route must survive a crash-reopen cycle with no
     migration left to replay *)
  let rs, db = open_sharded ~shards:2 () in
  seed db 60;
  let r2 = region () in
  ignore (Sd.split_shard db ~source:1 r2 : int);
  let route_before =
    List.init (Sd.route_slots db) (fun s -> Sd.shard_of_slot db s)
  in
  let rs = Array.append rs [| r2 |] in
  crash_all rs R.Keep_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  Alcotest.(check int) "epoch survives" 1 (Sd.epoch db);
  Alcotest.(check (list int)) "route survives" route_before
    (List.init (Sd.route_slots db) (fun s -> Sd.shard_of_slot db s));
  Alcotest.(check int) "nothing resumed" 0
    (Sd.stats db).Pmem.Stats.migrations_resumed;
  assert_exactly_once "reopened" db 60

let test_resize_guards () =
  let _, db = open_sharded ~shards:2 () in
  seed db 10;
  (match Sd.split_shard db ~source:5 (region ()) with
   | _ -> Alcotest.fail "split accepted a bad source"
   | exception Invalid_argument _ -> ());
  (match Sd.merge_shards db ~source:0 ~target:0 with
   | () -> Alcotest.fail "merged a shard into itself"
   | exception Invalid_argument _ -> ());
  Sd.write_batch db (fun b ->
      Sd.put b "guard" "g";
      match Sd.split_shard b ~source:0 (region ()) with
      | _ -> Alcotest.fail "resize accepted through a batch handle"
      | exception Invalid_argument _ -> ())

(* kill at each migration failpoint, under each crash policy; recovery
   must always complete the resize (the intent is durable at every one
   of these sites) with every key exactly once *)
let test_split_crash_at_failpoints () =
  (* per site: does recovery find an intent to resume?  (After the
     reclaim the intent is unhooked, so there is nothing left to do.)
     The kill lands on the source region, which every pre-reclaim phase
     touches promptly; the reclaimed site is the last region access of
     the whole resize, so the crash is raised at the site itself. *)
  let sites =
    [ ("sharded.migrate.intent_open", true);
      ("sharded.migrate.batch_moved", true);
      ("sharded.migrate.batch_applied", true);
      ("sharded.migrate.epoch_flip", true);
      ("sharded.migrate.reclaimed", false) ]
  in
  let policies =
    [ R.Drop_all; R.Keep_all; R.Random_subset 7; R.Torn_words 13 ]
  in
  List.iter
    (fun (site, resumes) ->
      List.iteri
        (fun pi policy ->
          with_disarm @@ fun () ->
          let rs, db =
            open_sharded ~shards:2 ~chunk_bytes:Kv.Sharded_db.min_chunk_bytes
              ()
          in
          seed db 60;
          let r2 = region () in
          if resumes then Fault.arm site (fun () -> R.kill rs.(0))
          else Fault.arm site (fun () -> raise R.Crash_point);
          (match Sd.split_shard db ~source:0 r2 with
           | (_ : int) -> Alcotest.failf "%s: kill did not fire" site
           | exception R.Crash_point -> ());
          let rs = Array.append rs [| r2 |] in
          crash_all rs policy;
          let db = Sd.open_db ~initial_buckets:8 rs in
          let what = Printf.sprintf "%s/policy%d" site pi in
          assert_exactly_once what db 60;
          Alcotest.(check int) (what ^ " epoch") 1 (Sd.epoch db);
          let st = Sd.stats db in
          Alcotest.(check int) (what ^ " resumed")
            (if resumes then 1 else 0)
            st.Pmem.Stats.migrations_resumed;
          (* exactly one completion ever: pre-flip crashes complete on
             resume, post-flip crashes must not flip a second time
             (region counters survive the simulated power cycle) *)
          Alcotest.(check int) (what ^ " completed once") 1
            st.Pmem.Stats.migrations_completed)
        policies)
    sites

(* a single-key write racing the move stream: fired between the source
   and target transactions of the first move batch, the raced key (in a
   moving slot) must carry the racing value after the split — and also
   after a kill + recovery *)
let test_racing_write_during_split () =
  let moving_key db target =
    let rec find i =
      let k = Printf.sprintf "race%03d" i in
      if Sd.shard_of_key db k = target then k else find (i + 1)
    in
    find 0
  in
  (* live race, no crash *)
  with_disarm (fun () ->
      let _, db = open_sharded ~shards:2 () in
      seed db 40;
      let raced = ref "" in
      let deleted = ref "" in
      Fault.arm "sharded.migrate.batch_moved" (fun () ->
          (* during the window moving slots already route to the new
             shard (index 2): these are forwarded writes.  Pick the
             delete victim by route, not by visibility — a key of the
             in-flight batch is legitimately invisible right here (the
             cursor owns it), yet its forwarded delete must still win
             via the tombstone. *)
          raced := moving_key db 2;
          Sd.put db !raced "raced-live";
          let rec victim i =
            if i >= 40 then None
            else if Sd.shard_of_key db (key i) = 2 then Some (key i)
            else victim (i + 1)
          in
          match victim 0 with
          | Some k ->
            deleted := k;
            ignore (Sd.delete db k : bool)
          | None -> ());
      ignore (Sd.split_shard db ~source:0 (region ()) : int);
      check_ok "racing live" db;
      Alcotest.(check (option string)) "raced put survives the stream"
        (Some "raced-live") (Sd.get db !raced);
      if !deleted <> "" then
        Alcotest.(check (option string)) "raced delete survives the stream"
          None (Sd.get db !deleted);
      Alcotest.(check bool) "double-read served the window" true
        ((Sd.stats db).Pmem.Stats.double_reads >= 0));
  (* same race, then kill the source before the target tx of a later
     batch; recovery must keep the racing values *)
  List.iter
    (fun policy ->
      with_disarm @@ fun () ->
      let rs, db =
        open_sharded ~shards:2 ~chunk_bytes:Kv.Sharded_db.min_chunk_bytes ()
      in
      seed db 40;
      let raced = ref "" in
      Fault.arm "sharded.migrate.batch_moved" (fun () ->
          raced := moving_key db 2;
          Sd.put db !raced "raced-crash";
          R.kill rs.(0));
      let r2 = region () in
      (match Sd.split_shard db ~source:0 r2 with
       | (_ : int) -> Alcotest.fail "kill did not fire"
       | exception R.Crash_point -> ());
      let rs = Array.append rs [| r2 |] in
      crash_all rs policy;
      let db = Sd.open_db ~initial_buckets:8 rs in
      assert_exactly_once "racing crash" db 40;
      Alcotest.(check (option string)) "raced put survives recovery"
        (Some "raced-crash") (Sd.get db !raced))
    [ R.Drop_all; R.Keep_all; R.Torn_words 5 ]

(* a cross-shard batch touching a moving slot is refused with the typed
   Overloaded while the window is open, and succeeds on retry once the
   window has closed *)
let test_batch_refused_during_window () =
  with_disarm @@ fun () ->
  let _, db = open_sharded ~shards:2 () in
  seed db 40;
  let refused = ref 0 in
  Fault.arm "sharded.migrate.batch_moved" (fun () ->
      match
        Sd.write_batch db (fun b ->
            (* span both a moving slot (routes to shard 2 during the
               window) and a stable key *)
            let rec mk i =
              if Sd.shard_of_key db (Printf.sprintf "win%03d" i) = 2 then
                Printf.sprintf "win%03d" i
              else mk (i + 1)
            in
            Sd.put b (mk 0) "wv";
            Sd.put b "stable-key" "sv")
      with
      | () -> ()
      | exception Kv.Sharded_db.Overloaded { shard; _ } ->
        incr refused;
        Alcotest.(check int) "refusal names the target" 2 shard);
  ignore (Sd.split_shard db ~source:0 (region ()) : int);
  Alcotest.(check bool) "window refused the batch" true (!refused >= 1);
  (* after the flip the same batch goes through *)
  Sd.write_batch db (fun b ->
      Sd.put b "win-after" "wv";
      Sd.put b "stable-key" "sv");
  Alcotest.(check (option string)) "post-window batch lands" (Some "sv")
    (Sd.get db "stable-key");
  check_ok "window refusal" db

(* satellite: open_from_files with the wrong ~shards is a typed error
   before any region is opened *)
let test_shard_mismatch_typed () =
  let dir = Filename.temp_file "sharded" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let _, db = open_sharded ~shards:2 () in
      seed db 30;
      ignore (Sd.split_shard db ~source:0 (region ()) : int);
      let base = Filename.concat dir "db" in
      Sd.save_to_files db base;
      let expect_mismatch requested =
        match Sd.open_from_files ~shards:requested base with
        | _ -> Alcotest.failf "shards:%d accepted a 3-file family" requested
        | exception Kv.Sharded_db.Shard_mismatch { requested = r; found } ->
          Alcotest.(check int) "requested echoed" requested r;
          Alcotest.(check int) "found counts the family" 3 found
      in
      expect_mismatch 2;
      expect_mismatch 4;
      (* the right count reopens the grown store, route intact *)
      let db2 = Sd.open_from_files ~shards:3 base in
      Alcotest.(check int) "epoch survives the snapshot" 1 (Sd.epoch db2);
      assert_exactly_once "snapshot of a grown store" db2 30;
      Sd.iter db (fun k v ->
          if Sd.get db2 k <> Some v then
            Alcotest.failf "snapshot diverged at %s" k))

(* satellite: the backoff schedule is exact per seed and the retry loop
   follows it precisely *)
let test_overload_retry_schedule () =
  let module S = Kv.Sharded_db in
  let schedule = S.overload_backoff_schedule ~retries:5 ~base_ns:100 ~seed:7 in
  Alcotest.(check int) "five waits" 5 (List.length schedule);
  (* deterministic: same seed, same schedule; different seed differs *)
  Alcotest.(check (list int)) "same seed reproduces"
    schedule
    (S.overload_backoff_schedule ~retries:5 ~base_ns:100 ~seed:7);
  if schedule = S.overload_backoff_schedule ~retries:5 ~base_ns:100 ~seed:8
  then Alcotest.fail "seeds 7 and 8 produced identical jitter";
  (* exponential slots with bounded jitter: wait i lives in
     [base*2^i, base*2^i + max 1 (base*2^i/2)) *)
  List.iteri
    (fun i w ->
      let slot = 100 * (1 lsl i) in
      if w < slot || w >= slot + max 1 (slot / 2) then
        Alcotest.failf "wait %d = %d outside [%d, %d)" i w slot
          (slot + max 1 (slot / 2)))
    schedule;
  (* the retry loop performs retries+1 attempts, sleeping exactly the
     schedule between them, then lets the last failure through *)
  let attempts = ref 0 and waited = ref [] in
  (match
     S.with_overload_retry ~retries:5 ~base_ns:100 ~seed:7
       ~on_wait:(fun w -> waited := w :: !waited)
       (fun () ->
         incr attempts;
         raise (S.Overloaded { shard = 0; in_flight = 1; budget = 1 }))
   with
   | _ -> Alcotest.fail "exhausted retry must re-raise"
   | exception S.Overloaded _ -> ());
  Alcotest.(check int) "attempts" 6 !attempts;
  Alcotest.(check (list int)) "sleeps follow the schedule" schedule
    (List.rev !waited);
  (* success on a later attempt stops the schedule early *)
  let attempts = ref 0 and waited = ref [] in
  let v =
    S.with_overload_retry ~retries:5 ~base_ns:100 ~seed:7
      ~on_wait:(fun w -> waited := w :: !waited)
      (fun () ->
        incr attempts;
        if !attempts < 3 then
          raise (S.Overloaded { shard = 0; in_flight = 1; budget = 1 });
        !attempts * 10)
  in
  Alcotest.(check int) "returns the success value" 30 v;
  Alcotest.(check int) "stopped after success" 3 !attempts;
  Alcotest.(check (list int)) "slept only before success"
    (List.filteri (fun i _ -> i < 2) schedule)
    (List.rev !waited);
  (* other exceptions pass straight through *)
  (match
     S.with_overload_retry ~retries:3 ~seed:1 (fun () -> failwith "boom")
   with
   | _ -> Alcotest.fail "unexpected success"
   | exception Failure _ -> ())

(* ---- qcheck: routing properties (satellite) ---- *)

(* arbitrary printable keys, deterministic enough to re-derive *)
let qkey =
  QCheck.(string_of_size Gen.(1 -- 24))

(* epoch-0 routing is bit-for-bit the pre-elastic FNV-1a route *)
let prop_epoch0_matches_fnv =
  let open QCheck in
  (* the historical route: FNV-1a over the key, one avalanche step,
     modulo the shard count *)
  let legacy_route ~shards k =
    let h = ref 0x4bf29ce484222325 in
    String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3) k;
    let h = !h in
    let h = h lxor (h lsr 33) in
    let h = h * 0x2545F4914F6CDD1D in
    (h lxor (h lsr 29)) land max_int mod shards
  in
  Test.make ~count:100 ~name:"routing: epoch 0 is the legacy FNV-1a route"
    (pair (list_of_size Gen.(1 -- 30) qkey) (int_range 1 6))
    (fun (keys, shards) ->
      let _, db = open_sharded ~shards ~size:(1 lsl 16) () in
      List.for_all
        (fun k -> Sd.shard_of_key db k = legacy_route ~shards k)
        keys)

(* the route survives close/reopen (and so does the epoch) *)
let prop_route_stable_across_reopen =
  let open QCheck in
  Test.make ~count:40 ~name:"routing: stable across close/reopen"
    (pair (list_of_size Gen.(1 -- 20) qkey) bool)
    (fun (keys, resize) ->
      let rs, db = open_sharded ~shards:2 ~size:(1 lsl 17) () in
      seed db 10;
      let rs =
        if resize then begin
          let r2 = region ~size:(1 lsl 17) () in
          ignore (Sd.split_shard db ~source:0 r2 : int);
          Array.append rs [| r2 |]
        end
        else rs
      in
      let before = List.map (fun k -> Sd.shard_of_key db k) keys in
      crash_all rs R.Keep_all;
      let db = Sd.open_db ~initial_buckets:8 rs in
      List.map (fun k -> Sd.shard_of_key db k) keys = before
      && Sd.epoch db = (if resize then 1 else 0))

(* across 8 shards no shard is more than 2x the ideal load *)
let prop_route_uniform =
  let open QCheck in
  Test.make ~count:20 ~name:"routing: uniform within 2x across 8 shards"
    (int_range 0 1000)
    (fun salt ->
      let _, db = open_sharded ~shards:8 ~size:(1 lsl 16) () in
      let n = 2048 in
      let used = Array.make 8 0 in
      for i = 0 to n - 1 do
        let s = Sd.shard_of_key db (Printf.sprintf "uni-%d-%06d" salt i) in
        used.(s) <- used.(s) + 1
      done;
      Array.for_all (fun c -> c <= 2 * (n / 8)) used)

(* ---- shard fault isolation & self-healing (CORRECTNESS.md 14) ---- *)

(* rot the deepest used line of [sick] — both twins for a twin-copy
   engine, the single image otherwise: unrepairable damage that still
   leaves the engine mountable *)
let rot_shard rs db sick =
  match (Sd.media_spans db).(sick) with
  | (mbase, mspan) :: rest ->
    let ls = R.line_size rs.(sick) in
    let delta = mspan - ls in
    R.corrupt_line rs.(sick) ~line:((mbase + delta) / ls);
    (match rest with
     | (bbase, _) :: _ ->
       R.corrupt_line rs.(sick) ~seed:99 ~line:((bbase + delta) / ls)
     | [] -> ())
  | [] -> Alcotest.failf "shard %d has no media spans" sick

(* a settled store: seeded, crashed clean and reopened, so every line is
   durably fenced and at-rest rot is the only damage *)
let settled ?(shards = 4) n =
  let rs, db = open_sharded ~shards () in
  seed db n;
  crash_all rs R.Drop_all;
  (rs, Sd.open_db ~initial_buckets:8 rs)

let keys_on db ~shard n =
  List.filter
    (fun i -> Sd.shard_of_key db (key i) = shard)
    (List.init n (fun i -> i))

let test_health_degraded_read_only () =
  let rs, db = settled 32 in
  rot_shard rs db 1;
  crash_all rs R.Drop_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  (match Sd.health db 1 with
   | Kv.Sharded_db.Degraded _ -> ()
   | _ -> Alcotest.fail "rot did not degrade shard 1");
  List.iter
    (fun i ->
      match Sd.health db i with
      | Kv.Sharded_db.Healthy -> ()
      | _ -> Alcotest.failf "healthy shard %d reclassified" i)
    [ 0; 2; 3 ];
  (* healthy slots serve both ways; the sick shard serves only reads *)
  let on_sick = ref 0 in
  for i = 0 to 31 do
    let k = key i in
    if Sd.shard_of_key db k = 1 then begin
      incr on_sick;
      (match Sd.get db k with
       | got ->
         if got <> Some (value i) then
           Alcotest.failf "degraded read %s diverged" k
       | exception R.Media_error _ ->
         (* the rotten line itself: typed, never silently blessed *)
         ());
      match Sd.put db k "must-not-land" with
      | () -> Alcotest.fail "write to a Degraded shard accepted"
      | exception Kv.Sharded_db.Shard_unavailable { shard; _ } ->
        Alcotest.(check int) "refusal names the shard" 1 shard
    end
    else begin
      Alcotest.(check (option string)) k (Some (value i)) (Sd.get db k);
      Sd.put db k (value i)
    end
  done;
  if !on_sick = 0 then Alcotest.fail "no key routed to the sick shard";
  (* a cross-shard batch touching the sick shard is refused atomically *)
  let ksick = key (List.hd (keys_on db ~shard:1 32)) in
  let ih = List.hd (keys_on db ~shard:0 32) in
  (match
     Sd.write_batch db (fun b ->
         Sd.put b (key ih) "batched";
         Sd.put b ksick "batched")
   with
   | () -> Alcotest.fail "cross-shard batch into a Degraded shard accepted"
   | exception Kv.Sharded_db.Shard_unavailable { shard; _ } ->
     Alcotest.(check int) "batch refusal names the shard" 1 shard);
  Alcotest.(check (option string)) "refused batch left no trace"
    (Some (value ih)) (Sd.get db (key ih));
  let st = Sd.stats db in
  Alcotest.(check bool) "rejections metered" true
    (st.Pmem.Stats.unavailable_rejections > 0);
  Alcotest.(check bool) "degradation metered" true
    (st.Pmem.Stats.health_degraded > 0)

let test_health_quarantine_unopenable () =
  let rs, db = settled 32 in
  ignore db;
  (* smash the head of shard 2's region: the engine cannot mount *)
  for l = 0 to 3 do
    R.corrupt_line rs.(2) ~line:l
  done;
  crash_all rs R.Drop_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  (match Sd.health db 2 with
   | Kv.Sharded_db.Quarantined _ -> ()
   | _ -> Alcotest.fail "unopenable shard 2 was not quarantined");
  let hit = ref 0 in
  for i = 0 to 31 do
    let k = key i in
    if Sd.shard_of_key db k = 2 then begin
      incr hit;
      (match Sd.get db k with
       | _ -> Alcotest.fail "quarantined slot served a read"
       | exception Kv.Sharded_db.Shard_unavailable { shard; _ } ->
         Alcotest.(check int) "read refusal blames shard 2" 2 shard);
      match Sd.put db k "must-not-land" with
      | () -> Alcotest.fail "quarantined slot accepted a write"
      | exception Kv.Sharded_db.Shard_unavailable _ -> ()
    end
    else Alcotest.(check (option string)) k (Some (value i)) (Sd.get db k)
  done;
  if !hit = 0 then Alcotest.fail "no key routed to the quarantined shard";
  (* a full scan must refuse — typed — rather than silently miss keys *)
  (match Sd.iter db (fun _ _ -> ()) with
   | () -> Alcotest.fail "scan silently skipped a quarantined shard"
   | exception Kv.Sharded_db.Shard_unavailable { shard; _ } ->
     Alcotest.(check int) "scan refusal blames shard 2" 2 shard);
  Alcotest.(check bool) "quarantine metered" true
    ((Sd.stats db).Pmem.Stats.health_quarantined > 0)

(* shard 0 anchors the route table, the intents and the health record:
   its loss is the typed fatal, naming the shard *)
let test_shard0_failure_typed () =
  let rs, db = settled 8 in
  ignore db;
  for l = 0 to 3 do
    R.corrupt_line rs.(0) ~line:l
  done;
  crash_all rs R.Drop_all;
  match Sd.open_db ~initial_buckets:8 rs with
  | _ -> Alcotest.fail "store opened without its anchor shard"
  | exception Kv.Sharded_db.Shard_open_failed { shard; _ } ->
    Alcotest.(check int) "anchor failure names shard 0" 0 shard

let test_recover_shard_failure_typed () =
  let rs, db = settled 16 in
  ignore db;
  for l = 0 to 3 do
    R.corrupt_line rs.(3) ~line:l
  done;
  crash_all rs R.Drop_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  match Sd.recover_shard db 3 with
  | () -> Alcotest.fail "recover_shard succeeded on a dead shard"
  | exception Kv.Sharded_db.Shard_open_failed { shard; _ } ->
    Alcotest.(check int) "recover_shard names the failing shard" 3 shard

let test_open_from_files_failure_typed () =
  let dir = Filename.temp_file "sharded-health" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let _, db = settled 16 in
      let base = Filename.concat dir "db" in
      Sd.save_to_files db base;
      let bad = R.shard_snapshot_path base ~shard:2 in
      let oc = open_out bad in
      output_string oc "not a region snapshot";
      close_out oc;
      match Sd.open_from_files ~shards:4 base with
      | _ -> Alcotest.fail "opened a store from a garbage snapshot"
      | exception Kv.Sharded_db.Shard_open_failed { shard; _ } ->
        Alcotest.(check int) "load failure names the shard" 2 shard)

let test_repair_snapshot_restore () =
  let dir = Filename.temp_file "sharded-restore" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let rs, db = settled 32 in
      let base = Filename.concat dir "snap" in
      Sd.save_to_files db base;
      rot_shard rs db 1;
      crash_all rs R.Drop_all;
      let db = Sd.open_db ~initial_buckets:8 rs in
      (match Sd.health db 1 with
       | Kv.Sharded_db.Healthy -> Alcotest.fail "rot left shard 1 Healthy"
       | _ -> ());
      (match Sd.repair ~snapshot_base:base db with
       | [ (1, Sd.Snapshot_restored) ] -> ()
       | _ -> Alcotest.fail "expected a snapshot restore of shard 1");
      (match Sd.health db 1 with
       | Kv.Sharded_db.Healthy -> ()
       | _ -> Alcotest.fail "restore did not heal the shard");
      for i = 0 to 31 do
        Alcotest.(check (option string))
          (key i) (Some (value i))
          (Sd.get db (key i))
      done;
      Sd.put db (key 0) "writable-again";
      Alcotest.(check (option string)) "writes re-enabled"
        (Some "writable-again") (Sd.get db (key 0));
      let st = Sd.stats db in
      Alcotest.(check bool) "restore metered" true
        (st.Pmem.Stats.repair_snapshot_restores > 0);
      Alcotest.(check bool) "healing metered" true
        (st.Pmem.Stats.health_repaired > 0);
      check_ok "restored store" db;
      (* the healed verdict is durable — the restore swapped a fresh
         region in for shard 1, so reopen through the store's current
         region table, not the original (still rotten) one *)
      let rs = Sd.regions db in
      crash_all rs R.Drop_all;
      let db = Sd.open_db ~initial_buckets:8 rs in
      match Sd.health db 1 with
      | Kv.Sharded_db.Healthy -> ()
      | _ -> Alcotest.fail "healed verdict lost across reopen")

let test_repair_evacuates () =
  let rs, db = settled 32 in
  let sick = 1 in
  let expected_sick = keys_on db ~shard:sick 32 in
  if expected_sick = [] then Alcotest.fail "no key routed to shard 1";
  rot_shard rs db sick;
  crash_all rs R.Drop_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  let target, moved =
    match Sd.repair db with
    | [ (s, Sd.Evacuated_keys { target; moved }) ] when s = sick ->
      (target, moved)
    | _ -> Alcotest.fail "expected an evacuation of shard 1"
  in
  (match Sd.health db sick with
   | Kv.Sharded_db.Quarantined (Kv.Sharded_db.Evacuated { target = t }) ->
     Alcotest.(check int) "verdict names the target" target t
   | _ -> Alcotest.fail "evacuated shard carries the wrong verdict");
  (match Sd.health db target with
   | Kv.Sharded_db.Healthy -> ()
   | _ -> Alcotest.fail "evacuation target is not healthy");
  for s = 0 to Sd.route_slots db - 1 do
    if Sd.shard_of_slot db s = sick then
      Alcotest.failf "slot %d still routed to the evacuated shard" s
  done;
  (* survivors byte-identical and exactly once; losses only ever keys
     that lived on the evacuated shard *)
  let survivors = ref 0 in
  List.iter
    (fun i ->
      match Sd.get db (key i) with
      | Some v ->
        incr survivors;
        Alcotest.(check string) (key i) (value i) v
      | None -> ())
    expected_sick;
  Alcotest.(check int) "moved = surviving sick keys" !survivors moved;
  let seen = Hashtbl.create 64 in
  Sd.iter db (fun k _ ->
      if Hashtbl.mem seen k then Alcotest.failf "scan served %s twice" k;
      Hashtbl.replace seen k ());
  Alcotest.(check int) "scan and count agree" (Hashtbl.length seen)
    (Sd.count db);
  List.iter
    (fun i ->
      if not (List.mem i expected_sick) then
        Alcotest.(check (option string))
          (key i) (Some (value i))
          (Sd.get db (key i)))
    (List.init 32 (fun i -> i));
  (* a write to a re-routed key lands on the adopting shard *)
  let i0 = List.hd expected_sick in
  Sd.put db (key i0) "rerouted";
  Alcotest.(check (option string)) "rerouted write lands" (Some "rerouted")
    (Sd.get db (key i0));
  Alcotest.(check bool) "evacuation metered" true
    ((Sd.stats db).Pmem.Stats.shards_evacuated > 0);
  Alcotest.(check int) "nothing left hooked" 0 (Sd.pending_intents db);
  (* the retired verdict survives further crash-recoveries *)
  crash_all rs R.Drop_all;
  let db = Sd.open_db ~initial_buckets:8 rs in
  (match Sd.health db sick with
   | Kv.Sharded_db.Quarantined (Kv.Sharded_db.Evacuated _) -> ()
   | _ -> Alcotest.fail "evacuated verdict lost across reopen");
  Alcotest.(check (option string)) "rerouted key survives reopen"
    (Some "rerouted")
    (Sd.get db (key i0));
  check_ok "evacuated store" db

(* qcheck: rot in one shard is attributed to that shard alone — the
   per-shard scrub reports and the per-region counters both stay silent
   for every healthy shard *)
let prop_scrub_attribution =
  let open QCheck in
  Test.make ~count:30
    ~name:"health: scrub attributes rot to the sick shard alone"
    (triple (int_range 1 3) small_nat bool)
    (fun (sick, pick, both) ->
      let rs, db = open_sharded () in
      seed db 24;
      crash_all rs R.Drop_all;
      let db = Sd.open_db ~initial_buckets:8 rs in
      match (Sd.media_spans db).(sick) with
      | (mbase, mspan) :: rest ->
        let ls = R.line_size rs.(sick) in
        let nlines = max 1 (mspan / ls) in
        let delta = pick mod nlines * ls in
        R.corrupt_line rs.(sick) ~line:((mbase + delta) / ls);
        (match rest with
         | (bbase, _) :: _ when both ->
           R.corrupt_line rs.(sick) ~seed:7 ~line:((bbase + delta) / ls)
         | _ -> ());
        let before =
          Array.map (fun r -> Pmem.Stats.snapshot (R.stats r)) rs
        in
        let reports = Sd.scrub_shards db in
        List.length reports = 4
        && List.for_all
             (fun (i, rep) ->
               let d =
                 Pmem.Stats.since ~now:(R.stats rs.(i)) ~past:before.(i)
               in
               let unrep = List.length rep.Romulus.Engine.unrepairable in
               if i = sick then
                 rep.Romulus.Engine.repaired + unrep >= 1
                 && d.Pmem.Stats.repaired_lines = rep.Romulus.Engine.repaired
                 && d.Pmem.Stats.unrepairable_lines >= unrep
               else
                 rep.Romulus.Engine.repaired = 0
                 && unrep = 0
                 && d.Pmem.Stats.repaired_lines = 0
                 && d.Pmem.Stats.unrepairable_lines = 0)
             reports
      | [] -> false)

(* ---- group-commit front-end (Group_commit, CORRECTNESS.md 15) ---- *)

module Gc = Kv.Group_commit.Default

(* first [n] indices whose key routes to [shard] under [db] *)
let group_keys_on db ~shard n =
  let rec go i acc left =
    if left = 0 then List.rev acc
    else if Sd.shard_of_key db (key i) = shard then
      go (i + 1) (i :: acc) (left - 1)
    else go (i + 1) acc left
  in
  go 0 [] n

let test_group_async_coalesces () =
  let _, db = open_sharded () in
  let fe = Gc.attach ~window:32 ~ack:Kv.Group_commit.Async db in
  Alcotest.(check int) "queues = shards + cross" 5 (Gc.queues fe);
  for i = 0 to 19 do
    Gc.put fe (key i) (value i)
  done;
  (* nothing drained yet: acks were given at enqueue, the store is empty *)
  Alcotest.(check int) "all queued" 20 (Gc.pending fe);
  Alcotest.(check (option string)) "store not yet durable" None
    (Sd.get db (key 3));
  Alcotest.(check (option string)) "read-your-writes from the queue"
    (Some (value 3)) (Gc.get fe (key 3));
  let st = Sd.stats db in
  Alcotest.(check int) "async acks counted" 20 st.Pmem.Stats.async_acks;
  Alcotest.(check int) "no engine round yet" 0 st.Pmem.Stats.group_commits;
  Gc.flush fe;
  Alcotest.(check int) "drained" 0 (Gc.pending fe);
  for i = 0 to 19 do
    if Sd.get db (key i) <> Some (value i) then
      Alcotest.failf "flush lost %s" (key i)
  done;
  let st = Sd.stats db in
  Alcotest.(check int) "every logical tx settled" 20
    st.Pmem.Stats.group_size_sum;
  Alcotest.(check int) "one flush" 1 st.Pmem.Stats.flushes;
  (* 20 logical txs over 4 shard queues: at most 4 engine rounds, so at
     least 16 fence sequences were never paid *)
  Alcotest.(check bool) "coalesced (rounds <= shards)" true
    (st.Pmem.Stats.group_commits <= 4);
  Alcotest.(check int) "fences saved = logical - rounds"
    (20 - st.Pmem.Stats.group_commits) st.Pmem.Stats.fences_saved;
  (* watermark = submitted on every queue after a flush *)
  for qi = 0 to Gc.queues fe - 1 do
    Alcotest.(check int) "watermark caught up" (Gc.submitted fe qi)
      (Gc.watermark fe qi)
  done;
  check_ok "group async" db

let test_group_sync_is_per_tx () =
  let _, db = open_sharded () in
  let fe = Gc.attach ~ack:Kv.Group_commit.Sync db in
  for i = 0 to 9 do
    Gc.put fe (key i) (value i);
    (* Sync acks at the flip: the write is durable when put returns *)
    Alcotest.(check (option string)) "durable at ack" (Some (value i))
      (Sd.get db (key i))
  done;
  Gc.delete fe (key 0);
  Alcotest.(check (option string)) "delete durable at ack" None
    (Sd.get db (key 0));
  let st = Sd.stats db in
  Alcotest.(check int) "one engine round per logical tx" 11
    st.Pmem.Stats.group_commits;
  Alcotest.(check int) "nothing saved at group size 1" 0
    st.Pmem.Stats.fences_saved;
  Alcotest.(check int) "no async acks in Sync mode" 0
    st.Pmem.Stats.async_acks

let test_group_batch_sync_threshold () =
  let _, db = open_sharded () in
  let fe =
    Gc.attach ~window:32
      ~ack:(Kv.Group_commit.Batch_sync { txs = 4; bytes = max_int }) db
  in
  (* four keys on one shard queue so the txs threshold governs *)
  let shard = Sd.shard_of_key db (key 0) in
  let ks = group_keys_on db ~shard 4 in
  List.iteri
    (fun n i ->
      Gc.put fe (key i) (value i);
      if n < 3 then begin
        Alcotest.(check int) "below threshold: watermark parked" 0
          (Gc.watermark fe shard);
        Alcotest.(check int) "acked rides the watermark" 0
          (Gc.acked fe shard)
      end)
    ks;
  (* the fourth put crossed the threshold: the group drained as one
     engine round and the watermark passed all four *)
  Alcotest.(check int) "group drained at txs threshold" 4
    (Gc.watermark fe shard);
  Alcotest.(check int) "acked with the group" 4 (Gc.acked fe shard);
  List.iter
    (fun i ->
      if Sd.get db (key i) <> Some (value i) then
        Alcotest.failf "batch-sync lost %s" (key i))
    ks;
  let st = Sd.stats db in
  Alcotest.(check int) "one engine round for the group" 1
    st.Pmem.Stats.group_commits;
  Alcotest.(check int) "three fences amortized away" 3
    st.Pmem.Stats.fences_saved;
  Alcotest.(check int) "largest group recorded" 4
    st.Pmem.Stats.group_size_max

let test_group_cross_batches_share_intent () =
  let _, db = open_sharded () in
  let fe = Gc.attach ~window:32 ~ack:Kv.Group_commit.Async db in
  let st0 = Pmem.Stats.snapshot (Sd.stats db) in
  (* three cross-shard batches queued back to back: one shared intent *)
  for b = 0 to 2 do
    Gc.write_batch fe (fun h ->
        Sd.put h (Printf.sprintf "cross-%d-a" b) "A";
        Sd.put h (Printf.sprintf "cross-%d-b" b) "B";
        Sd.put h (Printf.sprintf "cross-%d-c" b) "C")
  done;
  Gc.flush fe;
  for b = 0 to 2 do
    if Sd.get db (Printf.sprintf "cross-%d-a" b) <> Some "A" then
      Alcotest.failf "merged batch %d lost" b
  done;
  let d = Pmem.Stats.since ~now:(Sd.stats db) ~past:st0 in
  Alcotest.(check int) "one coordinator flip for the whole group" 1
    d.Pmem.Stats.coordinator_flips;
  Alcotest.(check int) "two batches rode the shared intent" 2
    d.Pmem.Stats.merged_intents;
  check_ok "shared intent" db

let test_group_raiser_fails_alone_in_window () =
  let _, db = open_sharded () in
  let fe = Gc.attach ~window:32 ~ack:Kv.Group_commit.Async db in
  Gc.write_batch fe (fun h -> Sd.put h "grp-ok-1" "1");
  Gc.write_batch fe (fun _ -> raise Exit);
  Gc.write_batch fe (fun h -> Sd.put h "grp-ok-2" "2");
  (* the raiser is answered alone (its failure deferred, Tx_aborted
     around the client exception) and the survivors commit as a new
     group; flush surfaces the deferred failure *)
  (match Gc.flush fe with
   | () -> Alcotest.fail "flush swallowed the raiser's failure"
   | exception Romulus.Engine.Tx_aborted { cause = Exit; _ } -> ()
   | exception e -> Alcotest.failf "unexpected %s" (Printexc.to_string e));
  Alcotest.(check (option string)) "survivor before raiser" (Some "1")
    (Sd.get db "grp-ok-1");
  Alcotest.(check (option string)) "survivor after raiser" (Some "2")
    (Sd.get db "grp-ok-2");
  Alcotest.(check int) "deferred list cleared" 0
    (List.length (Gc.failures fe));
  check_ok "raiser window" db

let test_group_barrier_ordering () =
  let _, db = open_sharded () in
  let fe = Gc.attach ~window:32 ~ack:Kv.Group_commit.Async db in
  (* put / cross-batch / put on the same key: the cross queue is a
     sequencing barrier, so the last write must win *)
  Gc.put fe "ord" "first";
  Gc.write_batch fe (fun h ->
      Sd.put h "ord" "second";
      Sd.put h "ord-peer" "x");
  Gc.put fe "ord" "third";
  Alcotest.(check (option string)) "read-your-writes sees the newest"
    (Some "third") (Gc.get fe "ord");
  Gc.flush fe;
  Alcotest.(check (option string)) "submission order preserved"
    (Some "third") (Sd.get db "ord");
  Alcotest.(check (option string)) "batch effect present" (Some "x")
    (Sd.get db "ord-peer");
  (* delete ordering across the barrier too *)
  Gc.write_batch fe (fun h -> Sd.put h "ord" "fourth");
  Gc.delete fe "ord";
  Alcotest.(check (option string)) "delete after batch wins" None
    (Gc.get fe "ord");
  Gc.flush fe;
  Alcotest.(check (option string)) "delete durable" None (Sd.get db "ord")

(* Async losses are a clean watermark prefix, never a torn suffix: crash
   mid-drain, reopen the bare store, and check every shard's survivors
   form a prefix of that shard's submission order. *)
let test_group_crash_prefix () =
  let rs, db = open_sharded () in
  let fe = Gc.attach ~window:4 ~ack:Kv.Group_commit.Async db in
  (* per-shard submission order of the keys we enqueue *)
  let order = Array.make 4 [] in
  for i = 0 to 11 do
    Gc.put fe (key i) (value i);
    let s = Sd.shard_of_key db (key i) in
    order.(s) <- key i :: order.(s)
  done;
  Gc.flush fe;
  for i = 12 to 23 do
    Gc.put fe (key i) (value i);
    let s = Sd.shard_of_key db (key i) in
    order.(s) <- key i :: order.(s)
  done;
  (* kill one region mid-flush: the engine transaction in flight is
     torn, everything after it never starts *)
  R.set_trap rs.(1) 40;
  (match Gc.flush fe with
   | () -> ()  (* trap may land after the last drain *)
   | exception R.Crash_point -> ());
  crash_all rs (R.Torn_words 7);
  let db = Sd.open_db ~initial_buckets:8 rs in
  check_ok "after group crash" db;
  Array.iteri
    (fun s ks ->
      let ks = List.rev ks in
      let rec check_prefix seen_missing = function
        | [] -> ()
        | k :: rest ->
          (match Sd.get db k with
           | Some _ when seen_missing ->
             Alcotest.failf
               "shard %d: %s survived after an earlier loss (torn suffix)"
               s k
           | Some _ -> check_prefix false rest
           | None -> check_prefix true rest)
      in
      check_prefix false ks)
    order;
  (* the first flush fully drained before the trap was armed: its keys
     are below the watermark and must all survive *)
  for i = 0 to 11 do
    if Sd.get db (key i) <> Some (value i) then
      Alcotest.failf "settled-before-crash key %s lost" (key i)
  done

(* QCheck: the durability watermark is monotone and the acked set is
   prefix-closed across all three modes, and a final flush converges the
   front-end onto the bare store's contents (model-checked replay). *)
let prop_group_watermark =
  let open QCheck in
  let mode_of = function
    | 0 -> Kv.Group_commit.Sync
    | 1 -> Kv.Group_commit.Batch_sync { txs = 3; bytes = 256 }
    | _ -> Kv.Group_commit.Async
  in
  let mode_name = function
    | 0 -> "Sync" | 1 -> "Batch_sync" | _ -> "Async"
  in
  Test.make ~count:60
    ~name:"group: watermark monotone, acks prefix-closed, flush converges"
    (triple (int_bound 2) (int_range 1 6)
       (list_of_size Gen.(1 -- 40) (pair (int_bound 15) (int_bound 3))))
    (fun (m, window, ops) ->
      let _, db = open_sharded ~size:(1 lsl 17) () in
      let fe = Gc.attach ~window ~ack:(mode_of m) db in
      let model = Hashtbl.create 16 in
      let nq = Gc.queues fe in
      let last_mark = Array.make nq 0 and last_ack = Array.make nq 0 in
      let observe () =
        for qi = 0 to nq - 1 do
          let w = Gc.watermark fe qi and a = Gc.acked fe qi in
          let s = Gc.submitted fe qi in
          if w < last_mark.(qi) then
            Test.fail_reportf "%s: watermark regressed on queue %d"
              (mode_name m) qi;
          if a < last_ack.(qi) then
            Test.fail_reportf "%s: acked regressed on queue %d"
              (mode_name m) qi;
          if w > s || a > s then
            Test.fail_reportf "%s: mark beyond submissions on queue %d"
              (mode_name m) qi;
          (* prefix closure per mode: Sync/Batch_sync ack exactly at the
             watermark; Async acks the whole submitted prefix *)
          (match mode_of m with
           | Kv.Group_commit.Async ->
             if a <> s then
               Test.fail_reportf "Async: ack not given at enqueue"
           | _ ->
             if a <> w then
               Test.fail_reportf "%s: ack strayed from the watermark"
                 (mode_name m));
          last_mark.(qi) <- w;
          last_ack.(qi) <- a
        done
      in
      List.iter
        (fun (ki, kind) ->
          let k = key ki in
          (match kind with
           | 0 | 1 ->
             let v = Printf.sprintf "v%d-%d" ki kind in
             Gc.put fe k v;
             Hashtbl.replace model k v
           | 2 ->
             Gc.delete fe k;
             Hashtbl.remove model k
           | _ ->
             let v = Printf.sprintf "b%d" ki in
             Gc.write_batch fe (fun h ->
                 Sd.put h k v;
                 Sd.put h (k ^ "'") v);
             Hashtbl.replace model k v;
             Hashtbl.replace model (k ^ "'") v);
          observe ())
        ops;
      Gc.flush fe;
      observe ();
      for qi = 0 to nq - 1 do
        if Gc.watermark fe qi <> Gc.submitted fe qi then
          Test.fail_reportf "%s: flush left queue %d short" (mode_name m) qi
      done;
      (* converged onto the model *)
      Hashtbl.iter
        (fun k v ->
          if Sd.get db k <> Some v then
            Test.fail_reportf "%s: model key %s diverged" (mode_name m) k)
        model;
      let extra = ref 0 in
      Sd.iter db (fun k _ -> if not (Hashtbl.mem model k) then incr extra);
      !extra = 0)

let suite =
  let tc = Alcotest.test_case in
  [ tc "sharded basics" `Quick test_basics;
    tc "invalid arguments typed" `Quick test_invalid_args;
    tc "shards=1 bitwise equivalence" `Quick test_shard1_bitwise_equivalence;
    tc "cross-shard runtime abort" `Quick test_cross_shard_runtime_abort;
    tc "raising closure discards buffer" `Quick
      test_raising_closure_discards_buffer;
    tc "crash sweep drop-all" `Slow test_crash_sweep_drop_all;
    tc "crash sweep keep-all" `Slow test_crash_sweep_keep_all;
    tc "crash sweep random-subset" `Slow test_crash_sweep_random_subset;
    tc "crash sweep torn-words" `Slow test_crash_sweep_torn_words;
    tc "intent window rollback" `Quick test_intent_window_rollback;
    tc "inter-commit window rollback" `Quick test_inter_commit_window;
    tc "committed window rolls forward" `Quick
      test_committed_window_rolls_forward;
    tc "decentralized runtime abort" `Quick test_d_runtime_abort;
    tc "decentralized pre-flip presumed abort" `Quick
      test_d_preflip_presumed_abort;
    tc "decentralized post-flip rolls forward" `Quick
      test_d_postflip_rolls_forward;
    tc "lazy CLEAR reclamation" `Quick test_d_lazy_clear_reclamation;
    tc "eager CLEAR leaves nothing" `Quick test_d_eager_clear;
    tc "crash during reconciliation" `Quick
      test_d_crash_during_reconciliation;
    tc "lost update: runtime abort race" `Quick
      test_d_lost_update_runtime_abort;
    tc "lost update: crash recovery race" `Quick
      test_d_lost_update_crash_recovery;
    tc "parallel recovery" `Quick test_parallel_recovery;
    tc "crash during recovery" `Quick test_crash_during_recovery;
    tc "scrub repairs a shard" `Quick test_scrub_repairs_shard;
    tc "scrub salvages double fault" `Quick test_scrub_salvages_double_fault;
    tc "snapshot round trip" `Quick test_snapshot_roundtrip;
    tc "chunk chain rejections" `Quick test_chunk_chain_rejections;
    tc "chunked batch commits with spilled undo" `Quick
      test_chunked_batch_commits;
    tc "chunked racing invalidation refreshes CRC" `Quick
      test_chunked_racing_invalidation;
    tc "mid-chain kill collects unsealed chain" `Quick
      test_chunk_midchain_kill;
    tc "seal-window kill is presumed abort" `Quick
      test_chunk_seal_window_kill;
    tc "crash during chain GC converges" `Quick test_crash_during_chain_gc;
    tc "admission: over-budget batch refused" `Quick
      test_admission_overload_immediate;
    tc "admission: concurrent batches degrade" `Quick
      test_admission_overload_concurrent;
    tc "chunking survives a fragmented arena" `Quick
      test_chunking_survives_fragmentation;
    tc "redo overflow retried with smaller chunks (injected)" `Quick
      test_overflow_retry_injected;
    tc "redo overflow retried with smaller chunks (tight log)" `Quick
      test_overflow_retry_real;
    tc "flush_clears bounds the lazy queues" `Quick test_flush_clears;
    tc "elastic: split basics" `Quick test_split_basic;
    tc "elastic: merge basics" `Quick test_merge_basic;
    tc "elastic: flipped route survives reopen" `Quick test_resize_persists;
    tc "elastic: resize guards typed" `Quick test_resize_guards;
    tc "elastic: kill at every migrate failpoint" `Slow
      test_split_crash_at_failpoints;
    tc "elastic: racing write vs move stream" `Quick
      test_racing_write_during_split;
    tc "elastic: batch refused during window" `Quick
      test_batch_refused_during_window;
    tc "open_from_files shard mismatch typed" `Quick
      test_shard_mismatch_typed;
    tc "overload retry schedule exact per seed" `Quick
      test_overload_retry_schedule;
    tc "health: degraded shard serves reads only" `Quick
      test_health_degraded_read_only;
    tc "health: unopenable shard quarantined" `Quick
      test_health_quarantine_unopenable;
    tc "health: shard-0 failure typed" `Quick test_shard0_failure_typed;
    tc "health: recover_shard failure typed" `Quick
      test_recover_shard_failure_typed;
    tc "health: open_from_files failure typed" `Quick
      test_open_from_files_failure_typed;
    tc "repair: snapshot restore heals" `Quick test_repair_snapshot_restore;
    tc "repair: evacuation retires the shard" `Quick test_repair_evacuates;
    tc "group: async coalesces windows" `Quick test_group_async_coalesces;
    tc "group: Sync is the per-tx baseline" `Quick test_group_sync_is_per_tx;
    tc "group: Batch_sync txs threshold" `Quick
      test_group_batch_sync_threshold;
    tc "group: cross batches share one intent" `Quick
      test_group_cross_batches_share_intent;
    tc "group: raiser fails alone in its window" `Quick
      test_group_raiser_fails_alone_in_window;
    tc "group: cross queue is a sequencing barrier" `Quick
      test_group_barrier_ordering;
    tc "group: crash loses only a watermark prefix" `Quick
      test_group_crash_prefix ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_sharded_crash_batch; prop_d_racing_mix; prop_chunk_roundtrip;
        prop_chunked_crash_batch; prop_epoch0_matches_fnv;
        prop_route_stable_across_reopen; prop_route_uniform;
        prop_scrub_attribution; prop_group_watermark ]

let () = Alcotest.run "sharded" [ ("sharded", suite) ]
