(* Unit and property tests for the simulated persistent-memory region. *)

module R = Pmem.Region

let region ?fence ?(size = 4096) () = R.create ?fence ~size ()

(* ---- basic load/store ---- *)

let test_store_load () =
  let r = region () in
  R.store r 0 42;
  R.store r 8 (-7);
  R.store r 4088 max_int;
  Alcotest.(check int) "word at 0" 42 (R.load r 0);
  Alcotest.(check int) "word at 8" (-7) (R.load r 8);
  Alcotest.(check int) "word at end" max_int (R.load r 4088)

let test_store_bytes () =
  let r = region () in
  R.store_bytes r 100 "hello, persistent world";
  Alcotest.(check string) "blob round-trip" "hello, persistent world"
    (R.load_bytes r 100 23)

let test_bounds () =
  let r = region () in
  Alcotest.check_raises "load past end"
    (Invalid_argument "Region.load: range [4089, 4097) outside region of 4096 bytes")
    (fun () -> ignore (R.load r 4089));
  Alcotest.check_raises "negative store"
    (Invalid_argument "Region.store: range [-8, 0) outside region of 4096 bytes")
    (fun () -> R.store r (-8) 0)

let test_size_rounding () =
  let r = R.create ~size:100 () in
  Alcotest.(check int) "rounded to line multiple" 128 (R.size r)

(* ---- persistence semantics ---- *)

let test_unfenced_store_not_durable () =
  let r = region () in
  R.store r 0 99;
  R.crash r R.Drop_all;
  Alcotest.(check int) "dropped" 0 (R.load r 0)

let test_pwb_without_fence_not_durable () =
  let r = region () in
  R.store r 0 99;
  R.pwb r 0;
  R.crash r R.Drop_all;
  Alcotest.(check int) "pwb alone is not durable" 0 (R.load r 0)

let test_fenced_store_durable () =
  let r = region () in
  R.store r 0 99;
  R.pwb r 0;
  R.pfence r;
  R.crash r R.Drop_all;
  Alcotest.(check int) "durable after pfence" 99 (R.load r 0)

let test_fence_only_persists_pwbed_lines () =
  let r = region () in
  R.store r 0 11;        (* line 0, never pwb'ed *)
  R.store r 64 22;       (* line 1, pwb'ed *)
  R.pwb r 64;
  R.pfence r;
  R.crash r R.Drop_all;
  Alcotest.(check int) "line without pwb dropped" 0 (R.load r 0);
  Alcotest.(check int) "pwb'ed line persisted" 22 (R.load r 64)

let test_keep_all_policy () =
  let r = region () in
  R.store r 0 5;
  R.crash r R.Keep_all;
  Alcotest.(check int) "eviction persisted the dirty line" 5 (R.load r 0)

let test_crash_restores_volatile_from_persistent () =
  let r = region () in
  R.store r 0 1;
  R.pwb r 0; R.pfence r;
  R.store r 0 2;
  R.crash r R.Drop_all;
  Alcotest.(check int) "restart sees last durable value" 1 (R.load r 0)

let test_ordered_pwb_profile () =
  let r = region ~fence:Pmem.Fence.clflush () in
  R.store r 0 7;
  R.pwb r 0;
  (* no fence: CLFLUSH is synchronous *)
  R.crash r R.Drop_all;
  Alcotest.(check int) "clflush persists immediately" 7 (R.load r 0)

let test_copy_then_pwb_range () =
  let r = region () in
  R.store_bytes r 0 "twin copy payload!";
  R.copy r ~src:0 ~dst:2048 ~len:18;
  R.pwb_range r 2048 18;
  R.pfence r;
  R.crash r R.Drop_all;
  Alcotest.(check string) "copied range durable" "twin copy payload!"
    (R.load_bytes r 2048 18)

(* ---- stats ---- *)

let test_stats_counts () =
  let r = region () in
  let s = R.stats r in
  R.store r 0 1;
  R.store r 8 2;
  R.pwb r 0;
  R.pwb_range r 0 128;  (* 2 lines *)
  R.pfence r;
  R.psync r;
  ignore (R.load r 0);
  Alcotest.(check int) "stores" 2 s.Pmem.Stats.stores;
  Alcotest.(check int) "pwbs" 3 s.Pmem.Stats.pwbs;
  Alcotest.(check int) "pfences" 1 s.Pmem.Stats.pfences;
  Alcotest.(check int) "psyncs" 1 s.Pmem.Stats.psyncs;
  Alcotest.(check int) "loads" 1 s.Pmem.Stats.loads;
  Alcotest.(check int) "nvm bytes" 16 s.Pmem.Stats.nvm_bytes

(* Catch-all audit of the counter record: a literal with every field at
   a distinct non-zero value (the compiler rejects it the moment a field
   is added without updating this test), summed by [aggregate] and
   printed by [pp].  [since (aggregate [a; a]) a = a] holds only if
   aggregate sums — and since subtracts — every single field; the pp
   output must quote every raw counter value. *)
let test_stats_cover_every_field () =
  let a =
    { Pmem.Stats.pwbs = 101; pfences = 102; psyncs = 103; loads = 104;
      stores = 105; nvm_bytes = 106; user_bytes = 107; load_bytes = 108;
      copy_calls = 109; replicated_bytes = 110; commits = 111;
      delay_ns = 112; crashes = 113; tx_aborts = 114; scrubbed_lines = 115;
      repaired_lines = 116; unrepairable_lines = 117; media_errors = 118;
      intent_prepares = 119; coordinator_flips = 120; lazy_clears = 121;
      rolled_forward = 122; rolled_back = 123; chunks_written = 124;
      chunks_spilled = 125; overload_rejections = 126; clear_flushes = 127;
      migrations_started = 128; migrations_resumed = 129;
      migrations_completed = 130; keys_migrated = 131; double_reads = 132;
      health_degraded = 133; health_quarantined = 134; health_repaired = 135;
      repair_attempts = 136; repair_snapshot_restores = 137;
      shards_evacuated = 138; keys_evacuated = 139;
      unavailable_rejections = 140; group_commits = 141;
      group_size_sum = 142; group_size_max = 143; fences_saved = 144;
      merged_intents = 145; async_acks = 146; flushes = 147 }
  in
  let doubled = Pmem.Stats.aggregate [ a; a ] in
  let d = Pmem.Stats.since ~now:doubled ~past:a in
  if d <> a then
    Alcotest.fail
      "aggregate/since do not round-trip: some field is not summed or \
       not subtracted";
  let printed = Format.asprintf "%a" Pmem.Stats.pp a in
  for v = 101 to 147 do
    let needle = string_of_int v in
    let found = ref false in
    let nl = String.length needle in
    for i = 0 to String.length printed - nl do
      if String.sub printed i nl = needle then found := true
    done;
    if not !found then
      Alcotest.failf "pp output does not mention counter value %d" v
  done

let test_stats_since () =
  let r = region () in
  let s = R.stats r in
  R.store r 0 1;
  let snap = Pmem.Stats.snapshot s in
  R.store r 8 2;
  R.store r 16 3;
  let d = Pmem.Stats.since ~now:s ~past:snap in
  Alcotest.(check int) "delta stores" 2 d.Pmem.Stats.stores

let test_delay_accounting () =
  let r = region ~fence:Pmem.Fence.stt () in
  let s = R.stats r in
  R.store r 0 1;
  R.pwb r 0;
  R.pfence r;
  R.psync r;
  Alcotest.(check int) "stt delays" (140 + 200 + 200) s.Pmem.Stats.delay_ns

(* ---- crash traps ---- *)

let test_trap_fires () =
  let r = region () in
  R.set_trap r 2;
  R.store r 0 1;  (* step 0 consumed: countdown 2 -> 1 *)
  R.store r 8 2;  (* countdown 1 -> 0 *)
  Alcotest.check_raises "third primitive crashes" R.Crash_point
    (fun () -> R.store r 16 3);
  (* the machine is dead until the crash is resolved *)
  Alcotest.check_raises "dead region keeps raising" R.Crash_point
    (fun () -> R.store r 16 3);
  Alcotest.check_raises "dead region refuses loads" R.Crash_point
    (fun () -> ignore (R.load r 0));
  R.crash r R.Drop_all;
  R.store r 16 3;
  Alcotest.(check int) "usable again after crash" 3 (R.load r 16)

let test_trap_zero_fires_immediately () =
  let r = region () in
  R.set_trap r 0;
  Alcotest.check_raises "first primitive crashes" R.Crash_point
    (fun () -> R.pfence r)

(* ---- property tests ---- *)

(* A random mix of stores/pwb/pfence; after a crash with any policy, every
   word is either its last fenced value or (policy permitting) its last
   stored value — never anything else. *)
let prop_crash_values_are_plausible =
  let open QCheck in
  let op = small_nat in
  Test.make ~count:200 ~name:"crash yields fenced-or-stored values"
    (pair (list (pair (int_bound 15) op)) (int_bound 2))
    (fun (ops, pol) ->
      let r = R.create ~size:(16 * 64) () in
      (* last value stored per slot, and last fenced value per slot *)
      let stored = Array.make 16 0 and fenced = Array.make 16 0 in
      let pwbed = Array.make 16 false in
      List.iteri
        (fun i (slot, v) ->
          match i mod 5 with
          | 4 ->
            R.pfence r;
            Array.iteri (fun j p -> if p then fenced.(j) <- stored.(j)) pwbed
            (* note: fenced value is the stored value at pwb time; since
               slots are one per line and we re-pwb on every store below,
               last-stored at fence time is accurate enough for slots that
               were pwb'ed after their last store *)
          | _ ->
            R.store r (slot * 64) v;
            stored.(slot) <- v;
            R.pwb r (slot * 64);
            pwbed.(slot) <- true)
        ops;
      let policy =
        match pol with
        | 0 -> R.Drop_all
        | 1 -> R.Keep_all
        | _ -> R.Random_subset 42
      in
      R.crash r policy;
      Array.for_all (fun i -> i >= 0)
        (Array.init 16 (fun slot ->
             let v = R.load r (slot * 64) in
             if v = fenced.(slot) || v = stored.(slot) then 0 else -1)))

let prop_keep_all_equals_volatile =
  let open QCheck in
  Test.make ~count:100 ~name:"Keep_all crash == volatile image"
    (list (pair (int_bound 63) int))
    (fun writes ->
      let r = R.create ~size:(64 * 64) () in
      List.iter (fun (slot, v) -> R.store r (slot * 64) v) writes;
      let before = List.map (fun (s, _) -> R.load r (s * 64)) writes in
      R.crash r R.Keep_all;
      let after = List.map (fun (s, _) -> R.load r (s * 64)) writes in
      before = after)

let prop_random_subset_deterministic =
  let open QCheck in
  Test.make ~count:50 ~name:"Random_subset is deterministic per seed"
    (pair (list (pair (int_bound 63) int)) small_nat)
    (fun (writes, seed) ->
      let run () =
        let r = R.create ~size:(64 * 64) () in
        List.iter (fun (slot, v) -> R.store r (slot * 64) v) writes;
        R.crash r (R.Random_subset seed);
        List.map (fun (s, _) -> R.load r (s * 64)) writes
      in
      run () = run ())

(* ---- torn words ---- *)

(* Under Torn_words, each 8-byte word of a dirty unfenced line keeps its
   old or new value independently — never a third value — and at least one
   seed must actually tear the line (a mix of old and new words), which is
   exactly what line-granular policies can never produce. *)
let test_torn_words_word_granularity () =
  let torn_seed_found = ref false in
  for seed = 1 to 100 do
    if not !torn_seed_found then begin
      let r = region () in
      for w = 0 to 7 do R.store r (w * 8) 1 done;
      R.pwb_range r 0 64;
      R.pfence r;
      for w = 0 to 7 do R.store r (w * 8) 2 done;
      (* dirty, never flushed *)
      R.crash r (R.Torn_words seed);
      let news = ref 0 in
      for w = 0 to 7 do
        let v = R.load r (w * 8) in
        if v <> 1 && v <> 2 then
          Alcotest.failf "seed %d word %d: %d is neither old nor new" seed w v;
        if v = 2 then incr news
      done;
      if !news > 0 && !news < 8 then torn_seed_found := true
    end
  done;
  Alcotest.(check bool) "some seed tears the line mid-way" true
    !torn_seed_found

let test_torn_words_respects_fences () =
  let r = region () in
  R.store r 0 77;
  R.pwb r 0;
  R.pfence r;
  R.crash r (R.Torn_words 9);
  Alcotest.(check int) "fenced word survives any torn crash" 77 (R.load r 0)

let prop_torn_words_deterministic =
  let open QCheck in
  Test.make ~count:50 ~name:"Torn_words is deterministic per seed"
    (pair (list (pair (int_bound 63) int)) small_nat)
    (fun (writes, seed) ->
      let run () =
        let r = R.create ~size:(64 * 64) () in
        List.iter (fun (slot, v) -> R.store r (slot * 8) v) writes;
        R.crash r (R.Torn_words seed);
        List.map (fun (s, _) -> R.load r (s * 8)) writes
      in
      run () = run ())

(* ---- CRC-32 known answers ----
   The sidecar and the snapshot format both stand on this being the real
   IEEE 802.3 CRC-32, so check it against the published vector, and
   against an independent bit-at-a-time implementation. *)

let crc32_ref s =
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch ->
      c := !c lxor Char.code ch;
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then (!c lsr 1) lxor 0xEDB88320 else !c lsr 1
      done)
    s;
  !c lxor 0xFFFFFFFF

let test_crc32_known_answers () =
  Alcotest.(check int)
    "IEEE check value" 0xCBF43926
    (Pmem.Crc32.string "123456789");
  Alcotest.(check int) "empty string" 0 (Pmem.Crc32.string "");
  let zero_line = String.make 64 '\000' in
  Alcotest.(check int)
    "all-zero line matches bitwise reference" (crc32_ref zero_line)
    (Pmem.Crc32.string zero_line);
  Alcotest.(check int)
    "check value matches bitwise reference" (crc32_ref "123456789")
    (Pmem.Crc32.string "123456789")

let prop_crc32_incremental =
  let open QCheck in
  Test.make ~count:200 ~name:"crc(a ++ b) = streamed crc"
    (pair string string)
    (fun (a, b) ->
      Pmem.Crc32.string (a ^ b)
      = Pmem.Crc32.string ~crc:(Pmem.Crc32.string a) b
      && Pmem.Crc32.string (a ^ b) = crc32_ref (a ^ b))

(* ---- media faults ---- *)

(* A fenced line whose persistent bytes rot afterwards: the next load
   raises the typed Media_error naming the line, and a full write-back
   heals the cell. *)
let test_corrupt_line_detected_and_healed () =
  let r = region () in
  R.store r 256 1234;
  R.pwb r 256;
  R.pfence r;
  Alcotest.(check bool) "checks off before injection" false
    (R.media_faults_armed r);
  R.corrupt_line r ~line:4;
  Alcotest.(check bool) "checks armed" true (R.media_faults_armed r);
  Alcotest.(check bool) "sidecar mismatch" false (R.media_ok r ~line:4);
  (match R.load r 256 with
   | exception R.Media_error { offset = 256; line = 4 } -> ()
   | exception e ->
     Alcotest.failf "expected Media_error{256;4}, got %s"
       (Printexc.to_string e)
   | v -> Alcotest.failf "rotten load returned %d" v);
  (* unrelated lines still load *)
  Alcotest.(check int) "other lines unaffected" 0 (R.load r 512);
  (* a full-line write-back heals the cell *)
  R.store_bytes r 256 (String.make 64 'h');
  R.pwb r 256;
  R.pfence r;
  Alcotest.(check bool) "healed" true (R.media_ok r ~line:4);
  Alcotest.(check string) "fresh content readable" (String.make 8 'h')
    (R.load_bytes r 256 8)

let test_corrupt_bits_single_flip () =
  let r = region () in
  R.store r 0 77;
  R.pwb r 0;
  R.pfence r;
  R.corrupt_bits r ~seed:3 ~off:0 ~len:8 ~flips:1;
  (match R.load r 0 with
   | exception R.Media_error { line = 0; _ } -> ()
   | v -> Alcotest.failf "single bit flip not detected (read %d)" v)

(* A line with an un-persisted store in flight is not auditable: its
   volatile content wins, and the pending write-back heals the rot. *)
let test_dirty_line_not_checked () =
  let r = region () in
  R.store r 128 5;
  R.pwb r 128;
  R.pfence r;
  R.store r 128 6; (* dirty again *)
  R.corrupt_line r ~line:2;
  Alcotest.(check int) "volatile content wins while dirty" 6 (R.load r 128);
  R.pwb r 128;
  R.pfence r;
  Alcotest.(check bool) "write-back healed the line" true
    (R.media_ok r ~line:2);
  Alcotest.(check int) "healed value" 6 (R.load r 128)

let test_inject_rot_deterministic_and_rate () =
  let rot seed rate =
    let r = region () in
    R.inject_rot r (R.Media_rot { seed; rate })
  in
  Alcotest.(check int) "rate 0 rots nothing" 0 (rot 7 0.0);
  Alcotest.(check int) "rate 1 rots every line" 64 (rot 7 1.0);
  let a = rot 42 0.25 and b = rot 42 0.25 in
  Alcotest.(check int) "deterministic per seed" a b;
  Alcotest.(check bool) "a quarter-ish of 64 lines" true (a > 4 && a < 28);
  (* ranged injection stays inside the range *)
  let r = region () in
  let n = R.inject_rot ~off:1024 ~len:1024 r (R.Media_rot { seed = 5; rate = 1.0 }) in
  Alcotest.(check int) "16 lines in range" 16 n;
  Alcotest.(check bool) "line outside range untouched" true
    (R.media_ok r ~line:0)

(* Rot + a torn write-back over the same line: the degraded cell either
   heals completely (every word of the line was rewritten) or keeps
   failing its CRC — a partial overwrite can never bless rotten bytes. *)
let test_torn_write_over_rot () =
  let survived = ref 0 in
  for seed = 1 to 40 do
    let r = region () in
    R.store_bytes r 0 (String.make 64 'a');
    R.pwb_range r 0 64;
    R.pfence r;
    R.corrupt_line r ~line:0;
    R.store_bytes r 0 (String.make 64 'b'); (* dirty over the rot *)
    R.crash r (R.Torn_words seed);
    if R.media_ok r ~line:0 then begin
      (* fully healed: all 8 words must have taken the new value *)
      Alcotest.(check string)
        (Printf.sprintf "seed %d: healed line is the new content" seed)
        (String.make 64 'b') (R.load_bytes r 0 64)
    end
    else begin
      incr survived;
      match R.load_bytes r 0 64 with
      | exception R.Media_error { line = 0; _ } -> ()
      | s -> Alcotest.failf "seed %d: rotten mixture served: %S" seed s
    end
  done;
  Alcotest.(check bool) "some torn crash leaves the fault detected" true
    (!survived > 0)

(* ---- file persistence ---- *)

let test_save_load_file () =
  let path = Filename.temp_file "romulus" ".pmem" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let r = region () in
  R.store r 64 4242;
  R.pwb r 64;
  R.pfence r;
  R.store r 128 7; (* never fenced: must not travel *)
  R.save_to_file r path;
  let r2 = R.load_from_file path in
  Alcotest.(check int) "size preserved" (R.size r) (R.size r2);
  Alcotest.(check int) "durable word travels" 4242 (R.load r2 64);
  Alcotest.(check int) "unfenced word does not" 0 (R.load r2 128)

let expect_corrupt what path =
  match R.load_from_file path with
  | exception R.Snapshot_corrupt _ -> ()
  | exception e ->
    Alcotest.failf "%s: expected Snapshot_corrupt, got %s" what
      (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: corrupt snapshot accepted" what

let test_load_file_bad_magic () =
  let path = Filename.temp_file "romulus" ".pmem" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out_bin path in
  output_string oc "not a region";
  close_out oc;
  expect_corrupt "bad magic" path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let make_snapshot path =
  let r = region () in
  R.store r 64 4242;
  R.pwb r 64;
  R.pfence r;
  R.store_bytes r 512 "snapshot payload";
  R.pwb_range r 512 16;
  R.pfence r;
  R.save_to_file r path

(* Flip one byte at a time — every header byte, payload samples, and the
   trailing sidecar — and require a typed rejection every single time.
   Header fields fail their own validation; payload flips are caught by
   the payload CRC, sidecar flips by the sidecar-section CRC. *)
let test_snapshot_bitflips_rejected () =
  let path = Filename.temp_file "romulus" ".pmem" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  make_snapshot path;
  let orig = read_file path in
  let len = String.length orig in
  let header = 35 in
  (* v3: header + payload + 4-byte sidecar entry per line *)
  Alcotest.(check int) "snapshot length" (header + 4096 + (4 * 64)) len;
  let targets =
    List.init header Fun.id          (* every header byte *)
    @ [ header; header + 64; header + 67; header + 512;   (* payload *)
        header + 4096; header + 4096 + 17; len - 1 ]      (* sidecar *)
  in
  List.iter
    (fun i ->
      let b = Bytes.of_string orig in
      Bytes.set b i (Char.chr (Char.code orig.[i] lxor 0xFF));
      write_file path (Bytes.to_string b);
      expect_corrupt (Printf.sprintf "byte %d flipped" i) path)
    targets;
  (* and the untouched file still loads *)
  write_file path orig;
  let r = R.load_from_file path in
  Alcotest.(check int) "intact snapshot loads" 4242 (R.load r 64)

(* Truncate at every interesting boundary: inside the magic, at each
   header-field edge, mid-payload, at the sidecar edge, and one byte
   short of complete. *)
let test_snapshot_truncation_rejected () =
  let path = Filename.temp_file "romulus" ".pmem" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  make_snapshot path;
  let orig = read_file path in
  let len = String.length orig in
  List.iter
    (fun n ->
      write_file path (String.sub orig 0 n);
      expect_corrupt (Printf.sprintf "truncated to %d bytes" n) path)
    [ 0; 5; 15; 19; 23; 27; 31; 35; 35 + 2048; 35 + 4096; len - 1 ]

(* Round trip with a non-default line size: the geometry must travel with
   the snapshot (the sidecar layout depends on it). *)
let test_snapshot_nondefault_line_size () =
  let path = Filename.temp_file "romulus" ".pmem" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let r = R.create ~line_size:128 ~size:8192 () in
  R.store r 1024 99;
  R.store_bytes r 2048 "wide lines";
  R.pwb r 1024;
  R.pwb_range r 2048 10;
  R.pfence r;
  R.save_to_file r path;
  let r2 = R.load_from_file path in
  Alcotest.(check int) "line size travels" 128 (R.line_size r2);
  Alcotest.(check int) "size travels" 8192 (R.size r2);
  Alcotest.(check int) "word travels" 99 (R.load r2 1024);
  Alcotest.(check string) "blob travels" "wide lines" (R.load_bytes r2 2048 10);
  Alcotest.(check string) "images byte-identical" (R.persistent_snapshot r)
    (R.persistent_snapshot r2)

(* Geometry lies in the header are typed rejections, not crashes or
   silent misloads: a non-power-of-two line size, and a region size that
   is not a multiple of the line size. *)
let test_snapshot_geometry_mismatch_rejected () =
  let path = Filename.temp_file "romulus" ".pmem" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  make_snapshot path;
  let orig = read_file path in
  let patch_be32 off v =
    let b = Bytes.of_string orig in
    Bytes.set_int32_be b off (Int32.of_int v);
    write_file path (Bytes.to_string b)
  in
  patch_be32 19 96; (* line_size: not a power of two *)
  expect_corrupt "line size 96" path;
  patch_be32 19 4; (* line_size: below the 8-byte floor *)
  expect_corrupt "line size 4" path;
  patch_be32 23 4095; (* length: not a multiple of the line size *)
  expect_corrupt "size 4095" path;
  patch_be32 19 128; (* valid line size that disagrees with the payload *)
  expect_corrupt "line size 128 vs 64-line payload" path

(* A detected-but-unrepaired media fault travels with the snapshot: the
   reloaded region arms its checks and keeps refusing the rotten line,
   rather than blessing it. *)
let test_snapshot_carries_media_fault () =
  let path = Filename.temp_file "romulus" ".pmem" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let r = region () in
  R.store r 256 31337;
  R.pwb r 256;
  R.pfence r;
  R.corrupt_line r ~line:4;
  R.save_to_file r path;
  let r2 = R.load_from_file path in
  Alcotest.(check bool) "checks armed on load" true (R.media_faults_armed r2);
  Alcotest.(check bool) "fault still detected" false (R.media_ok r2 ~line:4);
  match R.load r2 256 with
  | exception R.Media_error { line = 4; _ } -> ()
  | v -> Alcotest.failf "rotten line served after reload: %d" v

let suite =
  let tc = Alcotest.test_case in
  [ tc "store/load round-trip" `Quick test_store_load;
    tc "blob round-trip" `Quick test_store_bytes;
    tc "bounds checking" `Quick test_bounds;
    tc "size rounding" `Quick test_size_rounding;
    tc "unfenced store not durable" `Quick test_unfenced_store_not_durable;
    tc "pwb without fence not durable" `Quick test_pwb_without_fence_not_durable;
    tc "fenced store durable" `Quick test_fenced_store_durable;
    tc "fence persists only pwb'ed lines" `Quick test_fence_only_persists_pwbed_lines;
    tc "Keep_all persists evictions" `Quick test_keep_all_policy;
    tc "crash restores volatile from persistent" `Quick test_crash_restores_volatile_from_persistent;
    tc "ordered pwb (clflush)" `Quick test_ordered_pwb_profile;
    tc "copy + pwb_range durable" `Quick test_copy_then_pwb_range;
    tc "stats counters" `Quick test_stats_counts;
    tc "stats since" `Quick test_stats_since;
    tc "stats aggregate/pp cover every field" `Quick
      test_stats_cover_every_field;
    tc "delay accounting" `Quick test_delay_accounting;
    tc "crash trap fires" `Quick test_trap_fires;
    tc "crash trap at zero" `Quick test_trap_zero_fires_immediately;
    tc "torn words are word-granular" `Quick test_torn_words_word_granularity;
    tc "torn words respect fences" `Quick test_torn_words_respects_fences;
    tc "save/load file" `Quick test_save_load_file;
    tc "load file bad magic" `Quick test_load_file_bad_magic;
    tc "snapshot bit-flips rejected" `Quick test_snapshot_bitflips_rejected;
    tc "snapshot truncation rejected" `Quick test_snapshot_truncation_rejected;
    tc "crc32 known answers" `Quick test_crc32_known_answers;
    tc "corrupt_line detected and healed" `Quick
      test_corrupt_line_detected_and_healed;
    tc "corrupt_bits single flip" `Quick test_corrupt_bits_single_flip;
    tc "dirty line not media-checked" `Quick test_dirty_line_not_checked;
    tc "inject_rot deterministic and rated" `Quick
      test_inject_rot_deterministic_and_rate;
    tc "torn write over rot stays detected" `Quick test_torn_write_over_rot;
    tc "snapshot with non-default line size" `Quick
      test_snapshot_nondefault_line_size;
    tc "snapshot geometry mismatch rejected" `Quick
      test_snapshot_geometry_mismatch_rejected;
    tc "snapshot carries media fault" `Quick test_snapshot_carries_media_fault ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_crash_values_are_plausible;
        prop_keep_all_equals_volatile;
        prop_random_subset_deterministic;
        prop_torn_words_deterministic;
        prop_crc32_incremental ]

let () = Alcotest.run "pmem" [ ("region", suite) ]
