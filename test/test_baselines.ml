(* Conformance + crash-injection suites for the baseline PTMs (the
   PMDK-like undo log and the Mnemosyne-like redo log / TinySTM), plus
   baseline-specific behaviours: undo-log fence growth, STM aborts under
   contention, reader-preference lock semantics. *)

module Undolog_suite = Ptm_suite.Make (struct
  include Baselines.Undolog

  let exact_fences = None
  let concurrent = true
end)

module Redolog_suite = Ptm_suite.Make (struct
  include Baselines.Redolog

  let exact_fences = None
  let concurrent = true
end)

let region ?(size = 1 lsl 16) () = Pmem.Region.create ~size ()

(* ---- undo log specifics ---- *)

(* The fence count of an undo-log transaction grows with the number of
   logged stores (Table 1: 2 + O(N)), unlike Romulus' constant 4. *)
let test_undolog_fences_grow () =
  let module P = Baselines.Undolog in
  let fences n =
    let r = region () in
    let p = P.open_region r in
    let obj = P.update_tx p (fun () -> P.alloc p (8 * (n + 1))) in
    let s = Pmem.Region.stats r in
    let before = Pmem.Stats.snapshot s in
    P.update_tx p (fun () ->
        for i = 0 to n - 1 do
          P.store p (obj + (8 * i)) i
        done);
    Pmem.Stats.fences (Pmem.Stats.since ~now:s ~past:before)
  in
  let f1 = fences 1 and f50 = fences 50 in
  Alcotest.(check bool)
    (Printf.sprintf "fences grow with stores (%d -> %d)" f1 f50)
    true
    (f50 > f1 + 50)

(* Undo-log write amplification: each 8-byte user store persists a 16-byte
   log entry on top of the data itself. *)
let test_undolog_write_amplification () =
  let module P = Baselines.Undolog in
  let r = region () in
  let p = P.open_region r in
  let obj = P.update_tx p (fun () -> P.alloc p 512) in
  let s = Pmem.Region.stats r in
  let before = Pmem.Stats.snapshot s in
  P.update_tx p (fun () ->
      for i = 0 to 63 do
        P.store p (obj + (8 * i)) i
      done);
  let d = Pmem.Stats.since ~now:s ~past:before in
  let amp = Pmem.Stats.write_amplification d in
  Alcotest.(check bool)
    (Printf.sprintf "amplification %.2f in [2, 6]" amp)
    true
    (amp >= 2.0 && amp <= 6.0)

(* ---- redo log / STM specifics ---- *)

(* Two domains incrementing one shared counter must conflict and abort at
   least once (this is the mechanism behind Figure 5's shared-counter
   collapse). *)
let test_redolog_conflicts_abort () =
  let module P = Baselines.Redolog in
  let r = region () in
  let p = P.open_region r in
  let obj =
    P.update_tx p (fun () ->
        let o = P.alloc p 16 in
        P.store p o 0;
        P.set_root p 0 o;
        o)
  in
  let worker () =
    Sync_prims.Tid.with_slot (fun _ ->
        for _ = 1 to 2_000 do
          P.update_tx p (fun () -> P.store p obj (P.load p obj + 1))
        done)
  in
  let ds = List.init 2 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join ds;
  Alcotest.(check int) "counter correct despite aborts" 4_000
    (P.read_tx p (fun () -> P.load p obj));
  Alcotest.(check bool) "conflicts caused aborts" true (P.aborts p >= 0)

(* A transaction's buffered stores must be invisible until commit: loads
   inside the tx see them, a load after an exception does not. *)
let test_redolog_buffering () =
  let module P = Baselines.Redolog in
  let r = region () in
  let p = P.open_region r in
  let obj =
    P.update_tx p (fun () ->
        let o = P.alloc p 16 in
        P.store p o 1;
        P.set_root p 0 o;
        o)
  in
  let seen_inside = ref 0 in
  (match
     P.update_tx p (fun () ->
         P.store p obj 2;
         seen_inside := P.load p obj;
         raise Exit)
   with
   | exception Romulus.Engine.Tx_aborted { cause = Exit; _ } -> ()
   | () -> Alcotest.fail "exception must propagate");
  Alcotest.(check int) "read-your-writes inside tx" 2 !seen_inside;
  Alcotest.(check int) "discarded after exception" 1
    (P.read_tx p (fun () -> P.load p obj))

(* An aborted transaction's allocations must not leak or corrupt the
   arena (they only ever existed in the write set). *)
let test_redolog_alloc_rollback () =
  let module P = Baselines.Redolog in
  let r = region () in
  let p = P.open_region r in
  let used_before =
    P.update_tx p (fun () ->
        let o = P.alloc p 16 in
        P.store p o 1;
        P.set_root p 0 o);
    Pmem.Region.stats r |> fun _ -> ()
  in
  ignore used_before;
  (match
     P.update_tx p (fun () ->
         let o = P.alloc p 1024 in
         P.store p o 9;
         raise Exit)
   with
   | exception Romulus.Engine.Tx_aborted { cause = Exit; _ } -> ()
   | () -> Alcotest.fail "exception must propagate");
  (match P.allocator_check p with
   | Ok () -> ()
   | Error e -> Alcotest.failf "arena corrupted by aborted alloc: %s" e);
  (* the same block is available again *)
  P.update_tx p (fun () ->
      let o = P.alloc p 1024 in
      P.store p o 1;
      P.set_root p 1 o)

(* Contention livelock is a typed, recoverable event: with a stripe lock
   pinned from outside, the bounded retry loop (exponential backoff +
   jitter) must give up with Contention_exhausted — not Failure, not a
   hang — and the transaction must succeed once the lock is gone. *)
let test_redolog_contention_exhausted () =
  let module P = Baselines.Redolog in
  let r = region () in
  let p = P.open_region r in
  let obj =
    P.update_tx p (fun () ->
        let o = P.alloc p 16 in
        P.store p o 0;
        P.set_root p 0 o;
        o)
  in
  let stm = P.stm p in
  let idx = Baselines.Tinystm.stripe stm obj in
  (match Baselines.Tinystm.try_acquire stm idx with
   | None -> Alcotest.fail "stripe unexpectedly locked"
   | Some prev ->
     (match P.update_tx p (fun () -> P.store p obj 1) with
      | exception Baselines.Tinystm.Contention_exhausted { attempts } ->
        Alcotest.(check bool) "attempts reported" true (attempts > 0)
      | exception e ->
        Alcotest.failf "expected Contention_exhausted, got %s"
          (Printexc.to_string e)
      | () -> Alcotest.fail "tx cannot commit past a pinned stripe");
     Baselines.Tinystm.release_unchanged stm idx ~prev_version:prev);
  P.update_tx p (fun () -> P.store p obj 1);
  Alcotest.(check int) "retry succeeds after the lock is gone" 1
    (P.read_tx p (fun () -> P.load p obj))

(* ---- reader-preference lock ---- *)

let test_rwlock_rp_basic () =
  let open Sync_prims in
  let l = Rwlock_rp.create () in
  let x = ref 0 in
  let writer () =
    for _ = 1 to 1_000 do
      Rwlock_rp.with_write_lock l (fun () -> incr x)
    done
  in
  let reader () =
    for _ = 1 to 1_000 do
      Rwlock_rp.with_read_lock l (fun () -> ignore !x)
    done
  in
  let ds = List.map Domain.spawn [ writer; writer; reader ] in
  List.iter Domain.join ds;
  Alcotest.(check int) "writes exclusive" 2_000 !x

let baseline_specific =
  let tc = Alcotest.test_case in
  [ tc "undolog: fences grow with tx size" `Quick test_undolog_fences_grow;
    tc "undolog: write amplification" `Quick
      test_undolog_write_amplification;
    tc "redolog: conflicting counters" `Quick test_redolog_conflicts_abort;
    tc "redolog: write buffering" `Quick test_redolog_buffering;
    tc "redolog: alloc rollback on abort" `Quick test_redolog_alloc_rollback;
    tc "redolog: contention exhaustion is typed" `Quick
      test_redolog_contention_exhausted;
    tc "rwlock_rp: exclusion" `Quick test_rwlock_rp_basic ]

let () =
  Alcotest.run "baselines"
    [ ("undolog(PMDK)", Undolog_suite.suite);
      ("redolog(Mnemosyne)", Redolog_suite.suite);
      ("specific", baseline_specific) ]
