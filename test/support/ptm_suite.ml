(* A reusable conformance suite for every PTM in the repository: semantic
   unit tests, durable-linearizability checks under real domains, and
   systematic crash injection at every instruction boundary under
   adversarial cache-line policies. *)

module R = Pmem.Region

module type VARIANT = sig
  include Romulus.Ptm_intf.S

  (** Re-run crash recovery after a simulated power failure. *)
  val recover : t -> unit

  (** Structural check of the persistent allocator. *)
  val allocator_check : t -> (unit, string) result

  (** Audit the used persistent spans against the media-fault sidecar,
      repairing from the twin where one exists. *)
  val scrub : t -> Romulus.Engine.scrub_report

  (** Persistent spans the scrubber audits: two for twin-copy designs,
      one for single-image baselines. *)
  val media_spans : t -> (int * int) list

  (** Exact persistence fences per update transaction, when the algorithm
      guarantees a constant (Romulus: 4). *)
  val exact_fences : int option

  (** Whether the PTM supports concurrent use (the single-threaded API of
      §5.1 does not; its domain tests are skipped). *)
  val concurrent : bool
end

let region ?(size = 1 lsl 16) () = R.create ~size ()

module Make (P : VARIANT) = struct
  let open_fresh ?size () =
    let r = region ?size () in
    (r, P.open_region r)

  (* ---- basic semantics ---- *)

  let test_root_round_trip () =
    let _, p = open_fresh () in
    P.update_tx p (fun () ->
        let obj = P.alloc p 16 in
        P.store p obj 11;
        P.store p (obj + 8) 22;
        P.set_root p 0 obj);
    let a, b =
      P.read_tx p (fun () ->
          let obj = P.get_root p 0 in
          (P.load p obj, P.load p (obj + 8)))
    in
    Alcotest.(check (pair int int)) "values back" (11, 22) (a, b)

  let test_blob_round_trip () =
    let _, p = open_fresh () in
    let payload = String.init 100 (fun i -> Char.chr (65 + (i mod 26))) in
    P.update_tx p (fun () ->
        let obj = P.alloc p 128 in
        P.store_bytes p obj payload;
        P.set_root p 1 obj);
    let got = P.read_tx p (fun () -> P.load_bytes p (P.get_root p 1) 100) in
    Alcotest.(check string) "blob back" payload got

  let test_tx_result_value () =
    let _, p = open_fresh () in
    Alcotest.(check int) "update_tx returns value" 42
      (P.update_tx p (fun () -> 42));
    Alcotest.(check string) "read_tx returns value" "ok"
      (P.read_tx p (fun () -> "ok"))

  let test_store_outside_tx_raises () =
    let _, p = open_fresh () in
    let obj = P.update_tx p (fun () -> P.alloc p 16) in
    match P.store p obj 1 with
    | exception Romulus.Engine.Store_outside_transaction -> ()
    | () -> Alcotest.fail "store outside tx must raise"

  let test_store_in_read_tx_raises () =
    let _, p = open_fresh () in
    let obj = P.update_tx p (fun () -> P.alloc p 16) in
    match P.read_tx p (fun () -> P.store p obj 5) with
    | exception Romulus.Engine.Store_outside_transaction -> ()
    | () -> Alcotest.fail "store in read_tx must raise"

  let test_nested_txs_flatten () =
    let _, p = open_fresh () in
    let v =
      P.update_tx p (fun () ->
          let obj = P.alloc p 16 in
          P.store p obj 7;
          P.set_root p 0 obj;
          P.update_tx p (fun () -> P.store p (obj + 8) 8);
          P.read_tx p (fun () -> P.load p obj + P.load p (obj + 8)))
    in
    Alcotest.(check int) "nested flattening" 15 v;
    let v2 =
      P.read_tx p (fun () -> P.read_tx p (fun () -> P.load p (P.get_root p 0)))
    in
    Alcotest.(check int) "nested read" 7 v2

  (* Every PTM in the repository aborts a transaction whose closure
     raises: partial effects are discarded and the exception re-raised
     wrapped in Engine.Tx_aborted (carrying the original cause). *)
  let test_exception_semantics () =
    let _, p = open_fresh () in
    let obj =
      P.update_tx p (fun () ->
          let o = P.alloc p 16 in
          P.store p o 1;
          P.set_root p 0 o;
          o)
    in
    (match P.update_tx p (fun () -> P.store p obj 77; raise Exit) with
     | exception Romulus.Engine.Tx_aborted { cause = Exit; _ } -> ()
     | exception e ->
       Alcotest.failf "expected Tx_aborted{Exit}, got %s"
         (Printexc.to_string e)
     | () -> Alcotest.fail "exception must propagate");
    Alcotest.(check int) "rolled back on exception" 1
      (P.read_tx p (fun () -> P.load p obj));
    (* the PTM must remain usable *)
    P.update_tx p (fun () -> P.store p obj 5);
    Alcotest.(check int) "usable after exception" 5
      (P.read_tx p (fun () -> P.load p obj))

  (* A raising read-only transaction must depart its read indicator /
     Left-Right ingress on the way out: if the arrival leaked, the next
     update transaction would wait forever for the phantom reader.  The
     raw exception propagates unwrapped (nothing to abort). *)
  let test_read_tx_raise_departs () =
    let _, p = open_fresh () in
    let obj =
      P.update_tx p (fun () ->
          let o = P.alloc p 16 in
          P.store p o 1;
          P.set_root p 0 o;
          o)
    in
    (match P.read_tx p (fun () -> ignore (P.load p obj); raise Exit) with
     | exception Exit -> ()
     | exception e ->
       Alcotest.failf "read_tx must re-raise raw, got %s"
         (Printexc.to_string e)
     | _ -> Alcotest.fail "exception must propagate");
    (* a store inside a read-only transaction is a typed error and must
       depart the ingress just the same *)
    (match P.read_tx p (fun () -> P.store p obj 9) with
     | exception Romulus.Engine.Store_outside_transaction -> ()
     | () -> Alcotest.fail "store in read_tx must raise");
    (* would-deadlock regression: writers drain the read indicator, so a
       leaked arrival would hang this update transaction *)
    P.update_tx p (fun () -> P.store p obj 2);
    Alcotest.(check int) "update after raising read_tx" 2
      (P.read_tx p (fun () -> P.load p obj))

  (* An invalid free (double free, interior pointer) inside a transaction
     is detected before any metadata is touched, surfaces as a typed
     Tx_aborted{Invalid_free}, and the whole transaction — including a
     prior valid free — rolls back. *)
  let test_invalid_free_typed () =
    let _, p = open_fresh () in
    let obj =
      P.update_tx p (fun () ->
          let o = P.alloc p 32 in
          P.store p o 5;
          P.set_root p 0 o;
          o)
    in
    (match P.update_tx p (fun () -> P.free p obj; P.free p obj) with
     | exception
         Romulus.Engine.Tx_aborted { cause = Palloc.Invalid_free _; _ } -> ()
     | exception e ->
       Alcotest.failf "expected Tx_aborted{Invalid_free}, got %s"
         (Printexc.to_string e)
     | () -> Alcotest.fail "double free must raise");
    (match P.allocator_check p with
     | Ok () -> ()
     | Error e -> Alcotest.failf "arena damaged by rejected free: %s" e);
    (* the first (valid) free aborted with the transaction: still live *)
    Alcotest.(check int) "block survived the aborted double free" 5
      (P.read_tx p (fun () -> P.load p obj));
    (match
       P.update_tx p (fun () -> P.free p (P.get_root p 0 + 4))
     with
     | exception
         Romulus.Engine.Tx_aborted { cause = Palloc.Invalid_free _; _ } -> ()
     | () -> Alcotest.fail "interior-pointer free must raise");
    (* freeing it once, for real, still works *)
    P.update_tx p (fun () -> P.free p obj; P.set_root p 0 0);
    match P.allocator_check p with
    | Ok () -> ()
    | Error e -> Alcotest.failf "arena damaged by final free: %s" e

  (* ---- resource exhaustion: typed errors only ---- *)

  let test_out_of_memory_typed () =
    let r, p = open_fresh () in
    let obj =
      P.update_tx p (fun () ->
          let o = P.alloc p 16 in
          P.store p o 3;
          P.set_root p 0 o;
          o)
    in
    (match P.update_tx p (fun () -> ignore (P.alloc p (1 lsl 22))) with
     | exception
         Romulus.Engine.Tx_aborted { cause = Palloc.Out_of_memory _; _ } -> ()
     | exception e ->
       Alcotest.failf "expected Tx_aborted{Out_of_memory}, got %s"
         (Printexc.to_string e)
     | () -> Alcotest.fail "oversized alloc must raise");
    (match P.allocator_check p with
     | Ok () -> ()
     | Error e -> Alcotest.failf "arena damaged by failed alloc: %s" e);
    (* exhaustion is recoverable: the next transaction commits *)
    P.update_tx p (fun () -> P.store p obj 4);
    Alcotest.(check int) "usable after exhaustion" 4
      (P.read_tx p (fun () -> P.load p obj));
    (* and the clean abort left nothing for recovery to redo *)
    let s = R.persistent_snapshot r in
    P.recover p;
    Alcotest.(check bool) "recovery after exhaustion is a no-op" true
      (String.equal s (R.persistent_snapshot r))

  let test_root_out_of_bounds_typed () =
    let _, p = open_fresh () in
    (match P.update_tx p (fun () -> P.set_root p 1_000_000 1) with
     | exception
         Romulus.Engine.Tx_aborted
           { cause = Romulus.Engine.Root_out_of_bounds _; _ } -> ()
     | exception e ->
       Alcotest.failf "expected Tx_aborted{Root_out_of_bounds}, got %s"
         (Printexc.to_string e)
     | () -> Alcotest.fail "out-of-bounds root must raise");
    (* outside a transaction the typed error surfaces raw *)
    (match P.read_tx p (fun () -> P.get_root p (-1)) with
     | exception Romulus.Engine.Root_out_of_bounds _ -> ()
     | _ -> Alcotest.fail "negative root index must raise");
    (* still usable *)
    P.update_tx p (fun () -> P.set_root p 0 7);
    Alcotest.(check int) "usable after bad root index" 7
      (P.read_tx p (fun () -> P.get_root p 0))

  (* ---- durability across restart ---- *)

  let test_survives_clean_crash () =
    let r, p = open_fresh () in
    P.update_tx p (fun () ->
        let obj = P.alloc p 16 in
        P.store p obj 123;
        P.set_root p 0 obj);
    R.crash r R.Drop_all;
    P.recover p;
    Alcotest.(check int) "value survives restart" 123
      (P.read_tx p (fun () -> P.load p (P.get_root p 0)))

  let test_reopen_region () =
    let r, p = open_fresh () in
    P.update_tx p (fun () ->
        let obj = P.alloc p 16 in
        P.store p obj 5;
        P.set_root p 0 obj);
    R.crash r R.Drop_all;
    let p2 = P.open_region r in
    Alcotest.(check int) "reopen preserves data" 5
      (P.read_tx p2 (fun () -> P.load p2 (P.get_root p2 0)))

  (* Sweep the trap over every instruction boundary of a 2-store
     transaction (schedule-independent: the sweep adapts to however many
     primitives the PTM's commit path issues).  Under Drop_all, recovery
     must surface either exactly the pre-state or exactly the post-state,
     and the early crash points must actually roll back. *)
  let test_uncommitted_tx_rolls_back () =
    let rollbacks = ref 0 in
    let completed = ref false in
    let k = ref 0 in
    while not !completed do
      let r, p = open_fresh () in
      let obj =
        P.update_tx p (fun () ->
            let obj = P.alloc p 16 in
            P.store p obj 1;
            P.set_root p 0 obj;
            obj)
      in
      R.set_trap r !k;
      (match
         P.update_tx p (fun () ->
             P.store p obj 999;
             P.store p (obj + 8) 888)
       with
       | exception R.Crash_point -> ()
       | () ->
         R.clear_trap r;
         completed := true);
      (* Drop_all: nothing un-fenced persists, so recovery must reach a
         state in which the first transaction's effect is intact or the
         second committed whole *)
      R.crash r R.Drop_all;
      P.recover p;
      let a, b =
        P.read_tx p (fun () ->
            let o = P.get_root p 0 in
            (P.load p o, P.load p (o + 8)))
      in
      (match (a, b) with
       | 1, _ -> incr rollbacks
       | 999, 888 -> ()
       | _ -> Alcotest.failf "torn state at crash point %d: a=%d b=%d" !k a b);
      incr k;
      if !k > 20_000 then Alcotest.fail "rollback sweep did not terminate"
    done;
    Alcotest.(check bool) "some crash points rolled back" true (!rollbacks > 0)

  (* ---- fence accounting ---- *)

  let fences_of_tx nstores =
    let r, p = open_fresh () in
    let obj = P.update_tx p (fun () -> P.alloc p (8 * (nstores + 1))) in
    let s = R.stats r in
    let before = Pmem.Stats.snapshot s in
    P.update_tx p (fun () ->
        for i = 0 to nstores - 1 do
          P.store p (obj + (8 * i)) i
        done);
    Pmem.Stats.fences (Pmem.Stats.since ~now:s ~past:before)

  let test_fence_bound () =
    match P.exact_fences with
    | Some n ->
      Alcotest.(check int) "fences, 1 store" n (fences_of_tx 1);
      Alcotest.(check int) "fences, 100 stores" n (fences_of_tx 100);
      Alcotest.(check int) "fences, 400 stores" n (fences_of_tx 400)
    | None ->
      (* log-based PTMs: fences may grow with the transaction *)
      Alcotest.(check bool) "fences positive" true (fences_of_tx 10 > 0)

  let test_read_tx_no_fences () =
    let r, p = open_fresh () in
    let obj =
      P.update_tx p (fun () ->
          let o = P.alloc p 16 in
          P.store p o 1;
          P.set_root p 0 o;
          o)
    in
    let s = R.stats r in
    let before = Pmem.Stats.snapshot s in
    ignore (P.read_tx p (fun () -> P.load p obj));
    let d = Pmem.Stats.since ~now:s ~past:before in
    Alcotest.(check int) "no fences in read tx" 0 (Pmem.Stats.fences d);
    Alcotest.(check int) "no pwbs in read tx" 0 d.Pmem.Stats.pwbs

  (* ---- systematic crash injection ---- *)

  type observed = Pre | Post | Torn of string

  let setup_crash_region () =
    let r = region () in
    let p = P.open_region r in
    let n1, n2 =
      P.update_tx p (fun () ->
          let n1 = P.alloc p 16 in
          P.store p n1 1;
          P.store p (n1 + 8) 2;
          P.set_root p 0 n1;
          let n2 = P.alloc p 16 in
          P.store p n2 7;
          P.set_root p 2 n2;
          (n1, n2))
    in
    (r, p, n1, n2)

  let mutate p n1 n2 =
    P.update_tx p (fun () ->
        P.store p n1 10;
        P.store p (n1 + 8) 20;
        let n3 = P.alloc p 24 in
        P.store p n3 99;
        P.set_root p 1 n3;
        P.free p n2;
        P.set_root p 2 0)

  let observe p n1 n2 =
    P.read_tx p (fun () ->
        let a = P.load p n1 in
        let b = P.load p (n1 + 8) in
        let r1 = P.get_root p 1 in
        let r2 = P.get_root p 2 in
        match (a, b, r1, r2) with
        | 1, 2, 0, r2 when r2 = n2 && P.load p n2 = 7 -> Pre
        | 10, 20, n3, 0 when n3 <> 0 && P.load p n3 = 99 -> Post
        | _ ->
          Torn (Printf.sprintf "a=%d b=%d root1=%d root2=%d" a b r1 r2))

  let policy_name = function
    | R.Drop_all -> "drop_all"
    | R.Keep_all -> "keep_all"
    | R.Random_subset seed -> Printf.sprintf "random(%d)" seed
    | R.Torn_words seed -> Printf.sprintf "torn(%d)" seed

  let crash_at_every_point policy =
    let completed = ref false in
    let k = ref 0 in
    while not !completed do
      let r, p, n1, n2 = setup_crash_region () in
      R.set_trap r !k;
      (match mutate p n1 n2 with
       | () ->
         R.clear_trap r;
         completed := true
       | exception R.Crash_point -> ());
      R.crash r policy;
      P.recover p;
      (match observe p n1 n2 with
       | Pre | Post -> ()
       | Torn s ->
         Alcotest.failf "torn state at crash point %d (%s): %s" !k
           (policy_name policy) s);
      if !completed then begin
        match observe p n1 n2 with
        | Post -> ()
        | Pre | Torn _ -> Alcotest.fail "committed tx lost after crash"
      end;
      (match P.allocator_check p with
       | Ok () -> ()
       | Error e -> Alcotest.failf "allocator broken at point %d: %s" !k e);
      P.update_tx p (fun () ->
          let x = P.alloc p 16 in
          P.store p x 5;
          P.set_root p 3 x);
      Alcotest.(check int) "post-recovery tx works" 5
        (P.read_tx p (fun () -> P.load p (P.get_root p 3)));
      incr k;
      if !k > 20_000 then Alcotest.fail "crash loop did not terminate"
    done;
    !k

  let test_crash_injection_drop_all () =
    let points = crash_at_every_point R.Drop_all in
    Alcotest.(check bool) "covered many crash points" true (points > 10)

  let test_crash_injection_keep_all () =
    ignore (crash_at_every_point R.Keep_all)

  let test_crash_injection_random () =
    for seed = 1 to 4 do
      ignore (crash_at_every_point (R.Random_subset seed))
    done

  (* The torn-word adversary: individual 8-byte words of unfenced lines
     persist independently, the strongest crash model real ADR hardware
     admits.  The Pre/Post dichotomy must still hold at every boundary. *)
  let test_crash_injection_torn_words () =
    for seed = 1 to 4 do
      ignore (crash_at_every_point (R.Torn_words (seed * 131)))
    done

  let test_crash_during_recovery () =
    let r, p, n1, n2 = setup_crash_region () in
    R.set_trap r 12;
    (match mutate p n1 n2 with
     | exception R.Crash_point -> ()
     | () -> Alcotest.fail "trap did not fire");
    R.crash r (R.Random_subset 9);
    let k = ref 0 in
    let finished = ref false in
    while not !finished do
      R.set_trap r !k;
      (match P.recover p with
       | () ->
         R.clear_trap r;
         finished := true
       | exception R.Crash_point -> R.crash r (R.Random_subset (!k + 100)));
      incr k;
      if !k > 20_000 then Alcotest.fail "recovery loop did not terminate"
    done;
    match observe p n1 n2 with
    | Pre -> ()
    | Post -> Alcotest.fail "uncommitted tx became visible"
    | Torn s -> Alcotest.failf "torn after interrupted recoveries: %s" s

  (* Recovery is idempotent: after a crash anywhere in a transaction,
     running recovery once, twice, or once more after a no-op reopen must
     leave the very same persistent bytes — a second recovery pass (or a
     recovery interrupted and restarted by the crashtest campaigns) can
     never un-recover.  Swept over crash points and policies. *)
  let test_recover_idempotent () =
    let policies =
      [ R.Drop_all; R.Keep_all; R.Random_subset 5; R.Torn_words 17 ]
    in
    List.iter
      (fun policy ->
        let k = ref 0 in
        let completed = ref false in
        while not !completed do
          let r, p, n1, n2 = setup_crash_region () in
          R.set_trap r !k;
          (match mutate p n1 n2 with
           | () ->
             R.clear_trap r;
             completed := true
           | exception R.Crash_point -> ());
          R.crash r policy;
          P.recover p;
          let once = R.persistent_snapshot r in
          P.recover p;
          let twice = R.persistent_snapshot r in
          if not (String.equal once twice) then
            Alcotest.failf "recover not idempotent at point %d (%s)" !k
              (policy_name policy);
          (* a no-op reopen runs the recovery path once more *)
          let p2 = P.open_region r in
          ignore (P.read_tx p2 (fun () -> P.get_root p2 0));
          let reopened = R.persistent_snapshot r in
          if not (String.equal once reopened) then
            Alcotest.failf "reopen changed the image at point %d (%s)" !k
              (policy_name policy);
          k := !k + 7;
          if !k > 20_000 then
            Alcotest.fail "idempotence sweep did not terminate"
        done)
      policies

  (* Blob atomicity: a transaction rewrites a 96-byte blob and bumps a
     version word; crashed at every instruction boundary, recovery must
     never expose a version/blob mismatch or a torn blob. *)
  let test_blob_crash_atomicity () =
    let blob_for v = String.make 96 (Char.chr (65 + (v mod 26))) in
    let k = ref 0 in
    let completed = ref false in
    while not !completed do
      let r = region () in
      let p = P.open_region r in
      let obj =
        P.update_tx p (fun () ->
            let o = P.alloc p 112 in
            P.store p o 0;
            P.store_bytes p (o + 8) (blob_for 0);
            P.set_root p 0 o;
            o)
      in
      R.set_trap r !k;
      (match
         P.update_tx p (fun () ->
             P.store_bytes p (obj + 8) (blob_for 1);
             P.store p obj 1)
       with
       | () ->
         R.clear_trap r;
         completed := true
       | exception R.Crash_point -> ());
      R.crash r (R.Random_subset (!k + 77));
      P.recover p;
      let v, blob =
        P.read_tx p (fun () -> (P.load p obj, P.load_bytes p (obj + 8) 96))
      in
      if blob <> blob_for v then
        Alcotest.failf "torn blob at crash point %d: version %d" !k v;
      incr k;
      if !k > 20_000 then Alcotest.fail "blob crash loop did not terminate"
    done

  (* Allocator churn under crashes: interleave allocations and frees with
     random crash points; after every recovery the arena must pass its
     structural check and all committed live blocks must be intact. *)
  let test_allocator_churn_with_crashes () =
    let r = region () in
    let p = P.open_region r in
    let rng = Random.State.make [| 99 |] in
    (* live.(i) = Some (offset, fingerprint) — mirrors root slot 10+i *)
    let slots = 8 in
    let live = Array.make slots 0 in
    for i = 0 to slots - 1 do
      live.(i) <-
        P.update_tx p (fun () ->
            let o = P.alloc p 32 in
            P.store p o (i * 1_000);
            P.set_root p (10 + i) o;
            o)
    done;
    for round = 1 to 60 do
      let i = Random.State.int rng slots in
      R.set_trap r (Random.State.int rng 120);
      (match
         P.update_tx p (fun () ->
             (* replace the block in slot i *)
             P.free p (P.get_root p (10 + i));
             let o = P.alloc p (16 + (16 * Random.State.int rng 8)) in
             P.store p o (i * 1_000);
             P.set_root p (10 + i) o;
             o)
       with
       | o ->
         R.clear_trap r;
         live.(i) <- o
       | exception R.Crash_point ->
         R.crash r (R.Random_subset round);
         P.recover p;
         (* the replacement either committed or not: trust the root *)
         live.(i) <- P.read_tx p (fun () -> P.get_root p (10 + i)));
      (match P.allocator_check p with
       | Ok () -> ()
       | Error e -> Alcotest.failf "round %d: arena broken: %s" round e);
      for j = 0 to slots - 1 do
        let v = P.read_tx p (fun () -> P.load p live.(j)) in
        if v <> j * 1_000 then
          Alcotest.failf "round %d: slot %d clobbered (%d)" round j v
      done
    done

  (* A crash *inside the abort path itself*: the instruction-counting trap
     is swept over an aborting transaction, so it fires during the user
     code, during the rollback (restore-from-back / undo application), or
     not at all.  Whatever the line-fate policy, recovery must converge to
     the pre-state — an aborted transaction can never become visible, even
     half-aborted. *)
  let test_crash_inside_abort_path () =
    List.iter
      (fun policy ->
        let k = ref 0 in
        let completed = ref false in
        while not !completed do
          let r, p, n1, n2 = setup_crash_region () in
          R.set_trap r !k;
          (match
             P.update_tx p (fun () ->
                 P.store p n1 10;
                 P.store p (n1 + 8) 20;
                 let n3 = P.alloc p 24 in
                 P.store p n3 99;
                 P.set_root p 1 n3;
                 P.free p n2;
                 P.set_root p 2 0;
                 raise Exit)
           with
           | exception Romulus.Engine.Tx_aborted { cause = Exit; _ } ->
             R.clear_trap r;
             completed := true
           | exception R.Crash_point -> ()
           | exception e ->
             Alcotest.failf "point %d (%s): unexpected %s" !k
               (policy_name policy) (Printexc.to_string e)
           | () -> Alcotest.fail "raising tx must not commit");
          if not !completed then begin
            R.crash r policy;
            P.recover p
          end;
          (match observe p n1 n2 with
           | Pre -> ()
           | Post ->
             Alcotest.failf "aborted tx visible at point %d (%s)" !k
               (policy_name policy)
           | Torn s ->
             Alcotest.failf "torn abort at point %d (%s): %s" !k
               (policy_name policy) s);
          (match P.allocator_check p with
           | Ok () -> ()
           | Error e ->
             Alcotest.failf "arena broken at point %d (%s): %s" !k
               (policy_name policy) e);
          if !completed then begin
            (* trap never fired: the abort ran to completion and must have
               left nothing for recovery to redo *)
            let s = R.persistent_snapshot r in
            P.recover p;
            if not (String.equal s (R.persistent_snapshot r)) then
              Alcotest.failf "recovery after clean abort not a no-op (%s)"
                (policy_name policy)
          end;
          (* the system keeps working *)
          P.update_tx p (fun () ->
              let x = P.alloc p 16 in
              P.store p x 5;
              P.set_root p 3 x);
          Alcotest.(check int) "post-abort-crash tx works" 5
            (P.read_tx p (fun () -> P.load p (P.get_root p 3)));
          incr k;
          if !k > 20_000 then
            Alcotest.fail "abort crash sweep did not terminate"
        done)
      [ R.Drop_all; R.Keep_all; R.Random_subset 7; R.Torn_words 113 ]

  (* ---- qcheck: aborted alloc+store+free leaves the allocator intact ---- *)

  (* Differential property: a victim region runs a committed prologue,
     then an alloc+store+free transaction that aborts; a control region
     runs only the prologue.  Afterwards both must satisfy the same
     allocation requests with identical offsets (the allocator is
     deterministic, so identical metadata <=> identical placement), the
     victim's arena must pass its structural check, and recovery on the
     victim must be a byte-level no-op.  An empty prologue exercises the
     abort as the very first transaction after the formatting open. *)
  let prop_aborted_tx_allocator_intact =
    let open QCheck in
    let gen =
      Gen.(
        triple
          (list_size (int_bound 5) (map (fun n -> 16 + (8 * (n mod 24))) nat))
          (list_size (int_bound 6) (map (fun n -> 8 + (8 * (n mod 40))) nat))
          (list_size (int_bound 5) bool))
    in
    Test.make ~count:30
      ~name:(P.name ^ ": aborted alloc+store+free leaves allocator intact")
      (make
         ~print:(fun (pro, sizes, frees) ->
           Printf.sprintf "<prologue %d, %d allocs, %d free flags>"
             (List.length pro) (List.length sizes) (List.length frees))
         gen)
      (fun (prologue, tx_sizes, free_flags) ->
        let mk () =
          let r = region () in
          (r, P.open_region r)
        in
        let r1, victim = mk () in
        let _, control = mk () in
        let run_prologue p =
          List.iteri
            (fun i n ->
              P.update_tx p (fun () ->
                  let o = P.alloc p n in
                  P.store p o (i + 1);
                  P.set_root p i o))
            prologue
        in
        run_prologue victim;
        run_prologue control;
        (* the aborting transaction: fresh allocs with stores, frees of a
           subset of the prologue blocks, then a raise *)
        (match
           P.update_tx victim (fun () ->
               List.iter
                 (fun n ->
                   let o = P.alloc victim n in
                   P.store victim o 0xDEAD)
                 tx_sizes;
               List.iteri
                 (fun i doit ->
                   if doit && i < List.length prologue then
                     P.free victim (P.get_root victim i))
                 free_flags;
               raise Exit)
         with
         | exception Romulus.Engine.Tx_aborted { cause = Exit; _ } -> ()
         | exception e ->
           Test.fail_reportf "expected Tx_aborted{Exit}, got %s"
             (Printexc.to_string e)
         | () -> Test.fail_report "aborting tx committed");
        (match P.allocator_check victim with
         | Ok () -> ()
         | Error e -> Test.fail_reportf "victim arena: %s" e);
        (* recovery finds nothing to redo after a clean abort *)
        let s = R.persistent_snapshot r1 in
        P.recover victim;
        if not (String.equal s (R.persistent_snapshot r1)) then
          Test.fail_report "recovery after abort changed the image";
        (* prologue blocks (including any the aborted tx freed) intact *)
        List.iteri
          (fun i _ ->
            let v =
              P.read_tx victim (fun () -> P.load victim (P.get_root victim i))
            in
            if v <> i + 1 then
              Test.fail_reportf "prologue block %d clobbered: %d" i v)
          prologue;
        (* identical metadata <=> identical placement of fresh requests *)
        let probe p =
          P.update_tx p (fun () ->
              List.map (fun n -> P.alloc p n) [ 24; 40; 64; 104; 16 ])
        in
        let a = probe victim and b = probe control in
        if a <> b then
          Test.fail_reportf "allocator diverged after abort: [%s] vs [%s]"
            (String.concat ";" (List.map string_of_int a))
            (String.concat ";" (List.map string_of_int b));
        true)

  (* ---- concurrency (real domains) ---- *)

  let test_concurrent_counter () =
    let _, p = open_fresh () in
    let obj =
      P.update_tx p (fun () ->
          let o = P.alloc p 16 in
          P.store p o 0;
          P.set_root p 0 o;
          o)
    in
    let writer () =
      Sync_prims.Tid.with_slot (fun _ ->
          for _ = 1 to 300 do
            P.update_tx p (fun () -> P.store p obj (P.load p obj + 1))
          done)
    in
    let ds = List.init 3 (fun _ -> Domain.spawn writer) in
    List.iter Domain.join ds;
    Alcotest.(check int) "all increments applied" 900
      (P.read_tx p (fun () -> P.load p obj))

  let test_concurrent_readers_consistent () =
    let _, p = open_fresh () in
    let obj =
      P.update_tx p (fun () ->
          let o = P.alloc p 16 in
          P.store p o 0;
          P.store p (o + 8) 0;
          P.set_root p 0 o;
          o)
    in
    let torn = Atomic.make false in
    let stop = Atomic.make false in
    let writer () =
      Sync_prims.Tid.with_slot (fun _ ->
          for i = 1 to 400 do
            P.update_tx p (fun () ->
                P.store p obj i;
                P.store p (obj + 8) i)
          done;
          Atomic.set stop true)
    in
    let reader () =
      Sync_prims.Tid.with_slot (fun _ ->
          while not (Atomic.get stop) do
            P.read_tx p (fun () ->
                let a = P.load p obj in
                let b = P.load p (obj + 8) in
                if a <> b then Atomic.set torn true)
          done)
    in
    let ds = List.map Domain.spawn [ writer; reader; reader ] in
    List.iter Domain.join ds;
    Alcotest.(check bool) "transactional isolation" false (Atomic.get torn)

  (* A power failure with several domains mid-flight: every domain dies
     on Crash_point (the region is dead for all of them), the "restart"
     recovers, and the counter must be consistent — every increment that
     was acknowledged before the crash survives. *)
  let test_concurrent_crash_restart () =
    let r, p = open_fresh () in
    let obj =
      P.update_tx p (fun () ->
          let o = P.alloc p 16 in
          P.store p o 0;
          P.set_root p 0 o;
          o)
    in
    let acked = Atomic.make 0 in
    let worker () =
      Sync_prims.Tid.with_slot (fun _ ->
          try
            for _ = 1 to 10_000 do
              P.update_tx p (fun () -> P.store p obj (P.load p obj + 1));
              Atomic.incr acked
            done
          with R.Crash_point -> (* the machine died under us *) ())
    in
    R.set_trap r 2_000;
    let ds = List.init 3 (fun _ -> Domain.spawn worker) in
    List.iter Domain.join ds;
    R.crash r R.Drop_all;
    P.recover p;
    let v = P.read_tx p (fun () -> P.load p obj) in
    let a = Atomic.get acked in
    if v < a then
      Alcotest.failf "lost acknowledged increments: counter %d < acked %d" v a;
    if v > a + 3 then
      Alcotest.failf "counter %d exceeds acked %d + in-flight" v a;
    (* the system keeps working after the restart *)
    P.update_tx p (fun () -> P.store p obj (P.load p obj + 1));
    Alcotest.(check int) "post-restart increment" (v + 1)
      (P.read_tx p (fun () -> P.load p obj))

  (* ---- media faults: scrub, repair, typed refusal ---- *)

  let populate_for_scrub p =
    P.update_tx p (fun () ->
        let o = P.alloc p 64 in
        for i = 0 to 7 do
          P.store p (o + (8 * i)) (1000 + i)
        done;
        P.set_root p 0 o;
        o)

  (* On pristine media a scrub is a read-only audit: it visits lines,
     repairs nothing, and leaves the persistent image byte-identical. *)
  let test_scrub_clean_is_noop () =
    let r, p = open_fresh () in
    let obj = populate_for_scrub p in
    let before = R.persistent_snapshot r in
    let rep = P.scrub p in
    Alcotest.(check bool) "lines audited" true
      (rep.Romulus.Engine.scrubbed > 0);
    Alcotest.(check int) "nothing repaired" 0 rep.Romulus.Engine.repaired;
    Alcotest.(check bool) "image untouched" true
      (String.equal before (R.persistent_snapshot r));
    Alcotest.(check int) "data intact" 1000
      (P.read_tx p (fun () -> P.load p obj))

  (* Rot a line deep in the used span.  Twin-copy designs must repair it
     and restore the exact pre-rot image; single-image baselines must
     refuse with the typed Unrepairable — and afterwards every read
     either raises the typed media error or returns correct data, never
     silently-wrong bytes. *)
  let test_scrub_corrupted_line () =
    let r, p = open_fresh () in
    let obj = populate_for_scrub p in
    let clean = R.persistent_snapshot r in
    let spans = P.media_spans p in
    let twin = List.length spans = 2 in
    let base, span = List.hd spans in
    Alcotest.(check bool) "span covers data" true (span > 0);
    let line = (base + span - 1) / R.line_size r in
    R.corrupt_line r ~line;
    if twin then begin
      let rep = P.scrub p in
      Alcotest.(check bool) "repaired the rotten line" true
        (rep.Romulus.Engine.repaired >= 1);
      Alcotest.(check bool) "image restored byte-identical" true
        (String.equal clean (R.persistent_snapshot r));
      Alcotest.(check int) "data readable again" 1000
        (P.read_tx p (fun () -> P.load p obj));
      Alcotest.(check int) "second scrub finds nothing" 0
        (P.scrub p).Romulus.Engine.repaired
    end
    else begin
      (match P.scrub p with
       | exception Romulus.Engine.Unrepairable _ -> ()
       | (_ : Romulus.Engine.scrub_report) ->
         Alcotest.fail "no twin to repair from: scrub must refuse");
      (* detection-only: reads surface the typed error or correct data *)
      for i = 0 to 7 do
        match P.read_tx p (fun () -> P.load p (obj + (8 * i))) with
        | v ->
          Alcotest.(check int)
            (Printf.sprintf "slot %d intact or refused" i)
            (1000 + i) v
        | exception R.Media_error _ -> ()
      done
    end

  (* Rot injected before a power failure: recovery (which scrubs first)
     must hand back a correct image on twin-copy designs. *)
  let test_scrub_at_recovery () =
    let spans_of () =
      let _, p = open_fresh () in
      List.length (P.media_spans p)
    in
    if spans_of () = 2 then begin
      let r, p = open_fresh () in
      let obj = populate_for_scrub p in
      (* settle into a durably-IDL image first: the engine publishes IDL
         lazily, so right after a commit the durable state is still CPY
         (under which main-copy rot is — correctly — unrepairable) *)
      R.crash r R.Drop_all;
      P.recover p;
      let clean = R.persistent_snapshot r in
      let base, span = List.hd (P.media_spans p) in
      let line = (base + span - 1) / R.line_size r in
      R.corrupt_line r ~line;
      R.crash r R.Drop_all;
      P.recover p;
      Alcotest.(check bool) "recovery repaired the rot" true
        (String.equal clean (R.persistent_snapshot r));
      Alcotest.(check int) "data intact after restart" 1000
        (P.read_tx p (fun () -> P.load p obj))
    end

  (* ---- qcheck: random transactions + random crash points ---- *)

  let prop_random_crash_atomicity =
    let open QCheck in
    let gen =
      Gen.(
        triple
          (list_size (int_bound 30) (pair (int_bound 9) small_nat))
          small_nat (int_bound 4))
    in
    Test.make ~count:40
      ~name:(P.name ^ ": random tx crash atomicity")
      (make
         ~print:(fun (ops, k, pol) ->
           Printf.sprintf "<%d stores, trap=%d, policy=%d>" (List.length ops)
             k pol)
         gen)
      (fun (ops, trap, pol) ->
        let r = region () in
        let p = P.open_region r in
        let arr =
          P.update_tx p (fun () ->
              let a = P.alloc p 80 in
              for i = 0 to 9 do
                P.store p (a + (8 * i)) i
              done;
              P.set_root p 0 a;
              a)
        in
        let model = Array.init 10 (fun i -> i) in
        let next = Array.copy model in
        List.iter (fun (slot, v) -> next.(slot) <- v) ops;
        R.set_trap r trap;
        let committed =
          match
            P.update_tx p (fun () ->
                List.iter (fun (slot, v) -> P.store p (arr + (8 * slot)) v) ops)
          with
          | () ->
            R.clear_trap r;
            true
          | exception R.Crash_point -> false
        in
        let policy =
          match pol with
          | 0 -> R.Drop_all
          | 1 -> R.Keep_all
          | 2 -> R.Torn_words (trap + 13)
          | n -> R.Random_subset n
        in
        R.crash r policy;
        P.recover p;
        let got =
          P.read_tx p (fun () ->
              Array.init 10 (fun i -> P.load p (arr + (8 * i))))
        in
        if committed then got = next else got = model || got = next)

  (* Every test leaves the process-global failpoint registry disarmed,
     even when the test body (or an Alcotest assertion) raises: a fault a
     failing test armed must never fire inside a later test. *)
  let with_disarm (name, speed, f) =
    ( name,
      speed,
      fun x -> Fun.protect ~finally:Fault.disarm (fun () -> f x) )

  let suite =
    let tc = Alcotest.test_case in
    List.map with_disarm
    @@ [ tc "root round-trip" `Quick test_root_round_trip;
      tc "blob round-trip" `Quick test_blob_round_trip;
      tc "tx result values" `Quick test_tx_result_value;
      tc "store outside tx raises" `Quick test_store_outside_tx_raises;
      tc "store in read_tx raises" `Quick test_store_in_read_tx_raises;
      tc "nested txs flatten" `Quick test_nested_txs_flatten;
      tc "exception semantics" `Quick test_exception_semantics;
      tc "raising read_tx departs ingress" `Quick test_read_tx_raise_departs;
      tc "invalid free is typed and aborts" `Quick test_invalid_free_typed;
      tc "out of memory is typed and aborts" `Quick test_out_of_memory_typed;
      tc "root index out of bounds is typed" `Quick
        test_root_out_of_bounds_typed;
      tc "survives clean crash" `Quick test_survives_clean_crash;
      tc "reopen region recovers" `Quick test_reopen_region;
      tc "uncommitted tx rolls back" `Quick test_uncommitted_tx_rolls_back;
      tc "fence bound" `Quick test_fence_bound;
      tc "read tx is fence-free" `Quick test_read_tx_no_fences;
      tc "crash injection (drop all)" `Slow test_crash_injection_drop_all;
      tc "crash injection (keep all)" `Slow test_crash_injection_keep_all;
      tc "crash injection (random)" `Slow test_crash_injection_random;
      tc "crash injection (torn words)" `Slow test_crash_injection_torn_words;
      tc "crash during recovery" `Slow test_crash_during_recovery;
      tc "crash inside the abort path" `Slow test_crash_inside_abort_path;
      tc "recovery is idempotent" `Slow test_recover_idempotent;
      tc "blob crash atomicity" `Slow test_blob_crash_atomicity;
      tc "allocator churn with crashes" `Slow
        test_allocator_churn_with_crashes;
      tc "scrub on clean media is a no-op" `Quick test_scrub_clean_is_noop;
      tc "scrub repairs or refuses rot" `Quick test_scrub_corrupted_line;
      tc "recovery scrubs before rolling" `Quick test_scrub_at_recovery ]
    @ (if P.concurrent then
         [ tc "concurrent counter" `Quick test_concurrent_counter;
           tc "concurrent readers consistent" `Quick
             test_concurrent_readers_consistent;
           tc "crash with domains in flight" `Quick
             test_concurrent_crash_restart ]
       else [])
    @ List.map QCheck_alcotest.to_alcotest
        [ prop_random_crash_atomicity; prop_aborted_tx_allocator_intact ]
end
