(* Tests for the key-value layer: the string hash map, RomulusDB (LevelDB
   interface over a PTM), the simulated block device and the LevelDB-like
   baseline with buffered durability. *)

module R = Pmem.Region

let region ?(size = 1 lsl 20) () = R.create ~size ()

(* ---- string hash map over RomulusLog ---- *)

module SM = Kv.Str_hash_map.Make (Romulus.Logged)

let test_strmap_basics () =
  let r = region () in
  let p = Romulus.Logged.open_region r in
  let m = SM.create p ~root:0 in
  Alcotest.(check bool) "put new" true (SM.put m "alpha" "1");
  Alcotest.(check bool) "overwrite" false (SM.put m "alpha" "one");
  Alcotest.(check (option string)) "get" (Some "one") (SM.get m "alpha");
  Alcotest.(check (option string)) "absent" None (SM.get m "beta");
  ignore (SM.put m "" "empty key");
  Alcotest.(check (option string)) "empty key works" (Some "empty key")
    (SM.get m "");
  ignore (SM.put m "gamma" "");
  Alcotest.(check (option string)) "empty value works" (Some "")
    (SM.get m "gamma");
  Alcotest.(check bool) "remove" true (SM.remove m "alpha");
  Alcotest.(check (option string)) "gone" None (SM.get m "alpha");
  match SM.check m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariant: %s" e

let test_strmap_binary_safe () =
  let r = region () in
  let p = Romulus.Logged.open_region r in
  let m = SM.create p ~root:0 in
  (* all byte values, including ones using the top bit of each word *)
  let key = String.init 17 (fun i -> Char.chr (i * 15 mod 256)) in
  let value = String.init 255 (fun i -> Char.chr (255 - i)) in
  ignore (SM.put m key value);
  Alcotest.(check (option string)) "binary round-trip" (Some value)
    (SM.get m key)

let test_strmap_resize_many () =
  let r = region () in
  let p = Romulus.Logged.open_region r in
  let m = SM.create ~initial_buckets:4 p ~root:0 in
  for i = 1 to 300 do
    ignore (SM.put m (Printf.sprintf "key%04d" i) (string_of_int i))
  done;
  Alcotest.(check int) "count" 300 (SM.length m);
  for i = 1 to 300 do
    Alcotest.(check (option string))
      (Printf.sprintf "get key%04d" i)
      (Some (string_of_int i))
      (SM.get m (Printf.sprintf "key%04d" i))
  done;
  match SM.check m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariant: %s" e

let prop_strmap_model =
  let open QCheck in
  let keygen = Gen.map (fun n -> Printf.sprintf "k%d" (n mod 40)) Gen.nat in
  Test.make ~count:30 ~name:"string map vs model"
    (make
       ~print:(fun ops -> Printf.sprintf "<%d ops>" (List.length ops))
       Gen.(list (triple (int_bound 2) keygen string_small)))
    (fun ops ->
      let r = region () in
      let p = Romulus.Logged.open_region r in
      let m = SM.create ~initial_buckets:4 p ~root:0 in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (op, k, v) ->
          match op with
          | 0 ->
            ignore (SM.put m k v);
            Hashtbl.replace model k v
          | 1 ->
            ignore (SM.remove m k);
            Hashtbl.remove model k
          | _ ->
            if SM.get m k <> Hashtbl.find_opt model k then
              QCheck.Test.fail_reportf "get %S disagreed" k)
        ops;
      (match SM.check m with
       | Ok () -> ()
       | Error e -> QCheck.Test.fail_reportf "invariant: %s" e);
      let mine = SM.fold m (fun acc k v -> (k, v) :: acc) [] in
      let theirs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [] in
      List.sort compare mine = List.sort compare theirs)

(* ---- RomulusDB ---- *)

module Db = Kv.Romulus_db.Default

let test_db_basics () =
  let r = region () in
  let db = Db.open_db r in
  Db.put db "name" "romulus";
  Db.put db "year" "2018";
  Alcotest.(check (option string)) "get" (Some "romulus") (Db.get db "name");
  Alcotest.(check int) "count" 2 (Db.count db);
  Alcotest.(check bool) "delete" true (Db.delete db "name");
  Alcotest.(check (option string)) "deleted" None (Db.get db "name")

let test_db_durability_per_put () =
  let r = region () in
  let db = Db.open_db r in
  Db.put db "k1" "v1";
  Db.put db "k2" "v2";
  (* crash immediately: every completed put must survive *)
  R.crash r R.Drop_all;
  let db2 = Db.open_db r in
  Alcotest.(check (option string)) "k1 durable" (Some "v1") (Db.get db2 "k1");
  Alcotest.(check (option string)) "k2 durable" (Some "v2") (Db.get db2 "k2");
  Alcotest.(check int) "count preserved" 2 (Db.count db2)

let test_db_write_batch_atomic () =
  let r = region () in
  let db = Db.open_db r in
  Db.put db "balance_a" "100";
  Db.put db "balance_b" "0";
  (* a transfer as a write batch, crashed in the middle *)
  R.set_trap r 25;
  (match
     Db.write_batch db (fun db ->
         Db.put db "balance_a" "0";
         Db.put db "balance_b" "100")
   with
   | () -> Alcotest.fail "trap did not fire"
   | exception R.Crash_point -> ());
  R.crash r R.Drop_all;
  let db2 = Db.open_db r in
  let a = Option.get (Db.get db2 "balance_a") in
  let b = Option.get (Db.get db2 "balance_b") in
  Alcotest.(check (pair string string))
    "batch is all-or-nothing" ("100", "0") (a, b)

let test_db_iter_orders_agree () =
  let r = region () in
  let db = Db.open_db r in
  for i = 1 to 50 do
    Db.put db (Printf.sprintf "k%02d" i) (string_of_int i)
  done;
  let fwd = ref [] and rev = ref [] in
  Db.iter db (fun k v -> fwd := (k, v) :: !fwd);
  Db.iter_reverse db (fun k v -> rev := (k, v) :: !rev);
  Alcotest.(check int) "both scans complete" 50 (List.length !fwd);
  Alcotest.(check bool) "same contents" true
    (List.sort compare !fwd = List.sort compare !rev)

(* ---- disk simulation ---- *)

let test_disk_sim_costs () =
  let d = Kv.Disk_sim.create ~write_ns_base:100 ~write_ns_per_16bytes:16
      ~fdatasync_ns:1000 () in
  ignore (Kv.Disk_sim.write d 160);
  Alcotest.(check int) "write cost" (100 + 160) (Kv.Disk_sim.vtime_ns d);
  Kv.Disk_sim.fdatasync d;
  Alcotest.(check int) "sync cost" (100 + 160 + 1000) (Kv.Disk_sim.vtime_ns d);
  Alcotest.(check int) "synced" 160 (Kv.Disk_sim.synced d)

let test_disk_sim_crash_loses_unsynced () =
  let d = Kv.Disk_sim.create () in
  ignore (Kv.Disk_sim.write d 100);
  Kv.Disk_sim.fdatasync d;
  ignore (Kv.Disk_sim.write d 50);
  let durable = Kv.Disk_sim.crash d in
  Alcotest.(check int) "only synced bytes survive" 100 durable

let test_disk_sim_crash_edges () =
  (* crash of a device that never wrote anything *)
  let d = Kv.Disk_sim.create () in
  Alcotest.(check int) "fresh device crash" 0 (Kv.Disk_sim.crash d);
  (* crash exactly at a sync boundary: nothing in flight, nothing lost *)
  ignore (Kv.Disk_sim.write d 64);
  Kv.Disk_sim.fdatasync d;
  Alcotest.(check int) "crash at boundary" 64 (Kv.Disk_sim.crash d);
  (* a second crash with no intervening writes is a no-op *)
  Alcotest.(check int) "double crash idempotent" 64 (Kv.Disk_sim.crash d);
  Alcotest.(check int) "appended rolled back to synced" 64
    (Kv.Disk_sim.appended d)

(* ---- LevelDB-like baseline ---- *)

let test_leveldb_basics () =
  let db = Kv.Level_db.create () in
  Kv.Level_db.put db "b" "2";
  Kv.Level_db.put db "a" "1";
  Kv.Level_db.put db "c" "3";
  Alcotest.(check (option string)) "get" (Some "2") (Kv.Level_db.get db "b");
  let order = ref [] in
  Kv.Level_db.iter db (fun k _ -> order := k :: !order);
  Alcotest.(check (list string)) "sorted iteration" [ "a"; "b"; "c" ]
    (List.rev !order);
  let rorder = ref [] in
  Kv.Level_db.iter_reverse db (fun k _ -> rorder := k :: !rorder);
  Alcotest.(check (list string)) "reverse iteration" [ "c"; "b"; "a" ]
    (List.rev !rorder);
  Kv.Level_db.delete db "b";
  Alcotest.(check (option string)) "deleted" None (Kv.Level_db.get db "b")

let test_leveldb_buffered_durability_loses_writes () =
  (* the paper's point: without WriteOptions.sync, a crash can lose a
     large batch of recently completed operations *)
  let db = Kv.Level_db.create ~sync_every_bytes:1_000_000 () in
  for i = 1 to 100 do
    Kv.Level_db.put db (Printf.sprintf "k%d" i) "payload"
  done;
  Kv.Level_db.crash db;
  Alcotest.(check int) "everything lost (never synced)" 0
    (Kv.Level_db.count db)

let test_leveldb_sync_mode_durable () =
  let db = Kv.Level_db.create () in
  Kv.Level_db.put ~sync:true db "k1" "v1";
  Kv.Level_db.put ~sync:true db "k2" "v2";
  Kv.Level_db.crash db;
  Alcotest.(check int) "synced writes survive" 2 (Kv.Level_db.count db);
  Alcotest.(check (option string)) "value intact" (Some "v1")
    (Kv.Level_db.get db "k1")

let test_leveldb_auto_sync_threshold () =
  let db = Kv.Level_db.create ~sync_every_bytes:1_000 () in
  (* each record is ~29 bytes; ~35 writes cross the 1 kB threshold *)
  for i = 1 to 100 do
    Kv.Level_db.put db (Printf.sprintf "key%05d" i) "0123456789AB"
  done;
  let syncs = Kv.Disk_sim.syncs (Kv.Level_db.disk db) in
  Alcotest.(check bool)
    (Printf.sprintf "periodic syncs happened (%d)" syncs)
    true
    (syncs >= 2 && syncs <= 10);
  Kv.Level_db.crash db;
  let survivors = Kv.Level_db.count db in
  Alcotest.(check bool)
    (Printf.sprintf "a synced prefix survives (%d)" survivors)
    true
    (survivors > 0 && survivors < 100);
  (* survivors must be exactly the first N puts *)
  let ok = ref true in
  for i = 1 to survivors do
    if Kv.Level_db.get db (Printf.sprintf "key%05d" i) = None then ok := false
  done;
  Alcotest.(check bool) "survivors form a prefix" true !ok

let test_leveldb_crash_empty_journal () =
  (* a crash before any write: the memtable is empty and stays usable *)
  let db = Kv.Level_db.create () in
  Kv.Level_db.crash db;
  Alcotest.(check int) "empty after empty crash" 0 (Kv.Level_db.count db);
  Kv.Level_db.put ~sync:true db "k" "v";
  Kv.Level_db.crash db;
  Alcotest.(check (option string)) "writes after recovery work" (Some "v")
    (Kv.Level_db.get db "k")

let test_leveldb_crash_exactly_at_sync_boundary () =
  (* records are 9 + |k| + |v| bytes; key "kN" + value "0123456789" is 21.
     With sync_every_bytes = 42, the threshold is reached *exactly* on
     every second put — the boundary write itself must be durable. *)
  let db = Kv.Level_db.create ~sync_every_bytes:42 () in
  for i = 1 to 5 do
    Kv.Level_db.put db (Printf.sprintf "k%d" i) "0123456789"
  done;
  Alcotest.(check int) "puts 2 and 4 synced" 2
    (Kv.Disk_sim.syncs (Kv.Level_db.disk db));
  Kv.Level_db.crash db;
  Alcotest.(check int) "exactly the synced prefix survives" 4
    (Kv.Level_db.count db);
  Alcotest.(check (option string)) "boundary record itself is durable"
    (Some "0123456789")
    (Kv.Level_db.get db "k4");
  Alcotest.(check (option string)) "first unsynced record is lost" None
    (Kv.Level_db.get db "k5")

let test_leveldb_replay_after_double_crash () =
  let db = Kv.Level_db.create ~sync_every_bytes:1_000_000 () in
  Kv.Level_db.put ~sync:true db "a" "1";
  Kv.Level_db.put ~sync:true db "b" "2";
  Kv.Level_db.delete ~sync:true db "a";
  Kv.Level_db.put db "lost" "never synced";
  Kv.Level_db.crash db;
  Alcotest.(check (option string)) "delete replayed" None
    (Kv.Level_db.get db "a");
  Alcotest.(check (option string)) "unsynced put lost" None
    (Kv.Level_db.get db "lost");
  (* keep going after the first recovery, then crash again: the journal
     prefix kept from crash #1 must still replay correctly under #2 *)
  Kv.Level_db.put ~sync:true db "c" "3";
  Kv.Level_db.put db "lost2" "never synced";
  Kv.Level_db.crash db;
  Alcotest.(check int) "second replay count" 2 (Kv.Level_db.count db);
  Alcotest.(check (option string)) "old record survives both crashes"
    (Some "2")
    (Kv.Level_db.get db "b");
  Alcotest.(check (option string)) "new record survives second crash"
    (Some "3")
    (Kv.Level_db.get db "c");
  Alcotest.(check (option string)) "unsynced put lost again" None
    (Kv.Level_db.get db "lost2")

(* ---- sorted store (string B+tree) ---- *)

module Sdb = Kv.Sorted_db.Default

let test_sorted_db_basics () =
  let r = region ~size:(1 lsl 19) () in
  let db = Sdb.open_db r in
  Sdb.put db "banana" "2";
  Sdb.put db "apple" "1";
  Sdb.put db "cherry" "3";
  Alcotest.(check (option string)) "get" (Some "2") (Sdb.get db "banana");
  let order = ref [] in
  Sdb.iter db (fun k _ -> order := k :: !order);
  Alcotest.(check (list string)) "sorted iteration"
    [ "apple"; "banana"; "cherry" ] (List.rev !order);
  let range = ref [] in
  Sdb.iter_range db ~lo:"apple" ~hi:"banana" (fun k _ -> range := k :: !range);
  Alcotest.(check (list string)) "range scan" [ "apple"; "banana" ]
    (List.rev !range);
  Alcotest.(check bool) "delete" true (Sdb.delete db "banana");
  Alcotest.(check (option string)) "deleted" None (Sdb.get db "banana");
  match Sdb.check db with Ok () -> () | Error e -> Alcotest.fail e

let test_sorted_db_durability () =
  let r = region ~size:(1 lsl 19) () in
  let db = Sdb.open_db r in
  for i = 0 to 199 do
    Sdb.put db (Printf.sprintf "key%04d" i) (string_of_int i)
  done;
  R.crash r R.Drop_all;
  let db = Sdb.open_db r in
  Alcotest.(check int) "all durable" 200 (Sdb.count db);
  (match Sdb.check db with Ok () -> () | Error e -> Alcotest.fail e);
  let keys = ref [] in
  Sdb.iter db (fun k _ -> keys := k :: !keys);
  Alcotest.(check (list string)) "sorted after reopen"
    (List.init 200 (fun i -> Printf.sprintf "key%04d" i))
    (List.rev !keys)

let prop_sorted_db_model =
  let open QCheck in
  let keygen = Gen.map (fun n -> Printf.sprintf "k%03d" (n mod 60)) Gen.nat in
  Test.make ~count:30 ~name:"sorted db vs model"
    (make
       ~print:(fun ops -> Printf.sprintf "<%d ops>" (List.length ops))
       Gen.(list (triple (int_bound 2) keygen string_small)))
    (fun ops ->
      let r = region ~size:(1 lsl 20) () in
      let db = Sdb.open_db r in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (op, k, v) ->
          match op with
          | 0 ->
            Sdb.put db k v;
            Hashtbl.replace model k v
          | 1 ->
            ignore (Sdb.delete db k);
            Hashtbl.remove model k
          | _ ->
            if Sdb.get db k <> Hashtbl.find_opt model k then
              QCheck.Test.fail_reportf "get %S disagreed" k)
        ops;
      (match Sdb.check db with
       | Ok () -> ()
       | Error e -> QCheck.Test.fail_reportf "invariant: %s" e);
      let mine = ref [] in
      Sdb.iter db (fun k v -> mine := (k, v) :: !mine);
      let theirs =
        List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) model [])
      in
      List.rev !mine = theirs)

let prop_sorted_db_crash =
  let open QCheck in
  Test.make ~count:30 ~name:"sorted db crash atomicity"
    (pair small_nat (int_bound 2))
    (fun (trap, pol) ->
      let r = region ~size:(1 lsl 19) () in
      let db = Sdb.open_db r in
      for i = 0 to 39 do
        Sdb.put db (Printf.sprintf "k%03d" i) "committed"
      done;
      R.set_trap r (5 + trap);
      (try
         for i = 40 to 80 do
           Sdb.put db (Printf.sprintf "k%03d" i) "maybe"
         done;
         R.clear_trap r
       with R.Crash_point -> ());
      let policy =
        match pol with
        | 0 -> R.Drop_all
        | 1 -> R.Keep_all
        | n -> R.Random_subset (n + trap)
      in
      R.crash r policy;
      let db = Sdb.open_db r in
      (match Sdb.check db with
       | Ok () -> ()
       | Error e -> QCheck.Test.fail_reportf "invariant after crash: %s" e);
      (* puts are sequential and atomic: survivors are a prefix *)
      let keys = ref [] in
      Sdb.iter db (fun k _ -> keys := k :: !keys);
      let keys = List.rev !keys in
      keys = List.init (List.length keys) (fun i -> Printf.sprintf "k%03d" i)
      && List.length keys >= 40)

(* ---- crash injection on the string KV store ---- *)

(* A put is crashed at a random instruction boundary with a random policy;
   after reopening, the database is exactly pre-put or exactly post-put,
   never a hybrid, and the structure passes its checks. *)
let prop_db_crash_atomicity =
  let open QCheck in
  Test.make ~count:60 ~name:"romulusdb: crashed put is atomic"
    (pair small_nat (int_bound 2))
    (fun (trap, pol) ->
      let r = region ~size:(1 lsl 18) () in
      let db = Db.open_db ~initial_buckets:8 r in
      for i = 1 to 10 do
        Db.put db (Printf.sprintf "k%02d" i) (String.make 20 'a')
      done;
      R.set_trap r trap;
      let committed =
        match Db.put db "victim" (String.make 40 'B') with
        | () ->
          R.clear_trap r;
          true
        | exception R.Crash_point -> false
      in
      let policy =
        match pol with
        | 0 -> R.Drop_all
        | 1 -> R.Keep_all
        | _ -> R.Random_subset (trap + 1)
      in
      R.crash r policy;
      let db = Db.open_db r in
      (match Db.check db with
       | Ok () -> ()
       | Error e -> QCheck.Test.fail_reportf "structure broken: %s" e);
      (* the 10 committed entries are always intact *)
      for i = 1 to 10 do
        if Db.get db (Printf.sprintf "k%02d" i) <> Some (String.make 20 'a')
        then QCheck.Test.fail_reportf "lost committed key k%02d" i
      done;
      match Db.get db "victim" with
      | Some v when v = String.make 40 'B' -> true
      | Some v -> QCheck.Test.fail_reportf "torn value %S" v
      | None -> (not committed) || QCheck.Test.fail_report "lost committed put")

(* Deletes and overwrites under crashes keep count and contents coherent. *)
let prop_db_crash_overwrite_delete =
  let open QCheck in
  Test.make ~count:40 ~name:"romulusdb: crashed overwrite/delete is atomic"
    (triple small_nat (int_bound 2) bool)
    (fun (trap, pol, do_delete) ->
      let r = region ~size:(1 lsl 18) () in
      let db = Db.open_db ~initial_buckets:8 r in
      Db.put db "x" "old-value";
      R.set_trap r trap;
      (match
         if do_delete then ignore (Db.delete db "x")
         else Db.put db "x" "new-value"
       with
       | () -> R.clear_trap r
       | exception R.Crash_point -> ());
      let policy =
        match pol with
        | 0 -> R.Drop_all
        | 1 -> R.Keep_all
        | _ -> R.Random_subset (trap + 9)
      in
      R.crash r policy;
      let db = Db.open_db r in
      (match Db.check db with
       | Ok () -> ()
       | Error e -> QCheck.Test.fail_reportf "structure broken: %s" e);
      match Db.get db "x" with
      | Some "old-value" -> true
      | Some "new-value" -> not do_delete
      | Some v -> QCheck.Test.fail_reportf "torn value %S" v
      | None -> do_delete)

(* ---- transient read faults: bounded retry, typed exhaustion ---- *)

let test_disk_sim_read_faults_retry () =
  let d = Kv.Disk_sim.create ~read_backoff_ns:1_000 () in
  (* rate 0 (the default): reads never retry and cost exactly [ns] *)
  Kv.Disk_sim.read d 600;
  Alcotest.(check int) "clean read cost" 600 (Kv.Disk_sim.vtime_ns d);
  Alcotest.(check int) "no retries" 0 (Kv.Disk_sim.read_retries d);
  (* rate 1: every attempt faults, so the read exhausts its budget of 6
     attempts, charges 5 exponential backoffs, and raises typed *)
  Kv.Disk_sim.reset_vtime d;
  Kv.Disk_sim.set_read_faults d ~seed:7 ~rate:1.0;
  (match Kv.Disk_sim.read d 600 with
   | () -> Alcotest.fail "rate-1.0 read cannot succeed"
   | exception Kv.Disk_sim.Read_failed { attempts } ->
     Alcotest.(check int) "budget exhausted" 6 attempts);
  let backoffs = 1_000 * (1 + 2 + 4 + 8 + 16) in
  Alcotest.(check int) "attempts + backoffs charged"
    ((6 * 600) + backoffs)
    (Kv.Disk_sim.vtime_ns d);
  (* a moderate rate: reads keep succeeding, with some retries, and the
     retry count is deterministic per seed *)
  let retries_with seed =
    let d = Kv.Disk_sim.create () in
    Kv.Disk_sim.set_read_faults d ~seed ~rate:0.3;
    for _ = 1 to 200 do
      Kv.Disk_sim.read d 600
    done;
    Kv.Disk_sim.read_retries d
  in
  let r1 = retries_with 42 in
  Alcotest.(check bool) "flaky reads retried" true (r1 > 0);
  Alcotest.(check int) "deterministic per seed" r1 (retries_with 42);
  (* disarming restores fault-free reads *)
  Kv.Disk_sim.clear_read_faults d;
  Kv.Disk_sim.read d 600;
  Alcotest.(check bool) "invalid rate rejected" true
    (match Kv.Disk_sim.set_read_faults d ~seed:1 ~rate:1.5 with
     | () -> false
     | exception Invalid_argument _ -> true)

let test_leveldb_reads_survive_flaky_disk () =
  let db = Kv.Level_db.create () in
  for i = 0 to 49 do
    Kv.Level_db.put db (Printf.sprintf "k%02d" i) (string_of_int i)
  done;
  Kv.Disk_sim.set_read_faults (Kv.Level_db.disk db) ~seed:11 ~rate:0.3;
  for i = 0 to 49 do
    Alcotest.(check (option string))
      (Printf.sprintf "get k%02d" i)
      (Some (string_of_int i))
      (Kv.Level_db.get db (Printf.sprintf "k%02d" i))
  done;
  let n = ref 0 in
  Kv.Level_db.iter db (fun _ _ -> incr n);
  Alcotest.(check int) "scan complete despite faults" 50 !n;
  Alcotest.(check bool) "faults actually fired" true
    (Kv.Disk_sim.read_retries (Kv.Level_db.disk db) > 0);
  (* a dead device surfaces as the typed error, not missing data *)
  Kv.Disk_sim.set_read_faults (Kv.Level_db.disk db) ~seed:11 ~rate:1.0;
  match Kv.Level_db.get db "k00" with
  | exception Kv.Disk_sim.Read_failed { attempts = 6 } -> ()
  | _ -> Alcotest.fail "dead device must raise Read_failed"

let suite =
  let tc = Alcotest.test_case in
  [ tc "strmap basics" `Quick test_strmap_basics;
    tc "strmap binary safety" `Quick test_strmap_binary_safe;
    tc "strmap resize" `Quick test_strmap_resize_many;
    tc "romulusdb basics" `Quick test_db_basics;
    tc "romulusdb per-put durability" `Quick test_db_durability_per_put;
    tc "romulusdb atomic write batch" `Quick test_db_write_batch_atomic;
    tc "romulusdb scan orders" `Quick test_db_iter_orders_agree;
    tc "disk sim costs" `Quick test_disk_sim_costs;
    tc "disk sim crash" `Quick test_disk_sim_crash_loses_unsynced;
    tc "disk sim crash edges" `Quick test_disk_sim_crash_edges;
    tc "disk sim transient read faults" `Quick
      test_disk_sim_read_faults_retry;
    tc "leveldb reads survive flaky disk" `Quick
      test_leveldb_reads_survive_flaky_disk;
    tc "leveldb basics" `Quick test_leveldb_basics;
    tc "leveldb buffered durability" `Quick
      test_leveldb_buffered_durability_loses_writes;
    tc "leveldb sync mode" `Quick test_leveldb_sync_mode_durable;
    tc "leveldb auto-sync threshold" `Quick test_leveldb_auto_sync_threshold;
    tc "leveldb crash with empty journal" `Quick
      test_leveldb_crash_empty_journal;
    tc "leveldb crash at sync boundary" `Quick
      test_leveldb_crash_exactly_at_sync_boundary;
    tc "leveldb replay after double crash" `Quick
      test_leveldb_replay_after_double_crash ]
  @ [ Alcotest.test_case "sorted db basics" `Quick test_sorted_db_basics;
      Alcotest.test_case "sorted db durability" `Quick
        test_sorted_db_durability ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_strmap_model; prop_db_crash_atomicity;
        prop_db_crash_overwrite_delete; prop_sorted_db_model;
        prop_sorted_db_crash ]

let () = Alcotest.run "kv" [ ("kv", suite) ]
