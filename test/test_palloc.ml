(* Unit and property tests for the persistent allocator, instantiated over
   a plain (non-interposed) region memory. *)

module Mem = struct
  type t = Pmem.Region.t

  let load = Pmem.Region.load
  let store = Pmem.Region.store
end

module A = Palloc.Make (Mem)

let fresh ?(size = 1 lsl 16) () =
  let r = Pmem.Region.create ~size () in
  (r, A.init r ~base:64 ~size:(size - 64))

(* ---- unit tests ---- *)

let check_ok a what =
  match A.check a with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: invariants violated: %s" what e

let test_alloc_basic () =
  let r, a = fresh () in
  let p = A.alloc a 16 in
  Alcotest.(check bool) "non-null" true (p > 0);
  Alcotest.(check bool) "usable >= requested" true (A.usable_size a p >= 16);
  Pmem.Region.store r p 123;
  Pmem.Region.store r (p + 8) 456;
  Alcotest.(check int) "payload usable" 123 (Pmem.Region.load r p);
  check_ok a "after alloc"

let test_alloc_distinct_no_overlap () =
  let _, a = fresh () in
  let ps = List.init 50 (fun i -> (A.alloc a (8 * (1 + (i mod 7))), 8 * (1 + (i mod 7)))) in
  (* payload intervals must be pairwise disjoint *)
  let rec pairs = function
    | [] -> ()
    | (p, n) :: rest ->
      List.iter
        (fun (q, m) ->
          let disjoint = p + n <= q || q + m <= p in
          if not disjoint then
            Alcotest.failf "overlap: [%d,%d) and [%d,%d)" p (p + n) q (q + m))
        rest;
      pairs rest
  in
  pairs ps;
  check_ok a "after many allocs"

let test_free_and_reuse () =
  let _, a = fresh () in
  let p = A.alloc a 64 in
  let used = A.used_bytes a in
  A.free a p;
  check_ok a "after free";
  let q = A.alloc a 64 in
  Alcotest.(check int) "freed chunk reused" p q;
  Alcotest.(check int) "no growth" used (A.used_bytes a)

let test_free_all_returns_to_start () =
  let _, a = fresh () in
  let initial = A.used_bytes a in
  let ps = List.init 20 (fun i -> A.alloc a (16 + (8 * i))) in
  List.iter (A.free a) ps;
  check_ok a "after freeing everything";
  Alcotest.(check int) "all space returned to the frontier" initial
    (A.used_bytes a)

let test_coalescing_forward_backward () =
  let _, a = fresh () in
  let p1 = A.alloc a 32 in
  let p2 = A.alloc a 32 in
  let p3 = A.alloc a 32 in
  let _guard = A.alloc a 32 in
  (* free middle, then left (backward merge), then right (forward merge) *)
  A.free a p2;
  check_ok a "hole in the middle";
  A.free a p1;
  check_ok a "backward coalesce";
  A.free a p3;
  check_ok a "forward coalesce";
  (* the coalesced block must satisfy a request of the combined size *)
  let big = A.alloc a 100 in
  Alcotest.(check int) "coalesced block reused" p1 big;
  check_ok a "after reusing coalesced block"

let test_split_large_chunk () =
  let _, a = fresh () in
  let p = A.alloc a 256 in
  A.free a p;
  let q = A.alloc a 16 in
  Alcotest.(check int) "small alloc carved from the freed chunk" p q;
  check_ok a "after split";
  (* remainder is still usable *)
  let _r2 = A.alloc a 128 in
  check_ok a "after allocating the remainder"

(* Invalid frees (outside any transaction: the raw allocator level) are
   detected before any metadata is modified and surface as the typed
   Invalid_free, never a crash or silent corruption. *)
let expect_invalid_free what f =
  match f () with
  | exception Palloc.Invalid_free _ -> ()
  | () -> Alcotest.failf "%s not detected" what

let test_double_free_detected () =
  let _, a = fresh () in
  let p = A.alloc a 16 in
  A.free a p;
  expect_invalid_free "double free" (fun () -> A.free a p);
  check_ok a "arena untouched by rejected double free"

let test_invalid_free_variants () =
  let _, a = fresh () in
  let p = A.alloc a 64 in
  let _guard = A.alloc a 64 in
  expect_invalid_free "misaligned pointer" (fun () -> A.free a (p + 4));
  expect_invalid_free "interior pointer" (fun () -> A.free a (p + 16));
  expect_invalid_free "offset before the heap" (fun () -> A.free a 8);
  expect_invalid_free "offset past the heap" (fun () -> A.free a (1 lsl 30));
  check_ok a "arena untouched by rejected frees";
  (* the probed block is still live and freeable exactly once *)
  A.free a p;
  check_ok a "valid free still works";
  (* a stale pointer to a chunk that coalescing absorbed is caught too *)
  expect_invalid_free "stale pointer after coalesce" (fun () -> A.free a p)

let test_out_of_memory () =
  let _, a = fresh ~size:2048 () in
  let last = ref 0 in
  (match
     for _ = 1 to 1_000 do
       last := A.alloc a 64
     done
   with
   | exception Palloc.Out_of_memory { requested; available } ->
     Alcotest.(check bool) "carries sizes" true
       (requested >= 64 && available >= 0)
   | () -> Alcotest.fail "expected Out_of_memory");
  check_ok a "arena intact after exhaustion";
  (* exhaustion is recoverable: freeing makes space again *)
  A.free a !last;
  Alcotest.(check int) "freed space reused" !last (A.alloc a 64);
  check_ok a "usable after exhaustion"

let test_attach () =
  let r, a = fresh () in
  let p = A.alloc a 40 in
  Pmem.Region.store r p 999;
  let a2 = A.attach r ~base:64 in
  Alcotest.(check int) "state visible after attach" 999 (Pmem.Region.load r p);
  Alcotest.(check int) "used bytes preserved" (A.used_bytes a)
    (A.used_bytes a2);
  check_ok a2 "after attach"

let test_attach_bad_magic () =
  let r = Pmem.Region.create ~size:4096 () in
  (match A.attach r ~base:64 with
   | exception Palloc.Corrupt _ -> ()
   | _ -> Alcotest.fail "expected Corrupt on unformatted arena")

let test_bin_index_monotone () =
  let last = ref (-1) in
  let sizes = List.init 200 (fun i -> 32 + (16 * i)) in
  List.iter
    (fun s ->
      let b = Palloc.bin_index s in
      Alcotest.(check bool)
        (Printf.sprintf "bin_index %d monotone" s)
        true (b >= !last);
      last := b)
    sizes;
  Alcotest.(check bool) "within range" true (!last < Palloc.nbins)

(* ---- property test: random alloc/free interleavings ---- *)

(* Interpret a script of operations; after every step the full structural
   check must pass, live payloads must hold their fingerprints, and frees
   must target live chunks only. *)
let run_script script =
  let r, a = fresh ~size:(1 lsl 15) () in
  let live = ref [] in (* (payload, size, fingerprint) *)
  let fingerprint p = (p * 31) land 0xFFFF in
  let step op =
    match op with
    | `Alloc n ->
      (match A.alloc a n with
       | p ->
         (* write a fingerprint into the first word *)
         Pmem.Region.store r p (fingerprint p);
         live := (p, n) :: !live
       | exception Palloc.Out_of_memory _ -> ())
    | `Free i ->
      (match !live with
       | [] -> ()
       | l ->
         let idx = i mod List.length l in
         let p, _ = List.nth l idx in
         A.free a p;
         live := List.filteri (fun j _ -> j <> idx) l)
  in
  List.iter
    (fun op ->
      step op;
      (match A.check a with
       | Ok () -> ()
       | Error e -> QCheck.Test.fail_reportf "invariant: %s" e);
      List.iter
        (fun (p, _) ->
          if Pmem.Region.load r p <> fingerprint p then
            QCheck.Test.fail_reportf "chunk %d clobbered" p)
        !live)
    script;
  true

let prop_random_alloc_free =
  let open QCheck in
  let op =
    Gen.(
      frequency
        [ (3, map (fun n -> `Alloc (1 + (n mod 200))) nat);
          (2, map (fun i -> `Free i) nat) ])
  in
  Test.make ~count:60 ~name:"random alloc/free keeps invariants"
    (make ~print:(fun l -> Printf.sprintf "<script of %d ops>" (List.length l))
       Gen.(list_size (int_bound 120) op))
    run_script

let suite =
  let tc = Alcotest.test_case in
  [ tc "alloc basics" `Quick test_alloc_basic;
    tc "allocations never overlap" `Quick test_alloc_distinct_no_overlap;
    tc "free and reuse" `Quick test_free_and_reuse;
    tc "free all returns space" `Quick test_free_all_returns_to_start;
    tc "coalescing" `Quick test_coalescing_forward_backward;
    tc "splitting" `Quick test_split_large_chunk;
    tc "double free detected" `Quick test_double_free_detected;
    tc "invalid free variants" `Quick test_invalid_free_variants;
    tc "out of memory" `Quick test_out_of_memory;
    tc "attach" `Quick test_attach;
    tc "attach bad magic" `Quick test_attach_bad_magic;
    tc "bin_index monotone" `Quick test_bin_index_monotone ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_random_alloc_free ]

let () = Alcotest.run "palloc" [ ("palloc", suite) ]
