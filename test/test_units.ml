(* Unit tests for the smaller supporting modules: the volatile redo log,
   fence profiles, workload generation, the engine's commit decomposition
   and RomulusLR's synthetic-pointer bookkeeping. *)

(* ---- Redo_log ---- *)

let entries_of l =
  let acc = ref [] in
  Romulus.Redo_log.iter l (fun ~off ~len -> acc := (off, len) :: !acc);
  List.rev !acc

let test_redo_log_basics () =
  let l = Romulus.Redo_log.create () in
  Alcotest.(check bool) "empty" true (Romulus.Redo_log.is_empty l);
  Romulus.Redo_log.add l ~off:64 ~len:8;
  Romulus.Redo_log.add l ~off:128 ~len:8;
  Alcotest.(check int) "two entries" 2 (Romulus.Redo_log.entries l);
  Alcotest.(check (list (pair int int))) "order preserved"
    [ (64, 8); (128, 8) ] (entries_of l);
  Alcotest.(check int) "bytes" 16 (Romulus.Redo_log.bytes l)

let test_redo_log_dedup () =
  let l = Romulus.Redo_log.create () in
  for _ = 1 to 1_000 do
    Romulus.Redo_log.add l ~off:64 ~len:8
  done;
  Alcotest.(check int) "word stores dedup" 1 (Romulus.Redo_log.entries l);
  (* ranges are appended as-is *)
  Romulus.Redo_log.add l ~off:64 ~len:16;
  Romulus.Redo_log.add l ~off:64 ~len:16;
  Alcotest.(check int) "ranges append" 3 (Romulus.Redo_log.entries l)

let test_redo_log_clear_resets_dedup () =
  let l = Romulus.Redo_log.create () in
  Romulus.Redo_log.add l ~off:8 ~len:8;
  Romulus.Redo_log.clear l;
  Alcotest.(check bool) "cleared" true (Romulus.Redo_log.is_empty l);
  Romulus.Redo_log.add l ~off:8 ~len:8;
  Alcotest.(check int) "dedup forgets cleared entries" 1
    (Romulus.Redo_log.entries l)

let test_redo_log_growth () =
  let l = Romulus.Redo_log.create () in
  for i = 0 to 9_999 do
    Romulus.Redo_log.add l ~off:(8 * i) ~len:8
  done;
  Alcotest.(check int) "ten thousand entries" 10_000
    (Romulus.Redo_log.entries l);
  Alcotest.(check int) "bytes" 80_000 (Romulus.Redo_log.bytes l)

let test_redo_log_zero_len_ignored () =
  let l = Romulus.Redo_log.create () in
  Romulus.Redo_log.add l ~off:0 ~len:0;
  Alcotest.(check bool) "zero-length ranges dropped" true
    (Romulus.Redo_log.is_empty l)

(* The open-addressed dedup table: grows past its initial size without
   losing membership, handles offset 0, and forgets everything on clear
   (including after a transaction large enough to force a shrink). *)
let test_redo_log_dedup_table_growth () =
  let l = Romulus.Redo_log.create () in
  let n = 5_000 in
  for i = 0 to n - 1 do
    Romulus.Redo_log.add l ~off:(8 * i) ~len:8
  done;
  Alcotest.(check int) "all distinct words logged" n
    (Romulus.Redo_log.entries l);
  (* a second pass over every offset is fully deduplicated, across the
     table resizes the first pass forced *)
  for i = 0 to n - 1 do
    Romulus.Redo_log.add l ~off:(8 * i) ~len:8
  done;
  Alcotest.(check int) "second pass fully deduplicated" n
    (Romulus.Redo_log.entries l);
  Romulus.Redo_log.clear l;
  Alcotest.(check bool) "cleared" true (Romulus.Redo_log.is_empty l);
  (* after the clear (which may shrink the table) dedup still works *)
  for _ = 1 to 3 do
    Romulus.Redo_log.add l ~off:0 ~len:8;
    Romulus.Redo_log.add l ~off:8 ~len:8
  done;
  Alcotest.(check (list (pair int int))) "offset 0 deduplicates too"
    [ (0, 8); (8, 8) ] (entries_of l)

(* Random word/range adds behave exactly like a Hashtbl-based model. *)
let prop_redo_log_dedup_model =
  let open QCheck in
  Test.make ~count:300 ~name:"redo log: dedup matches hashtable model"
    (list (pair (int_bound 2_000) (int_bound 3)))
    (fun adds ->
      let l = Romulus.Redo_log.create () in
      let model = Hashtbl.create 64 in
      let expected = ref [] in
      List.iter
        (fun (word, kind) ->
          let off = 8 * word in
          match kind with
          | 0 | 1 ->
            Romulus.Redo_log.add l ~off ~len:8;
            if not (Hashtbl.mem model off) then begin
              Hashtbl.add model off ();
              expected := (off, 8) :: !expected
            end
          | 2 ->
            Romulus.Redo_log.add l ~off ~len:24;
            expected := (off, 24) :: !expected
          | _ ->
            Romulus.Redo_log.add l ~off ~len:0)
        adds;
      entries_of l = List.rev !expected)

(* ---- Redo_log.coalesce ---- *)

let test_coalesce_merges_adjacent () =
  let l = Romulus.Redo_log.create () in
  Romulus.Redo_log.add l ~off:72 ~len:8;
  Romulus.Redo_log.add l ~off:64 ~len:8;
  Romulus.Redo_log.add l ~off:80 ~len:8;
  Romulus.Redo_log.coalesce l;
  Alcotest.(check (list (pair int int))) "adjacent words merge and sort"
    [ (64, 24) ] (entries_of l)

let test_coalesce_merges_overlap_and_containment () =
  let l = Romulus.Redo_log.create () in
  Romulus.Redo_log.add l ~off:100 ~len:50;
  Romulus.Redo_log.add l ~off:120 ~len:10;   (* contained *)
  Romulus.Redo_log.add l ~off:140 ~len:40;   (* overlapping tail *)
  Romulus.Redo_log.add l ~off:300 ~len:8;    (* disjoint *)
  Romulus.Redo_log.coalesce l;
  Alcotest.(check (list (pair int int))) "overlaps collapse"
    [ (100, 80); (300, 8) ] (entries_of l)

let test_coalesce_keeps_disjoint_and_is_idempotent () =
  let l = Romulus.Redo_log.create () in
  Romulus.Redo_log.add l ~off:200 ~len:8;
  Romulus.Redo_log.add l ~off:64 ~len:8;
  (* a one-byte gap is NOT adjacency: the ranges must stay separate *)
  Romulus.Redo_log.add l ~off:73 ~len:7;
  Romulus.Redo_log.coalesce l;
  let once = entries_of l in
  Alcotest.(check (list (pair int int))) "gap preserved"
    [ (64, 8); (73, 7); (200, 8) ] once;
  Romulus.Redo_log.coalesce l;
  Alcotest.(check (list (pair int int))) "idempotent" once (entries_of l);
  Romulus.Redo_log.clear l;
  Romulus.Redo_log.coalesce l;
  Alcotest.(check bool) "empty log is a no-op" true
    (Romulus.Redo_log.is_empty l)

(* Property: coalescing yields a sorted list of pairwise disjoint,
   non-adjacent intervals covering exactly the union of the added
   ranges. *)
let coalesce_prop =
  let range = QCheck.(pair (int_bound 500) (int_range 1 64)) in
  QCheck.Test.make ~count:500 ~name:"redo log: coalesce covers the union"
    QCheck.(list_of_size Gen.(int_range 1 40) range)
    (fun ranges ->
      let l = Romulus.Redo_log.create () in
      List.iter (fun (off, len) -> Romulus.Redo_log.add l ~off ~len) ranges;
      Romulus.Redo_log.coalesce l;
      let out = entries_of l in
      (* sorted, disjoint, non-adjacent *)
      let rec well_formed = function
        | (o1, l1) :: ((o2, _) :: _ as tl) ->
          o1 + l1 < o2 && well_formed tl
        | [ _ ] | [] -> true
      in
      if not (well_formed out) then
        QCheck.Test.fail_report "output not sorted/disjoint/non-adjacent";
      (* exact byte-set cover *)
      let bound = 600 in
      let mark ranges =
        let bs = Array.make bound false in
        List.iter
          (fun (off, len) ->
            for i = off to off + len - 1 do
              bs.(i) <- true
            done)
          ranges;
        bs
      in
      mark ranges = mark out)

(* Each store marks its line dirty; commit_main write-backs every dirty
   line exactly once, so a transaction touching few lines issues far
   fewer pwbs than the seed's pwb-per-store path. *)
let test_deferred_flush_fewer_pwbs () =
  let run eager =
    let r = Pmem.Region.create ~size:(1 lsl 16) () in
    let e = Romulus.Engine.create ~mode:Romulus.Engine.Logged r in
    Romulus.Engine.configure ~eager_pwb:eager e;
    let s = Pmem.Region.stats r in
    let before = Pmem.Stats.snapshot s in
    Romulus.Engine.begin_tx e;
    let obj = Romulus.Engine.alloc e 64 in
    for i = 0 to 7 do
      Romulus.Engine.store e (obj + (8 * i)) (100 + i)
    done;
    Romulus.Engine.set_root e 0 obj;
    Romulus.Engine.end_tx e;
    let d = Pmem.Stats.since ~now:s ~past:before in
    (* same durable result either way *)
    Pmem.Region.crash r Pmem.Region.Drop_all;
    Romulus.Engine.recover e;
    Alcotest.(check int) "durable" 107
      (Romulus.Engine.load e (Romulus.Engine.get_root e 0 + 56));
    d.Pmem.Stats.pwbs
  in
  let eager = run true and deferred = run false in
  if deferred >= eager then
    Alcotest.failf "deferred flushing issued %d pwbs, eager %d" deferred eager

(* In Logged mode, replicate does one Region.copy per log entry; after
   coalescing, adjacent word entries collapse so it does one copy per
   maximal interval. *)
let test_coalesced_replication_fewer_copies () =
  let run coalesce =
    let r = Pmem.Region.create ~size:(1 lsl 16) () in
    let e = Romulus.Engine.create ~mode:Romulus.Engine.Logged r in
    Romulus.Engine.configure ~coalesce e;
    Romulus.Engine.begin_tx e;
    let obj = Romulus.Engine.alloc e 64 in
    Romulus.Engine.set_root e 0 obj;
    Romulus.Engine.end_tx e;
    let s = Pmem.Region.stats r in
    let before = Pmem.Stats.snapshot s in
    Romulus.Engine.begin_tx e;
    for i = 0 to 7 do
      Romulus.Engine.store e (obj + (8 * i)) i
    done;
    Romulus.Engine.end_tx e;
    (Pmem.Stats.since ~now:s ~past:before).Pmem.Stats.copy_calls
  in
  let raw = run false and coalesced = run true in
  Alcotest.(check int) "raw: one copy per word entry" 8 raw;
  Alcotest.(check int) "coalesced: one copy for the whole interval" 1
    coalesced

(* Crash-point sweep over the commit path in all four write-back/coalesce
   configurations: whatever the schedule of pwbs and copies, every crash
   point must recover to either the pre- or post-state. *)
let test_engine_crash_sweep_config ~eager_pwb ~coalesce () =
  let k = ref 0 in
  let completed = ref false in
  while not !completed do
    let r = Pmem.Region.create ~size:(1 lsl 16) () in
    let e = Romulus.Engine.create ~mode:Romulus.Engine.Logged r in
    Romulus.Engine.configure ~eager_pwb ~coalesce e;
    Romulus.Engine.begin_tx e;
    let obj = Romulus.Engine.alloc e 128 in
    Romulus.Engine.store e obj 1;
    Romulus.Engine.store e (obj + 64) 2;
    Romulus.Engine.set_root e 0 obj;
    Romulus.Engine.end_tx e;
    Pmem.Region.set_trap r !k;
    (match
       Romulus.Engine.begin_tx e;
       Romulus.Engine.store e obj 10;
       Romulus.Engine.store e (obj + 8) 11;
       Romulus.Engine.store e (obj + 64) 20;
       Romulus.Engine.end_tx e
     with
     | () ->
       Pmem.Region.clear_trap r;
       completed := true
     | exception Pmem.Region.Crash_point -> ());
    Pmem.Region.crash r (Pmem.Region.Random_subset (!k + 3));
    Romulus.Engine.recover e;
    let base = Romulus.Engine.get_root e 0 in
    let g d = Romulus.Engine.load e (base + d) in
    (match (g 0, g 8, g 64) with
     | 1, _, 2 -> () (* rolled back *)
     | 10, 11, 20 -> () (* committed *)
     | a, b, c ->
       Alcotest.failf "point %d: torn state (%d, %d, %d)" !k a b c);
    incr k;
    if !k > 20_000 then Alcotest.fail "config crash sweep did not terminate"
  done

(* ---- Fence profiles ---- *)

let test_fence_by_name () =
  List.iter
    (fun p ->
      Alcotest.(check string) "round-trips" p.Pmem.Fence.name
        (Pmem.Fence.by_name p.Pmem.Fence.name).Pmem.Fence.name)
    Pmem.Fence.all;
  Alcotest.check_raises "unknown profile"
    (Invalid_argument "Fence.by_name: unknown profile optane") (fun () ->
      ignore (Pmem.Fence.by_name "optane"))

let test_fence_semantics_flags () =
  Alcotest.(check bool) "clflush is ordered" true
    Pmem.Fence.clflush.Pmem.Fence.ordered_pwb;
  Alcotest.(check bool) "clwb is not" false
    Pmem.Fence.clwb.Pmem.Fence.ordered_pwb;
  Alcotest.(check bool) "pcm slower than stt" true
    (Pmem.Fence.pcm.Pmem.Fence.pwb_ns > Pmem.Fence.stt.Pmem.Fence.pwb_ns)

(* ---- Keygen ---- *)

let test_keygen_deterministic () =
  let draw () =
    let g = Workload.Keygen.create ~seed:123 () in
    List.init 20 (fun _ -> Workload.Keygen.int g 1_000)
  in
  Alcotest.(check (list int)) "same seed, same stream" (draw ()) (draw ())

let test_keygen_bounds () =
  let g = Workload.Keygen.create () in
  for _ = 1 to 10_000 do
    let v = Workload.Keygen.int g 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of bounds: %d" v
  done

let test_keygen_spread () =
  (* all buckets of a small range get hit *)
  let g = Workload.Keygen.create ~seed:5 () in
  let seen = Array.make 16 0 in
  for _ = 1 to 10_000 do
    let v = Workload.Keygen.int g 16 in
    seen.(v) <- seen.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 300 then Alcotest.failf "bucket %d starved: %d hits" i c)
    seen

let test_level_key_format () =
  Alcotest.(check int) "16 bytes" 16 (String.length (Workload.Keygen.level_key 7));
  Alcotest.(check string) "zero padded" "0000000000000042"
    (Workload.Keygen.level_key 42);
  Alcotest.(check bool) "ordered" true
    (Workload.Keygen.level_key 9 < Workload.Keygen.level_key 10)

(* ---- engine decomposition (commit_main / replicate / finish_tx) ---- *)

let test_engine_decomposed_commit () =
  let r = Pmem.Region.create ~size:(1 lsl 16) () in
  let e = Romulus.Engine.create ~mode:Romulus.Engine.Logged r in
  Romulus.Engine.begin_tx e;
  let obj = Romulus.Engine.alloc e 16 in
  Romulus.Engine.store e obj 5;
  Romulus.Engine.set_root e 0 obj;
  Romulus.Engine.commit_main e;
  (* after commit_main the effects are durable on main even though back
     has not been updated yet *)
  Pmem.Region.crash r Pmem.Region.Drop_all;
  Romulus.Engine.recover e;
  Alcotest.(check int) "durable after commit_main" 5
    (Romulus.Engine.load e (Romulus.Engine.get_root e 0))

let test_engine_used_span_grows () =
  let r = Pmem.Region.create ~size:(1 lsl 16) () in
  let e = Romulus.Engine.create ~mode:Romulus.Engine.Logged r in
  let s0 = Romulus.Engine.used_span e in
  Romulus.Engine.begin_tx e;
  ignore (Romulus.Engine.alloc e 4096);
  Romulus.Engine.end_tx e;
  Alcotest.(check bool) "span grew by at least the allocation" true
    (Romulus.Engine.used_span e >= s0 + 4096)

let test_engine_mode_accessors () =
  let r = Pmem.Region.create ~size:(1 lsl 16) () in
  let e = Romulus.Engine.create ~mode:Romulus.Engine.Full_copy r in
  Alcotest.(check bool) "mode" true
    (Romulus.Engine.mode e = Romulus.Engine.Full_copy);
  Alcotest.(check bool) "main_size positive" true
    (Romulus.Engine.main_size e > 0);
  Alcotest.(check bool) "not in tx" false (Romulus.Engine.in_tx e)

let test_engine_rejects_nested_begin () =
  let r = Pmem.Region.create ~size:(1 lsl 16) () in
  let e = Romulus.Engine.create ~mode:Romulus.Engine.Logged r in
  Romulus.Engine.begin_tx e;
  (match Romulus.Engine.begin_tx e with
   | exception Invalid_argument _ -> ()
   | () -> Alcotest.fail "nested begin_tx must raise");
  Romulus.Engine.end_tx e

(* A transaction that shrinks the allocation frontier (freeing the chunk
   adjacent to top) must stay crash-atomic in both engine modes: recovery
   sizes its raw copy from the consistent copy's frontier, which differs
   before and after the transaction. *)
let test_engine_shrinking_top_crash_atomic mode () =
  let k = ref 0 in
  let completed = ref false in
  while not !completed do
    let r = Pmem.Region.create ~size:(1 lsl 16) () in
    let e = Romulus.Engine.create ~mode r in
    (* committed state: a small object and a big frontier chunk *)
    Romulus.Engine.begin_tx e;
    let small = Romulus.Engine.alloc e 16 in
    Romulus.Engine.store e small 7;
    Romulus.Engine.set_root e 0 small;
    let big = Romulus.Engine.alloc e 8192 in
    Romulus.Engine.store e big 9;
    Romulus.Engine.set_root e 1 big;
    Romulus.Engine.end_tx e;
    let span_before = Romulus.Engine.used_span e in
    (* the transaction under test frees the frontier chunk (top shrinks)
       and updates the small object *)
    Pmem.Region.set_trap r !k;
    (match
       Romulus.Engine.begin_tx e;
       Romulus.Engine.free e big;
       Romulus.Engine.set_root e 1 0;
       Romulus.Engine.store e small 8;
       Romulus.Engine.end_tx e
     with
     | () ->
       Pmem.Region.clear_trap r;
       completed := true
     | exception Pmem.Region.Crash_point -> ());
    Pmem.Region.crash r (Pmem.Region.Random_subset (!k + 3));
    Romulus.Engine.recover e;
    let v = Romulus.Engine.load e (Romulus.Engine.get_root e 0) in
    let root1 = Romulus.Engine.get_root e 1 in
    (match (v, root1) with
     | 7, b when b = big ->
       if Romulus.Engine.load e big <> 9 then
         Alcotest.failf "point %d: pre-state lost the big chunk" !k;
       if Romulus.Engine.used_span e < span_before then
         Alcotest.failf "point %d: rolled back but frontier shrank" !k
     | 8, 0 -> () (* post-state: chunk freed *)
     | v, b -> Alcotest.failf "point %d: torn (v=%d root1=%d)" !k v b);
    (match Romulus.Engine.allocator_check e with
     | Ok () -> ()
     | Error msg -> Alcotest.failf "point %d: allocator: %s" !k msg);
    incr k;
    if !k > 20_000 then Alcotest.fail "shrink-crash loop did not terminate"
  done

(* ---- RomulusLR synthetic pointers ---- *)

let test_lr_delta_zero_outside_read () =
  Alcotest.(check int) "no ambient offset" 0 (Romulus.Lr.current_delta ())

let test_lr_reader_addresses_back () =
  let r = Pmem.Region.create ~size:(1 lsl 16) () in
  let p = Romulus.Lr.open_region r in
  let obj =
    Romulus.Lr.update_tx p (fun () ->
        let o = Romulus.Lr.alloc p 16 in
        Romulus.Lr.store p o 77;
        Romulus.Lr.set_root p 0 o;
        o)
  in
  let ms = Romulus.Engine.main_size (Romulus.Lr.engine p) in
  (* steady state: read-only transactions are parked on the back copy *)
  let delta_in_read =
    Romulus.Lr.read_tx p (fun () -> Romulus.Lr.current_delta ())
  in
  Alcotest.(check int) "reader offset = main_size" ms delta_in_read;
  (* scribble on the back copy directly: the reader must see it (it reads
     back), while the writer still sees main *)
  Pmem.Region.store r (obj + ms) 123;
  Alcotest.(check int) "reader reads the back copy" 123
    (Romulus.Lr.read_tx p (fun () -> Romulus.Lr.load p obj));
  Alcotest.(check int) "writer reads main" 77
    (Romulus.Lr.update_tx p (fun () -> Romulus.Lr.load p obj))

let test_lr_update_restores_back () =
  let r = Pmem.Region.create ~size:(1 lsl 16) () in
  let p = Romulus.Lr.open_region r in
  let obj =
    Romulus.Lr.update_tx p (fun () ->
        let o = Romulus.Lr.alloc p 16 in
        Romulus.Lr.store p o 1;
        Romulus.Lr.set_root p 0 o;
        o)
  in
  Romulus.Lr.update_tx p (fun () -> Romulus.Lr.store p obj 2);
  (* after the update transaction, both copies hold the new value *)
  let ms = Romulus.Engine.main_size (Romulus.Lr.engine p) in
  Alcotest.(check int) "main updated" 2 (Pmem.Region.load r obj);
  Alcotest.(check int) "back replicated" 2 (Pmem.Region.load r (obj + ms))

(* A PTM's state written to a file mid-transaction reopens in a fresh
   "process" with recovery, exactly like an mmap'd region would. *)
let test_ptm_survives_file_round_trip () =
  let path = Filename.temp_file "romulus" ".pmem" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let module P = Romulus.Logged in
  let r = Pmem.Region.create ~size:(1 lsl 16) () in
  let p = P.open_region r in
  let obj =
    P.update_tx p (fun () ->
        let o = P.alloc p 16 in
        P.store p o 314;
        P.set_root p 0 o;
        o)
  in
  (* die mid-transaction, save the (persistent) state the disk would
     hold, and reopen it elsewhere *)
  Pmem.Region.set_trap r 6;
  (match P.update_tx p (fun () -> P.store p obj 999) with
   | () -> Alcotest.fail "trap did not fire"
   | exception Pmem.Region.Crash_point -> ());
  Pmem.Region.crash r Pmem.Region.Drop_all;
  Pmem.Region.save_to_file r path;
  let r2 = Pmem.Region.load_from_file path in
  let p2 = P.open_region r2 in
  Alcotest.(check int) "committed value survives the file round-trip" 314
    (P.read_tx p2 (fun () -> P.load p2 (P.get_root p2 0)));
  (* and the new region is fully usable *)
  P.update_tx p2 (fun () -> P.store p2 (P.get_root p2 0) 315);
  Alcotest.(check int) "usable after reopen" 315
    (P.read_tx p2 (fun () -> P.load p2 obj))

(* ---- Stats ---- *)

let test_stats_write_amplification () =
  let s = Pmem.Stats.create () in
  s.Pmem.Stats.nvm_bytes <- 300;
  s.Pmem.Stats.user_bytes <- 100;
  Alcotest.(check (float 0.001)) "amplification" 3.0
    (Pmem.Stats.write_amplification s);
  Pmem.Stats.reset s;
  Alcotest.(check bool) "nan when no user bytes" true
    (Float.is_nan (Pmem.Stats.write_amplification s))

let suite =
  let tc = Alcotest.test_case in
  [ tc "redo log: basics" `Quick test_redo_log_basics;
    tc "redo log: dedup" `Quick test_redo_log_dedup;
    tc "redo log: clear resets dedup" `Quick test_redo_log_clear_resets_dedup;
    tc "redo log: growth" `Quick test_redo_log_growth;
    tc "redo log: zero-length ignored" `Quick test_redo_log_zero_len_ignored;
    tc "redo log: dedup table growth" `Quick
      test_redo_log_dedup_table_growth;
    QCheck_alcotest.to_alcotest prop_redo_log_dedup_model;
    tc "redo log: coalesce merges adjacent" `Quick
      test_coalesce_merges_adjacent;
    tc "redo log: coalesce merges overlaps" `Quick
      test_coalesce_merges_overlap_and_containment;
    tc "redo log: coalesce disjoint + idempotent" `Quick
      test_coalesce_keeps_disjoint_and_is_idempotent;
    QCheck_alcotest.to_alcotest coalesce_prop;
    tc "engine: deferred flush issues fewer pwbs" `Quick
      test_deferred_flush_fewer_pwbs;
    tc "engine: coalesced replication issues fewer copies" `Quick
      test_coalesced_replication_fewer_copies;
    tc "engine: crash sweep (eager, raw)" `Slow
      (test_engine_crash_sweep_config ~eager_pwb:true ~coalesce:false);
    tc "engine: crash sweep (eager, coalesced)" `Slow
      (test_engine_crash_sweep_config ~eager_pwb:true ~coalesce:true);
    tc "engine: crash sweep (deferred, raw)" `Slow
      (test_engine_crash_sweep_config ~eager_pwb:false ~coalesce:false);
    tc "engine: crash sweep (deferred, coalesced)" `Slow
      (test_engine_crash_sweep_config ~eager_pwb:false ~coalesce:true);
    tc "fence: by_name" `Quick test_fence_by_name;
    tc "fence: semantics flags" `Quick test_fence_semantics_flags;
    tc "keygen: deterministic" `Quick test_keygen_deterministic;
    tc "keygen: bounds" `Quick test_keygen_bounds;
    tc "keygen: spread" `Quick test_keygen_spread;
    tc "keygen: level keys" `Quick test_level_key_format;
    tc "engine: decomposed commit durable" `Quick
      test_engine_decomposed_commit;
    tc "engine: used span grows" `Quick test_engine_used_span_grows;
    tc "engine: accessors" `Quick test_engine_mode_accessors;
    tc "engine: nested begin rejected" `Quick test_engine_rejects_nested_begin;
    tc "engine: shrinking frontier crash-atomic (logged)" `Slow
      (test_engine_shrinking_top_crash_atomic Romulus.Engine.Logged);
    tc "engine: shrinking frontier crash-atomic (full copy)" `Slow
      (test_engine_shrinking_top_crash_atomic Romulus.Engine.Full_copy);
    tc "lr: delta zero outside reads" `Quick test_lr_delta_zero_outside_read;
    tc "lr: reader addresses back copy" `Quick test_lr_reader_addresses_back;
    tc "lr: update restores back" `Quick test_lr_update_restores_back;
    tc "ptm survives file round-trip" `Quick
      test_ptm_survives_file_round_trip;
    tc "stats: write amplification" `Quick test_stats_write_amplification ]

let () = Alcotest.run "units" [ ("units", suite) ]
