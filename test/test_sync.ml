(* Real-domain tests for the synchronization substrate.  The container has
   a single core, so these exercise correctness under preemptive
   interleaving rather than parallel speedup. *)

open Sync_prims

let spawn_all fs = List.map Domain.spawn fs
let join_all ds = List.iter Domain.join ds

(* ---- Tid ---- *)

let test_tid_with_slot_distinct () =
  (* all four domains hold their slot at the same time: the ids they were
     given must be pairwise distinct *)
  let seen = Atomic.make [] in
  let arrived = Atomic.make 0 in
  let body () =
    Tid.with_slot (fun tid ->
        let rec push () =
          let old = Atomic.get seen in
          if not (Atomic.compare_and_set seen old (tid :: old)) then push ()
        in
        push ();
        Atomic.incr arrived;
        while Atomic.get arrived < 4 do
          Domain.cpu_relax ()
        done)
  in
  join_all (spawn_all [ body; body; body; body ]);
  let ids = Atomic.get seen in
  Alcotest.(check int) "four registrations" 4 (List.length ids);
  Alcotest.(check int) "all distinct" 4
    (List.length (List.sort_uniq compare ids))

let test_tid_reuse_after_release () =
  (* sequential domains can reuse slots: the pool never runs out *)
  for _ = 1 to 300 do
    Domain.join (Domain.spawn (fun () -> Tid.with_slot (fun tid -> ignore tid)))
  done

let test_tid_nested_with_slot () =
  Tid.with_slot (fun a -> Tid.with_slot (fun b ->
      Alcotest.(check int) "nested reuses the same slot" a b))

(* ---- Spinlock ---- *)

let test_spinlock_mutual_exclusion () =
  let lock = Spinlock.create () in
  let counter = ref 0 in
  let worker () =
    for _ = 1 to 2_000 do
      Spinlock.lock lock;
      (* non-atomic increment: only safe if the lock works *)
      counter := !counter + 1;
      Spinlock.unlock lock
    done
  in
  join_all (spawn_all [ worker; worker; worker; worker ]);
  Alcotest.(check int) "all increments kept" 8_000 !counter

let test_spinlock_try_lock () =
  let lock = Spinlock.create () in
  Alcotest.(check bool) "acquire free lock" true (Spinlock.try_lock lock);
  Alcotest.(check bool) "fail on held lock" false (Spinlock.try_lock lock);
  Spinlock.unlock lock;
  Alcotest.(check bool) "acquire after unlock" true (Spinlock.try_lock lock)

(* ---- Read_indicator ---- *)

let test_read_indicator () =
  let ri = Read_indicator.create () in
  Alcotest.(check bool) "initially empty" true (Read_indicator.is_empty ri);
  Read_indicator.arrive ri 3;
  Read_indicator.arrive ri 3;
  (* counting: re-entrant *)
  Alcotest.(check bool) "occupied" false (Read_indicator.is_empty ri);
  Read_indicator.depart ri 3;
  Alcotest.(check bool) "still occupied after one depart" false
    (Read_indicator.is_empty ri);
  Read_indicator.depart ri 3;
  Alcotest.(check bool) "empty again" true (Read_indicator.is_empty ri)

(* ---- C-RW-WP ---- *)

(* The writer maintains the invariant a = b; readers must never observe a
   torn pair. *)
let test_crwwp_no_torn_reads () =
  let lock = Crwwp.create () in
  let a = ref 0 and b = ref 0 in
  let torn = Atomic.make false in
  let writer () =
    for i = 1 to 2_000 do
      Crwwp.with_write_lock lock (fun () ->
          a := i;
          b := i)
    done
  in
  let reader () =
    Tid.with_slot (fun tid ->
        for _ = 1 to 2_000 do
          Crwwp.with_read_lock lock tid (fun () ->
              let x = !a and y = !b in
              if x <> y then Atomic.set torn true)
        done)
  in
  join_all (spawn_all [ writer; reader; reader ]);
  Alcotest.(check bool) "no torn read" false (Atomic.get torn)

let test_crwwp_writer_excludes_writer () =
  let lock = Crwwp.create () in
  let counter = ref 0 in
  let writer () =
    for _ = 1 to 2_000 do
      Crwwp.with_write_lock lock (fun () -> counter := !counter + 1)
    done
  in
  join_all (spawn_all [ writer; writer; writer ]);
  Alcotest.(check int) "writer mutual exclusion" 6_000 !counter

(* ---- Flat combining ---- *)

let test_flat_combining_counts () =
  let fc = Flat_combining.create () in
  let counter = ref 0 in
  let exec run = run () in
  let worker () =
    Tid.with_slot (fun _ ->
        for _ = 1 to 1_000 do
          Flat_combining.apply fc (fun () -> counter := !counter + 1) ~exec
        done)
  in
  join_all (spawn_all [ worker; worker; worker; worker ]);
  Alcotest.(check int) "every request executed once" 4_000 !counter;
  Alcotest.(check int) "requests served" 4_000
    (Flat_combining.requests_served fc);
  Alcotest.(check bool) "combining happened (batches <= requests)" true
    (Flat_combining.batches fc <= 4_000)

let test_flat_combining_result_and_exn () =
  let fc = Flat_combining.create () in
  let exec run = run () in
  let result = ref 0 in
  Flat_combining.apply fc (fun () -> result := 41 + 1) ~exec;
  Alcotest.(check int) "closure ran" 42 !result;
  Alcotest.check_raises "exception propagates to requester" Exit (fun () ->
      Flat_combining.apply fc (fun () -> raise Exit) ~exec)

let test_flat_combining_exec_failure_hits_all () =
  let fc = Flat_combining.create () in
  Alcotest.check_raises "exec failure reaches requester" Not_found (fun () ->
      Flat_combining.apply fc (fun () -> ()) ~exec:(fun _ -> raise Not_found));
  (* the array must be clean again afterwards *)
  let ok = ref false in
  Flat_combining.apply fc (fun () -> ok := true) ~exec:(fun run -> run ());
  Alcotest.(check bool) "usable after failure" true !ok

(* Combiners scan only up to the registration watermark, not the whole
   Tid.max_threads slot array. *)
let test_flat_combining_scan_watermark () =
  let fc = Flat_combining.create () in
  Alcotest.(check int) "no registrations, nothing to scan" 0
    (Flat_combining.scan_length fc);
  let exec run = run () in
  Tid.with_slot (fun tid ->
      Flat_combining.apply fc (fun () -> ()) ~exec;
      let expect = tid + 1 in
      Alcotest.(check int) "watermark = highest registered tid + 1" expect
        (Flat_combining.scan_length fc);
      Alcotest.(check bool) "far below the slot-array size" true
        (expect < Tid.max_threads);
      let b0 = Flat_combining.batches fc in
      let s0 = Flat_combining.slots_scanned fc in
      Flat_combining.apply fc (fun () -> ()) ~exec;
      let batches = Flat_combining.batches fc - b0 in
      Alcotest.(check int) "each batch scans only the live prefix"
        (s0 + (batches * expect))
        (Flat_combining.slots_scanned fc);
      (* A high watermark with a single pending request: the pending
         counter stops the combiner's scan at the lone request instead
         of walking every empty slot up to the watermark. *)
      let ready = Atomic.make 0 and release = Atomic.make false in
      let holders =
        List.init 6 (fun _ ->
            Domain.spawn (fun () ->
                Tid.with_slot (fun _ ->
                    Flat_combining.apply fc (fun () -> ()) ~exec;
                    Atomic.incr ready;
                    while not (Atomic.get release) do
                      Domain.cpu_relax ()
                    done)))
      in
      while Atomic.get ready < 6 do Domain.cpu_relax () done;
      let wm = Flat_combining.scan_length fc in
      Alcotest.(check bool) "watermark raised by the helpers" true
        (wm > expect);
      let s1 = Flat_combining.slots_scanned fc in
      Flat_combining.apply fc (fun () -> ()) ~exec;
      let delta = Flat_combining.slots_scanned fc - s1 in
      Alcotest.(check bool) "empty-slot scan stops early" true (delta < wm);
      Alcotest.(check int) "scanned only up to the lone request" expect delta;
      Atomic.set release true;
      List.iter Domain.join holders)

(* ---- run_rounds: the per-round raiser rule, standalone ----

   The group-commit front-end reuses the combiner's raiser protocol one
   level up: whole logical transactions are nested inside one coalesced
   engine transaction ([exec] models begin/abort/commit), and a raising
   logical tx must be answered alone with its exception while the
   survivors retry as a new group. *)

let test_run_rounds_all_commit_one_exec () =
  let execs = ref 0 in
  let log = ref [] in
  let answers = ref [] in
  Flat_combining.run_rounds
    [ (1, fun () -> log := 1 :: !log);
      (2, fun () -> log := 2 :: !log);
      (3, fun () -> log := 3 :: !log) ]
    ~exec:(fun run -> incr execs; run ())
    ~answer:(fun k r -> answers := (k, r) :: !answers);
  Alcotest.(check int) "one engine round for the whole group" 1 !execs;
  Alcotest.(check (list int)) "ran in submission order" [ 1; 2; 3 ]
    (List.rev !log);
  Alcotest.(check int) "every tx answered" 3 (List.length !answers);
  List.iter
    (fun (_, r) -> Alcotest.(check bool) "answered ok" true (r = None))
    !answers

(* A raising logical tx: the attempt's effects are discarded (exec
   aborts), the raiser is answered alone, and the survivors — including
   those that already ran in the poisoned attempt — commit in a fresh
   round. *)
let test_run_rounds_raiser_fails_alone () =
  let execs = ref 0 in
  let committed = ref [] in
  let answers = Hashtbl.create 8 in
  let staged = ref [] in
  let exec run =
    incr execs;
    staged := [];
    run ();
    (* commit point: only a round that completes publishes its effects *)
    committed := !committed @ List.rev !staged
  in
  let tx k = (k, fun () -> if k = 2 then raise Exit else staged := k :: !staged) in
  Flat_combining.run_rounds
    [ tx 1; tx 2; tx 3 ]
    ~exec
    ~answer:(fun k r -> Hashtbl.replace answers k r);
  Alcotest.(check int) "poisoned round + survivor retry" 2 !execs;
  Alcotest.(check (list int)) "survivors committed once, in order" [ 1; 3 ]
    !committed;
  Alcotest.(check bool) "raiser answered with its exception" true
    (Hashtbl.find answers 2 = Some Exit);
  Alcotest.(check bool) "survivors answered ok" true
    (Hashtbl.find answers 1 = None && Hashtbl.find answers 3 = None)

(* Every tx raising: one round per raiser, each answered with its own
   exception, and the loop terminates. *)
let test_run_rounds_all_raise () =
  let execs = ref 0 in
  let answers = Hashtbl.create 8 in
  Flat_combining.run_rounds
    [ (1, fun () -> raise (Failure "a"));
      (2, fun () -> raise (Failure "b")) ]
    ~exec:(fun run -> incr execs; run ())
    ~answer:(fun k r -> Hashtbl.replace answers k r);
  Alcotest.(check int) "one round per raiser" 2 !execs;
  Alcotest.(check bool) "each answered with its own failure" true
    (Hashtbl.find answers 1 = Some (Failure "a")
     && Hashtbl.find answers 2 = Some (Failure "b"))

(* A failure of the engine machinery itself (after every logical tx ran:
   no identifiable raiser) answers the whole round. *)
let test_run_rounds_exec_failure_hits_round () =
  let answers = Hashtbl.create 8 in
  Flat_combining.run_rounds
    [ (1, fun () -> ()); (2, fun () -> ()) ]
    ~exec:(fun run -> run (); raise Not_found)
    ~answer:(fun k r -> Hashtbl.replace answers k r);
  Alcotest.(check bool) "whole round answered with the commit failure" true
    (Hashtbl.find answers 1 = Some Not_found
     && Hashtbl.find answers 2 = Some Not_found)

(* Duplicate keys are told apart by physical identity: the raiser's own
   cell is answered with the exception, its twin commits. *)
let test_run_rounds_duplicate_keys () =
  let execs = ref 0 in
  let oks = ref 0 and errs = ref 0 in
  let first = ref true in
  Flat_combining.run_rounds
    [ (9, fun () -> if !first then (first := false; raise Exit));
      (9, fun () -> ()) ]
    ~exec:(fun run -> incr execs; run ())
    ~answer:(fun k r ->
      Alcotest.(check int) "key preserved" 9 k;
      match r with None -> incr oks | Some _ -> incr errs);
  Alcotest.(check int) "two rounds" 2 !execs;
  Alcotest.(check int) "twin committed" 1 !oks;
  Alcotest.(check int) "raiser answered alone" 1 !errs

(* ---- Left-Right ---- *)

(* Each instance keeps the invariant fst = snd; the writer mutates only the
   instance readers are not on, so readers must never see a torn pair. *)
let test_left_right_no_torn_reads () =
  let lr = Left_right.create () in
  let inst = [| [| 0; 0 |]; [| 0; 0 |] |] in
  let torn = Atomic.make false in
  let stop = Atomic.make false in
  let writer () =
    for i = 1 to 1_000 do
      Left_right.write lr (fun side ->
          inst.(side).(0) <- i;
          (* widen the race window *)
          for _ = 1 to 50 do Domain.cpu_relax () done;
          inst.(side).(1) <- i)
    done;
    Atomic.set stop true
  in
  let reader () =
    Tid.with_slot (fun tid ->
        while not (Atomic.get stop) do
          Left_right.read lr tid (fun side ->
              let x = inst.(side).(0) in
              let y = inst.(side).(1) in
              if x <> y then Atomic.set torn true)
        done)
  in
  join_all (spawn_all [ writer; reader; reader ]);
  Alcotest.(check bool) "no torn read" false (Atomic.get torn);
  Alcotest.(check int) "both instances converged (0)" 1_000 inst.(0).(0);
  Alcotest.(check int) "both instances converged (1)" 1_000 inst.(1).(1)

let test_left_right_reader_sees_latest_committed () =
  let lr = Left_right.create () in
  let inst = [| ref 0; ref 0 |] in
  Left_right.write lr (fun side -> inst.(side) := 7);
  Tid.with_slot (fun tid ->
      let v = Left_right.read lr tid (fun side -> !(inst.(side))) in
      Alcotest.(check int) "post-write read" 7 v)

let test_left_right_toggle_protocol () =
  let lr = Left_right.create () in
  Alcotest.(check int) "initial instance" 0 (Left_right.which_instance lr);
  Left_right.toggle_lr lr;
  Alcotest.(check int) "toggled" 1 (Left_right.which_instance lr);
  (* no readers: the version toggle must not block *)
  Left_right.toggle_version_and_wait lr;
  Left_right.toggle_lr lr;
  Alcotest.(check int) "toggled back" 0 (Left_right.which_instance lr)

let suite =
  let tc = Alcotest.test_case in
  [ tc "tid: distinct slots" `Quick test_tid_with_slot_distinct;
    tc "tid: slots are reusable" `Slow test_tid_reuse_after_release;
    tc "tid: nested with_slot" `Quick test_tid_nested_with_slot;
    tc "spinlock: mutual exclusion" `Quick test_spinlock_mutual_exclusion;
    tc "spinlock: try_lock" `Quick test_spinlock_try_lock;
    tc "read indicator: counting" `Quick test_read_indicator;
    tc "crwwp: no torn reads" `Quick test_crwwp_no_torn_reads;
    tc "crwwp: writers exclude writers" `Quick test_crwwp_writer_excludes_writer;
    tc "flat combining: all requests once" `Quick test_flat_combining_counts;
    tc "flat combining: results and exceptions" `Quick
      test_flat_combining_result_and_exn;
    tc "flat combining: exec failure" `Quick
      test_flat_combining_exec_failure_hits_all;
    tc "flat combining: scan watermark" `Quick
      test_flat_combining_scan_watermark;
    tc "run_rounds: whole group in one round" `Quick
      test_run_rounds_all_commit_one_exec;
    tc "run_rounds: raiser fails alone, survivors retry" `Quick
      test_run_rounds_raiser_fails_alone;
    tc "run_rounds: every tx raising terminates" `Quick
      test_run_rounds_all_raise;
    tc "run_rounds: commit failure hits the round" `Quick
      test_run_rounds_exec_failure_hits_round;
    tc "run_rounds: duplicate keys by identity" `Quick
      test_run_rounds_duplicate_keys;
    tc "left-right: no torn reads" `Quick test_left_right_no_torn_reads;
    tc "left-right: read after write" `Quick
      test_left_right_reader_sees_latest_committed;
    tc "left-right: toggle protocol" `Quick test_left_right_toggle_protocol ]

let () = Alcotest.run "sync" [ ("sync", suite) ]
