(* Conformance + crash-injection suites for the three Romulus variants,
   plus RomulusLR-specific synthetic-pointer tests. *)

module Basic_suite = Ptm_suite.Make (struct
  include Romulus.Basic

  let exact_fences = Some 4
  let concurrent = true
end)

module Logged_suite = Ptm_suite.Make (struct
  include Romulus.Logged

  let exact_fences = Some 4
  let concurrent = true
end)

module Lr_suite = Ptm_suite.Make (struct
  include Romulus.Lr

  let exact_fences = Some 4
  let concurrent = true
end)

module Seq_suite = Ptm_suite.Make (struct
  include Romulus.Seq_front

  let exact_fences = Some 4
  let concurrent = false
end)

(* LR-specific: a reader parked on the back copy must see consistent data
   through synthetic pointers while a writer mutates main. *)
let test_lr_reader_on_back () =
  let r = Pmem.Region.create ~size:(1 lsl 16) () in
  let module P = Romulus.Lr in
  let p = P.open_region r in
  let obj =
    P.update_tx p (fun () ->
        let o = P.alloc p 16 in
        P.store p o 1;
        P.store p (o + 8) 1;
        P.set_root p 0 o;
        o)
  in
  let torn = Atomic.make false in
  let stop = Atomic.make false in
  let writer () =
    Sync_prims.Tid.with_slot (fun _ ->
        for i = 1 to 300 do
          P.update_tx p (fun () ->
              P.store p obj i;
              P.store p (obj + 8) i)
        done;
        Atomic.set stop true)
  in
  let reader () =
    Sync_prims.Tid.with_slot (fun _ ->
        while not (Atomic.get stop) do
          P.read_tx p (fun () ->
              let o = P.get_root p 0 in
              if P.load p o <> P.load p (o + 8) then Atomic.set torn true)
        done)
  in
  let ds = List.map Domain.spawn [ writer; reader; reader ] in
  List.iter Domain.join ds;
  Alcotest.(check bool) "LR synthetic-pointer reads are consistent" false
    (Atomic.get torn)

(* The redo-log optimization must shrink the replication work: a 1-word
   transaction on RomulusLog copies far fewer bytes than basic Romulus. *)
let test_log_reduces_replication () =
  let open Pmem in
  let bytes_for (module P : Ptm_suite.VARIANT) =
    let r = Region.create ~size:(1 lsl 16) () in
    let p = P.open_region r in
    let obj =
      P.update_tx p (fun () ->
          let o = P.alloc p 4096 in
          P.store p o 0;
          P.set_root p 0 o;
          o)
    in
    let s = Region.stats r in
    let before = Stats.snapshot s in
    P.update_tx p (fun () -> P.store p obj 42);
    (Stats.since ~now:s ~past:before).Stats.nvm_bytes
  in
  let basic =
    bytes_for
      (module struct
        include Romulus.Basic

        let exact_fences = Some 4
        let concurrent = true
      end)
  in
  let logged =
    bytes_for
      (module struct
        include Romulus.Logged

        let exact_fences = Some 4
        let concurrent = true
      end)
  in
  Alcotest.(check bool)
    (Printf.sprintf "logged (%dB) well below basic (%dB)" logged basic)
    true
    (logged * 4 < basic)

(* Exhausting the bounded redo log mid-transaction must abort with the
   typed Tx_aborted{Redo_log.Overflow}: every store already applied rolls
   back, and the engine stays usable once the pressure is gone. *)
let test_redo_log_overflow_typed () =
  let r = Pmem.Region.create ~size:(1 lsl 16) () in
  let module P = Romulus.Logged in
  let p = P.open_region r in
  let stride = 128 and n = 8 in
  let obj =
    P.update_tx p (fun () ->
        let o = P.alloc p (stride * n) in
        for i = 0 to n - 1 do
          P.store p (o + (stride * i)) i
        done;
        P.set_root p 0 o;
        o)
  in
  Romulus.Engine.configure ~redo_capacity:4 (P.engine p);
  (match
     P.update_tx p (fun () ->
         (* n disjoint line-distant ranges: cannot coalesce below the
            4-entry capacity *)
         for i = 0 to n - 1 do
           P.store p (obj + (stride * i)) (100 + i)
         done)
   with
   | exception
       Romulus.Engine.Tx_aborted { cause = Romulus.Redo_log.Overflow _; _ } ->
     ()
   | exception e ->
     Alcotest.failf "expected Tx_aborted{Overflow}, got %s"
       (Printexc.to_string e)
   | () -> Alcotest.fail "overflowing tx must abort");
  (* the stores recorded before the overflow rolled back with the rest *)
  for i = 0 to n - 1 do
    Alcotest.(check int)
      (Printf.sprintf "slot %d rolled back" i)
      i
      (P.read_tx p (fun () -> P.load p (obj + (stride * i))))
  done;
  Romulus.Engine.configure ~redo_capacity:(1 lsl 20) (P.engine p);
  P.update_tx p (fun () -> P.store p obj 42);
  Alcotest.(check int) "usable after overflow" 42
    (P.read_tx p (fun () -> P.load p obj))

let () =
  Alcotest.run "romulus"
    [ ("basic(Rom)", Basic_suite.suite);
      ("logged(RomL)", Logged_suite.suite);
      ("left-right(RomLR)", Lr_suite.suite);
      ("single-threaded(RomSeq)", Seq_suite.suite);
      ( "lr-specific",
        [ Alcotest.test_case "reader on back copy" `Quick
            test_lr_reader_on_back;
          Alcotest.test_case "log shrinks replication" `Quick
            test_log_reduces_replication;
          Alcotest.test_case "redo-log overflow is typed" `Quick
            test_redo_log_overflow_typed ] ) ]
