(* Commit-path write-set ablation: eager vs deferred line write-backs ×
   raw vs coalesced redo log, across fence profiles, on the sorted-list
   and hash-map update workloads.  "eager-raw" is the pre-optimization
   commit path (one pwb per store, one copy per raw log entry);
   "deferred-coalesced" is the current default.  Per-transaction pwb,
   copy and replicated-byte rates come from the Pmem.Stats commit-path
   counters; the matrix is emitted to BENCH_commit_path.json. *)

module P = Romulus.Logged
module L = Pds.Linked_list.Make (P)
module H = Pds.Hash_map.Make (P)

type cfg = { label : string; eager : bool; coalesce : bool }

let configs =
  [ { label = "eager-raw"; eager = true; coalesce = false };
    { label = "eager-coalesced"; eager = true; coalesce = true };
    { label = "deferred-raw"; eager = false; coalesce = false };
    { label = "deferred-coalesced"; eager = false; coalesce = true } ]

type row = {
  workload : string;
  fence : string;
  cfg : cfg;
  txs : int;
  pwbs_per_tx : float;
  fences_per_tx : float;
  copies_per_tx : float;
  replicated_b_per_tx : float;
  nvm_b_per_tx : float;
  ns_per_tx : float;
}

let measure ~fence ~cfg ~keys ~txs which =
  let r = Pmem.Region.create ~fence ~size:(1 lsl 21) () in
  let p = P.open_region r in
  Romulus.Engine.configure ~eager_pwb:cfg.eager ~coalesce:cfg.coalesce
    (P.engine p);
  let rng = Workload.Keygen.create ~seed:11 () in
  let workload, tx =
    match which with
    | `Sorted_list ->
      let l = L.create p ~root:0 in
      for i = 0 to keys - 1 do
        ignore (L.add l i)
      done;
      ( "sorted-list",
        fun () ->
          let k = Workload.Keygen.int rng keys in
          P.update_tx p (fun () ->
              ignore (L.remove l k);
              ignore (L.add l k)) )
    | `Hash_map ->
      let h = H.create p ~root:0 in
      for i = 0 to keys - 1 do
        ignore (H.put h i i)
      done;
      ( "hash-map",
        fun () ->
          let k = Workload.Keygen.int rng keys in
          P.update_tx p (fun () ->
              ignore (H.remove h k);
              ignore (H.put h k k)) )
  in
  for _ = 1 to 32 do
    tx ()
  done;
  Gc.full_major ();
  let s = Pmem.Region.stats r in
  let before = Pmem.Stats.snapshot s in
  let ns = Workload.Bench_clock.ns_per_op ~region:r ~ops:txs tx in
  let d = Pmem.Stats.since ~now:s ~past:before in
  let commits = float_of_int d.Pmem.Stats.commits in
  { workload;
    fence = fence.Pmem.Fence.name;
    cfg;
    txs = d.Pmem.Stats.commits;
    pwbs_per_tx = Pmem.Stats.pwbs_per_tx d;
    fences_per_tx = float_of_int (Pmem.Stats.fences d) /. commits;
    copies_per_tx = Pmem.Stats.copies_per_tx d;
    replicated_b_per_tx = Pmem.Stats.replicated_bytes_per_tx d;
    nvm_b_per_tx = float_of_int d.Pmem.Stats.nvm_bytes /. commits;
    ns_per_tx = ns }

(* ---- output ---- *)

let print_matrix rows =
  let groups =
    List.sort_uniq compare (List.map (fun r -> (r.workload, r.fence)) rows)
  in
  List.iter
    (fun (workload, fence) ->
      Common.subsection (Printf.sprintf "%s, %s fences" workload fence);
      Printf.printf "%-20s %10s %10s %10s %12s %12s %10s\n" "commit path"
        "pwb/tx" "fences/tx" "copies/tx" "repl B/tx" "NVM B/tx" "ns/tx";
      List.iter
        (fun r ->
          if r.workload = workload && r.fence = fence then
            Printf.printf "%-20s %10.1f %10.1f %10.1f %12.0f %12.0f %10.0f\n%!"
              r.cfg.label r.pwbs_per_tx r.fences_per_tx r.copies_per_tx
              r.replicated_b_per_tx r.nvm_b_per_tx r.ns_per_tx)
        rows)
    groups;
  (* headline: pwb reduction of the default path vs the seed path *)
  List.iter
    (fun workload ->
      let pick label =
        List.find_opt
          (fun r ->
            r.workload = workload && r.fence = "dram" && r.cfg.label = label)
          rows
      in
      match (pick "eager-raw", pick "deferred-coalesced") with
      | Some seed, Some opt ->
        Printf.printf
          "%s: pwb/tx %.1f -> %.1f (%.1fx), copies/tx %.1f -> %.1f, \
           replicated B/tx %.0f -> %.0f\n%!"
          workload seed.pwbs_per_tx opt.pwbs_per_tx
          (seed.pwbs_per_tx /. opt.pwbs_per_tx)
          seed.copies_per_tx opt.copies_per_tx seed.replicated_b_per_tx
          opt.replicated_b_per_tx
      | _ -> ())
    [ "sorted-list"; "hash-map" ]

let emit_json ~scale ~path rows =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"commit_path\",\n";
  Printf.bprintf b "  \"scale\": \"%s\",\n" scale;
  Buffer.add_string b "  \"ptm\": \"romL\",\n";
  Buffer.add_string b "  \"results\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "    {\"workload\": %S, \"fence\": %S, \"commit_path\": %S, \
         \"eager_pwb\": %b, \"coalesce\": %b, \"txs\": %d, \
         \"pwbs_per_tx\": %.3f, \"fences_per_tx\": %.3f, \
         \"copies_per_tx\": %.3f, \"replicated_bytes_per_tx\": %.1f, \
         \"nvm_bytes_per_tx\": %.1f, \"ns_per_tx\": %.1f}%s\n"
        r.workload r.fence r.cfg.label r.cfg.eager r.cfg.coalesce r.txs
        r.pwbs_per_tx r.fences_per_tx r.copies_per_tx r.replicated_b_per_tx
        r.nvm_b_per_tx r.ns_per_tx
        (if i = n - 1 then "" else ","))
    rows;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc b);
  Printf.printf "wrote %s (%d rows)\n%!" path n

(* ---- entry points ---- *)

let run_matrix ~scale_name ~keys ~txs ~fences =
  Common.section
    "commit-path write-set ablation (RomulusLog, remove/reinsert pair per tx)";
  let rows =
    List.concat_map
      (fun which ->
        List.concat_map
          (fun fence ->
            List.map
              (fun cfg -> measure ~fence ~cfg ~keys ~txs which)
              configs)
          fences)
      [ `Sorted_list; `Hash_map ]
  in
  print_matrix rows;
  emit_json ~scale:scale_name ~path:"BENCH_commit_path.json" rows

let run scale =
  let keys, txs =
    match scale with Common.Quick -> (512, 1_000) | Common.Full -> (2_048, 8_000)
  in
  let scale_name =
    match scale with Common.Quick -> "quick" | Common.Full -> "full"
  in
  run_matrix ~scale_name ~keys ~txs
    ~fences:Pmem.Fence.[ dram; clwb; clflush; stt ]

(* Tiny parameters: exercises every config and the JSON emission in well
   under a second, so CI catches bench bitrot cheaply. *)
let smoke () =
  run_matrix ~scale_name:"smoke" ~keys:32 ~txs:40
    ~fences:[ Pmem.Fence.dram ]
