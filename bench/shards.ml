(* Shard-scaling benchmark for the hash-partitioned Sharded_db: how far
   does splitting one RomulusDB into N independent per-shard engines
   lift update throughput, and what does partitioning buy at recovery
   time?

   Three parts, emitted together to BENCH_shards.json:

   1. Calibration: single-threaded costs measured on the real store —
      read, single-shard batch fixed/marginal cost, and the extra cost
      of a cross-shard batch under each commit protocol (centralized
      shard-0 intent; decentralized presumed-abort mirrors with eager
      and with lazy CLEAR).
   2. Throughput extrapolation: the calibrated costs drive the
      Fc_sharded DES model (one combiner per shard) across shard count
      x writer count, plus a cross-batch-ratio sweep per commit
      protocol — the ablation showing how moving from the serialized
      shard-0 chain to the one-flip decentralized protocol recovers the
      partitioning win.
   3. Recovery: a real N-shard store is crashed with every shard dirty
      (a trap fires mid-transaction in each), and each shard's engine
      recovery is timed separately — per-shard recovery work shrinks
      with 1/N, which is what the parallel recover fan-out exploits. *)

module S = Kv.Sharded_db.Default

let key i = Printf.sprintf "k%06d" i
let value i = Printf.sprintf "v%08d" i

let make_store ?(fence = Pmem.Fence.stt) ?protocol ~region_size nshards =
  let regions =
    Array.init nshards (fun _ ->
        Pmem.Region.create ~fence ~size:region_size ())
  in
  (S.open_db ?protocol ~initial_buckets:1024 regions, regions)

(* the ablation's three protocol arms, in presentation order *)
let protocols =
  [ ("centralized", Kv.Sharded_db.Centralized);
    ("decentralized_eager", Kv.Sharded_db.Decentralized { lazy_clear = false });
    ("decentralized_lazy", Kv.Sharded_db.Decentralized { lazy_clear = true }) ]

let des_protocol = function
  | Kv.Sharded_db.Centralized -> Simsched.Sync_model.Proto_centralized
  | Kv.Sharded_db.Decentralized { lazy_clear } ->
    Simsched.Sync_model.Proto_decentralized { lazy_clear }

(* first populated key routing to [shard]; the key space is dense enough
   that every shard owns many *)
let key_for_shard db ~keys shard =
  let rec find i =
    if i >= keys then failwith "no key routes to shard"
    else if S.shard_of_key db (key i) = shard then key i
    else find (i + 1)
  in
  find 0

(* ---- calibration on the real store ---- *)

type calib = {
  read_ns : float;
  update_work_ns : float;   (* marginal cost of one put inside a batch *)
  batch_fixed_ns : float;   (* per-transaction fixed cost *)
  (* extra serialized cost of a 2-shard batch beyond its protocol's
     engine transactions, one figure per protocol arm *)
  intent_fixed_ns : (string * float) list;
}

let intent_of calib name =
  match List.assoc_opt name calib.intent_fixed_ns with
  | Some v -> v
  | None -> invalid_arg ("no calibration for protocol " ^ name)

(* engine transactions a 2-participant cross batch runs under each
   protocol; what the measured chain costs beyond these is the protocol's
   serialized bookkeeping (payload encoding, undo capture, record
   management).  centralized: PREPARE + 2 applies + COMMIT (CLEAR rides
   in the residue); decentralized: 2 mirror+apply + flip, plus with
   eager CLEAR 2 mirror unhooks + a flip unhook. *)
let protocol_tx_count = function
  | Kv.Sharded_db.Centralized -> 4.
  | Kv.Sharded_db.Decentralized { lazy_clear = true } -> 3.
  | Kv.Sharded_db.Decentralized { lazy_clear = false } -> 6.

let calibrate ~ops =
  let keys = 512 in
  let db1, r1 = make_store ~region_size:(1 lsl 21) 1 in
  for i = 0 to keys - 1 do
    S.put db1 (key i) (value i)
  done;
  let rng = Workload.Keygen.create ~seed:7 () in
  let rkey () = key (Workload.Keygen.int rng keys) in
  let median ?(runs = 3) ~ops f =
    Workload.Bench_clock.median_ns_per_op ~region:r1.(0) ~runs ~ops f
  in
  for _ = 1 to 50 do
    S.put db1 (rkey ()) "w"
  done;
  Gc.full_major ();
  let read_ns = median ~ops (fun () -> ignore (S.get db1 (rkey ()))) in
  let batch_of n =
    median ~ops:(max 8 (ops / (4 * n))) (fun () ->
        S.write_batch db1 (fun b ->
            for _ = 1 to n do
              S.put b (rkey ()) "w"
            done))
  in
  let batch1 = batch_of 1 in
  let batch16 = batch_of 16 in
  let update_work_ns =
    let w = (batch16 -. batch1) /. 15. in
    if w <= 0. || w > batch1 then batch1 else w
  in
  let batch_fixed_ns = Float.max 0. (batch1 -. update_work_ns) in
  (* measure the extra serialized cost of a 2-shard batch under each
     protocol: the chain cost beyond the protocol's engine transactions
     is its bookkeeping (payload encoding, undo capture, record
     management — including lazy CLEAR's piggybacked reclamation, which
     the steady-state loop amortizes into the mirror transactions) *)
  let tx_unit = batch_fixed_ns +. update_work_ns in
  let cross_fixed proto =
    let db2, r2 = make_store ~protocol:proto ~region_size:(1 lsl 21) 2 in
    for i = 0 to keys - 1 do
      S.put db2 (key i) (value i)
    done;
    let ka = key_for_shard db2 ~keys 0 in
    let kb = key_for_shard db2 ~keys 1 in
    for _ = 1 to 20 do
      S.write_batch db2 (fun b ->
          S.put b ka "w";
          S.put b kb "w")
    done;
    Gc.full_major ();
    let cross_ns =
      (* virtual fence delays land on both regions; sum them *)
      let snap r = Pmem.Region.stats r in
      let s0 = Pmem.Stats.snapshot (snap r2.(0)) in
      let s1 = Pmem.Stats.snapshot (snap r2.(1)) in
      let n = max 8 (ops / 8) in
      let t0 = Workload.Bench_clock.now_ns () in
      for _ = 1 to n do
        S.write_batch db2 (fun b ->
            S.put b ka "w";
            S.put b kb "w")
      done;
      let wall = Workload.Bench_clock.now_ns () -. t0 in
      let d r past =
        let d = Pmem.Stats.since ~now:(snap r) ~past in
        float_of_int d.Pmem.Stats.delay_ns
      in
      (wall +. d r2.(0) s0 +. d r2.(1) s1) /. float_of_int n
    in
    Float.max 0. (cross_ns -. (protocol_tx_count proto *. tx_unit))
  in
  let intent_fixed_ns =
    List.map (fun (name, proto) -> (name, cross_fixed proto)) protocols
  in
  { read_ns; update_work_ns; batch_fixed_ns; intent_fixed_ns }

(* ---- DES throughput sweep ---- *)

let sharded_run ?resize ~scale ~calib ~shards ~cross_p ~proto_name ~proto
    ~large writers =
  let costs =
    { Simsched.Sync_model.read_ns = calib.read_ns;
      update_work_ns = calib.update_work_ns;
      batch_fixed_ns = calib.batch_fixed_ns;
      think_ns = Float.max Common.think_ns (0.25 *. calib.read_ns) }
  in
  Simsched.Sync_model.run
    { Simsched.Sync_model.model =
        Fc_sharded
          { shards; cross_p;
            intent_fixed_ns = intent_of calib proto_name;
            protocol = des_protocol proto; large; resize };
      costs; readers = 0; writers;
      duration_ns = Common.sim_duration_ns scale; seed = 13 }

let updates_per_sec ~scale ~calib ~shards ~cross_p ~proto_name ~proto
    writers =
  Simsched.Sync_model.updates_per_sec
    (sharded_run ~scale ~calib ~shards ~cross_p ~proto_name ~proto
       ~large:None writers)

(* ---- large-batch chunking ablation ---- *)

(* Real store: a cross-shard batch overwriting multi-KB values (large
   enough that every undo image spills) is run at several [chunk_bytes]
   settings — the cost of streaming the mirror as many small chunk
   transactions versus few large ones, with the chunk/spill counts that
   prove the chains actually streamed. *)
type large_real_row = {
  lb_chunk_bytes : int;
  lb_ns : float;      (* one large cross-shard batch *)
  lb_chunks : float;  (* chunk records per batch *)
  lb_spills : float;  (* spilled undo images per batch *)
}

(* DES: the same store under a mixed workload where a fraction of the
   cross-shard batches carry a multi-chunk payload, streamed (the chunk
   chain: small updates interleave between chunks) versus monolithic
   (the payload holds one combiner slot and the queue waits).  The
   figure of merit is the small-update completion tail. *)
type large_des_row = {
  ld_arm : string;  (* "none" | "monolithic" | "streamed" *)
  ld_ups : float;
  ld_small_mean_ns : float;
  ld_small_max_ns : float;
}

let large_value tag len =
  String.init len (fun i -> Char.chr ((tag + (3 * i)) land 0xff))

let large_batch_real ~ops ~chunk_axis =
  let keys = 16 in
  let vlen = 6 * 1024 in
  List.map
    (fun chunk_bytes ->
      let regions =
        Array.init 2 (fun _ ->
            Pmem.Region.create ~fence:Pmem.Fence.stt ~size:(1 lsl 22) ())
      in
      let db = S.open_db ~initial_buckets:64 ~chunk_bytes regions in
      for i = 0 to keys - 1 do
        S.put db (key i) (large_value i vlen)
      done;
      (match
         List.sort_uniq compare
           (List.init keys (fun i -> S.shard_of_key db (key i)))
       with
       | [ _; _ ] -> ()
       | l ->
         failwith
           (Printf.sprintf "large batch spans %d shard(s)" (List.length l)));
      let round = ref 0 in
      let batch () =
        incr round;
        let r = !round in
        S.write_batch db (fun b ->
            for i = 0 to keys - 1 do
              S.put b (key i) (large_value (i + r) vlen)
            done)
      in
      for _ = 1 to 5 do
        batch ()
      done;
      Gc.full_major ();
      let snap () =
        Pmem.Stats.aggregate
          (Array.to_list (Array.map Pmem.Region.stats regions))
      in
      let s0 = snap () in
      let n = max 4 (ops / 16) in
      let t0 = Workload.Bench_clock.now_ns () in
      for _ = 1 to n do
        batch ()
      done;
      let wall = Workload.Bench_clock.now_ns () -. t0 in
      let d = Pmem.Stats.since ~now:(snap ()) ~past:s0 in
      (* the batches really committed, unchunked readers see whole values *)
      for i = 0 to keys - 1 do
        if S.get db (key i) <> Some (large_value (i + !round) vlen) then
          failwith (Printf.sprintf "large batch lost %s" (key i))
      done;
      let per x = float_of_int x /. float_of_int n in
      { lb_chunk_bytes = chunk_bytes;
        lb_ns =
          (wall +. float_of_int d.Pmem.Stats.delay_ns) /. float_of_int n;
        lb_chunks = per d.Pmem.Stats.chunks_written;
        lb_spills = per d.Pmem.Stats.chunks_spilled })
    chunk_axis

let large_batch_des ~scale ~calib ~shards ~writers =
  let tx_unit = calib.batch_fixed_ns +. calib.update_work_ns in
  let mk streamed =
    { Simsched.Sync_model.large_p = 0.1; chunks = 16; chunk_tx_ns = tx_unit;
      streamed }
  in
  List.map
    (fun (arm, large) ->
      let r =
        sharded_run ~scale ~calib ~shards ~cross_p:0.2
          ~proto_name:"decentralized_lazy"
          ~proto:Kv.Sharded_db.default_protocol ~large writers
      in
      { ld_arm = arm;
        ld_ups = Simsched.Sync_model.updates_per_sec r;
        ld_small_mean_ns = r.Simsched.Sync_model.small_mean_ns;
        ld_small_max_ns = r.Simsched.Sync_model.small_max_ns })
    [ ("none", None);
      ("monolithic", Some (mk false));
      ("streamed", Some (mk true)) ]

(* ---- elastic resize: online split/merge under load ---- *)

(* Real store: a populated 2-shard store is split online (shard 0's odd
   slots stream to a freshly attached shard) and later merged back.  The
   figures are the migration wall time, the keys it moved, and the
   single-key put cost before and after — the steady-state price of the
   extra routing-table hop plus the extra shard.  The split call is
   synchronous here, so the foreground dip itself is the DES's job. *)
type elastic_real = {
  e_keys : int;
  e_migrated : int;        (* keys the split streamed to the target *)
  e_split_ns : float;
  e_merge_ns : float;
  e_put_before_ns : float; (* single-key put, 2 shards, epoch 0 *)
  e_put_after_ns : float;  (* single-key put, 3 shards, epoch 1 *)
}

let elastic_real ~ops ~keys =
  let region_size = (keys * 256) + (1 lsl 21) in
  let db, regions = make_store ~region_size 2 in
  for i = 0 to keys - 1 do
    S.put db (key i) (value i)
  done;
  let rng = Workload.Keygen.create ~seed:19 () in
  let rkey () = key (Workload.Keygen.int rng keys) in
  let put_ns () =
    Gc.full_major ();
    Workload.Bench_clock.median_ns_per_op ~region:regions.(0) ~ops
      (fun () -> S.put db (rkey ()) "w")
  in
  let e_put_before_ns = put_ns () in
  let target = Pmem.Region.create ~fence:Pmem.Fence.stt ~size:region_size () in
  let s0 = Pmem.Stats.snapshot (S.stats db) in
  let born = ref (-1) in
  let e_split_ns =
    Workload.Bench_clock.time_ns ~region:regions.(0) (fun () ->
        born := S.split_shard db ~source:0 target)
  in
  let d = Pmem.Stats.since ~now:(S.stats db) ~past:s0 in
  let e_migrated = d.Pmem.Stats.keys_migrated in
  if S.count db <> keys then failwith "elastic: split lost keys";
  if S.migration_pending db then failwith "elastic: split left intent";
  let e_put_after_ns = put_ns () in
  let e_merge_ns =
    Workload.Bench_clock.time_ns ~region:regions.(0) (fun () ->
        S.merge_shards db ~source:!born ~target:0)
  in
  if S.count db <> keys then failwith "elastic: merge lost keys";
  { e_keys = keys; e_migrated; e_split_ns; e_merge_ns; e_put_before_ns;
    e_put_after_ns }

(* DES: the same foreground workload with and without a background
   migration streaming through the combiners mid-run.  The move batches
   occupy the source combiner alongside foreground updates, so the
   resize arm completes fewer of them — the resize-under-load dip. *)
type elastic_des = {
  ed_move_batches : int;
  ed_base_ups : float;
  ed_resize_ups : float;   (* same run with the background migration *)
}

let elastic_des ~scale ~calib ~shards ~writers =
  let base =
    updates_per_sec ~scale ~calib ~shards ~cross_p:0.05
      ~proto_name:"decentralized_lazy"
      ~proto:Kv.Sharded_db.default_protocol writers
  in
  (* a move batch is one source-side chunk transaction's worth of work:
     the batch-fixed cost plus eight per-pair payload units *)
  let move_batches = 64 in
  let resize =
    { Simsched.Sync_model.move_batches;
      move_tx_ns = calib.batch_fixed_ns +. (8. *. calib.update_work_ns);
      start_frac = 0.25 }
  in
  let r =
    sharded_run ~resize ~scale ~calib ~shards ~cross_p:0.05
      ~proto_name:"decentralized_lazy"
      ~proto:Kv.Sharded_db.default_protocol ~large:None writers
  in
  { ed_move_batches = move_batches; ed_base_ups = base;
    ed_resize_ups = Simsched.Sync_model.updates_per_sec r }

(* ---- availability under a shard fault and its repair ---- *)

(* Real store: one shard of a settled 4-shard store rots (both twins of
   its deepest used line), the store is reopened, and we measure what
   the fault isolation actually buys — healthy-slot read cost while the
   sick shard is refused, the fraction of the key space still served,
   and the wall time of each self-healing arm: key evacuation onto a
   healthy shard (no snapshot available) and snapshot restore.  The
   comparison point is the same read cost before the damage and after
   the repair. *)
type availability_real = {
  a_keys : int;
  a_shards : int;
  a_healthy_get_ns : float;   (* single-key get, all shards healthy *)
  a_degraded_get_ns : float;  (* healthy-slot gets, one shard down *)
  a_available_frac : float;   (* keys still served while it is down *)
  a_evac_repair_ns : float;   (* repair wall time, evacuation arm *)
  a_evac_moved : int;         (* keys the evacuation placed *)
  a_restore_repair_ns : float;(* repair wall time, snapshot-restore arm *)
  a_post_repair_get_ns : float;
}

(* a settled store: seeded, crashed clean and reopened, so every line is
   durably fenced and at-rest rot is the only damage *)
let settled_store ~region_size ~keys nshards =
  let db, regions = make_store ~region_size nshards in
  for i = 0 to keys - 1 do
    S.put db (key i) (value i)
  done;
  Array.iter (fun r -> Pmem.Region.crash r Pmem.Region.Drop_all) regions;
  (S.open_db ~initial_buckets:1024 regions, regions)

(* rot both twins of the deepest used line of [sick]'s main span, the
   same at-rest damage the fault-isolation tests inject: scrub cannot
   repair it, so the shard comes back Degraded and repair escalates *)
let rot_shard db regions sick =
  match (S.media_spans db).(sick) with
  | (mbase, mspan) :: rest ->
    let ls = Pmem.Region.line_size regions.(sick) in
    let delta = mspan - ls in
    Pmem.Region.corrupt_line regions.(sick) ~line:((mbase + delta) / ls);
    (match rest with
     | (bbase, _) :: _ ->
       Pmem.Region.corrupt_line regions.(sick) ~seed:99
         ~line:((bbase + delta) / ls)
     | [] -> ())
  | [] -> failwith "availability: sick shard has no media spans"

let availability_real ~ops ~keys =
  let nshards = 4 in
  let region_size = (keys * 256) + (1 lsl 21) in
  let rng = Workload.Keygen.create ~seed:23 () in
  let get_ns db pick =
    Gc.full_major ();
    Workload.Bench_clock.median_ns_per_op ~region:(S.regions db).(0) ~ops
      (fun () -> ignore (S.get db (pick ())))
  in
  let any_key () = key (Workload.Keygen.int rng keys) in
  (* evacuation arm: no snapshot exists, so repair moves the keys *)
  let db, regions = settled_store ~region_size ~keys nshards in
  let a_healthy_get_ns = get_ns db any_key in
  let sick = 1 in
  rot_shard db regions sick;
  Array.iter (fun r -> Pmem.Region.crash r Pmem.Region.Drop_all) regions;
  let db = S.open_db ~initial_buckets:1024 regions in
  let healthy_keys =
    List.filter
      (fun k -> S.shard_of_key db k <> sick)
      (List.init keys key)
  in
  let harr = Array.of_list healthy_keys in
  let a_degraded_get_ns =
    get_ns db (fun () ->
        harr.(Workload.Keygen.int rng (Array.length harr)))
  in
  let served = ref 0 in
  for i = 0 to keys - 1 do
    match S.get db (key i) with
    | Some _ -> incr served
    | None -> ()
    | exception Kv.Sharded_db.Shard_unavailable _ -> ()
    | exception Pmem.Region.Media_error _ -> ()
  done;
  let a_available_frac = float_of_int !served /. float_of_int keys in
  let verdicts = ref [] in
  let a_evac_repair_ns =
    Workload.Bench_clock.time_ns ~region:regions.(0) (fun () ->
        verdicts := S.repair db)
  in
  let a_evac_moved =
    match List.assoc_opt sick !verdicts with
    | Some (S.Evacuated_keys { moved; _ }) -> moved
    | _ -> failwith "availability: no-snapshot repair did not evacuate"
  in
  let a_post_repair_get_ns = get_ns db any_key in
  (* restore arm: the same damage, but a snapshot family exists *)
  let db, regions = settled_store ~region_size ~keys nshards in
  let base = "BENCH_shards_avail_snapshot" in
  S.save_to_files db base;
  rot_shard db regions sick;
  Array.iter (fun r -> Pmem.Region.crash r Pmem.Region.Drop_all) regions;
  let db = S.open_db ~initial_buckets:1024 regions in
  let a_restore_repair_ns =
    Workload.Bench_clock.time_ns ~region:regions.(0) (fun () ->
        verdicts := S.repair ~snapshot_base:base db)
  in
  (match List.assoc_opt sick !verdicts with
   | Some S.Snapshot_restored -> ()
   | _ -> failwith "availability: snapshot repair did not restore");
  for s = 0 to nshards - 1 do
    Sys.remove (Pmem.Region.shard_snapshot_path base ~shard:s)
  done;
  if S.count db <> keys then failwith "availability: restore lost keys";
  { a_keys = keys; a_shards = nshards; a_healthy_get_ns; a_degraded_get_ns;
    a_available_frac; a_evac_repair_ns; a_evac_moved; a_restore_repair_ns;
    a_post_repair_get_ns }

(* ---- recovery timing on the real store ---- *)

let recovery_measure ~keys nshards =
  let region_size = ((keys / nshards) * 1024) + (1 lsl 21) in
  let db, regions =
    make_store ~fence:Pmem.Fence.clflush ~region_size nshards
  in
  for i = 0 to keys - 1 do
    S.put db (key i) (value i)
  done;
  (* crash with real work in flight on every shard *)
  Array.iteri
    (fun s r ->
      let k = key_for_shard db ~keys s in
      Pmem.Region.set_trap r 12;
      (match S.put db k "dirty" with
       | _ -> failwith "trap did not fire"
       | exception Pmem.Region.Crash_point -> ());
      Pmem.Region.clear_trap r)
    regions;
  Array.iter (fun r -> Pmem.Region.crash r Pmem.Region.Drop_all) regions;
  let per_shard =
    Array.mapi
      (fun s r ->
        Workload.Bench_clock.time_ns ~region:r (fun () ->
            S.recover_shard db s))
      regions
  in
  (* sanity: the store is whole again (the in-flight overwrites either
     took or were rolled back; the key population is unchanged) *)
  if S.count db <> keys then failwith "recovery lost keys";
  per_shard

(* ---- group-commit front-end ablation ---- *)

(* DES: the async group-commit front-end (Group_commit) over the sharded
   store — per-shard submission queues drained in windows, one fence
   sequence per window instead of per logical transaction.  Two sweeps:
   the ack-mode ablation (per-tx Sync vs Batch_sync vs Async at the
   headline shard/writer point) and the window-size sweep that shows the
   fence amortization saturating. *)
type group_des_row = {
  g_arm : string;  (* "sync" | "batch_sync" | "async" *)
  g_window : int;
  g_ups : float;
  g_small_mean_ns : float;
  g_small_max_ns : float;
}

(* Real store: the same front-end run for real, with the fence economy
   read back from the Stats counters — engine transactions (= fence
   sequences) per logical transaction is the figure the window buys
   down. *)
type group_real_row = {
  gr_mode : string;
  gr_txs : int;               (* logical transactions submitted *)
  gr_group_commits : int;     (* engine transactions (fence sequences) *)
  gr_mean_group : float;      (* logical txs per engine tx *)
  gr_engine_per_tx : float;   (* fence sequences per logical tx *)
  gr_fences_saved : int;
}

(* the batch arm drains at half the window (the txs threshold), the
   async arm only when the window fills — the latency/coalescing knob
   the ack-mode ablation turns *)
let group_ack_of_arm ~window = function
  | "sync" -> Simsched.Sync_model.Ack_sync
  | "batch_sync" -> Simsched.Sync_model.Ack_batch_txs (max 1 (window / 2))
  | "async" -> Simsched.Sync_model.Ack_async
  | arm -> invalid_arg ("unknown group arm " ^ arm)

let group_run ~scale ~calib ~shards ~window ~arm ~cross_p writers =
  let costs =
    { Simsched.Sync_model.read_ns = calib.read_ns;
      update_work_ns = calib.update_work_ns;
      batch_fixed_ns = calib.batch_fixed_ns;
      think_ns = Float.max Common.think_ns (0.25 *. calib.read_ns) }
  in
  Simsched.Sync_model.run
    { Simsched.Sync_model.model =
        Fc_group
          { shards; window; ack = group_ack_of_arm ~window arm; cross_p;
            intent_fixed_ns = intent_of calib "decentralized_lazy" };
      costs; readers = 0; writers;
      duration_ns = Common.sim_duration_ns scale; seed = 13 }

(* Ablations run at the ROADMAP operating point (cross_p = 0.2): the
   window amortizes the per-round fence sequence on the shard queues AND
   the shared-intent bookkeeping (one mirror pair + one coordinator flip
   per merged group) on the cross queue — the second term is the larger
   saving, since the intent chain costs an order of magnitude more than
   a single-shard fence sequence. *)
let group_cross_p = 0.2

let group_des_ablation ~scale ~calib ~shards ~writers ~window =
  List.map
    (fun arm ->
      let r = group_run ~scale ~calib ~shards ~window ~arm
                ~cross_p:group_cross_p writers in
      { g_arm = arm; g_window = window;
        g_ups = Simsched.Sync_model.updates_per_sec r;
        g_small_mean_ns = r.Simsched.Sync_model.small_mean_ns;
        g_small_max_ns = r.Simsched.Sync_model.small_max_ns })
    [ "sync"; "batch_sync"; "async" ]

let group_window_sweep ~scale ~calib ~shards ~writers ~window_axis =
  List.map
    (fun window ->
      let r = group_run ~scale ~calib ~shards ~window ~arm:"batch_sync"
                ~cross_p:group_cross_p writers in
      { g_arm = "batch_sync"; g_window = window;
        g_ups = Simsched.Sync_model.updates_per_sec r;
        g_small_mean_ns = r.Simsched.Sync_model.small_mean_ns;
        g_small_max_ns = r.Simsched.Sync_model.small_max_ns })
    window_axis

module Front = Kv.Group_commit.Default

let group_real_stats ~ops =
  let txs = max 64 ops in
  List.map
    (fun (gr_mode, ack) ->
      let db, _ = make_store ~region_size:(1 lsl 21) 4 in
      let fe = Front.attach ~window:32 ~ack db in
      let base = Pmem.Stats.snapshot (S.stats db) in
      for i = 0 to txs - 1 do
        Front.put fe (key (i land 255)) (value i)
      done;
      Front.flush fe;
      let d = Pmem.Stats.since ~now:(S.stats db) ~past:base in
      let gc = d.Pmem.Stats.group_commits in
      let logical = d.Pmem.Stats.group_size_sum in
      { gr_mode; gr_txs = logical; gr_group_commits = gc;
        gr_mean_group =
          (if gc = 0 then 0. else float_of_int logical /. float_of_int gc);
        gr_engine_per_tx =
          (if logical = 0 then 0.
           else float_of_int gc /. float_of_int logical);
        gr_fences_saved = d.Pmem.Stats.fences_saved })
    [ ("sync", Kv.Group_commit.Sync);
      ("batch_sync",
       Kv.Group_commit.Batch_sync { txs = 8; bytes = 1 lsl 16 });
      ("async", Kv.Group_commit.Async) ]

(* ---- output ---- *)

type scaling_row = {
  shards : int;
  writers : int;
  ups : float;
  ns_per_tx : float;
}

type cross_row = {
  c_shards : int;
  c_protocol : string;
  cross_p : float;
  c_ups : float;
}

type recovery_row = {
  r_shards : int;
  r_keys : int;
  per_shard_ns : float array;
}

let emit_json ~scale ~calib ~scaling ~cross ~large_real ~large_des
    ~elastic_r ~elastic_d ~avail ~group_des ~group_window ~group_real
    ~recovery path =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"shards\",\n";
  Printf.bprintf b "  \"scale\": \"%s\",\n" scale;
  Buffer.add_string b "  \"ptm\": \"romL\",\n";
  Printf.bprintf b
    "  \"calibration\": {\"read_ns\": %.1f, \"update_work_ns\": %.1f, \
     \"batch_fixed_ns\": %.1f, \"intent_fixed_ns\": {%s}},\n"
    calib.read_ns calib.update_work_ns calib.batch_fixed_ns
    (String.concat ", "
       (List.map
          (fun (name, v) -> Printf.sprintf "\"%s\": %.1f" name v)
          calib.intent_fixed_ns));
  Buffer.add_string b "  \"scaling\": [\n";
  let n = List.length scaling in
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "    {\"shards\": %d, \"writers\": %d, \"updates_per_sec\": %.0f, \
         \"ns_per_tx\": %.1f}%s\n"
        r.shards r.writers r.ups r.ns_per_tx
        (if i = n - 1 then "" else ","))
    scaling;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"cross_batch\": [\n";
  let n = List.length cross in
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "    {\"shards\": %d, \"commit_protocol\": \"%s\", \"cross_p\": \
         %.2f, \"updates_per_sec\": %.0f}%s\n"
        r.c_shards r.c_protocol r.cross_p r.c_ups
        (if i = n - 1 then "" else ","))
    cross;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"large_batch\": {\n    \"real\": [\n";
  let n = List.length large_real in
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "      {\"chunk_bytes\": %d, \"batch_ns\": %.0f, \
         \"chunks_per_batch\": %.1f, \"spills_per_batch\": %.1f}%s\n"
        r.lb_chunk_bytes r.lb_ns r.lb_chunks r.lb_spills
        (if i = n - 1 then "" else ","))
    large_real;
  Buffer.add_string b "    ],\n    \"des\": [\n";
  let n = List.length large_des in
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "      {\"arm\": \"%s\", \"updates_per_sec\": %.0f, \
         \"small_mean_ns\": %.0f, \"small_max_ns\": %.0f}%s\n"
        r.ld_arm r.ld_ups r.ld_small_mean_ns r.ld_small_max_ns
        (if i = n - 1 then "" else ","))
    large_des;
  Buffer.add_string b "    ]\n  },\n";
  Buffer.add_string b "  \"elastic\": {\n";
  Printf.bprintf b
    "    \"real\": {\"keys\": %d, \"keys_migrated\": %d, \"split_ns\": \
     %.0f, \"merge_ns\": %.0f, \"put_ns_before\": %.1f, \
     \"put_ns_after\": %.1f},\n"
    elastic_r.e_keys elastic_r.e_migrated elastic_r.e_split_ns
    elastic_r.e_merge_ns elastic_r.e_put_before_ns elastic_r.e_put_after_ns;
  Printf.bprintf b
    "    \"des\": {\"move_batches\": %d, \"updates_per_sec_baseline\": \
     %.0f, \"updates_per_sec_resize\": %.0f, \"dip_ratio\": %.3f}\n"
    elastic_d.ed_move_batches elastic_d.ed_base_ups elastic_d.ed_resize_ups
    (elastic_d.ed_resize_ups /. elastic_d.ed_base_ups);
  Buffer.add_string b "  },\n";
  Buffer.add_string b "  \"availability\": {\n";
  Printf.bprintf b
    "    \"keys\": %d, \"shards\": %d, \"get_ns_healthy\": %.1f, \
     \"get_ns_degraded\": %.1f, \"get_ns_post_repair\": %.1f,\n"
    avail.a_keys avail.a_shards avail.a_healthy_get_ns
    avail.a_degraded_get_ns avail.a_post_repair_get_ns;
  Printf.bprintf b
    "    \"available_frac\": %.4f, \"repair_evacuate_ns\": %.0f, \
     \"keys_evacuated\": %d, \"repair_restore_ns\": %.0f\n"
    avail.a_available_frac avail.a_evac_repair_ns avail.a_evac_moved
    avail.a_restore_repair_ns;
  Buffer.add_string b "  },\n";
  Buffer.add_string b "  \"group_commit\": {\n    \"des_ack\": [\n";
  let des_row i n r =
    Printf.bprintf b
      "      {\"arm\": \"%s\", \"window\": %d, \"updates_per_sec\": %.0f, \
       \"small_mean_ns\": %.0f, \"small_max_ns\": %.0f}%s\n"
      r.g_arm r.g_window r.g_ups r.g_small_mean_ns r.g_small_max_ns
      (if i = n - 1 then "" else ",")
  in
  let n = List.length group_des in
  List.iteri (fun i r -> des_row i n r) group_des;
  Buffer.add_string b "    ],\n    \"des_window\": [\n";
  let n = List.length group_window in
  List.iteri (fun i r -> des_row i n r) group_window;
  Buffer.add_string b "    ],\n    \"real\": [\n";
  let n = List.length group_real in
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "      {\"mode\": \"%s\", \"logical_txs\": %d, \"group_commits\": \
         %d, \"mean_group_size\": %.2f, \"engine_tx_per_logical\": %.3f, \
         \"fences_saved\": %d}%s\n"
        r.gr_mode r.gr_txs r.gr_group_commits r.gr_mean_group
        r.gr_engine_per_tx r.gr_fences_saved
        (if i = n - 1 then "" else ","))
    group_real;
  Buffer.add_string b "    ]\n  },\n";
  Buffer.add_string b "  \"recovery\": [\n";
  let n = List.length recovery in
  List.iteri
    (fun i r ->
      let per =
        String.concat ", "
          (Array.to_list
             (Array.map (fun ns -> Printf.sprintf "%.0f" ns) r.per_shard_ns))
      in
      let sum = Array.fold_left ( +. ) 0. r.per_shard_ns in
      let mx = Array.fold_left Float.max 0. r.per_shard_ns in
      Printf.bprintf b
        "    {\"shards\": %d, \"keys\": %d, \"per_shard_ns\": [%s], \
         \"max_shard_ns\": %.0f, \"sum_ns\": %.0f}%s\n"
        r.r_shards r.r_keys per mx sum
        (if i = n - 1 then "" else ","))
    recovery;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc b);
  Printf.printf "wrote %s\n%!" path

let run_at ~scale_name ~scale ~ops ~recovery_keys ~shard_axis ~writer_axis =
  Common.section
    "shard scaling: hash-partitioned Sharded_db (romL per shard)";
  let calib = calibrate ~ops in
  Printf.printf "calibrated: read %s  batch fixed %s  per-update %s\n%!"
    (Common.ns calib.read_ns)
    (Common.ns calib.batch_fixed_ns)
    (Common.ns calib.update_work_ns);
  List.iter
    (fun (name, v) ->
      Printf.printf "  intent extra (%s): %s\n%!" name (Common.ns v))
    calib.intent_fixed_ns;
  (* throughput vs shard count x writer count *)
  Common.subsection "update throughput (TX/s), single-key ops";
  let scaling = ref [] in
  Common.table ~header:"writers"
    ~cols:(List.map (fun s -> Printf.sprintf "%d shard" s) shard_axis)
    ~rows:
      (List.map
         (fun w ->
           ( string_of_int w,
             List.map
               (fun s ->
                 (* no cross batches at cross_p=0: protocol-independent *)
                 let ups =
                   updates_per_sec ~scale ~calib ~shards:s ~cross_p:0.
                     ~proto_name:"decentralized_lazy"
                     ~proto:Kv.Sharded_db.default_protocol w
                 in
                 scaling :=
                   { shards = s; writers = w; ups;
                     ns_per_tx = 1e9 /. ups }
                   :: !scaling;
                 ups)
               shard_axis ))
         writer_axis)
    Common.si;
  (* the headline scaling factor the partitioning is for *)
  let at shards writers =
    match
      List.find_opt
        (fun r -> r.shards = shards && r.writers = writers)
        !scaling
    with
    | Some r -> r.ups
    | None -> nan
  in
  let wmax = List.fold_left max 1 writer_axis in
  let smax = List.fold_left max 1 shard_axis in
  Printf.printf "%d writers: 1 shard %s TX/s -> %d shards %s TX/s (%.1fx)\n%!"
    wmax
    (Common.si (at 1 wmax))
    smax
    (Common.si (at smax wmax))
    (at smax wmax /. at 1 wmax);
  (* cross-shard batch ratio x commit protocol: the ablation showing how
     the decentralized flip recovers the partitioning win the serialized
     shard-0 chain eats *)
  Common.subsection
    (Printf.sprintf
       "cross-shard batch ratio x commit protocol (%d shards, %d writers)"
       smax wmax);
  let cross_axis = [ 0.; 0.05; 0.2; 0.5 ] in
  let cross =
    List.concat_map
      (fun (name, proto) ->
        List.map
          (fun cross_p ->
            { c_shards = smax; c_protocol = name; cross_p;
              c_ups =
                updates_per_sec ~scale ~calib ~shards:smax ~cross_p
                  ~proto_name:name ~proto wmax })
          cross_axis)
      protocols
  in
  let ups_of name p =
    match
      List.find_opt (fun r -> r.c_protocol = name && r.cross_p = p) cross
    with
    | Some r -> r.c_ups
    | None -> nan
  in
  let short = function
    | "centralized" -> "central"
    | "decentralized_eager" -> "d_eager"
    | "decentralized_lazy" -> "d_lazy"
    | s -> s
  in
  Common.table ~header:"cross_p"
    ~cols:(List.map (fun (name, _) -> short name) protocols)
    ~rows:
      (List.map
         (fun p ->
           ( Printf.sprintf "%.2f" p,
             List.map (fun (name, _) -> ups_of name p) protocols ))
         cross_axis)
    Common.si;
  (* the ROADMAP target: lazy-CLEAR cross-batch throughput at
     cross_p=0.2 within 2x of the cross_p=0 figure *)
  let base = ups_of "decentralized_lazy" 0. in
  let at02 = ups_of "decentralized_lazy" 0.2 in
  Printf.printf
    "cross_p=0.20 decentralized_lazy: %s TX/s = %.2fx of cross_p=0 \
     (target >= 0.50x); centralized: %s TX/s\n%!"
    (Common.si at02) (at02 /. base)
    (Common.si (ups_of "centralized" 0.2));
  (* large batches: chunk-size sweep on the real store, plus the DES
     streamed-vs-monolithic tail-latency ablation *)
  Common.subsection "large cross-shard batches: chunked mirror streaming";
  let large_real =
    large_batch_real ~ops ~chunk_axis:[ 512; 2048; 8192; 16384 ]
  in
  Printf.printf "%-12s %14s %14s %14s\n" "chunk_bytes" "batch"
    "chunks/batch" "spills/batch";
  List.iter
    (fun r ->
      Printf.printf "%-12d %14s %14.1f %14.1f\n%!" r.lb_chunk_bytes
        (Common.ns r.lb_ns) r.lb_chunks r.lb_spills)
    large_real;
  let large_des =
    large_batch_des ~scale ~calib ~shards:smax ~writers:wmax
  in
  Printf.printf
    "%-12s %12s %14s %14s   (%d shards, %d writers, cross_p=0.20, 10%% \
     large)\n"
    "payload" "TX/s" "small mean" "small max" smax wmax;
  List.iter
    (fun r ->
      Printf.printf "%-12s %12s %14s %14s\n%!" r.ld_arm (Common.si r.ld_ups)
        (Common.ns r.ld_small_mean_ns)
        (Common.ns r.ld_small_max_ns))
    large_des;
  (let find a = List.find (fun r -> r.ld_arm = a) large_des in
   let st = find "streamed" and mono = find "monolithic" in
   Printf.printf
     "streaming cuts the small-update tail %.1fx under 10%% large batches\n%!"
     (mono.ld_small_max_ns /. st.ld_small_max_ns));
  (* elastic resize: the real split/merge plus the DES under-load dip *)
  Common.subsection "elastic resize: online shard split/merge";
  let elastic_r = elastic_real ~ops ~keys:(recovery_keys / 4) in
  Printf.printf
    "split moved %d/%d keys in %s; merge back in %s; put %s -> %s\n%!"
    elastic_r.e_migrated elastic_r.e_keys
    (Common.ns elastic_r.e_split_ns)
    (Common.ns elastic_r.e_merge_ns)
    (Common.ns elastic_r.e_put_before_ns)
    (Common.ns elastic_r.e_put_after_ns);
  let elastic_d = elastic_des ~scale ~calib ~shards:smax ~writers:wmax in
  Printf.printf
    "resize under load (%d shards, %d writers, %d move batches): %s -> %s \
     TX/s (%.2fx)\n%!"
    smax wmax elastic_d.ed_move_batches
    (Common.si elastic_d.ed_base_ups)
    (Common.si elastic_d.ed_resize_ups)
    (elastic_d.ed_resize_ups /. elastic_d.ed_base_ups);
  (* availability: serving cost and repair wall time around a shard fault *)
  Common.subsection "availability under a shard fault & self-healing repair";
  let avail = availability_real ~ops ~keys:(recovery_keys / 4) in
  Printf.printf
    "one of %d shards rotten: %.1f%% of %d keys still served; healthy-slot \
     get %s (was %s, post-repair %s)\n%!"
    avail.a_shards
    (100. *. avail.a_available_frac)
    avail.a_keys
    (Common.ns avail.a_degraded_get_ns)
    (Common.ns avail.a_healthy_get_ns)
    (Common.ns avail.a_post_repair_get_ns);
  Printf.printf
    "repair: evacuated %d surviving keys in %s; snapshot restore in %s\n%!"
    avail.a_evac_moved
    (Common.ns avail.a_evac_repair_ns)
    (Common.ns avail.a_restore_repair_ns);
  (* group commit: fence amortization through the async front-end *)
  Common.subsection
    (Printf.sprintf
       "async group-commit front-end (%d shards, %d writers, window 32, \
        cross_p %.2f)"
       smax wmax group_cross_p);
  let group_des =
    group_des_ablation ~scale ~calib ~shards:smax ~writers:wmax ~window:32
  in
  Printf.printf "%-12s %12s %14s %14s\n" "ack mode" "TX/s" "ack mean"
    "ack max";
  List.iter
    (fun r ->
      Printf.printf "%-12s %12s %14s %14s\n%!" r.g_arm (Common.si r.g_ups)
        (Common.ns r.g_small_mean_ns)
        (Common.ns r.g_small_max_ns))
    group_des;
  (let find a = List.find (fun r -> r.g_arm = a) group_des in
   let sy = find "sync" and ba = find "batch_sync" in
   Printf.printf
     "batch_sync lifts per-tx sync %.1fx at %d shards / %d writers\n%!"
     (ba.g_ups /. sy.g_ups) smax wmax);
  let group_window =
    group_window_sweep ~scale ~calib ~shards:smax ~writers:wmax
      ~window_axis:[ 1; 2; 4; 8; 16; 32; 64 ]
  in
  Common.table ~header:"window"
    ~cols:[ "TX/s" ]
    ~rows:
      (List.map
         (fun r -> (string_of_int r.g_window, [ r.g_ups ]))
         group_window)
    Common.si;
  let group_real = group_real_stats ~ops in
  Printf.printf "%-12s %10s %14s %14s %14s\n" "ack mode" "groups"
    "mean group" "fences/tx" "fences saved";
  List.iter
    (fun r ->
      Printf.printf "%-12s %10d %14.1f %14.3f %14d\n%!" r.gr_mode
        r.gr_group_commits r.gr_mean_group r.gr_engine_per_tx
        r.gr_fences_saved)
    group_real;
  (* recovery fan-out: per-shard work drops with 1/N *)
  Common.subsection
    (Printf.sprintf "per-shard recovery, %d keys, CLFLUSH pwbs, every \
                     shard crashed mid-transaction" recovery_keys);
  Printf.printf "%-8s %14s %14s\n" "shards" "max shard" "sum";
  let recovery =
    List.map
      (fun s ->
        let per_shard_ns = recovery_measure ~keys:recovery_keys s in
        let sum = Array.fold_left ( +. ) 0. per_shard_ns in
        let mx = Array.fold_left Float.max 0. per_shard_ns in
        Printf.printf "%-8d %14s %14s\n%!" s (Common.ns mx) (Common.ns sum);
        { r_shards = s; r_keys = recovery_keys; per_shard_ns })
      shard_axis
  in
  emit_json ~scale:scale_name ~calib ~scaling:(List.rev !scaling) ~cross
    ~large_real ~large_des ~elastic_r ~elastic_d ~avail ~group_des
    ~group_window ~group_real ~recovery "BENCH_shards.json"

let run scale =
  let ops, recovery_keys =
    match scale with
    | Common.Quick -> (1_000, 4_000)
    | Common.Full -> (8_000, 20_000)
  in
  let scale_name =
    match scale with Common.Quick -> "quick" | Common.Full -> "full"
  in
  run_at ~scale_name ~scale ~ops ~recovery_keys
    ~shard_axis:[ 1; 2; 4; 8 ] ~writer_axis:[ 1; 2; 4; 8; 16; 32 ]

(* Tiny parameters so CI catches bitrot (including the JSON emission)
   without paying benchmark cost. *)
let smoke () =
  run_at ~scale_name:"smoke" ~scale:Common.Quick ~ops:60 ~recovery_keys:256
    ~shard_axis:[ 1; 2 ] ~writer_axis:[ 1; 4 ]

(* Quick regression check of the cross-batch curve for @bench-smoke: the
   real store must show protocol activity through the Stats counters
   under every commit protocol, and the calibrated DES must keep the
   decentralized lazy-CLEAR arm ahead of the centralized one at
   cross_p=0.2 — the ordering the tentpole exists to establish.  Fails
   loudly (exception) so the alias catches a regression. *)
let cross_smoke () =
  Common.section "shards_cross: cross-batch protocol regression check";
  (* real-store protocol activity, per protocol arm *)
  List.iter
    (fun (name, proto) ->
      let db, _ = make_store ~protocol:proto ~region_size:(1 lsl 21) 4 in
      for i = 0 to 255 do
        S.put db (key i) (value i)
      done;
      for r = 0 to 3 do
        S.write_batch db (fun b ->
            for i = 0 to 15 do
              S.put b (key ((r * 16) + i)) "x"
            done)
      done;
      let st = S.stats db in
      let fail what =
        failwith (Printf.sprintf "shards_cross(%s): %s" name what)
      in
      if st.Pmem.Stats.intent_prepares = 0 then fail "no intent PREPAREs";
      if st.Pmem.Stats.coordinator_flips = 0 then fail "no COMMIT flips";
      (match proto with
       | Kv.Sharded_db.Decentralized { lazy_clear = true } ->
         if st.Pmem.Stats.lazy_clears = 0 then fail "no lazy CLEARs"
       | _ ->
         if S.pending_intents db <> 0 then fail "records left hooked");
      S.recover ~parallel:false db;
      if S.pending_intents db <> 0 then fail "recovery left records hooked";
      for i = 0 to 63 do
        if S.get db (key i) <> Some "x" then fail "batch write lost"
      done;
      Printf.printf
        "  %-20s prepares=%d flips=%d lazy_clears=%d: ok\n%!" name
        st.Pmem.Stats.intent_prepares st.Pmem.Stats.coordinator_flips
        st.Pmem.Stats.lazy_clears)
    protocols;
  (* DES ordering at the ROADMAP's operating point *)
  let calib = calibrate ~ops:60 in
  let ups name proto cross_p =
    updates_per_sec ~scale:Common.Quick ~calib ~shards:8 ~cross_p
      ~proto_name:name ~proto 32
  in
  let report =
    List.map
      (fun (name, proto) ->
        let u = ups name proto 0.2 in
        Printf.printf "  %-20s cross_p=0.2: %s TX/s\n%!" name (Common.si u);
        (name, u))
      protocols
  in
  let c = List.assoc "centralized" report in
  let dl = List.assoc "decentralized_lazy" report in
  if not (dl > c) then
    failwith
      (Printf.sprintf
         "shards_cross: decentralized_lazy (%.0f TX/s) not ahead of \
          centralized (%.0f TX/s) at cross_p=0.2"
         dl c);
  Printf.printf "shards_cross ok: decentralized_lazy %.2fx centralized\n%!"
    (dl /. c)

(* Quick regression check of the large-batch path for @bench-smoke: a
   real cross-shard batch of multi-KB values must stream more chunks at
   a smaller chunk_bytes (with its oversized undo images spilled) and
   commit intact, and in the calibrated DES the streamed chunk chain
   must show a smaller worst-case small-update latency than the same
   payload held as one monolithic combiner slot — the degradation
   property the chunked PREPARE exists to buy.  Fails loudly so the
   alias catches a regression. *)
let large_smoke () =
  Common.section "shards_large: chunked large-batch regression check";
  let rows = large_batch_real ~ops:48 ~chunk_axis:[ 512; 8192 ] in
  (match rows with
   | [ small; big ] ->
     Printf.printf
       "  chunk_bytes=%d: %.1f chunks/batch, %.1f spills; chunk_bytes=%d: \
        %.1f chunks/batch\n%!"
       small.lb_chunk_bytes small.lb_chunks small.lb_spills
       big.lb_chunk_bytes big.lb_chunks;
     if small.lb_chunks <= big.lb_chunks then
       failwith
         (Printf.sprintf
            "shards_large: %d-byte chunks streamed %.1f chunks/batch, not \
             more than %d-byte chunks' %.1f"
            small.lb_chunk_bytes small.lb_chunks big.lb_chunk_bytes
            big.lb_chunks);
     if small.lb_spills < 1. then
       failwith "shards_large: no undo images spilled for multi-KB values"
   | _ -> assert false);
  let calib = calibrate ~ops:60 in
  let des = large_batch_des ~scale:Common.Quick ~calib ~shards:8 ~writers:32 in
  List.iter
    (fun r ->
      Printf.printf "  %-10s %s TX/s  small mean %s  max %s\n%!" r.ld_arm
        (Common.si r.ld_ups)
        (Common.ns r.ld_small_mean_ns)
        (Common.ns r.ld_small_max_ns))
    des;
  let find a = List.find (fun r -> r.ld_arm = a) des in
  let st = find "streamed" and mono = find "monolithic" in
  if not (st.ld_small_max_ns < mono.ld_small_max_ns) then
    failwith
      (Printf.sprintf
         "shards_large: streamed small-update tail (%.0f ns) not below \
          monolithic (%.0f ns)"
         st.ld_small_max_ns mono.ld_small_max_ns);
  Printf.printf
    "shards_large ok: streaming cuts the small-update tail %.1fx\n%!"
    (mono.ld_small_max_ns /. st.ld_small_max_ns)

(* Quick regression check of the elastic-resize path for @bench-smoke: a
   real online split must bump the epoch, actually stream keys to the
   freshly attached shard, and leave every key readable exactly once;
   the merge back must do the same in reverse.  In the calibrated DES
   the run carrying the background migration must complete fewer
   foreground updates than the identical run without it — the
   resize-under-load dip the bench section quantifies.  Fails loudly so
   the alias catches a regression. *)
let elastic_smoke () =
  Common.section "shards_elastic: online split/merge regression check";
  let keys = 192 in
  let db, regions = make_store ~region_size:(1 lsl 21) 2 in
  for i = 0 to keys - 1 do
    S.put db (key i) (value i)
  done;
  let fail what = failwith ("shards_elastic: " ^ what) in
  let target =
    Pmem.Region.create ~fence:Pmem.Fence.stt ~size:(1 lsl 21) ()
  in
  let born = S.split_shard db ~source:0 target in
  let st = S.stats db in
  if S.epoch db <> 1 then fail "split did not bump the epoch";
  if st.Pmem.Stats.migrations_completed <> 1 then
    fail "split did not tick migrations_completed";
  if st.Pmem.Stats.keys_migrated = 0 then fail "split moved no keys";
  if S.migration_pending db then fail "split left the intent hooked";
  let on_born = ref 0 in
  for i = 0 to keys - 1 do
    if S.get db (key i) <> Some (value i) then fail "split lost a key";
    if S.shard_of_key db (key i) = born then incr on_born
  done;
  if S.count db <> keys then fail "split changed the key count";
  if !on_born = 0 then fail "no key routes to the new shard";
  S.merge_shards db ~source:born ~target:0;
  let st = S.stats db in
  if S.epoch db <> 2 then fail "merge did not bump the epoch";
  if st.Pmem.Stats.migrations_completed <> 2 then
    fail "merge did not tick migrations_completed";
  if S.count db <> keys then fail "merge changed the key count";
  for i = 0 to keys - 1 do
    if S.get db (key i) <> Some (value i) then fail "merge lost a key"
  done;
  ignore (Sys.opaque_identity regions);
  Printf.printf
    "  split+merge streamed %d keys (%d were on shard %d), epoch %d\n%!"
    st.Pmem.Stats.keys_migrated !on_born born (S.epoch db);
  let calib = calibrate ~ops:60 in
  let d = elastic_des ~scale:Common.Quick ~calib ~shards:4 ~writers:16 in
  Printf.printf
    "  DES resize dip: %s -> %s TX/s (%.2fx over %d move batches)\n%!"
    (Common.si d.ed_base_ups) (Common.si d.ed_resize_ups)
    (d.ed_resize_ups /. d.ed_base_ups)
    d.ed_move_batches;
  if not (d.ed_resize_ups > 0.) then
    fail "DES resize arm completed no updates";
  if not (d.ed_resize_ups <= d.ed_base_ups) then
    failwith
      (Printf.sprintf
         "shards_elastic: background migration sped the run up (%.0f -> \
          %.0f TX/s)"
         d.ed_base_ups d.ed_resize_ups);
  Printf.printf "shards_elastic ok: dip %.2fx\n%!"
    (d.ed_resize_ups /. d.ed_base_ups)

(* Quick regression check of the fault-isolation path for @bench-smoke:
   with one shard of a real store rotten, the healthy slots must keep
   serving (most of the key space stays available) while the sick slots
   are refused with the typed verdict, and both self-healing arms must
   converge — key evacuation when no snapshot exists, snapshot restore
   (full byte identity) when one does.  This is the availability
   property the health state machine exists to buy; fails loudly so the
   alias catches a regression. *)
let health_smoke () =
  Common.section "shards_health: fault isolation & self-healing check";
  let a = availability_real ~ops:48 ~keys:192 in
  Printf.printf
    "  %.1f%% of %d keys served with 1/%d shards down; degraded get %s \
     (healthy %s)\n%!"
    (100. *. a.a_available_frac) a.a_keys a.a_shards
    (Common.ns a.a_degraded_get_ns)
    (Common.ns a.a_healthy_get_ns);
  Printf.printf "  evacuation moved %d keys in %s; restore in %s\n%!"
    a.a_evac_moved
    (Common.ns a.a_evac_repair_ns)
    (Common.ns a.a_restore_repair_ns);
  let fail what = failwith ("shards_health: " ^ what) in
  (* with 1 of 4 shards down, at least the other shards' slots serve *)
  if a.a_available_frac < 0.5 then
    fail "less than half the key space served under a one-shard fault";
  if a.a_available_frac > 1. then fail "availability fraction above 1";
  if a.a_evac_moved = 0 then fail "evacuation moved no keys";
  if not (a.a_evac_repair_ns > 0. && a.a_restore_repair_ns > 0.) then
    fail "repair arms reported no wall time";
  Printf.printf "shards_health ok: %.1f%% available, both repair arms \
                 converged\n%!"
    (100. *. a.a_available_frac)

(* Quick regression check of the group-commit front-end for
   @bench-smoke: on the real store the fence economy must follow the
   ack mode (per-tx Sync pays one engine transaction per logical tx;
   Batch_sync and Async pay proportionally fewer, i.e. fences-per-tx
   drops with the achieved group size), and in the calibrated DES the
   Batch_sync arm must clear the ISSUE's >= 2x update-throughput bar
   over per-tx Sync at 8 shards / 32 writers.  Fails loudly so the
   alias catches a regression. *)
let group_smoke () =
  Common.section "shards_group: async group-commit regression check";
  let fail what = failwith ("shards_group: " ^ what) in
  (* real path: fence amortization proportional to group size *)
  let rows = group_real_stats ~ops:256 in
  Printf.printf "%-12s %8s %10s %12s %12s %14s\n" "ack mode" "txs"
    "groups" "mean group" "fences/tx" "fences saved";
  List.iter
    (fun r ->
      Printf.printf "%-12s %8d %10d %12.1f %12.3f %14d\n%!" r.gr_mode
        r.gr_txs r.gr_group_commits r.gr_mean_group r.gr_engine_per_tx
        r.gr_fences_saved)
    rows;
  let find m = List.find (fun r -> r.gr_mode = m) rows in
  let sy = find "sync" and ba = find "batch_sync" and asy = find "async" in
  if sy.gr_engine_per_tx <> 1. then
    fail "Sync did not pay one engine tx per logical tx";
  if sy.gr_fences_saved <> 0 then fail "Sync claimed saved fences";
  if not (ba.gr_mean_group > 1.) then
    fail "Batch_sync did not coalesce at all";
  if not (asy.gr_mean_group > ba.gr_mean_group) then
    fail "Async (window-bound) did not out-coalesce Batch_sync (txs=8)";
  (* fences-per-tx must drop as 1/group-size: the two are exact
     reciprocals by construction, so check the saved-fence count *)
  List.iter
    (fun r ->
      if r.gr_fences_saved <> r.gr_txs - r.gr_group_commits then
        fail (r.gr_mode ^ ": fences_saved <> logical - engine"))
    rows;
  (* DES: the acceptance bar at the headline operating point *)
  let calib = calibrate ~ops:60 in
  let des =
    group_des_ablation ~scale:Common.Quick ~calib ~shards:8 ~writers:32
      ~window:32
  in
  List.iter
    (fun r ->
      Printf.printf "  %-12s %s TX/s  ack mean %s  max %s\n%!" r.g_arm
        (Common.si r.g_ups)
        (Common.ns r.g_small_mean_ns)
        (Common.ns r.g_small_max_ns))
    des;
  let dfind a = List.find (fun r -> r.g_arm = a) des in
  let dsy = dfind "sync" and dba = dfind "batch_sync" in
  if not (dba.g_ups >= 2. *. dsy.g_ups) then
    failwith
      (Printf.sprintf
         "shards_group: Batch_sync (%.0f TX/s) below 2x per-tx Sync \
          (%.0f TX/s) at 8 shards / 32 writers"
         dba.g_ups dsy.g_ups);
  Printf.printf "shards_group ok: batch_sync %.1fx per-tx sync\n%!"
    (dba.g_ups /. dsy.g_ups)
