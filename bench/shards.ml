(* Shard-scaling benchmark for the hash-partitioned Sharded_db: how far
   does splitting one RomulusDB into N independent per-shard engines
   lift update throughput, and what does partitioning buy at recovery
   time?

   Three parts, emitted together to BENCH_shards.json:

   1. Calibration: single-threaded costs measured on the real store —
      read, single-shard batch fixed/marginal cost, and the extra cost
      of a cross-shard batch (the persistent intent record).
   2. Throughput extrapolation: the calibrated costs drive the
      Fc_sharded DES model (one combiner per shard, cross-shard batches
      chained through shard 0's combiner) across shard count x writer
      count, plus a cross-batch-ratio sweep showing where the intent
      overhead eats the partitioning win.
   3. Recovery: a real N-shard store is crashed with every shard dirty
      (a trap fires mid-transaction in each), and each shard's engine
      recovery is timed separately — per-shard recovery work shrinks
      with 1/N, which is what the parallel recover fan-out exploits. *)

module S = Kv.Sharded_db.Default

let key i = Printf.sprintf "k%06d" i
let value i = Printf.sprintf "v%08d" i

let make_store ?(fence = Pmem.Fence.stt) ~region_size nshards =
  let regions =
    Array.init nshards (fun _ ->
        Pmem.Region.create ~fence ~size:region_size ())
  in
  (S.open_db ~initial_buckets:1024 regions, regions)

(* first populated key routing to [shard]; the key space is dense enough
   that every shard owns many *)
let key_for_shard db ~keys shard =
  let rec find i =
    if i >= keys then failwith "no key routes to shard"
    else if S.shard_of_key db (key i) = shard then key i
    else find (i + 1)
  in
  find 0

(* ---- calibration on the real store ---- *)

type calib = {
  read_ns : float;
  update_work_ns : float;   (* marginal cost of one put inside a batch *)
  batch_fixed_ns : float;   (* per-transaction fixed cost *)
  intent_fixed_ns : float;  (* extra serialized cost of a 2-shard batch *)
}

let calibrate ~ops =
  let keys = 512 in
  let db1, r1 = make_store ~region_size:(1 lsl 21) 1 in
  for i = 0 to keys - 1 do
    S.put db1 (key i) (value i)
  done;
  let rng = Workload.Keygen.create ~seed:7 () in
  let rkey () = key (Workload.Keygen.int rng keys) in
  let median ?(runs = 3) ~ops f =
    Workload.Bench_clock.median_ns_per_op ~region:r1.(0) ~runs ~ops f
  in
  for _ = 1 to 50 do
    S.put db1 (rkey ()) "w"
  done;
  Gc.full_major ();
  let read_ns = median ~ops (fun () -> ignore (S.get db1 (rkey ()))) in
  let batch_of n =
    median ~ops:(max 8 (ops / (4 * n))) (fun () ->
        S.write_batch db1 (fun b ->
            for _ = 1 to n do
              S.put b (rkey ()) "w"
            done))
  in
  let batch1 = batch_of 1 in
  let batch16 = batch_of 16 in
  let update_work_ns =
    let w = (batch16 -. batch1) /. 15. in
    if w <= 0. || w > batch1 then batch1 else w
  in
  let batch_fixed_ns = Float.max 0. (batch1 -. update_work_ns) in
  (* a 2-shard batch runs PREPARE + two applies + COMMIT/CLEAR: four
     engine transactions; what the chain costs beyond those is the
     intent bookkeeping (payload encoding, undo capture) *)
  let db2, r2 = make_store ~region_size:(1 lsl 21) 2 in
  for i = 0 to keys - 1 do
    S.put db2 (key i) (value i)
  done;
  let ka = key_for_shard db2 ~keys 0 in
  let kb = key_for_shard db2 ~keys 1 in
  for _ = 1 to 20 do
    S.write_batch db2 (fun b ->
        S.put b ka "w";
        S.put b kb "w")
  done;
  Gc.full_major ();
  let cross_ns =
    (* virtual fence delays land on both regions; sum them *)
    let snap r = Pmem.Region.stats r in
    let s0 = Pmem.Stats.snapshot (snap r2.(0)) in
    let s1 = Pmem.Stats.snapshot (snap r2.(1)) in
    let n = max 8 (ops / 8) in
    let t0 = Workload.Bench_clock.now_ns () in
    for _ = 1 to n do
      S.write_batch db2 (fun b ->
          S.put b ka "w";
          S.put b kb "w")
    done;
    let wall = Workload.Bench_clock.now_ns () -. t0 in
    let d r past =
      let d = Pmem.Stats.since ~now:(snap r) ~past in
      float_of_int d.Pmem.Stats.delay_ns
    in
    (wall +. d r2.(0) s0 +. d r2.(1) s1) /. float_of_int n
  in
  let four_tx = 4. *. (batch_fixed_ns +. update_work_ns) in
  let intent_fixed_ns = Float.max 0. (cross_ns -. four_tx) in
  { read_ns; update_work_ns; batch_fixed_ns; intent_fixed_ns }

(* ---- DES throughput sweep ---- *)

let updates_per_sec ~scale ~calib ~shards ~cross_p writers =
  let costs =
    { Simsched.Sync_model.read_ns = calib.read_ns;
      update_work_ns = calib.update_work_ns;
      batch_fixed_ns = calib.batch_fixed_ns;
      think_ns = Float.max Common.think_ns (0.25 *. calib.read_ns) }
  in
  let r =
    Simsched.Sync_model.run
      { Simsched.Sync_model.model =
          Fc_sharded
            { shards; cross_p; intent_fixed_ns = calib.intent_fixed_ns };
        costs; readers = 0; writers;
        duration_ns = Common.sim_duration_ns scale; seed = 13 }
  in
  Simsched.Sync_model.updates_per_sec r

(* ---- recovery timing on the real store ---- *)

let recovery_measure ~keys nshards =
  let region_size = ((keys / nshards) * 1024) + (1 lsl 21) in
  let db, regions =
    make_store ~fence:Pmem.Fence.clflush ~region_size nshards
  in
  for i = 0 to keys - 1 do
    S.put db (key i) (value i)
  done;
  (* crash with real work in flight on every shard *)
  Array.iteri
    (fun s r ->
      let k = key_for_shard db ~keys s in
      Pmem.Region.set_trap r 12;
      (match S.put db k "dirty" with
       | _ -> failwith "trap did not fire"
       | exception Pmem.Region.Crash_point -> ());
      Pmem.Region.clear_trap r)
    regions;
  Array.iter (fun r -> Pmem.Region.crash r Pmem.Region.Drop_all) regions;
  let per_shard =
    Array.mapi
      (fun s r ->
        Workload.Bench_clock.time_ns ~region:r (fun () ->
            S.recover_shard db s))
      regions
  in
  (* sanity: the store is whole again (the in-flight overwrites either
     took or were rolled back; the key population is unchanged) *)
  if S.count db <> keys then failwith "recovery lost keys";
  per_shard

(* ---- output ---- *)

type scaling_row = {
  shards : int;
  writers : int;
  ups : float;
  ns_per_tx : float;
}

type cross_row = { c_shards : int; cross_p : float; c_ups : float }

type recovery_row = {
  r_shards : int;
  r_keys : int;
  per_shard_ns : float array;
}

let emit_json ~scale ~calib ~scaling ~cross ~recovery path =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"shards\",\n";
  Printf.bprintf b "  \"scale\": \"%s\",\n" scale;
  Buffer.add_string b "  \"ptm\": \"romL\",\n";
  Printf.bprintf b
    "  \"calibration\": {\"read_ns\": %.1f, \"update_work_ns\": %.1f, \
     \"batch_fixed_ns\": %.1f, \"intent_fixed_ns\": %.1f},\n"
    calib.read_ns calib.update_work_ns calib.batch_fixed_ns
    calib.intent_fixed_ns;
  Buffer.add_string b "  \"scaling\": [\n";
  let n = List.length scaling in
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "    {\"shards\": %d, \"writers\": %d, \"updates_per_sec\": %.0f, \
         \"ns_per_tx\": %.1f}%s\n"
        r.shards r.writers r.ups r.ns_per_tx
        (if i = n - 1 then "" else ","))
    scaling;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"cross_batch\": [\n";
  let n = List.length cross in
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "    {\"shards\": %d, \"cross_p\": %.2f, \"updates_per_sec\": \
         %.0f}%s\n"
        r.c_shards r.cross_p r.c_ups
        (if i = n - 1 then "" else ","))
    cross;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"recovery\": [\n";
  let n = List.length recovery in
  List.iteri
    (fun i r ->
      let per =
        String.concat ", "
          (Array.to_list
             (Array.map (fun ns -> Printf.sprintf "%.0f" ns) r.per_shard_ns))
      in
      let sum = Array.fold_left ( +. ) 0. r.per_shard_ns in
      let mx = Array.fold_left Float.max 0. r.per_shard_ns in
      Printf.bprintf b
        "    {\"shards\": %d, \"keys\": %d, \"per_shard_ns\": [%s], \
         \"max_shard_ns\": %.0f, \"sum_ns\": %.0f}%s\n"
        r.r_shards r.r_keys per mx sum
        (if i = n - 1 then "" else ","))
    recovery;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc b);
  Printf.printf "wrote %s\n%!" path

let run_at ~scale_name ~scale ~ops ~recovery_keys ~shard_axis ~writer_axis =
  Common.section
    "shard scaling: hash-partitioned Sharded_db (romL per shard)";
  let calib = calibrate ~ops in
  Printf.printf
    "calibrated: read %s  batch fixed %s  per-update %s  intent extra %s\n%!"
    (Common.ns calib.read_ns)
    (Common.ns calib.batch_fixed_ns)
    (Common.ns calib.update_work_ns)
    (Common.ns calib.intent_fixed_ns);
  (* throughput vs shard count x writer count *)
  Common.subsection "update throughput (TX/s), single-key ops";
  let scaling = ref [] in
  Common.table ~header:"writers"
    ~cols:(List.map (fun s -> Printf.sprintf "%d shard" s) shard_axis)
    ~rows:
      (List.map
         (fun w ->
           ( string_of_int w,
             List.map
               (fun s ->
                 let ups =
                   updates_per_sec ~scale ~calib ~shards:s ~cross_p:0. w
                 in
                 scaling :=
                   { shards = s; writers = w; ups;
                     ns_per_tx = 1e9 /. ups }
                   :: !scaling;
                 ups)
               shard_axis ))
         writer_axis)
    Common.si;
  (* the headline scaling factor the partitioning is for *)
  let at shards writers =
    match
      List.find_opt
        (fun r -> r.shards = shards && r.writers = writers)
        !scaling
    with
    | Some r -> r.ups
    | None -> nan
  in
  let wmax = List.fold_left max 1 writer_axis in
  let smax = List.fold_left max 1 shard_axis in
  Printf.printf "%d writers: 1 shard %s TX/s -> %d shards %s TX/s (%.1fx)\n%!"
    wmax
    (Common.si (at 1 wmax))
    smax
    (Common.si (at smax wmax))
    (at smax wmax /. at 1 wmax);
  (* cross-shard batch ratio: where the intent protocol eats the win *)
  Common.subsection
    (Printf.sprintf
       "cross-shard batch ratio (%d shards, %d writers; every cross \
        batch chains through shard 0)"
       smax wmax);
  let cross_axis = [ 0.; 0.05; 0.2; 0.5 ] in
  let cross =
    List.map
      (fun cross_p ->
        { c_shards = smax; cross_p;
          c_ups = updates_per_sec ~scale ~calib ~shards:smax ~cross_p wmax })
      cross_axis
  in
  Common.table ~header:"cross_p"
    ~cols:[ "TX/s"; "vs 1 shard" ]
    ~rows:
      (List.map
         (fun r ->
           ( Printf.sprintf "%.2f" r.cross_p,
             [ r.c_ups; r.c_ups /. at 1 wmax ] ))
         cross)
    Common.si;
  (* recovery fan-out: per-shard work drops with 1/N *)
  Common.subsection
    (Printf.sprintf "per-shard recovery, %d keys, CLFLUSH pwbs, every \
                     shard crashed mid-transaction" recovery_keys);
  Printf.printf "%-8s %14s %14s\n" "shards" "max shard" "sum";
  let recovery =
    List.map
      (fun s ->
        let per_shard_ns = recovery_measure ~keys:recovery_keys s in
        let sum = Array.fold_left ( +. ) 0. per_shard_ns in
        let mx = Array.fold_left Float.max 0. per_shard_ns in
        Printf.printf "%-8d %14s %14s\n%!" s (Common.ns mx) (Common.ns sum);
        { r_shards = s; r_keys = recovery_keys; per_shard_ns })
      shard_axis
  in
  emit_json ~scale:scale_name ~calib ~scaling:(List.rev !scaling) ~cross
    ~recovery "BENCH_shards.json"

let run scale =
  let ops, recovery_keys =
    match scale with
    | Common.Quick -> (1_000, 4_000)
    | Common.Full -> (8_000, 20_000)
  in
  let scale_name =
    match scale with Common.Quick -> "quick" | Common.Full -> "full"
  in
  run_at ~scale_name ~scale ~ops ~recovery_keys
    ~shard_axis:[ 1; 2; 4; 8 ] ~writer_axis:[ 1; 2; 4; 8; 16; 32 ]

(* Tiny parameters so CI catches bitrot (including the JSON emission)
   without paying benchmark cost. *)
let smoke () =
  run_at ~scale_name:"smoke" ~scale:Common.Quick ~ops:60 ~recovery_keys:256
    ~shard_axis:[ 1; 2 ] ~writer_axis:[ 1; 4 ]
