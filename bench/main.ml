(* Benchmark harness entry point: one sub-experiment per table/figure of
   the paper's evaluation (§6).  With no arguments every experiment runs
   with quick parameters; --full uses paper-scale parameters. *)

let experiments : (string * string * (Common.scale -> unit)) list =
  [ ("table1", "fence/amplification comparison (Table 1)", Table1.run);
    ("fig4", "data-structure throughput, 1k keys (Figure 4)", Fig4.run);
    ("fig5", "fixed hash map speedup vs PMDK (Figure 5)", Fig5.run);
    ("fig6", "hash map with growing key counts (Figure 6)", Fig6.run);
    ("fig7", "read-dominated workloads (Figure 7)", Fig7.run);
    ("fig8", "RomulusDB vs LevelDB (Figure 8)", Fig8.run);
    ("fig9", "SPS benchmark, fence types (Figure 9)", Fig9.run);
    ("recovery", "recovery cost (6.5)", Recovery.run);
    ("pwbhist", "pwb-per-transaction histograms (6.2)", Pwbhist.run);
    ("ablation", "design-choice ablations", Ablation.run);
    ("commit_path", "commit-path write-set ablation (BENCH_commit_path.json)",
     Commit_path.run);
    ("scrub", "media-scrub overhead (BENCH_scrub.json)", Scrub.run);
    ("shards", "Sharded_db shard scaling (BENCH_shards.json)", Shards.run);
    ("micro", "bechamel microbenchmarks", Micro.run) ]

(* Runnable by name (and via the @bench-smoke alias) but excluded from the
   default "all" set so a full run's BENCH_commit_path.json is not
   overwritten by the tiny smoke parameters. *)
let hidden : (string * string * (Common.scale -> unit)) list =
  [ ("commit_path_smoke", "commit-path ablation, tiny parameters (CI smoke)",
     fun _ -> Commit_path.smoke ());
    ("shards_smoke", "shard scaling, tiny parameters (CI smoke)",
     fun _ -> Shards.smoke ());
    ("shards_cross", "cross-batch commit-protocol regression check (CI smoke)",
     fun _ -> Shards.cross_smoke ());
    ("shards_large", "chunked large-batch regression check (CI smoke)",
     fun _ -> Shards.large_smoke ());
    ("shards_elastic", "online split/merge regression check (CI smoke)",
     fun _ -> Shards.elastic_smoke ());
    ("shards_health", "fault isolation & self-healing check (CI smoke)",
     fun _ -> Shards.health_smoke ());
    ("shards_group", "async group-commit regression check (CI smoke)",
     fun _ -> Shards.group_smoke ()) ]

let usage () =
  print_endline "usage: main.exe [--full] [EXPERIMENT]...";
  print_endline "experiments:";
  List.iter
    (fun (name, doc, _) -> Printf.printf "  %-10s %s\n" name doc)
    experiments;
  print_endline "  all        run everything (default)"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = List.mem "--full" args in
  let scale = if full then Common.Full else Common.Quick in
  let names = List.filter (fun a -> a <> "--full" && a <> "all") args in
  if List.mem "--help" names || List.mem "-h" names then usage ()
  else begin
    let to_run =
      if names = [] then experiments
      else
        List.map
          (fun n ->
            match
              List.find_opt
                (fun (name, _, _) -> name = n)
                (experiments @ hidden)
            with
            | Some e -> e
            | None ->
              usage ();
              failwith ("unknown experiment " ^ n))
          names
    in
    Printf.printf "romulus-repro benchmarks (%s scale)\n"
      (if full then "full" else "quick");
    List.iter (fun (_, _, f) -> f scale) to_run
  end
