(* Scrub-overhead datapoints: what a media-audit pass costs on a live
   RomulusLog heap.  Three numbers per heap size, emitted to
   BENCH_scrub.json:

   - the cost of one clean scrub pass (CRC verification of every clean
     line in both twins' used spans — the steady-state background cost);
   - the per-line cost of that pass;
   - the cost of a pass that additionally repairs rotten lines from the
     twin (detection + copy + write-back + fence).

   Commit-path overhead of the sidecar itself is not measured separately:
   maintenance is O(1) per line write-back (a 4-byte blit and two flag
   stores), invisible next to the pwb it rides on. *)

module P = Romulus.Logged
module H = Pds.Hash_map.Make (P)

type row = {
  keys : int;
  span_bytes : int;
  lines : int;
  clean_ns : float;
  ns_per_line : float;
  rotten : int;
  repair_ns : float;
}

let measure ~keys ~runs =
  let r = Pmem.Region.create ~size:(1 lsl 21) () in
  let p = P.open_region r in
  let h = H.create ~initial_buckets:64 p ~root:0 in
  for i = 0 to keys - 1 do
    ignore (H.put h i (i * 7))
  done;
  (* settle to a durable image and warm the sidecar (first audit fills
     every lazily-invalidated entry) *)
  Pmem.Region.crash r Pmem.Region.Drop_all;
  P.recover p;
  let report = P.scrub p in
  let lines = report.Romulus.Engine.scrubbed in
  let span_bytes =
    match P.media_spans p with (_, span) :: _ -> span | [] -> 0
  in
  let clean_ns =
    Workload.Bench_clock.median_ns_per_op ~region:r ~runs ~ops:1 (fun () ->
        ignore (P.scrub p : Romulus.Engine.scrub_report))
  in
  (* rot a spread of main-copy lines, then time the repairing pass *)
  let mbase, mspan = List.hd (P.media_spans p) in
  let line_size = Pmem.Region.line_size r in
  let first = (mbase + line_size - 1) / line_size in
  let last = (mbase + mspan - 1) / line_size in
  let rotten = min 32 (last - first + 1) in
  let repair_ns =
    Workload.Bench_clock.median_ns_per_op ~region:r ~runs ~ops:1 (fun () ->
        for i = 0 to rotten - 1 do
          Pmem.Region.corrupt_line r
            ~line:(first + (i * (last - first) / max 1 rotten))
        done;
        ignore (P.scrub p : Romulus.Engine.scrub_report))
  in
  { keys;
    span_bytes;
    lines;
    clean_ns;
    ns_per_line = (if lines = 0 then nan else clean_ns /. float_of_int lines);
    rotten;
    repair_ns }

let emit_json ~scale ~path rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"scrub\",\n";
  Printf.bprintf b "  \"scale\": \"%s\",\n" scale;
  Buffer.add_string b "  \"ptm\": \"romL\",\n";
  Buffer.add_string b "  \"results\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "    {\"keys\": %d, \"span_bytes\": %d, \"lines_scrubbed\": %d, \
         \"clean_pass_ns\": %.1f, \"ns_per_line\": %.2f, \
         \"rotten_lines\": %d, \"repair_pass_ns\": %.1f}%s\n"
        r.keys r.span_bytes r.lines r.clean_ns r.ns_per_line r.rotten
        r.repair_ns
        (if i = n - 1 then "" else ","))
    rows;
  Buffer.add_string b "  ]\n}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc b);
  Printf.printf "wrote %s (%d rows)\n%!" path n

let run scale =
  Common.section "scrub overhead (RomulusLog, CRC-32 sidecar audit)";
  let key_axis, runs =
    match scale with
    | Common.Quick -> ([ 256; 1_024; 4_096 ], 3)
    | Common.Full -> ([ 256; 1_024; 4_096; 16_384 ], 5)
  in
  let rows = List.map (fun keys -> measure ~keys ~runs) key_axis in
  Common.table ~header:"keys"
    ~cols:[ "span"; "lines"; "clean pass"; "ns/line"; "repair pass" ]
    ~rows:
      (List.map
         (fun r ->
           ( string_of_int r.keys,
             [ float_of_int r.span_bytes;
               float_of_int r.lines;
               r.clean_ns;
               r.ns_per_line;
               r.repair_ns ] ))
         rows)
    Common.si;
  emit_json
    ~scale:(match scale with Common.Quick -> "quick" | Common.Full -> "full")
    ~path:"BENCH_scrub.json" rows
