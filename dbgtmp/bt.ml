module P = Romulus.Logged
module Bt = Pds.Bptree.Make (P)

let run_ops ops =
  let r = Pmem.Region.create ~size:(1 lsl 20) () in
  let p = P.open_region r in
  let b = Bt.create p ~root:0 in
  List.iter (fun (op, k) ->
    match op with
    | 0 -> ignore (Bt.put b k (k * 3))
    | 1 -> ignore (Bt.remove b k)
    | _ -> ignore (Bt.get b k)) ops;
  match Bt.check b with Ok () -> true | Error e -> (Printf.printf "ERR: %s\n" e; false)

let () =
  Random.self_init ();
  for trial = 1 to 2000 do
    let n = Random.int 60 in
    let ops = List.init n (fun _ -> (Random.int 3, Random.int 120)) in
    (* watchdog via alarm *)
    ignore (Unix.alarm 5);
    Sys.set_signal Sys.sigalrm (Sys.Signal_handle (fun _ ->
      Printf.printf "HANG at trial %d: [%s]\n%!" trial
        (String.concat "; " (List.map (fun (o,k) -> Printf.sprintf "(%d,%d)" o k) ops));
      exit 2));
    if not (run_ops ops) then begin
      Printf.printf "CHECK FAIL trial %d: [%s]\n%!" trial
        (String.concat "; " (List.map (fun (o,k) -> Printf.sprintf "(%d,%d)" o k) ops));
      exit 3
    end;
    ignore (Unix.alarm 0)
  done;
  print_endline "no hang in 2000 trials"
