(* Failpoint registry: named crash/fault-injection sites threaded through
   the persistence-critical paths (commit, recovery, allocator).

   The crash-trap machinery in [Pmem.Region] crashes at the k-th
   *primitive*, which sweeps every instruction boundary but makes it
   awkward to target one specific window ("right after CPY became durable
   but before replication touched back").  A failpoint names that window:
   the code declares a site once ([site "engine.commit.cpy_published"]),
   calls [hit] at the spot, and a campaign arms the site by name with an
   arbitrary action — typically [Pmem.Region.kill], powering the machine
   off exactly there.

   Sites self-register at module-initialization time, so a campaign can
   enumerate and validate names ([sites], [is_site]) without a separate
   manifest going stale.  Arming is one-shot: the action fires once
   (after [skip] earlier visits) and the failpoint disarms itself, so
   recovery code running after the injected crash re-traverses the same
   site unharmed.

   This module deliberately depends on nothing: the action closure carries
   whatever capability the campaign wants to inject. *)

type site = string

(* [can_raise]: the site sits in a window where a *software* exception can
   legitimately originate (user code, allocator, log append) and the
   surrounding transaction machinery promises to abort cleanly.  Sites
   strictly inside commit/recovery machinery are crash-only: the only
   fault that reaches them in reality is a power failure. *)
let registry : (string, bool) Hashtbl.t = Hashtbl.create 32

let site ?(can_raise = false) name =
  Hashtbl.replace registry name can_raise;
  name

let is_site name = Hashtbl.mem registry name

let can_raise name =
  match Hashtbl.find_opt registry name with
  | Some b -> b
  | None -> false

let sites () =
  List.sort String.compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) registry [])

let raise_sites () =
  List.sort String.compare
    (Hashtbl.fold (fun k cr acc -> if cr then k :: acc else acc) registry [])

(* The payload an exception-injection campaign raises at an armed site:
   typed, so aborted transactions can be told apart from real failures. *)
exception Injected of string

type armed = {
  name : string;
  mutable remaining : int; (* visits to let through before firing *)
  action : unit -> unit;
}

let current : armed option ref = ref None

exception Unknown_site of string

let arm ?(skip = 0) name action =
  if not (is_site name) then raise (Unknown_site name);
  if skip < 0 then invalid_arg "Fault.arm: negative skip";
  current := Some { name; remaining = skip; action }

let disarm () = current := None

let armed_site () = Option.map (fun a -> a.name) !current

let fired = ref 0
let fire_count () = !fired

let hit name =
  match !current with
  | Some a when String.equal a.name name ->
    if a.remaining = 0 then begin
      (* disarm before running the action: the action usually raises, and
         recovery must be able to cross this site again *)
      current := None;
      incr fired;
      a.action ()
    end
    else a.remaining <- a.remaining - 1
  | Some _ | None -> ()
