(** Named failpoint sites for targeted fault injection.

    Persistence-critical code declares sites with {!site} and calls {!hit}
    at each one; a campaign arms a single site by name with an action
    (typically powering the simulated machine off via [Pmem.Region.kill])
    and drives the workload until the site fires.  Unlike the region's
    instruction-counting crash trap, a failpoint targets one specific
    window of the protocol — exactly the windows the paper's 4-fence
    correctness argument reasons about. *)

type site = string

(** Declare (and register) a failpoint site.  Idempotent; returns the
    name so sites read as [let fp = Fault.site "engine.commit.x"].
    [can_raise] (default [false]) marks the site as raise-capable: it
    sits in a window where a software exception can originate (user code,
    allocator, log append) and the enclosing transaction machinery
    promises to abort cleanly — exception-injection campaigns sweep
    exactly these sites.  Crash injection may target any site. *)
val site : ?can_raise:bool -> string -> site

(** All registered site names, sorted.  Sites register when their module
    initializes, so link the libraries of interest before asking. *)
val sites : unit -> string list

(** The raise-capable subset of {!sites} (see [can_raise]). *)
val raise_sites : unit -> string list

val is_site : string -> bool

(** Whether the named site was registered raise-capable. *)
val can_raise : string -> bool

(** Raised (by convention) at armed sites during exception-injection
    campaigns: [arm site (fun () -> raise (Injected site))].  Typed so the
    resulting transaction abort is distinguishable from a real failure. *)
exception Injected of string

exception Unknown_site of string

(** [arm ?skip name action] arms [name]: its [skip+1]-th visit runs
    [action].  Arming is one-shot — the site disarms itself immediately
    before the action runs, so post-crash recovery can cross it again.
    Raises {!Unknown_site} for a name no linked module registered. *)
val arm : ?skip:int -> string -> (unit -> unit) -> unit

val disarm : unit -> unit

(** Name currently armed, if any. *)
val armed_site : unit -> string option

(** Visit a site: runs (and consumes) the armed action when it matches. *)
val hit : site -> unit

(** Total failpoint firings in this process (diagnostics). *)
val fire_count : unit -> int
