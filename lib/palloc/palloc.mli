(** Sequential persistent-memory allocator (Doug Lea style): boundary tags,
    segregated free lists, coalescing.

    The allocator is a functor over a word memory; instantiated with a
    PTM's interposed store, its metadata updates become part of the
    enclosing transaction and roll back on crashes like any user data
    (§4.4 of the paper). *)

module type MEM = sig
  type t

  (** Load the 8-byte word at a byte offset. *)
  val load : t -> int -> int

  (** Store the 8-byte word at a byte offset (interposed by the PTM). *)
  val store : t -> int -> int -> unit
end

(** Raised when the arena cannot satisfy a request.  A recoverable,
    typed event: inside a PTM transaction the enclosing [update_tx]
    aborts cleanly and the arena stays exactly as it was. *)
exception Out_of_memory of { requested : int; available : int }

(** Raised on metadata corruption (bad magic, an undecodable header met
    while validating a free). *)
exception Corrupt of string

(** Raised by {!Make.free} for an offset that is not the payload of a
    live chunk: outside the heap, misaligned, interior to a chunk, or
    already freed (including a stale pointer to a chunk that an earlier
    free coalesced away).  Detected *before* any metadata is modified, so
    the arena is untouched. *)
exception Invalid_free of { offset : int; reason : string }

(** Number of segregated free lists. *)
val nbins : int

(** Bytes of allocator metadata at the start of the arena. *)
val meta_bytes : int

(** Offset, relative to the arena base, of the word holding the allocation
    frontier (an absolute region offset).  A twin-copy engine reads the
    consistent copy's frontier during recovery to size the raw copy. *)
val top_offset : int

(** The free-list index for a chunk of the given size (exposed for
    tests). *)
val bin_index : int -> int

module Make (M : MEM) : sig
  type t

  (** [init mem ~base ~size] formats a fresh arena occupying
      [base, base+size) and returns a handle. *)
  val init : M.t -> base:int -> size:int -> t

  (** [attach mem ~base] re-opens a previously formatted arena (after a
      restart); raises [Corrupt] if the magic does not match. *)
  val attach : M.t -> base:int -> t

  (** [alloc t n] returns the byte offset of an [n]-byte payload.  The
      payload is NOT zeroed.  Raises {!Out_of_memory} when the arena is
      exhausted. *)
  val alloc : t -> int -> int

  (** Raises {!Invalid_free} (before touching any metadata) when the
      offset is not a live chunk — including double frees. *)
  val free : t -> int -> unit

  (** Bytes between the arena base and the allocation frontier — the upper
      bound a twin-copy commit needs to replicate. *)
  val used_bytes : t -> int

  (** Offset of the first chunk payload minus 8 (start of the chunk
      area). *)
  val data_start : t -> int

  (** Usable payload bytes of an allocated chunk (>= the requested size). *)
  val usable_size : t -> int -> int

  (** Full structural invariant check (heap walk + bin walk); returns all
      violations found. *)
  val check : t -> (unit, string) result
end
