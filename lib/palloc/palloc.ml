(* Sequential persistent-memory allocator, in the style of Doug Lea's
   malloc (boundary tags + segregated free lists), §4.4 of the paper.

   The allocator is a functor over an abstract word memory [MEM].  Every
   metadata access goes through [MEM.load]/[MEM.store]; when instantiated
   with a PTM's interposed store (log + pwb), the allocator metadata becomes
   part of the transaction and is rolled back on a crash exactly like user
   data — the property that lets Romulus use *any* sequential allocator.

   Heap layout (all offsets are absolute byte offsets into the region):

     base+0   magic
     base+8   top          first never-allocated byte (bump frontier)
     base+16  limit        end of the arena
     base+24  frontier_prev_inuse   in-use bit of the chunk just below top
     base+32  bins[NBINS]  heads of segregated free lists (0 = empty)
     ...      data chunks, 16-byte aligned

   Chunk layout: a chunk of [size] bytes (size includes the 8-byte header,
   and is a multiple of 16) starts at [c - 8] where [c] is the payload
   offset handed to the user.

     c-8   header: size lor (inuse << 0) lor (prev_inuse << 1)
     c     payload ... (free chunks: fd at c, bk-address at c+8,
                        footer (= size) at c-8+size-8)

   [bk] stores the *address of the predecessor's fd field* (the classic
   pseudo-chunk trick), so unlinking from the head of a bin and from the
   middle of a list is the same code path.

   Invariants (checked by [check]):
   - chunks tile [data_start, top) exactly;
   - no two adjacent free chunks (always coalesced), and no free chunk
     adjacent to top (merged into top);
   - next chunk's prev_inuse bit mirrors this chunk's inuse bit;
   - the free chunks found by walking the heap are exactly the members of
     the bins, each in the bin its size maps to. *)

module type MEM = sig
  type t

  val load : t -> int -> int
  val store : t -> int -> int -> unit
end

exception Out_of_memory of { requested : int; available : int }

exception Corrupt of string

exception Invalid_free of { offset : int; reason : string }

(* Failpoint sites: allocator metadata is mid-surgery at these points —
   a crash must roll the half-linked chunks back with the transaction.
   Both are raise-capable: an exception here (rather than a power
   failure) models user-visible allocator faults, and the enclosing
   transaction must abort cleanly around the half-done surgery. *)
let fp_alloc_split = Fault.site ~can_raise:true "palloc.alloc.split"
let fp_free_unlinked = Fault.site ~can_raise:true "palloc.free.unlinked"

let magic_value = 0x50414C4C (* "PALL" *)

let nbins = 64
let min_chunk = 32
let small_max = 512

(* metadata field offsets relative to [base] *)
let o_magic = 0
let o_top = 8
let o_limit = 16
let o_frontier_prev = 24
let o_bins = 32

let meta_bytes = o_bins + (8 * nbins)

let top_offset = o_top

let round16 n = (n + 15) land lnot 15

let bin_index size =
  if size <= small_max then (size - min_chunk) / 16
  else begin
    (* large bins: one per power of two above [small_max] *)
    let small_bins = (small_max - min_chunk) / 16 in
    let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
    let j = log2 (size - 1) 0 - 8 in
    min (nbins - 1) (small_bins + j)
  end

module Make (M : MEM) = struct
  type t = { mem : M.t; base : int }

  (* ---- field helpers ---- *)

  let top t = M.load t.mem (t.base + o_top)
  let set_top t v = M.store t.mem (t.base + o_top) v
  let limit t = M.load t.mem (t.base + o_limit)
  let frontier_prev t = M.load t.mem (t.base + o_frontier_prev)
  let set_frontier_prev t v = M.store t.mem (t.base + o_frontier_prev) v
  let bin_addr t i = t.base + o_bins + (8 * i)

  let header c = c - 8
  let hdr_size h = h land lnot 15
  let hdr_inuse h = h land 1 <> 0
  let hdr_prev_inuse h = h land 2 <> 0

  let read_header t c = M.load t.mem (header c)

  let write_header t c ~size ~inuse ~prev_inuse =
    let h =
      size lor (if inuse then 1 else 0) lor (if prev_inuse then 2 else 0)
    in
    M.store t.mem (header c) h

  let write_footer t c ~size = M.store t.mem (header c + size - 8) size

  (* next chunk's payload offset, or None when this chunk touches top *)
  let next_chunk t c ~size =
    let n = header c + size + 8 in
    if n - 8 >= top t then None else Some n

  let set_prev_inuse t c v =
    let h = read_header t c in
    let h = if v then h lor 2 else h land lnot 2 in
    M.store t.mem (header c) h

  (* ---- free-list linking ---- *)

  let insert_into_bin t c ~size =
    let slot = bin_addr t (bin_index size) in
    let old = M.load t.mem slot in
    M.store t.mem c old;           (* fd *)
    M.store t.mem (c + 8) slot;    (* bk = address of predecessor's fd *)
    M.store t.mem slot c;
    if old <> 0 then M.store t.mem (old + 8) c

  let unlink t c =
    let fd = M.load t.mem c in
    let bk = M.load t.mem (c + 8) in
    M.store t.mem bk fd;
    if fd <> 0 then M.store t.mem (fd + 8) bk

  (* ---- initialization ---- *)

  (* payload offset of the first chunk; its header sits 8 bytes below, at
     the initial bump frontier *)
  let data_start_of ~base = round16 (base + meta_bytes) + 8

  let init mem ~base ~size =
    if base <= 0 then invalid_arg "Palloc.init: base must be positive";
    let t = { mem; base } in
    let start = data_start_of ~base in
    if start + min_chunk > base + size then
      invalid_arg "Palloc.init: arena too small";
    M.store mem (base + o_magic) magic_value;
    set_top t (start - 8);
    M.store mem (base + o_limit) (base + size);
    set_frontier_prev t 1;
    for i = 0 to nbins - 1 do
      M.store mem (bin_addr t i) 0
    done;
    t

  let attach mem ~base =
    let t = { mem; base } in
    if M.load mem (base + o_magic) <> magic_value then
      raise (Corrupt "Palloc.attach: bad magic");
    t

  (* ---- allocation ---- *)

  let chunk_size_for nbytes = max min_chunk (round16 (nbytes + 8))

  (* Split [c] (free, unlinked, of [size] bytes) so that only [need] bytes
     remain allocated; the remainder goes back to a bin. *)
  let split t c ~size ~need ~prev_inuse =
    if size - need >= min_chunk then begin
      let rest = header c + need + 8 in
      let rest_size = size - need in
      write_header t rest ~size:rest_size ~inuse:false ~prev_inuse:true;
      write_footer t rest ~size:rest_size;
      insert_into_bin t rest ~size:rest_size;
      write_header t c ~size:need ~inuse:true ~prev_inuse;
      need
    end
    else begin
      (* allocate the whole chunk: the next chunk's prev becomes in-use *)
      write_header t c ~size ~inuse:true ~prev_inuse;
      (match next_chunk t c ~size with
       | Some n -> set_prev_inuse t n true
       | None ->
         (* a free chunk is never adjacent to top, so this cannot happen *)
         raise (Corrupt "Palloc: free chunk adjacent to top"));
      size
    end

  (* First fit within a bin; exact-size bins fit on the first element. *)
  let take_from_bin t i ~need =
    let rec scan c =
      if c = 0 then None
      else
        let size = hdr_size (read_header t c) in
        if size >= need then Some (c, size)
        else scan (M.load t.mem c)
    in
    match scan (M.load t.mem (bin_addr t i)) with
    | None -> None
    | Some (c, size) ->
      unlink t c;
      Fault.hit fp_alloc_split;
      let prev_inuse = hdr_prev_inuse (read_header t c) in
      let _ = split t c ~size ~need ~prev_inuse in
      Some c

  let alloc_from_top t ~need =
    let tp = top t in
    if tp + need > limit t then
      raise (Out_of_memory { requested = need; available = limit t - tp });
    let c = tp + 8 in
    write_header t c ~size:need ~inuse:true
      ~prev_inuse:(frontier_prev t <> 0);
    set_top t (tp + need);
    set_frontier_prev t 1;
    c

  let alloc t nbytes =
    if nbytes < 0 then invalid_arg "Palloc.alloc: negative size";
    let need = chunk_size_for nbytes in
    let rec try_bins i =
      if i >= nbins then alloc_from_top t ~need
      else
        match take_from_bin t i ~need with
        | Some c -> c
        | None -> try_bins (i + 1)
    in
    try_bins (bin_index need)

  (* ---- free ---- *)

  (* Walk the chunk lattice from the bottom of the heap to decide whether
     [c] is the payload offset of a live chunk.  Freeing anything else
     (a stale pointer, an interior offset, a chunk whose header was
     absorbed by an earlier coalescing free) would silently corrupt the
     free lists, so [free] refuses with a typed {!Invalid_free} instead.
     The walk is linear in the number of chunks below [c]; arenas here
     are simulation-sized, and detecting the corruption beats speed. *)
  let validate_free t c =
    let invalid reason = raise (Invalid_free { offset = c; reason }) in
    let ds = data_start_of ~base:t.base in
    let tp = top t in
    if c < ds || header c >= tp then invalid "offset outside the heap";
    if (c - ds) mod 16 <> 0 then invalid "misaligned chunk offset";
    let rec seek p =
      if p = c then ()
      else if p > c then invalid "interior offset, not a chunk start"
      else begin
        let size = hdr_size (read_header t p) in
        if size < min_chunk || size mod 16 <> 0 then
          raise
            (Corrupt
               (Printf.sprintf "Palloc.free: heap walk hit bad header at %d"
                  p));
        seek (p + size)
      end
    in
    seek ds;
    if not (hdr_inuse (read_header t c)) then invalid "double free"

  let free t c =
    validate_free t c;
    let h = read_header t c in
    let size = hdr_size h in
    let c, size, prev_inuse =
      (* backward coalescing via the previous chunk's footer *)
      if hdr_prev_inuse h then (c, size, true)
      else begin
        let prev_size = M.load t.mem (header c - 8) in
        let p = c - prev_size in
        unlink t p;
        let ph = read_header t p in
        (p, size + prev_size, hdr_prev_inuse ph)
      end
    in
    let c, size =
      (* forward coalescing *)
      match next_chunk t c ~size with
      | Some n when not (hdr_inuse (read_header t n)) ->
        let nsize = hdr_size (read_header t n) in
        unlink t n;
        (c, size + nsize)
      | Some _ | None -> (c, size)
    in
    Fault.hit fp_free_unlinked;
    if header c + size = top t then begin
      (* give the space back to the bump frontier *)
      set_top t (header c);
      set_frontier_prev t (if prev_inuse then 1 else 0)
    end
    else begin
      write_header t c ~size ~inuse:false ~prev_inuse;
      write_footer t c ~size;
      (match next_chunk t c ~size with
       | Some n -> set_prev_inuse t n false
       | None -> ());
      insert_into_bin t c ~size
    end

  (* ---- accounting & checking ---- *)

  let used_bytes t = top t - t.base

  let data_start t = data_start_of ~base:t.base

  let usable_size t c = hdr_size (read_header t c) - 8

  let check t =
    let errors = ref [] in
    let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
    let free_by_walk = Hashtbl.create 16 in
    (* 1. walk the heap *)
    let tp = top t in
    let rec walk c prev_inuse_expected =
      if c - 8 < tp then begin
        let h = read_header t c in
        let size = hdr_size h in
        if size < min_chunk || size mod 16 <> 0 then
          err "chunk %d has bad size %d" c size
        else begin
          if hdr_prev_inuse h <> prev_inuse_expected then
            err "chunk %d prev_inuse=%b, expected %b" c (hdr_prev_inuse h)
              prev_inuse_expected;
          if not (hdr_inuse h) then begin
            Hashtbl.replace free_by_walk c size;
            if M.load t.mem (header c + size - 8) <> size then
              err "free chunk %d footer mismatch" c
          end;
          if c - 8 + size > tp then err "chunk %d overruns top" c
          else walk (c + size) (hdr_inuse h)
        end
      end
      else if c - 8 <> tp then err "heap does not tile exactly to top"
    in
    walk (data_start t) true;
    (* frontier flag must match the last chunk *)
    let rec last_inuse c acc =
      if c - 8 < tp then begin
        let h = read_header t c in
        let size = hdr_size h in
        if size < min_chunk then acc (* corrupt: already reported by walk *)
        else last_inuse (c + size) (hdr_inuse h)
      end
      else acc
    in
    let last = last_inuse (data_start t) true in
    if (frontier_prev t <> 0) <> last then
      err "frontier_prev=%d but last chunk inuse=%b" (frontier_prev t) last;
    (* 2. walk the bins *)
    let free_by_bins = Hashtbl.create 16 in
    for i = 0 to nbins - 1 do
      let rec follow c prev_fd_addr =
        if c <> 0 then begin
          if Hashtbl.mem free_by_bins c then err "chunk %d in two bins" c
          else begin
            let h = read_header t c in
            if hdr_inuse h then err "in-use chunk %d in bin %d" c i;
            let size = hdr_size h in
            if bin_index size <> i then
              err "chunk %d (size %d) in wrong bin %d" c size i;
            if M.load t.mem (c + 8) <> prev_fd_addr then
              err "chunk %d bad back-link" c;
            Hashtbl.replace free_by_bins c size;
            follow (M.load t.mem c) c
          end
        end
      in
      follow (M.load t.mem (bin_addr t i)) (bin_addr t i)
    done;
    (* 3. the two views agree *)
    Hashtbl.iter
      (fun c _ ->
        if not (Hashtbl.mem free_by_bins c) then
          err "free chunk %d not in any bin" c)
      free_by_walk;
    Hashtbl.iter
      (fun c _ ->
        if not (Hashtbl.mem free_by_walk c) then
          err "bin member %d not free in heap walk" c)
      free_by_bins;
    match !errors with [] -> Ok () | es -> Error (String.concat "; " es)
end
