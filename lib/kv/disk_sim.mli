(** Simulated block device with an OS page cache for the LevelDB-like
    baseline: appends accumulate in the cache until an [fdatasync] makes
    them durable.  All costs are virtual nanoseconds, so benchmark runs
    are deterministic. *)

(** A read whose transient faults exhausted the bounded retry budget.
    Typed: flaky media surfaces as an error the caller can handle, never
    as silently-missing data. *)
exception Read_failed of { attempts : int }

type t

val create :
  ?write_ns_base:int ->
  ?write_ns_per_16bytes:int ->
  ?fdatasync_ns:int ->
  ?read_backoff_ns:int ->
  unit ->
  t

(** Append [n] bytes; returns the end offset. *)
val write : t -> int -> int

val fdatasync : t -> unit

(** Charge an arbitrary virtual cost (modelled read paths). *)
val charge : t -> int -> unit

(** A read operation costing [ns] virtual nanoseconds per attempt.  With
    read faults armed ({!set_read_faults}) each attempt fails with the
    configured probability (deterministic per seed); failed attempts are
    retried after an exponential backoff charged as virtual time, and
    {!Read_failed} is raised once the bounded budget is exhausted. *)
val read : t -> int -> unit

(** Arm transient read-fault injection: each read attempt faults with
    probability [rate], deterministically per [seed]. *)
val set_read_faults : t -> seed:int -> rate:float -> unit

val clear_read_faults : t -> unit

(** Simulated power failure: drop everything beyond the synced prefix;
    returns the durable byte count. *)
val crash : t -> int

val appended : t -> int
val synced : t -> int
val vtime_ns : t -> int
val syncs : t -> int

(** Read operations issued / transient faults retried so far. *)
val reads : t -> int

val read_retries : t -> int
val reset_vtime : t -> unit
