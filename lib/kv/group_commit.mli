(** Async group-commit front-end for {!Sharded_db}.

    Romulus's commit cost is dominated by the per-transaction fence
    sequence, and a cross-shard batch additionally pays its own intent
    record.  This layer sits in front of a sharded store and coalesces:
    clients enqueue logical operations (puts, deletes, whole
    [write_batch] closures) into per-shard submission queues plus one
    dedicated cross-shard queue; a per-queue combiner drains a bounded
    window and settles the whole window as {e one} engine transaction —
    hence one fence sequence — for a single-shard window, or {e one}
    shared decentralized intent record (one mirror per participant
    shard, one coordinator flip, amortized across every merged batch)
    for a cross-shard window.

    The windowed retry protocol is exactly the flat-combining per-round
    raiser rule ({!Sync_prims.Flat_combining.run_rounds}) lifted to
    nested logical transactions: a logical tx that raises inside a
    coalesced engine transaction is answered alone with its exception
    and the survivors retry as a new group, so one poisonous request
    never poisons its window.

    {2 Durability watermark and ack modes}

    Each queue carries a monotone durability watermark: entries are
    assigned consecutive sequence numbers at enqueue, a drain settles
    the oldest [<= window] entries and advances the watermark past
    them, so the settled set is always a prefix of submission order —
    after a crash the surviving writes of a queue are a clean prefix,
    never a torn suffix.  Acknowledgement rides the watermark in three
    modes, mirroring the LevelDB baseline's buffered durability
    ({!Level_db}: [put ?sync] / [create ?sync_every_bytes]):

    - [Sync] — like [put ~sync:true]: the call drains its queue and
      returns (or raises) only once its own entry is settled; an acked
      write is durable and survives any crash.
    - [Batch_sync { txs; bytes }] — like [sync_every_bytes]: the call
      returns at enqueue, and the queue drains itself whenever it holds
      [txs] entries or [bytes] estimated payload bytes (or the window
      fills); acknowledgement advances only with the watermark, so the
      un-acked loss window after a crash is bounded by the thresholds.
    - [Async] — like [put ~sync:false]: acknowledged at enqueue
      ([async_acks] counts the lie), drained when the window fills or
      on an explicit {!Make.flush}.

    {2 Ordering between queues}

    A cross-shard closure's key set is unknown until it runs, so the
    cross queue acts as a sequencing barrier: enqueuing a cross-shard
    batch first drains every shard queue, and enqueuing a single-key
    operation (or reading) while the cross queue is non-empty first
    drains the cross queue.  Consequently at most one side ever holds
    entries, dependent operations never commute, and consecutive
    cross-shard batches — the burst the shared-intent path targets —
    still coalesce.  Reads are read-your-writes: a {!Make.get} consults
    the key's queued operations (newest first) before the store. *)

(** How acknowledgement rides the durability watermark (see above). *)
type ack_mode =
  | Sync
  | Batch_sync of { txs : int; bytes : int }
  | Async

(** Default drain window (max logical transactions coalesced into one
    engine transaction / shared intent). *)
val default_window : int

module Make (P : Sharded_db.SHARD_PTM) : sig
  type t

  (** The underlying store's handle type. *)
  type db = Sharded_db.Make(P).t

  (** Attach a front-end to an open store.  [window] bounds the number
      of logical transactions coalesced per engine round (default
      {!default_window}); [ack] defaults to [Sync], which — with an
      empty backlog — behaves exactly like the bare store, one fence
      sequence per transaction. *)
  val attach : ?window:int -> ?ack:ack_mode -> db -> t

  val db : t -> db
  val ack_mode : t -> ack_mode
  val window : t -> int

  (** Enqueue a put/delete on the key's shard queue.  [Sync] mode
      settles it before returning (raising its own failure, e.g.
      [Shard_unavailable]); the other modes return at enqueue and
      surface failures through {!flush}/{!failures}.  [delete] does not
      report presence — that answer does not exist at enqueue time. *)
  val put : t -> string -> string -> unit

  val delete : t -> string -> unit

  (** Read-your-writes get: drains the cross queue if non-empty, then
      answers from the key's queued operations (newest first) without
      forcing a drain, then from the store. *)
  val get : t -> string -> string option

  (** Enqueue a whole logical transaction (buffered exactly as
      {!Sharded_db.Make.write_batch}).  Closures drained in the same
      window run against one shared batch handle: one engine
      transaction if the merged key set stays on one shard, one shared
      intent record otherwise. *)
  val write_batch : t -> (db -> unit) -> unit

  (** Drain every queue (cross queue first) until empty, then re-raise
      the first deferred failure, if any (clearing the deferred list).
      The post-state is that of the bare store: watermark = submitted
      on every queue. *)
  val flush : t -> unit

  (** Deferred failures of [Batch_sync]/[Async] entries — [(queue,
      seq, exn)] in settle order — not yet surfaced by {!flush}. *)
  val failures : t -> (int * int * exn) list

  (** {2 Watermark observation} (for tests and benchmarks)

      Queues are indexed [0 .. shards-1] for the per-shard queues and
      [shards] for the cross-shard queue. *)

  val queues : t -> int

  (** Sequence numbers assigned so far on a queue (next seq to issue). *)
  val submitted : t -> int -> int

  (** Durability watermark: every entry with [seq < watermark] is
      settled (committed or answered with its failure).  Monotone;
      advances only in submission order. *)
  val watermark : t -> int -> int

  (** Acknowledgement mark: every entry with [seq < acked] has been
      acknowledged to its caller.  [Sync]/[Batch_sync]: equals the
      watermark (ack at flip / when the watermark passes the group);
      [Async]: equals [submitted] (ack at enqueue). *)
  val acked : t -> int -> int

  (** Total entries currently queued across all queues. *)
  val pending : t -> int
end

(** Front-end over the paper's default PTM, matching
    {!Sharded_db.Default}. *)
module Default : module type of Make (Romulus.Logged)
