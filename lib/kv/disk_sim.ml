(* A simulated block device with an OS page cache, for the LevelDB-like
   baseline: appended bytes sit in the page cache until an [fdatasync],
   which makes them durable at a fixed (large) cost.  All costs are
   virtual time, accounted in nanoseconds, so benchmark runs are
   deterministic.

   The cost constants are calibrated to the paper's setup (§6.1: a
   memory-mapped file in /dev/shm, so "disk" writes are cheap but the
   fdatasync system call is not). *)

exception Read_failed of { attempts : int }

type t = {
  mutable appended : int;   (* bytes written (page cache) *)
  mutable synced : int;     (* durable prefix of [appended] *)
  mutable vtime_ns : int;   (* accumulated virtual cost *)
  mutable syncs : int;      (* fdatasync calls *)
  mutable reads : int;      (* read operations issued *)
  mutable read_retries : int;      (* transient faults retried *)
  mutable read_fault_seed : int;
  mutable read_fault_rate : float; (* per-attempt fault probability *)
  write_ns_base : int;      (* per-write syscall overhead *)
  write_ns_per_byte : int;  (* ns per 16 bytes: journal append + memtable flush + first compaction pass *)
  fdatasync_ns : int;
  read_backoff_ns : int;    (* backoff before the first retry; doubles *)
}

let create ?(write_ns_base = 150) ?(write_ns_per_16bytes = 12)
    ?(fdatasync_ns = 400_000) ?(read_backoff_ns = 1_000) () =
  { appended = 0; synced = 0; vtime_ns = 0; syncs = 0;
    reads = 0; read_retries = 0; read_fault_seed = 0; read_fault_rate = 0.0;
    write_ns_base; write_ns_per_byte = write_ns_per_16bytes; fdatasync_ns;
    read_backoff_ns }

(* Append [n] bytes; returns the end offset of the write. *)
let write t n =
  t.appended <- t.appended + n;
  t.vtime_ns <- t.vtime_ns + t.write_ns_base + (n / 16 * t.write_ns_per_byte);
  t.appended

let fdatasync t =
  if t.synced < t.appended then begin
    t.synced <- t.appended;
    t.vtime_ns <- t.vtime_ns + t.fdatasync_ns;
    t.syncs <- t.syncs + 1
  end
  else begin
    (* LevelDB still pays the syscall *)
    t.vtime_ns <- t.vtime_ns + t.fdatasync_ns;
    t.syncs <- t.syncs + 1
  end

(* Simulated power failure: everything beyond the synced prefix is lost.
   Returns the durable byte count the journal can be replayed up to. *)
let crash t =
  t.appended <- t.synced;
  t.synced

(* Charge an arbitrary virtual cost (e.g. the LevelDB read path: block
   cache, index lookups, decompression). *)
let charge t ns = t.vtime_ns <- t.vtime_ns + ns

(* ---- reads with transient-fault injection ----

   Real devices return transient read errors (EIO on a flaky link, a
   media retry inside the drive) that callers are expected to retry.
   [read] models that: each attempt fails with probability
   [read_fault_rate], deterministically per seed; failed attempts retry
   after an exponential backoff (charged as virtual time) and the error
   surfaces as the typed {!Read_failed} only once the retry budget is
   exhausted — never as silently-missing data. *)

let max_read_attempts = 6

(* Deterministic per-(read, attempt) coin (splitmix-style mixer). *)
let read_coin seed i =
  let x = ref ((seed * 0x1e3779b97f4a7c15) + ((i + 1) * 0x3f58476d1ce4e5b9)) in
  x := !x lxor (!x lsr 30);
  x := !x * 0x3f58476d1ce4e5b9;
  x := !x lxor (!x lsr 27);
  !x land max_int

let read t ns =
  t.reads <- t.reads + 1;
  let rec attempt k =
    t.vtime_ns <- t.vtime_ns + ns;
    let faulty =
      t.read_fault_rate > 0.0
      && float_of_int
           (read_coin t.read_fault_seed ((t.reads * max_read_attempts) + k)
           land 0xFFFFF)
         /. 1048576.0
         < t.read_fault_rate
    in
    if faulty then
      if k + 1 >= max_read_attempts then
        raise (Read_failed { attempts = k + 1 })
      else begin
        t.read_retries <- t.read_retries + 1;
        t.vtime_ns <- t.vtime_ns + (t.read_backoff_ns lsl k);
        attempt (k + 1)
      end
  in
  attempt 0

let set_read_faults t ~seed ~rate =
  if not (rate >= 0.0 && rate <= 1.0) then
    invalid_arg "Disk_sim.set_read_faults: rate must be in [0, 1]";
  t.read_fault_seed <- seed;
  t.read_fault_rate <- rate

let clear_read_faults t = t.read_fault_rate <- 0.0

let appended t = t.appended
let synced t = t.synced
let vtime_ns t = t.vtime_ns
let syncs t = t.syncs
let reads t = t.reads
let read_retries t = t.read_retries

let reset_vtime t = t.vtime_ns <- 0
