(** Sharded RomulusDB: the LevelDB interface of {!Romulus_db}, hash-
    partitioned across N independent per-shard PTM instances.  Each shard
    owns its own region, twin-copy engine, C-RW-WP lock and flat-combining
    array, so updates to different shards commit concurrently and each
    shard amortizes its own batch under one set of persistence fences.

    Single-key operations and batches that touch one shard keep exact
    Romulus semantics (with one shard the store is bit-for-bit equivalent
    to {!Romulus_db} over the same operations).  A cross-shard
    [write_batch] is made all-or-nothing by a persistent commit protocol;
    the default is the decentralized presumed-abort protocol:

    - PREPARE+APPLY: each participant shard, in one durable transaction,
      writes its own {e intent mirror} (batch id, coordinator, participant
      set, its slice of operations with per-key undo images) and applies
      the slice — mirror durable iff slice applied.
    - COMMIT: one transaction on the {e coordinator} shard (the minimum
      participant) hooks a flip record carrying the batch id; the flip is
      the batch's durability point.  No fixed shard serializes the
      protocol.
    - CLEAR (lazy by default): stale mirrors are reclaimed piggybacked on
      the shard's next protocol transaction, and a flip once every mirror
      of its batch is gone.  [Decentralized {lazy_clear = false}] clears
      eagerly instead (one extra transaction per participant plus one on
      the coordinator).

    Mirror payloads are {e chunked}: a payload that fits one
    [chunk_bytes] allocation rides the single PREPARE transaction as
    before, while a larger one streams as a linked chain of bounded,
    CRC-32-protected chunk records — one engine transaction each — made
    valid only by a final {e seal} transaction that flips the mirror's
    seal word and applies the slice in the same transaction.  Unsealed
    chains are presumed-abort garbage that recovery (or the inline abort
    path) collects without decoding a byte.  Undo images larger than
    [spill_threshold] are spilled into their own CRC-protected records
    and referenced from the payload, so rollback data for very large
    values never inflates the payload chain.  Graceful degradation is
    governed by per-shard admission control: each cross-shard batch is
    charged its encoded payload bytes against [admission_budget] before
    any persistent effect, and an overloaded shard fails the batch with
    the typed {!Overloaded} (after a bounded backoff) rather than
    surfacing [Palloc.Out_of_memory]; a redo-log overflow mid-PREPARE
    aborts cleanly and retries the batch with smaller chunks (and a
    piggybacked lazy-CLEAR drain that overflows a protocol transaction
    is dropped from it — the records stay parked — rather than failing
    a batch that would fit alone).

    Recovery reconciles by presumed abort: every surviving mirror is
    resolved against its coordinator's flip — flip present means the
    batch committed (the slice is already applied, the mirror is just
    reclaimed); flip absent means the batch aborted, and the mirror's
    still-valid undo images are rolled back (chunk chain and spilled
    images re-verified against their CRCs; unsealed chains collected).
    Crash-during-recovery is idempotent.  The legacy [Centralized]
    shard-0 intent protocol is kept for ablation; recovery reconciles
    both protocols' state regardless of the protocol the store was
    opened with.

    Isolation caveat: a cross-shard batch is crash-atomic and its shards
    individually linearizable, but concurrent readers may observe the
    batch half-applied across shards (there is no cross-shard snapshot
    isolation).  A concurrent single-key write racing a batch on the same
    key is {e not} lost on abort: the write durably invalidates the
    batch's undo image for that key, so neither a runtime rollback nor
    crash recovery overwrites it. *)

(** Raised by [open_db] when given an empty shard array. *)
exception Invalid_shards of int

(** Raised by a cross-shard batch refused by admission control: shard
    [shard] already has [in_flight] payload bytes inside the commit
    protocol and the batch's charge would exceed [budget].  Raised
    before any persistent effect (never wrapped in [Tx_aborted]), after
    a bounded backoff — immediately when the batch alone exceeds the
    budget. *)
exception Overloaded of { shard : int; in_flight : int; budget : int }

(** Raised by [open_from_files] when [shards] disagrees with the snapshot
    file family actually on disk ([found] is the number of consecutive
    shard files present).  An elastic store's family grows when a split
    adds a shard, so the mismatch is detected before any region is
    opened instead of surfacing as an untyped failure inside region
    load. *)
exception Shard_mismatch of { requested : int; found : int }

(** Why a shard is not (fully) available. *)
type health_cause =
  | Unrepairable_media of { offset : int; state : string }
      (** a salvage scrub found a line no twin can vouch for; [offset]
          is region-relative, [state] the protocol state it was found
          under *)
  | Open_failed of string
      (** the shard's engine could not be mounted (recovery refused the
          region, media errors while opening, ...) *)
  | Evacuated of { target : int }
      (** the shard's surviving keys were moved onto [target] and its
          slots re-routed; the verdict is permanent *)

(** Per-shard availability state.  [Healthy] serves everything.
    [Degraded] (engine open, media errors pending repair) serves reads —
    a read of an actually lost line still raises
    [Pmem.Region.Media_error] — and refuses writes.  [Quarantined]
    (unopenable, poisoned, or evacuated) serves nothing. *)
type health =
  | Healthy
  | Degraded of health_cause
  | Quarantined of health_cause

(** An operation routed to a shard that cannot serve it.  Raised instead
    of crashing and instead of silently missing — each refusal is also
    counted in the refusing shard's [Stats.unavailable_rejections]. *)
exception Shard_unavailable of { shard : int; cause : health_cause }

(** A shard the store cannot even degrade around failed to come up:
    shard 0 (which anchors the routing table, the commit-protocol
    intents and the health record) refused to open, a snapshot file
    could not be loaded, or {!Make.recover_shard} was pointed at a dead
    engine.  [cause] is the underlying failure, preserved. *)
exception Shard_open_failed of { shard : int; cause : exn }

(** Routing-directory granularity: a store created over [n] regions
    routes through [slots_per_shard * n] slots for its whole life, so it
    can grow online to at most that many shards.  Epoch-0 routing (no
    resize yet) is bit-for-bit the original hash-modulo route. *)
val slots_per_shard : int

(** Defaults of {!with_overload_retry}. *)
val default_overload_retries : int

val default_overload_base_ns : int

(** The exact backoff schedule {!with_overload_retry} uses: [retries]
    waits, exponentially growing from [base_ns] with deterministic
    xorshift jitter seeded by [seed].  Pure — equal arguments give the
    identical schedule, which the unit tests assert. *)
val overload_backoff_schedule :
  retries:int -> base_ns:int -> seed:int -> int list

(** Run [f], retrying up to [retries] times when it raises {!Overloaded}
    (any other exception propagates), waiting out the schedule above
    between attempts; [on_wait] observes each wait (for tests).  The
    final attempt's [Overloaded] propagates.  Used by migration move
    batches against the target's admission budget, and by clients whose
    batches race an admission limit or an open migration window. *)
val with_overload_retry :
  ?retries:int ->
  ?base_ns:int ->
  ?seed:int ->
  ?on_wait:(int -> unit) ->
  (unit -> 'a) ->
  'a

(** How a cross-shard [write_batch] reaches durability.  [Centralized] is
    the legacy single-record protocol in shard 0 (PREPARE / APPLY /
    COMMIT flip / eager CLEAR: three extra shard-0 transactions per
    batch).  [Decentralized] is the presumed-abort protocol described
    above; with [lazy_clear] the steady-state extra cost per cross-shard
    batch is the single coordinator flip. *)
type commit_protocol =
  | Centralized
  | Decentralized of { lazy_clear : bool }

(** [Decentralized { lazy_clear = true }]. *)
val default_protocol : commit_protocol

(** Smallest accepted [chunk_bytes] (the floor the redo-log-overflow
    retry shrinks toward). *)
val min_chunk_bytes : int

val default_chunk_bytes : int
val default_spill_threshold : int
val default_admission_budget : int
val default_clear_flush_threshold : int

(** Pure chunk-chain codec used for mirror payloads; exposed so the
    round-trip and corruption-rejection properties are testable without
    a store. *)
module Chunk : sig
  (** CRC-32 of a piece, as stored in its chunk record. *)
  val crc : string -> int

  (** Cut a payload into pieces of at most [chunk_bytes] bytes, in
      order; the last piece may be shorter and an empty payload is one
      empty piece.  Raises [Invalid_argument] when [chunk_bytes <= 0]. *)
  val split : chunk_bytes:int -> string -> string list

  (** Reassemble a chain read back as [(piece, stored_crc)] pairs in
      chain order.  [Error] when any piece fails its CRC or the total
      length differs from [expect_len] (truncated or over-long chain). *)
  val join :
    expect_len:int -> (string * int) list -> (string, string) result
end

(** Any of the Romulus front-ends: the PTM signature plus the recovery /
    scrub / diagnostics hooks every shard needs. *)
module type SHARD_PTM = sig
  include Romulus.Ptm_intf.S

  val recover : t -> unit

  (** Salvage-mode recovery: returns the tolerated IDL data-loss lines
      instead of refusing the mount over them (see
      {!Romulus.Engine.recover_salvage}). *)
  val recover_salvage : t -> (int * string) list

  val scrub : t -> Romulus.Engine.scrub_report

  (** Salvage-mode scrub (see {!Romulus.Engine.scrub_salvage}). *)
  val scrub_salvage : t -> Romulus.Engine.scrub_report

  val media_spans : t -> (int * int) list
  val allocator_check : t -> (unit, string) result
end

module Make (P : SHARD_PTM) : sig
  type t

  (** Open (or create) the database over one region per shard; the shard
      count is the array length, fixed for the life of the store (keys
      are routed by hash modulo that count).  Each region is formatted or
      recovered as usual, then any protocol state left by a crash is
      reconciled.  [protocol] (default {!default_protocol}) selects the
      cross-shard commit protocol for batches issued through this handle;
      reconciliation always covers both protocols.

      [chunk_bytes] (default {!default_chunk_bytes}) bounds each mirror
      payload chunk — and therefore each streamed PREPARE transaction;
      [spill_threshold] (default {!default_spill_threshold}) is the
      undo-image size above which the pre-image is spilled into its own
      record; [admission_budget] (default {!default_admission_budget})
      caps each shard's in-flight cross-shard payload bytes (see
      {!Overloaded}); [clear_flush_threshold] (default
      {!default_clear_flush_threshold}) bounds the lazy-CLEAR queues
      (see {!val-flush_clears}).

      Raises {!Invalid_shards} on an empty array,
      {!Romulus_db.Invalid_buckets} when [initial_buckets] is not
      positive, and [Invalid_argument] when [chunk_bytes] is below
      {!min_chunk_bytes} or another knob is not positive. *)
  val open_db :
    ?protocol:commit_protocol ->
    ?initial_buckets:int ->
    ?chunk_bytes:int ->
    ?spill_threshold:int ->
    ?admission_budget:int ->
    ?clear_flush_threshold:int ->
    Pmem.Region.t array ->
    t

  val put : t -> string -> string -> unit
  val get : t -> string -> string option
  val delete : t -> string -> bool
  val count : t -> int

  (** LevelDB's write batch, upgraded to an all-or-nothing transaction
      even across shards.  Operations performed on the handle passed to
      [f] are buffered (reads see the buffered writes) and applied when
      [f] returns: a batch touching one shard runs as that shard's single
      durable transaction, exactly as in {!Romulus_db}; a cross-shard
      batch runs under the store's commit protocol. *)
  val write_batch : t -> (t -> unit) -> unit

  (** Full scans; keys are hash-ordered within a shard and shards are
      visited in index order.  With one shard the order matches
      {!Romulus_db}.  Evacuated shards are skipped (their residual maps
      are stale duplicates of their target's keys); any other
      quarantined shard raises {!Shard_unavailable} — a scan never
      silently misses keys.  [count] behaves the same way. *)
  val iter : t -> (string -> string -> unit) -> unit

  val iter_reverse : t -> (string -> string -> unit) -> unit

  (** Structural invariant check of every healthy shard's map and
      allocator (shards whose engine is down or degraded are skipped —
      their damage is reported through {!health}, not as a structural
      failure). *)
  val check : t -> (unit, string) result

  (** Number of attached shards (grows with {!split_shard}; a merged
      source stays attached but owns no slots). *)
  val shards : t -> int

  (** The shard a key routes to under the current routing epoch
      (deterministic, stable across close/reopen). *)
  val shard_of_key : t -> string -> int

  (** {2 Elastic sharding}

      The store routes keys through a persistent, versioned directory:
      [route_hash k mod route_slots] picks a slot, the slot's assignment
      picks the shard.  A resize streams the moving slots' keys between
      shards online — reads double-read (target first, then the source
      for not-yet-moved keys), single-key writes route on the new epoch
      with per-key forwarding, and cross-shard batches touching moving
      slots are refused with {!Overloaded} (retry with
      {!with_overload_retry}).  One epoch-flip transaction is the
      validity point; a crash at any instruction either never started
      the resize (no intent) or completes it during recovery (resume
      from the durable cursor), so every key is present exactly once
      afterwards. *)

  (** Split half of shard [source]'s slots onto a new shard opened over
      the given region (formatted in place); returns the new shard's
      index ([shards t - 1]).  Raises [Invalid_argument] when called
      through a batch handle, while another migration is in flight, or
      when [source] owns fewer than two slots. *)
  val split_shard : t -> source:int -> Pmem.Region.t -> int

  (** Move every slot of [source] onto [target].  The source region
      stays attached (shard indices are stable; shard 0 always anchors
      the directory) but owns no slots and holds no keys afterwards.
      Raises [Invalid_argument] on self-merge, a slotless source, or the
      conditions of {!split_shard}. *)
  val merge_shards : t -> source:int -> target:int -> unit

  (** Completed-resize count (0 until the first split/merge). *)
  val epoch : t -> int

  (** Routing-directory slot count (fixed at first creation). *)
  val route_slots : t -> int

  (** The directory slot a key hashes to. *)
  val slot_of_key : t -> string -> int

  (** The shard a slot is assigned to. *)
  val shard_of_slot : t -> int -> int

  (** A durable migration intent is still hooked — never true after
      [open_db]/{!recover} when every endpoint is healthy (recovery
      then completes the in-flight migration) or after a resize
      returns.  A migration whose endpoint is sick is {e parked} here
      until {!repair} heals it. *)
  val migration_pending : t -> bool

  (** The per-shard regions, in shard order (shared, not copies). *)
  val regions : t -> Pmem.Region.t array

  (** Aggregated instrumentation counters across every shard's region. *)
  val stats : t -> Pmem.Stats.t

  (** {2 Group-commit accounting}

      Ticked by the {!Group_commit} front-end; exposed here so the
      coalescing layer's activity is metered on the shard regions it
      drained and aggregates with the rest of {!stats}.  A drained
      window of [logical] transactions that needed [engine] engine
      rounds (> 1 only when a raiser split the window) saved
      [logical - engine] fence sequences; [merged] cross-shard batches
      rode another batch's intent record instead of writing their own. *)
  val note_group_commit :
    t -> shard:int -> logical:int -> engine:int -> merged:int -> unit

  (** [n] operations acknowledged at enqueue ([Async] mode), metered on
      the shard whose queue accepted them. *)
  val note_async_acks : t -> shard:int -> int -> unit

  (** One explicit drain-everything barrier (metered on shard 0, like
      the other whole-store events). *)
  val note_flush : t -> unit

  (** {2 Fault isolation and self-healing}

      Each shard carries a {!health} verdict.  Verdicts are recomputed
      from the media at every open/recovery (rot is persistent), and
      additionally persisted in shard 0 next to the routing table so
      the non-recomputable [Evacuated] verdict survives reopen.  The
      store serves every slot whose shard can serve it and refuses the
      rest with the typed {!Shard_unavailable}: a sick shard never
      takes the store down, never crashes a caller, and never turns
      into a silent miss. *)

  (** Shard [i]'s current verdict.  Raises [Invalid_argument] on a bad
      index. *)
  val health : t -> int -> health

  (** Re-run crash recovery on every shard — in parallel (one domain per
      shard) by default — then run the reconciliation pass over both
      protocols' surviving records.  Idempotent, like the single-engine
      recovery it fans out.  Per-shard failures are classified instead
      of raised: a shard whose salvage recovery refuses comes back
      [Quarantined] with its engine detached, data-loss survivors come
      back [Degraded], and work owed to a sick shard (batch intents,
      mirrors, migrations) is parked until {!repair}.  Only shard 0
      failing — or a simulated machine crash — still raises
      ({!Shard_open_failed} / [Crash_point]). *)
  val recover : ?parallel:bool -> t -> unit

  (** Engine-level recovery of one shard only (no reconciliation);
      exposed so recovery latency can be measured per shard.  A failure
      is wrapped in {!Shard_open_failed} naming the shard. *)
  val recover_shard : t -> int -> unit

  (** What {!repair} did to one sick shard. *)
  type repair_outcome =
    | Scrub_repaired  (** a reopen+scrub pass came back clean *)
    | Snapshot_restored
        (** the region was replaced from its snapshot file (writes
            after the snapshot are lost; owed protocol records
            re-settle via reconciliation) *)
    | Evacuated_keys of { target : int; moved : int }
        (** [moved] surviving keys were placed on [target] exactly
            once and the source retired as [Evacuated] *)
    | Unrepaired of health_cause
        (** nothing applied; the verdict stands *)

  (** The self-healing driver.  For every [Degraded]/[Quarantined]
      (non-evacuated) shard, escalate:

      + scrub retries under the jittered-exponential backoff schedule
        of {!overload_backoff_schedule} ([retries]/[base_ns]/[seed],
        attempts counted in [Stats.repair_attempts]);
      + restore from the shard's snapshot file under [snapshot_base]
        (as written by {!save_to_files}), adopted only after a clean
        validating scrub;
      + evacuate the surviving keys onto [target] (or the first healthy
        shard) — needs a readable source engine and never applies to
        shard 0.

      Verdict changes are persisted, then the reconciliation pass
      re-runs so parked work settles on the healed store.  Returns one
      outcome per shard repair considered, in shard order.  Raises
      [Invalid_argument] through a batch handle. *)
  val repair :
    ?retries:int ->
    ?base_ns:int ->
    ?seed:int ->
    ?snapshot_base:string ->
    ?target:int ->
    t ->
    (int * repair_outcome) list

  (** Evacuate shard [source]'s surviving keys onto the healthy shard
      [target] directly (the R3 step of {!repair}): durable evacuation
      intent, best-effort read-only salvage stream in bounded
      insert-if-absent batches, then one shard-0 transaction flipping
      the routing table and the source's [Evacuated] verdict together.
      Returns the number of salvaged keys.  Raises [Invalid_argument]
      through a batch handle, for shard 0, an unhealthy target, or
      while a migration intent is in flight. *)
  val start_evacuation : t -> source:int -> target:int -> int

  (** Protocol records currently hooked across the store: the centralized
      intent (if any) plus every decentralized mirror and flip.  Zero on
      a quiescent store under eager CLEAR; under lazy CLEAR, committed
      batches park their records here until a later protocol transaction
      (or recovery) reclaims them. *)
  val pending_intents : t -> int

  (** Reclaim every parked lazy-CLEAR record now, in dedicated
      transactions (one per shard with a non-empty queue, counted in
      [Stats.clear_flushes]).  The same drain runs automatically for any
      shard whose queue reaches [clear_flush_threshold], so a
      write-quiet shard's stale mirrors are reclaimed without waiting
      for its next protocol transaction.  After this, a quiescent store
      reports zero {!pending_intents} even under lazy CLEAR. *)
  val flush_clears : t -> unit

  (** Salvage-scrub every open shard's twins; the report sums the
      per-shard reports, with tolerated data-loss lines concatenated
      (their offsets are shard-relative — use {!scrub_shards} for
      attribution).  Shards whose engine is down are skipped.  Raises
      [Romulus.Engine.Unrepairable] only when damage poisons a line
      recovery would have to trust (a bad header, MUT/CPY state). *)
  val scrub : t -> Romulus.Engine.scrub_report

  (** Per-shard salvage scrub reports, one entry per open engine in
      shard order: every repaired or tolerated line is attributed to
      exactly the shard whose region holds it. *)
  val scrub_shards : t -> (int * Romulus.Engine.scrub_report) list

  (** Per-shard media-fault target spans, in shard order (offsets are
      relative to that shard's own region). *)
  val media_spans : t -> (int * int) list array

  (** Save one snapshot file per shard under
      [Pmem.Region.shard_snapshot_path base ~shard]. *)
  val save_to_files : t -> string -> unit

  (** Reopen a store from the file family written by {!save_to_files}
      ([shards] must match the saved shard count). *)
  val open_from_files :
    ?fence:Pmem.Fence.profile ->
    ?protocol:commit_protocol ->
    ?initial_buckets:int ->
    ?chunk_bytes:int ->
    ?spill_threshold:int ->
    ?admission_budget:int ->
    ?clear_flush_threshold:int ->
    shards:int ->
    string ->
    t
end

(** Sharded RomulusDB over the paper's default PTM (RomulusLog). *)
module Default : module type of Make (Romulus.Logged)
