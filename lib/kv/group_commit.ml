(* Async group-commit front-end: per-shard submission queues drained in
   bounded windows, each window settled as one engine transaction (or
   one shared cross-shard intent) through the flat-combining per-round
   raiser rule.  See the .mli for the protocol and ack-mode semantics. *)

type ack_mode =
  | Sync
  | Batch_sync of { txs : int; bytes : int }
  | Async

let default_window = 32

module Make (P : Sharded_db.SHARD_PTM) = struct
  module SD = Sharded_db.Make (P)

  type db = SD.t

  type op =
    | Put of string * string
    | Delete of string
    | Batch of (db -> unit)

  (* [result = None] while queued; [Some None] settled ok; [Some (Some
     e)] settled with a failure. *)
  type entry = {
    seq : int;
    op : op;
    bytes : int;
    mutable result : exn option option;
  }

  type queue = {
    lock : Sync_prims.Spinlock.t;
    mutable entries : entry list;  (* newest first *)
    mutable n : int;
    mutable qbytes : int;
    mutable next_seq : int;
    mutable mark : int;            (* durability watermark *)
    mutable ackd : int;            (* acknowledgement mark *)
  }

  type t = {
    db : db;
    win : int;
    ack : ack_mode;
    qs : queue array;              (* shards queues ++ [cross queue] *)
    mutable deferred : (int * int * exn) list;  (* newest first *)
  }

  let make_queue () =
    { lock = Sync_prims.Spinlock.create ();
      entries = []; n = 0; qbytes = 0; next_seq = 0; mark = 0; ackd = 0 }

  let attach ?(window = default_window) ?(ack = Sync) db =
    if window < 1 then
      invalid_arg "Group_commit.attach: window must be >= 1";
    (match ack with
     | Batch_sync { txs; bytes } when txs < 1 || bytes < 1 ->
       invalid_arg "Group_commit.attach: Batch_sync thresholds must be >= 1"
     | _ -> ());
    { db; win = window; ack;
      qs = Array.init (SD.shards db + 1) (fun _ -> make_queue ());
      deferred = [] }

  let db t = t.db
  let ack_mode t = t.ack
  let window t = t.win
  let queues t = Array.length t.qs
  let cross_q t = Array.length t.qs - 1

  let submitted t qi = t.qs.(qi).next_seq
  let watermark t qi = t.qs.(qi).mark
  let acked t qi = t.qs.(qi).ackd
  let pending t = Array.fold_left (fun acc q -> acc + q.n) 0 t.qs

  let failures t = List.rev t.deferred

  let locked q f =
    Sync_prims.Spinlock.lock q.lock;
    Fun.protect ~finally:(fun () -> Sync_prims.Spinlock.unlock q.lock) f

  let op_bytes = function
    | Put (k, v) -> String.length k + String.length v + 16
    | Delete k -> String.length k + 16
    (* a closure's payload is unknown until it runs; charge a nominal
       record so the bytes threshold still makes progress on a
       batch-only stream *)
    | Batch _ -> 256

  let enqueue t qi op =
    let q = t.qs.(qi) in
    locked q (fun () ->
        let e = { seq = q.next_seq; op; bytes = op_bytes op; result = None } in
        q.next_seq <- q.next_seq + 1;
        q.entries <- e :: q.entries;
        q.n <- q.n + 1;
        q.qbytes <- q.qbytes + e.bytes;
        e)

  (* Oldest [<= t.win] queued entries, removed from the queue.  The
     watermark only advances once they settle, so an observer never
     sees a settled suffix without its prefix. *)
  let take_window t q =
    locked q (fun () ->
        let keep = max 0 (q.n - t.win) in
        let rec split i acc = function
          | rest when i = 0 -> (acc, rest)
          | e :: rest -> split (i - 1) (e :: acc) rest
          | [] -> (acc, [])
        in
        (* entries is newest-first: keep the newest [keep], take the
           rest (oldest window) in oldest-first order *)
        let kept, taken = split keep [] q.entries in
        let taken_n = q.n - keep in
        q.entries <- List.rev kept;
        q.n <- keep;
        q.qbytes <- List.fold_left (fun a e -> a + e.bytes) 0 q.entries;
        (* [taken] came off the newest-first list: reverse it so the
           window runs in submission order *)
        (List.rev taken, taken_n))

  let apply_op b = function
    | Put (k, v) -> SD.put b k v
    | Delete k -> ignore (SD.delete b k)
    | Batch f -> f b

  (* Settle one taken window: run every entry inside one [SD.write_batch]
     (one engine tx on a single shard, one shared intent across shards)
     under the flat-combining raiser rule — a raising logical tx is
     answered alone, survivors retry as a fresh group.  Advances the
     watermark over the whole window (every entry is settled, with its
     value or its failure), meters the round on [stat_shard], and
     re-raises a crash immediately: once the machine is down nothing
     later in this process can settle. *)
  let settle_window t ~qi ~stat_shard taken taken_n =
    let q = t.qs.(qi) in
    let committed_rounds = ref 0 in
    let cur = ref t.db in
    let exec run =
      Sharded_db.with_overload_retry (fun () ->
          SD.write_batch t.db (fun b ->
              cur := b;
              Fun.protect ~finally:(fun () -> cur := t.db) run));
      incr committed_rounds
    in
    Sync_prims.Flat_combining.run_rounds
      (List.map (fun e -> (e, fun () -> apply_op !cur e.op)) taken)
      ~exec
      ~answer:(fun e r -> e.result <- Some r);
    let ok =
      List.fold_left
        (fun a e -> if e.result = Some None then a + 1 else a) 0 taken
    in
    locked q (fun () ->
        q.mark <- q.mark + taken_n;
        if q.ackd < q.mark then q.ackd <- q.mark);
    if ok > 0 then
      SD.note_group_commit t.db ~shard:stat_shard ~logical:ok
        ~engine:!committed_rounds
        ~merged:
          (if qi = cross_q t then max 0 (ok - !committed_rounds) else 0);
    (* Deferred-failure bookkeeping happens at the caller (it knows
       which entry, if any, belongs to a waiting Sync submitter). *)
    List.iter
      (fun e ->
        match e.result with
        | Some (Some Pmem.Region.Crash_point) -> raise Pmem.Region.Crash_point
        | _ -> ())
      taken

  (* Drain queue [qi] until it is empty (or, with [until], until that
     entry settles).  Failures of entries nobody is waiting on are
     deferred for {!flush}. *)
  let drain t ?until qi =
    let q = t.qs.(qi) in
    let stat_shard = if qi = cross_q t then 0 else qi in
    let settled_until () =
      match until with None -> q.n = 0 | Some e -> e.result <> None
    in
    while not (settled_until ()) do
      let taken, taken_n = take_window t q in
      if taken_n = 0 then
        (* nothing queued but [until] unsettled: impossible — the entry
           is either queued or settled *)
        assert (settled_until ())
      else begin
        let defer () =
          List.iter
            (fun e ->
              match e.result with
              | Some (Some exn) when (match until with
                                      | Some u -> u != e
                                      | None -> true) ->
                t.deferred <- (qi, e.seq, exn) :: t.deferred
              | _ -> ())
            taken
        in
        match settle_window t ~qi ~stat_shard taken taken_n with
        | () -> defer ()
        | exception e -> defer (); raise e
      end
    done

  let drain_all t =
    (* cross queue first: whenever it is non-empty every shard queue is
       empty (the sequencing barrier), so this order is also FIFO *)
    drain t (cross_q t);
    Array.iteri (fun qi _ -> if qi <> cross_q t then drain t qi) t.qs

  (* The sequencing barrier (see .mli): single-key traffic flushes the
     cross queue ahead of itself; cross batches flush the shard queues
     ahead of themselves. *)
  let barrier_for_single t =
    if t.qs.(cross_q t).n > 0 then drain t (cross_q t)

  let barrier_for_cross t =
    Array.iteri (fun qi q -> if qi <> cross_q t && q.n > 0 then drain t qi)
      t.qs

  let over_threshold t q =
    match t.ack with
    | Sync -> true
    | Batch_sync { txs; bytes } ->
      q.n >= txs || q.qbytes >= bytes || q.n >= t.win
    | Async -> q.n >= t.win

  let raise_own e =
    match e.result with
    | Some (Some exn) -> raise exn
    | Some None -> ()
    | None -> assert false (* drain ~until settled it *)

  let submit t qi op =
    let q = t.qs.(qi) in
    let e = enqueue t qi op in
    match t.ack with
    | Sync ->
      drain t ~until:e qi;
      raise_own e
    | Batch_sync _ ->
      if over_threshold t q then drain t qi
    | Async ->
      (* acknowledged at enqueue: the ack mark runs ahead of the
         watermark, bounded by flush *)
      locked q (fun () -> if q.ackd <= e.seq then q.ackd <- e.seq + 1);
      SD.note_async_acks t.db ~shard:(if qi = cross_q t then 0 else qi) 1;
      if over_threshold t q then drain t qi

  let put t k v =
    barrier_for_single t;
    submit t (SD.shard_of_key t.db k) (Put (k, v))

  let delete t k =
    barrier_for_single t;
    submit t (SD.shard_of_key t.db k) (Delete k)

  let write_batch t f =
    barrier_for_cross t;
    submit t (cross_q t) (Batch f)

  (* Newest queued op on [k]'s shard queue wins (read-your-writes
     without forcing a drain); [Batch] closures never sit there — they
     live on the cross queue, drained by the barrier above. *)
  let get t k =
    barrier_for_single t;
    let q = t.qs.(SD.shard_of_key t.db k) in
    let buffered =
      locked q (fun () ->
          List.find_map
            (fun e ->
              match e.op with
              | Put (k', v) when String.equal k k' -> Some (Some v)
              | Delete k' when String.equal k k' -> Some None
              | _ -> None)
            q.entries)
    in
    match buffered with Some r -> r | None -> SD.get t.db k

  let flush t =
    SD.note_flush t.db;
    drain_all t;
    match List.rev t.deferred with
    | [] -> ()
    | (_, _, exn) :: _ ->
      t.deferred <- [];
      raise exn
end

module Default = Make (Romulus.Logged)
