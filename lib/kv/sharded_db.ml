(* Sharded RomulusDB: the LevelDB interface of Romulus_db, hash-
   partitioned across N independent per-shard PTM instances.  One engine
   means one C-RW-WP writer lock and one flat-combining array, so update
   throughput is flat no matter how many domains run; with a shard per
   partition, unrelated updates commit concurrently and each shard
   amortizes its own batch under one set of persistence fences, while
   every shard keeps the paper's twin-copy 4-fence protocol intact.

   Cross-shard write batches are made all-or-nothing by a persistent
   commit protocol.  The default is the *decentralized presumed-abort*
   protocol:

     PREPARE+APPLY  one ordinary durable transaction per participant
                    shard writes that shard's own *intent mirror*
                    (batch id, coordinator, participant set, its slice
                    of ops + per-key undo images) into the shard's
                    mirror list and, in the same transaction, applies
                    the slice.  Mirror durable <=> slice applied.
     COMMIT         one transaction on the *coordinator* shard (the
                    minimum participant index — different batches pick
                    different coordinators, so no fixed shard serializes
                    the protocol) hooks a flip record carrying the batch
                    id.  The flip is the batch's durability point.
     CLEAR (lazy)   nothing is unhooked eagerly: a shard reclaims its
                    stale mirrors piggybacked on its next PREPARE (or
                    flip) transaction, and the coordinator's flip is
                    reclaimed once every mirror of its batch is gone —
                    a flip may never be removed while a mirror of its
                    batch survives anywhere, or presumed abort would
                    roll a committed batch back.

   Recovery (after every shard's engine recovery has restored per-shard
   consistency) runs a reconciliation pass: collect the intent mirrors
   across shards and resolve each by querying its coordinator's flip
   list — flip present => the batch committed, the mirror's slice is
   already applied (PREPARE and APPLY are one transaction), so the
   mirror is only unhooked; flip absent => presumed abort, the mirror's
   still-valid undo images are replayed and the mirror unhooked, both
   in one per-shard transaction.  Flips are cleared in a second phase
   once no mirror remains.  Every step is idempotent at the KV level,
   so a crash inside reconciliation reconverges on the next recovery.

   A concurrent single-key write racing an in-flight batch on the same
   key *invalidates the batch's undo entry for that key* inside its own
   transaction (a one-byte flip in the mirror), so neither a runtime
   abort nor crash recovery can overwrite the racing committed write
   with the batch's stale pre-image (the CORRECTNESS.md §10 lost-update
   gap).

   The legacy centralized protocol (single batch-intent record in shard
   0: PREPARE / per-shard APPLY / COMMIT flip / eager CLEAR, three
   extra shard-0 transactions per batch) is retained behind
   [Centralized] for ablation and for reopening stores that crashed
   under it; recovery always reconciles both protocols' state.  A batch
   that touches a single shard (always the case with one shard) skips
   every protocol and runs as that shard's lone transaction, exactly as
   in Romulus_db. *)

exception Invalid_shards of int

exception Overloaded of { shard : int; in_flight : int; budget : int }

(* [open_from_files ~shards] against a snapshot family saved with a
   different shard count: the requested count disagrees with the files
   actually on disk (elastic stores grow their family when a split adds
   a shard). *)
exception Shard_mismatch of { requested : int; found : int }

(* ---- per-shard health ----

   Media damage on one shard must not take the store down: every shard
   carries a health verdict, persisted in shard 0 next to the slot
   table, and operations on a sick shard's slots fail with a typed
   exception instead of crashing the caller or silently missing. *)

type health_cause =
  | Unrepairable_media of { offset : int; state : string }
      (* a salvage scrub found lines no twin can vouch for (Degraded:
         tolerable IDL data loss; Quarantined: damage recovery would
         have to copy) *)
  | Open_failed of string
      (* the shard's engine refused to open or recover *)
  | Evacuated of { target : int }
      (* the shard's surviving keys were moved onto [target]; its slots
         no longer route here *)

type health =
  | Healthy
  | Degraded of health_cause (* read-only: media errors pending repair *)
  | Quarantined of health_cause (* unreadable / unopenable / evacuated *)

(* An operation routed to a shard that cannot serve it.  Raised by reads
   of a quarantined shard's slots and writes to any non-healthy shard's
   slots — never a raw [Media_error] leak, never a silent miss. *)
exception Shard_unavailable of { shard : int; cause : health_cause }

(* A shard-attributed open/recovery failure: [open_from_files] wraps a
   per-shard snapshot-load failure (previously a raw [Sys_error] or
   [Snapshot_corrupt] with no shard attribution), [recover_shard]
   wraps its engine's failure, and shard 0 — whose failure is fatal,
   because it anchors routing, health and the centralized intent —
   surfaces its open failure this way from [open_db]. *)
exception Shard_open_failed of { shard : int; cause : exn }

(* ---- routing directory ----

   Keys route through a slot table: [route_hash k mod n_slots] picks a
   slot, the slot's assignment picks the shard.  [n_slots] is fixed at
   [slots_per_shard * initial shard count] when the store is first
   created; epoch 0 assigns slot [s] to shard [s mod n], which makes the
   epoch-0 route bit-for-bit the original hash-modulo route (because n
   divides n_slots, [(h mod n_slots) mod n = h mod n]).  Multi-shard
   stores pin the table durably at first open (so a crashed resize can
   never be confused about the pre-resize count); a 1-shard store writes
   no routing metadata at all until its first split. *)
let slots_per_shard = 8

(* ---- typed-backoff retry around [Overloaded] ----

   Deterministic: the sleep schedule is a pure function of
   [retries]/[base_ns]/[seed] (exponential growth, xorshift jitter), so
   tests can assert the exact schedule and crash campaigns stay
   reproducible.  Shared by migration move batches and exposed for
   clients whose cross-shard batches may be refused by admission control
   or by an in-flight migration window. *)
let default_overload_retries = 5
let default_overload_base_ns = 20_000

let overload_backoff_schedule ~retries ~base_ns ~seed =
  if retries < 0 then invalid_arg "overload_backoff_schedule: retries < 0";
  if base_ns <= 0 then invalid_arg "overload_backoff_schedule: base_ns <= 0";
  let state = ref (if seed = 0 then 0x6b8b4567 else seed land max_int) in
  let next () =
    let x = !state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    state := x land max_int;
    !state
  in
  List.init retries (fun i ->
      let slot = base_ns * (1 lsl min i 20) in
      slot + (next () mod max 1 (slot / 2)))

(* Busy-wait roughly [ns] of backoff; virtual time, not measured — the
   point is a bounded, monotonically growing pause between retries. *)
let backoff_wait_ns ns =
  for _ = 1 to max 1 (ns / 100) do
    Domain.cpu_relax ()
  done

let with_overload_retry ?(retries = default_overload_retries)
    ?(base_ns = default_overload_base_ns) ?(seed = 0) ?(on_wait = fun _ -> ())
    f =
  let rec go = function
    | [] -> f ()
    | wait :: rest -> (
      try f ()
      with Overloaded _ ->
        on_wait wait;
        backoff_wait_ns wait;
        go rest)
  in
  go (overload_backoff_schedule ~retries ~base_ns ~seed)

type commit_protocol =
  | Centralized
  | Decentralized of { lazy_clear : bool }

let default_protocol = Decentralized { lazy_clear = true }

(* Chunked mirror streaming: a mirror whose payload exceeds [chunk_bytes]
   is written as a linked chain of CRC-protected chunks, one engine
   transaction each, and only becomes meaningful when a final seal
   transaction flips the mirror's [sealed] word and applies the slice —
   unsealed chains are garbage-collected as presumed abort. *)
let min_chunk_bytes = 128

let default_chunk_bytes = 16 * 1024
let default_spill_threshold = 4 * 1024
let default_admission_budget = 4 * 1024 * 1024
let default_clear_flush_threshold = 32

(* attempts a batch makes to get under the per-shard in-flight budget
   before raising [Overloaded] *)
let admission_retries = 6

module type SHARD_PTM = sig
  include Romulus.Ptm_intf.S

  val recover : t -> unit
  val recover_salvage : t -> (int * string) list
  val scrub : t -> Romulus.Engine.scrub_report
  val scrub_salvage : t -> Romulus.Engine.scrub_report
  val media_spans : t -> (int * int) list
  val allocator_check : t -> (unit, string) result
end

(* Crash-window failpoints.  The campaign arms one of these with a
   simulated power-off to kill inside a protocol window, between the
   per-shard commits, and around recovery's fan-out.  The sharded.batch.*
   sites belong to the centralized protocol, the sharded.d.* sites to the
   decentralized one. *)
let fp_intent_published = Fault.site "sharded.batch.intent_published"
let fp_shard_applied = Fault.site "sharded.batch.shard_applied"
let fp_committed = Fault.site "sharded.batch.committed"
let fp_cleared = Fault.site "sharded.batch.cleared"
let fp_mirror_applied = Fault.site "sharded.d.mirror_applied"
let fp_flip_written = Fault.site "sharded.d.flip_written"
let fp_mirror_cleared = Fault.site "sharded.d.mirror_cleared"
let fp_rollback_undone = Fault.site "sharded.d.rollback_undone"
let fp_recover_shard_done = Fault.site "sharded.recover.shard_done"
let fp_recover_resolved = Fault.site "sharded.recover.mirror_resolved"
let fp_recover_reconciled = Fault.site "sharded.recover.reconciled"

(* chunk-chain windows: after each streamed chunk commit, after each
   spilled undo image, between the last chunk and the seal transaction,
   and after recovery garbage-collects an unsealed chain *)
let fp_chunk_written = Fault.site "sharded.chunk.written"
let fp_chunk_spilled = Fault.site "sharded.chunk.spilled"
let fp_seal_window = Fault.site "sharded.chunk.seal_window"
let fp_chunk_gc = Fault.site "sharded.chunk.gc"

(* migration windows: after the intent record commits, after each move
   batch's source transaction (keys deleted from the source, cursor
   durable, target not yet updated), after each move batch's target
   transaction, after recovery replays the durable cursor, after the
   epoch-flip transaction (the migration's validity point), and after
   the post-flip reclamation pass *)
let fp_mig_intent = Fault.site "sharded.migrate.intent_open"
let fp_mig_moved = Fault.site "sharded.migrate.batch_moved"
let fp_mig_applied = Fault.site "sharded.migrate.batch_applied"
let fp_mig_resumed = Fault.site "sharded.migrate.resumed"
let fp_mig_flip = Fault.site "sharded.migrate.epoch_flip"
let fp_mig_reclaim = Fault.site "sharded.migrate.reclaimed"

(* health windows: after a shard's health transition is observed (its
   durable record may lag by one shard-0 transaction — recomputed
   deterministically at the next open either way), after an evacuation
   intent commits, and after the evacuation's combined route+health
   flip (the evacuation's validity point) *)
let fp_health_degraded = Fault.site "sharded.health.degraded"
let fp_health_quarantined = Fault.site "sharded.health.quarantined"
let fp_health_repaired = Fault.site "sharded.health.repaired"
let fp_health_evacuate_start = Fault.site "sharded.health.evacuate_start"
let fp_health_evacuated = Fault.site "sharded.health.evacuated"

(* ---- record serialization (PTM-independent) ----

   All lengths are 64-bit little-endian; a value option carries a
   presence tag so "put empty string" and "delete" stay distinct.  The
   centralized intent stores one blob for the whole batch; a
   decentralized mirror stores one blob per shard slice whose undo
   entries each carry a leading validity byte ('\001' live, '\000'
   invalidated by a racing single-key write). *)

let add_str b s =
  Buffer.add_int64_le b (Int64.of_int (String.length s));
  Buffer.add_string b s

let add_opt b v =
  match v with
  | None -> Buffer.add_char b '\000'
  | Some v ->
    Buffer.add_char b '\001';
    add_str b v

let add_kv_list b l =
  Buffer.add_int64_le b (Int64.of_int (List.length l));
  List.iter
    (fun (k, v) ->
      add_str b k;
      add_opt b v)
    l

let encode ~nshards ~ops ~undo =
  let b = Buffer.create 256 in
  Buffer.add_int64_le b (Int64.of_int nshards);
  add_kv_list b ops;
  add_kv_list b undo;
  Buffer.contents b

(* An undo image inside a mirror payload: the key's pre-batch value
   either did not exist, is stored inline, or — when larger than the
   spill threshold — was spilled into its own CRC-protected record and
   the payload carries only the (offset, length) reference. *)
type undo_image =
  | U_absent
  | U_inline of string
  | U_spilled of { off : int; len : int }

let image_of_opt = function None -> U_absent | Some v -> U_inline v

let add_image b = function
  | U_absent -> Buffer.add_char b '\000'
  | U_inline v ->
    Buffer.add_char b '\001';
    add_str b v
  | U_spilled { off; len } ->
    Buffer.add_char b '\002';
    Buffer.add_int64_le b (Int64.of_int off);
    Buffer.add_int64_le b (Int64.of_int len)

(* Mirror payload: shard count, the slice's ops, then undo entries with
   a per-entry validity byte.  Returns the payload plus each undo key's
   validity-byte offset *relative to the payload start*, so a racing
   write can invalidate its entry with a one-byte durable store. *)
let encode_mirror ~nshards ~ops ~undo =
  let b = Buffer.create 256 in
  Buffer.add_int64_le b (Int64.of_int nshards);
  add_kv_list b ops;
  Buffer.add_int64_le b (Int64.of_int (List.length undo));
  let valid_offs =
    List.map
      (fun (k, img) ->
        let off = Buffer.length b in
        Buffer.add_char b '\001';
        add_str b k;
        add_image b img;
        (k, off))
      undo
  in
  (Buffer.contents b, valid_offs)

(* Exact length of the payload [encode_mirror] would produce with every
   undo image inline — the admission-control charge of a mirror, and the
   chunked-vs-fast-path decision, without building the string. *)
let opt_len = function None -> 1 | Some v -> 1 + 8 + String.length v

let mirror_payload_len ~ops ~undo =
  let kv_list l =
    8 + List.fold_left (fun a (k, v) -> a + 8 + String.length k + opt_len v) 0 l
  in
  8 + kv_list ops
  + 8
  + List.fold_left
      (fun a (k, v) -> a + 1 + 8 + String.length k + opt_len v)
      0 undo

type parser_ = { payload : string; mutable pos : int }

let bad what =
  raise
    (Romulus.Engine.Recovery_error
       (Printf.sprintf "sharded batch intent: truncated %s record" what))

let take_int pr what =
  if pr.pos + 8 > String.length pr.payload then bad what;
  let v = Int64.to_int (String.get_int64_le pr.payload pr.pos) in
  pr.pos <- pr.pos + 8;
  if v < 0 then bad what;
  v

let take_str pr what =
  let len = take_int pr what in
  if pr.pos + len > String.length pr.payload then bad what;
  let s = String.sub pr.payload pr.pos len in
  pr.pos <- pr.pos + len;
  s

let take_byte pr what =
  if pr.pos >= String.length pr.payload then bad what;
  let c = pr.payload.[pr.pos] in
  pr.pos <- pr.pos + 1;
  c

let take_opt pr what =
  match take_byte pr what with
  | '\000' -> None
  | '\001' -> Some (take_str pr what)
  | _ -> bad what

let take_kv_list pr what =
  let n = take_int pr what in
  List.init n (fun _ ->
      let k = take_str pr what in
      (k, take_opt pr what))

let decode payload =
  let pr = { payload; pos = 0 } in
  let nshards = take_int pr "shard-count" in
  let ops = take_kv_list pr "operation" in
  let undo = take_kv_list pr "undo" in
  (nshards, ops, undo)

let take_image pr what =
  match take_byte pr what with
  | '\000' -> U_absent
  | '\001' -> U_inline (take_str pr what)
  | '\002' ->
    let off = take_int pr what in
    let len = take_int pr what in
    U_spilled { off; len }
  | _ -> bad what

(* Returns (nshards, ops, undo) where each undo entry carries its
   validity flag. *)
let decode_mirror payload =
  let pr = { payload; pos = 0 } in
  let nshards = take_int pr "shard-count" in
  let ops = take_kv_list pr "operation" in
  let n = take_int pr "undo" in
  let undo =
    List.init n (fun _ ->
        let valid =
          match take_byte pr "undo-validity" with
          | '\000' -> false
          | '\001' -> true
          | _ -> bad "undo-validity"
        in
        let k = take_str pr "undo" in
        (valid, k, take_image pr "undo"))
  in
  (nshards, ops, undo)

(* ---- health record codec (PTM-independent) ----

   The per-shard health array persists as one length-prefixed record in
   shard 0 (wholesale replace, like the routing table): shard count,
   then one tagged verdict per shard. *)

let add_cause b = function
  | Unrepairable_media { offset; state } ->
    Buffer.add_char b '\000';
    Buffer.add_int64_le b (Int64.of_int offset);
    add_str b state
  | Open_failed msg ->
    Buffer.add_char b '\001';
    add_str b msg
  | Evacuated { target } ->
    Buffer.add_char b '\002';
    Buffer.add_int64_le b (Int64.of_int target)

let encode_health healths =
  let b = Buffer.create 64 in
  Buffer.add_int64_le b (Int64.of_int (Array.length healths));
  Array.iter
    (fun h ->
      match h with
      | Healthy -> Buffer.add_char b '\000'
      | Degraded c ->
        Buffer.add_char b '\001';
        add_cause b c
      | Quarantined c ->
        Buffer.add_char b '\002';
        add_cause b c)
    healths;
  Buffer.contents b

let take_cause pr =
  match take_byte pr "health-cause" with
  | '\000' ->
    let offset = take_int pr "health-cause" in
    let state = take_str pr "health-cause" in
    Unrepairable_media { offset; state }
  | '\001' -> Open_failed (take_str pr "health-cause")
  | '\002' -> Evacuated { target = take_int pr "health-cause" }
  | _ -> bad "health-cause"

let decode_health payload =
  let pr = { payload; pos = 0 } in
  let n = take_int pr "health" in
  Array.init n (fun _ ->
      match take_byte pr "health" with
      | '\000' -> Healthy
      | '\001' -> Degraded (take_cause pr)
      | '\002' -> Quarantined (take_cause pr)
      | _ -> bad "health")

(* ---- chunk chains (PTM-independent) ----

   A payload too large for one allocation is cut into bounded pieces;
   each piece is stored in its own record with a CRC-32 and reassembled
   on read with every CRC re-verified and the total length checked
   against the mirror header.  Pure, so the round-trip and the
   rejection of truncated / corrupted chains are testable without a
   store. *)
module Chunk = struct
  let crc s = Pmem.Crc32.string s

  (* cut [payload] into pieces of at most [chunk_bytes] (the last piece
     may be shorter); the empty payload is one empty piece *)
  let split ~chunk_bytes payload =
    if chunk_bytes <= 0 then invalid_arg "Chunk.split: chunk_bytes <= 0";
    let n = String.length payload in
    if n = 0 then [ "" ]
    else begin
      let rec go pos acc =
        if pos >= n then List.rev acc
        else
          let len = min chunk_bytes (n - pos) in
          go (pos + len) (String.sub payload pos len :: acc)
      in
      go 0 []
    end

  (* reassemble a chain read back as (piece, stored_crc) pairs in chain
     order; every piece must pass its CRC and the total must be exactly
     [expect_len] *)
  let join ~expect_len pieces =
    let b = Buffer.create expect_len in
    let rec go = function
      | [] ->
        if Buffer.length b <> expect_len then
          Error
            (Printf.sprintf "chunk chain holds %d bytes, mirror declares %d"
               (Buffer.length b) expect_len)
        else Ok (Buffer.contents b)
      | (piece, stored) :: rest ->
        if crc piece <> stored then
          Error
            (Printf.sprintf "chunk CRC mismatch at payload byte %d"
               (Buffer.length b))
        else if Buffer.length b + String.length piece > expect_len then
          Error
            (Printf.sprintf "chunk chain exceeds declared length %d"
               expect_len)
        else begin
          Buffer.add_string b piece;
          go rest
        end
    in
    go pieces
end

module Make (P : SHARD_PTM) = struct
  module Map_ = Str_hash_map.Make (P)

  type shard = { p : P.t; map : Map_.t; region : Pmem.Region.t }

  (* A batch handle is a shallow copy of the store with [batch = Some _]:
     operations on it are buffered (newest first) instead of applied, so
     concurrent batches never share mutable state. *)
  type batch = { mutable ops : (string * string option) list }

  (* A still-valid undo entry of an in-flight batch, consulted by racing
     single-key writes: [pu_valid] is the absolute offset of the entry's
     validity byte, which lives inside the payload chunk at [pu_chunk]
     of shard [pu_shard]'s mirror — the chunk whose CRC an invalidation
     must refresh. *)
  type pending_undo = {
    pu_shard : int;
    pu_mirror : int;
    pu_chunk : int;
    pu_valid : int;
  }

  (* Volatile protocol state, shared by every handle of one store (batch
     handles are shallow copies).  Lost at a crash by definition — the
     recovery reconciliation pass rebuilds the persistent truth and this
     record is reset. *)
  (* Resource-governance knobs, fixed at [open_db]. *)
  type config = {
    initial_buckets : int;
    chunk_bytes : int;
    spill_threshold : int;
    admission_budget : int;
    clear_flush_threshold : int;
  }

  type proto = {
    protocol : commit_protocol;
    config : config;
    mutable next_batch_id : int;
    pending : (string, pending_undo) Hashtbl.t;
    (* per shard: committed-batch mirrors awaiting a piggybacked unhook *)
    mutable clearable_mirrors : (int * int) list array;
    (* (mirror_off, batch id) *)
    (* per coordinator shard: flips whose batches have no mirror left *)
    mutable clearable_flips : int list array; (* flip_off *)
    (* batch id -> (coordinator, flip_off, mirrors still hooked) *)
    live_flips : (int, int * int * int ref) Hashtbl.t;
    (* per shard: payload bytes of batches currently inside the commit
       protocol, charged by admission control (volatile by design — a
       crash empties the protocol) *)
    mutable in_flight : int array;
  }

  (* An in-flight migration's volatile window state (the persistent truth
     is the intent record): moving slots already route to the target,
     reads double-read (target, then tombstones, then source), and
     [mig_tomb] — a map in the target region — records keys a racing
     delete made authoritatively absent, so neither the move stream nor
     recovery can resurrect them from a stale source copy. *)
  type mig = {
    mig_source : int;
    mig_target : int;
    mig_epoch : int;
    moving : bool array; (* per slot *)
    mig_tomb : Map_.t;
  }

  (* The routing directory's volatile image, shared by every handle (the
     persistent record — if any — lives in shard 0).  [epoch] counts
     completed resizes; the migration window, when open, has already
     re-pointed [assignment] for the moving slots (the "new epoch"
     route). *)
  type router = {
    mutable epoch : int;
    mutable n_slots : int;
    mutable assignment : int array; (* slot -> shard *)
    mutable migration : mig option;
  }

  type t = {
    (* [None] when the shard's engine could not be opened or recovered;
       the slot keeps its region (and health verdict) so stats, repair
       and snapshot restore still have somewhere to stand. *)
    mutable shard_arr : shard option array;
    (* one region per shard, always populated — even for down shards *)
    mutable region_arr : Pmem.Region.t array;
    mutable health_arr : health array;
    batch : batch option;
    proto : proto;
    router : router;
  }

  let db_root = 0 (* same slot as Romulus_db: the map's anchor *)

  (* Reserved root slots, far from the map's anchor.  None is touched
     before the first cross-shard batch, so a 1-shard store stays
     bit-for-bit identical to Romulus_db.  [intent_slot] holds the
     centralized protocol's single record (shard 0 only); [mirror_slot]
     and [flip_slot] head each shard's decentralized mirror and flip
     lists. *)
  let intent_slot = Romulus.Ptm_intf.root_slots - 1
  let mirror_slot = Romulus.Ptm_intf.root_slots - 2
  let flip_slot = Romulus.Ptm_intf.root_slots - 3

  (* Elastic-sharding slots.  [route_slot] (shard 0) holds the persisted
     routing table, pinned at first open for multi-shard stores and
     rewritten by each resize's epoch flip (1-shard stores leave it at 0
     until they split); [mig_slot] (shard 0) holds the single migration intent
     record; [cursor_slot] (the migration source) holds the current
     move batch's CRC-protected cursor; [tomb_slot] (the migration
     target) anchors the tombstone map. *)
  let route_slot = Romulus.Ptm_intf.root_slots - 4
  let mig_slot = Romulus.Ptm_intf.root_slots - 5
  let cursor_slot = Romulus.Ptm_intf.root_slots - 6
  let tomb_slot = Romulus.Ptm_intf.root_slots - 7

  (* Per-shard health array (shard 0, next to the slot table). *)
  let health_slot = Romulus.Ptm_intf.root_slots - 8

  let status_prepared = 1
  let status_committed = 2

  (* mirror record: next | batch id | coordinator | participant mask |
     sealed | payload length | chunk-chain head | spill-list head.
     The payload itself always lives in the chunk chain (a single chunk
     on the fast path); [sealed] is 0 while the chain is streaming and
     flipped to 1 in the transaction that applies the slice, so
     sealed <=> slice applied and an unsealed chain is garbage for
     recovery to collect. *)
  let mirror_hdr = 64

  let m_next = 0
  let m_id = 8
  let m_coord = 16
  let m_mask = 24
  let m_sealed = 32
  let m_plen = 40
  let m_chunks = 48
  let m_spills = 56

  (* chunk / spill record: next | byte length | crc32 | bytes *)
  let chunk_hdr = 24

  let c_len = 8
  let c_crc = 16

  (* flip record: next | batch id | participant mask *)
  let flip_size = 24

  (* FNV-1a core as the map's bucket hash, plus an avalanche step so the
     shard route is independent of the bucket index even when the shard
     count shares factors with the bucket count. *)
  let route_hash s =
    let h = ref 0x4bf29ce484222325 in
    String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3) s;
    let h = !h in
    let h = h lxor (h lsr 33) in
    let h = h * 0x2545F4914F6CDD1D in
    (h lxor (h lsr 29)) land max_int

  let shards t = Array.length t.region_arr
  let epoch t = t.router.epoch
  let route_slots t = t.router.n_slots
  let slot_of_key t k = route_hash k mod t.router.n_slots
  let shard_of_slot t s = t.router.assignment.(s)
  let shard_of_key t k = t.router.assignment.(slot_of_key t k)
  let regions t = Array.copy t.region_arr

  let health t i =
    if i < 0 || i >= shards t then
      invalid_arg (Printf.sprintf "Sharded_db.health: bad shard %d" i);
    t.health_arr.(i)

  let stats t =
    Pmem.Stats.aggregate
      (Array.to_list (Array.map Pmem.Region.stats t.region_arr))

  let tick s f =
    let st = Pmem.Region.stats s.region in
    f st

  (* Tick by shard index through the region table, so counters attach to
     the right shard even when its engine is down. *)
  let tick_region t i f = f (Pmem.Region.stats t.region_arr.(i))

  (* ---- availability gates ----

     [raw]: the engine, for protocol/recovery machinery that has already
     established the shard is reachable.  [live]: read availability
     (Healthy and Degraded serve reads; Degraded reads of an actually
     lost line still surface [Media_error] — damage is never silently
     blessed).  [rw]: write availability (Healthy only).  Each rejection
     is metered on the refusing shard and raises the typed
     {!Shard_unavailable} carrying that shard's verdict. *)

  let unavailable t i =
    tick_region t i (fun st ->
        st.Pmem.Stats.unavailable_rejections <-
          st.Pmem.Stats.unavailable_rejections + 1);
    let cause =
      match t.health_arr.(i) with
      | Degraded c | Quarantined c -> c
      | Healthy -> Open_failed "shard engine is not open"
    in
    raise (Shard_unavailable { shard = i; cause })

  let raw t i =
    match t.shard_arr.(i) with Some s -> s | None -> unavailable t i

  let live t i =
    match t.health_arr.(i) with
    | Healthy | Degraded _ -> raw t i
    | Quarantined _ -> unavailable t i

  let rw t i =
    match t.health_arr.(i) with
    | Healthy -> raw t i
    | Degraded _ | Quarantined _ -> unavailable t i

  let shard_for t k = live t (shard_of_key t k)

  (* The shard can participate in recovery-side reconciliation: its
     engine is open and it is not quarantined. *)
  let engine_up t i =
    Option.is_some t.shard_arr.(i)
    && (match t.health_arr.(i) with Quarantined _ -> false | _ -> true)

  let healthy t i =
    Option.is_some t.shard_arr.(i) && t.health_arr.(i) = Healthy

  (* Full scans drop an evacuated shard (its residual map is a stale
     duplicate of its target's keys) but refuse — typed, loudly — on any
     other quarantined shard: a scan must never silently miss keys. *)
  let scan_shard t i =
    match t.health_arr.(i) with
    | Quarantined (Evacuated _) -> None
    | Healthy | Degraded _ -> Some (raw t i)
    | Quarantined _ -> unavailable t i

  let tick_prepare s =
    tick s (fun st ->
        st.Pmem.Stats.intent_prepares <- st.Pmem.Stats.intent_prepares + 1)

  let tick_flip s =
    tick s (fun st ->
        st.Pmem.Stats.coordinator_flips <- st.Pmem.Stats.coordinator_flips + 1)

  let tick_lazy_clear s n =
    tick s (fun st ->
        st.Pmem.Stats.lazy_clears <- st.Pmem.Stats.lazy_clears + n)

  let tick_forward s =
    tick s (fun st ->
        st.Pmem.Stats.rolled_forward <- st.Pmem.Stats.rolled_forward + 1)

  let tick_back s =
    tick s (fun st ->
        st.Pmem.Stats.rolled_back <- st.Pmem.Stats.rolled_back + 1)

  let tick_chunk s =
    tick s (fun st ->
        st.Pmem.Stats.chunks_written <- st.Pmem.Stats.chunks_written + 1)

  let tick_spill s =
    tick s (fun st ->
        st.Pmem.Stats.chunks_spilled <- st.Pmem.Stats.chunks_spilled + 1)

  let tick_overload s =
    tick s (fun st ->
        st.Pmem.Stats.overload_rejections <-
          st.Pmem.Stats.overload_rejections + 1)

  let tick_clear_flush s =
    tick s (fun st ->
        st.Pmem.Stats.clear_flushes <- st.Pmem.Stats.clear_flushes + 1)

  let tick_mig_started s =
    tick s (fun st ->
        st.Pmem.Stats.migrations_started <- st.Pmem.Stats.migrations_started + 1)

  let tick_mig_resumed s =
    tick s (fun st ->
        st.Pmem.Stats.migrations_resumed <- st.Pmem.Stats.migrations_resumed + 1)

  let tick_mig_completed s =
    tick s (fun st ->
        st.Pmem.Stats.migrations_completed <-
          st.Pmem.Stats.migrations_completed + 1)

  let tick_migrated s n =
    tick s (fun st ->
        st.Pmem.Stats.keys_migrated <- st.Pmem.Stats.keys_migrated + n)

  let tick_double_read s =
    tick s (fun st ->
        st.Pmem.Stats.double_reads <- st.Pmem.Stats.double_reads + 1)

  let tick_health t i h =
    tick_region t i (fun st ->
        match h with
        | Healthy ->
          st.Pmem.Stats.health_repaired <- st.Pmem.Stats.health_repaired + 1
        | Degraded _ ->
          st.Pmem.Stats.health_degraded <- st.Pmem.Stats.health_degraded + 1
        | Quarantined _ ->
          st.Pmem.Stats.health_quarantined <-
            st.Pmem.Stats.health_quarantined + 1)

  (* ---- group-commit accounting (ticked by the front-end layer) ----

     The group-commit front-end ({!Group_commit}) coalesces many
     logical transactions into one engine transaction (single-shard
     windows) or one shared intent record (cross-shard windows).  It
     meters each drained window on the shard whose queue it drained so
     the counters aggregate naturally with the rest of the per-shard
     stats: [logical] transactions were settled using [engine] engine
     rounds (> 1 only when a raiser split the window), and [merged]
     cross-shard batches rode another batch's intent record. *)

  let note_group_commit t ~shard ~logical ~engine ~merged =
    tick_region t shard (fun st ->
        st.Pmem.Stats.group_commits <- st.Pmem.Stats.group_commits + engine;
        st.Pmem.Stats.group_size_sum <-
          st.Pmem.Stats.group_size_sum + logical;
        if logical > st.Pmem.Stats.group_size_max then
          st.Pmem.Stats.group_size_max <- logical;
        st.Pmem.Stats.fences_saved <-
          st.Pmem.Stats.fences_saved + (logical - engine);
        st.Pmem.Stats.merged_intents <-
          st.Pmem.Stats.merged_intents + merged)

  let note_async_acks t ~shard n =
    tick_region t shard (fun st ->
        st.Pmem.Stats.async_acks <- st.Pmem.Stats.async_acks + n)

  let note_flush t =
    tick_region t 0 (fun st ->
        st.Pmem.Stats.flushes <- st.Pmem.Stats.flushes + 1)

  (* ---- plain (non-batch) operations ---- *)

  (* Double-read during a transfer window: a moving key may not have
     reached the target yet, so a target miss consults the tombstones
     (a racing delete is authoritative) and then the source. *)
  let underlying_get t k =
    match t.router.migration with
    | Some m when m.moving.(slot_of_key t k) -> (
      match Map_.get (raw t m.mig_target).map k with
      | Some _ as r -> r
      | None ->
        tick_double_read (raw t m.mig_source);
        if Map_.mem m.mig_tomb k then None
        else Map_.get (raw t m.mig_source).map k)
    | _ -> Map_.get (shard_for t k).map k

  let underlying_mem t k =
    match t.router.migration with
    | Some m when m.moving.(slot_of_key t k) ->
      Map_.mem (raw t m.mig_target).map k
      || begin
        tick_double_read (raw t m.mig_source);
        (not (Map_.mem m.mig_tomb k))
        && Map_.mem (raw t m.mig_source).map k
      end
    | _ -> Map_.mem (shard_for t k).map k

  let apply_op s (k, v) =
    match v with
    | Some v -> ignore (Map_.put s.map k v : bool)
    | None -> ignore (Map_.remove s.map k : bool)

  (* A single-key write that races an in-flight cross-shard batch on the
     same key must not be overwritten by that batch's rollback: inside
     the write's own transaction the batch's undo entry for the key is
     invalidated (one byte in the mirror), so neither the inline abort
     path nor crash recovery will replay the stale pre-image. *)
  (* A single-key write to a moving slot during a transfer window routes
     on the new epoch with per-key forwarding: the target transaction is
     authoritative (a put clears the key's tombstone, a delete plants
     one), then the stale source copy is removed in its own transaction.
     A crash between the two is harmless — the target copy (or the
     tombstone) shadows the source under double-read, and recovery's
     resumed move stream re-deletes the source copy without overwriting
     the target (insert-if-absent). *)
  let forward_write t m k v =
    let tgt = raw t m.mig_target in
    let src = raw t m.mig_source in
    (match v with
    | Some value ->
      P.update_tx tgt.p (fun () ->
          ignore (Map_.put tgt.map k value : bool);
          ignore (Map_.remove m.mig_tomb k : bool))
    | None ->
      P.update_tx tgt.p (fun () ->
          ignore (Map_.remove tgt.map k : bool);
          ignore (Map_.put m.mig_tomb k "" : bool)));
    if Map_.mem src.map k then
      P.update_tx src.p (fun () -> ignore (Map_.remove src.map k : bool))

  let write_direct t k v =
    match t.router.migration with
    | Some m when m.moving.(slot_of_key t k) -> forward_write t m k v
    | _ -> (
    let s = rw t (shard_of_key t k) in
    match Hashtbl.find_opt t.proto.pending k with
    | None -> apply_op s (k, v)
    | Some pu ->
      let sp = (raw t pu.pu_shard).p in
      P.update_tx sp (fun () ->
          P.store_bytes sp pu.pu_valid "\000";
          (* the validity byte lives inside a CRC-protected chunk:
             refresh the chunk's CRC in the same transaction so a later
             rollback read of the chain still verifies *)
          let len = P.load sp (pu.pu_chunk + c_len) in
          let bytes = P.load_bytes sp (pu.pu_chunk + chunk_hdr) len in
          P.store sp (pu.pu_chunk + c_crc) (Chunk.crc bytes);
          apply_op s (k, v));
      Hashtbl.remove t.proto.pending k)

  (* newest-first scan of the buffered operations *)
  let rec lookup_ops k = function
    | [] -> None
    | (k', v) :: _ when String.equal k' k -> Some v
    | _ :: rest -> lookup_ops k rest

  (* net effect of the buffer: the newest operation per key *)
  let net_ops b =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (k, v) -> if not (Hashtbl.mem tbl k) then Hashtbl.add tbl k v)
      b.ops;
    tbl

  let get t k =
    match t.batch with
    | None -> underlying_get t k
    | Some b -> (
      match lookup_ops k b.ops with
      | Some v -> v
      | None -> underlying_get t k)

  let put t k v =
    match t.batch with
    | None -> write_direct t k (Some v)
    | Some b -> b.ops <- (k, Some v) :: b.ops

  let delete t k =
    match t.batch with
    | None ->
      let existed = underlying_mem t k in
      write_direct t k None;
      existed
    | Some b ->
      let existed =
        match lookup_ops k b.ops with
        | Some v -> Option.is_some v
        | None -> underlying_mem t k
      in
      b.ops <- (k, None) :: b.ops;
      existed

  let count t =
    let base = ref 0 in
    for i = 0 to shards t - 1 do
      match scan_shard t i with
      | None -> ()
      | Some s -> base := !base + Map_.length s.map
    done;
    let base = !base in
    match t.batch with
    | None -> base
    | Some b ->
      Hashtbl.fold
        (fun k v acc ->
          let before = underlying_mem t k in
          let after = Option.is_some v in
          acc + Bool.to_int after - Bool.to_int before)
        (net_ops b) base

  (* Shards visited in index order, hash order within a shard.  Under a
     batch handle the buffered writes are overlaid: overwritten keys are
     filtered from the underlying pass, buffered puts appended last
     (oldest first) — order inside a batch is unspecified anyway. *)
  let iter_dir ~reverse t f =
    let emit map = Map_.iter ~reverse map f in
    let shard_seq g =
      let n = shards t in
      let visit i =
        match scan_shard t i with None -> () | Some s -> g s
      in
      if reverse then
        for i = n - 1 downto 0 do
          visit i
        done
      else
        for i = 0 to n - 1 do
          visit i
        done
    in
    match t.batch with
    | None -> shard_seq (fun s -> emit s.map)
    | Some b ->
      let net = net_ops b in
      shard_seq (fun s ->
          Map_.iter ~reverse s.map (fun k v ->
              if not (Hashtbl.mem net k) then f k v));
      List.iter
        (fun (k, _) ->
          match Hashtbl.find_opt net k with
          | Some (Some v) ->
            f k v;
            Hashtbl.remove net k (* emit each net put once *)
          | Some None | None -> ())
        (List.rev b.ops)

  let iter t f = iter_dir ~reverse:false t f
  let iter_reverse t f = iter_dir ~reverse:true t f

  (* Structural check of every healthy shard; a non-healthy shard's
     structure is by definition damaged (or its engine gone), so it is
     skipped rather than failing the check of the serving data. *)
  let check t =
    let n = shards t in
    let rec go i =
      if i = n then Ok ()
      else
        match (t.shard_arr.(i), t.health_arr.(i)) with
        | Some s, Healthy -> (
          match Map_.check s.map with
          | Error e -> Error (Printf.sprintf "shard %d: %s" i e)
          | Ok () -> (
            match P.allocator_check s.p with
            | Error e -> Error (Printf.sprintf "shard %d allocator: %s" i e)
            | Ok () -> go (i + 1)))
        | _ -> go (i + 1)
    in
    go 0

  (* ---- shared cross-shard protocol helpers ---- *)

  (* stable split of [ops] (oldest first) into per-shard groups,
     ascending shard index, preserving operation order within a shard *)
  let group_by_shard t ops =
    let n = shards t in
    let groups = Array.make n [] in
    List.iter
      (fun ((k, _) as op) ->
        let i = shard_of_key t k in
        groups.(i) <- op :: groups.(i))
      ops;
    let out = ref [] in
    for i = n - 1 downto 0 do
      if groups.(i) <> [] then out := (i, List.rev groups.(i)) :: !out
    done;
    !out

  (* pre-batch image of every distinct key of [slice], oldest first *)
  let undo_of t slice =
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun (k, _) ->
        if Hashtbl.mem seen k then None
        else begin
          Hashtbl.add seen k ();
          Some (k, underlying_get t k)
        end)
      slice

  (* splice [off] out of the linked list headed at root [slot] and free
     it; a no-op when the record is already gone (inside an update tx) *)
  let unhook p ~slot off =
    let rec go prev cur =
      if cur = 0 then ()
      else if cur = off then begin
        let next = P.load p cur in
        if prev = 0 then P.set_root p slot next else P.store p prev next;
        P.free p cur
      end
      else go cur (P.load p cur)
    in
    go 0 (P.get_root p slot)

  (* free every record of a chunk or spill chain headed at [head]
     (inside an update tx) *)
  let free_chain p head =
    let rec go c =
      if c <> 0 then begin
        let next = P.load p c in
        P.free p c;
        go next
      end
    in
    go head

  (* reclaim a mirror together with its chunk chain and spilled undo
     images, and splice it out of the mirror list (inside an update tx);
     never reads payload bytes, so it is safe on unsealed chains *)
  let unhook_mirror p off =
    free_chain p (P.load p (off + m_chunks));
    free_chain p (P.load p (off + m_spills));
    unhook p ~slot:mirror_slot off

  (* one durable transaction per shard, replaying that shard's slice *)
  let apply_groups t groups =
    List.iter
      (fun (i, sops) ->
        let s = raw t i in
        P.update_tx s.p (fun () -> List.iter (apply_op s) sops))
      groups

  let wrap_abort e backtrace =
    match e with
    | Romulus.Engine.Tx_aborted _ -> raise e
    | e -> raise (Romulus.Engine.Tx_aborted { cause = e; backtrace })

  (* ---- the centralized (legacy) batch-intent protocol ---- *)

  let read_intent_root t =
    let s0 = raw t 0 in
    P.read_tx s0.p (fun () -> P.get_root s0.p intent_slot)

  let clear_intent t off =
    let s0 = raw t 0 in
    P.update_tx s0.p (fun () ->
        P.set_root s0.p intent_slot 0;
        P.free s0.p off)

  let cross_shard_batch_centralized t groups ops =
    let s0 = raw t 0 in
    let undo = undo_of t ops in
    let payload = encode ~nshards:(shards t) ~ops ~undo in
    (* PREPARE: the intent record becomes durable before any shard's data
       changes — from here a crash is reconciled from the record *)
    let off =
      P.update_tx s0.p (fun () ->
          let o = P.alloc s0.p (16 + String.length payload) in
          P.store s0.p o status_prepared;
          P.store s0.p (o + 8) (String.length payload);
          P.store_bytes s0.p (o + 16) payload;
          P.set_root s0.p intent_slot o;
          o)
    in
    tick_prepare s0;
    Fault.hit fp_intent_published;
    let applied = ref [] in
    match
      List.iter
        (fun (i, sops) ->
          let s = raw t i in
          P.update_tx s.p (fun () -> List.iter (apply_op s) sops);
          applied := i :: !applied;
          Fault.hit fp_shard_applied)
        groups
    with
    | () ->
      (* COMMIT: the batch's durability point *)
      P.update_tx s0.p (fun () -> P.store s0.p off status_committed);
      tick_flip s0;
      Fault.hit fp_committed;
      clear_intent t off;
      Fault.hit fp_cleared
    | exception Pmem.Region.Crash_point ->
      (* dead machine: recovery rolls back from the PREPARED intent *)
      raise Pmem.Region.Crash_point
    | exception e ->
      (* Runtime abort: the failing shard's own transaction already
         rolled back; restore the pre-batch images on the shards that
         committed, then withdraw the intent.  A crash inside this
         rollback leaves the PREPARED record for recovery to finish the
         same rollback idempotently.  As in the engine, the cause is
         re-raised wrapped in Tx_aborted (once). *)
      let backtrace = Printexc.get_backtrace () in
      let rolled = !applied in
      List.iter
        (fun i ->
          let s = raw t i in
          let slice =
            List.filter (fun (k, _) -> shard_of_key t k = i) undo
          in
          P.update_tx s.p (fun () -> List.iter (apply_op s) slice);
          tick_back s)
        rolled;
      clear_intent t off;
      wrap_abort e backtrace

  (* ---- the decentralized presumed-abort protocol ---- *)

  (* Unhook every clearable record of shard [i] inside the caller's
     already-open transaction; the volatile bookkeeping is committed only
     by [finish_drain] after the transaction returns, so an abort (or a
     re-executing STM closure) leaves the plan intact. *)
  let drain_plan t i =
    (t.proto.clearable_mirrors.(i), t.proto.clearable_flips.(i))

  let drain_in_tx t i (mirrors, flips) =
    let p = (raw t i).p in
    List.iter (fun (off, _) -> unhook_mirror p off) mirrors;
    List.iter (fun off -> unhook p ~slot:flip_slot off) flips

  let finish_drain t i (mirrors, flips) =
    let pr = t.proto in
    pr.clearable_mirrors.(i) <- [];
    pr.clearable_flips.(i) <- [];
    let n = List.length mirrors + List.length flips in
    if n > 0 then tick_lazy_clear (raw t i) n;
    (* a batch whose last mirror is gone frees its flip for reclamation *)
    List.iter
      (fun (_, id) ->
        match Hashtbl.find_opt pr.live_flips id with
        | None -> ()
        | Some (coord, flip_off, remaining) ->
          decr remaining;
          if !remaining = 0 then begin
            Hashtbl.remove pr.live_flips id;
            pr.clearable_flips.(coord) <-
              flip_off :: pr.clearable_flips.(coord)
          end)
      mirrors;
    if n > 0 then Fault.hit fp_mirror_cleared

  (* Run a protocol transaction that piggybacks shard [i]'s parked
     lazy-CLEAR drain.  If the combined transaction overflows the redo
     log, retry [f] alone — the records stay parked for a later flush —
     so reclamation can never fail a batch that would fit by itself
     (shrinking the chunk size cannot shrink the drain). *)
  let tx_with_drain t i f =
    let s = raw t i in
    let (mirrors, flips) as plan = drain_plan t i in
    match
      P.update_tx s.p (fun () ->
          let r = f () in
          drain_in_tx t i plan;
          r)
    with
    | r ->
      finish_drain t i plan;
      r
    | exception
        Romulus.Engine.Tx_aborted { cause = Romulus.Redo_log.Overflow _; _ }
      when mirrors <> [] || flips <> [] ->
      P.update_tx s.p f

  (* Dedicated reclamation transaction for one shard's parked records —
     the bound on the lazy-CLEAR queues.  Unlike the piggybacked drain,
     this pays its own transaction, so it only runs when asked
     ([flush_clears]) or when a queue crosses the flush threshold. *)
  let flush_shard_clears t i =
    let (mirrors, flips) as plan = drain_plan t i in
    if mirrors <> [] || flips <> [] then begin
      let s = raw t i in
      P.update_tx s.p (fun () -> drain_in_tx t i plan);
      tick_clear_flush s;
      finish_drain t i plan
    end

  let flush_clears t =
    let n = shards t in
    for i = 0 to n - 1 do
      flush_shard_clears t i
    done;
    (* draining a batch's last mirror releases its flip into the
       coordinator's queue, which the first pass may already have
       visited — a second pass leaves the store fully reclaimed *)
    for i = 0 to n - 1 do
      flush_shard_clears t i
    done

  (* After a commit, flush any shard whose parked queue crossed the
     threshold — including shards the batch never touched, so a
     write-quiet shard's stale mirrors are still reclaimed. *)
  let maybe_flush_clears t =
    let threshold = t.proto.config.clear_flush_threshold in
    let n = shards t in
    for i = 0 to n - 1 do
      if
        List.length t.proto.clearable_mirrors.(i)
        + List.length t.proto.clearable_flips.(i)
        >= threshold
      then flush_shard_clears t i
    done

  (* ---- validated chunk-chain reads ---- *)

  let chain_error msg =
    raise (Romulus.Engine.Recovery_error ("sharded mirror: " ^ msg))

  (* read and reassemble the payload of the *sealed* mirror at [off]
     (inside a transaction on shard [s]); every chunk's CRC and the
     total length are verified against the header *)
  let read_payload_in_tx s off =
    let p = s.p in
    let plen = P.load p (off + m_plen) in
    if plen < 0 then chain_error "negative payload length";
    let rec pieces acc c =
      if c = 0 then List.rev acc
      else begin
        let next = P.load p c in
        let len = P.load p (c + c_len) in
        if len < 0 || len > plen then
          chain_error "chunk length out of range";
        let stored = P.load p (c + c_crc) in
        let bytes = P.load_bytes p (c + chunk_hdr) len in
        pieces ((bytes, stored) :: acc) next
      end
    in
    match
      Chunk.join ~expect_len:plen (pieces [] (P.load p (off + m_chunks)))
    with
    | Ok payload -> payload
    | Error msg -> chain_error msg

  (* resolve a spilled undo image reference (CRC-checked) *)
  let read_spill_in_tx s ~off ~len =
    let p = s.p in
    let slen = P.load p (off + c_len) in
    if slen <> len then chain_error "spilled undo image length mismatch";
    let stored = P.load p (off + c_crc) in
    let bytes = P.load_bytes p (off + chunk_hdr) slen in
    if Chunk.crc bytes <> stored then
      chain_error "spilled undo image CRC mismatch";
    bytes

  (* replay the still-valid undo entries of the sealed mirror at [off]
     and reclaim it (chunk chain and spills included), inside one
     transaction on shard [i]; reads the validity bytes back from the
     chain so racing invalidations are honored *)
  let rollback_mirror_tx t i off =
    let s = raw t i in
    P.update_tx s.p (fun () ->
        let payload = read_payload_in_tx s off in
        let _, _, undo = decode_mirror payload in
        List.iter
          (fun (valid, k, img) ->
            if valid then
              match img with
              | U_absent -> apply_op s (k, None)
              | U_inline v -> apply_op s (k, Some v)
              | U_spilled { off = soff; len } ->
                apply_op s (k, Some (read_spill_in_tx s ~off:soff ~len)))
          undo;
        unhook_mirror s.p off)

  (* collect a partially-streamed (unsealed) chain: nothing of its slice
     was applied, so this only frees records — payload bytes are never
     decoded, which is what makes it safe on arbitrary chain prefixes *)
  let gc_mirror_tx t i off =
    let s = raw t i in
    P.update_tx s.p (fun () -> unhook_mirror s.p off)

  (* ---- PREPARE: one mirror per participant, fast or streamed ----

     Fast path (payload fits one chunk, nothing to spill): one
     transaction allocates chunk and sealed mirror, hooks it, reclaims
     stale records and applies the slice — exactly one protocol
     transaction per participant, as before chunking.

     Streamed path: an *unsealed* mirror shell is hooked first; each
     spilled undo image and each payload chunk then commits in its own
     bounded transaction, linked into the shell as it goes; a final seal
     transaction flips [sealed] and applies the slice.  A crash anywhere
     before the seal leaves an unsealed chain that recovery collects as
     presumed abort; a runtime abort collects it inline.  Sealed <=>
     slice applied — the PR 6 invariant at chain granularity. *)
  let prepare_shard t ~chunk_bytes i ~id ~coord ~mask slice =
    let s = raw t i in
    let cfg = t.proto.config in
    let nshards = shards t in
    let undo = undo_of t slice in
    let inline_len = mirror_payload_len ~ops:slice ~undo in
    let needs_spill =
      List.exists
        (fun (_, v) ->
          match v with
          | Some v -> String.length v > cfg.spill_threshold
          | None -> false)
        undo
    in
    if (not needs_spill) && inline_len <= chunk_bytes then begin
      let payload, rel_offs =
        encode_mirror ~nshards ~ops:slice
          ~undo:(List.map (fun (k, v) -> (k, image_of_opt v)) undo)
      in
      let plen = String.length payload in
      let moff, coff =
        tx_with_drain t i (fun () ->
            let c = P.alloc s.p (chunk_hdr + plen) in
            P.store s.p c 0;
            P.store s.p (c + c_len) plen;
            P.store s.p (c + c_crc) (Chunk.crc payload);
            P.store_bytes s.p (c + chunk_hdr) payload;
            let o = P.alloc s.p mirror_hdr in
            P.store s.p (o + m_next) (P.get_root s.p mirror_slot);
            P.store s.p (o + m_id) id;
            P.store s.p (o + m_coord) coord;
            P.store s.p (o + m_mask) mask;
            P.store s.p (o + m_sealed) 1;
            P.store s.p (o + m_plen) plen;
            P.store s.p (o + m_chunks) c;
            P.store s.p (o + m_spills) 0;
            P.set_root s.p mirror_slot o;
            List.iter (apply_op s) slice;
            (o, c))
      in
      tick_chunk s;
      ( moff,
        List.map (fun (k, rel) -> (k, coff, coff + chunk_hdr + rel)) rel_offs
      )
    end
    else begin
      (* unsealed shell first: from here the chain is crash-visible and
         recovery (or the inline abort path) can always collect it *)
      let moff =
        tx_with_drain t i (fun () ->
            let o = P.alloc s.p mirror_hdr in
            P.store s.p (o + m_next) (P.get_root s.p mirror_slot);
            P.store s.p (o + m_id) id;
            P.store s.p (o + m_coord) coord;
            P.store s.p (o + m_mask) mask;
            P.store s.p (o + m_sealed) 0;
            P.store s.p (o + m_plen) 0;
            P.store s.p (o + m_chunks) 0;
            P.store s.p (o + m_spills) 0;
            P.set_root s.p mirror_slot o;
            o)
      in
      try
        (* oversized undo images leave the payload: one record each,
           linked into the shell's spill list *)
        let images =
          List.map
            (fun (k, v) ->
              match v with
              | Some v when String.length v > cfg.spill_threshold ->
                let len = String.length v in
                let soff =
                  P.update_tx s.p (fun () ->
                      let o = P.alloc s.p (chunk_hdr + len) in
                      P.store s.p o (P.load s.p (moff + m_spills));
                      P.store s.p (o + c_len) len;
                      P.store s.p (o + c_crc) (Chunk.crc v);
                      P.store_bytes s.p (o + chunk_hdr) v;
                      P.store s.p (moff + m_spills) o;
                      o)
                in
                tick_spill s;
                Fault.hit fp_chunk_spilled;
                (k, U_spilled { off = soff; len })
              | v -> (k, image_of_opt v))
            undo
        in
        let payload, rel_offs =
          encode_mirror ~nshards ~ops:slice ~undo:images
        in
        (* stream the chain, tracking each piece's payload interval so
           validity-byte offsets can be mapped into their chunks *)
        let segs = ref [] in
        let prev = ref 0 in
        let pos = ref 0 in
        List.iter
          (fun piece ->
            let at = !pos and prev_off = !prev in
            let plen = String.length piece in
            let coff =
              P.update_tx s.p (fun () ->
                  let c = P.alloc s.p (chunk_hdr + plen) in
                  P.store s.p c 0;
                  P.store s.p (c + c_len) plen;
                  P.store s.p (c + c_crc) (Chunk.crc piece);
                  P.store_bytes s.p (c + chunk_hdr) piece;
                  if prev_off = 0 then P.store s.p (moff + m_chunks) c
                  else P.store s.p prev_off c;
                  c)
            in
            segs := (coff, at, plen) :: !segs;
            prev := coff;
            pos := at + plen;
            tick_chunk s;
            Fault.hit fp_chunk_written)
          (Chunk.split ~chunk_bytes payload);
        let segs = List.rev !segs in
        Fault.hit fp_seal_window;
        (* the seal: sealed <=> slice applied, atomically *)
        P.update_tx s.p (fun () ->
            P.store s.p (moff + m_plen) (String.length payload);
            P.store s.p (moff + m_sealed) 1;
            List.iter (apply_op s) slice);
        let abs_of rel =
          let rec find = function
            | (c, st, ln) :: rest ->
              if rel >= st && rel < st + ln then
                (c, c + chunk_hdr + (rel - st))
              else find rest
            | [] -> assert false
          in
          find segs
        in
        ( moff,
          List.map
            (fun (k, rel) ->
              let c, a = abs_of rel in
              (k, c, a))
            rel_offs )
      with
      | Pmem.Region.Crash_point ->
        (* dead machine: recovery collects the unsealed chain *)
        raise Pmem.Region.Crash_point
      | e ->
        (* runtime abort mid-stream: collect our own unsealed chain
           before re-raising to the batch-level abort handler *)
        gc_mirror_tx t i moff;
        raise e
    end

  let cross_shard_batch_decentralized t ~lazy_clear ~chunk_bytes groups =
    let pr = t.proto in
    let id = pr.next_batch_id in
    pr.next_batch_id <- id + 1;
    let coord = fst (List.hd groups) in
    let mask =
      List.fold_left (fun m (i, _) -> m lor (1 lsl (i land 61))) 0 groups
    in
    let applied = ref [] in
    (* keys whose pending-undo entries this batch registered *)
    let registered = ref [] in
    let unregister () =
      List.iter (fun k -> Hashtbl.remove pr.pending k) !registered;
      registered := []
    in
    match
      (* PREPARE+APPLY: each participant's mirror becomes durable-and-
         sealed in the same transaction that applies its slice (the fast
         path), or via a streamed chain whose seal transaction applies
         the slice — either way a sealed mirror always means an applied
         slice.  Stale records of earlier committed batches are
         reclaimed inside the protocol transactions (the lazy CLEAR). *)
      List.iter
        (fun (i, slice) ->
          let moff, valids =
            prepare_shard t ~chunk_bytes i ~id ~coord ~mask slice
          in
          applied := (i, moff) :: !applied;
          tick_prepare (raw t i);
          (* expose the undo entries to racing single-key writes *)
          List.iter
            (fun (k, coff, aoff) ->
              Hashtbl.replace pr.pending k
                { pu_shard = i; pu_mirror = moff; pu_chunk = coff;
                  pu_valid = aoff };
              registered := k :: !registered)
            valids;
          Fault.hit fp_mirror_applied)
        groups
    with
    | () -> (
      (* COMMIT: one flip transaction on the coordinator — the batch's
         durability point.  Also a piggyback opportunity for the
         coordinator's own stale records. *)
      let sc = raw t coord in
      let flip_off =
        tx_with_drain t coord (fun () ->
            let o = P.alloc sc.p flip_size in
            P.store sc.p o (P.get_root sc.p flip_slot);
            P.store sc.p (o + 8) id;
            P.store sc.p (o + 16) mask;
            P.set_root sc.p flip_slot o;
            o)
      in
      tick_flip sc;
      unregister ();
      Fault.hit fp_flip_written;
      let participants = !applied in
      if lazy_clear then begin
        (* CLEAR is deferred: each mirror rides its shard's next PREPARE;
           the flip follows once every mirror is gone.  Queues are
           bounded: any shard past the flush threshold is drained by a
           dedicated transaction right away. *)
        Hashtbl.replace pr.live_flips id
          (coord, flip_off, ref (List.length participants));
        List.iter
          (fun (i, off) ->
            pr.clearable_mirrors.(i) <-
              (off, id) :: pr.clearable_mirrors.(i))
          participants;
        maybe_flush_clears t
      end
      else begin
        (* eager CLEAR: one transaction per participant, then the flip *)
        List.iter
          (fun (i, off) ->
            let s = raw t i in
            P.update_tx s.p (fun () -> unhook s.p ~slot:mirror_slot off);
            Fault.hit fp_mirror_cleared)
          (List.rev participants);
        P.update_tx sc.p (fun () -> unhook sc.p ~slot:flip_slot flip_off);
        Fault.hit fp_cleared
      end)
    | exception Pmem.Region.Crash_point ->
      (* dead machine: recovery presumed-aborts the hooked mirrors *)
      raise Pmem.Region.Crash_point
    | exception e ->
      (* Runtime abort: the failing shard's own transaction already
         rolled back (mirror and slice together); the shards that did
         apply are rolled back from their own mirrors — honoring undo
         entries invalidated by racing writes — and the mirror unhooked,
         atomically per shard.  A crash inside this rollback leaves the
         remaining mirrors, with no flip, for recovery to presumed-abort
         idempotently. *)
      let backtrace = Printexc.get_backtrace () in
      List.iter
        (fun (i, off) ->
          rollback_mirror_tx t i off;
          tick_back (raw t i);
          Fault.hit fp_rollback_undone)
        !applied;
      unregister ();
      wrap_abort e backtrace

  (* ---- admission control ----

     Every decentralized batch is charged its per-shard mirror footprint
     (the exact inline-encoded payload length) against a volatile
     per-shard in-flight budget *before any persistent effect*.  A batch
     that cannot fit spins through a bounded backoff and then fails with
     the typed [Overloaded] — raised directly, not wrapped in
     [Tx_aborted], because nothing was written.  A single batch larger
     than the whole budget fails immediately: no backoff can help it. *)

  let backoff_spin round =
    for _ = 1 to (round + 1) * 64 do
      Domain.cpu_relax ()
    done

  let admit t charges =
    let budget = t.proto.config.admission_budget in
    let infl = t.proto.in_flight in
    let rec attempt round =
      match
        List.find_opt (fun (i, c) -> infl.(i) + c > budget) charges
      with
      | None -> List.iter (fun (i, c) -> infl.(i) <- infl.(i) + c) charges
      | Some (i, c) ->
        if round < admission_retries && c <= budget then begin
          backoff_spin round;
          attempt (round + 1)
        end
        else begin
          tick_overload (raw t i);
          raise (Overloaded { shard = i; in_flight = infl.(i); budget })
        end
    in
    attempt 0

  let release t charges =
    let infl = t.proto.in_flight in
    List.iter (fun (i, c) -> infl.(i) <- infl.(i) - c) charges

  (* ---- elastic sharding: routing directory + live migration ----

     A resize is a state machine persisted in two records:

       INTENT    one transaction on shard 0 hooks the migration intent
                 (kind, source, target, new epoch, moving-slot bitmap).
                 From here a crash always *completes* the migration:
                 intent durable => the resize happens (roll-forward, so
                 the oracle is deterministic).
       MOVE*     per bounded batch: one transaction on the source writes
                 the CRC-protected cursor (the batch's keys and values)
                 and deletes those keys from the source map — atomically,
                 so the cursor IS the keys' only home if the crash lands
                 before the target transaction — then one transaction on
                 the target inserts each key unless the target already
                 has it (a racing put won) or a tombstone marks it dead
                 (a racing delete won).  Replaying a cursor is therefore
                 idempotent.
       FLIP      one transaction on shard 0 persists the routing table
                 under the new epoch — the migration's validity point.
       RECLAIM   post-flip, idempotent: sweep stale source copies, free
                 the cursor, clear the tombstones, and unhook the intent
                 (last, because the intent is recovery's trigger).

     The volatile window ([router.migration]) re-points the moving slots
     at the target as soon as the intent commits, so writes route on the
     new epoch (with per-key forwarding) and reads double-read. *)

  let mig_hdr = 40 (* kind | source | target | new epoch | n_slots *)
  let cursor_hdr = 32 (* epoch | len | crc | reserved | bytes *)

  let route_error fmt =
    Printf.ksprintf
      (fun msg -> raise (Romulus.Engine.Recovery_error ("sharded routing: " ^ msg)))
      fmt

  let tomb_map t target =
    let cfg = t.proto.config in
    Map_.open_or_create ~initial_buckets:cfg.initial_buckets
      (raw t target).p ~root:tomb_slot

  let read_root t i slot =
    let p = (raw t i).p in
    P.read_tx p (fun () -> P.get_root p slot)

  (* Replace the persisted routing table: alloc the new record, swing
     the root, free the old.  Called at first open (multi-shard stores)
     and by each resize's epoch flip — a 1-shard store keeps this slot
     at 0 until it splits, staying bit-for-bit Romulus_db.  The in-tx
     variant runs inside a caller-owned shard-0 transaction so an
     evacuation can swing route and health atomically. *)
  let persist_route_in_tx t ~epoch =
    let r = t.router in
    let s0 = raw t 0 in
    let o = P.alloc s0.p (24 + (8 * r.n_slots)) in
    P.store s0.p o epoch;
    P.store s0.p (o + 8) r.n_slots;
    P.store s0.p (o + 16) (shards t);
    Array.iteri (fun s a -> P.store s0.p (o + 24 + (8 * s)) a) r.assignment;
    let old = P.get_root s0.p route_slot in
    P.set_root s0.p route_slot o;
    if old <> 0 then P.free s0.p old

  let persist_route t ~epoch =
    let s0 = raw t 0 in
    P.update_tx s0.p (fun () -> persist_route_in_tx t ~epoch)

  (* ---- durable health record (shard 0, [health_slot]) ----

     Wholesale replace, like the routing table.  The record is a cache
     of deterministically recomputable verdicts (media rot is
     persistent), with one exception: [Quarantined (Evacuated _)] is
     authoritative — an evacuated shard's residual bytes may even scrub
     clean, but its keys live on the target now, so the verdict must
     survive reopen. *)
  let persist_health_in_tx t =
    let s0 = raw t 0 in
    let payload = encode_health t.health_arr in
    let len = String.length payload in
    let o = P.alloc s0.p (8 + len) in
    P.store s0.p o len;
    P.store_bytes s0.p (o + 8) payload;
    let old = P.get_root s0.p health_slot in
    P.set_root s0.p health_slot o;
    if old <> 0 then P.free s0.p old

  let persist_health t =
    let s0 = raw t 0 in
    P.update_tx s0.p (fun () -> persist_health_in_tx t)

  let load_health t =
    match read_root t 0 health_slot with
    | 0 -> None
    | off ->
      let s0 = raw t 0 in
      let payload =
        P.read_tx s0.p (fun () ->
            let len = P.load s0.p off in
            if len < 0 then route_error "negative health record length";
            P.load_bytes s0.p (off + 8) len)
      in
      Some (decode_health payload)

  (* Record a health transition: volatile verdict, counter, failpoint,
     and (unless the caller batches several transitions under one
     [persist_health]) the durable record.  A crash between the
     failpoint and the durable write converges: verdicts are recomputed
     at the next open. *)
  let set_health ?(persist = true) t i h =
    if t.health_arr.(i) <> h then begin
      t.health_arr.(i) <- h;
      tick_health t i h;
      (match h with
      | Healthy -> Fault.hit fp_health_repaired
      | Degraded _ -> Fault.hit fp_health_degraded
      | Quarantined _ -> Fault.hit fp_health_quarantined);
      if persist then persist_health t
    end

  (* Rebuild the volatile routing image from shard 0's persisted record,
     or the identity epoch-0 table when none was ever written.  Validated:
     a table naming a shard beyond the attached regions means the store
     was reopened without a region a completed split added. *)
  let load_router t =
    let r = t.router in
    let n = shards t in
    let off = read_root t 0 route_slot in
    if off = 0 then begin
      (* No table was ever flipped.  Usually the identity layout over the
         attached regions — but a crash inside the *first* migration
         leaves an intent and no table, and the identity must then be
         computed over the pre-resize shard count, which the intent's
         slot count encodes (n_slots = slots_per_shard * original n). *)
      let n_slots =
        match read_root t 0 mig_slot with
        | 0 -> slots_per_shard * n
        | moff ->
          let s0 = raw t 0 in
          P.read_tx s0.p (fun () -> P.load s0.p (moff + 32))
      in
      if n_slots <= 0 || n_slots mod slots_per_shard <> 0 then
        route_error "bad slot count %d" n_slots;
      let base = n_slots / slots_per_shard in
      if base <= 0 || base > n then
        route_error "identity table over %d shards, store has %d regions"
          base n;
      r.epoch <- 0;
      r.n_slots <- n_slots;
      r.assignment <- Array.init n_slots (fun s -> s mod base);
      (* Pin the identity table durably for multi-shard stores (1-shard
         stores stay metadata-free and bit-for-bit Romulus_db): a crash
         between a split's target-region attach and its intent commit
         must not let a later reopen-with-the-target-attached rebuild
         the identity over the wrong shard count.  Skipped while an
         intent is pending — the resumed migration's flip persists the
         final table itself. *)
      if base > 1 && read_root t 0 mig_slot = 0 then
        persist_route t ~epoch:0
    end
    else begin
      let s0 = raw t 0 in
      let epoch, n_slots, assignment =
        P.read_tx s0.p (fun () ->
            let epoch = P.load s0.p off in
            let n_slots = P.load s0.p (off + 8) in
            if epoch < 0 then route_error "bad epoch %d" epoch;
            if n_slots <= 0 || n_slots > slots_per_shard * 4096 then
              route_error "bad slot count %d" n_slots;
            ( epoch, n_slots,
              Array.init n_slots (fun s -> P.load s0.p (off + 24 + (8 * s))) ))
      in
      Array.iter
        (fun a ->
          if a < 0 || a >= n then
            route_error
              "table names shard %d, store has %d regions (reopen with \
               every shard of the family attached)"
              a n)
        assignment;
      r.epoch <- epoch;
      r.n_slots <- n_slots;
      r.assignment <- assignment
    end;
    r.migration <- None

  let read_mig_intent t =
    let off = read_root t 0 mig_slot in
    if off = 0 then None
    else begin
      let s0 = raw t 0 in
      let kind, source, target, mepoch, n_slots, bitmap =
        P.read_tx s0.p (fun () ->
            let n_slots = P.load s0.p (off + 32) in
            if n_slots <= 0 || n_slots > slots_per_shard * 4096 then
              route_error "migration intent has bad slot count %d" n_slots;
            ( P.load s0.p off, P.load s0.p (off + 8), P.load s0.p (off + 16),
              P.load s0.p (off + 24), n_slots,
              P.load_bytes s0.p (off + mig_hdr) n_slots ))
      in
      let n = shards t in
      (* kind 0 = split, 1 = merge, 2 = evacuation *)
      if kind < 0 || kind > 2 then
        route_error "migration intent has bad kind %d" kind;
      if source < 0 || source >= n || target < 0 || target >= n then
        route_error
          "migration intent names shards %d->%d, store has %d regions \
           (reopen with the migration target's region attached)"
          source target n;
      if n_slots <> t.router.n_slots then
        route_error "migration intent has %d slots, table has %d" n_slots
          t.router.n_slots;
      if mepoch <> t.router.epoch && mepoch <> t.router.epoch + 1 then
        route_error "migration intent epoch %d does not follow table epoch %d"
          mepoch t.router.epoch;
      let moving = Array.init n_slots (fun s -> bitmap.[s] = '\001') in
      Some (off, kind, source, target, mepoch, moving)
    end

  (* One bounded move batch: [moved] is (key, value) pairs still living
     in the source.  Source transaction: replace the cursor (free the
     previous batch's) and delete the keys; target transaction: insert
     each unless a racing write already decided the key.  The target
     charge rides admission control with the shared typed-backoff
     retry. *)
  let move_batch t m moved =
    let src = raw t m.mig_source in
    let tgt = raw t m.mig_target in
    let b = Buffer.create 256 in
    add_kv_list b (List.map (fun (k, v) -> (k, Some v)) moved);
    let payload = Buffer.contents b in
    let plen = String.length payload in
    P.update_tx src.p (fun () ->
        let o = P.alloc src.p (cursor_hdr + plen) in
        P.store src.p o m.mig_epoch;
        P.store src.p (o + 8) plen;
        P.store src.p (o + 16) (Chunk.crc payload);
        P.store src.p (o + 24) 0;
        P.store_bytes src.p (o + cursor_hdr) payload;
        let old = P.get_root src.p cursor_slot in
        P.set_root src.p cursor_slot o;
        if old <> 0 then P.free src.p old;
        List.iter
          (fun (k, _) -> ignore (Map_.remove src.map k : bool))
          moved);
    Fault.hit fp_mig_moved;
    let charge = [ (m.mig_target, plen) ] in
    with_overload_retry ~seed:(m.mig_epoch + plen) (fun () -> admit t charge);
    Fun.protect
      ~finally:(fun () -> release t charge)
      (fun () ->
        let inserted = ref 0 in
        P.update_tx tgt.p (fun () ->
            List.iter
              (fun (k, v) ->
                if
                  (not (Map_.mem tgt.map k))
                  && not (Map_.mem m.mig_tomb k)
                then begin
                  ignore (Map_.put tgt.map k v : bool);
                  incr inserted
                end)
              moved);
        tick_migrated tgt !inserted);
    Fault.hit fp_mig_applied

  (* Stream every source key of a moving slot to the target in bounded
     batches (payload <= chunk_bytes, always at least one key).  Keys a
     racing write touches mid-stream are skipped naturally: a forwarded
     put or delete removes its key from the source before the stream
     reaches it.  A final re-collection pass confirms the source is
     drained. *)
  let run_move_loop t m =
    let src = raw t m.mig_source in
    let chunk_bytes = t.proto.config.chunk_bytes in
    let rec pass () =
      let pending = ref [] in
      Map_.iter src.map (fun k v ->
          if m.moving.(slot_of_key t k) then pending := (k, v) :: !pending);
      match !pending with
      | [] -> ()
      | kvs ->
        let rec batches = function
          | [] -> ()
          | kvs ->
            let rec take acc size = function
              | [] -> (List.rev acc, [])
              | ((k, v) :: rest) as all ->
                let size = size + 17 + String.length k + String.length v in
                if acc <> [] && size > chunk_bytes then (List.rev acc, all)
                else take ((k, v) :: acc) size rest
            in
            let batch, rest = take [] 8 kvs in
            (* a racing write may have retired a key since collection *)
            let moved =
              List.filter (fun (k, _) -> Map_.mem src.map k) batch
            in
            if moved <> [] then move_batch t m moved;
            batches rest
        in
        batches kvs;
        pass ()
    in
    pass ()

  (* The migration's validity point: persist the routing table under the
     new epoch in one shard-0 transaction.  The volatile assignment was
     re-pointed when the window opened, so this only makes it durable. *)
  let flip_epoch t m =
    persist_route t ~epoch:m.mig_epoch;
    t.router.epoch <- m.mig_epoch;
    t.router.migration <- None;
    tick_mig_completed (raw t 0);
    Fault.hit fp_mig_flip

  (* Post-flip reclamation, idempotent (recovery re-runs it whole when a
     crash lands inside): finish any straggler source copies, free the
     cursor, clear the tombstones, and unhook the intent last — it is
     the durable evidence that reclamation may still be owed. *)
  let reclaim_migration t ~source ~target ~moving =
    let src = raw t source in
    let tgt = raw t target in
    let tomb = tomb_map t target in
    (* stale moving-slot copies left in the source: none in a crash-free
       run (the move stream deletes as it goes); after a crash, a copy
       whose key the target never decided is completed rather than
       dropped — exactly-once either way *)
    let stale = ref [] in
    Map_.iter src.map (fun k v ->
        if moving.(slot_of_key t k) then stale := (k, v) :: !stale);
    if !stale <> [] then begin
      let orphans =
        List.filter
          (fun (k, _) ->
            (not (Map_.mem tgt.map k)) && not (Map_.mem tomb k))
          !stale
      in
      if orphans <> [] then
        P.update_tx tgt.p (fun () ->
            List.iter
              (fun (k, v) -> ignore (Map_.put tgt.map k v : bool))
              orphans);
      P.update_tx src.p (fun () ->
          List.iter
            (fun (k, _) -> ignore (Map_.remove src.map k : bool))
            !stale)
    end;
    let coff = read_root t source cursor_slot in
    if coff <> 0 then
      P.update_tx src.p (fun () ->
          P.set_root src.p cursor_slot 0;
          P.free src.p coff);
    let tkeys = ref [] in
    Map_.iter tomb (fun k _ -> tkeys := k :: !tkeys);
    if !tkeys <> [] then
      P.update_tx tgt.p (fun () ->
          List.iter
            (fun k -> ignore (Map_.remove tomb k : bool))
            !tkeys);
    (match read_root t 0 mig_slot with
    | 0 -> ()
    | ioff ->
      let s0 = raw t 0 in
      P.update_tx s0.p (fun () ->
          P.set_root s0.p mig_slot 0;
          P.free s0.p ioff));
    Fault.hit fp_mig_reclaim

  (* Open a fresh region as the next shard index (formatting it under
     its own engine) and grow the per-shard protocol arrays. *)
  let attach_shard t region =
    let cfg = t.proto.config in
    let p = P.open_region region in
    let map =
      Map_.open_or_create ~initial_buckets:cfg.initial_buckets p
        ~root:db_root
    in
    t.shard_arr <- Array.append t.shard_arr [| Some { p; map; region } |];
    t.region_arr <- Array.append t.region_arr [| region |];
    t.health_arr <- Array.append t.health_arr [| Healthy |];
    let pr = t.proto in
    pr.clearable_mirrors <- Array.append pr.clearable_mirrors [| [] |];
    pr.clearable_flips <- Array.append pr.clearable_flips [| [] |];
    pr.in_flight <- Array.append pr.in_flight [| 0 |];
    shards t - 1

  (* Run a migration from an already-durable intent: open the window
     (moving slots route to the target from here), stream, flip,
     reclaim. *)
  let run_migration t ~source ~target ~mepoch ~moving =
    let r = t.router in
    let m =
      { mig_source = source; mig_target = target; mig_epoch = mepoch;
        moving; mig_tomb = tomb_map t target }
    in
    r.migration <- Some m;
    Array.iteri (fun s mv -> if mv then r.assignment.(s) <- target) moving;
    run_move_loop t m;
    flip_epoch t m;
    reclaim_migration t ~source ~target ~moving

  (* Make a migration intent durable (kind 0 = split, 1 = merge, 2 =
     evacuation) and return the epoch it will flip to. *)
  let write_mig_intent t ~kind ~source ~target ~moving =
    let r = t.router in
    let mepoch = r.epoch + 1 in
    let s0 = raw t 0 in
    let bitmap =
      String.init r.n_slots (fun s -> if moving.(s) then '\001' else '\000')
    in
    P.update_tx s0.p (fun () ->
        let o = P.alloc s0.p (mig_hdr + r.n_slots) in
        P.store s0.p o kind;
        P.store s0.p (o + 8) source;
        P.store s0.p (o + 16) target;
        P.store s0.p (o + 24) mepoch;
        P.store s0.p (o + 32) r.n_slots;
        P.store_bytes s0.p (o + mig_hdr) bitmap;
        P.set_root s0.p mig_slot o);
    tick_mig_started s0;
    Fault.hit fp_mig_intent;
    mepoch

  let start_migration t ~kind ~source ~target ~moving =
    let mepoch = write_mig_intent t ~kind ~source ~target ~moving in
    run_migration t ~source ~target ~mepoch ~moving

  let check_resizable t ~source =
    if t.batch <> None then
      invalid_arg "Sharded_db: cannot resize through a batch handle";
    if t.router.migration <> None then
      invalid_arg "Sharded_db: a migration is already in progress";
    let n = shards t in
    if source < 0 || source >= n then
      invalid_arg (Printf.sprintf "Sharded_db: bad source shard %d" source)

  let owned_slots t shard =
    let r = t.router in
    let owned = ref [] in
    for s = r.n_slots - 1 downto 0 do
      if r.assignment.(s) = shard then owned := s :: !owned
    done;
    !owned

  (* Split half of [source]'s slots (every other owned slot) onto a new
     shard opened over [region]; returns the new shard's index.  Online:
     reads and single-key writes proceed during the stream. *)
  let split_shard t ~source region =
    check_resizable t ~source;
    (* the move stream reads and deletes from the source: Healthy only *)
    ignore (rw t source : shard);
    let owned = owned_slots t source in
    if List.length owned < 2 then
      invalid_arg
        (Printf.sprintf
           "Sharded_db.split_shard: shard %d owns %d slot(s), cannot split"
           source (List.length owned));
    let target = attach_shard t region in
    let moving = Array.make t.router.n_slots false in
    List.iteri (fun i s -> if i land 1 = 1 then moving.(s) <- true) owned;
    start_migration t ~kind:0 ~source ~target ~moving;
    target

  (* Move every slot of [source] onto [target]; the source region stays
     attached (it may anchor the routing directory or host protocol
     records) but owns no slots and holds no keys afterwards. *)
  let merge_shards t ~source ~target =
    check_resizable t ~source;
    let n = shards t in
    if target < 0 || target >= n then
      invalid_arg (Printf.sprintf "Sharded_db: bad target shard %d" target);
    if target = source then
      invalid_arg "Sharded_db.merge_shards: source = target";
    (* both endpoints take writes during the stream: Healthy only *)
    ignore (rw t source : shard);
    ignore (rw t target : shard);
    let owned = owned_slots t source in
    if owned = [] then
      invalid_arg
        (Printf.sprintf "Sharded_db.merge_shards: shard %d owns no slots"
           source);
    let moving = Array.make t.router.n_slots false in
    List.iter (fun s -> moving.(s) <- true) owned;
    start_migration t ~kind:1 ~source ~target ~moving

  (* ---- evacuation: moving surviving keys off a dying shard ----

     Unlike split/merge, the source is Degraded: client writes to it are
     already refused, so there is no transfer window, no cursor and no
     tombstones — the source is treated as strictly read-only.  The
     stream is best-effort salvage: iteration keeps every key reached
     before the first rotten line on its path.  The flip is one shard-0
     transaction swinging the routing table (moving slots -> target,
     epoch+1) AND the source's durable [Evacuated] verdict atomically,
     so a reopen either routes to the source (pre-flip, intent re-runs
     the idempotent stream) or to the target with the source retired. *)
  let collect_salvageable src =
    let acc = ref [] in
    (try Map_.iter src.map (fun k v -> acc := (k, v) :: !acc)
     with Pmem.Region.Media_error _ -> ());
    List.rev !acc

  let run_evacuation t ~source ~target ~mepoch ~moving =
    let src = raw t source in
    let tgt = raw t target in
    Fault.hit fp_health_evacuate_start;
    let kvs = collect_salvageable src in
    (* bounded insert-if-absent batches (idempotent on re-run): a moving
       key can only be written through the source, which refuses, so a
       key already present in the target was placed by this stream *)
    let chunk_bytes = t.proto.config.chunk_bytes in
    let flush batch =
      if batch <> [] then begin
        let inserted = ref 0 in
        P.update_tx tgt.p (fun () ->
            List.iter
              (fun (k, v) ->
                if not (Map_.mem tgt.map k) then begin
                  ignore (Map_.put tgt.map k v : bool);
                  incr inserted
                end)
              batch);
        tick_region t target (fun st ->
            st.Pmem.Stats.keys_evacuated <-
              st.Pmem.Stats.keys_evacuated + !inserted)
      end
    in
    let rec batches = function
      | [] -> ()
      | kvs ->
        let rec take acc size = function
          | [] -> (List.rev acc, [])
          | ((k, v) :: rest) as all ->
            let size = size + 17 + String.length k + String.length v in
            if acc <> [] && size > chunk_bytes then (List.rev acc, all)
            else take ((k, v) :: acc) size rest
        in
        let batch, rest = take [] 8 kvs in
        flush batch;
        batches rest
    in
    batches kvs;
    (* volatile route + verdict first (precedent: run_migration opening
       the window before its durable flip), then the atomic flip *)
    let r = t.router in
    Array.iteri (fun s mv -> if mv then r.assignment.(s) <- target) moving;
    let verdict = Quarantined (Evacuated { target }) in
    t.health_arr.(source) <- verdict;
    tick_health t source verdict;
    let s0 = raw t 0 in
    P.update_tx s0.p (fun () ->
        persist_route_in_tx t ~epoch:mepoch;
        persist_health_in_tx t);
    r.epoch <- mepoch;
    tick_mig_completed s0;
    tick_region t source (fun st ->
        st.Pmem.Stats.shards_evacuated <- st.Pmem.Stats.shards_evacuated + 1);
    Fault.hit fp_health_evacuated;
    (* retire the dying engine; residual source bytes are never touched
       again (its map still holds stale duplicates of the target's keys,
       which is why scans drop Evacuated shards) *)
    t.shard_arr.(source) <- None;
    (match read_root t 0 mig_slot with
    | 0 -> ()
    | ioff ->
      P.update_tx s0.p (fun () ->
          P.set_root s0.p mig_slot 0;
          P.free s0.p ioff));
    Fault.hit fp_mig_reclaim;
    List.length kvs

  let start_evacuation t ~source ~target =
    if t.batch <> None then
      invalid_arg "Sharded_db: cannot evacuate through a batch handle";
    if source = 0 then
      invalid_arg "Sharded_db: shard 0 anchors the store and cannot be \
                   evacuated";
    if read_root t 0 mig_slot <> 0 then
      invalid_arg "Sharded_db: a migration is already in progress";
    if not (healthy t target) then
      invalid_arg
        (Printf.sprintf "Sharded_db: evacuation target %d is not healthy"
           target);
    let owned = owned_slots t source in
    let moving = Array.make t.router.n_slots false in
    List.iter (fun s -> moving.(s) <- true) owned;
    let mepoch = write_mig_intent t ~kind:2 ~source ~target ~moving in
    run_evacuation t ~source ~target ~mepoch ~moving

  (* Recovery-side reconciliation of an in-flight migration.  Split and
     merge intents are rolled *forward* — but only when both endpoints
     are fully healthy: the move stream reads and deletes from the
     source and writes the target, so against rotten media it is
     *parked* instead (intent left hooked, window never opened, slots
     routing on the old epoch) until a {!repair} pass heals the
     endpoints and re-drives this.  An evacuation intent (kind 2)
     re-runs the read-only salvage stream when the source engine is up
     and the target healthy; flipped, it owes only the intent unhook —
     the dying source is never written. *)
  let reconcile_migration t =
    match read_mig_intent t with
    | None -> ()
    | Some (ioff, kind, source, target, mepoch, moving) ->
      if kind = 2 then begin
        if t.router.epoch >= mepoch then begin
          (* routing and the Evacuated verdict flipped durably together;
             only the intent unhook is owed *)
          let s0 = raw t 0 in
          tick_mig_resumed s0;
          P.update_tx s0.p (fun () ->
              P.set_root s0.p mig_slot 0;
              P.free s0.p ioff);
          Fault.hit fp_mig_reclaim
        end
        else if Option.is_some t.shard_arr.(source) && healthy t target
        then begin
          tick_mig_resumed (raw t 0);
          Fault.hit fp_mig_resumed;
          ignore (run_evacuation t ~source ~target ~mepoch ~moving : int)
        end
        (* else parked: the salvage source is unopenable or the target is
           sick; a later repair pass re-drives the evacuation *)
      end
      else if not (healthy t source && healthy t target) then
        () (* parked split/merge; resumed by repair via reconcile *)
      else begin
        tick_mig_resumed (raw t 0);
        if t.router.epoch >= mepoch then
          reclaim_migration t ~source ~target ~moving
        else begin
          let src = raw t source in
          let tgt = raw t target in
        let tomb = tomb_map t target in
        let coff = read_root t source cursor_slot in
        if coff <> 0 then begin
          let cepoch, payload =
            P.read_tx src.p (fun () ->
                let cepoch = P.load src.p coff in
                let len = P.load src.p (coff + 8) in
                if len < 0 then chain_error "negative migration cursor length";
                let stored = P.load src.p (coff + 16) in
                let bytes = P.load_bytes src.p (coff + cursor_hdr) len in
                if Chunk.crc bytes <> stored then
                  chain_error "migration cursor CRC mismatch";
                (cepoch, bytes))
          in
          if cepoch = mepoch then begin
            let pr = { payload; pos = 0 } in
            let kvs = take_kv_list pr "migration-cursor" in
            let inserted = ref 0 in
            P.update_tx tgt.p (fun () ->
                List.iter
                  (fun (k, v) ->
                    match v with
                    | Some v ->
                      if
                        (not (Map_.mem tgt.map k))
                        && not (Map_.mem tomb k)
                      then begin
                        ignore (Map_.put tgt.map k v : bool);
                        incr inserted
                      end
                    | None -> ())
                  kvs);
            tick_migrated tgt !inserted
          end
        end;
        Fault.hit fp_mig_resumed;
        run_migration t ~source ~target ~mepoch ~moving
        end
      end

  let commit_batch t b =
    let ops = List.rev b.ops in
    if ops <> [] then begin
      (* Epoch consistency: a batch whose keys touch slots inside an
         open transfer window cannot be grouped consistently under one
         epoch (its slices would interleave with the move stream), so it
         is refused with the typed [Overloaded] — retryable via
         {!with_overload_retry}; once the window closes the retry routes
         cleanly on the new epoch.  Batches on untouched slots group
         identically under both epochs and proceed. *)
      (match t.router.migration with
      | Some m when List.exists (fun (k, _) -> m.moving.(slot_of_key t k)) ops
        ->
        let i = m.mig_target in
        tick_overload (raw t i);
        raise
          (Overloaded
             { shard = i; in_flight = t.proto.in_flight.(i);
               budget = t.proto.config.admission_budget })
      | _ -> ());
      match group_by_shard t ops with
      | [] -> ()
      | [ (i, sops) ] ->
        (* one shard: a single ordinary transaction, no intent — exact
           Romulus_db semantics (and the only path with one shard) *)
        let s = rw t i in
        P.update_tx s.p (fun () -> List.iter (apply_op s) sops)
      | groups -> (
        (* every participant must accept writes before any intent or
           mirror is made durable: a batch never partially lands on the
           healthy subset of its shards *)
        List.iter (fun (i, _) -> ignore (rw t i : shard)) groups;
        match t.proto.protocol with
        | Centralized -> cross_shard_batch_centralized t groups ops
        | Decentralized { lazy_clear } ->
          let charges =
            List.map
              (fun (i, slice) ->
                (i, mirror_payload_len ~ops:slice ~undo:(undo_of t slice)))
              groups
          in
          admit t charges;
          Fun.protect
            ~finally:(fun () -> release t charges)
            (fun () ->
              (* A redo-log overflow inside PREPARE aborts cleanly (the
                 batch-level handler already rolled every applied mirror
                 back), so re-enter the chunked path with smaller chunks
                 — bounding each protocol transaction — instead of
                 surfacing the overflow.  When even [min_chunk_bytes]
                 overflows (the slice itself is too wide for the redo
                 log) the typed [Tx_aborted] carries the cause. *)
              let rec attempt chunk_bytes =
                try
                  cross_shard_batch_decentralized t ~lazy_clear
                    ~chunk_bytes groups
                with
                | Romulus.Engine.Tx_aborted
                    { cause = Romulus.Redo_log.Overflow _; _ }
                  when chunk_bytes > min_chunk_bytes ->
                  attempt (max min_chunk_bytes (chunk_bytes / 4))
              in
              attempt t.proto.config.chunk_bytes))
    end

  let write_batch t f =
    match t.batch with
    | Some _ -> f t (* nested batch flattens, like a nested update_tx *)
    | None -> (
      let b = { ops = [] } in
      match f { t with batch = Some b } with
      | () -> commit_batch t b
      | exception ((Romulus.Engine.Tx_aborted _ | Pmem.Region.Crash_point) as e)
        ->
        raise e
      | exception e ->
        (* the buffered operations are simply discarded; surface the same
           typed abort a Romulus_db batch (one update_tx) would *)
        let backtrace = Printexc.get_backtrace () in
        raise (Romulus.Engine.Tx_aborted { cause = e; backtrace }))

  (* ---- recovery, reconciliation, scrub ---- *)

  (* Centralized reconciliation: replay the single shard-0 record.  Both
     directions replay plain put/delete lists, so a repeated replay (a
     crash inside reconciliation, then another recovery) is a no-op. *)
  let reconcile_centralized t =
    let off = read_intent_root t in
    if off <> 0 then begin
      let s0 = raw t 0 in
      let status, payload =
        P.read_tx s0.p (fun () ->
            let status = P.load s0.p off in
            let len = P.load s0.p (off + 8) in
            (status, P.load_bytes s0.p (off + 16) len))
      in
      let nshards, ops, undo = decode payload in
      (* an elastic store may have grown since the intent was written, so
         only an intent naming *more* shards than are attached is
         corrupt *)
      if nshards <= 0 || nshards > shards t then
        raise
          (Romulus.Engine.Recovery_error
             (Printf.sprintf
                "sharded batch intent names %d shards, store has %d" nshards
                (shards t)));
      let groups =
        if status = status_prepared then group_by_shard t undo
        else if status = status_committed then group_by_shard t ops
        else
          raise
            (Romulus.Engine.Recovery_error
               (Printf.sprintf "sharded batch intent has bad status %d"
                  status))
      in
      (* replay needs every participant's engine: with one down the
         batch can be neither fully rolled back nor fully forward, so
         the intent stays hooked for the recovery that follows repair.
         A participant whose replay trips rotten media likewise parks
         the intent rather than failing the whole open. *)
      if List.for_all (fun (i, _) -> engine_up t i) groups then begin
        match apply_groups t groups with
        | () ->
          if status = status_prepared then tick_back s0 else tick_forward s0;
          clear_intent t off
        | exception (Pmem.Region.Crash_point as e) -> raise e
        | exception
            Romulus.Engine.Tx_aborted
              { cause = Pmem.Region.Media_error _; _ } ->
          ()
      end
    end

  (* Decentralized reconciliation: resolve every hooked mirror against
     its coordinator's flip list, then clear the flips.  Phase order
     matters — a flip may only be removed once no mirror of its batch
     remains anywhere, or a crash between the two phases would turn a
     committed batch into a presumed abort.

     Flip present  => the batch committed; the mirror's slice was
                      applied in the same transaction that wrote the
                      mirror, so resolution just unhooks it.
     Flip absent   => presumed abort; replay the mirror's still-valid
                      undo images and unhook, one transaction per
                      mirror.  Idempotent: every step is an absolute
                      put/delete plus a list splice.

     Health interplay: a mirror is never presumed aborted while its
     coordinator's flip list is unreadable (engine down) — absence of
     evidence is not evidence of abort — and a mirror whose resolution
     trips rotten media is left hooked.  Any such skip also parks phase
     2 wholesale: a flip may only be reclaimed once no mirror of its
     batch can remain anywhere. *)
  let reconcile_decentralized t =
    let n = shards t in
    let skipped = ref false in
    (* all durable flips of reachable coordinators, keyed by
       (coordinator shard, batch id) *)
    let flips = Hashtbl.create 8 in
    for c = 0 to n - 1 do
      if engine_up t c then begin
        let p = (raw t c).p in
        P.read_tx p (fun () ->
            let rec go off =
              if off <> 0 then begin
                Hashtbl.replace flips (c, P.load p (off + 8)) off;
                go (P.load p off)
              end
            in
            go (P.get_root p flip_slot))
      end
    done;
    (* phase 1: resolve every hooked mirror.  Offsets are collected in
       one read pass per shard and stay valid as others are unhooked
       (a splice never moves surviving records), so a mirror left
       hooked on purpose cannot spin the walk. *)
    for i = 0 to n - 1 do
      if not (engine_up t i) then begin
        (* an evacuated shard is retired for good — its residual mirrors
           are abandoned with it and never block flip reclamation; any
           other down shard may come back via repair, so its unresolved
           mirrors park phase 2 *)
        match t.health_arr.(i) with
        | Quarantined (Evacuated _) -> ()
        | _ -> skipped := true
      end
      else begin
        let s = raw t i in
        let offs =
          P.read_tx s.p (fun () ->
              let rec go acc off =
                if off = 0 then List.rev acc
                else go (off :: acc) (P.load s.p off)
              in
              go [] (P.get_root s.p mirror_slot))
        in
        List.iter
          (fun head ->
            match
              let id, coord, sealed =
                P.read_tx s.p (fun () ->
                    (P.load s.p (head + m_id), P.load s.p (head + m_coord),
                     P.load s.p (head + m_sealed)))
              in
              if coord < 0 || coord >= n then
                raise
                  (Romulus.Engine.Recovery_error
                     (Printf.sprintf
                        "sharded mirror names coordinator %d of %d" coord n));
              if sealed <> 0 && sealed <> 1 then
                raise
                  (Romulus.Engine.Recovery_error
                     (Printf.sprintf "sharded mirror has bad seal word %d"
                        sealed));
              if sealed = 0 then begin
                (* partially-streamed chain, never sealed: the slice was
                   never applied, so the whole chain is presumed-abort
                   garbage — collected without decoding a byte *)
                gc_mirror_tx t i head;
                tick_back s;
                Fault.hit fp_chunk_gc
              end
              else if not (engine_up t coord) then
                (* coordinator down: commit vs abort is undecidable;
                   leave the sealed mirror hooked until after repair *)
                skipped := true
              else begin
                let payload =
                  P.read_tx s.p (fun () -> read_payload_in_tx s head)
                in
                let nshards, _, _ = decode_mirror payload in
                (* mirrors may predate a split; only more-than-attached
                   is corrupt *)
                if nshards <= 0 || nshards > n then
                  raise
                    (Romulus.Engine.Recovery_error
                       (Printf.sprintf
                          "sharded mirror names %d shards, store has %d"
                          nshards n));
                if Hashtbl.mem flips (coord, id) then begin
                  (* committed: the slice is already applied *)
                  P.update_tx s.p (fun () -> unhook_mirror s.p head);
                  tick_forward s
                end
                else begin
                  rollback_mirror_tx t i head;
                  tick_back s
                end
              end
            with
            | () -> Fault.hit fp_recover_resolved
            | exception (Pmem.Region.Crash_point as e) -> raise e
            | exception
                ( Pmem.Region.Media_error _
                | Romulus.Engine.Tx_aborted
                    { cause = Pmem.Region.Media_error _; _ } ) ->
              skipped := true
            | exception (Romulus.Engine.Recovery_error _ as e) -> (
              (* a rotten shard can truncate a chain mid-record; on a
                 sound shard the same shape is real corruption *)
              match t.health_arr.(i) with
              | Degraded _ -> skipped := true
              | _ -> raise e))
          offs
      end
    done;
    (* phase 2: with nothing skipped no mirror survives anywhere, so
       every flip is reclaimable *)
    if not !skipped then
      for c = 0 to n - 1 do
        if engine_up t c then begin
          let s = raw t c in
          let rec clear_head () =
            let head = P.read_tx s.p (fun () -> P.get_root s.p flip_slot) in
            if head <> 0 then begin
              P.update_tx s.p (fun () ->
                  P.set_root s.p flip_slot (P.load s.p head);
                  P.free s.p head);
              clear_head ()
            end
          in
          clear_head ()
        end
      done

  (* Reconciliation rebuilds the persistent truth, so the volatile
     protocol bookkeeping (which may hold offsets of records the pass
     just freed) is reset first. *)
  let reconcile t =
    let pr = t.proto in
    Hashtbl.reset pr.pending;
    Hashtbl.reset pr.live_flips;
    Array.fill pr.clearable_mirrors 0 (Array.length pr.clearable_mirrors) [];
    Array.fill pr.clearable_flips 0 (Array.length pr.clearable_flips) [];
    Array.fill pr.in_flight 0 (Array.length pr.in_flight) 0;
    (* the routing table first (batch reconciliation may route), then the
       commit protocols (per-key truth must be settled before keys are
       streamed between shards), then any in-flight migration — which is
       always completed, so handles never see an open window after
       recovery *)
    load_router t;
    reconcile_centralized t;
    reconcile_decentralized t;
    reconcile_migration t

  let recover_shard t i =
    if i < 0 || i >= shards t then
      invalid_arg (Printf.sprintf "Sharded_db.recover_shard: bad shard %d" i);
    match t.shard_arr.(i) with
    | None ->
      raise
        (Shard_open_failed
           { shard = i;
             cause = Romulus.Engine.Recovery_error "engine is not open" })
    | Some s -> (
      try P.recover s.p with
      | Pmem.Region.Crash_point as e -> raise e
      | e -> raise (Shard_open_failed { shard = i; cause = e }))

  (* Per-shard engine recovery (salvage mode), fanned out across
     domains, classified into health verdicts instead of raised: shard
     0 failing is fatal ({!Shard_open_failed} — it anchors the store),
     any other failing shard is quarantined with its engine detached,
     and data-loss survivors come back Degraded.  A previously recorded
     [Evacuated] verdict is authoritative and never reclassified. *)
  let recover ?(parallel = true) t =
    let n = shards t in
    let verdicts = Array.make n None in
    let run s = try Ok (P.recover_salvage s.p) with e -> Error e in
    if parallel && n > 1 then begin
      let doms =
        Array.map
          (Option.map (fun s -> Domain.spawn (fun () -> run s)))
          t.shard_arr
      in
      Array.iteri
        (fun i d ->
          match d with
          | None -> ()
          | Some d ->
            verdicts.(i) <- Some (Domain.join d);
            Fault.hit fp_recover_shard_done)
        doms
    end
    else
      Array.iteri
        (fun i so ->
          match so with
          | None -> ()
          | Some s ->
            verdicts.(i) <- Some (run s);
            Fault.hit fp_recover_shard_done)
        t.shard_arr;
    (* a simulated machine crash is the whole store dying, not a shard
       fault; and without shard 0 there is nothing to degrade to *)
    Array.iter
      (function
        | Some (Error Pmem.Region.Crash_point) -> raise Pmem.Region.Crash_point
        | _ -> ())
      verdicts;
    (match verdicts.(0) with
    | Some (Error e) -> raise (Shard_open_failed { shard = 0; cause = e })
    | _ -> ());
    let changed = ref false in
    Array.iteri
      (fun i v ->
        match (v, t.health_arr.(i)) with
        | None, _ | _, Quarantined (Evacuated _) -> ()
        | Some v, prev ->
          let h =
            match v with
            | Ok [] -> Healthy
            | Ok ((offset, state) :: _) ->
              Degraded (Unrepairable_media { offset; state })
            | Error (Romulus.Engine.Unrepairable { offset; state }) ->
              Quarantined (Unrepairable_media { offset; state })
            | Error (Romulus.Engine.Recovery_error msg) ->
              Quarantined (Open_failed msg)
            | Error (Pmem.Region.Media_error { offset; _ }) ->
              Quarantined
                (Open_failed
                   (Printf.sprintf "media error at offset %d during recovery"
                      offset))
            | Error e -> raise (Shard_open_failed { shard = i; cause = e })
          in
          (match h with
          | Quarantined _ -> t.shard_arr.(i) <- None
          | Healthy | Degraded _ -> ());
          if prev <> h then begin
            set_health ~persist:false t i h;
            changed := true
          end)
      verdicts;
    if !changed then persist_health t;
    reconcile t;
    Fault.hit fp_recover_reconciled

  (* Hooked protocol records across the whole store: the centralized
     intent (if any) plus every decentralized mirror and flip.  Zero on
     a quiescent store with eager CLEAR; with lazy CLEAR, committed
     batches leave mirrors and flips here until reclaimed. *)
  let pending_intents t =
    let count p slot =
      P.read_tx p (fun () ->
          let rec go n off = if off = 0 then n else go (n + 1) (P.load p off) in
          go 0 (P.get_root p slot))
    in
    Array.fold_left
      (fun acc so ->
        match so with
        | None -> acc
        | Some s -> acc + count s.p mirror_slot + count s.p flip_slot)
      (if read_intent_root t <> 0 then 1 else 0)
      t.shard_arr

  (* A durable migration intent is still hooked (never true after
     recovery or a completed resize: reclamation unhooks it). *)
  let migration_pending t = read_root t 0 mig_slot <> 0

  let media_spans t =
    Array.map
      (function None -> [] | Some s -> P.media_spans s.p)
      t.shard_arr

  (* Store-wide salvage scrub over every shard whose engine is open,
     with the tolerated data-loss lines of all shards concatenated
     (offsets are shard-relative — {!scrub_shards} keeps the
     attribution). *)
  let scrub t =
    Array.fold_left
      (fun (acc : Romulus.Engine.scrub_report) so ->
        match so with
        | None -> acc
        | Some s ->
          let r = P.scrub_salvage s.p in
          { Romulus.Engine.scrubbed = acc.scrubbed + r.scrubbed;
            repaired = acc.repaired + r.repaired;
            unrepairable = acc.unrepairable @ r.unrepairable })
      { Romulus.Engine.scrubbed = 0; repaired = 0; unrepairable = [] }
      t.shard_arr

  (* Per-shard salvage scrub reports, one entry per open engine: each
     repaired or tolerated line is attributed to exactly the shard whose
     region holds it. *)
  let scrub_shards t =
    let acc = ref [] in
    Array.iteri
      (fun i so ->
        match so with
        | None -> ()
        | Some s -> acc := (i, P.scrub_salvage s.p) :: !acc)
      t.shard_arr;
    List.rev !acc

  (* ---- the repair supervisor ---- *)

  type repair_outcome =
    | Scrub_repaired
    | Snapshot_restored
    | Evacuated_keys of { target : int; moved : int }
    | Unrepaired of health_cause

  (* Re-mount a detached engine over the shard's region; false when the
     region still refuses to open. *)
  let try_reopen t i =
    match t.shard_arr.(i) with
    | Some _ -> true
    | None -> (
      try
        let region = t.region_arr.(i) in
        let p = P.open_region region in
        let map =
          Map_.open_or_create ~initial_buckets:t.proto.config.initial_buckets
            p ~root:db_root
        in
        t.shard_arr.(i) <- Some { p; map; region };
        true
      with
      | Pmem.Region.Crash_point as e -> raise e
      | _ -> false)

  (* R1: bounded scrub retries under the shared jittered-exponential
     backoff schedule.  Succeeds when a reopen+salvage-scrub pass comes
     back with nothing unrepairable (rot healed from a twin, or cleared
     at the source). *)
  let repair_scrub t i ~retries ~base_ns ~seed =
    let attempt () =
      tick_region t i (fun st ->
          st.Pmem.Stats.repair_attempts <- st.Pmem.Stats.repair_attempts + 1);
      try_reopen t i
      &&
      match t.shard_arr.(i) with
      | None -> false
      | Some s -> (
        match P.scrub_salvage s.p with
        | { Romulus.Engine.unrepairable = []; _ } -> true
        | _ -> false
        | exception Pmem.Region.Crash_point -> raise Pmem.Region.Crash_point
        | exception _ -> false)
    in
    let rec go = function
      | [] -> attempt ()
      | wait :: rest ->
        attempt ()
        ||
        (backoff_wait_ns wait;
         go rest)
    in
    go (overload_backoff_schedule ~retries ~base_ns ~seed)

  (* R2: replace the shard's region wholesale from its latest snapshot
     file, validated by a clean salvage scrub before it is adopted.
     Writes committed to the shard after the snapshot are lost — which
     is why this is strictly a fallback — and any batch the store owed
     the shard is re-settled by the reconciliation replay that follows
     repair. *)
  let repair_restore t i ~snapshot_base =
    match snapshot_base with
    | None -> false
    | Some base -> (
      let path = Pmem.Region.shard_snapshot_path base ~shard:i in
      Sys.file_exists path
      &&
      try
        let region = Pmem.Region.load_from_file path in
        let p = P.open_region region in
        let map =
          Map_.open_or_create ~initial_buckets:t.proto.config.initial_buckets
            p ~root:db_root
        in
        (match P.scrub_salvage p with
        | { Romulus.Engine.unrepairable = []; _ } ->
          t.region_arr.(i) <- region;
          t.shard_arr.(i) <- Some { p; map; region };
          tick_region t i (fun st ->
              st.Pmem.Stats.repair_snapshot_restores <-
                st.Pmem.Stats.repair_snapshot_restores + 1);
          true
        | _ -> false)
      with
      | Pmem.Region.Crash_point as e -> raise e
      | _ -> false)

  (* R3 target selection: an explicit healthy target, or the first
     healthy shard that is not the patient. *)
  let find_evac_target t i ~target =
    match target with
    | Some tgt ->
      if tgt < 0 || tgt >= shards t then
        invalid_arg
          (Printf.sprintf "Sharded_db.repair: bad target shard %d" tgt);
      if tgt <> i && healthy t tgt then Some tgt else None
    | None ->
      let rec scan j =
        if j >= shards t then None
        else if j <> i && healthy t j then Some j
        else scan (j + 1)
      in
      scan 0

  (* The self-healing driver, escalating per sick shard:
       R1 scrub retries (backoff), R2 snapshot restore, R3 evacuation.
     Evacuation needs a readable source engine, a healthy target, shard
     0 to not be the patient, and no migration intent in flight; a
     shard nothing applies to keeps its verdict as [Unrepaired].  All
     verdict changes are persisted in one health record, then the
     reconciliation pass re-runs so work parked on the sick shards
     (batch intents, mirrors, migrations) settles on the healed
     store. *)
  let repair ?(retries = default_overload_retries)
      ?(base_ns = default_overload_base_ns) ?(seed = 0) ?snapshot_base
      ?target t =
    if t.batch <> None then
      invalid_arg "Sharded_db: cannot repair through a batch handle";
    let outcomes = ref [] in
    let changed = ref false in
    for i = 0 to shards t - 1 do
      match t.health_arr.(i) with
      | Healthy | Quarantined (Evacuated _) -> ()
      | Degraded cause | Quarantined cause ->
        if repair_scrub t i ~retries ~base_ns ~seed:(seed + i) then begin
          set_health ~persist:false t i Healthy;
          changed := true;
          outcomes := (i, Scrub_repaired) :: !outcomes
        end
        else if i <> 0 && repair_restore t i ~snapshot_base then begin
          set_health ~persist:false t i Healthy;
          changed := true;
          outcomes := (i, Snapshot_restored) :: !outcomes
        end
        else begin
          match
            if
              i = 0
              || Option.is_none t.shard_arr.(i)
              || read_root t 0 mig_slot <> 0
            then None
            else find_evac_target t i ~target
          with
          | Some tgt ->
            let moved = start_evacuation t ~source:i ~target:tgt in
            changed := true;
            outcomes := (i, Evacuated_keys { target = tgt; moved }) :: !outcomes
          | None -> outcomes := (i, Unrepaired cause) :: !outcomes
        end
    done;
    if !changed then begin
      persist_health t;
      reconcile t
    end;
    List.rev !outcomes

  (* ---- construction, snapshots ---- *)

  let open_db ?(protocol = default_protocol) ?(initial_buckets = 1024)
      ?(chunk_bytes = default_chunk_bytes)
      ?(spill_threshold = default_spill_threshold)
      ?(admission_budget = default_admission_budget)
      ?(clear_flush_threshold = default_clear_flush_threshold) regions =
    if Array.length regions = 0 then raise (Invalid_shards 0);
    if initial_buckets <= 0 then
      raise (Romulus_db.Invalid_buckets initial_buckets);
    if chunk_bytes < min_chunk_bytes then
      invalid_arg
        (Printf.sprintf "Sharded_db.open_db: chunk_bytes %d < minimum %d"
           chunk_bytes min_chunk_bytes);
    if spill_threshold <= 0 then
      invalid_arg "Sharded_db.open_db: spill_threshold must be positive";
    if admission_budget <= 0 then
      invalid_arg "Sharded_db.open_db: admission_budget must be positive";
    if clear_flush_threshold <= 0 then
      invalid_arg "Sharded_db.open_db: clear_flush_threshold must be positive";
    let n = Array.length regions in
    (* Per-shard open + classification.  Opening runs engine recovery in
       salvage mode, so content damage surfaces here: a shard whose
       engine mounts is re-scrubbed to decide Healthy vs Degraded; a
       shard whose engine refuses to mount is quarantined with a typed
       cause — except shard 0, which anchors the routing table, the
       intents and the health record: without it there is no store to
       degrade, so its failure is the typed fatal {!Shard_open_failed}. *)
    let open_engine region =
      let p = P.open_region region in
      let map = Map_.open_or_create ~initial_buckets p ~root:db_root in
      let s = { p; map; region } in
      let h =
        match (P.scrub_salvage p : Romulus.Engine.scrub_report).unrepairable
        with
        | [] -> Healthy
        | (offset, state) :: _ -> Degraded (Unrepairable_media { offset; state })
      in
      (s, h)
    in
    let shard_arr = Array.make n None in
    let health_arr = Array.make n Healthy in
    (match open_engine regions.(0) with
    | s, h ->
      shard_arr.(0) <- Some s;
      health_arr.(0) <- h
    | exception (Pmem.Region.Crash_point as e) -> raise e
    | exception e -> raise (Shard_open_failed { shard = 0; cause = e }));
    for i = 1 to n - 1 do
      match open_engine regions.(i) with
      | s, h ->
        shard_arr.(i) <- Some s;
        health_arr.(i) <- h
      | exception (Pmem.Region.Crash_point as e) -> raise e
      | exception Romulus.Engine.Unrepairable { offset; state } ->
        health_arr.(i) <- Quarantined (Unrepairable_media { offset; state })
      | exception Romulus.Engine.Recovery_error msg ->
        health_arr.(i) <- Quarantined (Open_failed msg)
      | exception Pmem.Region.Media_error { offset; _ } ->
        health_arr.(i) <-
          Quarantined
            (Open_failed
               (Printf.sprintf "media error at offset %d while opening" offset))
      | exception e ->
        health_arr.(i) <- Quarantined (Open_failed (Printexc.to_string e))
    done;
    let config =
      { initial_buckets; chunk_bytes; spill_threshold; admission_budget;
        clear_flush_threshold }
    in
    let proto =
      { protocol; config; next_batch_id = 1; pending = Hashtbl.create 16;
        clearable_mirrors = Array.make n []; clearable_flips = Array.make n [];
        live_flips = Hashtbl.create 8; in_flight = Array.make n 0 }
    in
    let router =
      { epoch = 0; n_slots = slots_per_shard * n;
        assignment = Array.init (slots_per_shard * n) (fun s -> s mod n);
        migration = None }
    in
    let t =
      { shard_arr; region_arr = Array.copy regions; health_arr;
        batch = None; proto; router }
    in
    (* Merge the durable record: every verdict above was freshly
       recomputed from the media (rot is persistent), so only the
       non-recomputable [Evacuated] verdict is taken from disk. *)
    let saved = load_health t in
    (match saved with
    | None -> ()
    | Some sv ->
      Array.iteri
        (fun i h ->
          if i < n then
            match h with
            | Quarantined (Evacuated _) -> t.health_arr.(i) <- h
            | _ -> ())
        sv);
    Array.iteri
      (fun i h ->
        if h <> Healthy then begin
          tick_health t i h;
          Fault.hit
            (match h with
            | Degraded _ -> fp_health_degraded
            | _ -> fp_health_quarantined)
        end)
      t.health_arr;
    (* refresh the durable record when the medium disagrees with it
       (fresh stores with all shards healthy stay metadata-free) *)
    (match saved with
    | None -> if Array.exists (fun h -> h <> Healthy) t.health_arr then
        persist_health t
    | Some sv -> if sv <> t.health_arr then persist_health t);
    reconcile t;
    t

  let save_to_files t base =
    Array.iteri
      (fun i region ->
        Pmem.Region.save_to_file region
          (Pmem.Region.shard_snapshot_path base ~shard:i))
      t.region_arr

  let open_from_files ?fence ?protocol ?initial_buckets ?chunk_bytes
      ?spill_threshold ?admission_budget ?clear_flush_threshold ~shards base =
    if shards <= 0 then raise (Invalid_shards shards);
    (* validate the requested count against the file family before any
       region is opened: a snapshot family saved by an elastic store has
       one file per shard it had grown to, and opening a strict subset
       (or asking for more) would silently mis-route *)
    let found =
      let rec scan i =
        if Sys.file_exists (Pmem.Region.shard_snapshot_path base ~shard:i)
        then scan (i + 1)
        else i
      in
      scan 0
    in
    if found <> shards then raise (Shard_mismatch { requested = shards; found });
    let regions =
      Array.init shards (fun i ->
          (* a snapshot file that cannot even be loaded gives no region
             bytes to quarantine over, so the failure is typed and
             names the shard; content-level damage inside a loadable
             file is classified by [open_db] instead *)
          try
            Pmem.Region.load_from_file ?fence
              (Pmem.Region.shard_snapshot_path base ~shard:i)
          with
          | Pmem.Region.Crash_point as e -> raise e
          | e -> raise (Shard_open_failed { shard = i; cause = e }))
    in
    open_db ?protocol ?initial_buckets ?chunk_bytes ?spill_threshold
      ?admission_budget ?clear_flush_threshold regions
end

(* The default sharded store: RomulusLog per shard, as in RomulusDB. *)
module Default = Make (Romulus.Logged)
