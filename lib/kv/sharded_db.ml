(* Sharded RomulusDB: the LevelDB interface of Romulus_db, hash-
   partitioned across N independent per-shard PTM instances.  One engine
   means one C-RW-WP writer lock and one flat-combining array, so update
   throughput is flat no matter how many domains run; with a shard per
   partition, unrelated updates commit concurrently and each shard
   amortizes its own batch under one set of persistence fences, while
   every shard keeps the paper's twin-copy 4-fence protocol intact.

   Cross-shard write batches are made all-or-nothing by a persistent
   batch-intent record in shard 0 (root slot [intent_slot]):

     1. PREPARE   one shard-0 transaction allocates the intent record —
                  status word PREPARED, the buffered operations, and a
                  pre-batch undo image per distinct key — and publishes
                  it in the root slot.
     2. APPLY     one ordinary durable transaction per touched shard
                  replays that shard's operations.
     3. COMMIT    one shard-0 transaction flips the status to COMMITTED:
                  this is the batch's durability point.
     4. CLEAR     one shard-0 transaction unhooks and frees the record.

   Recovery (after every shard's engine recovery has restored per-shard
   consistency) reconciles from the intent: a PREPARED record rolls the
   batch *back* by replaying the undo images, a COMMITTED record rolls it
   *forward* by replaying the operations — both idempotent at the KV
   level, so a crash inside reconciliation itself just reconverges on the
   next recovery.  A batch that touches a single shard (always the case
   with one shard) skips the protocol entirely and runs as that shard's
   lone transaction, exactly as in Romulus_db. *)

exception Invalid_shards of int

module type SHARD_PTM = sig
  include Romulus.Ptm_intf.S

  val recover : t -> unit
  val scrub : t -> Romulus.Engine.scrub_report
  val media_spans : t -> (int * int) list
  val allocator_check : t -> (unit, string) result
end

(* Crash-window failpoints: the campaign arms one of these with a
   simulated power-off to kill inside the intent window, between the
   per-shard commits, and around recovery's fan-out. *)
let fp_intent_published = Fault.site "sharded.batch.intent_published"
let fp_shard_applied = Fault.site "sharded.batch.shard_applied"
let fp_committed = Fault.site "sharded.batch.committed"
let fp_cleared = Fault.site "sharded.batch.cleared"
let fp_recover_shard_done = Fault.site "sharded.recover.shard_done"
let fp_recover_reconciled = Fault.site "sharded.recover.reconciled"

module Make (P : SHARD_PTM) = struct
  module Map_ = Str_hash_map.Make (P)

  type shard = { p : P.t; map : Map_.t; region : Pmem.Region.t }

  (* A batch handle is a shallow copy of the store with [batch = Some _]:
     operations on it are buffered (newest first) instead of applied, so
     concurrent batches never share mutable state. *)
  type batch = { mutable ops : (string * string option) list }

  type t = { shard_arr : shard array; batch : batch option }

  let db_root = 0 (* same slot as Romulus_db: the map's anchor *)

  (* Last root slot, far from the map's anchor: the batch-intent record
     of the cross-shard protocol, in shard 0.  Never touched before the
     first cross-shard batch, so a 1-shard store stays bit-for-bit
     identical to Romulus_db. *)
  let intent_slot = Romulus.Ptm_intf.root_slots - 1

  let status_prepared = 1
  let status_committed = 2

  (* FNV-1a core as the map's bucket hash, plus an avalanche step so the
     shard route is independent of the bucket index even when the shard
     count shares factors with the bucket count. *)
  let route_hash s =
    let h = ref 0x4bf29ce484222325 in
    String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3) s;
    let h = !h in
    let h = h lxor (h lsr 33) in
    let h = h * 0x2545F4914F6CDD1D in
    (h lxor (h lsr 29)) land max_int

  let shards t = Array.length t.shard_arr
  let shard_of_key t k = route_hash k mod shards t
  let shard_for t k = t.shard_arr.(shard_of_key t k)
  let regions t = Array.map (fun s -> s.region) t.shard_arr

  let stats t =
    Pmem.Stats.aggregate
      (Array.to_list
         (Array.map (fun s -> Pmem.Region.stats s.region) t.shard_arr))

  (* ---- intent-record serialization ----

     Volatile encoding of the batch (operations oldest-first, then the
     undo images), stored as one blob inside the intent record.  All
     lengths are 64-bit little-endian; a value option carries a presence
     tag so "put empty string" and "delete" stay distinct. *)

  let add_str b s =
    Buffer.add_int64_le b (Int64.of_int (String.length s));
    Buffer.add_string b s

  let add_kv_list b l =
    Buffer.add_int64_le b (Int64.of_int (List.length l));
    List.iter
      (fun (k, v) ->
        add_str b k;
        match v with
        | None -> Buffer.add_char b '\000'
        | Some v ->
          Buffer.add_char b '\001';
          add_str b v)
      l

  let encode ~nshards ~ops ~undo =
    let b = Buffer.create 256 in
    Buffer.add_int64_le b (Int64.of_int nshards);
    add_kv_list b ops;
    add_kv_list b undo;
    Buffer.contents b

  let decode payload =
    let pos = ref 0 in
    let bad what =
      raise
        (Romulus.Engine.Recovery_error
           (Printf.sprintf "sharded batch intent: truncated %s record" what))
    in
    let take_int what =
      if !pos + 8 > String.length payload then bad what;
      let v = Int64.to_int (String.get_int64_le payload !pos) in
      pos := !pos + 8;
      if v < 0 then bad what;
      v
    in
    let take_str what =
      let len = take_int what in
      if !pos + len > String.length payload then bad what;
      let s = String.sub payload !pos len in
      pos := !pos + len;
      s
    in
    let take_kv_list what =
      let n = take_int what in
      List.init n (fun _ ->
          let k = take_str what in
          if !pos >= String.length payload then bad what;
          let tag = payload.[!pos] in
          incr pos;
          match tag with
          | '\000' -> (k, None)
          | '\001' -> (k, Some (take_str what))
          | _ -> bad what)
    in
    let nshards = take_int "shard-count" in
    let ops = take_kv_list "operation" in
    let undo = take_kv_list "undo" in
    (nshards, ops, undo)

  (* ---- plain (non-batch) operations ---- *)

  let underlying_get t k = Map_.get (shard_for t k).map k
  let underlying_mem t k = Map_.mem (shard_for t k).map k

  let apply_op s (k, v) =
    match v with
    | Some v -> ignore (Map_.put s.map k v : bool)
    | None -> ignore (Map_.remove s.map k : bool)

  (* newest-first scan of the buffered operations *)
  let rec lookup_ops k = function
    | [] -> None
    | (k', v) :: _ when String.equal k' k -> Some v
    | _ :: rest -> lookup_ops k rest

  (* net effect of the buffer: the newest operation per key *)
  let net_ops b =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (k, v) -> if not (Hashtbl.mem tbl k) then Hashtbl.add tbl k v)
      b.ops;
    tbl

  let get t k =
    match t.batch with
    | None -> underlying_get t k
    | Some b -> (
      match lookup_ops k b.ops with
      | Some v -> v
      | None -> underlying_get t k)

  let put t k v =
    match t.batch with
    | None -> ignore (Map_.put (shard_for t k).map k v : bool)
    | Some b -> b.ops <- (k, Some v) :: b.ops

  let delete t k =
    match t.batch with
    | None -> Map_.remove (shard_for t k).map k
    | Some b ->
      let existed =
        match lookup_ops k b.ops with
        | Some v -> Option.is_some v
        | None -> underlying_mem t k
      in
      b.ops <- (k, None) :: b.ops;
      existed

  let count t =
    let base =
      Array.fold_left (fun n s -> n + Map_.length s.map) 0 t.shard_arr
    in
    match t.batch with
    | None -> base
    | Some b ->
      Hashtbl.fold
        (fun k v acc ->
          let before = underlying_mem t k in
          let after = Option.is_some v in
          acc + Bool.to_int after - Bool.to_int before)
        (net_ops b) base

  (* Shards visited in index order, hash order within a shard.  Under a
     batch handle the buffered writes are overlaid: overwritten keys are
     filtered from the underlying pass, buffered puts appended last
     (oldest first) — order inside a batch is unspecified anyway. *)
  let iter_dir ~reverse t f =
    let emit map = Map_.iter ~reverse map f in
    let shard_seq g =
      let n = Array.length t.shard_arr in
      if reverse then
        for i = n - 1 downto 0 do
          g t.shard_arr.(i)
        done
      else
        for i = 0 to n - 1 do
          g t.shard_arr.(i)
        done
    in
    match t.batch with
    | None -> shard_seq (fun s -> emit s.map)
    | Some b ->
      let net = net_ops b in
      shard_seq (fun s ->
          Map_.iter ~reverse s.map (fun k v ->
              if not (Hashtbl.mem net k) then f k v));
      List.iter
        (fun (k, _) ->
          match Hashtbl.find_opt net k with
          | Some (Some v) ->
            f k v;
            Hashtbl.remove net k (* emit each net put once *)
          | Some None | None -> ())
        (List.rev b.ops)

  let iter t f = iter_dir ~reverse:false t f
  let iter_reverse t f = iter_dir ~reverse:true t f

  let check t =
    let n = Array.length t.shard_arr in
    let rec go i =
      if i = n then Ok ()
      else
        match Map_.check t.shard_arr.(i).map with
        | Error e -> Error (Printf.sprintf "shard %d: %s" i e)
        | Ok () -> (
          match P.allocator_check t.shard_arr.(i).p with
          | Error e -> Error (Printf.sprintf "shard %d allocator: %s" i e)
          | Ok () -> go (i + 1))
    in
    go 0

  (* ---- the cross-shard batch protocol ---- *)

  (* stable split of [ops] (oldest first) into per-shard groups,
     ascending shard index, preserving operation order within a shard *)
  let group_by_shard t ops =
    let n = Array.length t.shard_arr in
    let groups = Array.make n [] in
    List.iter
      (fun ((k, _) as op) ->
        let i = shard_of_key t k in
        groups.(i) <- op :: groups.(i))
      ops;
    let out = ref [] in
    for i = n - 1 downto 0 do
      if groups.(i) <> [] then out := (i, List.rev groups.(i)) :: !out
    done;
    !out

  let read_intent_root t =
    let s0 = t.shard_arr.(0) in
    P.read_tx s0.p (fun () -> P.get_root s0.p intent_slot)

  let clear_intent t off =
    let s0 = t.shard_arr.(0) in
    P.update_tx s0.p (fun () ->
        P.set_root s0.p intent_slot 0;
        P.free s0.p off)

  (* one durable transaction per shard, replaying that shard's slice *)
  let apply_groups t groups =
    List.iter
      (fun (i, sops) ->
        let s = t.shard_arr.(i) in
        P.update_tx s.p (fun () -> List.iter (apply_op s) sops))
      groups

  let cross_shard_batch t groups ops =
    let s0 = t.shard_arr.(0) in
    (* pre-batch image of every distinct key, for rollback *)
    let seen = Hashtbl.create 16 in
    let undo =
      List.filter_map
        (fun (k, _) ->
          if Hashtbl.mem seen k then None
          else begin
            Hashtbl.add seen k ();
            Some (k, underlying_get t k)
          end)
        ops
    in
    let payload =
      encode ~nshards:(Array.length t.shard_arr) ~ops ~undo
    in
    (* PREPARE: the intent record becomes durable before any shard's data
       changes — from here a crash is reconciled from the record *)
    let off =
      P.update_tx s0.p (fun () ->
          let o = P.alloc s0.p (16 + String.length payload) in
          P.store s0.p o status_prepared;
          P.store s0.p (o + 8) (String.length payload);
          P.store_bytes s0.p (o + 16) payload;
          P.set_root s0.p intent_slot o;
          o)
    in
    Fault.hit fp_intent_published;
    let applied = ref [] in
    match
      List.iter
        (fun (i, sops) ->
          let s = t.shard_arr.(i) in
          P.update_tx s.p (fun () -> List.iter (apply_op s) sops);
          applied := i :: !applied;
          Fault.hit fp_shard_applied)
        groups
    with
    | () ->
      (* COMMIT: the batch's durability point *)
      P.update_tx s0.p (fun () -> P.store s0.p off status_committed);
      Fault.hit fp_committed;
      clear_intent t off;
      Fault.hit fp_cleared
    | exception Pmem.Region.Crash_point ->
      (* dead machine: recovery rolls back from the PREPARED intent *)
      raise Pmem.Region.Crash_point
    | exception e ->
      (* Runtime abort: the failing shard's own transaction already
         rolled back; restore the pre-batch images on the shards that
         committed, then withdraw the intent.  A crash inside this
         rollback leaves the PREPARED record for recovery to finish the
         same rollback idempotently.  As in the engine, the cause is
         re-raised wrapped in Tx_aborted (once). *)
      let backtrace = Printexc.get_backtrace () in
      let rolled = !applied in
      List.iter
        (fun i ->
          let s = t.shard_arr.(i) in
          let slice =
            List.filter (fun (k, _) -> shard_of_key t k = i) undo
          in
          P.update_tx s.p (fun () -> List.iter (apply_op s) slice))
        rolled;
      clear_intent t off;
      (match e with
       | Romulus.Engine.Tx_aborted _ -> raise e
       | e -> raise (Romulus.Engine.Tx_aborted { cause = e; backtrace }))

  let commit_batch t b =
    let ops = List.rev b.ops in
    if ops <> [] then begin
      match group_by_shard t ops with
      | [] -> ()
      | [ (i, sops) ] ->
        (* one shard: a single ordinary transaction, no intent — exact
           Romulus_db semantics (and the only path with one shard) *)
        let s = t.shard_arr.(i) in
        P.update_tx s.p (fun () -> List.iter (apply_op s) sops)
      | groups -> cross_shard_batch t groups ops
    end

  let write_batch t f =
    match t.batch with
    | Some _ -> f t (* nested batch flattens, like a nested update_tx *)
    | None -> (
      let b = { ops = [] } in
      match f { t with batch = Some b } with
      | () -> commit_batch t b
      | exception ((Romulus.Engine.Tx_aborted _ | Pmem.Region.Crash_point) as e)
        ->
        raise e
      | exception e ->
        (* the buffered operations are simply discarded; surface the same
           typed abort a Romulus_db batch (one update_tx) would *)
        let backtrace = Printexc.get_backtrace () in
        raise (Romulus.Engine.Tx_aborted { cause = e; backtrace }))

  (* ---- recovery, reconciliation, scrub ---- *)

  (* Replay a reconciliation slice on every shard it touches.  Both
     directions replay plain put/delete lists, so a repeated replay (a
     crash inside reconciliation, then another recovery) is a no-op. *)
  let reconcile t =
    let off = read_intent_root t in
    if off <> 0 then begin
      let s0 = t.shard_arr.(0) in
      let status, payload =
        P.read_tx s0.p (fun () ->
            let status = P.load s0.p off in
            let len = P.load s0.p (off + 8) in
            (status, P.load_bytes s0.p (off + 16) len))
      in
      let nshards, ops, undo = decode payload in
      if nshards <> Array.length t.shard_arr then
        raise
          (Romulus.Engine.Recovery_error
             (Printf.sprintf
                "sharded batch intent names %d shards, store has %d" nshards
                (Array.length t.shard_arr)));
      if status = status_prepared then
        (* batch never reached its durability point: roll back *)
        apply_groups t (group_by_shard t undo)
      else if status = status_committed then
        (* batch committed: roll forward *)
        apply_groups t (group_by_shard t ops)
      else
        raise
          (Romulus.Engine.Recovery_error
             (Printf.sprintf "sharded batch intent has bad status %d" status));
      clear_intent t off
    end

  let recover_shard t i = P.recover t.shard_arr.(i).p

  let recover ?(parallel = true) t =
    let n = Array.length t.shard_arr in
    if parallel && n > 1 then begin
      let doms =
        Array.map (fun s -> Domain.spawn (fun () -> P.recover s.p)) t.shard_arr
      in
      let first_err = ref None in
      Array.iter
        (fun d ->
          match Domain.join d with
          | () -> Fault.hit fp_recover_shard_done
          | exception e ->
            if Option.is_none !first_err then first_err := Some e)
        doms;
      match !first_err with Some e -> raise e | None -> ()
    end
    else
      Array.iter
        (fun s ->
          P.recover s.p;
          Fault.hit fp_recover_shard_done)
        t.shard_arr;
    reconcile t;
    Fault.hit fp_recover_reconciled

  let media_spans t = Array.map (fun s -> P.media_spans s.p) t.shard_arr

  let scrub t =
    Array.fold_left
      (fun (acc : Romulus.Engine.scrub_report) s ->
        let r = P.scrub s.p in
        { Romulus.Engine.scrubbed = acc.scrubbed + r.scrubbed;
          repaired = acc.repaired + r.repaired })
      { Romulus.Engine.scrubbed = 0; repaired = 0 }
      t.shard_arr

  (* ---- construction, snapshots ---- *)

  let open_db ?(initial_buckets = 1024) regions =
    if Array.length regions = 0 then raise (Invalid_shards 0);
    if initial_buckets <= 0 then
      raise (Romulus_db.Invalid_buckets initial_buckets);
    let shard_arr =
      Array.map
        (fun region ->
          let p = P.open_region region in
          let map = Map_.open_or_create ~initial_buckets p ~root:db_root in
          { p; map; region })
        regions
    in
    let t = { shard_arr; batch = None } in
    reconcile t;
    t

  let save_to_files t base =
    Array.iteri
      (fun i s ->
        Pmem.Region.save_to_file s.region
          (Pmem.Region.shard_snapshot_path base ~shard:i))
      t.shard_arr

  let open_from_files ?fence ?initial_buckets ~shards base =
    if shards <= 0 then raise (Invalid_shards shards);
    let regions =
      Array.init shards (fun i ->
          Pmem.Region.load_from_file ?fence
            (Pmem.Region.shard_snapshot_path base ~shard:i))
    in
    open_db ?initial_buckets regions
end

(* The default sharded store: RomulusLog per shard, as in RomulusDB. *)
module Default = Make (Romulus.Logged)
