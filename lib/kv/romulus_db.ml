(* RomulusDB (§6.4): a persistent key-value store with the LevelDB
   interface, built by wrapping the string hash map in a PTM.  Unlike
   LevelDB, every write is a durable transaction (there is no
   WriteOptions.sync to forget), and write batches are real transactions
   with all-or-nothing semantics.

   The functor runs on any PTM; the paper's RomulusDB uses RomulusLog,
   which is what {!Default} instantiates. *)

(* A non-positive bucket count would silently corrupt the map layout
   (zero-length bucket array, modulo by zero on the first lookup); reject
   it with a typed error before anything touches the region. *)
exception Invalid_buckets of int

module Make (P : Romulus.Ptm_intf.S) = struct
  module Map_ = Str_hash_map.Make (P)

  type t = { p : P.t; map : Map_.t }

  let db_root = 0

  (* Open (or create) the database stored in [region]. *)
  let open_db ?(initial_buckets = 1024) region =
    if initial_buckets <= 0 then raise (Invalid_buckets initial_buckets);
    let p = P.open_region region in
    let map = Map_.open_or_create ~initial_buckets p ~root:db_root in
    { p; map }

  (* Every operation is individually durable (the paper's comparison
     point against LevelDB's buffered durability). *)
  let put t k v = ignore (Map_.put t.map k v)

  let get t k = Map_.get t.map k

  let delete t k = Map_.remove t.map k

  let count t = Map_.length t.map

  (* LevelDB's write-batch, upgraded to a real transaction: all or
     nothing, one set of persistence fences for the whole batch. *)
  let write_batch t f = P.update_tx t.p (fun () -> f t)

  (* Full scans (readseq / readreverse).  RomulusDB is hash-ordered, so
     forward and reverse traversals cost the same (§6.4). *)
  let iter t f = Map_.iter t.map f

  let iter_reverse t f = Map_.iter ~reverse:true t.map f

  let check t = Map_.check t.map
end

(* The paper's RomulusDB: RomulusLog underneath. *)
module Default = Make (Romulus.Logged)
