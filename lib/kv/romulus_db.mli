(** RomulusDB (§6.4): a persistent key-value store with the LevelDB
    interface.  Every write is a durable transaction; write batches are
    real all-or-nothing transactions. *)

(** Raised by [open_db] when [initial_buckets] is not positive. *)
exception Invalid_buckets of int

module Make (P : Romulus.Ptm_intf.S) : sig
  type t

  (** Open (or create) the database stored in the region.  Raises
      {!Invalid_buckets} when [initial_buckets] is not positive. *)
  val open_db : ?initial_buckets:int -> Pmem.Region.t -> t

  val put : t -> string -> string -> unit
  val get : t -> string -> string option
  val delete : t -> string -> bool
  val count : t -> int

  (** LevelDB's write batch, upgraded to a transaction: all or nothing,
      one set of persistence fences for the whole batch. *)
  val write_batch : t -> (t -> unit) -> unit

  (** Full scans; forward and reverse cost the same on a hash-ordered
      store. *)
  val iter : t -> (string -> string -> unit) -> unit

  val iter_reverse : t -> (string -> string -> unit) -> unit
  val check : t -> (unit, string) result
end

(** The paper's RomulusDB: RomulusLog underneath. *)
module Default : module type of Make (Romulus.Logged)
