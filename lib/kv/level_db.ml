(* LevelDB-like baseline for the RomulusDB comparison (§6.4): a sorted
   in-memory table plus a write-ahead journal on a simulated block device.

   Durability model, as the paper describes it:
   - by default, writes are buffered: the journal is fdatasync'ed only
     after roughly [sync_every_bytes] (~1000 kB) of appends — a crash
     loses every write after the last sync ("buffered durability");
   - with [~sync:true] (WriteOptions.sync), every write pays a full
     fdatasync — the only mode actually comparable to RomulusDB's
     per-transaction durability (the fillsync benchmark). *)

module Smap = Map.Make (String)

type t = {
  mutable memtable : string Smap.t;
  journal : Buffer.t;
  disk : Disk_sim.t;
  sync_every_bytes : int;
  mutable unsynced_bytes : int;
  get_ns : int;         (* table/block-cache cost of a point read *)
  scan_entry_ns : int;  (* per-entry cost of a table scan *)
  put_ns : int;         (* memtable-skiplist insert + CRC of the record *)
}

let create ?(sync_every_bytes = 1_000_000) ?(get_ns = 600)
    ?(scan_entry_ns = 400) ?(put_ns = 700) ?disk () =
  let disk = match disk with Some d -> d | None -> Disk_sim.create () in
  { memtable = Smap.empty;
    journal = Buffer.create 4096;
    disk;
    sync_every_bytes;
    unsynced_bytes = 0;
    get_ns;
    scan_entry_ns;
    put_ns }

let disk t = t.disk

(* ---- journal records: op(1) klen(4) vlen(4) key value ---- *)

let append_record t op k v =
  let b = t.journal in
  Buffer.add_char b op;
  Buffer.add_int32_le b (Int32.of_int (String.length k));
  Buffer.add_int32_le b (Int32.of_int (String.length v));
  Buffer.add_string b k;
  Buffer.add_string b v;
  let n = 9 + String.length k + String.length v in
  ignore (Disk_sim.write t.disk n);
  Disk_sim.charge t.disk t.put_ns;
  n

let maybe_sync t ~sync n =
  if sync then begin
    Disk_sim.fdatasync t.disk;
    t.unsynced_bytes <- 0
  end
  else begin
    t.unsynced_bytes <- t.unsynced_bytes + n;
    if t.unsynced_bytes >= t.sync_every_bytes then begin
      Disk_sim.fdatasync t.disk;
      t.unsynced_bytes <- 0
    end
  end

let put ?(sync = false) t k v =
  let n = append_record t 'P' k v in
  t.memtable <- Smap.add k v t.memtable;
  maybe_sync t ~sync n

let delete ?(sync = false) t k =
  let n = append_record t 'D' k "" in
  t.memtable <- Smap.remove k t.memtable;
  maybe_sync t ~sync n

(* Reads pay the modelled table/block-cache costs: our baseline keeps
   everything in one sorted table, whereas real LevelDB reads go through
   SSTables, the block cache and decompression.  They route through
   [Disk_sim.read], so a flaky device (set_read_faults) makes them retry
   with backoff and eventually raise [Disk_sim.Read_failed]. *)
let get t k =
  Disk_sim.read t.disk t.get_ns;
  Smap.find_opt k t.memtable

let count t = Smap.cardinal t.memtable

let iter t f =
  Smap.iter
    (fun k v ->
      Disk_sim.read t.disk t.scan_entry_ns;
      f k v)
    t.memtable

let iter_reverse t f =
  (* stdlib maps fold ascending; build the reverse traversal explicitly *)
  let keys = Smap.fold (fun k v acc -> (k, v) :: acc) t.memtable [] in
  List.iter
    (fun (k, v) ->
      Disk_sim.read t.disk t.scan_entry_ns;
      f k v)
    keys

(* ---- crash and recovery: replay the synced journal prefix ---- *)

let replay contents upto =
  let mem = ref Smap.empty in
  let pos = ref 0 in
  (try
     while !pos + 9 <= upto do
       let op = contents.[!pos] in
       let klen = Int32.to_int (String.get_int32_le contents (!pos + 1)) in
       let vlen = Int32.to_int (String.get_int32_le contents (!pos + 5)) in
       let total = 9 + klen + vlen in
       if !pos + total > upto then raise Exit;
       let k = String.sub contents (!pos + 9) klen in
       let v = String.sub contents (!pos + 9 + klen) vlen in
       (match op with
        | 'P' -> mem := Smap.add k v !mem
        | 'D' -> mem := Smap.remove k !mem
        | _ -> raise Exit);
       pos := !pos + total
     done
   with Exit -> ());
  !mem

let crash t =
  let durable = Disk_sim.crash t.disk in
  let contents = Buffer.contents t.journal in
  let upto = min durable (String.length contents) in
  Buffer.clear t.journal;
  Buffer.add_string t.journal (String.sub contents 0 upto);
  t.memtable <- replay contents upto;
  t.unsynced_bytes <- 0
