(* A set of cache-line indices with 3-state marks, tuned for the access
   pattern of the region simulator: lines transition CLEAN -> DIRTY ->
   PENDING -> CLEAN, and fences visit only the non-clean lines.

   The [members] stack holds every line whose mark is non-clean (each line
   appears at most once: lines are pushed only on the CLEAN -> non-clean
   transition).  [flush_pending] compacts the stack in place, keeping the
   lines that remain dirty. *)

type mark = Clean | Dirty | Pending

type t = {
  marks : Bytes.t;                (* one byte per line *)
  mutable members : int array;    (* non-clean line indices *)
  mutable n : int;
}

let clean = '\000'
let dirty = '\001'
let pending = '\002'

let create ~lines =
  { marks = Bytes.make lines clean; members = Array.make 64 0; n = 0 }

let mark t line : mark =
  match Bytes.unsafe_get t.marks line with
  | '\000' -> Clean
  | '\001' -> Dirty
  | _ -> Pending

let push t line =
  if t.n = Array.length t.members then begin
    let bigger = Array.make (2 * t.n) 0 in
    Array.blit t.members 0 bigger 0 t.n;
    t.members <- bigger
  end;
  t.members.(t.n) <- line;
  t.n <- t.n + 1

(* Mark [line] dirty; no-op if already dirty or pending (a pending line that
   is re-stored keeps its pending status: the pwb already issued still covers
   the line in our conservative model, and the caller will pwb it again). *)
let set_dirty t line =
  match mark t line with
  | Clean -> Bytes.unsafe_set t.marks line dirty; push t line
  | Dirty | Pending -> ()

(* Promote a dirty line to pending (pwb issued).  Marking a clean line
   pending is accepted and recorded: flushing a clean line is harmless. *)
let set_pending t line =
  match mark t line with
  | Clean -> Bytes.unsafe_set t.marks line pending; push t line
  | Dirty -> Bytes.unsafe_set t.marks line pending
  | Pending -> ()

(* Mark a line clean (used by synchronous CLFLUSH-style pwbs, which
   persist the line on the spot).  A stale entry may remain in the member
   stack; it is dropped at the next compaction. *)
let set_clean t line = Bytes.unsafe_set t.marks line clean

let is_clean t line = mark t line = Clean

(* Call [f line] for every pending line and mark it clean; dirty lines are
   kept.  Compacts the member stack in place. *)
let flush_pending t f =
  let kept = ref 0 in
  for i = 0 to t.n - 1 do
    let line = t.members.(i) in
    match mark t line with
    | Pending ->
      f line;
      Bytes.unsafe_set t.marks line clean
    | Dirty ->
      t.members.(!kept) <- line;
      incr kept
    | Clean -> ()
  done;
  t.n <- !kept

(* Call [f line was_pending] for every non-clean line and mark everything
   clean.  Used by the crash simulation. *)
let drain_all t f =
  for i = 0 to t.n - 1 do
    let line = t.members.(i) in
    match mark t line with
    | Pending -> f line true; Bytes.unsafe_set t.marks line clean
    | Dirty -> f line false; Bytes.unsafe_set t.marks line clean
    | Clean -> ()
  done;
  t.n <- 0

let cardinal t =
  let c = ref 0 in
  for i = 0 to t.n - 1 do
    if mark t t.members.(i) <> Clean then incr c
  done;
  !c
