(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
   Used to checksum region snapshot files: the persistence layer must
   detect media corruption (bit flips, truncation) instead of silently
   loading garbage into a "recovered" region. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc b =
  let t = Lazy.force table in
  t.((crc lxor b) land 0xff) lxor (crc lsr 8)

let bytes ?(crc = 0) buf off len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Crc32.bytes: range outside buffer";
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = off to off + len - 1 do
    c := update !c (Char.code (Bytes.unsafe_get buf i))
  done;
  !c lxor 0xFFFFFFFF

let string ?crc s = bytes ?crc (Bytes.unsafe_of_string s) 0 (String.length s)
