(* Simulated byte-addressable persistent memory.

   Two images back the region:
   - [vol]: the volatile image — CPU caches plus memory as the running
     program sees them.  All loads and stores operate here.
   - [per]: the persistent image — what would survive a power failure.

   A store dirties the cache line(s) it touches.  [pwb] marks a dirty line
   pending; [pfence]/[psync] copy all pending lines from [vol] to [per]
   (a conservative rendition of the PCSO ordering contract of §4.1: a fence
   is a point after which every preceding pwb is durable).  With an
   [ordered_pwb] profile (CLFLUSH) the pwb itself persists the line.

   Crashes: [crash t policy] decides, per non-clean line, whether the line
   made it to the medium.  Pending lines model pwb-issued-but-not-fenced
   write-backs; dirty lines model arbitrary cache evictions — real caches
   may write back *any* dirty line at any time, so an adversarial policy
   may persist them too.  After the policy is applied the volatile image is
   replaced by the persistent one, as a restart would see it.

   Crash points: [set_trap t k] makes the k-th subsequent persistence-
   relevant primitive (store/pwb/fence) raise [Crash_point] *before*
   executing, letting tests systematically crash a transaction at every
   instruction boundary. *)

type policy =
  | Drop_all
  | Keep_all
  | Random_subset of int
  | Torn_words of int

exception Crash_point

exception Snapshot_corrupt of string

exception Media_error of { offset : int; line : int }

(* Media-fault injection policy: every persisted line of the targeted
   range rots independently with probability [rate], deterministically per
   [seed]; a rotten line takes a small burst of bit flips. *)
type rot = Media_rot of { seed : int; rate : float }

(* Media faults live in a per-line metadata layer next to [per]:

   - [sidecar.(l)] is the CRC-32 of line [l]'s persistent bytes as of its
     last write-back.  It is maintained incrementally: a write-back
     invalidates the entry ([crc_valid]) and the checksum of the freshly
     persisted bytes is recomputed at the next verification — the same
     value an eager update inside {!persist_line} would store, since only
     write-backs mutate [per], but fences that nobody audits stay cheap.
   - [tainted] marks lines whose medium has physically degraded
     (a [corrupt_*] call).  A *full-line* write-back heals the cell and
     clears the taint; a torn (partial) write-back cannot, so the stale
     sidecar entry keeps witnessing the fault.
   - [media_checks] arms CRC verification on loads.  It flips on at the
     first injected fault (and on loading a snapshot that carries one), so
     fault-free runs pay nothing. *)

type t = {
  vol : Bytes.t;
  per : Bytes.t;
  line : int;
  line_shift : int;
  lines : Line_set.t;
  sidecar : int array;
  crc_valid : Bytes.t;
  tainted : Bytes.t;
  stats : Stats.t;
  mutable media_checks : bool;
  mutable fence : Fence.profile;
  mutable trap : int; (* -1 = disabled *)
  mutable dead : bool;
}

let create ?(line_size = 64) ?(fence = Fence.dram) ~size () =
  if size <= 0 then invalid_arg "Region.create: size must be positive";
  if line_size land (line_size - 1) <> 0 || line_size < 8 then
    invalid_arg "Region.create: line_size must be a power of two >= 8";
  let size = (size + line_size - 1) land lnot (line_size - 1) in
  let shift =
    let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
    log2 line_size 0
  in
  { vol = Bytes.make size '\000';
    per = Bytes.make size '\000';
    line = line_size;
    line_shift = shift;
    lines = Line_set.create ~lines:(size lsr shift);
    sidecar = Array.make (size lsr shift) 0;
    crc_valid = Bytes.make (size lsr shift) '\000';
    tainted = Bytes.make (size lsr shift) '\000';
    stats = Stats.create ();
    media_checks = false;
    fence;
    trap = -1;
    dead = false }

let size t = Bytes.length t.vol
let line_size t = t.line
let stats t = t.stats
let fence_profile t = t.fence
let set_fence_profile t p = t.fence <- p

let set_trap t k = t.trap <- k
let clear_trap t = t.trap <- -1

(* Once the trap fires, the region is "dead": every subsequent primitive
   raises until {!crash} resolves the failure.  This models a powered-off
   machine — in particular, code that (transitively) catches [Crash_point]
   cannot keep executing and commit a torn transaction. *)
let step t =
  if t.dead then raise Crash_point;
  if t.trap >= 0 then begin
    if t.trap = 0 then begin
      t.trap <- -1;
      t.dead <- true;
      raise Crash_point
    end;
    t.trap <- t.trap - 1
  end

let check_alive t = if t.dead then raise Crash_point

let is_dead t = t.dead

(* Power the machine off right now (a failpoint fired): the region goes
   dead exactly as if an armed trap had fired, and stays dead until
   {!crash} resolves the failure. *)
let kill t =
  t.trap <- -1;
  t.dead <- true;
  raise Crash_point

let check_range t off len what =
  if off < 0 || len < 0 || off + len > Bytes.length t.vol then
    invalid_arg
      (Printf.sprintf "Region.%s: range [%d, %d) outside region of %d bytes"
         what off (off + len) (Bytes.length t.vol))

(* ---- per-line CRC sidecar ---- *)

let line_count t = Bytes.length t.per lsr t.line_shift

let line_crc t line = Crc32.bytes t.per (line lsl t.line_shift) t.line

let refresh_sidecar t line =
  t.sidecar.(line) <- line_crc t line;
  Bytes.unsafe_set t.crc_valid line '\001'

(* Does line [line]'s persistent content still match its sidecar CRC?  An
   invalidated entry (a write-back happened since the last audit) is
   recomputed from the just-persisted bytes and trivially matches. *)
let media_ok t ~line =
  if Bytes.unsafe_get t.crc_valid line = '\001' then
    t.sidecar.(line) = line_crc t line
  else begin
    refresh_sidecar t line;
    true
  end

let line_is_clean t ~line = Line_set.is_clean t.lines line

let media_faults_armed t = t.media_checks

(* Verify the sidecar of every *clean* line a load touches (a dirty or
   pending line legitimately diverges from its persistent copy, and its
   next write-back supersedes whatever the medium holds). *)
let media_check t off len =
  if t.media_checks then begin
    let first = off lsr t.line_shift in
    let last = (off + len - 1) lsr t.line_shift in
    for line = first to last do
      if Line_set.is_clean t.lines line && not (media_ok t ~line) then begin
        t.stats.media_errors <- t.stats.media_errors + 1;
        raise (Media_error { offset = off; line })
      end
    done
  end

(* ---- loads ---- *)

let load t off =
  check_alive t;
  check_range t off 8 "load";
  media_check t off 8;
  t.stats.loads <- t.stats.loads + 1;
  t.stats.load_bytes <- t.stats.load_bytes + 8;
  Int64.to_int (Bytes.get_int64_le t.vol off)

let load_bytes t off len =
  check_alive t;
  check_range t off len "load_bytes";
  media_check t off len;
  t.stats.loads <- t.stats.loads + 1;
  t.stats.load_bytes <- t.stats.load_bytes + len;
  Bytes.sub_string t.vol off len

(* ---- stores ---- *)

let dirty_range t off len =
  let first = off lsr t.line_shift in
  let last = (off + len - 1) lsr t.line_shift in
  for line = first to last do
    Line_set.set_dirty t.lines line
  done

let store t off v =
  check_range t off 8 "store";
  step t;
  Bytes.set_int64_le t.vol off (Int64.of_int v);
  Line_set.set_dirty t.lines (off lsr t.line_shift);
  t.stats.stores <- t.stats.stores + 1;
  t.stats.nvm_bytes <- t.stats.nvm_bytes + 8

let store_bytes t off s =
  let len = String.length s in
  check_range t off len "store_bytes";
  step t;
  Bytes.blit_string s 0 t.vol off len;
  dirty_range t off len;
  t.stats.stores <- t.stats.stores + 1;
  t.stats.nvm_bytes <- t.stats.nvm_bytes + len

(* Region-internal copy (e.g. main -> back).  A plain volatile memory copy:
   the destination lines become dirty and must be pwb'ed by the caller. *)
let copy t ~src ~dst ~len =
  check_range t src len "copy(src)";
  check_range t dst len "copy(dst)";
  step t;
  Bytes.blit t.vol src t.vol dst len;
  dirty_range t dst len;
  t.stats.stores <- t.stats.stores + 1;
  t.stats.nvm_bytes <- t.stats.nvm_bytes + len;
  t.stats.copy_calls <- t.stats.copy_calls + 1;
  t.stats.replicated_bytes <- t.stats.replicated_bytes + len

(* ---- persistence primitives ---- *)

let persist_line t line =
  let off = line lsl t.line_shift in
  Bytes.blit t.vol off t.per off t.line;
  (* a full-line write-back supersedes whatever the medium held: the
     sidecar entry is refreshed (lazily) and a degraded cell is healed *)
  Bytes.unsafe_set t.crc_valid line '\000';
  Bytes.unsafe_set t.tainted line '\000'

let pwb_line t line =
  step t;
  t.stats.pwbs <- t.stats.pwbs + 1;
  t.stats.delay_ns <- t.stats.delay_ns + t.fence.Fence.pwb_ns;
  if t.fence.Fence.ordered_pwb then begin
    persist_line t line;
    (* the line is persisted in place: forget its dirty/pending mark so
       fences and crashes do not keep revisiting it *)
    Line_set.set_clean t.lines line
  end
  else Line_set.set_pending t.lines line

let pwb t off =
  check_range t off 1 "pwb";
  pwb_line t (off lsr t.line_shift)

let pwb_range t off len =
  if len > 0 then begin
    check_range t off len "pwb_range";
    let first = off lsr t.line_shift in
    let last = (off + len - 1) lsr t.line_shift in
    for line = first to last do
      pwb_line t line
    done
  end

let pfence t =
  step t;
  t.stats.pfences <- t.stats.pfences + 1;
  t.stats.delay_ns <- t.stats.delay_ns + t.fence.Fence.pfence_ns;
  Line_set.flush_pending t.lines (persist_line t)

let psync t =
  step t;
  t.stats.psyncs <- t.stats.psyncs + 1;
  t.stats.delay_ns <- t.stats.delay_ns + t.fence.Fence.psync_ns;
  Line_set.flush_pending t.lines (persist_line t)

(* ---- crash simulation ---- *)

(* Deterministic per-line coin: a 63-bit mix of the seed and line index. *)
let line_coin seed line =
  let x = ref (seed * 0x1e3779b97f4a7c15 + line * 0x3f58476d1ce4e5b9) in
  x := !x lxor (!x lsr 30);
  x := !x * 0x3f58476d1ce4e5b9;
  x := !x lxor (!x lsr 27);
  !x land 1 = 0

(* Per-word coin for the torn-word adversary: fold the word index into the
   line mix so every 8-byte word of every line flips independently. *)
let word_coin seed line word = line_coin (seed + (word * 0x9e3779b9) + 1) line

(* ADR platforms guarantee only 8-byte store atomicity: a cache line that
   was in flight at the failure may reach the medium partially, some of its
   words new and some old.  Each aligned 8-byte word of the line
   independently keeps its pre-crash persistent value or takes the volatile
   one. *)
let persist_torn_words t seed line =
  let off = line lsl t.line_shift in
  let all = ref true in
  for w = 0 to (t.line lsr 3) - 1 do
    if word_coin seed line w then
      Bytes.blit t.vol (off + (8 * w)) t.per (off + (8 * w)) 8
    else all := false
  done;
  if !all then begin
    (* every word made it: indistinguishable from a full write-back *)
    Bytes.unsafe_set t.crc_valid line '\000';
    Bytes.unsafe_set t.tainted line '\000'
  end
  else if Bytes.unsafe_get t.tainted line = '\000' then
    (* an ordinary torn line is a *crash* artifact, not a media fault: the
       mixture is what the medium now holds, so the sidecar blesses it *)
    Bytes.unsafe_set t.crc_valid line '\000'
  (* else: a torn write-back over degraded media cannot heal the cell; the
     stale sidecar entry keeps witnessing the fault *)

let crash t policy =
  let decide line was_pending =
    match policy with
    | Drop_all -> ()
    | Keep_all -> persist_line t line
    | Random_subset seed ->
      (* pending lines persist a bit more often than merely-dirty ones,
         but both are candidates: caches evict whatever they like. *)
      if line_coin seed line || (was_pending && line_coin (seed + 1) line)
      then persist_line t line
    | Torn_words seed -> persist_torn_words t seed line
  in
  Line_set.drain_all t.lines decide;
  Bytes.blit t.per 0 t.vol 0 (Bytes.length t.per);
  t.stats.crashes <- t.stats.crashes + 1;
  t.trap <- -1;
  t.dead <- false

let unpersisted_lines t = Line_set.cardinal t.lines

(* Test-only peek at the persistent image. *)
let persistent_load t off =
  check_range t off 8 "persistent_load";
  Int64.to_int (Bytes.get_int64_le t.per off)

(* Test-only copy of the whole persistent image (recovery-idempotence
   checks compare these byte for byte). *)
let persistent_snapshot t = Bytes.to_string t.per

(* ---- media-fault injection ---- *)

(* Deterministic 62-bit mixer for fault placement (splitmix-style, like
   [line_coin] but returning the whole word). *)
let mix seed i =
  let x = ref ((seed * 0x1e3779b97f4a7c15) + ((i + 1) * 0x3f58476d1ce4e5b9)) in
  x := !x lxor (!x lsr 30);
  x := !x * 0x3f58476d1ce4e5b9;
  x := !x lxor (!x lsr 27);
  !x land max_int

(* The medium under [line] degrades.  The sidecar must witness the
   *pre-rot* content — an incrementally maintained checksum was computed
   when the line was last written back, before the cell decayed — so a
   lazily invalidated entry is refreshed first. *)
let degrade t line =
  if Bytes.unsafe_get t.crc_valid line = '\000' then refresh_sidecar t line;
  Bytes.unsafe_set t.tainted line '\001';
  t.media_checks <- true

(* A clean line may be silently refetched from the medium at any moment
   (its cached copy is not dirty, so the cache is free to drop it); mirror
   the rot into the volatile image so the next load observes it.  Dirty and
   pending lines keep their cached data — the program's pending write-back
   supersedes the medium. *)
let mirror_if_clean t line =
  if Line_set.is_clean t.lines line then begin
    let off = line lsl t.line_shift in
    Bytes.blit t.per off t.vol off t.line
  end

let flip_bit t byte bit =
  Bytes.unsafe_set t.per byte
    (Char.chr (Char.code (Bytes.unsafe_get t.per byte) lxor (1 lsl bit)))

let corrupt_line ?(seed = 0) t ~line =
  if line < 0 || line >= line_count t then
    invalid_arg
      (Printf.sprintf "Region.corrupt_line: line %d outside region of %d lines"
         line (line_count t));
  degrade t line;
  let off = line lsl t.line_shift in
  for w = 0 to (t.line lsr 3) - 1 do
    Bytes.set_int64_le t.per
      (off + (8 * w))
      (Int64.of_int (mix (seed + w) line))
  done;
  mirror_if_clean t line

let corrupt_bits t ~seed ~off ~len ~flips =
  check_range t off len "corrupt_bits";
  if len = 0 || flips <= 0 then
    invalid_arg "Region.corrupt_bits: need a non-empty range and flips > 0";
  for i = 0 to flips - 1 do
    let bit = mix seed i mod (len * 8) in
    let byte = off + (bit / 8) in
    degrade t (byte lsr t.line_shift);
    flip_bit t byte (bit mod 8);
    mirror_if_clean t (byte lsr t.line_shift)
  done

let inject_rot ?(off = 0) ?len t (Media_rot { seed; rate }) =
  let len =
    match len with Some l -> l | None -> Bytes.length t.per - off
  in
  check_range t off len "inject_rot";
  if not (rate >= 0.0 && rate <= 1.0) then
    invalid_arg "Region.inject_rot: rate must be in [0, 1]";
  if len = 0 then 0
  else begin
    let first = off lsr t.line_shift in
    let last = (off + len - 1) lsr t.line_shift in
    let rotted = ref 0 in
    for line = first to last do
      if float_of_int (mix seed line land 0xFFFFF) /. 1048576.0 < rate
      then begin
        incr rotted;
        degrade t line;
        (* a burst of 1-3 bit flips, confined to the requested range *)
        let lo = max off (line lsl t.line_shift) in
        let hi = min (off + len) ((line + 1) lsl t.line_shift) in
        let nbits = 1 + (mix (seed + 1) line mod 3) in
        for i = 0 to nbits - 1 do
          let bit = mix (seed + 2 + i) line mod ((hi - lo) * 8) in
          flip_bit t (lo + (bit / 8)) (bit mod 8)
        done;
        mirror_if_clean t line
      end
    done;
    !rotted
  end

(* ---- file persistence ----

   The persistent image can be written to / restored from a file, which
   is what makes the simulated NVM survive an actual process restart
   (the paper's regions live in an mmap'd file).  Only the persistent
   image travels: saving is equivalent to a clean shutdown followed by a
   restart on load.

   Snapshot format (all multi-byte integers big-endian, 4 bytes):

     offset  0  magic       "ROMULUS-PMEM-3\n" (15 bytes)
     offset 15  version     format version, currently 3
     offset 19  line_size   cache-line size of the saved region
     offset 23  length      payload bytes
     offset 27  crc32       CRC-32 (IEEE) over the payload
     offset 31  scrc32      CRC-32 (IEEE) over the sidecar section
     offset 35  payload     the persistent image, [length] bytes
     then       sidecar     one CRC-32 per line, 4 bytes each

   A snapshot that fails any header check — wrong magic, unsupported
   version, nonsensical geometry, file length that disagrees with the
   header, or a payload/sidecar whose CRC does not match — is rejected
   with {!Snapshot_corrupt}.  Nothing of a corrupt file is ever loaded.

   The sidecar travels with the image, so a *detected-but-unrepaired*
   media fault survives a save/load round trip: a line whose stored
   sidecar entry disagrees with its payload bytes is restored tainted,
   with media checks armed, rather than silently blessed.  (The file
   itself is still fully validated: the payload CRC and the sidecar-
   section CRC cover every byte, so any flip *in the file* is a typed
   {!Snapshot_corrupt}, never a phantom media fault.) *)

let file_magic = "ROMULUS-PMEM-3\n"
let file_magic_prefix = "ROMULUS-PMEM-"
let file_version = 3
let file_header_bytes = String.length file_magic + 20

let save_to_file t path =
  (* a save is a clean shutdown: every lazily invalidated sidecar entry is
     brought up to date with the persistent bytes it describes *)
  for line = 0 to line_count t - 1 do
    if Bytes.unsafe_get t.crc_valid line = '\000' then refresh_sidecar t line
  done;
  let sidecar = Bytes.create (4 * line_count t) in
  for line = 0 to line_count t - 1 do
    Bytes.set_int32_be sidecar (4 * line) (Int32.of_int t.sidecar.(line))
  done;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc file_magic;
      output_binary_int oc file_version;
      output_binary_int oc t.line;
      output_binary_int oc (Bytes.length t.per);
      output_binary_int oc (Crc32.bytes t.per 0 (Bytes.length t.per));
      output_binary_int oc (Crc32.bytes sidecar 0 (Bytes.length sidecar));
      output_bytes oc t.per;
      output_bytes oc sidecar)

let load_from_file ?fence path =
  let corrupt fmt =
    Printf.ksprintf (fun s -> raise (Snapshot_corrupt (path ^ ": " ^ s))) fmt
  in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        let magic = really_input_string ic (String.length file_magic) in
        if magic <> file_magic then
          if String.length magic >= String.length file_magic_prefix
             && String.sub magic 0 (String.length file_magic_prefix)
                = file_magic_prefix
          then corrupt "unsupported snapshot format (magic %S)" magic
          else corrupt "not a region snapshot (magic %S)" magic;
        let version = input_binary_int ic in
        if version <> file_version then
          corrupt "unsupported format version %d (want %d)" version
            file_version;
        let line_size = input_binary_int ic in
        if line_size < 8 || line_size > 65536
           || line_size land (line_size - 1) <> 0
        then corrupt "bad line size %d" line_size;
        let size = input_binary_int ic in
        if size <= 0 || size land (line_size - 1) <> 0 then
          corrupt "bad region size %d (line size %d)" size line_size;
        let shift =
          let rec log2 n acc =
            if n = 1 then acc else log2 (n lsr 1) (acc + 1)
          in
          log2 line_size 0
        in
        let nlines = size lsr shift in
        if in_channel_length ic <> file_header_bytes + size + (4 * nlines)
        then
          corrupt "truncated or oversized payload: file is %d bytes, want %d"
            (in_channel_length ic)
            (file_header_bytes + size + (4 * nlines));
        (* input_binary_int sign-extends bit 31; normalize to [0, 2^32) *)
        let crc = input_binary_int ic land 0xFFFFFFFF in
        let scrc = input_binary_int ic land 0xFFFFFFFF in
        let t = create ~line_size ?fence ~size () in
        really_input ic t.per 0 size;
        let actual = Crc32.bytes t.per 0 size in
        if actual <> crc then
          corrupt "payload checksum mismatch (stored %08x, computed %08x)"
            (crc land 0xFFFFFFFF) (actual land 0xFFFFFFFF);
        let sidecar = Bytes.create (4 * nlines) in
        really_input ic sidecar 0 (4 * nlines);
        let sactual = Crc32.bytes sidecar 0 (4 * nlines) in
        if sactual <> scrc then
          corrupt "sidecar checksum mismatch (stored %08x, computed %08x)"
            (scrc land 0xFFFFFFFF) (sactual land 0xFFFFFFFF);
        Bytes.blit t.per 0 t.vol 0 size;
        for line = 0 to nlines - 1 do
          let stored =
            Int32.to_int (Bytes.get_int32_be sidecar (4 * line))
            land 0xFFFFFFFF
          in
          t.sidecar.(line) <- stored;
          Bytes.unsafe_set t.crc_valid line '\001';
          if stored <> line_crc t line then begin
            (* the snapshot faithfully carried a media fault that was
               detected but not repaired before the save *)
            Bytes.unsafe_set t.tainted line '\001';
            t.media_checks <- true
          end
        done;
        t
      with End_of_file -> corrupt "truncated header")

(* One file per shard region under a common base path: keeps a sharded
   store's snapshot a predictable family ("db.shard0", "db.shard1", ...)
   instead of an ad-hoc scheme per caller. *)
let shard_snapshot_path base ~shard =
  if shard < 0 then
    invalid_arg "Region.shard_snapshot_path: negative shard index";
  Printf.sprintf "%s.shard%d" base shard
