(* Simulated byte-addressable persistent memory.

   Two images back the region:
   - [vol]: the volatile image — CPU caches plus memory as the running
     program sees them.  All loads and stores operate here.
   - [per]: the persistent image — what would survive a power failure.

   A store dirties the cache line(s) it touches.  [pwb] marks a dirty line
   pending; [pfence]/[psync] copy all pending lines from [vol] to [per]
   (a conservative rendition of the PCSO ordering contract of §4.1: a fence
   is a point after which every preceding pwb is durable).  With an
   [ordered_pwb] profile (CLFLUSH) the pwb itself persists the line.

   Crashes: [crash t policy] decides, per non-clean line, whether the line
   made it to the medium.  Pending lines model pwb-issued-but-not-fenced
   write-backs; dirty lines model arbitrary cache evictions — real caches
   may write back *any* dirty line at any time, so an adversarial policy
   may persist them too.  After the policy is applied the volatile image is
   replaced by the persistent one, as a restart would see it.

   Crash points: [set_trap t k] makes the k-th subsequent persistence-
   relevant primitive (store/pwb/fence) raise [Crash_point] *before*
   executing, letting tests systematically crash a transaction at every
   instruction boundary. *)

type policy =
  | Drop_all
  | Keep_all
  | Random_subset of int
  | Torn_words of int

exception Crash_point

exception Snapshot_corrupt of string

type t = {
  vol : Bytes.t;
  per : Bytes.t;
  line : int;
  line_shift : int;
  lines : Line_set.t;
  stats : Stats.t;
  mutable fence : Fence.profile;
  mutable trap : int; (* -1 = disabled *)
  mutable dead : bool;
}

let create ?(line_size = 64) ?(fence = Fence.dram) ~size () =
  if size <= 0 then invalid_arg "Region.create: size must be positive";
  if line_size land (line_size - 1) <> 0 || line_size < 8 then
    invalid_arg "Region.create: line_size must be a power of two >= 8";
  let size = (size + line_size - 1) land lnot (line_size - 1) in
  let shift =
    let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
    log2 line_size 0
  in
  { vol = Bytes.make size '\000';
    per = Bytes.make size '\000';
    line = line_size;
    line_shift = shift;
    lines = Line_set.create ~lines:(size lsr shift);
    stats = Stats.create ();
    fence;
    trap = -1;
    dead = false }

let size t = Bytes.length t.vol
let line_size t = t.line
let stats t = t.stats
let fence_profile t = t.fence
let set_fence_profile t p = t.fence <- p

let set_trap t k = t.trap <- k
let clear_trap t = t.trap <- -1

(* Once the trap fires, the region is "dead": every subsequent primitive
   raises until {!crash} resolves the failure.  This models a powered-off
   machine — in particular, code that (transitively) catches [Crash_point]
   cannot keep executing and commit a torn transaction. *)
let step t =
  if t.dead then raise Crash_point;
  if t.trap >= 0 then begin
    if t.trap = 0 then begin
      t.trap <- -1;
      t.dead <- true;
      raise Crash_point
    end;
    t.trap <- t.trap - 1
  end

let check_alive t = if t.dead then raise Crash_point

let is_dead t = t.dead

(* Power the machine off right now (a failpoint fired): the region goes
   dead exactly as if an armed trap had fired, and stays dead until
   {!crash} resolves the failure. *)
let kill t =
  t.trap <- -1;
  t.dead <- true;
  raise Crash_point

let check_range t off len what =
  if off < 0 || len < 0 || off + len > Bytes.length t.vol then
    invalid_arg
      (Printf.sprintf "Region.%s: range [%d, %d) outside region of %d bytes"
         what off (off + len) (Bytes.length t.vol))

(* ---- loads ---- *)

let load t off =
  check_alive t;
  check_range t off 8 "load";
  t.stats.loads <- t.stats.loads + 1;
  t.stats.load_bytes <- t.stats.load_bytes + 8;
  Int64.to_int (Bytes.get_int64_le t.vol off)

let load_bytes t off len =
  check_alive t;
  check_range t off len "load_bytes";
  t.stats.loads <- t.stats.loads + 1;
  t.stats.load_bytes <- t.stats.load_bytes + len;
  Bytes.sub_string t.vol off len

(* ---- stores ---- *)

let dirty_range t off len =
  let first = off lsr t.line_shift in
  let last = (off + len - 1) lsr t.line_shift in
  for line = first to last do
    Line_set.set_dirty t.lines line
  done

let store t off v =
  check_range t off 8 "store";
  step t;
  Bytes.set_int64_le t.vol off (Int64.of_int v);
  Line_set.set_dirty t.lines (off lsr t.line_shift);
  t.stats.stores <- t.stats.stores + 1;
  t.stats.nvm_bytes <- t.stats.nvm_bytes + 8

let store_bytes t off s =
  let len = String.length s in
  check_range t off len "store_bytes";
  step t;
  Bytes.blit_string s 0 t.vol off len;
  dirty_range t off len;
  t.stats.stores <- t.stats.stores + 1;
  t.stats.nvm_bytes <- t.stats.nvm_bytes + len

(* Region-internal copy (e.g. main -> back).  A plain volatile memory copy:
   the destination lines become dirty and must be pwb'ed by the caller. *)
let copy t ~src ~dst ~len =
  check_range t src len "copy(src)";
  check_range t dst len "copy(dst)";
  step t;
  Bytes.blit t.vol src t.vol dst len;
  dirty_range t dst len;
  t.stats.stores <- t.stats.stores + 1;
  t.stats.nvm_bytes <- t.stats.nvm_bytes + len;
  t.stats.copy_calls <- t.stats.copy_calls + 1;
  t.stats.replicated_bytes <- t.stats.replicated_bytes + len

(* ---- persistence primitives ---- *)

let persist_line t line =
  let off = line lsl t.line_shift in
  Bytes.blit t.vol off t.per off t.line

let pwb_line t line =
  step t;
  t.stats.pwbs <- t.stats.pwbs + 1;
  t.stats.delay_ns <- t.stats.delay_ns + t.fence.Fence.pwb_ns;
  if t.fence.Fence.ordered_pwb then begin
    persist_line t line;
    (* the line is persisted in place: forget its dirty/pending mark so
       fences and crashes do not keep revisiting it *)
    Line_set.set_clean t.lines line
  end
  else Line_set.set_pending t.lines line

let pwb t off =
  check_range t off 1 "pwb";
  pwb_line t (off lsr t.line_shift)

let pwb_range t off len =
  if len > 0 then begin
    check_range t off len "pwb_range";
    let first = off lsr t.line_shift in
    let last = (off + len - 1) lsr t.line_shift in
    for line = first to last do
      pwb_line t line
    done
  end

let pfence t =
  step t;
  t.stats.pfences <- t.stats.pfences + 1;
  t.stats.delay_ns <- t.stats.delay_ns + t.fence.Fence.pfence_ns;
  Line_set.flush_pending t.lines (persist_line t)

let psync t =
  step t;
  t.stats.psyncs <- t.stats.psyncs + 1;
  t.stats.delay_ns <- t.stats.delay_ns + t.fence.Fence.psync_ns;
  Line_set.flush_pending t.lines (persist_line t)

(* ---- crash simulation ---- *)

(* Deterministic per-line coin: a 63-bit mix of the seed and line index. *)
let line_coin seed line =
  let x = ref (seed * 0x1e3779b97f4a7c15 + line * 0x3f58476d1ce4e5b9) in
  x := !x lxor (!x lsr 30);
  x := !x * 0x3f58476d1ce4e5b9;
  x := !x lxor (!x lsr 27);
  !x land 1 = 0

(* Per-word coin for the torn-word adversary: fold the word index into the
   line mix so every 8-byte word of every line flips independently. *)
let word_coin seed line word = line_coin (seed + (word * 0x9e3779b9) + 1) line

(* ADR platforms guarantee only 8-byte store atomicity: a cache line that
   was in flight at the failure may reach the medium partially, some of its
   words new and some old.  Each aligned 8-byte word of the line
   independently keeps its pre-crash persistent value or takes the volatile
   one. *)
let persist_torn_words t seed line =
  let off = line lsl t.line_shift in
  for w = 0 to (t.line lsr 3) - 1 do
    if word_coin seed line w then
      Bytes.blit t.vol (off + (8 * w)) t.per (off + (8 * w)) 8
  done

let crash t policy =
  let decide line was_pending =
    match policy with
    | Drop_all -> ()
    | Keep_all -> persist_line t line
    | Random_subset seed ->
      (* pending lines persist a bit more often than merely-dirty ones,
         but both are candidates: caches evict whatever they like. *)
      if line_coin seed line || (was_pending && line_coin (seed + 1) line)
      then persist_line t line
    | Torn_words seed -> persist_torn_words t seed line
  in
  Line_set.drain_all t.lines decide;
  Bytes.blit t.per 0 t.vol 0 (Bytes.length t.per);
  t.stats.crashes <- t.stats.crashes + 1;
  t.trap <- -1;
  t.dead <- false

let unpersisted_lines t = Line_set.cardinal t.lines

(* Test-only peek at the persistent image. *)
let persistent_load t off =
  check_range t off 8 "persistent_load";
  Int64.to_int (Bytes.get_int64_le t.per off)

(* Test-only copy of the whole persistent image (recovery-idempotence
   checks compare these byte for byte). *)
let persistent_snapshot t = Bytes.to_string t.per

(* ---- file persistence ----

   The persistent image can be written to / restored from a file, which
   is what makes the simulated NVM survive an actual process restart
   (the paper's regions live in an mmap'd file).  Only the persistent
   image travels: saving is equivalent to a clean shutdown followed by a
   restart on load.

   Snapshot format (all multi-byte integers big-endian, 4 bytes):

     offset  0  magic       "ROMULUS-PMEM-2\n" (15 bytes)
     offset 15  version     format version, currently 2
     offset 19  line_size   cache-line size of the saved region
     offset 23  length      payload bytes
     offset 27  crc32       CRC-32 (IEEE) over the payload
     offset 31  payload     the persistent image, [length] bytes

   A snapshot that fails any header check — wrong magic, unsupported
   version, nonsensical geometry, file length that disagrees with the
   header, or a payload whose CRC does not match — is rejected with
   {!Snapshot_corrupt}.  Nothing of a corrupt file is ever loaded. *)

let file_magic = "ROMULUS-PMEM-2\n"
let file_magic_prefix = "ROMULUS-PMEM-"
let file_version = 2
let file_header_bytes = String.length file_magic + 16

let save_to_file t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc file_magic;
      output_binary_int oc file_version;
      output_binary_int oc t.line;
      output_binary_int oc (Bytes.length t.per);
      output_binary_int oc (Crc32.bytes t.per 0 (Bytes.length t.per));
      output_bytes oc t.per)

let load_from_file ?fence path =
  let corrupt fmt =
    Printf.ksprintf (fun s -> raise (Snapshot_corrupt (path ^ ": " ^ s))) fmt
  in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        let magic = really_input_string ic (String.length file_magic) in
        if magic <> file_magic then
          if String.length magic >= String.length file_magic_prefix
             && String.sub magic 0 (String.length file_magic_prefix)
                = file_magic_prefix
          then corrupt "unsupported snapshot format (magic %S)" magic
          else corrupt "not a region snapshot (magic %S)" magic;
        let version = input_binary_int ic in
        if version <> file_version then
          corrupt "unsupported format version %d (want %d)" version
            file_version;
        let line_size = input_binary_int ic in
        if line_size < 8 || line_size > 65536
           || line_size land (line_size - 1) <> 0
        then corrupt "bad line size %d" line_size;
        let size = input_binary_int ic in
        if size <= 0 || size land (line_size - 1) <> 0 then
          corrupt "bad region size %d (line size %d)" size line_size;
        if in_channel_length ic <> file_header_bytes + size then
          corrupt "truncated or oversized payload: file is %d bytes, want %d"
            (in_channel_length ic)
            (file_header_bytes + size);
        (* input_binary_int sign-extends bit 31; normalize to [0, 2^32) *)
        let crc = input_binary_int ic land 0xFFFFFFFF in
        let t = create ~line_size ?fence ~size () in
        really_input ic t.per 0 size;
        let actual = Crc32.bytes t.per 0 size in
        if actual <> crc then
          corrupt "payload checksum mismatch (stored %08x, computed %08x)"
            (crc land 0xFFFFFFFF) (actual land 0xFFFFFFFF);
        Bytes.blit t.per 0 t.vol 0 size;
        t
      with End_of_file -> corrupt "truncated header")
