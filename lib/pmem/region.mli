(** Simulated byte-addressable persistent memory with a cache-line model.

    The region keeps a volatile image (what the running program reads and
    writes) and a persistent image (what survives a crash).  Stores dirty
    cache lines; {!pwb} marks a line for write-back; {!pfence}/{!psync}
    make all pending write-backs durable.  {!crash} resolves the fate of
    every non-persisted line under an adversarial policy and restarts from
    the persistent image. *)

type policy =
  | Drop_all                (** no un-fenced line reaches the medium *)
  | Keep_all                (** every dirty/pending line reaches the medium *)
  | Random_subset of int    (** each line persists or not, per-seed
                                deterministic; dirty lines model arbitrary
                                cache evictions *)
  | Torn_words of int       (** each aligned 8-byte word of a non-persisted
                                line independently keeps its old persistent
                                value or takes the volatile one, per-seed
                                deterministic — the ADR guarantee is 8-byte
                                atomicity, not line atomicity *)

(** Raised by the primitive armed with {!set_trap}, before it executes. *)
exception Crash_point

(** Raised by {!load_from_file} when a snapshot fails validation (bad
    magic, unsupported version, impossible geometry, truncation, or a
    payload/sidecar checksum mismatch).  A corrupt snapshot is never
    partially loaded. *)
exception Snapshot_corrupt of string

(** Raised by a load that touches a clean line whose persistent content no
    longer matches its per-line CRC-32 sidecar entry: silent media
    corruption, detected.  [offset] is the faulting load's byte offset,
    [line] the bad cache line's index.  Only armed regions check (one of
    the [corrupt_*] / {!inject_rot} injectors ran, or a loaded snapshot
    carried a fault); pristine regions pay nothing on loads. *)
exception Media_error of { offset : int; line : int }

(** Media-fault injection policy: each line of the targeted range rots
    independently with probability [rate], deterministically per [seed];
    a rotten line takes a burst of 1-3 bit flips. *)
type rot = Media_rot of { seed : int; rate : float }

type t

(** [create ~size ()] allocates a region of at least [size] bytes (rounded
    up to a whole number of cache lines), zero-filled and fully
    persistent. *)
val create : ?line_size:int -> ?fence:Fence.profile -> size:int -> unit -> t

val size : t -> int
val line_size : t -> int
val stats : t -> Stats.t
val fence_profile : t -> Fence.profile
val set_fence_profile : t -> Fence.profile -> unit

(** Arm the crash trap: the [k]-th subsequent persistence-relevant
    primitive (store / pwb / pfence / psync / copy) raises {!Crash_point}
    before executing.  [k = 0] fires on the next primitive.  Once the trap
    fires the region is dead: every further primitive (including loads)
    keeps raising {!Crash_point} until {!crash} resolves the failure, so
    code that swallows the exception cannot keep running. *)
val set_trap : t -> int -> unit

val clear_trap : t -> unit

(** True between the trap firing and {!crash}: the machine is off. *)
val is_dead : t -> bool

(** Power off immediately (used by armed failpoints): the region becomes
    dead as if a trap had fired, and {!Crash_point} is raised.  Never
    returns. *)
val kill : t -> 'a

(** 8-byte word load/store at a byte offset (offsets need not be aligned,
    but all library code uses 8-byte alignment). *)
val load : t -> int -> int

val store : t -> int -> int -> unit

val load_bytes : t -> int -> int -> string
val store_bytes : t -> int -> string -> unit

(** Region-internal volatile copy; destination lines become dirty and must
    be pwb'ed by the caller (this is how the twin-copy replication is
    built). *)
val copy : t -> src:int -> dst:int -> len:int -> unit

(** Initiate write-back of the line containing the given byte offset. *)
val pwb : t -> int -> unit

(** [pwb_range t off len] issues one pwb per line overlapping the range. *)
val pwb_range : t -> int -> int -> unit

val pfence : t -> unit
val psync : t -> unit

(** Simulate a power failure under the given policy and restart: the
    volatile image is replaced by the persistent image. *)
val crash : t -> policy -> unit

(** Number of lines whose volatile and persistent copies may differ. *)
val unpersisted_lines : t -> int

(** Test-only: read a word from the persistent image. *)
val persistent_load : t -> int -> int

(** Test-only: a copy of the whole persistent image, for byte-identical
    comparisons (e.g. recovery idempotence). *)
val persistent_snapshot : t -> string

(** {2 Media faults}

    The region keeps a per-line CRC-32 sidecar of the persistent image,
    maintained incrementally on write-back.  The injectors below garble
    the *persistent* bytes of a line while leaving its sidecar entry
    witnessing the pre-rot content, then arm CRC verification on loads:
    the next load of an affected clean line raises {!Media_error}.  A
    degraded line is healed by a full-line write-back (or a scrub repair);
    a torn, partial write-back cannot heal it. *)

(** Garble every word of line [line] deterministically per [seed]. *)
val corrupt_line : ?seed:int -> t -> line:int -> unit

(** Flip [flips] seeded bit positions within [off, off+len). *)
val corrupt_bits : t -> seed:int -> off:int -> len:int -> flips:int -> unit

(** Apply a {!rot} policy to the persisted lines overlapping
    [off, off+len) (default: the whole region); returns the number of
    lines degraded. *)
val inject_rot : ?off:int -> ?len:int -> t -> rot -> int

(** Does line [line]'s persistent content still match its sidecar CRC?
    Scrubbers call this directly; unlike a load it never raises. *)
val media_ok : t -> line:int -> bool

(** True when [line] has no un-persisted store in flight, i.e. its
    persistent copy is authoritative and eligible for scrubbing. *)
val line_is_clean : t -> line:int -> bool

(** True once any media fault was injected (or restored from a snapshot):
    loads verify sidecar CRCs. *)
val media_faults_armed : t -> bool

(** Number of cache lines in the region. *)
val line_count : t -> int

(** Write the persistent image to a file: equivalent to a clean shutdown.
    Unfenced volatile state is (correctly) not included.  The snapshot
    carries a versioned header (magic, format version, line size, length),
    a CRC-32 over the payload, and the per-line sidecar with its own
    CRC-32 — so a detected-but-unrepaired media fault survives the round
    trip instead of being blessed by the save. *)
val save_to_file : t -> string -> unit

(** Restore a region from a file written by {!save_to_file} — a restart:
    the volatile image starts as a copy of the persistent one.  The PTM's
    [open_region] then runs recovery as usual.  Raises {!Snapshot_corrupt}
    if the file fails any header or checksum validation. *)
val load_from_file : ?fence:Fence.profile -> string -> t

(** Conventional file name for one region of a multi-region (sharded)
    store saved under [base]: ["<base>.shard<k>"].  Shards save and load
    their regions under this name so that a store's snapshot is a
    predictable file family rather than an ad-hoc naming scheme per
    caller.  Raises [Invalid_argument] on a negative shard index. *)
val shard_snapshot_path : string -> shard:int -> string
